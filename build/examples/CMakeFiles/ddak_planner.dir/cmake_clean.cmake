file(REMOVE_RECURSE
  "CMakeFiles/ddak_planner.dir/ddak_planner.cpp.o"
  "CMakeFiles/ddak_planner.dir/ddak_planner.cpp.o.d"
  "ddak_planner"
  "ddak_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddak_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
