# Empty dependencies file for ddak_planner.
# This may be replaced when dependencies are built.
