# Empty dependencies file for train_graphsage.
# This may be replaced when dependencies are built.
