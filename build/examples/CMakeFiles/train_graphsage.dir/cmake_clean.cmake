file(REMOVE_RECURSE
  "CMakeFiles/train_graphsage.dir/train_graphsage.cpp.o"
  "CMakeFiles/train_graphsage.dir/train_graphsage.cpp.o.d"
  "train_graphsage"
  "train_graphsage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_graphsage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
