file(REMOVE_RECURSE
  "libmoment_maxflow.a"
)
