file(REMOVE_RECURSE
  "CMakeFiles/moment_maxflow.dir/dinic.cpp.o"
  "CMakeFiles/moment_maxflow.dir/dinic.cpp.o.d"
  "CMakeFiles/moment_maxflow.dir/edmonds_karp.cpp.o"
  "CMakeFiles/moment_maxflow.dir/edmonds_karp.cpp.o.d"
  "CMakeFiles/moment_maxflow.dir/flow_network.cpp.o"
  "CMakeFiles/moment_maxflow.dir/flow_network.cpp.o.d"
  "CMakeFiles/moment_maxflow.dir/min_cut.cpp.o"
  "CMakeFiles/moment_maxflow.dir/min_cut.cpp.o.d"
  "CMakeFiles/moment_maxflow.dir/push_relabel.cpp.o"
  "CMakeFiles/moment_maxflow.dir/push_relabel.cpp.o.d"
  "CMakeFiles/moment_maxflow.dir/time_bisection.cpp.o"
  "CMakeFiles/moment_maxflow.dir/time_bisection.cpp.o.d"
  "libmoment_maxflow.a"
  "libmoment_maxflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moment_maxflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
