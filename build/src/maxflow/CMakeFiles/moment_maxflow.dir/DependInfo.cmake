
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/maxflow/dinic.cpp" "src/maxflow/CMakeFiles/moment_maxflow.dir/dinic.cpp.o" "gcc" "src/maxflow/CMakeFiles/moment_maxflow.dir/dinic.cpp.o.d"
  "/root/repo/src/maxflow/edmonds_karp.cpp" "src/maxflow/CMakeFiles/moment_maxflow.dir/edmonds_karp.cpp.o" "gcc" "src/maxflow/CMakeFiles/moment_maxflow.dir/edmonds_karp.cpp.o.d"
  "/root/repo/src/maxflow/flow_network.cpp" "src/maxflow/CMakeFiles/moment_maxflow.dir/flow_network.cpp.o" "gcc" "src/maxflow/CMakeFiles/moment_maxflow.dir/flow_network.cpp.o.d"
  "/root/repo/src/maxflow/min_cut.cpp" "src/maxflow/CMakeFiles/moment_maxflow.dir/min_cut.cpp.o" "gcc" "src/maxflow/CMakeFiles/moment_maxflow.dir/min_cut.cpp.o.d"
  "/root/repo/src/maxflow/push_relabel.cpp" "src/maxflow/CMakeFiles/moment_maxflow.dir/push_relabel.cpp.o" "gcc" "src/maxflow/CMakeFiles/moment_maxflow.dir/push_relabel.cpp.o.d"
  "/root/repo/src/maxflow/time_bisection.cpp" "src/maxflow/CMakeFiles/moment_maxflow.dir/time_bisection.cpp.o" "gcc" "src/maxflow/CMakeFiles/moment_maxflow.dir/time_bisection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/moment_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
