# Empty dependencies file for moment_maxflow.
# This may be replaced when dependencies are built.
