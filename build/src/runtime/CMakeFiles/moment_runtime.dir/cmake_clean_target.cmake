file(REMOVE_RECURSE
  "libmoment_runtime.a"
)
