# Empty dependencies file for moment_runtime.
# This may be replaced when dependencies are built.
