file(REMOVE_RECURSE
  "CMakeFiles/moment_runtime.dir/parallel_trainer.cpp.o"
  "CMakeFiles/moment_runtime.dir/parallel_trainer.cpp.o.d"
  "CMakeFiles/moment_runtime.dir/systems.cpp.o"
  "CMakeFiles/moment_runtime.dir/systems.cpp.o.d"
  "libmoment_runtime.a"
  "libmoment_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moment_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
