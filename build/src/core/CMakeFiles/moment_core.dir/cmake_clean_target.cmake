file(REMOVE_RECURSE
  "libmoment_core.a"
)
