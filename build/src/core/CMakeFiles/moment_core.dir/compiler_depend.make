# Empty compiler generated dependencies file for moment_core.
# This may be replaced when dependencies are built.
