file(REMOVE_RECURSE
  "CMakeFiles/moment_core.dir/auto_module.cpp.o"
  "CMakeFiles/moment_core.dir/auto_module.cpp.o.d"
  "CMakeFiles/moment_core.dir/plan_io.cpp.o"
  "CMakeFiles/moment_core.dir/plan_io.cpp.o.d"
  "libmoment_core.a"
  "libmoment_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moment_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
