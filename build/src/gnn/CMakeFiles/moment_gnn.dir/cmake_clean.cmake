file(REMOVE_RECURSE
  "CMakeFiles/moment_gnn.dir/block.cpp.o"
  "CMakeFiles/moment_gnn.dir/block.cpp.o.d"
  "CMakeFiles/moment_gnn.dir/features.cpp.o"
  "CMakeFiles/moment_gnn.dir/features.cpp.o.d"
  "CMakeFiles/moment_gnn.dir/gat_layer.cpp.o"
  "CMakeFiles/moment_gnn.dir/gat_layer.cpp.o.d"
  "CMakeFiles/moment_gnn.dir/gcn_layer.cpp.o"
  "CMakeFiles/moment_gnn.dir/gcn_layer.cpp.o.d"
  "CMakeFiles/moment_gnn.dir/loss.cpp.o"
  "CMakeFiles/moment_gnn.dir/loss.cpp.o.d"
  "CMakeFiles/moment_gnn.dir/model.cpp.o"
  "CMakeFiles/moment_gnn.dir/model.cpp.o.d"
  "CMakeFiles/moment_gnn.dir/optimizer.cpp.o"
  "CMakeFiles/moment_gnn.dir/optimizer.cpp.o.d"
  "CMakeFiles/moment_gnn.dir/sage_layer.cpp.o"
  "CMakeFiles/moment_gnn.dir/sage_layer.cpp.o.d"
  "CMakeFiles/moment_gnn.dir/synthetic.cpp.o"
  "CMakeFiles/moment_gnn.dir/synthetic.cpp.o.d"
  "CMakeFiles/moment_gnn.dir/tensor.cpp.o"
  "CMakeFiles/moment_gnn.dir/tensor.cpp.o.d"
  "CMakeFiles/moment_gnn.dir/trainer.cpp.o"
  "CMakeFiles/moment_gnn.dir/trainer.cpp.o.d"
  "libmoment_gnn.a"
  "libmoment_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moment_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
