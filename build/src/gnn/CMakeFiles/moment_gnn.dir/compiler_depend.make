# Empty compiler generated dependencies file for moment_gnn.
# This may be replaced when dependencies are built.
