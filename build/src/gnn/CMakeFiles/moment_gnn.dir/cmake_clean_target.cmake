file(REMOVE_RECURSE
  "libmoment_gnn.a"
)
