
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnn/block.cpp" "src/gnn/CMakeFiles/moment_gnn.dir/block.cpp.o" "gcc" "src/gnn/CMakeFiles/moment_gnn.dir/block.cpp.o.d"
  "/root/repo/src/gnn/features.cpp" "src/gnn/CMakeFiles/moment_gnn.dir/features.cpp.o" "gcc" "src/gnn/CMakeFiles/moment_gnn.dir/features.cpp.o.d"
  "/root/repo/src/gnn/gat_layer.cpp" "src/gnn/CMakeFiles/moment_gnn.dir/gat_layer.cpp.o" "gcc" "src/gnn/CMakeFiles/moment_gnn.dir/gat_layer.cpp.o.d"
  "/root/repo/src/gnn/gcn_layer.cpp" "src/gnn/CMakeFiles/moment_gnn.dir/gcn_layer.cpp.o" "gcc" "src/gnn/CMakeFiles/moment_gnn.dir/gcn_layer.cpp.o.d"
  "/root/repo/src/gnn/loss.cpp" "src/gnn/CMakeFiles/moment_gnn.dir/loss.cpp.o" "gcc" "src/gnn/CMakeFiles/moment_gnn.dir/loss.cpp.o.d"
  "/root/repo/src/gnn/model.cpp" "src/gnn/CMakeFiles/moment_gnn.dir/model.cpp.o" "gcc" "src/gnn/CMakeFiles/moment_gnn.dir/model.cpp.o.d"
  "/root/repo/src/gnn/optimizer.cpp" "src/gnn/CMakeFiles/moment_gnn.dir/optimizer.cpp.o" "gcc" "src/gnn/CMakeFiles/moment_gnn.dir/optimizer.cpp.o.d"
  "/root/repo/src/gnn/sage_layer.cpp" "src/gnn/CMakeFiles/moment_gnn.dir/sage_layer.cpp.o" "gcc" "src/gnn/CMakeFiles/moment_gnn.dir/sage_layer.cpp.o.d"
  "/root/repo/src/gnn/synthetic.cpp" "src/gnn/CMakeFiles/moment_gnn.dir/synthetic.cpp.o" "gcc" "src/gnn/CMakeFiles/moment_gnn.dir/synthetic.cpp.o.d"
  "/root/repo/src/gnn/tensor.cpp" "src/gnn/CMakeFiles/moment_gnn.dir/tensor.cpp.o" "gcc" "src/gnn/CMakeFiles/moment_gnn.dir/tensor.cpp.o.d"
  "/root/repo/src/gnn/trainer.cpp" "src/gnn/CMakeFiles/moment_gnn.dir/trainer.cpp.o" "gcc" "src/gnn/CMakeFiles/moment_gnn.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sampling/CMakeFiles/moment_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/moment_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/moment_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
