file(REMOVE_RECURSE
  "CMakeFiles/moment_util.dir/log.cpp.o"
  "CMakeFiles/moment_util.dir/log.cpp.o.d"
  "CMakeFiles/moment_util.dir/rng.cpp.o"
  "CMakeFiles/moment_util.dir/rng.cpp.o.d"
  "CMakeFiles/moment_util.dir/stats.cpp.o"
  "CMakeFiles/moment_util.dir/stats.cpp.o.d"
  "CMakeFiles/moment_util.dir/table.cpp.o"
  "CMakeFiles/moment_util.dir/table.cpp.o.d"
  "CMakeFiles/moment_util.dir/thread_pool.cpp.o"
  "CMakeFiles/moment_util.dir/thread_pool.cpp.o.d"
  "libmoment_util.a"
  "libmoment_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moment_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
