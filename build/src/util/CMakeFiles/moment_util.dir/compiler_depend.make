# Empty compiler generated dependencies file for moment_util.
# This may be replaced when dependencies are built.
