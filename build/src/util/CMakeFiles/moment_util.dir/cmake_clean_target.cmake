file(REMOVE_RECURSE
  "libmoment_util.a"
)
