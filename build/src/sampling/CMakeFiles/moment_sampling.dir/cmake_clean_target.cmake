file(REMOVE_RECURSE
  "libmoment_sampling.a"
)
