# Empty compiler generated dependencies file for moment_sampling.
# This may be replaced when dependencies are built.
