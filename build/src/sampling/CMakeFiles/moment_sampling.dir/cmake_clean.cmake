file(REMOVE_RECURSE
  "CMakeFiles/moment_sampling.dir/hotness.cpp.o"
  "CMakeFiles/moment_sampling.dir/hotness.cpp.o.d"
  "CMakeFiles/moment_sampling.dir/neighbor_sampler.cpp.o"
  "CMakeFiles/moment_sampling.dir/neighbor_sampler.cpp.o.d"
  "libmoment_sampling.a"
  "libmoment_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moment_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
