
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sampling/hotness.cpp" "src/sampling/CMakeFiles/moment_sampling.dir/hotness.cpp.o" "gcc" "src/sampling/CMakeFiles/moment_sampling.dir/hotness.cpp.o.d"
  "/root/repo/src/sampling/neighbor_sampler.cpp" "src/sampling/CMakeFiles/moment_sampling.dir/neighbor_sampler.cpp.o" "gcc" "src/sampling/CMakeFiles/moment_sampling.dir/neighbor_sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/moment_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/moment_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
