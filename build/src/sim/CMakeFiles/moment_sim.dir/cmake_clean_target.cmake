file(REMOVE_RECURSE
  "libmoment_sim.a"
)
