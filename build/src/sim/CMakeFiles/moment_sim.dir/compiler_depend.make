# Empty compiler generated dependencies file for moment_sim.
# This may be replaced when dependencies are built.
