file(REMOVE_RECURSE
  "CMakeFiles/moment_sim.dir/fluid.cpp.o"
  "CMakeFiles/moment_sim.dir/fluid.cpp.o.d"
  "CMakeFiles/moment_sim.dir/machine_sim.cpp.o"
  "CMakeFiles/moment_sim.dir/machine_sim.cpp.o.d"
  "CMakeFiles/moment_sim.dir/routes.cpp.o"
  "CMakeFiles/moment_sim.dir/routes.cpp.o.d"
  "CMakeFiles/moment_sim.dir/trace_sim.cpp.o"
  "CMakeFiles/moment_sim.dir/trace_sim.cpp.o.d"
  "libmoment_sim.a"
  "libmoment_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moment_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
