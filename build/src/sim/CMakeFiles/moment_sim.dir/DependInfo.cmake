
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/fluid.cpp" "src/sim/CMakeFiles/moment_sim.dir/fluid.cpp.o" "gcc" "src/sim/CMakeFiles/moment_sim.dir/fluid.cpp.o.d"
  "/root/repo/src/sim/machine_sim.cpp" "src/sim/CMakeFiles/moment_sim.dir/machine_sim.cpp.o" "gcc" "src/sim/CMakeFiles/moment_sim.dir/machine_sim.cpp.o.d"
  "/root/repo/src/sim/routes.cpp" "src/sim/CMakeFiles/moment_sim.dir/routes.cpp.o" "gcc" "src/sim/CMakeFiles/moment_sim.dir/routes.cpp.o.d"
  "/root/repo/src/sim/trace_sim.cpp" "src/sim/CMakeFiles/moment_sim.dir/trace_sim.cpp.o" "gcc" "src/sim/CMakeFiles/moment_sim.dir/trace_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ddak/CMakeFiles/moment_ddak.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/moment_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/maxflow/CMakeFiles/moment_maxflow.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/moment_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/moment_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/moment_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
