
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/placement/search.cpp" "src/placement/CMakeFiles/moment_placement.dir/search.cpp.o" "gcc" "src/placement/CMakeFiles/moment_placement.dir/search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/moment_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/maxflow/CMakeFiles/moment_maxflow.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/moment_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
