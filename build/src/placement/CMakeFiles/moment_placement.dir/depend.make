# Empty dependencies file for moment_placement.
# This may be replaced when dependencies are built.
