file(REMOVE_RECURSE
  "libmoment_placement.a"
)
