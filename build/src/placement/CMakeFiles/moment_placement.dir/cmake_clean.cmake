file(REMOVE_RECURSE
  "CMakeFiles/moment_placement.dir/search.cpp.o"
  "CMakeFiles/moment_placement.dir/search.cpp.o.d"
  "libmoment_placement.a"
  "libmoment_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moment_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
