file(REMOVE_RECURSE
  "CMakeFiles/moment_graph.dir/csr.cpp.o"
  "CMakeFiles/moment_graph.dir/csr.cpp.o.d"
  "CMakeFiles/moment_graph.dir/datasets.cpp.o"
  "CMakeFiles/moment_graph.dir/datasets.cpp.o.d"
  "CMakeFiles/moment_graph.dir/generators.cpp.o"
  "CMakeFiles/moment_graph.dir/generators.cpp.o.d"
  "CMakeFiles/moment_graph.dir/partition.cpp.o"
  "CMakeFiles/moment_graph.dir/partition.cpp.o.d"
  "libmoment_graph.a"
  "libmoment_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moment_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
