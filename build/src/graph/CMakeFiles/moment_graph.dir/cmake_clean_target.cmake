file(REMOVE_RECURSE
  "libmoment_graph.a"
)
