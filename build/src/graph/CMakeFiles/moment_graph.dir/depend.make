# Empty dependencies file for moment_graph.
# This may be replaced when dependencies are built.
