file(REMOVE_RECURSE
  "CMakeFiles/moment_iostack.dir/feature_store.cpp.o"
  "CMakeFiles/moment_iostack.dir/feature_store.cpp.o.d"
  "CMakeFiles/moment_iostack.dir/ssd.cpp.o"
  "CMakeFiles/moment_iostack.dir/ssd.cpp.o.d"
  "libmoment_iostack.a"
  "libmoment_iostack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moment_iostack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
