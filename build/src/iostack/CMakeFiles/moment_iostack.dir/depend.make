# Empty dependencies file for moment_iostack.
# This may be replaced when dependencies are built.
