file(REMOVE_RECURSE
  "libmoment_iostack.a"
)
