# Empty dependencies file for moment_topology.
# This may be replaced when dependencies are built.
