file(REMOVE_RECURSE
  "libmoment_topology.a"
)
