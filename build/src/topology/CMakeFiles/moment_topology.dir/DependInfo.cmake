
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/cluster.cpp" "src/topology/CMakeFiles/moment_topology.dir/cluster.cpp.o" "gcc" "src/topology/CMakeFiles/moment_topology.dir/cluster.cpp.o.d"
  "/root/repo/src/topology/device.cpp" "src/topology/CMakeFiles/moment_topology.dir/device.cpp.o" "gcc" "src/topology/CMakeFiles/moment_topology.dir/device.cpp.o.d"
  "/root/repo/src/topology/discovery.cpp" "src/topology/CMakeFiles/moment_topology.dir/discovery.cpp.o" "gcc" "src/topology/CMakeFiles/moment_topology.dir/discovery.cpp.o.d"
  "/root/repo/src/topology/flow_graph.cpp" "src/topology/CMakeFiles/moment_topology.dir/flow_graph.cpp.o" "gcc" "src/topology/CMakeFiles/moment_topology.dir/flow_graph.cpp.o.d"
  "/root/repo/src/topology/machine.cpp" "src/topology/CMakeFiles/moment_topology.dir/machine.cpp.o" "gcc" "src/topology/CMakeFiles/moment_topology.dir/machine.cpp.o.d"
  "/root/repo/src/topology/predictor.cpp" "src/topology/CMakeFiles/moment_topology.dir/predictor.cpp.o" "gcc" "src/topology/CMakeFiles/moment_topology.dir/predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/moment_util.dir/DependInfo.cmake"
  "/root/repo/build/src/maxflow/CMakeFiles/moment_maxflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
