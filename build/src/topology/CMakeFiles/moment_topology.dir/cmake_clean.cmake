file(REMOVE_RECURSE
  "CMakeFiles/moment_topology.dir/cluster.cpp.o"
  "CMakeFiles/moment_topology.dir/cluster.cpp.o.d"
  "CMakeFiles/moment_topology.dir/device.cpp.o"
  "CMakeFiles/moment_topology.dir/device.cpp.o.d"
  "CMakeFiles/moment_topology.dir/discovery.cpp.o"
  "CMakeFiles/moment_topology.dir/discovery.cpp.o.d"
  "CMakeFiles/moment_topology.dir/flow_graph.cpp.o"
  "CMakeFiles/moment_topology.dir/flow_graph.cpp.o.d"
  "CMakeFiles/moment_topology.dir/machine.cpp.o"
  "CMakeFiles/moment_topology.dir/machine.cpp.o.d"
  "CMakeFiles/moment_topology.dir/predictor.cpp.o"
  "CMakeFiles/moment_topology.dir/predictor.cpp.o.d"
  "libmoment_topology.a"
  "libmoment_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moment_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
