
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ddak/adaptive.cpp" "src/ddak/CMakeFiles/moment_ddak.dir/adaptive.cpp.o" "gcc" "src/ddak/CMakeFiles/moment_ddak.dir/adaptive.cpp.o.d"
  "/root/repo/src/ddak/ddak.cpp" "src/ddak/CMakeFiles/moment_ddak.dir/ddak.cpp.o" "gcc" "src/ddak/CMakeFiles/moment_ddak.dir/ddak.cpp.o.d"
  "/root/repo/src/ddak/workload.cpp" "src/ddak/CMakeFiles/moment_ddak.dir/workload.cpp.o" "gcc" "src/ddak/CMakeFiles/moment_ddak.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sampling/CMakeFiles/moment_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/moment_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/moment_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/moment_util.dir/DependInfo.cmake"
  "/root/repo/build/src/maxflow/CMakeFiles/moment_maxflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
