file(REMOVE_RECURSE
  "CMakeFiles/moment_ddak.dir/adaptive.cpp.o"
  "CMakeFiles/moment_ddak.dir/adaptive.cpp.o.d"
  "CMakeFiles/moment_ddak.dir/ddak.cpp.o"
  "CMakeFiles/moment_ddak.dir/ddak.cpp.o.d"
  "CMakeFiles/moment_ddak.dir/workload.cpp.o"
  "CMakeFiles/moment_ddak.dir/workload.cpp.o.d"
  "libmoment_ddak.a"
  "libmoment_ddak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moment_ddak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
