file(REMOVE_RECURSE
  "libmoment_ddak.a"
)
