# Empty compiler generated dependencies file for moment_ddak.
# This may be replaced when dependencies are built.
