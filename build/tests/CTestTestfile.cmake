# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_maxflow[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_placement[1]_include.cmake")
include("/root/repo/build/tests/test_sampling[1]_include.cmake")
include("/root/repo/build/tests/test_ddak[1]_include.cmake")
include("/root/repo/build/tests/test_gnn[1]_include.cmake")
include("/root/repo/build/tests/test_iostack[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
