file(REMOVE_RECURSE
  "CMakeFiles/test_ddak.dir/test_ddak.cpp.o"
  "CMakeFiles/test_ddak.dir/test_ddak.cpp.o.d"
  "test_ddak"
  "test_ddak.pdb"
  "test_ddak[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ddak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
