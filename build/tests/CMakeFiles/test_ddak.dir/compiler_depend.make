# Empty compiler generated dependencies file for test_ddak.
# This may be replaced when dependencies are built.
