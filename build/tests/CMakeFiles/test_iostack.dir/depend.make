# Empty dependencies file for test_iostack.
# This may be replaced when dependencies are built.
