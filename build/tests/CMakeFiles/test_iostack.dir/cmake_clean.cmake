file(REMOVE_RECURSE
  "CMakeFiles/test_iostack.dir/test_iostack.cpp.o"
  "CMakeFiles/test_iostack.dir/test_iostack.cpp.o.d"
  "test_iostack"
  "test_iostack.pdb"
  "test_iostack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iostack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
