file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_15_ddak.dir/bench_fig14_15_ddak.cpp.o"
  "CMakeFiles/bench_fig14_15_ddak.dir/bench_fig14_15_ddak.cpp.o.d"
  "bench_fig14_15_ddak"
  "bench_fig14_15_ddak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_15_ddak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
