# Empty compiler generated dependencies file for bench_fig14_15_ddak.
# This may be replaced when dependencies are built.
