file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_nvlink.dir/bench_fig18_nvlink.cpp.o"
  "CMakeFiles/bench_fig18_nvlink.dir/bench_fig18_nvlink.cpp.o.d"
  "bench_fig18_nvlink"
  "bench_fig18_nvlink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_nvlink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
