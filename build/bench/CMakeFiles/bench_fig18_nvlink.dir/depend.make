# Empty dependencies file for bench_fig18_nvlink.
# This may be replaced when dependencies are built.
