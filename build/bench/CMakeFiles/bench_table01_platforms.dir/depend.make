# Empty dependencies file for bench_table01_platforms.
# This may be replaced when dependencies are built.
