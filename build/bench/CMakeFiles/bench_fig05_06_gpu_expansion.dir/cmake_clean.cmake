file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_06_gpu_expansion.dir/bench_fig05_06_gpu_expansion.cpp.o"
  "CMakeFiles/bench_fig05_06_gpu_expansion.dir/bench_fig05_06_gpu_expansion.cpp.o.d"
  "bench_fig05_06_gpu_expansion"
  "bench_fig05_06_gpu_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_06_gpu_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
