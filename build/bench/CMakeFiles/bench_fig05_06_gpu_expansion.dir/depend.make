# Empty dependencies file for bench_fig05_06_gpu_expansion.
# This may be replaced when dependencies are built.
