file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_02_placements.dir/bench_fig01_02_placements.cpp.o"
  "CMakeFiles/bench_fig01_02_placements.dir/bench_fig01_02_placements.cpp.o.d"
  "bench_fig01_02_placements"
  "bench_fig01_02_placements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_02_placements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
