# Empty compiler generated dependencies file for bench_fig01_02_placements.
# This may be replaced when dependencies are built.
