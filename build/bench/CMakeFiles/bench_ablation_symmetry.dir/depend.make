# Empty dependencies file for bench_ablation_symmetry.
# This may be replaced when dependencies are built.
