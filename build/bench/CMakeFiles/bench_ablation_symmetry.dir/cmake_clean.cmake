file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_symmetry.dir/bench_ablation_symmetry.cpp.o"
  "CMakeFiles/bench_ablation_symmetry.dir/bench_ablation_symmetry.cpp.o.d"
  "bench_ablation_symmetry"
  "bench_ablation_symmetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_symmetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
