file(REMOVE_RECURSE
  "CMakeFiles/bench_preprocessing_cost.dir/bench_preprocessing_cost.cpp.o"
  "CMakeFiles/bench_preprocessing_cost.dir/bench_preprocessing_cost.cpp.o.d"
  "bench_preprocessing_cost"
  "bench_preprocessing_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_preprocessing_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
