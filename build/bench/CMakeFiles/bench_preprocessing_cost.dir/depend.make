# Empty dependencies file for bench_preprocessing_cost.
# This may be replaced when dependencies are built.
