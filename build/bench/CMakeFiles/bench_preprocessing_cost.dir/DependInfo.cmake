
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_preprocessing_cost.cpp" "bench/CMakeFiles/bench_preprocessing_cost.dir/bench_preprocessing_cost.cpp.o" "gcc" "bench/CMakeFiles/bench_preprocessing_cost.dir/bench_preprocessing_cost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/moment_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/moment_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/moment_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/moment_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/ddak/CMakeFiles/moment_ddak.dir/DependInfo.cmake"
  "/root/repo/build/src/iostack/CMakeFiles/moment_iostack.dir/DependInfo.cmake"
  "/root/repo/build/src/gnn/CMakeFiles/moment_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/moment_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/moment_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/maxflow/CMakeFiles/moment_maxflow.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/moment_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/moment_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
