file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_featdim.dir/bench_ext_featdim.cpp.o"
  "CMakeFiles/bench_ext_featdim.dir/bench_ext_featdim.cpp.o.d"
  "bench_ext_featdim"
  "bench_ext_featdim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_featdim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
