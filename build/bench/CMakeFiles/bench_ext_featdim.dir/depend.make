# Empty dependencies file for bench_ext_featdim.
# This may be replaced when dependencies are built.
