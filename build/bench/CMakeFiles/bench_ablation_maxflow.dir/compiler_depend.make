# Empty compiler generated dependencies file for bench_ablation_maxflow.
# This may be replaced when dependencies are built.
