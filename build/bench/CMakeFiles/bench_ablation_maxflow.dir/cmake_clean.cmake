file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_maxflow.dir/bench_ablation_maxflow.cpp.o"
  "CMakeFiles/bench_ablation_maxflow.dir/bench_ablation_maxflow.cpp.o.d"
  "bench_ablation_maxflow"
  "bench_ablation_maxflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_maxflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
