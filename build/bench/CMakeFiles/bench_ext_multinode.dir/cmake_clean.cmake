file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multinode.dir/bench_ext_multinode.cpp.o"
  "CMakeFiles/bench_ext_multinode.dir/bench_ext_multinode.cpp.o.d"
  "bench_ext_multinode"
  "bench_ext_multinode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multinode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
