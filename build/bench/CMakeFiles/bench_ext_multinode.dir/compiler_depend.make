# Empty compiler generated dependencies file for bench_ext_multinode.
# This may be replaced when dependencies are built.
