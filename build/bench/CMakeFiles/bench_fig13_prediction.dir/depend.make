# Empty dependencies file for bench_fig13_prediction.
# This may be replaced when dependencies are built.
