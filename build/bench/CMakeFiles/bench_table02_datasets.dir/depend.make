# Empty dependencies file for bench_table02_datasets.
# This may be replaced when dependencies are built.
