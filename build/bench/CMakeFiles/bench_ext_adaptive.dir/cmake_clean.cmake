file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_adaptive.dir/bench_ext_adaptive.cpp.o"
  "CMakeFiles/bench_ext_adaptive.dir/bench_ext_adaptive.cpp.o.d"
  "bench_ext_adaptive"
  "bench_ext_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
