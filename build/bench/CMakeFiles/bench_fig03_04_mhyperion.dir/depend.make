# Empty dependencies file for bench_fig03_04_mhyperion.
# This may be replaced when dependencies are built.
