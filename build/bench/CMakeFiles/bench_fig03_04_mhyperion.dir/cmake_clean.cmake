file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_04_mhyperion.dir/bench_fig03_04_mhyperion.cpp.o"
  "CMakeFiles/bench_fig03_04_mhyperion.dir/bench_fig03_04_mhyperion.cpp.o.d"
  "bench_fig03_04_mhyperion"
  "bench_fig03_04_mhyperion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_04_mhyperion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
