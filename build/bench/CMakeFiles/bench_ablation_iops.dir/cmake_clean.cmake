file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_iops.dir/bench_ablation_iops.cpp.o"
  "CMakeFiles/bench_ablation_iops.dir/bench_ablation_iops.cpp.o.d"
  "bench_ablation_iops"
  "bench_ablation_iops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_iops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
