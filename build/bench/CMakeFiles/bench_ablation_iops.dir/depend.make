# Empty dependencies file for bench_ablation_iops.
# This may be replaced when dependencies are built.
