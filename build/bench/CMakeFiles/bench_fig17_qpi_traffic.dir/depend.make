# Empty dependencies file for bench_fig17_qpi_traffic.
# This may be replaced when dependencies are built.
