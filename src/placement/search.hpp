#pragma once
// Hardware placement search (paper Section 3.2, "Problem Solving"):
//   1. enumerate all assignments of G GPUs and S SSDs to slot groups that
//      respect unit budgets and device-kind constraints;
//   2. eliminate equivalent variants via the machine's automorphism group
//      (topological symmetry, switch symmetry, rotation invariance) by
//      keeping only orbit-canonical placements;
//   3. evaluate each survivor with the time-bisection max-flow predictor
//      under equal per-GPU demands;
//   4. return candidates ranked by predicted throughput.

#include <cstddef>
#include <string>
#include <vector>

#include "topology/machine.hpp"
#include "topology/predictor.hpp"

namespace moment::placement {

struct CandidateResult {
  topology::Placement placement;
  topology::Prediction prediction;
  /// Predicted aggregate throughput (bytes/s) in demand mode — the ranking key.
  double score = 0.0;
  /// Aggregate fabric max-flow with the GPU cache disabled (bytes/s): the
  /// placement's raw IO headroom, used to break ties between candidates that
  /// all hit the SSD-aggregate bound.
  double fabric_rate_bound = 0.0;
};

struct SearchOptions {
  int num_gpus = 4;
  int num_ssds = 8;
  bool nvlink = false;
  bool use_symmetry_reduction = true;
  /// Bytes each GPU must pull per epoch. Only the ratio matters for ranking;
  /// the default keeps min_time in a well-conditioned range.
  double per_gpu_demand_bytes = 64.0 * 1024 * 1024 * 1024;
  /// Byte budget per storage tier (indexed by topology::StorageTier; empty or
  /// negative entries = rate-limited). Without these, the GPU-HBM tier can
  /// absorb the whole demand and every placement scores identically — always
  /// pass workload-derived budgets for meaningful searches (see
  /// core::AutoModule, which wires ddak::EpochWorkload in).
  std::vector<double> per_tier_bytes;
  /// Per-GPU-HBM byte supply (cache-hit bytes); negative = rate-limited.
  double gpu_hbm_bytes = -1.0;
  std::size_t keep_top = 8;
  /// Candidate evaluation parallelism: 1 evaluates serially on the calling
  /// thread; any other value fans the (independent) max-flow evaluations out
  /// over the shared util::compute_pool(). The ranked result is identical
  /// either way — candidates are collected first and written by index.
  std::size_t eval_threads = 0;
};

struct SearchResult {
  std::vector<CandidateResult> top;     // descending by score
  std::size_t total_combinations = 0;   // feasible placements before reduction
  std::size_t evaluated = 0;            // after symmetry reduction
  const topology::MachineSpec* spec = nullptr;

  const CandidateResult& best() const { return top.front(); }
};

SearchResult search_placements(const topology::MachineSpec& spec,
                               const SearchOptions& options);

/// The machine's slot-group automorphism group: the declared generators
/// closed under composition, identity included. O(|group|^2) fixpoint
/// iteration — compute it once per search, not per candidate.
std::vector<std::vector<int>> automorphism_group(
    const topology::MachineSpec& spec);

/// Canonical representative of a placement under the machine's automorphism
/// group (lexicographically smallest orbit member). The (spec, p) overload
/// recomputes the group; batch callers should hoist automorphism_group() and
/// use the second form.
topology::Placement canonicalize(const topology::MachineSpec& spec,
                                 const topology::Placement& p);
topology::Placement canonicalize(const topology::Placement& p,
                                 const std::vector<std::vector<int>>& group);

/// One-line description, e.g. "GPUs: PLX0=2 PLX1=2 | SSDs: RC0=2 ...".
std::string describe(const topology::MachineSpec& spec,
                     const topology::Placement& p);

/// Evaluates a single placement with the demand-mode predictor under the
/// options' demand and byte budgets.
CandidateResult evaluate_placement(const topology::MachineSpec& spec,
                                   const topology::Placement& p,
                                   const SearchOptions& options);

}  // namespace moment::placement
