#include "placement/search.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>
#include <sstream>

#include "topology/flow_graph.hpp"
#include "util/thread_pool.hpp"

namespace moment::placement {

using topology::MachineSpec;
using topology::Placement;

namespace {

/// Applies a slot-group permutation to a placement's count vectors.
Placement permute(const Placement& p, const std::vector<int>& perm) {
  Placement out = p;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    out.gpus_per_group[static_cast<std::size_t>(perm[i])] = p.gpus_per_group[i];
    out.ssds_per_group[static_cast<std::size_t>(perm[i])] = p.ssds_per_group[i];
  }
  return out;
}

/// Lexicographic comparison on (gpus, ssds).
bool lex_less(const Placement& a, const Placement& b) {
  if (a.gpus_per_group != b.gpus_per_group) {
    return a.gpus_per_group < b.gpus_per_group;
  }
  return a.ssds_per_group < b.ssds_per_group;
}

void enumerate_counts(const MachineSpec& spec, std::size_t group_idx,
                      int remaining, bool is_gpu,
                      std::vector<int>& counts,
                      const std::vector<int>& gpu_counts,
                      const std::function<void(const std::vector<int>&)>& emit) {
  if (group_idx == spec.slot_groups.size()) {
    if (remaining == 0) emit(counts);
    return;
  }
  const auto& g = spec.slot_groups[group_idx];
  const bool allowed = is_gpu ? g.allows_gpu : g.allows_ssd;
  int max_here = 0;
  if (allowed) {
    const int used_by_gpus =
        is_gpu ? 0 : gpu_counts[group_idx] * topology::kGpuUnits;
    const int free_units = g.units - used_by_gpus;
    const int per_unit = is_gpu ? topology::kGpuUnits : topology::kSsdUnits;
    max_here = std::min(remaining, free_units / per_unit);
  }
  for (int k = 0; k <= max_here; ++k) {
    counts[group_idx] = k;
    enumerate_counts(spec, group_idx + 1, remaining - k, is_gpu, counts,
                     gpu_counts, emit);
  }
  counts[group_idx] = 0;
}

}  // namespace

std::vector<std::vector<int>> automorphism_group(const MachineSpec& spec) {
  // Closes the declared generator set under composition (the machines we
  // model have tiny groups, so fixpoint iteration is fine).
  const auto n = spec.slot_groups.size();
  std::vector<int> identity(n);
  for (std::size_t i = 0; i < n; ++i) identity[i] = static_cast<int>(i);
  std::set<std::vector<int>> group{identity};
  for (const auto& g : spec.automorphisms) group.insert(g);
  bool grew = true;
  while (grew) {
    grew = false;
    std::vector<std::vector<int>> members(group.begin(), group.end());
    for (const auto& a : members) {
      for (const auto& b : members) {
        std::vector<int> c(n);
        for (std::size_t i = 0; i < n; ++i) {
          c[i] = a[static_cast<std::size_t>(b[i])];
        }
        if (group.insert(c).second) grew = true;
      }
    }
  }
  return {group.begin(), group.end()};
}

Placement canonicalize(const Placement& p,
                       const std::vector<std::vector<int>>& group) {
  Placement best = p;
  for (const auto& perm : group) {
    const Placement candidate = permute(p, perm);
    if (lex_less(candidate, best)) best = candidate;
  }
  return best;
}

Placement canonicalize(const MachineSpec& spec, const Placement& p) {
  return canonicalize(p, automorphism_group(spec));
}

std::string describe(const MachineSpec& spec, const Placement& p) {
  std::ostringstream out;
  out << "GPUs:";
  for (std::size_t i = 0; i < spec.slot_groups.size(); ++i) {
    if (p.gpus_per_group[i] > 0) {
      out << ' ' << spec.slot_groups[i].name << '=' << p.gpus_per_group[i];
    }
  }
  out << " | SSDs:";
  for (std::size_t i = 0; i < spec.slot_groups.size(); ++i) {
    if (p.ssds_per_group[i] > 0) {
      out << ' ' << spec.slot_groups[i].name << '=' << p.ssds_per_group[i];
    }
  }
  if (p.nvlink) out << " | NVLink";
  return out.str();
}

CandidateResult evaluate_placement(const MachineSpec& spec, const Placement& p,
                                   const SearchOptions& options) {
  CandidateResult result;
  result.placement = p;
  const topology::Topology topo = topology::instantiate(spec, p);
  const topology::FlowGraph fg = topology::compile_flow_graph(topo);
  topology::WorkloadDemand demand;
  demand.per_gpu_bytes.assign(fg.gpus.size(), options.per_gpu_demand_bytes);
  demand.per_tier_bytes = options.per_tier_bytes;
  if (options.gpu_hbm_bytes >= 0.0) {
    demand.per_storage_bytes.assign(fg.storage.size(), -1.0);
    for (std::size_t i = 0; i < fg.storage.size(); ++i) {
      if (fg.storage[i].tier == topology::StorageTier::kGpuHbm) {
        demand.per_storage_bytes[i] = options.gpu_hbm_bytes;
      }
    }
  }
  result.prediction = topology::predict(fg, demand);
  result.score = result.prediction.feasible ? result.prediction.throughput : 0.0;
  topology::FlowGraphOptions no_cache;
  no_cache.gpu_cache = false;
  const topology::FlowGraph fabric = topology::compile_flow_graph(topo, no_cache);
  result.fabric_rate_bound = topology::predict_rate_bound(fabric);
  return result;
}

SearchResult search_placements(const MachineSpec& spec,
                               const SearchOptions& options) {
  SearchResult result;
  result.spec = &spec;

  const auto n = spec.slot_groups.size();
  const auto group = automorphism_group(spec);  // once, not per candidate
  std::set<std::pair<std::vector<int>, std::vector<int>>> seen;

  std::vector<int> gpu_counts(n, 0);
  std::vector<int> ssd_counts(n, 0);

  // Phase 1 (serial): enumerate and dedup orbit-canonical placements.
  std::vector<Placement> candidates;
  enumerate_counts(
      spec, 0, options.num_gpus, /*is_gpu=*/true, gpu_counts, gpu_counts,
      [&](const std::vector<int>& gpus) {
        std::vector<int> gpus_copy = gpus;  // frozen for the SSD recursion
        enumerate_counts(
            spec, 0, options.num_ssds, /*is_gpu=*/false, ssd_counts, gpus_copy,
            [&](const std::vector<int>& ssds) {
              ++result.total_combinations;
              Placement p;
              p.gpus_per_group = gpus_copy;
              p.ssds_per_group = ssds;
              p.nvlink = options.nvlink;
              if (options.use_symmetry_reduction) {
                p = canonicalize(p, group);
              }
              if (!seen.insert({p.gpus_per_group, p.ssds_per_group}).second) {
                return;  // orbit already evaluated
              }
              ++result.evaluated;
              candidates.push_back(std::move(p));
            });
      });

  // Phase 2: evaluate the independent max-flow predictions in parallel,
  // each candidate writing its own slot; ranking below stays deterministic
  // regardless of thread count.
  std::vector<CandidateResult> all(candidates.size());
  util::ThreadPool* pool =
      options.eval_threads == 1 ? nullptr : util::compute_pool();
  util::parallel_for(pool, 0, candidates.size(), 1,
                     [&](std::size_t b, std::size_t e) {
                       for (std::size_t i = b; i < e; ++i) {
                         all[i] = evaluate_placement(spec, candidates[i],
                                                     options);
                       }
                     });

  std::sort(all.begin(), all.end(),
            [](const CandidateResult& a, const CandidateResult& b) {
              // Scores within solver tolerance count as ties; fall through to
              // raw fabric headroom, then to a deterministic ordering.
              if (std::abs(a.score - b.score) >
                  1e-3 * std::max(a.score, b.score)) {
                return a.score > b.score;
              }
              if (std::abs(a.fabric_rate_bound - b.fabric_rate_bound) >
                  1e-6 * std::max(a.fabric_rate_bound, b.fabric_rate_bound)) {
                return a.fabric_rate_bound > b.fabric_rate_bound;
              }
              if (a.placement.gpus_per_group != b.placement.gpus_per_group) {
                return a.placement.gpus_per_group < b.placement.gpus_per_group;
              }
              return a.placement.ssds_per_group < b.placement.ssds_per_group;
            });
  if (all.size() > options.keep_top) all.resize(options.keep_top);
  result.top = std::move(all);
  return result;
}

}  // namespace moment::placement
