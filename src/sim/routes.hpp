#pragma once
// Route computation for the runtime simulator. A stream (storage node ->
// GPU compute node) follows one or more concrete paths over the physical
// edges of the compiled flow graph.
//
// Routing policies mirror the systems being modelled:
//   kSinglePath — what a topology-oblivious runtime does: every request for a
//     given (SSD, GPU) pair takes the one obvious PCIe route.
//   kMultiPath  — Moment's flow-guided IO stack: traffic splits across up to
//     `max_paths` distinct routes weighted by bottleneck capacity, the
//     realisation of the max-flow traffic plan.

#include <vector>

#include "maxflow/flow_network.hpp"
#include "topology/flow_graph.hpp"

namespace moment::sim {

enum class RoutingPolicy { kSinglePath, kMultiPath };

struct PathSet {
  /// Each path is a sequence of forward flow-edge ids from storage node to
  /// compute node.
  std::vector<std::vector<maxflow::EdgeId>> paths;
  /// Traffic split weights, normalised to sum 1.
  std::vector<double> weights;
};

/// Finds up to `max_paths` hop-shortest (capacity-widest among equals) paths
/// from `from` to `to`, avoiding the virtual source/sink. Later paths are
/// discouraged from reusing earlier paths' edges. Returns an empty set if the
/// nodes are disconnected.
PathSet find_paths(const topology::FlowGraph& fg, maxflow::NodeId from,
                   maxflow::NodeId to, RoutingPolicy policy,
                   int max_paths = 3);

}  // namespace moment::sim
