#pragma once
// Epoch-level "measured" simulator. Where the max-flow module *predicts*
// throughput from capacities alone, this module executes the training loop's
// traffic at flow-level fidelity: per-round concurrent streams, max-min fair
// link sharing, data-parallel barriers, and sampling/compute overlap. The
// deliberate modelling differences (single/weighted-path routing instead of
// optimal splitting, per-round barriers, integer rounds) are what give the
// paper's Fig. 13 prediction-vs-measurement gap.

#include <span>
#include <string>
#include <vector>

#include "comm/plan.hpp"
#include "ddak/ddak.hpp"
#include "ddak/workload.hpp"
#include "sim/fluid.hpp"
#include "sim/routes.hpp"
#include "topology/machine.hpp"

namespace moment::sim {

struct SimOptions {
  RoutingPolicy routing = RoutingPolicy::kMultiPath;
  int max_paths = 3;
  /// Model-training time per batch on one GPU (seconds); sets the compute
  /// side of the IO/compute overlap. See runtime/models.hpp for presets.
  double compute_time_per_batch = 0.06;
  /// Fixed per-round launch/sync overhead (kernel launches, allreduce).
  double round_overhead_s = 0.002;
  /// M-GIDS mode: SSDs are statically partitioned across GPUs (GPU g reads
  /// only SSD bins with ordinal in [g*S/G, (g+1)*S/G)); each GPU's whole SSD
  /// byte share is drawn from its own subset.
  bool partition_ssds_per_gpu = false;
  /// Multiplier on SSD-tier stream bytes: software page-cache overheads and
  /// page-granularity read amplification (BaM-style stacks move whole 4 KiB
  /// cache lines plus metadata traffic per miss). 1.0 = none.
  double ssd_read_amplification = 1.0;
  /// Random-read IOPS limit per SSD (0 = bandwidth-limited only). When set,
  /// each SSD's egress rate is capped at min(bandwidth, iops * request
  /// size) — 4 KiB feature reads on a P5510 are IOPS-bound near 1M ops/s.
  double ssd_iops = 0.0;
  double ssd_request_bytes = 4096.0;
  /// Average feature rows per SSD command after the client's dedup + run
  /// coalescing (TieredFeatureClient's GatherStats::coalesce_rows_per_cmd).
  /// Each command moves factor * request bytes, so under an IOPS cap the
  /// effective egress rate scales by the same factor; 1.0 = no coalescing.
  double ssd_coalesce_factor = 1.0;
  /// Degraded mode: SSD bins with these ordinals (position among SSD-tier
  /// bins, matching the partition_ssds_per_gpu numbering) are failed; their
  /// traffic share is redistributed proportionally onto surviving SSD bins —
  /// the steady state after the feature store's failover remap.
  std::vector<int> failed_ssd_ordinals;
  /// Transient read-error rate p on the SSD tier: every SSD byte is fetched
  /// 1/(1-p) times on average (retry read amplification). 0 = fault-free.
  double ssd_transient_error_rate = 0.0;
  /// Gradient all-reduce comm phase. When `comm_plan` is set, every round
  /// additionally pays the plan's contention-costed time for
  /// `gradient_bytes_per_round` bytes (per schedule step, the most loaded
  /// (link, direction) sets the step's duration; steps are sequential), and
  /// the plan's modeled per-link bytes are folded into link_traffic. The
  /// comm phase is a barrier between rounds, so it does not overlap IO or
  /// compute. Not owned; null = comm-free epochs (historical behaviour).
  const comm::CommPlan* comm_plan = nullptr;
  double gradient_bytes_per_round = 0.0;
};

struct LinkTrafficReport {
  topology::LinkId link = -1;
  std::string label;
  topology::LinkKind kind = topology::LinkKind::kPcie;
  double bytes_ab = 0.0;  // per epoch
  double bytes_ba = 0.0;
};

struct SimReport {
  double epoch_time_s = 0.0;
  double round_time_s = 0.0;
  double io_round_time_s = 0.0;     // slowest GPU's IO time per round
  std::size_t rounds = 0;
  double throughput_seeds_per_s = 0.0;   // trained seed vertices / s
  double agg_io_bandwidth = 0.0;         // bytes/s during the IO phase
  std::vector<double> per_gpu_io_bandwidth;
  double imbalance_cv = 0.0;             // CV of per-GPU IO finish times
  double qpi_bytes = 0.0;                // per epoch, both directions
  std::vector<LinkTrafficReport> link_traffic;
  bool io_bound = false;
  /// Degraded-mode echo: failed SSD bins and the retry read-amplification
  /// factor applied to SSD-tier bytes (1.0 = fault-free).
  std::size_t failed_ssds = 0;
  double retry_read_amplification = 1.0;
  /// Echo of SimOptions::ssd_coalesce_factor applied to the IOPS cap.
  double coalesce_factor = 1.0;
  /// Contention-costed gradient all-reduce time per round (0 without a
  /// comm plan) and the plan's algorithm name ("" without one).
  double comm_round_time_s = 0.0;
  std::string comm_algorithm;
};

/// Simulates one epoch of data-parallel training.
/// `bins`/`placement` define where each vertex's embedding lives and hence
/// the per-(GPU, storage) traffic; a merged replicated-GPU bin
/// (storage_index == -1) is served HBM-locally by every GPU.
SimReport simulate_epoch(const topology::Topology& topo,
                         const topology::FlowGraph& fg,
                         const ddak::EpochWorkload& workload,
                         std::span<const ddak::Bin> bins,
                         const ddak::DataPlacementResult& placement,
                         const SimOptions& options = {});

/// Merges per-GPU HBM bins into one replicated bin (capacity = one replica,
/// traffic = sum). Use with GpuCacheMode::kReplicated.
std::vector<ddak::Bin> merge_replicated_gpu_bins(std::span<const ddak::Bin> bins);

/// Splits the CPU cache into a socket-mirrored hot portion and per-socket
/// exclusive remainders: every socket mirrors the hottest
/// `mirror_fraction` of its cache budget, so those hits are served from the
/// GPU's local socket and never cross QPI (the paper's "adaptive migration
/// of hot data"); colder cached vertices stay single-copy. This is Moment's
/// CPU cache policy; the hash baseline stripes all vertices across sockets.
std::vector<ddak::Bin> merge_replicated_cpu_bins(
    std::span<const ddak::Bin> bins, double mirror_fraction = 0.5);

}  // namespace moment::sim
