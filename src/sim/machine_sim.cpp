#include "sim/machine_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/stats.hpp"

namespace moment::sim {

std::vector<ddak::Bin> merge_replicated_gpu_bins(
    std::span<const ddak::Bin> bins) {
  std::vector<ddak::Bin> out;
  ddak::Bin merged;
  merged.name = "GPU.HBM(replicated)";
  merged.storage_index = -1;
  merged.tier = topology::StorageTier::kGpuHbm;
  bool any_gpu = false;
  for (const auto& b : bins) {
    if (b.tier == topology::StorageTier::kGpuHbm) {
      any_gpu = true;
      merged.capacity_vertices =
          merged.capacity_vertices == 0.0
              ? b.capacity_vertices
              : std::min(merged.capacity_vertices, b.capacity_vertices);
      merged.traffic_target += b.traffic_target;
    } else {
      out.push_back(b);
    }
  }
  if (any_gpu) out.insert(out.begin(), merged);
  return out;
}

std::vector<ddak::Bin> merge_replicated_cpu_bins(
    std::span<const ddak::Bin> bins, double mirror_fraction) {
  mirror_fraction = std::clamp(mirror_fraction, 0.0, 1.0);
  std::vector<ddak::Bin> out;
  ddak::Bin mirrored;
  mirrored.name = "CPU.DRAM(mirrored)";
  mirrored.tier = topology::StorageTier::kCpuDram;
  bool any_cpu = false;
  double capacity_total = 0.0;
  double min_socket_capacity = 0.0;
  std::vector<ddak::Bin> exclusives;
  for (const auto& b : bins) {
    if (b.tier == topology::StorageTier::kCpuDram && b.storage_index >= 0) {
      any_cpu = true;
      capacity_total += b.capacity_vertices;
      min_socket_capacity =
          min_socket_capacity == 0.0
              ? b.capacity_vertices
              : std::min(min_socket_capacity, b.capacity_vertices);
      mirrored.traffic_target += b.traffic_target * mirror_fraction;
      mirrored.replica_storage_indices.push_back(b.storage_index);
      ddak::Bin exclusive = b;
      exclusive.capacity_vertices *= 1.0 - mirror_fraction;
      exclusive.traffic_target *= 1.0 - mirror_fraction;
      exclusives.push_back(std::move(exclusive));
    } else {
      out.push_back(b);
    }
  }
  if (any_cpu) {
    // The mirrored content occupies mirror_fraction of every socket's
    // budget; the hottest vertices land here (largest CPU-tier target).
    mirrored.capacity_vertices = mirror_fraction * min_socket_capacity;
    mirrored.storage_index = mirrored.replica_storage_indices.front();
    if (mirrored.capacity_vertices >= 1.0) out.push_back(mirrored);
    for (auto& e : exclusives) {
      if (e.capacity_vertices >= 1.0) out.push_back(std::move(e));
    }
  }
  return out;
}

SimReport simulate_epoch(const topology::Topology& topo,
                         const topology::FlowGraph& fg_in,
                         const ddak::EpochWorkload& workload,
                         std::span<const ddak::Bin> bins,
                         const ddak::DataPlacementResult& placement,
                         const SimOptions& options) {
  if (placement.bin_traffic_share.size() != bins.size()) {
    throw std::invalid_argument("simulate_epoch: placement/bins mismatch");
  }
  // Optional IOPS modelling: cap each SSD's egress edge at iops * request
  // size (4 KiB random reads are IOPS-bound before they are bandwidth-bound
  // on real NVMe).
  topology::FlowGraph capped;
  const topology::FlowGraph* fg_ptr = &fg_in;
  if (options.ssd_iops > 0.0) {
    capped = fg_in;
    // Coalesced multi-row commands move coalesce_factor * request bytes per
    // IOP, so the IOPS ceiling translates to proportionally more bandwidth.
    const double cap = options.ssd_iops * options.ssd_request_bytes *
                       std::max(1.0, options.ssd_coalesce_factor);
    for (const auto& s : capped.storage) {
      if (s.tier != topology::StorageTier::kSsd) continue;
      for (maxflow::EdgeId eid : capped.net.incident(s.node)) {
        const auto& e = capped.net.edge(eid);
        if (e.is_residual || capped.net.edge_source(eid) != s.node) continue;
        capped.net.set_capacity(
            eid, std::min(capped.net.original_capacity(eid), cap));
      }
    }
    fg_ptr = &capped;
  }
  const topology::FlowGraph& fg = *fg_ptr;
  const int num_gpus = static_cast<int>(fg.gpus.size());
  if (num_gpus == 0) throw std::invalid_argument("simulate_epoch: no GPUs");

  const double bytes_per_batch =
      workload.fetches_per_batch * workload.feature_bytes;

  // Build one round's sub-streams: every GPU fetches one batch concurrently.
  std::vector<SubStream> streams;
  double local_bytes_per_gpu = 0.0;  // HBM-replicated hits, same for each GPU
  for (std::size_t bi = 0; bi < bins.size(); ++bi) {
    if (bins[bi].storage_index < 0) {
      local_bytes_per_gpu +=
          bytes_per_batch * placement.bin_traffic_share[bi];
    }
  }
  // M-GIDS partitioning bookkeeping: ordinal of each SSD bin and the total
  // SSD-tier traffic share.
  std::vector<int> ssd_ordinal(bins.size(), -1);
  int num_ssd_bins = 0;
  double ssd_share_total = 0.0;
  for (std::size_t bi = 0; bi < bins.size(); ++bi) {
    if (bins[bi].tier == topology::StorageTier::kSsd) {
      ssd_ordinal[bi] = num_ssd_bins++;
      ssd_share_total += placement.bin_traffic_share[bi];
    }
  }

  // Degraded mode: failed SSD bins shed their traffic share proportionally
  // onto the surviving SSD bins (the post-failover steady state), and
  // transient errors inflate SSD bytes by the retry read amplification.
  std::vector<double> share_of_bin(placement.bin_traffic_share.begin(),
                                   placement.bin_traffic_share.end());
  std::size_t failed_ssd_count = 0;
  if (!options.failed_ssd_ordinals.empty()) {
    std::vector<bool> bin_failed(bins.size(), false);
    double failed_share = 0.0, surviving_share = 0.0;
    int surviving_bins = 0;
    for (std::size_t bi = 0; bi < bins.size(); ++bi) {
      if (ssd_ordinal[bi] < 0) continue;
      const bool f = std::find(options.failed_ssd_ordinals.begin(),
                               options.failed_ssd_ordinals.end(),
                               ssd_ordinal[bi]) !=
                     options.failed_ssd_ordinals.end();
      bin_failed[bi] = f;
      if (f) {
        ++failed_ssd_count;
        failed_share += share_of_bin[bi];
      } else {
        surviving_share += share_of_bin[bi];
        ++surviving_bins;
      }
    }
    if (failed_share > 0.0 && surviving_bins == 0) {
      throw std::invalid_argument(
          "simulate_epoch: all SSD bins carrying traffic are failed");
    }
    for (std::size_t bi = 0; bi < bins.size(); ++bi) {
      if (ssd_ordinal[bi] < 0) continue;
      if (bin_failed[bi]) {
        share_of_bin[bi] = 0.0;
      } else if (failed_share > 0.0) {
        share_of_bin[bi] += surviving_share > 0.0
                                ? failed_share * share_of_bin[bi] /
                                      surviving_share
                                : failed_share /
                                      static_cast<double>(surviving_bins);
      }
    }
  }
  const double retry_amp =
      1.0 /
      (1.0 - std::clamp(options.ssd_transient_error_rate, 0.0, 0.99));

  for (int g = 0; g < num_gpus; ++g) {
    const maxflow::NodeId comp = fg.gpus[static_cast<std::size_t>(g)].comp_node;
    for (std::size_t bi = 0; bi < bins.size(); ++bi) {
      double share = share_of_bin[bi];
      const ddak::Bin& bin = bins[bi];
      if (options.partition_ssds_per_gpu && ssd_ordinal[bi] >= 0 &&
          num_ssd_bins > 0) {
        // GPU g draws its entire SSD byte share from its own SSD subset.
        const int per_gpu = std::max(1, num_ssd_bins / num_gpus);
        const int owner = std::min(ssd_ordinal[bi] / per_gpu, num_gpus - 1);
        share = owner == g
                    ? ssd_share_total / static_cast<double>(per_gpu)
                    : 0.0;
      }
      if (share <= 1e-12) continue;
      double bytes = bytes_per_batch * share;
      if (bin.tier == topology::StorageTier::kSsd) {
        bytes *= options.ssd_read_amplification * retry_amp;
      }
      if (bin.storage_index < 0) {
        continue;  // replicated GPU cache: HBM-local, no fabric traffic
      }
      // Socket-replicated bins: this GPU reads from its nearest replica.
      int chosen = bin.storage_index;
      if (bin.replica_storage_indices.size() > 1) {
        std::size_t best_hops = std::numeric_limits<std::size_t>::max();
        for (int ri : bin.replica_storage_indices) {
          const PathSet rp = find_paths(
              fg, fg.storage[static_cast<std::size_t>(ri)].node, comp,
              RoutingPolicy::kSinglePath);
          if (!rp.paths.empty() && rp.paths[0].size() < best_hops) {
            best_hops = rp.paths[0].size();
            chosen = ri;
          }
        }
      }
      const auto& storage =
          fg.storage[static_cast<std::size_t>(chosen)];
      const PathSet ps =
          find_paths(fg, storage.node, comp, options.routing,
                     options.max_paths);
      if (ps.paths.empty()) {
        throw std::logic_error("simulate_epoch: no route from " + bin.name +
                               " to GPU" + std::to_string(g));
      }
      for (std::size_t p = 0; p < ps.paths.size(); ++p) {
        SubStream s;
        s.gpu = g;
        s.storage_index = chosen;
        s.edges = ps.paths[p];
        s.bytes = bytes * ps.weights[p];
        streams.push_back(std::move(s));
      }
    }
  }

  const FluidResult round = simulate_round(fg, streams, num_gpus);

  SimReport report;
  report.failed_ssds = failed_ssd_count;
  report.retry_read_amplification = retry_amp;
  report.coalesce_factor = std::max(1.0, options.ssd_coalesce_factor);
  report.io_round_time_s = round.finish_time;
  report.round_time_s =
      std::max(round.finish_time, options.compute_time_per_batch) +
      options.round_overhead_s;
  report.io_bound = round.finish_time >= options.compute_time_per_batch;

  // Gradient all-reduce phase: a barrier between rounds, costed against the
  // physical links with per-step contention (the plan's model), so planned
  // vs. flat schedules are directly comparable on the same machine.
  if (options.comm_plan != nullptr && options.gradient_bytes_per_round > 0.0) {
    report.comm_round_time_s =
        options.comm_plan->predicted_seconds(options.gradient_bytes_per_round);
    report.comm_algorithm = comm::to_string(options.comm_plan->algo);
    report.round_time_s += report.comm_round_time_s;
  }

  const std::size_t rounds =
      (workload.batches_per_epoch + static_cast<std::size_t>(num_gpus) - 1) /
      static_cast<std::size_t>(num_gpus);
  report.rounds = rounds;
  // Pipeline: IO of round k overlaps compute of round k-1; the tail adds one
  // compute phase.
  report.epoch_time_s = static_cast<double>(rounds) * report.round_time_s +
                        options.compute_time_per_batch;
  report.throughput_seeds_per_s =
      static_cast<double>(workload.batch_size) *
      static_cast<double>(num_gpus) / report.round_time_s;

  report.per_gpu_io_bandwidth.resize(static_cast<std::size_t>(num_gpus), 0.0);
  std::vector<double> finishes;
  for (int g = 0; g < num_gpus; ++g) {
    const double t = round.gpu_finish[static_cast<std::size_t>(g)];
    finishes.push_back(t);
    const double fabric_bytes = bytes_per_batch - local_bytes_per_gpu;
    report.per_gpu_io_bandwidth[static_cast<std::size_t>(g)] =
        t > 0.0 ? fabric_bytes / t : 0.0;
  }
  report.imbalance_cv = util::coefficient_of_variation(finishes);
  report.agg_io_bandwidth =
      round.finish_time > 0.0
          ? (bytes_per_batch - local_bytes_per_gpu) *
                static_cast<double>(num_gpus) / round.finish_time
          : 0.0;

  // Map per-edge bytes back to physical links, scaled to the whole epoch.
  const auto scale = static_cast<double>(rounds);
  for (const auto& le : fg.link_edges) {
    if (le.link < 0) continue;
    LinkTrafficReport lt;
    lt.link = le.link;
    const auto& l = topo.link(le.link);
    lt.label = l.label;
    lt.kind = l.kind;
    if (le.ab >= 0) {
      lt.bytes_ab = round.edge_bytes[static_cast<std::size_t>(le.ab)] * scale;
    }
    if (le.ba >= 0) {
      lt.bytes_ba = round.edge_bytes[static_cast<std::size_t>(le.ba)] * scale;
    }
    if (lt.kind == topology::LinkKind::kQpi) {
      report.qpi_bytes += lt.bytes_ab + lt.bytes_ba;
    }
    report.link_traffic.push_back(std::move(lt));
  }

  // Fold the comm plan's modeled all-reduce bytes into the link report.
  if (options.comm_plan != nullptr && options.gradient_bytes_per_round > 0.0) {
    const auto volume =
        options.comm_plan->link_volume(options.gradient_bytes_per_round);
    for (const comm::LinkVolume& lv : volume) {
      if (lv.ab == 0 && lv.ba == 0) continue;
      const double ab = static_cast<double>(lv.ab) * scale;
      const double ba = static_cast<double>(lv.ba) * scale;
      LinkTrafficReport* entry = nullptr;
      for (LinkTrafficReport& lt : report.link_traffic) {
        if (lt.link == lv.link) {
          entry = &lt;
          break;
        }
      }
      if (entry == nullptr) {
        LinkTrafficReport lt;
        lt.link = lv.link;
        const auto& l = topo.link(lv.link);
        lt.label = l.label;
        lt.kind = l.kind;
        report.link_traffic.push_back(std::move(lt));
        entry = &report.link_traffic.back();
      }
      entry->bytes_ab += ab;
      entry->bytes_ba += ba;
      if (entry->kind == topology::LinkKind::kQpi) {
        report.qpi_bytes += ab + ba;
      }
    }
  }
  return report;
}

}  // namespace moment::sim
