#pragma once
// Fluid (flow-level) contention simulation of one training round.
//
// Every GPU starts its feature-fetch streams simultaneously; concurrent
// streams share physical links max-min fairly (progressive filling — the
// standard model of PCIe/QPI arbitration between request streams). The
// simulation is event-driven: compute fair rates, advance to the earliest
// stream completion, recompute. Outputs per-GPU IO finish times (load
// imbalance appears here) and per-edge bytes (QPI traffic accounting).

#include <vector>

#include "maxflow/flow_network.hpp"
#include "topology/flow_graph.hpp"

namespace moment::sim {

struct SubStream {
  int gpu = -1;                          // consuming GPU index
  int storage_index = -1;                // FlowGraph storage index (-1 local)
  std::vector<maxflow::EdgeId> edges;    // physical route (may be empty)
  double bytes = 0.0;                    // bytes to move this round
};

struct FluidResult {
  double finish_time = 0.0;             // last stream completion (s)
  std::vector<double> gpu_finish;       // per-GPU IO completion (s)
  std::vector<double> edge_bytes;       // bytes moved per forward EdgeId
  std::size_t events = 0;
};

/// Simulates one round. `num_gpus` sizes the per-GPU result. Streams with
/// empty edge lists (HBM-local hits) complete at t=0.
FluidResult simulate_round(const topology::FlowGraph& fg,
                           std::vector<SubStream> streams, int num_gpus);

/// Max-min fair rates for a set of active streams (exposed for testing).
/// `capacity[e]` applies per forward edge; infinite edges never bind.
std::vector<double> max_min_rates(const topology::FlowGraph& fg,
                                  const std::vector<SubStream>& streams,
                                  const std::vector<bool>& active);

}  // namespace moment::sim
