#pragma once
// Trace-driven epoch simulation. The expectation-mode simulator
// (machine_sim) drives one representative round from the placement's
// *expected* bin shares; this mode instead samples real mini-batches with
// the real neighbor sampler, looks each fetched vertex up in the realised
// data placement, and simulates every traced round individually. It captures
// what expectation mode cannot: round-to-round variance from sampling noise
// and placement granularity.
//
// Traced rounds are scaled to paper-size traffic the same way the workload
// model is: a round's byte total is the paper-scale per-batch volume, split
// across bins by the traced batch's observed composition.

#include <cstdint>

#include "ddak/workload.hpp"
#include "sampling/neighbor_sampler.hpp"
#include "sim/machine_sim.hpp"
#include "util/stats.hpp"

namespace moment::sim {

struct TraceSimOptions {
  SimOptions base;
  /// Rounds actually traced and fluid-simulated; the epoch extrapolates
  /// from their mean (an epoch has thousands of statistically identical
  /// rounds).
  std::size_t trace_rounds = 12;
  /// Seeds per traced batch on the scaled graph (defaults to the hotness
  /// profiler's proportional batch size when 0).
  std::size_t scaled_batch_size = 0;
  std::uint64_t seed = 42;
};

struct TraceSimReport {
  double epoch_time_s = 0.0;
  double throughput_seeds_per_s = 0.0;
  util::Summary round_io_time_s;  // across traced rounds
  double mean_round_time_s = 0.0;
  double qpi_bytes = 0.0;         // extrapolated per epoch
  std::size_t rounds = 0;         // rounds per epoch (extrapolation base)
  std::size_t traced_rounds = 0;
  /// Relative deviation of traced mean IO time from the expectation-mode
  /// simulator's round IO time (diagnostic for Fig.-13-style studies).
  double deviation_from_expectation = 0.0;
};

/// `bin_of_vertex` is the realised placement over `bins` (indices align).
/// `train_vertices` seeds the traced batches; the sampler must wrap the same
/// scaled graph the placement was computed for.
TraceSimReport simulate_epoch_traced(
    const topology::Topology& topo, const topology::FlowGraph& fg,
    const ddak::EpochWorkload& workload,
    std::span<const ddak::Bin> bins,
    const ddak::DataPlacementResult& placement,
    const sampling::NeighborSampler& sampler,
    std::span<const graph::VertexId> train_vertices,
    const TraceSimOptions& options = {});

}  // namespace moment::sim
