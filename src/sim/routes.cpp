#include "sim/routes.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <queue>

namespace moment::sim {

using maxflow::EdgeId;
using maxflow::NodeId;

namespace {

/// Dijkstra with lexicographic cost (penalised hops, then prefer wider
/// bottleneck). Only forward, non-virtual edges participate.
std::vector<EdgeId> best_path(const topology::FlowGraph& fg, NodeId from,
                              NodeId to,
                              const std::map<EdgeId, int>& edge_penalty) {
  const auto& net = fg.net;
  const auto n = static_cast<std::size_t>(net.num_nodes());
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  std::vector<double> width(n, 0.0);
  std::vector<EdgeId> via(n, -1);

  using Entry = std::tuple<double, double, NodeId>;  // (cost, -width, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[static_cast<std::size_t>(from)] = 0.0;
  width[static_cast<std::size_t>(from)] = kInf;
  pq.emplace(0.0, -kInf, from);

  while (!pq.empty()) {
    const auto [cost, neg_w, u] = pq.top();
    pq.pop();
    if (cost > dist[static_cast<std::size_t>(u)] + 1e-12) continue;
    if (u == to) break;
    for (EdgeId eid : net.incident(u)) {
      const auto& e = net.edge(eid);
      if (e.is_residual) continue;
      if (e.to == fg.source || e.to == fg.sink) continue;
      if (net.edge_source(eid) != u) continue;
      const double cap = net.original_capacity(eid);
      if (cap <= 0.0) continue;
      int penalty = 0;
      if (auto it = edge_penalty.find(eid); it != edge_penalty.end()) {
        penalty = it->second;
      }
      const double ncost = cost + 1.0 + 4.0 * penalty;
      const double nwidth = std::min(width[static_cast<std::size_t>(u)], cap);
      auto& d = dist[static_cast<std::size_t>(e.to)];
      auto& w = width[static_cast<std::size_t>(e.to)];
      if (ncost < d - 1e-12 || (std::abs(ncost - d) <= 1e-12 && nwidth > w)) {
        d = ncost;
        w = nwidth;
        via[static_cast<std::size_t>(e.to)] = eid;
        pq.emplace(ncost, -nwidth, e.to);
      }
    }
  }

  if (via[static_cast<std::size_t>(to)] < 0 && from != to) return {};
  std::vector<EdgeId> path;
  for (NodeId v = to; v != from;) {
    const EdgeId eid = via[static_cast<std::size_t>(v)];
    if (eid < 0) return {};
    path.push_back(eid);
    v = fg.net.edge_source(eid);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

double bottleneck(const topology::FlowGraph& fg,
                  const std::vector<EdgeId>& path) {
  double b = std::numeric_limits<double>::infinity();
  for (EdgeId e : path) b = std::min(b, fg.net.original_capacity(e));
  return b;
}

}  // namespace

PathSet find_paths(const topology::FlowGraph& fg, NodeId from, NodeId to,
                   RoutingPolicy policy, int max_paths) {
  PathSet set;
  const int want = policy == RoutingPolicy::kSinglePath ? 1 : max_paths;
  std::map<EdgeId, int> penalty;
  for (int k = 0; k < want; ++k) {
    std::vector<EdgeId> path = best_path(fg, from, to, penalty);
    if (path.empty()) break;
    // Stop once penalisation just re-finds an existing path.
    if (std::find(set.paths.begin(), set.paths.end(), path) !=
        set.paths.end()) {
      break;
    }
    for (EdgeId e : path) ++penalty[e];
    set.paths.push_back(std::move(path));
  }
  if (set.paths.empty()) return set;

  double total = 0.0;
  for (const auto& p : set.paths) {
    double b = bottleneck(fg, p);
    if (std::isinf(b)) b = 1e12;  // HBM-local path
    set.weights.push_back(b);
    total += b;
  }
  for (double& w : set.weights) w /= total;
  return set;
}

}  // namespace moment::sim
