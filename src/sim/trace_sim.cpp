#include "sim/trace_sim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace moment::sim {

TraceSimReport simulate_epoch_traced(
    const topology::Topology& topo, const topology::FlowGraph& fg,
    const ddak::EpochWorkload& workload,
    std::span<const ddak::Bin> bins,
    const ddak::DataPlacementResult& placement,
    const sampling::NeighborSampler& sampler,
    std::span<const graph::VertexId> train_vertices,
    const TraceSimOptions& options) {
  if (train_vertices.empty()) {
    throw std::invalid_argument("simulate_epoch_traced: no train vertices");
  }
  const int num_gpus = static_cast<int>(fg.gpus.size());
  if (num_gpus == 0) {
    throw std::invalid_argument("simulate_epoch_traced: no GPUs");
  }
  const std::size_t scaled_batch =
      options.scaled_batch_size > 0 ? options.scaled_batch_size : 8;
  const double round_bytes_per_gpu =
      workload.fetches_per_batch * workload.feature_bytes;

  // Precompute each bin's route set per GPU once (routes are static).
  struct Route {
    std::vector<std::vector<maxflow::EdgeId>> paths;
    std::vector<double> weights;
    bool local = false;  // replicated GPU cache: no fabric traffic
  };
  std::vector<std::vector<Route>> routes(
      static_cast<std::size_t>(num_gpus),
      std::vector<Route>(bins.size()));
  for (int g = 0; g < num_gpus; ++g) {
    const maxflow::NodeId comp =
        fg.gpus[static_cast<std::size_t>(g)].comp_node;
    for (std::size_t bi = 0; bi < bins.size(); ++bi) {
      Route& route = routes[static_cast<std::size_t>(g)][bi];
      if (bins[bi].storage_index < 0) {
        route.local = true;
        continue;
      }
      int chosen = bins[bi].storage_index;
      if (bins[bi].replica_storage_indices.size() > 1) {
        std::size_t best_hops = SIZE_MAX;
        for (int ri : bins[bi].replica_storage_indices) {
          const PathSet rp = find_paths(
              fg, fg.storage[static_cast<std::size_t>(ri)].node, comp,
              RoutingPolicy::kSinglePath);
          if (!rp.paths.empty() && rp.paths[0].size() < best_hops) {
            best_hops = rp.paths[0].size();
            chosen = ri;
          }
        }
      }
      const PathSet ps = find_paths(
          fg, fg.storage[static_cast<std::size_t>(chosen)].node, comp,
          options.base.routing, options.base.max_paths);
      if (ps.paths.empty()) {
        throw std::logic_error("simulate_epoch_traced: no route from " +
                               bins[bi].name);
      }
      route.paths = ps.paths;
      route.weights = ps.weights;
    }
  }

  util::Pcg32 rng(options.seed, 0x54524143);  // "TRAC"
  std::vector<double> io_times;
  std::vector<double> counts(bins.size());
  double qpi_per_round = 0.0;

  TraceSimReport report;
  for (std::size_t round = 0; round < options.trace_rounds; ++round) {
    std::vector<SubStream> streams;
    for (int g = 0; g < num_gpus; ++g) {
      // Sample a real batch for this GPU and bucket its fetch set by bin.
      std::vector<graph::VertexId> seeds(scaled_batch);
      for (auto& s : seeds) {
        s = train_vertices[rng.next_below(
            static_cast<std::uint32_t>(train_vertices.size()))];
      }
      const auto sg = sampler.sample(seeds, rng);
      std::fill(counts.begin(), counts.end(), 0.0);
      double total = 0.0;
      for (graph::VertexId v : sg.fetch_set) {
        const auto bi = placement.bin_of_vertex[v];
        if (bi < 0 || static_cast<std::size_t>(bi) >= bins.size()) {
          throw std::out_of_range("simulate_epoch_traced: vertex bin");
        }
        counts[static_cast<std::size_t>(bi)] += 1.0;
        total += 1.0;
      }
      if (total <= 0.0) continue;
      for (std::size_t bi = 0; bi < bins.size(); ++bi) {
        if (counts[bi] <= 0.0) continue;
        double bytes = round_bytes_per_gpu * counts[bi] / total;
        if (bins[bi].tier == topology::StorageTier::kSsd) {
          bytes *= options.base.ssd_read_amplification;
        }
        const Route& route = routes[static_cast<std::size_t>(g)][bi];
        if (route.local) continue;  // replicated HBM hit
        for (std::size_t p = 0; p < route.paths.size(); ++p) {
          SubStream s;
          s.gpu = g;
          s.storage_index = bins[bi].storage_index;
          s.edges = route.paths[p];
          s.bytes = bytes * route.weights[p];
          streams.push_back(std::move(s));
        }
      }
    }
    const FluidResult res = simulate_round(fg, streams, num_gpus);
    io_times.push_back(res.finish_time);
    for (const auto& le : fg.link_edges) {
      if (le.link < 0) continue;
      if (topo.link(le.link).kind != topology::LinkKind::kQpi) continue;
      if (le.ab >= 0) {
        qpi_per_round += res.edge_bytes[static_cast<std::size_t>(le.ab)];
      }
      if (le.ba >= 0) {
        qpi_per_round += res.edge_bytes[static_cast<std::size_t>(le.ba)];
      }
    }
  }

  report.traced_rounds = io_times.size();
  report.round_io_time_s = util::summarize(io_times);
  report.mean_round_time_s =
      std::max(report.round_io_time_s.mean,
               options.base.compute_time_per_batch) +
      options.base.round_overhead_s;
  report.rounds =
      (workload.batches_per_epoch + static_cast<std::size_t>(num_gpus) - 1) /
      static_cast<std::size_t>(num_gpus);
  report.epoch_time_s = static_cast<double>(report.rounds) *
                            report.mean_round_time_s +
                        options.base.compute_time_per_batch;
  report.throughput_seeds_per_s = static_cast<double>(workload.batch_size) *
                                  static_cast<double>(num_gpus) /
                                  report.mean_round_time_s;
  if (report.traced_rounds > 0) {
    report.qpi_bytes = qpi_per_round /
                       static_cast<double>(report.traced_rounds) *
                       static_cast<double>(report.rounds);
  }

  // Diagnostic: deviation from the expectation-mode simulator.
  const SimReport expect =
      simulate_epoch(topo, fg, workload, bins, placement, options.base);
  if (expect.io_round_time_s > 0.0) {
    report.deviation_from_expectation =
        std::abs(report.round_io_time_s.mean - expect.io_round_time_s) /
        expect.io_round_time_s;
  }
  return report;
}

}  // namespace moment::sim
