#include "sim/fluid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace moment::sim {

using maxflow::EdgeId;

std::vector<double> max_min_rates(const topology::FlowGraph& fg,
                                  const std::vector<SubStream>& streams,
                                  const std::vector<bool>& active) {
  std::vector<double> rates(streams.size(), 0.0);

  // Collect the finite-capacity edges in use and their stream lists.
  std::map<EdgeId, std::vector<std::size_t>> users;
  for (std::size_t i = 0; i < streams.size(); ++i) {
    if (!active[i]) continue;
    for (EdgeId e : streams[i].edges) {
      if (std::isinf(fg.net.original_capacity(e))) continue;
      users[e].push_back(i);
    }
  }

  std::vector<bool> frozen(streams.size(), false);
  for (std::size_t i = 0; i < streams.size(); ++i) {
    if (!active[i]) frozen[i] = true;
  }
  std::map<EdgeId, double> residual;
  for (const auto& [e, _] : users) residual[e] = fg.net.original_capacity(e);

  // Progressive filling: raise all unfrozen rates together; the edge with
  // the smallest per-stream headroom saturates first and freezes its users.
  for (;;) {
    double best_inc = std::numeric_limits<double>::infinity();
    EdgeId best_edge = -1;
    for (const auto& [e, streams_on_e] : users) {
      int unfrozen = 0;
      for (std::size_t i : streams_on_e) {
        if (!frozen[i]) ++unfrozen;
      }
      if (unfrozen == 0) continue;
      const double inc = residual[e] / unfrozen;
      if (inc < best_inc) {
        best_inc = inc;
        best_edge = e;
      }
    }
    if (best_edge < 0) break;  // every remaining stream is unconstrained

    // Raise all unfrozen streams by best_inc and charge every used edge.
    for (std::size_t i = 0; i < streams.size(); ++i) {
      if (frozen[i]) continue;
      rates[i] += best_inc;
      for (EdgeId e : streams[i].edges) {
        if (auto it = residual.find(e); it != residual.end()) {
          it->second -= best_inc;
        }
      }
    }
    // Freeze the users of the saturated edge.
    for (std::size_t i : users[best_edge]) frozen[i] = true;
  }

  // Streams that use no finite edge (HBM-local) get effectively infinite
  // rate; give them a very large finite value so completions order sensibly.
  for (std::size_t i = 0; i < streams.size(); ++i) {
    if (active[i] && rates[i] == 0.0) {
      bool constrained = false;
      for (EdgeId e : streams[i].edges) {
        if (!std::isinf(fg.net.original_capacity(e))) constrained = true;
      }
      if (!constrained) rates[i] = 1e15;
    }
  }
  return rates;
}

FluidResult simulate_round(const topology::FlowGraph& fg,
                           std::vector<SubStream> streams, int num_gpus) {
  FluidResult result;
  result.gpu_finish.assign(static_cast<std::size_t>(num_gpus), 0.0);
  result.edge_bytes.assign(fg.net.num_edges() * 2, 0.0);

  std::vector<bool> active(streams.size());
  for (std::size_t i = 0; i < streams.size(); ++i) {
    active[i] = streams[i].bytes > 1e-9;
  }

  double now = 0.0;
  for (;;) {
    bool any = false;
    for (bool a : active) any |= a;
    if (!any) break;

    const std::vector<double> rates = max_min_rates(fg, streams, active);

    // Earliest completion among active streams.
    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < streams.size(); ++i) {
      if (!active[i] || rates[i] <= 0.0) continue;
      dt = std::min(dt, streams[i].bytes / rates[i]);
    }
    if (!std::isfinite(dt)) break;  // starved streams (shouldn't happen)

    now += dt;
    for (std::size_t i = 0; i < streams.size(); ++i) {
      if (!active[i]) continue;
      const double moved = rates[i] * dt;
      streams[i].bytes -= moved;
      for (EdgeId e : streams[i].edges) {
        result.edge_bytes[static_cast<std::size_t>(e)] += moved;
      }
      if (streams[i].bytes <= 1e-6) {
        active[i] = false;
        const auto g = static_cast<std::size_t>(streams[i].gpu);
        if (g < result.gpu_finish.size()) {
          result.gpu_finish[g] = std::max(result.gpu_finish[g], now);
        }
      }
    }
    ++result.events;
  }
  result.finish_time = now;
  return result;
}

}  // namespace moment::sim
