#include "runtime/systems.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "graph/partition.hpp"
#include "placement/search.hpp"
#include "util/units.hpp"

namespace moment::runtime {

using util::gib_per_s;

const char* system_name(SystemKind kind) noexcept {
  switch (kind) {
    case SystemKind::kMoment: return "Moment";
    case SystemKind::kMHyperion: return "M-Hyperion";
    case SystemKind::kMGids: return "M-GIDS";
    case SystemKind::kDistDgl: return "DistDGL";
  }
  return "?";
}

double machine_tco_usd() { return 90'270.0; }
double cluster_tco_usd() { return 181'100.0; }

Workbench Workbench::make(graph::DatasetId id, int scale_shift,
                          std::uint64_t seed) {
  Workbench bench{graph::make_dataset(id, scale_shift, seed), {}};
  sampling::NeighborSampler sampler(bench.dataset.csr, {25, 10});
  const auto train = sampling::select_train_vertices(
      bench.dataset.csr, bench.dataset.train_fraction, seed);
  sampling::HotnessOptions opts;
  opts.num_batches = 24;
  opts.batch_size = std::max<std::size_t>(
      8, static_cast<std::size_t>(8000.0 / bench.dataset.upscale()));
  opts.seed = seed + 1;
  bench.profile =
      sampling::profile_hotness(bench.dataset.csr, sampler, train, opts);
  return bench;
}

namespace {

// DistDGL cluster model constants (Machine C in Table 3; Section 4.1
// measured DistDGL's peak network utilisation at 20 Gb/s).
constexpr int kClusterMachines = 4;
constexpr double kClusterDramBytes = 4.0 * 256.0 * 1024.0 * 1024.0 * 1024.0;
constexpr double kDistDglMemExpansion = 5.0;  // paper: ~5x dataset size
constexpr double kEffectiveNetworkBytesPerS = 2.5e9;  // 20 Gb/s observed
/// CPU-based sampling + feature shuffling rate per machine (vertices/s over
/// 48 threads) — the binding constraint the paper identifies; calibrated so
/// DistDGL lands ~3x below Moment on PA.
constexpr double kCpuPipelineVerticesPerS = 1.5e6;

SystemResult run_distdgl(const ExperimentConfig& /*config*/,
                         const Workbench& bench,
                         const ddak::EpochWorkload& workload,
                         const ModelPreset& preset) {
  SystemResult r;
  r.system = system_name(SystemKind::kDistDgl);
  r.machine = "ClusterC(4x)";
  r.dataset = bench.dataset.name;
  r.model = preset.name;
  r.num_gpus = kClusterMachines;
  r.workload = workload;
  r.monetary_cost_usd = cluster_tco_usd();

  const double footprint =
      kDistDglMemExpansion *
      (static_cast<double>(bench.dataset.paper.feature_bytes) +
       static_cast<double>(bench.dataset.paper.topology_bytes));
  if (footprint > kClusterDramBytes) {
    r.oom = true;
    r.oom_reason = "DistDGL ~5x memory expansion exceeds 4x256 GB cluster DRAM";
    return r;
  }

  // Remote-fetch share: partition the (scaled) graph across the machines the
  // way DistDGL does (locality-preserving, METIS-like) and measure the edge
  // cut — a sampled neighbor is a remote fetch iff its edge is cut. This is
  // why the paper observed the network never saturating.
  const auto part_of =
      graph::partition_bfs(bench.dataset.csr, kClusterMachines, 7);
  const double remote_fraction = std::clamp(
      graph::partition_stats(bench.dataset.csr, part_of).edge_cut_fraction,
      0.05, 0.75);

  // Per machine, per batch: CPU sampling/extraction plus remote feature
  // shuffling for the partition-remote share; GPU compute overlaps.
  const double remote_bytes = workload.fetches_per_batch *
                              workload.feature_bytes * remote_fraction;
  const double t_net = remote_bytes / kEffectiveNetworkBytesPerS;
  const double t_cpu = workload.fetches_per_batch / kCpuPipelineVerticesPerS;
  const double round = std::max({t_net, t_cpu, preset.compute_time_per_batch});
  const double rounds = std::ceil(
      static_cast<double>(workload.batches_per_epoch) / kClusterMachines);
  r.epoch_time_s = rounds * round;
  r.throughput_seeds_per_s =
      static_cast<double>(workload.batch_size) * kClusterMachines / round;
  r.predicted_epoch_time_s = r.epoch_time_s;
  return r;
}

}  // namespace

namespace {

/// Full Moment pipeline for one placement: flexible-supply prediction, DDAK
/// from the (smoothed) flow plan, multipath epoch simulation.
struct PlacementEval {
  topology::Prediction prediction;
  sim::SimReport sim;
};

PlacementEval evaluate_moment_placement(const topology::MachineSpec& spec,
                                        const topology::Placement& p,
                                        const Workbench& bench,
                                        const ddak::EpochWorkload& workload,
                                        const ddak::CacheConfig& cache,
                                        bool nvlink,
                                        double compute_time_per_batch) {
  PlacementEval out;
  const topology::Topology topo = topology::instantiate(spec, p);
  topology::FlowGraphOptions fopts;
  fopts.use_nvlink = nvlink;
  const topology::FlowGraph fg = topology::compile_flow_graph(topo, fopts);
  out.prediction = topology::predict(
      fg, ddak::to_flow_demand(workload, fg, ddak::SupplyModel::kFlexibleTier));
  if (!out.prediction.feasible) return out;
  auto bins = ddak::make_bins(topo, fg, out.prediction.per_storage_bytes,
                              bench.dataset.scaled.vertices,
                              cache.gpu_cache_fraction,
                              cache.cpu_cache_fraction);
  std::vector<ddak::Bin> working =
      cache.gpu_cache_mode == ddak::GpuCacheMode::kReplicated
          ? sim::merge_replicated_gpu_bins(bins)
          : std::move(bins);
  working = sim::merge_replicated_cpu_bins(working);  // socket-local hits
  ddak::DdakOptions dopt;
  dopt.pool_size = ddak::default_pool_size(bench.dataset.scaled.vertices);
  const auto data = ddak::ddak_place(working, bench.profile, dopt);
  // Moment's IO stack can spread a stream across alternate routes or keep it
  // on the direct one; pick whichever the fluid model says is faster for
  // this placement (static multipath weights are not congestion-aware, so
  // they can lose to direct routing on balanced layouts).
  sim::SimOptions sopts;
  sopts.compute_time_per_batch = compute_time_per_batch;
  sopts.routing = sim::RoutingPolicy::kMultiPath;
  const auto multi = sim::simulate_epoch(topo, fg, workload, working, data,
                                         sopts);
  sopts.routing = sim::RoutingPolicy::kSinglePath;
  const auto single = sim::simulate_epoch(topo, fg, workload, working, data,
                                          sopts);
  out.sim = multi.epoch_time_s <= single.epoch_time_s ? multi : single;
  return out;
}

}  // namespace

PlacementChoice choose_moment_placement(const topology::MachineSpec& spec,
                                        const Workbench& bench,
                                        const ddak::EpochWorkload& workload,
                                        int num_gpus, int num_ssds,
                                        bool nvlink,
                                        const ddak::CacheConfig& cache,
                                        double compute_time_per_batch,
                                        std::size_t refine_top) {
  placement::SearchOptions sopt;
  sopt.num_gpus = num_gpus;
  sopt.num_ssds = num_ssds;
  sopt.nvlink = nvlink;
  sopt.per_gpu_demand_bytes = workload.per_gpu_bytes;
  sopt.per_tier_bytes = {
      workload.total_bytes * workload.gpu_hit_fraction,
      workload.total_bytes * workload.cpu_hit_fraction,
      workload.total_bytes * workload.ssd_fraction};
  sopt.gpu_hbm_bytes = workload.per_gpu_bytes * workload.gpu_hit_fraction;
  sopt.keep_top = refine_top;
  const placement::SearchResult search =
      placement::search_placements(spec, sopt);
  if (search.top.empty()) {
    throw std::runtime_error("choose_moment_placement: no feasible placement");
  }

  // Refinement pool: flow-ranked top candidates plus the classic layouts.
  std::vector<topology::Placement> pool;
  for (const auto& c : search.top) pool.push_back(c.placement);
  for (char which : {'a', 'b', 'c', 'd'}) {
    try {
      pool.push_back(
          topology::classic_placement(spec, which, num_gpus, num_ssds));
    } catch (const std::invalid_argument&) {
      // Some device counts do not fit a classic layout; skip it.
    }
  }

  PlacementChoice choice;
  choice.candidates_total = search.total_combinations;
  choice.candidates_evaluated = search.evaluated;
  double best = std::numeric_limits<double>::infinity();
  for (auto& p : pool) {
    topology::Placement candidate = p;
    candidate.nvlink = nvlink;
    const PlacementEval eval = evaluate_moment_placement(
        spec, candidate, bench, workload, cache, nvlink,
        compute_time_per_batch);
    ++choice.candidates_simulated;
    if (!eval.prediction.feasible) continue;
    if (eval.sim.epoch_time_s < best) {
      best = eval.sim.epoch_time_s;
      choice.placement = candidate;
      choice.prediction = eval.prediction;
      choice.simulated_epoch_s = eval.sim.epoch_time_s;
    }
  }
  if (!std::isfinite(best)) {
    throw std::runtime_error(
        "choose_moment_placement: no candidate simulated feasibly");
  }
  choice.placement.label = "moment";
  return choice;
}

SystemResult run_system(SystemKind kind, const ExperimentConfig& config) {
  const Workbench bench = Workbench::make(config.dataset,
                                          config.dataset_scale_shift,
                                          config.seed);
  return run_system(kind, config, bench);
}

SystemResult run_system(SystemKind kind, const ExperimentConfig& config,
                        const Workbench& bench) {
  const ModelPreset preset = model_preset(config.model);
  ddak::CacheConfig cache = config.cache;
  cache.gpu_cache_mode = config.gpu_cache_mode;
  if (kind == SystemKind::kMGids) {
    // BaM's page-cache metadata and cache lines occupy the GPU memory that
    // Moment/Hyperion use as a hot-feature cache (paper Section 4.2).
    cache.gpu_cache_fraction = 0.0;
  }
  const ddak::EpochWorkload workload = ddak::make_epoch_workload(
      bench.dataset, bench.profile, cache, kind == SystemKind::kDistDgl
                                               ? kClusterMachines
                                               : config.num_gpus);

  if (kind == SystemKind::kDistDgl) {
    return run_distdgl(config, bench, workload, preset);
  }

  if (config.machine == nullptr) {
    throw std::invalid_argument("run_system: machine spec required");
  }
  const topology::MachineSpec& spec = *config.machine;

  SystemResult r;
  r.system = system_name(kind);
  r.machine = spec.name;
  r.dataset = bench.dataset.name;
  r.model = preset.name;
  r.num_gpus = config.num_gpus;
  r.workload = workload;
  r.monetary_cost_usd = machine_tco_usd();

  // M-GIDS: BaM page-cache metadata scales with dataset size and overflows
  // the 40 GB A100 on the terabyte-scale graphs (paper Section 4.2).
  if (kind == SystemKind::kMGids &&
      static_cast<double>(bench.dataset.paper.feature_bytes) >
          2.0 * 1024.0 * 1024.0 * 1024.0 * 1024.0) {
    r.oom = true;
    r.oom_reason = "BaM page-cache metadata exceeds 40 GB GPU memory";
    return r;
  }

  // Hardware placement.
  if (config.placement.has_value()) {
    r.placement = *config.placement;
  } else if (kind == SystemKind::kMoment) {
    const PlacementChoice choice = choose_moment_placement(
        spec, bench, workload, config.num_gpus, config.num_ssds,
        config.nvlink, cache, preset.compute_time_per_batch);
    r.placement = choice.placement;
  } else {
    r.placement = topology::classic_placement(spec, config.default_classic,
                                              config.num_gpus,
                                              config.num_ssds);
  }
  r.placement.nvlink = config.nvlink;

  const topology::Topology topo = topology::instantiate(spec, r.placement);
  topology::FlowGraphOptions fopts;
  fopts.use_nvlink = config.nvlink;
  const topology::FlowGraph fg = topology::compile_flow_graph(topo, fopts);

  // Prediction: Moment plans with tier-flexible supplies (DDAK realises the
  // split); baselines are pinned to the uniform hash split.
  const auto supply_model = kind == SystemKind::kMoment
                                ? ddak::SupplyModel::kFlexibleTier
                                : ddak::SupplyModel::kUniformHash;
  const topology::WorkloadDemand demand =
      ddak::to_flow_demand(workload, fg, supply_model);
  r.prediction = topology::predict(fg, demand);

  const double rounds = std::ceil(
      static_cast<double>(workload.batches_per_epoch) /
      std::max(1, config.num_gpus));
  r.predicted_epoch_time_s =
      std::max(r.prediction.epoch_io_time_s,
               rounds * preset.compute_time_per_batch);

  // Data placement.
  const DataPolicy policy = config.data_policy.value_or(
      kind == SystemKind::kMoment ? DataPolicy::kDdak : DataPolicy::kHash);
  auto bins = ddak::make_bins(topo, fg, r.prediction.per_storage_bytes,
                              bench.dataset.scaled.vertices,
                              cache.gpu_cache_fraction,
                              cache.cpu_cache_fraction);
  std::vector<ddak::Bin> working_bins =
      config.gpu_cache_mode == ddak::GpuCacheMode::kReplicated
          ? sim::merge_replicated_gpu_bins(bins)
          : std::move(bins);
  if (policy == DataPolicy::kDdak) {
    // Moment mirrors the CPU cache per socket so hits stay QPI-local; the
    // hash baseline stripes cached vertices across sockets.
    working_bins = sim::merge_replicated_cpu_bins(working_bins);
  }
  ddak::DdakOptions dopt;
  dopt.pool_size =
      ddak::default_pool_size(bench.dataset.scaled.vertices);
  const ddak::DataPlacementResult data_placement =
      policy == DataPolicy::kDdak
          ? ddak::ddak_place(working_bins, bench.profile, dopt)
          : ddak::hash_place(working_bins, bench.profile, config.seed);

  // Epoch simulation ("measured"). Moment's IO stack picks the better of
  // direct and spread routing (see choose_moment_placement); the baselines
  // are topology-oblivious and always route directly.
  sim::SimOptions sopts;
  sopts.compute_time_per_batch = preset.compute_time_per_batch;
  sopts.partition_ssds_per_gpu = kind == SystemKind::kMGids;
  if (kind == SystemKind::kMGids) {
    // Page-granular BaM accesses: metadata traffic plus partially-used
    // cache lines inflate the bytes actually moved from the SSDs.
    sopts.ssd_read_amplification = 1.45;
  }
  if (kind == SystemKind::kMoment) {
    sopts.routing = sim::RoutingPolicy::kMultiPath;
    const auto multi = sim::simulate_epoch(topo, fg, workload, working_bins,
                                           data_placement, sopts);
    sopts.routing = sim::RoutingPolicy::kSinglePath;
    const auto single = sim::simulate_epoch(topo, fg, workload, working_bins,
                                            data_placement, sopts);
    r.sim = multi.epoch_time_s <= single.epoch_time_s ? multi : single;
  } else {
    sopts.routing = sim::RoutingPolicy::kSinglePath;
    r.sim = sim::simulate_epoch(topo, fg, workload, working_bins,
                                data_placement, sopts);
  }
  r.epoch_time_s = r.sim.epoch_time_s;
  r.throughput_seeds_per_s = r.sim.throughput_seeds_per_s;
  return r;
}

}  // namespace moment::runtime
