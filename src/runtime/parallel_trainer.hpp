#pragma once
// Functional data-parallel trainer: N workers ("GPUs"), each with its own
// model replica, sampler and feature provider, synchronised per round by
// gradient averaging (DDP semantics). Training vertices are evenly
// partitioned across workers, as in the paper's runtime (Section 3.1).
//
// This class is a thin facade over runtime::PipelineEngine, which runs the
// real sampler, the real feature path (optionally through the NVMe IO
// stack) and the real GNN forward/backward on persistent worker executors
// with sample/gather prefetching overlapped against compute.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "gnn/features.hpp"
#include "gnn/model.hpp"
#include "gnn/optimizer.hpp"
#include "graph/csr.hpp"
#include "runtime/engine.hpp"
#include "sampling/neighbor_sampler.hpp"

namespace moment::runtime {

class DataParallelTrainer {
 public:
  /// `providers.size()` defines the worker count; each worker uses its own
  /// provider (e.g. a per-GPU TieredFeatureClient).
  DataParallelTrainer(const graph::CsrGraph& graph,
                      std::vector<gnn::FeatureProvider*> providers,
                      const gnn::ModelConfig& model_config,
                      std::vector<int> fanouts,
                      std::vector<graph::VertexId> train_vertices,
                      float learning_rate, std::uint64_t seed);

  /// Same, with explicit engine tuning (pipeline depth, all-reduce threads).
  DataParallelTrainer(const graph::CsrGraph& graph,
                      std::vector<gnn::FeatureProvider*> providers,
                      const gnn::ModelConfig& model_config,
                      std::vector<int> fanouts,
                      std::vector<graph::VertexId> train_vertices,
                      float learning_rate, std::uint64_t seed,
                      EngineOptions engine_options);

  ~DataParallelTrainer();

  /// One epoch over the partitioned training set. `max_rounds` truncates for
  /// tests. Labels index by global vertex id.
  EpochStats train_epoch(std::span<const std::int32_t> labels,
                         std::size_t batch_size,
                         std::size_t max_rounds = SIZE_MAX);

  std::size_t num_workers() const noexcept { return providers_.size(); }
  gnn::GnnModel& replica(std::size_t i) { return *models_[i]; }
  const PipelineEngine& engine() const noexcept { return *engine_; }

  /// True when all replicas hold bitwise-close parameters (DDP invariant).
  bool replicas_in_sync(float tolerance = 1e-5f) const;

 private:
  const graph::CsrGraph& graph_;
  std::vector<gnn::FeatureProvider*> providers_;
  std::vector<std::unique_ptr<gnn::GnnModel>> models_;
  std::vector<std::unique_ptr<gnn::Optimizer>> optimizers_;
  std::vector<std::unique_ptr<sampling::NeighborSampler>> samplers_;
  std::vector<std::vector<graph::VertexId>> partitions_;
  std::uint64_t seed_;
  std::uint64_t epoch_counter_ = 0;
  std::unique_ptr<PipelineEngine> engine_;
};

}  // namespace moment::runtime
