#include "runtime/parallel_trainer.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "gnn/block.hpp"
#include "gnn/loss.hpp"

namespace moment::runtime {

DataParallelTrainer::DataParallelTrainer(
    const graph::CsrGraph& graph,
    std::vector<gnn::FeatureProvider*> providers,
    const gnn::ModelConfig& model_config, std::vector<int> fanouts,
    std::vector<graph::VertexId> train_vertices, float learning_rate,
    std::uint64_t seed)
    : graph_(graph), providers_(std::move(providers)), seed_(seed) {
  if (providers_.empty()) {
    throw std::invalid_argument("DataParallelTrainer: no workers");
  }
  const std::size_t workers = providers_.size();
  // Identical seeds give identical initial replicas (DDP invariant).
  for (std::size_t w = 0; w < workers; ++w) {
    gnn::ModelConfig cfg = model_config;
    cfg.seed = seed;
    models_.push_back(std::make_unique<gnn::GnnModel>(cfg));
    optimizers_.push_back(std::make_unique<gnn::Adam>(
        models_.back()->parameters(), learning_rate));
    samplers_.push_back(
        std::make_unique<sampling::NeighborSampler>(graph_, fanouts));
  }
  // Even partition of the training vertices (paper Section 3.1).
  partitions_.resize(workers);
  for (std::size_t i = 0; i < train_vertices.size(); ++i) {
    partitions_[i % workers].push_back(train_vertices[i]);
  }
}

void DataParallelTrainer::all_reduce_grads() {
  // Average gradients across replicas and write the average back into every
  // replica, so identical optimizer states stay identical.
  std::vector<std::vector<gnn::Param*>> params;
  params.reserve(models_.size());
  for (auto& m : models_) params.push_back(m->parameters());
  const float inv = 1.0f / static_cast<float>(models_.size());
  for (std::size_t p = 0; p < params[0].size(); ++p) {
    gnn::Tensor& acc = params[0][p]->grad;
    for (std::size_t w = 1; w < params.size(); ++w) {
      acc += params[w][p]->grad;
    }
    acc *= inv;
    for (std::size_t w = 1; w < params.size(); ++w) {
      params[w][p]->grad = acc;
    }
  }
}

EpochStats DataParallelTrainer::train_epoch(
    std::span<const std::int32_t> labels, std::size_t batch_size,
    std::size_t max_rounds) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t workers = providers_.size();
  ++epoch_counter_;

  std::vector<sampling::BatchIterator> iters;
  iters.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    iters.emplace_back(partitions_[w], batch_size,
                       seed_ + epoch_counter_ * 1000 + w);
  }

  EpochStats stats;
  std::atomic<std::size_t> fetched{0};
  double loss_acc = 0.0, acc_acc = 0.0;

  for (std::size_t round = 0; round < max_rounds; ++round) {
    std::vector<std::span<const graph::VertexId>> batches(workers);
    bool any = false;
    for (std::size_t w = 0; w < workers; ++w) {
      batches[w] = iters[w].next();
      any |= !batches[w].empty();
    }
    if (!any) break;

    std::vector<float> losses(workers, 0.0f), accs(workers, 0.0f);
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        if (batches[w].empty()) {
          // Empty tail batch: contribute zero gradients (zero_grad below).
          models_[w]->zero_grad();
          return;
        }
        util::Pcg32 rng(seed_ ^ (epoch_counter_ * 7919 + round * 13 + w),
                        0x57524b52);  // "WRKR"
        const auto sg = samplers_[w]->sample(batches[w], rng);
        const auto blocks = gnn::build_blocks(sg);
        gnn::Tensor x0(blocks[0].num_src(), providers_[w]->dim());
        providers_[w]->gather(blocks[0].src_ids, x0);
        fetched += blocks[0].num_src();

        gnn::Tensor logits = models_[w]->forward(blocks, x0);
        std::vector<std::int32_t> seed_labels;
        seed_labels.reserve(blocks.back().dst_ids.size());
        for (graph::VertexId v : blocks.back().dst_ids) {
          seed_labels.push_back(labels[v]);
        }
        models_[w]->zero_grad();
        const auto loss = gnn::softmax_cross_entropy(logits, seed_labels);
        models_[w]->backward(blocks, loss.grad_logits);
        losses[w] = loss.loss;
        accs[w] = loss.accuracy;
      });
    }
    for (auto& t : threads) t.join();

    all_reduce_grads();
    for (auto& opt : optimizers_) opt->step();

    for (std::size_t w = 0; w < workers; ++w) {
      if (batches[w].empty()) continue;
      loss_acc += losses[w];
      acc_acc += accs[w];
      ++stats.batches;
    }
  }

  if (stats.batches > 0) {
    stats.mean_loss = static_cast<float>(loss_acc / stats.batches);
    stats.mean_accuracy = static_cast<float>(acc_acc / stats.batches);
  }
  stats.fetched_vertices = fetched.load();
  stats.wall_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return stats;
}

bool DataParallelTrainer::replicas_in_sync(float tolerance) const {
  auto& first = const_cast<gnn::GnnModel&>(*models_[0]);
  const auto ref = first.parameters();
  for (std::size_t w = 1; w < models_.size(); ++w) {
    auto& model = const_cast<gnn::GnnModel&>(*models_[w]);
    const auto params = model.parameters();
    for (std::size_t p = 0; p < ref.size(); ++p) {
      const auto& a = ref[p]->value;
      const auto& b = params[p]->value;
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::abs(a.data()[i] - b.data()[i]) > tolerance) return false;
      }
    }
  }
  return true;
}

}  // namespace moment::runtime
