#include "runtime/parallel_trainer.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace moment::runtime {

DataParallelTrainer::DataParallelTrainer(
    const graph::CsrGraph& graph,
    std::vector<gnn::FeatureProvider*> providers,
    const gnn::ModelConfig& model_config, std::vector<int> fanouts,
    std::vector<graph::VertexId> train_vertices, float learning_rate,
    std::uint64_t seed)
    : DataParallelTrainer(graph, std::move(providers), model_config,
                          std::move(fanouts), std::move(train_vertices),
                          learning_rate, seed, EngineOptions{}) {}

DataParallelTrainer::DataParallelTrainer(
    const graph::CsrGraph& graph,
    std::vector<gnn::FeatureProvider*> providers,
    const gnn::ModelConfig& model_config, std::vector<int> fanouts,
    std::vector<graph::VertexId> train_vertices, float learning_rate,
    std::uint64_t seed, EngineOptions engine_options)
    : graph_(graph), providers_(std::move(providers)), seed_(seed) {
  if (providers_.empty()) {
    throw std::invalid_argument("DataParallelTrainer: no workers");
  }
  const std::size_t workers = providers_.size();
  // Identical seeds give identical initial replicas (DDP invariant).
  for (std::size_t w = 0; w < workers; ++w) {
    gnn::ModelConfig cfg = model_config;
    cfg.seed = seed;
    models_.push_back(std::make_unique<gnn::GnnModel>(cfg));
    optimizers_.push_back(std::make_unique<gnn::Adam>(
        models_.back()->parameters(), learning_rate));
    samplers_.push_back(
        std::make_unique<sampling::NeighborSampler>(graph_, fanouts));
  }
  // Even partition of the training vertices (paper Section 3.1).
  partitions_.resize(workers);
  for (std::size_t i = 0; i < train_vertices.size(); ++i) {
    partitions_[i % workers].push_back(train_vertices[i]);
  }

  std::vector<gnn::GnnModel*> model_ptrs;
  std::vector<gnn::Optimizer*> opt_ptrs;
  std::vector<sampling::NeighborSampler*> sampler_ptrs;
  for (std::size_t w = 0; w < workers; ++w) {
    model_ptrs.push_back(models_[w].get());
    opt_ptrs.push_back(optimizers_[w].get());
    sampler_ptrs.push_back(samplers_[w].get());
  }
  engine_ = std::make_unique<PipelineEngine>(
      graph_, providers_, std::move(model_ptrs), std::move(opt_ptrs),
      std::move(sampler_ptrs), &partitions_, seed_, engine_options);
}

DataParallelTrainer::~DataParallelTrainer() = default;

EpochStats DataParallelTrainer::train_epoch(
    std::span<const std::int32_t> labels, std::size_t batch_size,
    std::size_t max_rounds) {
  ++epoch_counter_;
  return engine_->run_epoch(labels, batch_size, max_rounds, epoch_counter_);
}

bool DataParallelTrainer::replicas_in_sync(float tolerance) const {
  const auto ref = std::as_const(*models_[0]).parameters();
  for (std::size_t w = 1; w < models_.size(); ++w) {
    const auto params = std::as_const(*models_[w]).parameters();
    for (std::size_t p = 0; p < ref.size(); ++p) {
      const auto& a = ref[p]->value;
      const auto& b = params[p]->value;
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::abs(a.data()[i] - b.data()[i]) > tolerance) return false;
      }
    }
  }
  return true;
}

}  // namespace moment::runtime
