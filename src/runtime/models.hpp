#pragma once
// Model presets for the evaluation: per-batch GPU compute times calibrated so
// the compute/IO balance matches the paper's setting (GNN training is
// IO-bound for both models on these machines; GAT is ~2x heavier than
// GraphSAGE at hidden 64 x 8 heads vs hidden 256).

#include <string>

#include "gnn/model.hpp"

namespace moment::runtime {

struct ModelPreset {
  gnn::ModelKind kind;
  std::string name;
  /// A100 per-batch training time (batch 8000, 2-hop [25,10]), seconds.
  double compute_time_per_batch;
  std::size_t hidden_dim;
  std::size_t heads;
};

inline ModelPreset graphsage_preset() {
  return {gnn::ModelKind::kGraphSage, "GraphSAGE", 0.055, 256, 1};
}

inline ModelPreset gat_preset() {
  return {gnn::ModelKind::kGat, "GAT", 0.110, 64, 8};
}

inline ModelPreset gcn_preset() {
  return {gnn::ModelKind::kGcn, "GCN", 0.045, 256, 1};
}

inline ModelPreset model_preset(gnn::ModelKind kind) {
  switch (kind) {
    case gnn::ModelKind::kGat: return gat_preset();
    case gnn::ModelKind::kGcn: return gcn_preset();
    case gnn::ModelKind::kGraphSage: break;
  }
  return graphsage_preset();
}

}  // namespace moment::runtime
