#include "runtime/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "gnn/block.hpp"
#include "gnn/loss.hpp"

namespace moment::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

PipelineEngine::PipelineEngine(
    const graph::CsrGraph& graph,
    std::vector<gnn::FeatureProvider*> providers,
    std::vector<gnn::GnnModel*> models,
    std::vector<gnn::Optimizer*> optimizers,
    std::vector<sampling::NeighborSampler*> samplers,
    const std::vector<std::vector<graph::VertexId>>* partitions,
    std::uint64_t seed, EngineOptions options)
    : graph_(graph),
      providers_(std::move(providers)),
      models_(std::move(models)),
      optimizers_(std::move(optimizers)),
      samplers_(std::move(samplers)),
      partitions_(partitions),
      seed_(seed),
      options_(options),
      barrier_(static_cast<std::ptrdiff_t>(providers_.size() + 1)) {
  if (providers_.empty()) {
    throw std::invalid_argument("PipelineEngine: no workers");
  }
  const std::size_t workers = providers_.size();
  if (models_.size() != workers || optimizers_.size() != workers ||
      samplers_.size() != workers || partitions_ == nullptr ||
      partitions_->size() != workers) {
    throw std::invalid_argument("PipelineEngine: component count mismatch");
  }
  if (options_.pipeline_depth == 0) options_.pipeline_depth = 1;
  params_.reserve(workers);
  for (gnn::GnnModel* m : models_) params_.push_back(m->parameters());

  // Flat element space over the replica-0 gradients: the all-reduce chunks
  // over [0, total) with 64-byte-aligned boundaries instead of per-parameter
  // granularity (comm::kAllReduceGrainFloats).
  grad_offsets_.reserve(params_[0].size() + 1);
  grad_offsets_.push_back(0);
  for (const gnn::Param* p : params_[0]) {
    grad_offsets_.push_back(grad_offsets_.back() + p->grad.size());
  }

  worker_states_.resize(workers);
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

PipelineEngine::~PipelineEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void PipelineEngine::worker_main(std::size_t w) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return shutdown_ || epoch_seq_ != seen; });
      if (shutdown_) return;
      seen = epoch_seq_;
    }
    run_worker_epoch(w);
  }
}

void PipelineEngine::fetch_batch(std::size_t w, sampling::BatchIterator& iter,
                                 Prefetch& slot, std::size_t round,
                                 WorkerState& ws) {
  slot = Prefetch{};
  slot.valid = true;
  const auto t0 = Clock::now();
  slot.batch = iter.next();
  if (slot.batch.empty()) {
    ws.times.sample_s += seconds_since(t0);
    return;
  }
  // Per-round sampling stream, keyed by the batch's round (not the round
  // the prefetch was issued in), so prefetching never perturbs the RNG
  // sequence relative to the sequential reference.
  util::Pcg32 rng(seed_ ^ (ctx_.epoch * 7919 + round * 13 + w),
                  0x57524b52);  // "WRKR"
  const auto sg = samplers_[w]->sample(slot.batch, rng);
  slot.blocks = gnn::build_blocks(sg);
  ws.times.sample_s += seconds_since(t0);

  const auto t1 = Clock::now();
  slot.x0 = gnn::Tensor(slot.blocks[0].num_src(), providers_[w]->dim());
  slot.ticket = providers_[w]->gather_begin(slot.blocks[0].src_ids, slot.x0);
  slot.issued_at = Clock::now();
  ws.times.gather_issue_s += seconds_since(t1);
}

void PipelineEngine::run_worker_epoch(std::size_t w) {
  WorkerState& ws = worker_states_[w];
  gnn::FeatureProvider& provider = *providers_[w];
  gnn::GnnModel& model = *models_[w];
  const bool pipelined = options_.pipeline_depth >= 2;

  sampling::BatchIterator iter((*partitions_)[w], ctx_.batch_size,
                               seed_ + ctx_.epoch * 1000 + w);
  Prefetch slots[2];

  for (std::size_t round = 0;; ++round) {
    Prefetch& cur = slots[round & 1];
    try {
      if (!cur.valid) fetch_batch(w, iter, cur, round, ws);
      // Issue the next batch's sample + gather before completing the
      // current one: its IO overlaps this round's wait and compute.
      if (pipelined && round + 1 < ctx_.max_rounds) {
        fetch_batch(w, iter, slots[(round + 1) & 1], round + 1, ws);
      }
      ws.has_batch = !cur.batch.empty();

      if (!cur.batch.empty()) {
        const auto tw = Clock::now();
        if (cur.ticket != gnn::FeatureProvider::kSyncTicket) {
          ws.times.hidden_io_s +=
              std::chrono::duration<double>(tw - cur.issued_at).count();
          provider.gather_wait(cur.ticket);
          cur.ticket = gnn::FeatureProvider::kSyncTicket;
        }
        ws.times.gather_wait_s += seconds_since(tw);

        const auto tc = Clock::now();
        gnn::Tensor logits = model.forward(cur.blocks, cur.x0);
        std::vector<std::int32_t> seed_labels;
        seed_labels.reserve(cur.blocks.back().dst_ids.size());
        for (graph::VertexId v : cur.blocks.back().dst_ids) {
          seed_labels.push_back(ctx_.labels[v]);
        }
        model.zero_grad();
        const auto loss = gnn::softmax_cross_entropy(logits, seed_labels);
        model.backward(cur.blocks, loss.grad_logits);
        ws.times.compute_s += seconds_since(tc);

        ws.loss_sum += loss.loss;
        ws.acc_sum += loss.accuracy;
        ++ws.batches;
        ws.fetched += cur.blocks[0].num_src();
      } else {
        // Empty tail batch: contribute zero gradients to the average.
        model.zero_grad();
      }
    } catch (...) {
      if (!ws.error) ws.error = std::current_exception();
      ws.has_batch = false;
      model.zero_grad();
    }
    cur.valid = false;

    barrier_.arrive_and_wait();  // grads + has_batch published
    barrier_.arrive_and_wait();  // coordinator all-reduced / decided control
    if (ctx_.control == RoundControl::kStopNow) break;

    const auto ts = Clock::now();
    optimizers_[w]->step();
    ws.times.optimizer_s += seconds_since(ts);
    if (ctx_.control == RoundControl::kStopAfterStep) break;
  }

  // Drain any prefetched-but-never-computed gather (max_rounds truncation)
  // before the epoch-exit barrier, so the caller may tear down providers.
  for (Prefetch& slot : slots) {
    if (slot.valid && slot.ticket != gnn::FeatureProvider::kSyncTicket) {
      try {
        provider.gather_wait(slot.ticket);
      } catch (...) {
        if (!ws.error) ws.error = std::current_exception();
      }
    }
    slot = Prefetch{};
  }
  barrier_.arrive_and_wait();  // epoch drained
}

void PipelineEngine::all_reduce_grads() {
  // Average gradients across replicas and write the average back into every
  // replica. The elementwise accumulation order (worker 0, then 1, ... then
  // scale by 1/N) matches the historical sequential implementation, and the
  // chunk geometry — boundaries at multiples of comm::kAllReduceGrainFloats,
  // i.e. 64-byte aligned so concurrent chunks never share a cache line — is
  // the same for the flat path and every CommPlan algorithm. A plan therefore
  // never changes values, only the modeled transport accounted below.
  const std::size_t workers = params_.size();
  const float inv = 1.0f / static_cast<float>(workers);
  const std::size_t total = grad_offsets_.back();

  auto reduce_span = [&](std::size_t gbegin, std::size_t gend) {
    std::size_t p = static_cast<std::size_t>(
                        std::upper_bound(grad_offsets_.begin(),
                                         grad_offsets_.end(), gbegin) -
                        grad_offsets_.begin()) -
                    1;
    std::size_t pos = gbegin;
    while (pos < gend) {
      const std::size_t stop = std::min(gend, grad_offsets_[p + 1]);
      const std::size_t off = pos - grad_offsets_[p];
      const std::size_t len = stop - pos;
      float* acc = params_[0][p]->grad.data() + off;
      for (std::size_t w = 1; w < workers; ++w) {
        const float* g = params_[w][p]->grad.data() + off;
        for (std::size_t i = 0; i < len; ++i) acc[i] += g[i];
      }
      for (std::size_t i = 0; i < len; ++i) acc[i] *= inv;
      for (std::size_t w = 1; w < workers; ++w) {
        std::copy(acc, acc + len,
                  params_[w][p]->grad.data() + off);
      }
      pos = stop;
      ++p;
    }
  };

  const std::size_t chunks =
      (total + comm::kAllReduceGrainFloats - 1) / comm::kAllReduceGrainFloats;
  util::ThreadPool* pool =
      options_.allreduce_threads == 1 ? nullptr : util::compute_pool();
  util::parallel_for(pool, 0, chunks, 1,
                     [&](std::size_t cb, std::size_t ce) {
                       reduce_span(cb * comm::kAllReduceGrainFloats,
                                   std::min(total,
                                            ce * comm::kAllReduceGrainFloats));
                     });

  if (options_.comm_plan != nullptr && options_.link_counters != nullptr) {
    options_.comm_plan->account(static_cast<double>(total) * sizeof(float),
                                *options_.link_counters);
  }
}

EpochStats PipelineEngine::run_epoch(std::span<const std::int32_t> labels,
                                     std::size_t batch_size,
                                     std::size_t max_rounds,
                                     std::uint64_t epoch_counter) {
  const auto t0 = Clock::now();
  const std::size_t workers = providers_.size();

  // Snapshot the providers' cumulative resilience counters so the epoch
  // stats can report deltas (device_remaps is store-wide: take the max
  // across providers sharing a store instead of summing it).
  gnn::FeatureProvider::IoResilience io_before;
  std::uint64_t remaps_before = 0;
  std::uint64_t evictions_before = 0;
  for (const gnn::FeatureProvider* p : providers_) {
    const auto r = p->io_resilience();
    io_before.retries += r.retries;
    io_before.timeouts += r.timeouts;
    io_before.permanent_failures += r.permanent_failures;
    io_before.failovers += r.failovers;
    io_before.dedup_saved_reads += r.dedup_saved_reads;
    io_before.ssd_rows += r.ssd_rows;
    io_before.ssd_commands += r.ssd_commands;
    io_before.coalesced_commands += r.coalesced_commands;
    io_before.cache_hits += r.cache_hits;
    io_before.cache_misses += r.cache_misses;
    io_before.peer_rows += r.peer_rows;
    io_before.peer_bytes += r.peer_bytes;
    io_before.remote_hbm_host_rows += r.remote_hbm_host_rows;
    remaps_before = std::max(remaps_before, r.device_remaps);
    evictions_before = std::max(evictions_before, r.cache_evictions);
  }
  std::vector<std::uint64_t> links_before;
  if (options_.link_counters != nullptr) {
    links_before = options_.link_counters->snapshot();
  }

  for (WorkerState& ws : worker_states_) ws = WorkerState{};
  ctx_.labels = labels;
  ctx_.batch_size = batch_size;
  ctx_.max_rounds = max_rounds;
  ctx_.epoch = epoch_counter;
  ctx_.control = RoundControl::kContinue;

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++epoch_seq_;
  }
  cv_.notify_all();

  EpochStats stats;
  double allreduce_s = 0.0;
  for (std::size_t round = 0;; ++round) {
    barrier_.arrive_and_wait();  // workers computed; grads + flags ready
    bool any = false;
    bool failed = false;
    for (const WorkerState& ws : worker_states_) {
      any |= ws.has_batch;
      failed |= static_cast<bool>(ws.error);
    }
    if (!any || failed) {
      ctx_.control = RoundControl::kStopNow;
    } else {
      const auto ta = Clock::now();
      all_reduce_grads();
      allreduce_s += seconds_since(ta);
      ++stats.rounds;
      ctx_.control = round + 1 >= max_rounds ? RoundControl::kStopAfterStep
                                             : RoundControl::kContinue;
    }
    barrier_.arrive_and_wait();  // control + averaged grads published
    if (ctx_.control != RoundControl::kContinue) break;
  }
  barrier_.arrive_and_wait();  // epoch drained: workers fully idle

  double loss_sum = 0.0, acc_sum = 0.0, hidden = 0.0, exposed = 0.0;
  stats.per_worker.reserve(workers);
  for (WorkerState& ws : worker_states_) {
    if (ws.error) std::rethrow_exception(ws.error);
    loss_sum += ws.loss_sum;
    acc_sum += ws.acc_sum;
    stats.batches += ws.batches;
    stats.fetched_vertices += ws.fetched;
    stats.per_worker.push_back(ws.times);
    auto& mx = stats.stage_max;
    mx.sample_s = std::max(mx.sample_s, ws.times.sample_s);
    mx.gather_issue_s = std::max(mx.gather_issue_s, ws.times.gather_issue_s);
    mx.gather_wait_s = std::max(mx.gather_wait_s, ws.times.gather_wait_s);
    mx.compute_s = std::max(mx.compute_s, ws.times.compute_s);
    mx.optimizer_s = std::max(mx.optimizer_s, ws.times.optimizer_s);
    mx.hidden_io_s = std::max(mx.hidden_io_s, ws.times.hidden_io_s);
    hidden += ws.times.hidden_io_s;
    exposed += ws.times.gather_wait_s;
  }
  if (stats.batches > 0) {
    stats.mean_loss = static_cast<float>(loss_sum / stats.batches);
    stats.mean_accuracy = static_cast<float>(acc_sum / stats.batches);
  }
  stats.allreduce_s = allreduce_s;
  if (hidden + exposed > 0.0) {
    stats.overlap_ratio = hidden / (hidden + exposed);
  }

  gnn::FeatureProvider::IoResilience io_after;
  std::uint64_t remaps_after = 0;
  std::uint64_t evictions_after = 0;
  for (const gnn::FeatureProvider* p : providers_) {
    const auto r = p->io_resilience();
    io_after.retries += r.retries;
    io_after.timeouts += r.timeouts;
    io_after.permanent_failures += r.permanent_failures;
    io_after.failovers += r.failovers;
    io_after.dedup_saved_reads += r.dedup_saved_reads;
    io_after.ssd_rows += r.ssd_rows;
    io_after.ssd_commands += r.ssd_commands;
    io_after.coalesced_commands += r.coalesced_commands;
    io_after.cache_hits += r.cache_hits;
    io_after.cache_misses += r.cache_misses;
    io_after.peer_rows += r.peer_rows;
    io_after.peer_bytes += r.peer_bytes;
    io_after.remote_hbm_host_rows += r.remote_hbm_host_rows;
    remaps_after = std::max(remaps_after, r.device_remaps);
    evictions_after = std::max(evictions_after, r.cache_evictions);
    stats.io.devices_degraded =
        std::max(stats.io.devices_degraded, r.devices_degraded);
    stats.io.devices_failed =
        std::max(stats.io.devices_failed, r.devices_failed);
  }
  stats.io.retries = io_after.retries - io_before.retries;
  stats.io.timeouts = io_after.timeouts - io_before.timeouts;
  stats.io.permanent_failures =
      io_after.permanent_failures - io_before.permanent_failures;
  stats.io.failovers = io_after.failovers - io_before.failovers;
  stats.io.device_remaps = remaps_after - remaps_before;
  stats.io.dedup_saved_reads =
      io_after.dedup_saved_reads - io_before.dedup_saved_reads;
  stats.io.ssd_rows = io_after.ssd_rows - io_before.ssd_rows;
  stats.io.ssd_commands = io_after.ssd_commands - io_before.ssd_commands;
  stats.io.coalesced_commands =
      io_after.coalesced_commands - io_before.coalesced_commands;
  stats.io.cache_hits = io_after.cache_hits - io_before.cache_hits;
  stats.io.cache_misses = io_after.cache_misses - io_before.cache_misses;
  // Evictions are cache-wide (one shared cache per store), so like
  // device_remaps they are max-per-provider before the per-epoch delta.
  stats.io.cache_evictions = evictions_after - evictions_before;
  stats.io.peer_rows = io_after.peer_rows - io_before.peer_rows;
  stats.io.peer_bytes = io_after.peer_bytes - io_before.peer_bytes;
  stats.io.remote_hbm_host_rows =
      io_after.remote_hbm_host_rows - io_before.remote_hbm_host_rows;

  if (const comm::CommPlan* plan = options_.comm_plan) {
    stats.comm.algorithm = comm::to_string(plan->algo);
    stats.comm.payload_bytes = grad_offsets_.back() * sizeof(float);
    stats.comm.predicted_comm_s =
        static_cast<double>(stats.rounds) *
        plan->predicted_seconds(static_cast<double>(stats.comm.payload_bytes));
    if (options_.link_counters != nullptr) {
      const auto links_after = options_.link_counters->snapshot();
      for (std::size_t l = 0; l * 2 < links_after.size(); ++l) {
        const std::uint64_t ab = links_after[2 * l] - links_before[2 * l];
        const std::uint64_t ba =
            links_after[2 * l + 1] - links_before[2 * l + 1];
        if (ab == 0 && ba == 0) continue;
        CommLinkBytes entry;
        entry.link = static_cast<topology::LinkId>(l);
        entry.ab = ab;
        entry.ba = ba;
        for (const comm::PlanLinkInfo& info : plan->links) {
          if (info.link == entry.link) {
            entry.label = info.label;
            break;
          }
        }
        if (entry.label.empty()) {
          entry.label = "link" + std::to_string(l);
        }
        stats.comm.modeled_bytes += ab + ba;
        stats.comm.links.push_back(std::move(entry));
      }
    }
  }

  stats.wall_time_s = seconds_since(t0);
  return stats;
}

std::string io_report(const EpochStats& stats) {
  const auto& io = stats.io;
  char buf[256];
  std::string out = "io:";
  const std::uint64_t naive =
      io.ssd_rows + io.dedup_saved_reads + io.cache_hits;
  std::snprintf(buf, sizeof(buf),
                " cmds %llu (rows %llu, %.2f rows/cmd, dedup -%llu, "
                "cache -%llu)",
                static_cast<unsigned long long>(io.ssd_commands),
                static_cast<unsigned long long>(io.ssd_rows),
                io.ssd_commands > 0 ? io.coalesce_rows_per_cmd() : 0.0,
                static_cast<unsigned long long>(io.dedup_saved_reads),
                static_cast<unsigned long long>(io.cache_hits));
  out += buf;
  if (io.cache_hits + io.cache_misses > 0) {
    std::snprintf(buf, sizeof(buf), "  cache %.1f%% hit, %llu evictions",
                  100.0 * static_cast<double>(io.cache_hits) /
                      static_cast<double>(io.cache_hits + io.cache_misses),
                  static_cast<unsigned long long>(io.cache_evictions));
    out += buf;
  }
  if (naive > 0 && io.ssd_commands < naive) {
    std::snprintf(buf, sizeof(buf), "  (%.1f%% fewer commands than naive)",
                  100.0 * (1.0 - static_cast<double>(io.ssd_commands) /
                                     static_cast<double>(naive)));
    out += buf;
  }
  // Resilience (RetryStats-derived) — elided when the epoch was fault-free.
  if (io.retries + io.timeouts + io.permanent_failures + io.failovers +
          io.device_remaps + io.devices_degraded + io.devices_failed >
      0) {
    std::snprintf(
        buf, sizeof(buf),
        "  faults: retries %llu timeouts %llu perm %llu failovers %llu "
        "remaps %llu degraded %u failed %u",
        static_cast<unsigned long long>(io.retries),
        static_cast<unsigned long long>(io.timeouts),
        static_cast<unsigned long long>(io.permanent_failures),
        static_cast<unsigned long long>(io.failovers),
        static_cast<unsigned long long>(io.device_remaps),
        io.devices_degraded, io.devices_failed);
    out += buf;
  }
  return out;
}

std::string comm_report(const EpochStats& stats) {
  const auto& c = stats.comm;
  if (c.algorithm.empty()) return {};
  char buf[256];
  std::string out = "comm: " + c.algorithm;
  std::snprintf(buf, sizeof(buf),
                " allreduce %.2f MiB/round, predicted %.3f ms/epoch",
                static_cast<double>(c.payload_bytes) / (1024.0 * 1024.0),
                c.predicted_comm_s * 1e3);
  out += buf;
  if (stats.io.peer_rows + stats.io.remote_hbm_host_rows > 0) {
    std::snprintf(buf, sizeof(buf),
                  "  peer rows %llu (%.2f MiB), remote-host rows %llu",
                  static_cast<unsigned long long>(stats.io.peer_rows),
                  static_cast<double>(stats.io.peer_bytes) / (1024.0 * 1024.0),
                  static_cast<unsigned long long>(
                      stats.io.remote_hbm_host_rows));
    out += buf;
  }
  if (!c.links.empty()) {
    out += "  links:";
    for (const CommLinkBytes& l : c.links) {
      std::snprintf(buf, sizeof(buf), " %s %.1f/%.1f MiB", l.label.c_str(),
                    static_cast<double>(l.ab) / (1024.0 * 1024.0),
                    static_cast<double>(l.ba) / (1024.0 * 1024.0));
      out += buf;
    }
  }
  return out;
}

}  // namespace moment::runtime
