#pragma once
// Pipelined data-parallel execution engine: the functional counterpart of the
// flow-level simulator's overlapped IO/compute model (paper Section 3.1,
// SimOptions::compute_time_per_batch).
//
// Each worker ("GPU") is a persistent executor thread that double-buffers
// mini-batches: while batch N runs forward/backward, batch N+1 is already
// sampled and its feature gather issued through the provider's async
// begin/wait protocol, so storage latency hides behind compute. Rounds stay
// barrier-synchronized for DDP correctness: grads are averaged chunk-parallel
// on the coordinator between two barriers, then every worker steps its own
// optimizer on the identical averaged gradients.
//
// Per-stage telemetry (sample / gather / compute / all-reduce seconds plus a
// pipeline-overlap ratio) makes this measured path directly comparable to the
// predicted timings in sim::SimReport — the measured half of a Fig.-13-style
// prediction-vs-measurement story.

#include <barrier>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "comm/plan.hpp"
#include "gnn/features.hpp"
#include "gnn/model.hpp"
#include "gnn/optimizer.hpp"
#include "graph/csr.hpp"
#include "sampling/neighbor_sampler.hpp"
#include "util/thread_pool.hpp"

namespace moment::runtime {

/// Per-worker wall-clock breakdown of one epoch (seconds).
struct StageTimes {
  double sample_s = 0.0;        // neighbor sampling + block building
  double gather_issue_s = 0.0;  // gather_begin: cache copies + SQ submission
  double gather_wait_s = 0.0;   // exposed stall inside gather_wait
  double compute_s = 0.0;       // forward/backward
  double optimizer_s = 0.0;     // local optimizer step
  /// Time an async gather ticket was in flight while this worker did other
  /// work (waiting on the previous batch, computing). Zero for providers
  /// that complete synchronously inside gather_begin().
  double hidden_io_s = 0.0;

  double gather_s() const noexcept { return gather_issue_s + gather_wait_s; }
};

/// Modeled bytes that crossed one physical link this epoch (both directions).
struct CommLinkBytes {
  topology::LinkId link = -1;
  std::string label;
  std::uint64_t ab = 0;
  std::uint64_t ba = 0;
};

/// Communication telemetry for one epoch: the modeled all-reduce transport
/// plus any peer-HBM gather traffic the feature clients routed over the same
/// LinkCounters. Populated only when EngineOptions wires a CommPlan; the
/// per-link deltas additionally need a LinkCounters instance.
struct CommStats {
  std::string algorithm;            // "flat"/"ring"/"tree"; empty = no plan
  std::uint64_t payload_bytes = 0;  // gradient bytes per all-reduce round
  std::uint64_t modeled_bytes = 0;  // sum of per-link byte deltas this epoch
  /// Contention-costed plan model x rounds: the predicted wall-clock cost of
  /// this epoch's all-reduces on the physical links (compare against
  /// sim::SimReport::comm_round_time_s and the measured allreduce_s).
  double predicted_comm_s = 0.0;
  std::vector<CommLinkBytes> links;  // links with nonzero traffic, by id
};

struct EpochStats {
  float mean_loss = 0.0f;
  float mean_accuracy = 0.0f;
  std::size_t batches = 0;
  std::size_t fetched_vertices = 0;
  double wall_time_s = 0.0;

  // Per-stage telemetry: the measured counterpart of sim::SimReport.
  std::size_t rounds = 0;
  std::vector<StageTimes> per_worker;
  StageTimes stage_max;      // per-stage slowest worker (critical path)
  double allreduce_s = 0.0;  // coordinator: chunk-parallel grad averaging
  /// hidden_io / (hidden_io + gather_wait): the fraction of async-gather
  /// in-flight time that was overlapped with other pipeline stages instead
  /// of stalling the worker. 0 when nothing ran asynchronously.
  double overlap_ratio = 0.0;

  /// IO telemetry this epoch: counter fields are per-epoch deltas summed
  /// over workers (fault recovery plus the dedup/coalesce/cache IO-reduction
  /// pipeline); the devices_* gauges are the post-epoch state of the backing
  /// array (max across providers). All zero for fault-free runs on providers
  /// without a faultable backend.
  gnn::FeatureProvider::IoResilience io;

  /// Modeled communication telemetry (all-reduce + peer-HBM gather).
  CommStats comm;
};

/// Formats the epoch's IO telemetry for the per-epoch report: the retry/
/// failover counters (RetryStats-derived) alongside the IO-reduction
/// pipeline's counters (dedup saves, coalesced commands and rows/cmd, cache
/// hit rate and evictions). Single line, empty-ish sections elided.
std::string io_report(const EpochStats& stats);

/// Formats the epoch's comm telemetry (algorithm, per-round payload,
/// predicted seconds, per-link bytes, peer-gather rows) as a single line.
/// Empty string when no comm plan was wired.
std::string comm_report(const EpochStats& stats);

struct EngineOptions {
  /// 1 = strictly sequential per worker (sample -> gather -> compute), the
  /// pre-pipelining reference; 2 = double-buffered prefetch: batch N+1 is
  /// sampled and its gather issued before batch N's gather completes.
  std::size_t pipeline_depth = 2;
  /// Gradient all-reduce parallelism: 1 forces it inline on the coordinator;
  /// anything else fans it out over the shared util::compute_pool() (which is
  /// also what the GEMM/aggregation kernels use — the engine owns no pool of
  /// its own).
  std::size_t allreduce_threads = 0;
  /// Compiled communication plan for the gradient all-reduce. The reduction
  /// itself always runs the same fixed-order elementwise kernel (so every
  /// algorithm is bit-identical); the plan drives the modeled transport:
  /// per-link byte accounting and predicted comm seconds. Null = legacy flat
  /// path with no accounting. Not owned; must outlive the engine.
  const comm::CommPlan* comm_plan = nullptr;
  /// Per-link byte counters shared with the feature clients' peer-gather
  /// path; snapshotted per epoch into EpochStats::comm. Not owned.
  comm::LinkCounters* link_counters = nullptr;
};

/// Persistent-worker pipelined engine. Non-owning: the caller (typically
/// DataParallelTrainer, which stays the public facade) owns the models,
/// optimizers, samplers, providers and partitions; all must outlive the
/// engine. run_epoch() is not re-entrant.
class PipelineEngine {
 public:
  PipelineEngine(const graph::CsrGraph& graph,
                 std::vector<gnn::FeatureProvider*> providers,
                 std::vector<gnn::GnnModel*> models,
                 std::vector<gnn::Optimizer*> optimizers,
                 std::vector<sampling::NeighborSampler*> samplers,
                 const std::vector<std::vector<graph::VertexId>>* partitions,
                 std::uint64_t seed, EngineOptions options = {});
  ~PipelineEngine();

  PipelineEngine(const PipelineEngine&) = delete;
  PipelineEngine& operator=(const PipelineEngine&) = delete;

  /// One barrier-synchronized epoch. `epoch_counter` feeds the per-epoch
  /// seed derivation (batch shuffling and per-round sampling streams), which
  /// is deliberately identical to the historical sequential trainer so the
  /// pipelined and sequential paths produce the same loss trajectory.
  EpochStats run_epoch(std::span<const std::int32_t> labels,
                       std::size_t batch_size, std::size_t max_rounds,
                       std::uint64_t epoch_counter);

  std::size_t num_workers() const noexcept { return providers_.size(); }
  const EngineOptions& options() const noexcept { return options_; }

 private:
  enum class RoundControl { kContinue, kStopNow, kStopAfterStep };

  /// A sampled batch whose feature gather has been issued (double buffer).
  struct Prefetch {
    std::span<const graph::VertexId> batch;
    std::vector<gnn::Block> blocks;
    gnn::Tensor x0;
    gnn::FeatureProvider::GatherTicket ticket = gnn::FeatureProvider::kSyncTicket;
    std::chrono::steady_clock::time_point issued_at{};
    bool valid = false;
  };

  struct alignas(64) WorkerState {
    double loss_sum = 0.0;
    double acc_sum = 0.0;
    std::size_t batches = 0;
    std::size_t fetched = 0;
    StageTimes times;
    bool has_batch = false;
    std::exception_ptr error;
  };

  /// Shared per-epoch context, written by the coordinator before waking the
  /// workers and read by them; barrier phases order all other accesses.
  struct EpochContext {
    std::span<const std::int32_t> labels;
    std::size_t batch_size = 0;
    std::size_t max_rounds = 0;
    std::uint64_t epoch = 0;
    RoundControl control = RoundControl::kContinue;
  };

  void worker_main(std::size_t w);
  void run_worker_epoch(std::size_t w);
  void fetch_batch(std::size_t w, sampling::BatchIterator& iter,
                   Prefetch& slot, std::size_t round, WorkerState& ws);
  void all_reduce_grads();

  const graph::CsrGraph& graph_;
  std::vector<gnn::FeatureProvider*> providers_;
  std::vector<gnn::GnnModel*> models_;
  std::vector<gnn::Optimizer*> optimizers_;
  std::vector<sampling::NeighborSampler*> samplers_;
  const std::vector<std::vector<graph::VertexId>>* partitions_;
  std::uint64_t seed_;
  EngineOptions options_;

  std::vector<std::vector<gnn::Param*>> params_;  // cached per replica
  /// Prefix offsets (in floats) of each parameter's gradient within the flat
  /// element space the all-reduce chunks over; back() == total elements.
  std::vector<std::size_t> grad_offsets_;

  // Worker lifecycle: workers park on cv_ between epochs; epoch_seq_ wakes
  // them, shutdown_ retires them. barrier_ has workers + coordinator parties.
  std::vector<WorkerState> worker_states_;
  std::vector<std::thread> workers_;
  std::barrier<> barrier_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t epoch_seq_ = 0;
  bool shutdown_ = false;
  EpochContext ctx_;
};

}  // namespace moment::runtime
