#pragma once
// End-to-end system models for the evaluation: Moment and the baselines the
// paper compares against. Each run couples a hardware placement, a data
// placement policy, a routing policy, and the epoch simulator:
//
//   Moment     — searched (or given) placement, flow-guided multipath IO,
//                DDAK data placement from the max-flow traffic plan.
//   M-Hyperion — Hyperion extended to multiple GPUs: shared SSD access but
//                topology-oblivious single-path routing and hash placement.
//   M-GIDS     — GIDS extended with DDP: SSDs statically partitioned per GPU
//                (each GPU reads only its own subset); OOMs on UK/CL from
//                BaM page-cache metadata, as measured in the paper.
//   DistDGL    — 4-machine cluster model: CPU-based sampling rate and the
//                measured 20 Gb/s effective network; OOMs when 5x dataset
//                exceeds aggregate cluster DRAM.

#include <optional>
#include <string>

#include "ddak/ddak.hpp"
#include "ddak/workload.hpp"
#include "graph/datasets.hpp"
#include "runtime/models.hpp"
#include "sampling/hotness.hpp"
#include "sim/machine_sim.hpp"
#include "topology/machine.hpp"
#include "topology/predictor.hpp"

namespace moment::runtime {

enum class SystemKind { kMoment, kMHyperion, kMGids, kDistDgl };
const char* system_name(SystemKind kind) noexcept;

enum class DataPolicy { kDdak, kHash };

struct ExperimentConfig {
  const topology::MachineSpec* machine = nullptr;  // unused for DistDGL
  graph::DatasetId dataset = graph::DatasetId::kIG;
  int dataset_scale_shift = 2;          // keeps tests/benches fast
  gnn::ModelKind model = gnn::ModelKind::kGraphSage;
  int num_gpus = 4;
  int num_ssds = 8;
  /// Placement override; when absent Moment searches and baselines use the
  /// classic placement `default_classic`.
  std::optional<topology::Placement> placement;
  char default_classic = 'c';
  std::optional<DataPolicy> data_policy;  // default: per-system policy
  bool nvlink = false;
  ddak::GpuCacheMode gpu_cache_mode = ddak::GpuCacheMode::kReplicated;
  ddak::CacheConfig cache;
  std::uint64_t seed = 42;
};

struct SystemResult {
  std::string system;
  std::string machine;
  std::string dataset;
  std::string model;
  int num_gpus = 0;
  bool oom = false;
  std::string oom_reason;

  double epoch_time_s = 0.0;
  double throughput_seeds_per_s = 0.0;
  sim::SimReport sim;                 // "measured"
  topology::Prediction prediction;    // max-flow "predicted"
  double predicted_epoch_time_s = 0.0;
  topology::Placement placement;
  ddak::EpochWorkload workload;
  double monetary_cost_usd = 0.0;     // 5-year TCO of the platform
};

/// Runs one system on one configuration. Deterministic given the seed.
SystemResult run_system(SystemKind kind, const ExperimentConfig& config);

/// Shared preprocessing bundle so sweeps don't regenerate datasets.
struct Workbench {
  graph::Dataset dataset;
  sampling::HotnessProfile profile;

  static Workbench make(graph::DatasetId id, int scale_shift,
                        std::uint64_t seed);
};

SystemResult run_system(SystemKind kind, const ExperimentConfig& config,
                        const Workbench& bench);

/// Platform 5-year TCO estimates from the paper's cost discussion
/// (Section 4.2): single customized machine vs the 4-node cluster.
double machine_tco_usd();
double cluster_tco_usd();

/// Moment's placement choice: max-flow ranks the (symmetry-reduced)
/// candidate space, then the fluid simulator scores the top few candidates
/// plus the classic layouts under the real symmetric-access model, and the
/// best *simulated* placement wins. The single-commodity max flow can
/// overestimate what symmetric per-GPU access achieves on asymmetric
/// layouts; the refinement step keeps that optimism from selecting them.
struct PlacementChoice {
  topology::Placement placement;
  topology::Prediction prediction;  // flexible-tier, for the chosen layout
  double simulated_epoch_s = 0.0;
  std::size_t candidates_total = 0;
  std::size_t candidates_evaluated = 0;
  std::size_t candidates_simulated = 0;
};

PlacementChoice choose_moment_placement(const topology::MachineSpec& spec,
                                        const Workbench& bench,
                                        const ddak::EpochWorkload& workload,
                                        int num_gpus, int num_ssds,
                                        bool nvlink,
                                        const ddak::CacheConfig& cache,
                                        double compute_time_per_batch,
                                        std::size_t refine_top = 6);

}  // namespace moment::runtime
