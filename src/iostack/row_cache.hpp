#pragma once
// Shared hot-row DRAM cache for SSD-resident feature rows. The static DDAK
// placement pins the *globally* hottest vertices in the GPU/CPU tiers; this
// cache catches rows that are hot *this epoch* but missed the static tiers
// (LSM-GNN's observation: a cross-GPU NVMe feature cache is the single
// biggest lever in storage-based multi-GPU training, and Data Tiering shows
// hotness-seeded admission makes it effective at small sizes).
//
// One instance is owned by TieredFeatureStore and shared by every per-GPU
// client. It is sharded (per-shard mutex, short critical sections — a lookup
// or insert holds the lock only for one row memcpy) so concurrent gather
// threads rarely contend. Eviction is CLOCK per shard: deterministic given
// the per-shard access order, which is what the eviction-determinism tests
// pin down.
//
// Failover rule: when the store remaps a failed device the whole cache is
// invalidated (generation-free: shards are simply cleared under their
// locks). Cached bytes are always byte-identical to the authoritative host
// copy, so this is a performance hygiene rule, not a correctness crutch —
// the chaos harness stays bit-identical with the cache on or off.

#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/csr.hpp"

namespace moment::iostack {

struct RowCacheOptions {
  /// Total rows cached across all shards. 0 disables the cache.
  std::size_t capacity_rows = 0;
  /// Shard count (rounded down so every shard holds at least one row).
  std::size_t shards = 8;
};

struct RowCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Rows dropped by invalidate_all() (device failover).
  std::uint64_t invalidations = 0;
};

class RowCache {
 public:
  /// `dim` is the feature width in floats; every cached row is `dim` wide.
  RowCache(const RowCacheOptions& options, std::size_t dim);

  RowCache(const RowCache&) = delete;
  RowCache& operator=(const RowCache&) = delete;

  std::size_t capacity_rows() const noexcept { return capacity_rows_; }
  std::size_t dim() const noexcept { return dim_; }
  /// Rows currently resident (sums shard sizes; approximate while other
  /// threads insert).
  std::size_t size() const;

  /// Copies the cached row for `v` into `out` (dim floats) and marks it
  /// recently used. Returns false on miss. Counted in hits/misses.
  bool lookup(graph::VertexId v, std::span<float> out);

  /// Inserts (or refreshes) the row for `v`. Evicts via CLOCK when the
  /// shard is full. Row bytes for a vertex never change, so a refresh only
  /// touches the reference bit.
  void insert(graph::VertexId v, std::span<const float> row);

  /// Drops every cached row (device-failover invalidation). Deterministic:
  /// shards come back empty with reset CLOCK hands.
  void invalidate_all();

  /// Aggregated over shards.
  RowCacheStats stats() const;
  void reset_stats();

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<graph::VertexId, std::uint32_t> index;  // v -> slot
    std::vector<graph::VertexId> slot_vertex;
    std::vector<std::uint8_t> ref;  // CLOCK reference bits
    std::vector<float> rows;        // rows_per_shard * dim, slot-major
    std::size_t used = 0;           // slots filled so far (fill-then-evict)
    std::size_t hand = 0;           // CLOCK hand
    RowCacheStats stats;
  };

  Shard& shard_of(graph::VertexId v) noexcept;

  std::size_t dim_ = 0;
  std::size_t capacity_rows_ = 0;
  std::size_t rows_per_shard_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace moment::iostack
