#include "iostack/row_cache.hpp"

#include <algorithm>
#include <cstring>

namespace moment::iostack {

RowCache::RowCache(const RowCacheOptions& options, std::size_t dim)
    : dim_(dim) {
  const std::size_t cap = options.capacity_rows;
  // Every shard must hold at least one row; tiny caches collapse to fewer
  // shards so eviction still happens at the configured total capacity.
  std::size_t shards = std::max<std::size_t>(1, options.shards);
  shards = std::min(shards, std::max<std::size_t>(1, cap));
  rows_per_shard_ = cap == 0 ? 0 : (cap + shards - 1) / shards;
  capacity_rows_ = rows_per_shard_ * shards;
  shards_ = std::vector<Shard>(shards);
  for (Shard& s : shards_) {
    s.index.reserve(rows_per_shard_);
    s.slot_vertex.assign(rows_per_shard_, 0);
    s.ref.assign(rows_per_shard_, 0);
    s.rows.assign(rows_per_shard_ * dim_, 0.0f);
  }
}

RowCache::Shard& RowCache::shard_of(graph::VertexId v) noexcept {
  // Fibonacci hash spreads consecutive vertex ids across shards so adjacent
  // hot rows don't serialize on one mutex.
  const std::uint32_t h = v * 2654435761u;
  return shards_[h % shards_.size()];
}

std::size_t RowCache::size() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    n += s.index.size();
  }
  return n;
}

bool RowCache::lookup(graph::VertexId v, std::span<float> out) {
  if (rows_per_shard_ == 0) return false;
  Shard& s = shard_of(v);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(v);
  if (it == s.index.end()) {
    ++s.stats.misses;
    return false;
  }
  const std::size_t slot = it->second;
  std::memcpy(out.data(), s.rows.data() + slot * dim_, dim_ * sizeof(float));
  s.ref[slot] = 1;
  ++s.stats.hits;
  return true;
}

void RowCache::insert(graph::VertexId v, std::span<const float> row) {
  if (rows_per_shard_ == 0) return;
  Shard& s = shard_of(v);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(v);
  if (it != s.index.end()) {
    // Row bytes never change; a re-insert is just a touch.
    s.ref[it->second] = 1;
    return;
  }
  std::size_t slot;
  if (s.used < rows_per_shard_) {
    slot = s.used++;
  } else {
    // CLOCK: sweep the hand, giving referenced rows a second chance.
    while (s.ref[s.hand] != 0) {
      s.ref[s.hand] = 0;
      s.hand = (s.hand + 1) % rows_per_shard_;
    }
    slot = s.hand;
    s.hand = (s.hand + 1) % rows_per_shard_;
    s.index.erase(s.slot_vertex[slot]);
    ++s.stats.evictions;
  }
  s.slot_vertex[slot] = v;
  s.ref[slot] = 1;
  std::memcpy(s.rows.data() + slot * dim_, row.data(), dim_ * sizeof(float));
  s.index.emplace(v, static_cast<std::uint32_t>(slot));
  ++s.stats.insertions;
}

void RowCache::invalidate_all() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.stats.invalidations += s.index.size();
    s.index.clear();
    std::fill(s.ref.begin(), s.ref.end(), std::uint8_t{0});
    s.used = 0;
    s.hand = 0;
  }
}

RowCacheStats RowCache::stats() const {
  RowCacheStats total;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    total.hits += s.stats.hits;
    total.misses += s.stats.misses;
    total.insertions += s.stats.insertions;
    total.evictions += s.stats.evictions;
    total.invalidations += s.stats.invalidations;
  }
  return total;
}

void RowCache::reset_stats() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.stats = {};
  }
}

}  // namespace moment::iostack
