#pragma once
// In-memory NVMe SSD emulation. Each device owns a byte store (the
// "flash"), a set of registered queue pairs (one per client/GPU — the paper
// extends Hyperion's stack so a single SSD is shared by multiple GPUs), and
// a service thread that drains submission queues round-robin and posts
// completions. An optional throughput model paces service to a target
// bytes/s so latency/bandwidth tests behave like hardware, and an optional
// FaultInjector makes the device misbehave deterministically (transient read
// errors, latency spikes, hard failure) for chaos testing.
//
// The client side (IoEngine) is fault-tolerant: per-request deadlines,
// bounded retry with exponential backoff, deadline-bounded waits (a hung or
// dead SSD can never hang training), and a device health registry on
// SsdArray (healthy -> degraded -> failed) that the feature store's failover
// path keys off.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "iostack/fault_injector.hpp"
#include "iostack/queue_pair.hpp"

namespace moment::iostack {

inline constexpr std::size_t kPageBytes = 4096;

/// Maximum data a single command may carry (the NVMe MDTS analogue). Run
/// coalescing in the gather path merges adjacent feature rows into one
/// multi-row read up to this bound; IoEngine rejects anything larger so a
/// buggy caller can't smuggle an unbounded transfer past the pacing model.
inline constexpr std::size_t kMaxTransferBytes = 128 * 1024;

struct SsdStats {
  std::uint64_t reads = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t errors = 0;
  /// Completions dropped because a client stopped polling its CQ (bounded
  /// completion delivery — the service thread never wedges on a dead client).
  std::uint64_t dropped_completions = 0;
};

struct SsdOptions {
  std::size_t capacity_bytes = 64ull << 20;
  /// 0 = serve as fast as memcpy allows; otherwise pace to this rate.
  double max_bytes_per_s = 0.0;
  std::size_t max_batch = 32;  // SQEs drained per queue per service pass
};

class SsdDevice {
 public:
  explicit SsdDevice(const SsdOptions& options);
  ~SsdDevice();

  SsdDevice(const SsdDevice&) = delete;
  SsdDevice& operator=(const SsdDevice&) = delete;

  /// Registers a client's queue pair; must happen before start().
  QueuePair* create_queue_pair(std::size_t depth = 256);

  /// Attaches a deterministic fault injector; must happen before start().
  /// Returns the injector for runtime control (fail_now(), stats()).
  FaultInjector* inject_faults(const FaultProfile& profile);
  FaultInjector* fault_injector() noexcept { return injector_.get(); }

  void start();
  void stop();
  bool running() const noexcept { return running_.load(); }

  /// Host-side write (dataset reorganisation and failover re-placement).
  /// Safe while the service loop runs ONLY for regions no in-flight or
  /// future read references yet (failover writes freshly allocated slots and
  /// publishes them afterwards via an acquire/release location update).
  void write(std::uint64_t offset, const std::byte* src, std::size_t len);

  std::size_t capacity() const noexcept { return store_.size(); }
  SsdStats stats() const;

 private:
  void service_loop();
  void serve(const Sqe& sqe, QueuePair& qp);
  void bounded_stall(std::uint32_t stall_us);

  std::vector<std::byte> store_;
  std::vector<std::unique_ptr<QueuePair>> queues_;
  SsdOptions options_;
  std::unique_ptr<FaultInjector> injector_;
  std::thread service_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  mutable std::mutex stats_mu_;
  SsdStats stats_;
};

/// Device health as tracked by the array's registry. Degraded devices are
/// still served (retries usually recover them); failed devices are never
/// submitted to again — the feature store serves their rows from the host
/// copy and re-places them onto survivors. Failed is sticky.
enum class DeviceHealth : int { kHealthy = 0, kDegraded = 1, kFailed = 2 };

struct HealthOptions {
  /// Consecutive request failures (errors or timeouts) before degraded.
  std::uint32_t degraded_after = 3;
  /// Consecutive request failures before the device is declared failed.
  /// A kStatusDeviceFailed completion fails the device immediately.
  std::uint32_t failed_after = 8;
};

/// A set of SSDs plus client-side engines, modelling the machine's array of
/// NVMe devices shared by all GPUs. Owns the device health registry, shared
/// by every client engine (thread-safe).
class SsdArray {
 public:
  SsdArray(std::size_t num_ssds, const SsdOptions& options,
           const HealthOptions& health = {});
  ~SsdArray();

  std::size_t size() const noexcept { return ssds_.size(); }
  SsdDevice& ssd(std::size_t i) { return *ssds_[i]; }

  void start_all();
  void stop_all();

  DeviceHealth health(std::size_t i) const noexcept;
  /// Consecutive-failure accounting: failures walk the device through
  /// healthy -> degraded -> failed; a success resets the streak and restores
  /// a degraded device to healthy. Failed is sticky.
  void report_io_result(std::size_t i, bool ok) noexcept;
  void mark_failed(std::size_t i) noexcept;
  std::size_t num_degraded() const noexcept;
  std::size_t num_failed() const noexcept;

 private:
  struct DeviceState {
    std::atomic<int> health{0};
    std::atomic<std::uint32_t> consecutive_failures{0};
  };
  std::vector<std::unique_ptr<SsdDevice>> ssds_;
  std::vector<std::unique_ptr<DeviceState>> states_;
  HealthOptions health_options_;
};

/// A batch-read request (doorbell batching: submit many, ring once). A
/// request may span multiple adjacent feature rows (`length` a multiple of
/// the row size, up to kMaxTransferBytes) — the coalesced form trades
/// commands for bandwidth, which is what moves an IOPS-bound array.
struct ReadRequest {
  std::size_t ssd = 0;
  std::uint64_t offset = 0;
  std::uint32_t length = 0;
  std::byte* dest = nullptr;
};

/// Per-request latency statistics (nanoseconds, submit to completion-poll).
struct LatencyStats {
  std::uint64_t count = 0;
  double mean_ns = 0.0;
  double max_ns = 0.0;
};

/// Client-side resilience policy.
struct IoEngineOptions {
  /// Retries after the first attempt fails or times out; a request is a
  /// permanent failure after 1 + max_retries attempts.
  std::uint32_t max_retries = 3;
  /// Per-attempt deadline; an attempt past it is abandoned and retried.
  std::chrono::nanoseconds request_deadline = std::chrono::seconds(5);
  /// Exponential backoff base: attempt k waits backoff << (k-1).
  std::chrono::nanoseconds retry_backoff = std::chrono::microseconds(50);
  /// Hard bound on wait_all()/wait_group()/SQ-full spins: past it, every
  /// remaining in-flight request is force-failed so no wait is unbounded.
  std::chrono::nanoseconds wait_deadline = std::chrono::seconds(30);
};

struct RetryStats {
  std::uint64_t retries = 0;             // resubmitted attempts
  std::uint64_t timeouts = 0;            // attempts abandoned past deadline
  std::uint64_t permanent_failures = 0;  // requests that exhausted retries
};

/// A request that permanently failed (all attempts exhausted, device dead,
/// or wait deadline hit). Carries the original request so the caller can
/// serve the bytes from an alternative source.
struct FailedRead {
  std::size_t ssd = 0;
  std::uint64_t offset = 0;
  std::uint32_t length = 0;
  std::byte* dest = nullptr;
};

/// Per-client ("per-GPU") IO engine: one queue pair to every SSD, async
/// submission, polling completion — the GPU-initiated access path, with
/// client-side retry/timeout resilience layered on top.
class IoEngine {
 public:
  /// Creates queue pairs on each SSD of the array. Call before start_all().
  explicit IoEngine(SsdArray& array, std::size_t queue_depth = 256,
                    IoEngineOptions options = {});

  /// Asynchronous read; returns a tag. Spins (deadline-bounded) when the SQ
  /// is full. A read aimed at a failed device is failed immediately without
  /// touching the device.
  std::uint64_t submit_read(std::size_t ssd, std::uint64_t offset,
                            std::uint32_t length, std::byte* dest);

  /// Doorbell batching: submits a whole batch before polling anything.
  void submit_batch(std::span<const ReadRequest> requests);

  /// Polls completions until all in-flight requests reach a terminal state
  /// (deadline-bounded). Returns the number of permanently failed requests
  /// and resets the failure counter.
  std::size_t wait_all();
  /// Same, appending the permanently-failed ungrouped requests to `failed`.
  std::size_t wait_all(std::vector<FailedRead>& failed);

  /// Completion groups: reads submitted between group_begin() and
  /// group_end() can be awaited independently of later submissions, so two
  /// batches (e.g. the current gather and a prefetched one) can be in
  /// flight at once. Only one group may be open at a time; groups may be
  /// awaited in any order via wait_group().
  std::uint64_t group_begin();
  void group_end(std::uint64_t group);
  /// Polls until every read of `group` reached a terminal state
  /// (deadline-bounded); returns the group's permanent-failure count.
  std::size_t wait_group(std::uint64_t group);
  /// Same, appending the group's permanently-failed requests to `failed`.
  std::size_t wait_group(std::uint64_t group, std::vector<FailedRead>& failed);

  /// Requests not yet terminal (in a device SQ or awaiting retry).
  std::size_t in_flight() const noexcept {
    return pending_.size() + retry_queue_.size();
  }
  std::uint64_t completed() const noexcept { return completed_; }

  const RetryStats& retry_stats() const noexcept { return retry_stats_; }
  void reset_retry_stats() noexcept { retry_stats_ = {}; }
  const IoEngineOptions& options() const noexcept { return options_; }

  /// Latency of completed requests since construction/reset (first submit
  /// to completion poll, i.e. including retry delays).
  LatencyStats latency() const noexcept;
  void reset_latency() noexcept;

 private:
  /// One attempt in a device SQ (or completed, not yet polled).
  struct Pending {
    std::size_t ssd = 0;
    std::uint64_t offset = 0;
    std::uint32_t length = 0;
    std::byte* dest = nullptr;
    std::uint64_t group_id = 0;  // 0 = ungrouped
    std::uint64_t first_submit_ns = 0;
    std::uint64_t deadline_ns = 0;
    std::uint32_t attempts = 1;
  };
  struct RetryEntry {
    Pending req;
    std::uint64_t not_before_ns = 0;
  };
  struct CompletionGroup {
    std::size_t outstanding = 0;
    std::size_t failures = 0;
    bool open = true;
    std::vector<FailedRead> failed;
  };

  bool drain_completions();
  bool service_retries(std::uint64_t now);
  bool check_timeouts(std::uint64_t now);
  bool pump();
  void finish_success(const Pending& p);
  void finish_failure(const Pending& p);
  void handle_attempt_failure(Pending p, std::uint64_t now, bool timed_out);
  void force_fail(std::uint64_t group_id, bool all);
  std::uint64_t backoff_ns(std::uint32_t attempts) const noexcept;
  bool device_failed(std::size_t ssd) const noexcept;

  SsdArray* array_ = nullptr;
  std::vector<QueuePair*> queues_;  // one per SSD
  IoEngineOptions options_;

  /// Tag-indexed state (no linear scans on the completion path).
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::unordered_map<std::uint64_t, std::size_t> abandoned_;  // tag -> ssd
  std::vector<RetryEntry> retry_queue_;
  std::unordered_map<std::uint64_t, CompletionGroup> groups_;
  std::uint64_t open_group_ = 0;
  std::uint64_t next_group_id_ = 1;
  std::uint64_t next_tag_ = 1;
  std::uint64_t completed_ = 0;
  std::size_t failures_ = 0;
  std::vector<FailedRead> ungrouped_failed_;
  RetryStats retry_stats_;
  std::uint64_t last_timeout_scan_ns_ = 0;

  std::uint64_t latency_count_ = 0;
  double latency_sum_ns_ = 0.0;
  double latency_max_ns_ = 0.0;
};

}  // namespace moment::iostack
