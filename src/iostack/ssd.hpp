#pragma once
// In-memory NVMe SSD emulation. Each device owns a byte store (the
// "flash"), a set of registered queue pairs (one per client/GPU — the paper
// extends Hyperion's stack so a single SSD is shared by multiple GPUs), and
// a service thread that drains submission queues round-robin and posts
// completions. An optional throughput model paces service to a target
// bytes/s so latency/bandwidth tests behave like hardware.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "iostack/queue_pair.hpp"

namespace moment::iostack {

inline constexpr std::size_t kPageBytes = 4096;

struct SsdStats {
  std::uint64_t reads = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t errors = 0;
};

struct SsdOptions {
  std::size_t capacity_bytes = 64ull << 20;
  /// 0 = serve as fast as memcpy allows; otherwise pace to this rate.
  double max_bytes_per_s = 0.0;
  std::size_t max_batch = 32;  // SQEs drained per queue per service pass
};

class SsdDevice {
 public:
  explicit SsdDevice(const SsdOptions& options);
  ~SsdDevice();

  SsdDevice(const SsdDevice&) = delete;
  SsdDevice& operator=(const SsdDevice&) = delete;

  /// Registers a client's queue pair; must happen before start().
  QueuePair* create_queue_pair(std::size_t depth = 256);

  void start();
  void stop();
  bool running() const noexcept { return running_.load(); }

  /// Host-side write (dataset reorganisation path; not on the training
  /// fast path). Thread-safe with the service loop only when stopped.
  void write(std::uint64_t offset, const std::byte* src, std::size_t len);

  std::size_t capacity() const noexcept { return store_.size(); }
  SsdStats stats() const;

 private:
  void service_loop();
  void serve(const Sqe& sqe, QueuePair& qp);

  std::vector<std::byte> store_;
  std::vector<std::unique_ptr<QueuePair>> queues_;
  SsdOptions options_;
  std::thread service_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  mutable std::mutex stats_mu_;
  SsdStats stats_;
};

/// A set of SSDs plus client-side engines, modelling the machine's array of
/// NVMe devices shared by all GPUs.
class SsdArray {
 public:
  SsdArray(std::size_t num_ssds, const SsdOptions& options);
  ~SsdArray();

  std::size_t size() const noexcept { return ssds_.size(); }
  SsdDevice& ssd(std::size_t i) { return *ssds_[i]; }

  void start_all();
  void stop_all();

 private:
  std::vector<std::unique_ptr<SsdDevice>> ssds_;
};

/// A batch-read request (doorbell batching: submit many, ring once).
struct ReadRequest {
  std::size_t ssd = 0;
  std::uint64_t offset = 0;
  std::uint32_t length = 0;
  std::byte* dest = nullptr;
};

/// Per-request latency statistics (nanoseconds, submit to completion-poll).
struct LatencyStats {
  std::uint64_t count = 0;
  double mean_ns = 0.0;
  double max_ns = 0.0;
};

/// Per-client ("per-GPU") IO engine: one queue pair to every SSD, async
/// submission, polling completion — the GPU-initiated access path.
class IoEngine {
 public:
  /// Creates queue pairs on each SSD of the array. Call before start_all().
  IoEngine(SsdArray& array, std::size_t queue_depth = 256);

  /// Asynchronous read; returns a tag. Spins when the SQ is full.
  std::uint64_t submit_read(std::size_t ssd, std::uint64_t offset,
                            std::uint32_t length, std::byte* dest);

  /// Doorbell batching: submits a whole batch before polling anything.
  void submit_batch(std::span<const ReadRequest> requests);

  /// Polls completions until all in-flight requests are done.
  /// Returns the number of failed requests.
  std::size_t wait_all();

  /// Completion groups: reads submitted between group_begin() and
  /// group_end() can be awaited independently of later submissions, so two
  /// batches (e.g. the current gather and a prefetched one) can be in
  /// flight at once. Only one group may be open at a time; groups must be
  /// awaited in any order via wait_group().
  std::uint64_t group_begin();
  void group_end(std::uint64_t group);
  /// Polls until every read of `group` completed; returns its failure count.
  std::size_t wait_group(std::uint64_t group);

  std::size_t in_flight() const noexcept { return in_flight_; }
  std::uint64_t completed() const noexcept { return completed_; }

  /// Latency of completed requests since construction/reset.
  LatencyStats latency() const noexcept;
  void reset_latency() noexcept;

 private:
  void drain_completions();

  /// Tags are assigned sequentially, so a group is a half-open tag range;
  /// an open group has end_tag == UINT64_MAX.
  struct CompletionGroup {
    std::uint64_t id = 0;
    std::uint64_t start_tag = 0;
    std::uint64_t end_tag = UINT64_MAX;
    std::size_t outstanding = 0;
    std::size_t failures = 0;
  };

  std::vector<QueuePair*> queues_;  // one per SSD
  std::vector<CompletionGroup> groups_;  // at most a handful live at once
  std::uint64_t next_group_id_ = 1;
  std::size_t in_flight_ = 0;
  std::uint64_t next_tag_ = 1;
  std::uint64_t completed_ = 0;
  std::size_t failures_ = 0;
  /// tag -> submit timestamp (ns); bounded by total queue depth.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pending_times_;
  std::uint64_t latency_count_ = 0;
  double latency_sum_ns_ = 0.0;
  double latency_max_ns_ = 0.0;
};

}  // namespace moment::iostack
