#include "iostack/feature_store.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "ddak/ddak.hpp"

namespace moment::iostack {

std::uint64_t TieredFeatureStore::pack(const Location& loc) noexcept {
  return static_cast<std::uint64_t>(loc.index) |
         (static_cast<std::uint64_t>(
              static_cast<std::uint16_t>(loc.ssd + 1))
          << 32) |
         (static_cast<std::uint64_t>(static_cast<int>(loc.kind)) << 48);
}

TieredFeatureStore::Location TieredFeatureStore::unpack(
    std::uint64_t bits) noexcept {
  Location loc;
  loc.index = static_cast<std::uint32_t>(bits & 0xffffffffu);
  loc.ssd = static_cast<std::int32_t>((bits >> 32) & 0xffffu) - 1;
  loc.kind = static_cast<BinBacking::Kind>(static_cast<int>(bits >> 48));
  return loc;
}

TieredFeatureStore::Location TieredFeatureStore::location(
    graph::VertexId v) const noexcept {
  return unpack(loc_[v].load(std::memory_order_acquire));
}

TieredFeatureStore::TieredFeatureStore(
    const gnn::Tensor& features, std::span<const std::int32_t> bin_of_vertex,
    std::span<const BinBacking> bins, SsdArray& array)
    : dim_(features.cols()), array_(&array),
      bins_(bins.begin(), bins.end()),
      bin_of_vertex_(bin_of_vertex.begin(), bin_of_vertex.end()) {
  const std::size_t n = features.rows();
  if (bin_of_vertex.size() != n) {
    throw std::invalid_argument("TieredFeatureStore: placement size mismatch");
  }
  const std::size_t raw = dim_ * sizeof(float);
  row_bytes_ = ((raw + kPageBytes - 1) / kPageBytes) * kPageBytes;

  // First pass: count rows per tier / per SSD. Rows in owned GPU-HBM bins
  // (BinBacking::gpu >= 0) also get a host authoritative copy: it is the
  // storage-path fallback remote clients use when peer routing is off.
  std::size_t gpu_rows = 0, cpu_rows = 0, host_total = 0;
  std::vector<std::uint32_t> ssd_rows(array.size(), 0);
  for (std::size_t v = 0; v < n; ++v) {
    const auto b = static_cast<std::size_t>(bin_of_vertex[v]);
    if (b >= bins.size()) {
      throw std::out_of_range("TieredFeatureStore: bin index");
    }
    switch (bins[b].kind) {
      case BinBacking::Kind::kGpuCache:
        ++gpu_rows;
        if (bins[b].gpu >= 0) ++host_total;
        break;
      case BinBacking::Kind::kCpuCache: ++cpu_rows; break;
      case BinBacking::Kind::kSsd: {
        const auto s = static_cast<std::size_t>(bins[b].ssd);
        if (s >= array.size()) {
          throw std::out_of_range("TieredFeatureStore: ssd index");
        }
        ++ssd_rows[s];
        ++host_total;
        break;
      }
    }
  }
  for (std::size_t s = 0; s < array.size(); ++s) {
    if (static_cast<std::uint64_t>(ssd_rows[s]) * row_bytes_ >
        array.ssd(s).capacity()) {
      throw std::invalid_argument(
          "TieredFeatureStore: SSD capacity too small for placement");
    }
  }

  gpu_cache_ = gnn::Tensor(gpu_rows, dim_);
  cpu_cache_ = gnn::Tensor(cpu_rows, dim_);
  host_copy_ = gnn::Tensor(host_total, dim_);
  host_index_.assign(n, -1);
  loc_ = std::vector<std::atomic<std::uint64_t>>(n);
  ssd_next_slot_.assign(array.size(), 0);
  device_remapped_.assign(array.size(), false);

  std::uint32_t gpu_cursor = 0, cpu_cursor = 0;
  std::size_t host_cursor = 0;
  std::vector<std::uint32_t> ssd_cursor(array.size(), 0);
  std::vector<std::byte> row(row_bytes_);
  for (std::size_t v = 0; v < n; ++v) {
    const BinBacking& bin = bins[static_cast<std::size_t>(bin_of_vertex[v])];
    Location loc;
    loc.kind = bin.kind;
    loc.ssd = bin.ssd;
    loc.index = 0;
    const auto src = features.row(v);
    switch (bin.kind) {
      case BinBacking::Kind::kGpuCache:
        loc.index = gpu_cursor;
        loc.ssd = bin.gpu;  // owning GPU ordinal (-1 = replicated)
        std::copy(src.begin(), src.end(), gpu_cache_.row(gpu_cursor).begin());
        ++gpu_cursor;
        if (bin.gpu >= 0) {
          host_index_[v] = static_cast<std::int64_t>(host_cursor);
          std::copy(src.begin(), src.end(),
                    host_copy_.row(host_cursor).begin());
          ++host_cursor;
        }
        break;
      case BinBacking::Kind::kCpuCache:
        loc.index = cpu_cursor;
        std::copy(src.begin(), src.end(), cpu_cache_.row(cpu_cursor).begin());
        ++cpu_cursor;
        break;
      case BinBacking::Kind::kSsd: {
        const auto s = static_cast<std::size_t>(bin.ssd);
        loc.index = ssd_cursor[s];
        std::memset(row.data(), 0, row.size());
        std::memcpy(row.data(), src.data(), raw);
        array.ssd(s).write(static_cast<std::uint64_t>(loc.index) * row_bytes_,
                           row.data(), row.size());
        ++ssd_cursor[s];
        host_index_[v] = static_cast<std::int64_t>(host_cursor);
        std::copy(src.begin(), src.end(),
                  host_copy_.row(host_cursor).begin());
        ++host_cursor;
        break;
      }
    }
    loc_[v].store(pack(loc), std::memory_order_relaxed);
  }
  for (std::size_t s = 0; s < array.size(); ++s) {
    ssd_next_slot_[s] = ssd_cursor[s];
  }
}

void TieredFeatureStore::enable_row_cache(const RowCacheOptions& options) {
  row_cache_ = options.capacity_rows > 0
                   ? std::make_unique<RowCache>(options, dim_)
                   : nullptr;
}

std::size_t TieredFeatureStore::warm_row_cache(
    std::span<const graph::VertexId> by_hotness_desc) {
  if (row_cache_ == nullptr) return 0;
  std::size_t seeded = 0;
  for (graph::VertexId v : by_hotness_desc) {
    if (seeded >= row_cache_->capacity_rows()) break;
    // Only SSD-resident vertices belong in the cache; the static tiers
    // already hold the rest in DRAM/HBM (owned-HBM rows have a host copy
    // too, but caching them would shadow the peer path).
    if (v >= host_index_.size() || host_index_[v] < 0) continue;
    if (location(v).kind != BinBacking::Kind::kSsd) continue;
    row_cache_->insert(v, authoritative_row(v));
    ++seeded;
  }
  return seeded;
}

std::span<const float> TieredFeatureStore::authoritative_row(
    graph::VertexId v) const {
  const std::int64_t idx = host_index_[v];
  if (idx < 0) {
    throw std::logic_error(
        "TieredFeatureStore::authoritative_row: vertex has no host copy");
  }
  return host_copy_.row(static_cast<std::size_t>(idx));
}

bool TieredFeatureStore::remap_failed_device(std::size_t ssd) {
  std::lock_guard<std::mutex> lock(remap_mu_);
  if (ssd >= array_->size() || device_remapped_[ssd]) return false;
  device_remapped_[ssd] = true;

  // Build the ddak view of the placement: the stored BinBacking list plus a
  // count/assignment snapshot. Capacities are expressed in vertices.
  std::vector<ddak::Bin> dbins(bins_.size());
  std::vector<std::size_t> failed_bins;
  for (std::size_t b = 0; b < bins_.size(); ++b) {
    ddak::Bin& db = dbins[b];
    switch (bins_[b].kind) {
      case BinBacking::Kind::kGpuCache:
        db.tier = topology::StorageTier::kGpuHbm;
        db.capacity_vertices = 0.0;  // caches don't absorb failover rows
        break;
      case BinBacking::Kind::kCpuCache:
        db.tier = topology::StorageTier::kCpuDram;
        db.capacity_vertices = 0.0;
        break;
      case BinBacking::Kind::kSsd: {
        db.tier = topology::StorageTier::kSsd;
        const auto s = static_cast<std::size_t>(bins_[b].ssd);
        if (s == ssd || array_->health(s) == DeviceHealth::kFailed) {
          if (s == ssd) failed_bins.push_back(b);
          db.capacity_vertices = 0.0;
        } else {
          db.capacity_vertices = static_cast<double>(
              array_->ssd(s).capacity() / row_bytes_);
        }
        break;
      }
    }
  }
  if (failed_bins.empty()) return false;

  ddak::DataPlacementResult snapshot;
  snapshot.bin_of_vertex = bin_of_vertex_;
  snapshot.bin_access.assign(bins_.size(), 0.0);
  snapshot.bin_count.assign(bins_.size(), 0);
  snapshot.bin_traffic_share.assign(bins_.size(), 0.0);
  for (std::int32_t b : bin_of_vertex_) {
    ++snapshot.bin_count[static_cast<std::size_t>(b)];
  }
  // Survivors already hold their own rows: count those against capacity.
  // (bin_count is per-bin; plan_bin_failover seeds fill from it.)
  const std::vector<ddak::FailoverMove> moves =
      ddak::plan_bin_failover(dbins, snapshot, failed_bins);

  // Write each displaced vertex's authoritative row to a fresh slot on its
  // new device, then publish the new location. The SQE ring's release/
  // acquire pair orders the row bytes before any read that targets them.
  const std::size_t raw = dim_ * sizeof(float);
  std::vector<std::byte> row(row_bytes_);
  for (const ddak::FailoverMove& m : moves) {
    const auto to_bin = static_cast<std::size_t>(m.to_bin);
    const auto s = static_cast<std::size_t>(bins_[to_bin].ssd);
    const std::uint64_t slot = ssd_next_slot_[s];
    if ((slot + 1) * row_bytes_ > array_->ssd(s).capacity()) {
      continue;  // out of space: the host copy keeps serving this vertex
    }
    const auto src = authoritative_row(m.vertex);
    std::memset(row.data(), 0, row.size());
    std::memcpy(row.data(), src.data(), raw);
    array_->ssd(s).write(slot * row_bytes_, row.data(), row.size());
    ++ssd_next_slot_[s];

    bin_of_vertex_[m.vertex] = m.to_bin;
    Location loc;
    loc.kind = BinBacking::Kind::kSsd;
    loc.ssd = bins_[to_bin].ssd;
    loc.index = static_cast<std::uint32_t>(slot);
    loc_[m.vertex].store(pack(loc), std::memory_order_release);
  }
  // Failover invalidation rule: drop the whole shared cache so no gather
  // mixes admission decisions made against the old placement. Cached bytes
  // are always authoritative-identical, so this costs warm-up, not
  // correctness — the chaos harness stays bit-identical either way.
  if (row_cache_ != nullptr) row_cache_->invalidate_all();
  device_remaps_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

TieredFeatureClient::TieredFeatureClient(TieredFeatureStore& store,
                                         std::size_t queue_depth,
                                         IoEngineOptions io_options,
                                         GatherOptions gather_options,
                                         PeerConfig peer)
    : store_(store), engine_(store.array(), queue_depth, io_options),
      gather_options_(gather_options), peer_(peer) {}

void TieredFeatureClient::serve_from_host(graph::VertexId v, gnn::Tensor& out,
                                          std::size_t out_row) {
  const auto src = store_.authoritative_row(v);
  std::copy(src.begin(), src.end(), out.row(out_row).begin());
  ++stats_.failovers;
}

void TieredFeatureClient::reset_slot(Slot& slot) noexcept {
  slot.ticket = 0;
  slot.group = 0;
  slot.out = nullptr;
  slot.pending.clear();
  slot.runs.clear();
  slot.dups.clear();
}

void TieredFeatureClient::gather(std::span<const graph::VertexId> vertices,
                                 gnn::Tensor& out) {
  gather_wait(gather_begin(vertices, out));
}

gnn::FeatureProvider::GatherTicket TieredFeatureClient::gather_begin(
    std::span<const graph::VertexId> vertices, gnn::Tensor& out) {
  if (out.rows() != vertices.size() || out.cols() != store_.dim()) {
    throw std::invalid_argument("TieredFeatureClient::gather: shape mismatch");
  }
  Slot* slot = nullptr;
  for (Slot& s : slots_) {
    if (s.ticket == 0) {
      slot = &s;
      break;
    }
  }
  if (slot == nullptr) {
    throw std::logic_error(
        "TieredFeatureClient::gather_begin: more than two gathers in flight");
  }

  const std::size_t row_bytes = store_.row_bytes();
  const bool dedup = gather_options_.dedup;
  RowCache* cache = gather_options_.use_cache ? store_.row_cache() : nullptr;
  slot->pending.clear();
  slot->runs.clear();
  slot->dups.clear();
  scratch_reqs_.clear();
  scratch_targets_.clear();
  if (dedup) scratch_first_.clear();

  // Per-batch device-health snapshot: one atomic load per device per gather
  // instead of one per SSD-resident vertex. Refreshed after a remap (the
  // only event that moves rows between devices mid-batch).
  const std::size_t num_ssds = store_.array().size();
  scratch_health_.resize(num_ssds);
  const auto snapshot_health = [&] {
    for (std::size_t s = 0; s < num_ssds; ++s) {
      scratch_health_[s] = store_.array().health(s);
    }
  };
  snapshot_health();

  // First-occurrence map: bit 31 marks rows whose bytes are still in flight
  // (duplicates of those replicate at scatter time instead of now).
  constexpr std::uint32_t kInFlightBit = 0x80000000u;

  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const graph::VertexId v = vertices[i];
    std::uint32_t* first_entry = nullptr;
    if (dedup) {
      const auto [it, inserted] =
          scratch_first_.try_emplace(v, static_cast<std::uint32_t>(i));
      if (!inserted) {
        // Duplicate vertex: one copy already exists (or is in flight) in
        // this batch's output — replicate it instead of re-fetching.
        const std::uint32_t first = it->second;
        if ((first & kInFlightBit) != 0) {
          slot->dups.push_back(
              {static_cast<std::uint32_t>(i), first & ~kInFlightBit});
          ++stats_.dedup_saved_reads;
        } else {
          const auto src = out.row(first);
          std::copy(src.begin(), src.end(), out.row(i).begin());
          switch (store_.location(v).kind) {
            case BinBacking::Kind::kGpuCache: ++stats_.gpu_hits; break;
            case BinBacking::Kind::kCpuCache: ++stats_.cpu_hits; break;
            case BinBacking::Kind::kSsd: ++stats_.dedup_saved_reads; break;
          }
        }
        continue;
      }
      first_entry = &it->second;
    }

    TieredFeatureStore::Location loc = store_.location(v);
    switch (loc.kind) {
      case BinBacking::Kind::kGpuCache: {
        const int owner = loc.ssd;  // owning GPU ordinal; -1 = replicated
        if (owner >= 0 && owner != peer_.gpu) {
          const comm::PeerRoute* route =
              peer_.plan != nullptr ? peer_.plan->peer_route(owner, peer_.gpu)
                                    : nullptr;
          if (route != nullptr && route->valid()) {
            // Modeled P2P copy: the bytes come from the owner's HBM tier and
            // the planned route's links are charged dim*4 bytes each.
            const auto src = store_.gpu_cache().row(loc.index);
            std::copy(src.begin(), src.end(), out.row(i).begin());
            ++stats_.peer_hits;
            const std::uint64_t bytes = store_.dim() * sizeof(float);
            stats_.peer_bytes += bytes;
            if (peer_.counters != nullptr) {
              for (const comm::RouteLink& rl : route->links) {
                peer_.counters->add(rl.link, rl.forward, bytes);
              }
            }
          } else {
            // Storage-path round trip: host authoritative copy (same bytes).
            const auto src = store_.authoritative_row(v);
            std::copy(src.begin(), src.end(), out.row(i).begin());
            ++stats_.remote_hbm_host_reads;
          }
        } else {
          const auto src = store_.gpu_cache().row(loc.index);
          std::copy(src.begin(), src.end(), out.row(i).begin());
          ++stats_.gpu_hits;
        }
        break;
      }
      case BinBacking::Kind::kCpuCache: {
        const auto src = store_.cpu_cache().row(loc.index);
        std::copy(src.begin(), src.end(), out.row(i).begin());
        ++stats_.cpu_hits;
        break;
      }
      case BinBacking::Kind::kSsd: {
        auto ssd = static_cast<std::size_t>(loc.ssd);
        if (scratch_health_[ssd] == DeviceHealth::kFailed) {
          // Known-dead device: trigger the remap (idempotent), re-read the
          // location, and fall back to the host copy if it didn't move.
          if (store_.remap_failed_device(ssd)) ++stats_.device_remaps;
          snapshot_health();
          loc = store_.location(v);
          ssd = static_cast<std::size_t>(loc.ssd);
          if (loc.kind != BinBacking::Kind::kSsd ||
              scratch_health_[ssd] == DeviceHealth::kFailed) {
            serve_from_host(v, out, i);
            break;
          }
        }
        if (cache != nullptr && cache->lookup(v, out.row(i))) {
          ++stats_.cache_hits;
          break;
        }
        if (cache != nullptr) ++stats_.cache_misses;
        scratch_targets_.push_back({static_cast<std::uint32_t>(ssd),
                                    loc.index, v,
                                    static_cast<std::uint32_t>(i)});
        if (first_entry != nullptr) *first_entry |= kInFlightBit;
        ++stats_.ssd_reads;
        stats_.ssd_bytes += row_bytes;
        break;
      }
    }
  }

  if (scratch_targets_.empty()) {
    // Served entirely from the cache tiers (dups of in-flight rows can only
    // exist when at least one target is in flight).
    return kSyncTicket;
  }

  // Run coalescing: sort the unique targets by (ssd, row index) and merge
  // runs of adjacent rows into single multi-row commands, bounded by the
  // transfer-size knob. Equal indices (dedup off) never extend a run.
  std::sort(scratch_targets_.begin(), scratch_targets_.end(),
            [](const SsdTarget& a, const SsdTarget& b) {
              return a.ssd != b.ssd ? a.ssd < b.ssd : a.index < b.index;
            });
  const std::size_t max_bytes = std::clamp(gather_options_.max_transfer_bytes,
                                           row_bytes, kMaxTransferBytes);
  const std::uint32_t max_rows =
      gather_options_.coalesce
          ? static_cast<std::uint32_t>(max_bytes / row_bytes)
          : 1u;

  slot->bounce.resize(scratch_targets_.size() * row_bytes);
  std::size_t off = 0;
  std::size_t t = 0;
  while (t < scratch_targets_.size()) {
    const std::size_t run_begin = t;
    const SsdTarget& first = scratch_targets_[t];
    std::uint32_t rows = 1;
    ++t;
    while (t < scratch_targets_.size() && rows < max_rows &&
           scratch_targets_[t].ssd == first.ssd &&
           scratch_targets_[t].index == first.index + rows) {
      ++rows;
      ++t;
    }
    const auto run_id = static_cast<std::uint32_t>(slot->runs.size());
    scratch_reqs_.push_back(
        {first.ssd, static_cast<std::uint64_t>(first.index) * row_bytes,
         static_cast<std::uint32_t>(rows * row_bytes),
         slot->bounce.data() + off});
    slot->runs.push_back({off, rows, false});
    for (std::uint32_t k = 0; k < rows; ++k) {
      const SsdTarget& tk = scratch_targets_[run_begin + k];
      slot->pending.push_back(
          {tk.out_row, off + k * row_bytes, tk.vertex, run_id});
    }
    off += static_cast<std::size_t>(rows) * row_bytes;
    ++stats_.ssd_commands;
    if (rows > 1) ++stats_.coalesced_commands;
  }

  slot->group = engine_.group_begin();
  engine_.submit_batch(scratch_reqs_);
  engine_.group_end(slot->group);
  slot->out = &out;
  slot->ticket = next_ticket_++;
  return slot->ticket;
}

void TieredFeatureClient::gather_wait(GatherTicket ticket) {
  if (ticket == kSyncTicket) return;
  Slot* slot = nullptr;
  for (Slot& s : slots_) {
    if (s.ticket == ticket) {
      slot = &s;
      break;
    }
  }
  if (slot == nullptr) {
    throw std::logic_error("TieredFeatureClient::gather_wait: unknown ticket");
  }

  try {
    scratch_failed_.clear();
    engine_.wait_group(slot->group, scratch_failed_);

    // A coalesced command fails as a unit: mark its run (located by binary
    // search over the ascending bounce offsets) so every row it carried is
    // served from the host copy instead of the bounce buffer.
    std::size_t failed_ssds_mask = 0;
    for (const FailedRead& fr : scratch_failed_) {
      const auto off = static_cast<std::size_t>(fr.dest - slot->bounce.data());
      const auto it = std::lower_bound(
          slot->runs.begin(), slot->runs.end(), off,
          [](const Run& r, std::size_t o) { return r.bounce_off < o; });
      if (it != slot->runs.end() && it->bounce_off == off) it->failed = true;
      if (fr.ssd < sizeof(failed_ssds_mask) * 8) {
        failed_ssds_mask |= std::size_t{1} << fr.ssd;
      }
    }

    RowCache* cache =
        gather_options_.use_cache ? store_.row_cache() : nullptr;
    const std::size_t raw = store_.dim() * sizeof(float);
    for (const PendingRow& pr : slot->pending) {
      if (slot->runs[pr.run].failed) {
        serve_from_host(pr.vertex, *slot->out, pr.out_row);
      } else {
        std::memcpy(slot->out->row(pr.out_row).data(),
                    slot->bounce.data() + pr.bounce_off, raw);
      }
      // Fill the shared cache on completion. Failover rows are admitted
      // too: the host copy carries the exact device bytes.
      if (cache != nullptr) {
        cache->insert(pr.vertex, slot->out->row(pr.out_row));
      }
    }

    // Replicate duplicate occurrences from the first (just-scattered) copy.
    for (const DupRow& d : slot->dups) {
      const auto src = slot->out->row(d.src_row);
      std::copy(src.begin(), src.end(), slot->out->row(d.out_row).begin());
    }

    // Hard-failed devices get their bins re-placed so future gathers hit
    // survivors instead of falling back row by row.
    if (failed_ssds_mask != 0) {
      for (std::size_t s = 0; s < store_.array().size(); ++s) {
        if ((failed_ssds_mask >> s) & 1u) {
          if (store_.array().health(s) == DeviceHealth::kFailed &&
              store_.remap_failed_device(s)) {
            ++stats_.device_remaps;
          }
        }
      }
    }
  } catch (...) {
    reset_slot(*slot);
    throw;
  }
  reset_slot(*slot);
}

gnn::FeatureProvider::IoResilience TieredFeatureClient::io_resilience() const {
  IoResilience r;
  const RetryStats& rs = engine_.retry_stats();
  r.retries = rs.retries;
  r.timeouts = rs.timeouts;
  r.permanent_failures = rs.permanent_failures;
  r.failovers = stats_.failovers;
  r.device_remaps = store_.device_remaps();
  r.dedup_saved_reads = stats_.dedup_saved_reads;
  r.ssd_rows = stats_.ssd_reads;
  r.ssd_commands = stats_.ssd_commands;
  r.coalesced_commands = stats_.coalesced_commands;
  r.cache_hits = stats_.cache_hits;
  r.cache_misses = stats_.cache_misses;
  r.peer_rows = stats_.peer_hits;
  r.peer_bytes = stats_.peer_bytes;
  r.remote_hbm_host_rows = stats_.remote_hbm_host_reads;
  if (const RowCache* cache = store_.row_cache()) {
    r.cache_evictions = cache->stats().evictions;
  }
  r.devices_degraded =
      static_cast<std::uint32_t>(store_.array().num_degraded());
  r.devices_failed = static_cast<std::uint32_t>(store_.array().num_failed());
  return r;
}

}  // namespace moment::iostack
