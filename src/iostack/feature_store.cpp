#include "iostack/feature_store.hpp"

#include <cstring>
#include <stdexcept>

namespace moment::iostack {

TieredFeatureStore::TieredFeatureStore(
    const gnn::Tensor& features, std::span<const std::int32_t> bin_of_vertex,
    std::span<const BinBacking> bins, SsdArray& array)
    : dim_(features.cols()), array_(&array) {
  const std::size_t n = features.rows();
  if (bin_of_vertex.size() != n) {
    throw std::invalid_argument("TieredFeatureStore: placement size mismatch");
  }
  const std::size_t raw = dim_ * sizeof(float);
  row_bytes_ = ((raw + kPageBytes - 1) / kPageBytes) * kPageBytes;

  // First pass: count rows per tier / per SSD.
  std::size_t gpu_rows = 0, cpu_rows = 0;
  std::vector<std::uint32_t> ssd_rows(array.size(), 0);
  for (std::size_t v = 0; v < n; ++v) {
    const auto b = static_cast<std::size_t>(bin_of_vertex[v]);
    if (b >= bins.size()) {
      throw std::out_of_range("TieredFeatureStore: bin index");
    }
    switch (bins[b].kind) {
      case BinBacking::Kind::kGpuCache: ++gpu_rows; break;
      case BinBacking::Kind::kCpuCache: ++cpu_rows; break;
      case BinBacking::Kind::kSsd: {
        const auto s = static_cast<std::size_t>(bins[b].ssd);
        if (s >= array.size()) {
          throw std::out_of_range("TieredFeatureStore: ssd index");
        }
        ++ssd_rows[s];
        break;
      }
    }
  }
  for (std::size_t s = 0; s < array.size(); ++s) {
    if (static_cast<std::uint64_t>(ssd_rows[s]) * row_bytes_ >
        array.ssd(s).capacity()) {
      throw std::invalid_argument(
          "TieredFeatureStore: SSD capacity too small for placement");
    }
  }

  gpu_cache_ = gnn::Tensor(gpu_rows, dim_);
  cpu_cache_ = gnn::Tensor(cpu_rows, dim_);
  locations_.resize(n);

  std::uint32_t gpu_cursor = 0, cpu_cursor = 0;
  std::vector<std::uint32_t> ssd_cursor(array.size(), 0);
  std::vector<std::byte> row(row_bytes_);
  for (std::size_t v = 0; v < n; ++v) {
    const BinBacking& bin = bins[static_cast<std::size_t>(bin_of_vertex[v])];
    Location& loc = locations_[v];
    loc.kind = bin.kind;
    loc.ssd = bin.ssd;
    const auto src = features.row(v);
    switch (bin.kind) {
      case BinBacking::Kind::kGpuCache:
        loc.index = gpu_cursor;
        std::copy(src.begin(), src.end(), gpu_cache_.row(gpu_cursor).begin());
        ++gpu_cursor;
        break;
      case BinBacking::Kind::kCpuCache:
        loc.index = cpu_cursor;
        std::copy(src.begin(), src.end(), cpu_cache_.row(cpu_cursor).begin());
        ++cpu_cursor;
        break;
      case BinBacking::Kind::kSsd: {
        const auto s = static_cast<std::size_t>(bin.ssd);
        loc.index = ssd_cursor[s];
        std::memset(row.data(), 0, row.size());
        std::memcpy(row.data(), src.data(), raw);
        array.ssd(s).write(static_cast<std::uint64_t>(loc.index) * row_bytes_,
                           row.data(), row.size());
        ++ssd_cursor[s];
        break;
      }
    }
  }
}

TieredFeatureClient::TieredFeatureClient(TieredFeatureStore& store,
                                         std::size_t queue_depth)
    : store_(store), engine_(store.array(), queue_depth) {}

void TieredFeatureClient::gather(std::span<const graph::VertexId> vertices,
                                 gnn::Tensor& out) {
  gather_wait(gather_begin(vertices, out));
}

gnn::FeatureProvider::GatherTicket TieredFeatureClient::gather_begin(
    std::span<const graph::VertexId> vertices, gnn::Tensor& out) {
  if (out.rows() != vertices.size() || out.cols() != store_.dim()) {
    throw std::invalid_argument("TieredFeatureClient::gather: shape mismatch");
  }
  Slot* slot = nullptr;
  for (Slot& s : slots_) {
    if (s.ticket == 0) {
      slot = &s;
      break;
    }
  }
  if (slot == nullptr) {
    throw std::logic_error(
        "TieredFeatureClient::gather_begin: more than two gathers in flight");
  }

  const std::size_t row_bytes = store_.row_bytes();
  slot->bounce.resize(vertices.size() * row_bytes);
  slot->pending.clear();
  scratch_reqs_.clear();

  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const auto& loc = store_.location(vertices[i]);
    switch (loc.kind) {
      case BinBacking::Kind::kGpuCache: {
        const auto src = store_.gpu_cache().row(loc.index);
        std::copy(src.begin(), src.end(), out.row(i).begin());
        ++stats_.gpu_hits;
        break;
      }
      case BinBacking::Kind::kCpuCache: {
        const auto src = store_.cpu_cache().row(loc.index);
        std::copy(src.begin(), src.end(), out.row(i).begin());
        ++stats_.cpu_hits;
        break;
      }
      case BinBacking::Kind::kSsd: {
        const std::size_t off = i * row_bytes;
        scratch_reqs_.push_back(
            {static_cast<std::size_t>(loc.ssd),
             static_cast<std::uint64_t>(loc.index) * row_bytes,
             static_cast<std::uint32_t>(row_bytes), slot->bounce.data() + off});
        slot->pending.push_back({i, off});
        ++stats_.ssd_reads;
        stats_.ssd_bytes += row_bytes;
        break;
      }
    }
  }

  if (scratch_reqs_.empty()) {
    return kSyncTicket;  // served entirely from the cache tiers
  }
  slot->group = engine_.group_begin();
  engine_.submit_batch(scratch_reqs_);
  engine_.group_end(slot->group);
  slot->out = &out;
  slot->ticket = next_ticket_++;
  return slot->ticket;
}

void TieredFeatureClient::gather_wait(GatherTicket ticket) {
  if (ticket == kSyncTicket) return;
  Slot* slot = nullptr;
  for (Slot& s : slots_) {
    if (s.ticket == ticket) {
      slot = &s;
      break;
    }
  }
  if (slot == nullptr) {
    throw std::logic_error("TieredFeatureClient::gather_wait: unknown ticket");
  }
  const std::size_t failures = engine_.wait_group(slot->group);
  if (failures != 0) {
    slot->ticket = 0;
    throw std::runtime_error("TieredFeatureClient: SSD read failures");
  }
  for (const PendingRow& p : slot->pending) {
    std::memcpy(slot->out->row(p.out_row).data(),
                slot->bounce.data() + p.bounce_off,
                store_.dim() * sizeof(float));
  }
  slot->ticket = 0;
}

}  // namespace moment::iostack
