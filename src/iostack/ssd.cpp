#include "iostack/ssd.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>

namespace moment::iostack {

SsdDevice::SsdDevice(const SsdOptions& options)
    : store_(options.capacity_bytes), options_(options) {}

SsdDevice::~SsdDevice() { stop(); }

QueuePair* SsdDevice::create_queue_pair(std::size_t depth) {
  if (running_.load()) {
    throw std::logic_error("SsdDevice: create_queue_pair while running");
  }
  queues_.push_back(std::make_unique<QueuePair>(depth));
  return queues_.back().get();
}

void SsdDevice::start() {
  if (running_.exchange(true)) return;
  stop_requested_.store(false);
  service_thread_ = std::thread([this] { service_loop(); });
}

void SsdDevice::stop() {
  if (!running_.load()) return;
  stop_requested_.store(true);
  if (service_thread_.joinable()) service_thread_.join();
  running_.store(false);
}

void SsdDevice::write(std::uint64_t offset, const std::byte* src,
                      std::size_t len) {
  if (offset + len > store_.size()) {
    throw std::out_of_range("SsdDevice::write: beyond capacity");
  }
  std::memcpy(store_.data() + offset, src, len);
}

SsdStats SsdDevice::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void SsdDevice::serve(const Sqe& sqe, QueuePair& qp) {
  Cqe cqe;
  cqe.tag = sqe.tag;
  if (sqe.dest == nullptr ||
      sqe.offset + sqe.length > store_.size()) {
    cqe.status = 1;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.errors;
  } else {
    std::memcpy(sqe.dest, store_.data() + sqe.offset, sqe.length);
    cqe.status = 0;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.reads;
    stats_.bytes_read += sqe.length;
  }
  // Completion queues are sized to the submission queue, so this can only
  // fail if the client stops polling; spin rather than drop the completion.
  while (!qp.complete(cqe)) {
    std::this_thread::yield();
  }
}

void SsdDevice::service_loop() {
  using clock = std::chrono::steady_clock;
  const bool paced = options_.max_bytes_per_s > 0.0;
  auto epoch = clock::now();
  double budget_bytes = 0.0;  // token bucket
  auto last_refill = epoch;

  while (!stop_requested_.load(std::memory_order_relaxed)) {
    bool served_any = false;
    for (auto& qp : queues_) {
      for (std::size_t k = 0; k < options_.max_batch; ++k) {
        if (paced && budget_bytes <= 0.0) break;
        Sqe sqe;
        if (!qp->fetch(sqe)) break;
        serve(sqe, *qp);
        served_any = true;
        if (paced) budget_bytes -= static_cast<double>(sqe.length);
      }
    }
    if (paced) {
      const auto now = clock::now();
      const double dt =
          std::chrono::duration<double>(now - last_refill).count();
      last_refill = now;
      budget_bytes += dt * options_.max_bytes_per_s;
      // Cap the bucket at ~10ms worth so bursts stay realistic.
      budget_bytes =
          std::min(budget_bytes, options_.max_bytes_per_s * 0.010);
    }
    if (!served_any) std::this_thread::yield();
  }

  // Drain outstanding requests so clients never hang on shutdown.
  for (auto& qp : queues_) {
    Sqe sqe;
    while (qp->fetch(sqe)) serve(sqe, *qp);
  }
}

SsdArray::SsdArray(std::size_t num_ssds, const SsdOptions& options) {
  ssds_.reserve(num_ssds);
  for (std::size_t i = 0; i < num_ssds; ++i) {
    ssds_.push_back(std::make_unique<SsdDevice>(options));
  }
}

SsdArray::~SsdArray() { stop_all(); }

void SsdArray::start_all() {
  for (auto& s : ssds_) s->start();
}

void SsdArray::stop_all() {
  for (auto& s : ssds_) s->stop();
}

IoEngine::IoEngine(SsdArray& array, std::size_t queue_depth) {
  queues_.reserve(array.size());
  for (std::size_t i = 0; i < array.size(); ++i) {
    queues_.push_back(array.ssd(i).create_queue_pair(queue_depth));
  }
}

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void IoEngine::drain_completions() {
  Cqe cqe;
  const std::uint64_t now = now_ns();
  for (auto* qp : queues_) {
    while (qp->poll_completion(cqe)) {
      --in_flight_;
      ++completed_;
      if (cqe.status != 0) ++failures_;
      for (CompletionGroup& g : groups_) {
        if (cqe.tag >= g.start_tag && cqe.tag < g.end_tag) {
          --g.outstanding;
          if (cqe.status != 0) ++g.failures;
          break;
        }
      }
      for (auto it = pending_times_.begin(); it != pending_times_.end();
           ++it) {
        if (it->first == cqe.tag) {
          const double lat = static_cast<double>(now - it->second);
          ++latency_count_;
          latency_sum_ns_ += lat;
          latency_max_ns_ = std::max(latency_max_ns_, lat);
          pending_times_.erase(it);
          break;
        }
      }
    }
  }
}

std::uint64_t IoEngine::submit_read(std::size_t ssd, std::uint64_t offset,
                                    std::uint32_t length, std::byte* dest) {
  if (ssd >= queues_.size()) {
    throw std::out_of_range("IoEngine::submit_read: ssd index");
  }
  Sqe sqe{offset, length, dest, next_tag_++};
  if (!groups_.empty() && groups_.back().end_tag == UINT64_MAX) {
    ++groups_.back().outstanding;
  }
  pending_times_.emplace_back(sqe.tag, now_ns());
  while (!queues_[ssd]->submit(sqe)) {
    // SQ full: make progress by draining completions (as a GPU thread would
    // spin on its CQ doorbell).
    drain_completions();
    std::this_thread::yield();
  }
  ++in_flight_;
  return sqe.tag;
}

void IoEngine::submit_batch(std::span<const ReadRequest> requests) {
  for (const ReadRequest& r : requests) {
    submit_read(r.ssd, r.offset, r.length, r.dest);
  }
}

std::size_t IoEngine::wait_all() {
  while (in_flight_ > 0) {
    const std::size_t before = in_flight_;
    drain_completions();
    if (in_flight_ == before) std::this_thread::yield();
  }
  const std::size_t f = failures_;
  failures_ = 0;
  return f;
}

std::uint64_t IoEngine::group_begin() {
  if (!groups_.empty() && groups_.back().end_tag == UINT64_MAX) {
    throw std::logic_error("IoEngine::group_begin: a group is already open");
  }
  CompletionGroup g;
  g.id = next_group_id_++;
  g.start_tag = next_tag_;
  groups_.push_back(g);
  return g.id;
}

void IoEngine::group_end(std::uint64_t group) {
  for (CompletionGroup& g : groups_) {
    if (g.id == group) {
      g.end_tag = next_tag_;
      return;
    }
  }
  throw std::logic_error("IoEngine::group_end: unknown group");
}

std::size_t IoEngine::wait_group(std::uint64_t group) {
  std::size_t idx = groups_.size();
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    if (groups_[i].id == group) {
      idx = i;
      break;
    }
  }
  if (idx == groups_.size()) {
    throw std::logic_error("IoEngine::wait_group: unknown group");
  }
  if (groups_[idx].end_tag == UINT64_MAX) group_end(group);
  while (groups_[idx].outstanding > 0) {
    const std::size_t before = groups_[idx].outstanding;
    drain_completions();
    if (groups_[idx].outstanding == before) std::this_thread::yield();
  }
  const std::size_t f = groups_[idx].failures;
  groups_.erase(groups_.begin() + static_cast<std::ptrdiff_t>(idx));
  return f;
}

LatencyStats IoEngine::latency() const noexcept {
  LatencyStats s;
  s.count = latency_count_;
  s.mean_ns = latency_count_ > 0
                  ? latency_sum_ns_ / static_cast<double>(latency_count_)
                  : 0.0;
  s.max_ns = latency_max_ns_;
  return s;
}

void IoEngine::reset_latency() noexcept {
  latency_count_ = 0;
  latency_sum_ns_ = 0.0;
  latency_max_ns_ = 0.0;
}

}  // namespace moment::iostack
