#include "iostack/ssd.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace moment::iostack {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

SsdDevice::SsdDevice(const SsdOptions& options)
    : store_(options.capacity_bytes), options_(options) {}

SsdDevice::~SsdDevice() { stop(); }

QueuePair* SsdDevice::create_queue_pair(std::size_t depth) {
  if (running_.load()) {
    throw std::logic_error("SsdDevice: create_queue_pair while running");
  }
  queues_.push_back(std::make_unique<QueuePair>(depth));
  return queues_.back().get();
}

FaultInjector* SsdDevice::inject_faults(const FaultProfile& profile) {
  if (running_.load()) {
    throw std::logic_error("SsdDevice: inject_faults while running");
  }
  injector_ = std::make_unique<FaultInjector>(profile);
  return injector_.get();
}

void SsdDevice::start() {
  if (running_.exchange(true)) return;
  stop_requested_.store(false);
  service_thread_ = std::thread([this] { service_loop(); });
}

void SsdDevice::stop() {
  if (!running_.load()) return;
  stop_requested_.store(true);
  if (service_thread_.joinable()) service_thread_.join();
  running_.store(false);
}

void SsdDevice::write(std::uint64_t offset, const std::byte* src,
                      std::size_t len) {
  if (offset + len > store_.size()) {
    throw std::out_of_range("SsdDevice::write: beyond capacity");
  }
  std::memcpy(store_.data() + offset, src, len);
}

SsdStats SsdDevice::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void SsdDevice::bounded_stall(std::uint32_t stall_us) {
  // Sleep in slices so a stalling device still honours stop() promptly.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::microseconds(stall_us);
  while (!stop_requested_.load(std::memory_order_relaxed) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(
        std::min<std::uint32_t>(stall_us, 100)));
  }
}

void SsdDevice::serve(const Sqe& sqe, QueuePair& qp) {
  Cqe cqe;
  cqe.tag = sqe.tag;
  std::uint32_t status = kStatusOk;
  if (injector_) {
    const FaultInjector::Decision d = injector_->on_read();
    if (d.stall_us > 0) bounded_stall(d.stall_us);
    status = d.status;
  }
  if (status == kStatusOk &&
      (sqe.dest == nullptr || sqe.offset + sqe.length > store_.size())) {
    status = kStatusReadError;
  }
  if (status == kStatusOk) {
    std::memcpy(sqe.dest, store_.data() + sqe.offset, sqe.length);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.reads;
    stats_.bytes_read += sqe.length;
  } else {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.errors;
  }
  cqe.status = status;
  // Completion queues are sized to the submission queue, so delivery can
  // only block if the client stops polling. The spin is bounded: it checks
  // the stop flag (a client that stopped polling must not wedge shutdown)
  // and eventually drops the completion rather than hanging the device.
  constexpr std::size_t kCompleteSpinLimit = 1 << 20;
  std::size_t spins = 0;
  while (!qp.complete(cqe)) {
    if (stop_requested_.load(std::memory_order_relaxed) ||
        ++spins > kCompleteSpinLimit) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.dropped_completions;
      return;
    }
    std::this_thread::yield();
  }
}

void SsdDevice::service_loop() {
  using clock = std::chrono::steady_clock;
  const bool paced = options_.max_bytes_per_s > 0.0;
  auto epoch = clock::now();
  double budget_bytes = 0.0;  // token bucket
  auto last_refill = epoch;

  while (!stop_requested_.load(std::memory_order_relaxed)) {
    bool served_any = false;
    for (auto& qp : queues_) {
      for (std::size_t k = 0; k < options_.max_batch; ++k) {
        if (paced && budget_bytes <= 0.0) break;
        Sqe sqe;
        if (!qp->fetch(sqe)) break;
        serve(sqe, *qp);
        served_any = true;
        if (paced) budget_bytes -= static_cast<double>(sqe.length);
      }
    }
    if (paced) {
      const auto now = clock::now();
      const double dt =
          std::chrono::duration<double>(now - last_refill).count();
      last_refill = now;
      budget_bytes += dt * options_.max_bytes_per_s;
      // Cap the bucket at ~10ms worth so bursts stay realistic.
      budget_bytes =
          std::min(budget_bytes, options_.max_bytes_per_s * 0.010);
    }
    if (!served_any) std::this_thread::yield();
  }

  // Drain outstanding requests so clients never hang on shutdown.
  for (auto& qp : queues_) {
    Sqe sqe;
    while (qp->fetch(sqe)) serve(sqe, *qp);
  }
}

SsdArray::SsdArray(std::size_t num_ssds, const SsdOptions& options,
                   const HealthOptions& health)
    : health_options_(health) {
  ssds_.reserve(num_ssds);
  states_.reserve(num_ssds);
  for (std::size_t i = 0; i < num_ssds; ++i) {
    ssds_.push_back(std::make_unique<SsdDevice>(options));
    states_.push_back(std::make_unique<DeviceState>());
  }
}

SsdArray::~SsdArray() { stop_all(); }

void SsdArray::start_all() {
  for (auto& s : ssds_) s->start();
}

void SsdArray::stop_all() {
  for (auto& s : ssds_) s->stop();
}

DeviceHealth SsdArray::health(std::size_t i) const noexcept {
  return static_cast<DeviceHealth>(
      states_[i]->health.load(std::memory_order_acquire));
}

void SsdArray::report_io_result(std::size_t i, bool ok) noexcept {
  DeviceState& st = *states_[i];
  if (ok) {
    st.consecutive_failures.store(0, std::memory_order_relaxed);
    int cur = st.health.load(std::memory_order_relaxed);
    if (cur == static_cast<int>(DeviceHealth::kDegraded)) {
      // Failed is sticky; only degraded recovers to healthy.
      st.health.compare_exchange_strong(
          cur, static_cast<int>(DeviceHealth::kHealthy),
          std::memory_order_release, std::memory_order_relaxed);
    }
    return;
  }
  const std::uint32_t streak =
      st.consecutive_failures.fetch_add(1, std::memory_order_relaxed) + 1;
  if (streak >= health_options_.failed_after) {
    mark_failed(i);
  } else if (streak >= health_options_.degraded_after) {
    int cur = st.health.load(std::memory_order_relaxed);
    if (cur == static_cast<int>(DeviceHealth::kHealthy)) {
      st.health.compare_exchange_strong(
          cur, static_cast<int>(DeviceHealth::kDegraded),
          std::memory_order_release, std::memory_order_relaxed);
    }
  }
}

void SsdArray::mark_failed(std::size_t i) noexcept {
  states_[i]->health.store(static_cast<int>(DeviceHealth::kFailed),
                           std::memory_order_release);
}

std::size_t SsdArray::num_degraded() const noexcept {
  std::size_t n = 0;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (health(i) == DeviceHealth::kDegraded) ++n;
  }
  return n;
}

std::size_t SsdArray::num_failed() const noexcept {
  std::size_t n = 0;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (health(i) == DeviceHealth::kFailed) ++n;
  }
  return n;
}

IoEngine::IoEngine(SsdArray& array, std::size_t queue_depth,
                   IoEngineOptions options)
    : array_(&array), options_(options) {
  queues_.reserve(array.size());
  for (std::size_t i = 0; i < array.size(); ++i) {
    queues_.push_back(array.ssd(i).create_queue_pair(queue_depth));
  }
}

bool IoEngine::device_failed(std::size_t ssd) const noexcept {
  return array_ != nullptr && array_->health(ssd) == DeviceHealth::kFailed;
}

std::uint64_t IoEngine::backoff_ns(std::uint32_t attempts) const noexcept {
  const auto base =
      static_cast<std::uint64_t>(options_.retry_backoff.count());
  const std::uint32_t shift = std::min(attempts > 0 ? attempts - 1 : 0u, 6u);
  return base << shift;
}

void IoEngine::finish_success(const Pending& p) {
  if (p.group_id != 0) {
    auto it = groups_.find(p.group_id);
    if (it != groups_.end()) --it->second.outstanding;
  }
}

void IoEngine::finish_failure(const Pending& p) {
  ++failures_;
  ++retry_stats_.permanent_failures;
  const FailedRead fr{p.ssd, p.offset, p.length, p.dest};
  if (p.group_id != 0) {
    auto it = groups_.find(p.group_id);
    if (it != groups_.end()) {
      --it->second.outstanding;
      ++it->second.failures;
      it->second.failed.push_back(fr);
      return;
    }
  }
  ungrouped_failed_.push_back(fr);
}

void IoEngine::handle_attempt_failure(Pending p, std::uint64_t now,
                                      bool timed_out) {
  if (timed_out) ++retry_stats_.timeouts;
  if (!device_failed(p.ssd) && p.attempts <= options_.max_retries) {
    ++retry_stats_.retries;
    RetryEntry e;
    e.not_before_ns = now + backoff_ns(p.attempts);
    e.req = p;
    ++e.req.attempts;
    retry_queue_.push_back(std::move(e));
    return;
  }
  finish_failure(p);
}

bool IoEngine::drain_completions() {
  Cqe cqe;
  bool progress = false;
  for (auto* qp : queues_) {
    while (qp->poll_completion(cqe)) {
      progress = true;
      const auto ab = abandoned_.find(cqe.tag);
      if (ab != abandoned_.end()) {
        // Late completion of a timed-out attempt: the retry (or failover)
        // owns the request now; the duplicate write carried the same bytes.
        abandoned_.erase(ab);
        continue;
      }
      const auto it = pending_.find(cqe.tag);
      if (it == pending_.end()) continue;  // dropped/stale tag
      const Pending p = it->second;
      pending_.erase(it);
      ++completed_;
      if (cqe.status == kStatusOk) {
        if (array_) array_->report_io_result(p.ssd, true);
        const double lat =
            static_cast<double>(now_ns() - p.first_submit_ns);
        ++latency_count_;
        latency_sum_ns_ += lat;
        latency_max_ns_ = std::max(latency_max_ns_, lat);
        finish_success(p);
      } else {
        if (array_) {
          if (cqe.status == kStatusDeviceFailed) {
            array_->mark_failed(p.ssd);
          } else {
            array_->report_io_result(p.ssd, false);
          }
        }
        handle_attempt_failure(p, now_ns(), /*timed_out=*/false);
      }
    }
  }
  return progress;
}

bool IoEngine::service_retries(std::uint64_t now) {
  bool progress = false;
  for (auto it = retry_queue_.begin(); it != retry_queue_.end();) {
    if (device_failed(it->req.ssd)) {
      finish_failure(it->req);
      it = retry_queue_.erase(it);
      progress = true;
      continue;
    }
    if (now < it->not_before_ns) {
      ++it;
      continue;
    }
    Pending p = it->req;
    p.deadline_ns =
        now + static_cast<std::uint64_t>(options_.request_deadline.count());
    const std::uint64_t tag = next_tag_++;
    if (queues_[p.ssd]->submit({p.offset, p.length, p.dest, tag})) {
      pending_.emplace(tag, p);
      it = retry_queue_.erase(it);
      progress = true;
    } else {
      ++it;  // SQ full; retried on the next pump
    }
  }
  return progress;
}

bool IoEngine::check_timeouts(std::uint64_t now) {
  // Rate-limited: the deadline scan is O(in-flight) and only needs to run
  // at timeout granularity, not per poll.
  if (now - last_timeout_scan_ns_ < 100'000) return false;
  last_timeout_scan_ns_ = now;
  bool progress = false;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (now <= it->second.deadline_ns) {
      ++it;
      continue;
    }
    const Pending p = it->second;
    abandoned_.emplace(it->first, p.ssd);
    it = pending_.erase(it);
    if (array_) array_->report_io_result(p.ssd, false);
    handle_attempt_failure(p, now, /*timed_out=*/true);
    progress = true;
  }
  // Abandoned attempts on a failed device will never complete; forget them.
  if (array_ != nullptr && !abandoned_.empty()) {
    for (auto it = abandoned_.begin(); it != abandoned_.end();) {
      it = device_failed(it->second) ? abandoned_.erase(it) : std::next(it);
    }
  }
  return progress;
}

bool IoEngine::pump() {
  bool progress = drain_completions();
  const std::uint64_t now = now_ns();
  progress |= service_retries(now);
  progress |= check_timeouts(now);
  return progress;
}

void IoEngine::force_fail(std::uint64_t group_id, bool all) {
  const std::uint64_t now = now_ns();
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (!all && it->second.group_id != group_id) {
      ++it;
      continue;
    }
    const Pending p = it->second;
    abandoned_.emplace(it->first, p.ssd);
    it = pending_.erase(it);
    ++retry_stats_.timeouts;
    if (array_) array_->report_io_result(p.ssd, false);
    finish_failure(p);
  }
  for (auto it = retry_queue_.begin(); it != retry_queue_.end();) {
    if (!all && it->req.group_id != group_id) {
      ++it;
      continue;
    }
    finish_failure(it->req);
    it = retry_queue_.erase(it);
  }
  last_timeout_scan_ns_ = now;
}

std::uint64_t IoEngine::submit_read(std::size_t ssd, std::uint64_t offset,
                                    std::uint32_t length, std::byte* dest) {
  if (ssd >= queues_.size()) {
    throw std::out_of_range("IoEngine::submit_read: ssd index");
  }
  if (length > kMaxTransferBytes) {
    throw std::invalid_argument(
        "IoEngine::submit_read: transfer size exceeds kMaxTransferBytes");
  }
  const std::uint64_t now = now_ns();
  Pending p;
  p.ssd = ssd;
  p.offset = offset;
  p.length = length;
  p.dest = dest;
  p.group_id = open_group_;
  p.first_submit_ns = now;
  p.deadline_ns =
      now + static_cast<std::uint64_t>(options_.request_deadline.count());
  if (open_group_ != 0) ++groups_.at(open_group_).outstanding;

  const std::uint64_t tag = next_tag_++;
  if (device_failed(ssd)) {
    // Known-dead device: fail fast without touching it.
    finish_failure(p);
    return tag;
  }
  const std::uint64_t spin_bound =
      now + static_cast<std::uint64_t>(options_.wait_deadline.count());
  while (!queues_[ssd]->submit({offset, length, dest, tag})) {
    // SQ full: make progress by draining completions (as a GPU thread would
    // spin on its CQ doorbell) and servicing retries/timeouts.
    pump();
    if (device_failed(ssd)) {
      finish_failure(p);
      return tag;
    }
    if (now_ns() > spin_bound) {
      ++retry_stats_.timeouts;
      if (array_) array_->report_io_result(ssd, false);
      finish_failure(p);
      return tag;
    }
    std::this_thread::yield();
  }
  pending_.emplace(tag, p);
  return tag;
}

void IoEngine::submit_batch(std::span<const ReadRequest> requests) {
  for (const ReadRequest& r : requests) {
    submit_read(r.ssd, r.offset, r.length, r.dest);
  }
}

std::size_t IoEngine::wait_all() {
  const std::uint64_t bound =
      now_ns() + static_cast<std::uint64_t>(options_.wait_deadline.count());
  while (!pending_.empty() || !retry_queue_.empty()) {
    if (!pump()) {
      if (now_ns() > bound) {
        force_fail(0, /*all=*/true);
        break;
      }
      std::this_thread::yield();
    }
  }
  const std::size_t f = failures_;
  failures_ = 0;
  ungrouped_failed_.clear();
  return f;
}

std::size_t IoEngine::wait_all(std::vector<FailedRead>& failed) {
  const std::uint64_t bound =
      now_ns() + static_cast<std::uint64_t>(options_.wait_deadline.count());
  while (!pending_.empty() || !retry_queue_.empty()) {
    if (!pump()) {
      if (now_ns() > bound) {
        force_fail(0, /*all=*/true);
        break;
      }
      std::this_thread::yield();
    }
  }
  failed.insert(failed.end(), ungrouped_failed_.begin(),
                ungrouped_failed_.end());
  ungrouped_failed_.clear();
  const std::size_t f = failures_;
  failures_ = 0;
  return f;
}

std::uint64_t IoEngine::group_begin() {
  if (open_group_ != 0) {
    throw std::logic_error("IoEngine::group_begin: a group is already open");
  }
  const std::uint64_t id = next_group_id_++;
  groups_.emplace(id, CompletionGroup{});
  open_group_ = id;
  return id;
}

void IoEngine::group_end(std::uint64_t group) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) {
    throw std::logic_error("IoEngine::group_end: unknown group");
  }
  it->second.open = false;
  if (open_group_ == group) open_group_ = 0;
}

std::size_t IoEngine::wait_group(std::uint64_t group) {
  std::vector<FailedRead> scratch;
  return wait_group(group, scratch);
}

std::size_t IoEngine::wait_group(std::uint64_t group,
                                 std::vector<FailedRead>& failed) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) {
    throw std::logic_error("IoEngine::wait_group: unknown group");
  }
  if (it->second.open) group_end(group);
  const std::uint64_t bound =
      now_ns() + static_cast<std::uint64_t>(options_.wait_deadline.count());
  while (it->second.outstanding > 0) {
    if (!pump()) {
      if (now_ns() > bound) {
        force_fail(group, /*all=*/false);
        break;
      }
      std::this_thread::yield();
    }
  }
  const std::size_t f = it->second.failures;
  failed.insert(failed.end(), it->second.failed.begin(),
                it->second.failed.end());
  groups_.erase(it);
  return f;
}

LatencyStats IoEngine::latency() const noexcept {
  LatencyStats s;
  s.count = latency_count_;
  s.mean_ns = latency_count_ > 0
                  ? latency_sum_ns_ / static_cast<double>(latency_count_)
                  : 0.0;
  s.max_ns = latency_max_ns_;
  return s;
}

void IoEngine::reset_latency() noexcept {
  latency_count_ = 0;
  latency_sum_ns_ = 0.0;
  latency_max_ns_ = 0.0;
}

}  // namespace moment::iostack
