#pragma once
// NVMe-style submission/completion queue pair. Lock-free SPSC rings with
// acquire/release doorbells, mirroring the structure of the paper's
// multi-GPU GPU-initiated IO stack: each GPU owns its queue pairs and drives
// SSD reads without any centralized coordinator (paper Section 3.1,
// "Multi-GPU Disk IO Stack").
//
// The host-side client plays the role of a GPU warp issuing commands; the
// SSD service thread plays the device controller.

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace moment::iostack {

/// Submission queue entry: a read request.
struct Sqe {
  std::uint64_t offset = 0;   // byte offset on the SSD
  std::uint32_t length = 0;   // bytes to read
  std::byte* dest = nullptr;  // destination ("application buffer")
  std::uint64_t tag = 0;      // completion correlation id
};

/// Completion queue entry.
struct Cqe {
  std::uint64_t tag = 0;
  std::uint32_t status = 0;  // 0 = success
};

/// Fixed-capacity single-producer single-consumer ring. The requested
/// capacity is rounded up to the next power of two (index math stays
/// branch-free), so e.g. a queue depth of 100 yields an effective 128.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : buffer_(std::bit_ceil(capacity == 0 ? std::size_t{64} : capacity)),
        mask_(buffer_.size() - 1) {}

  bool push(const T& item) noexcept {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= buffer_.size()) return false;  // full
    buffer_[head & mask_] = item;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  bool pop(T& out) noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return false;  // empty
    out = buffer_[tail & mask_];
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  std::size_t size() const noexcept {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }
  std::size_t capacity() const noexcept { return buffer_.size(); }

 private:
  std::vector<T> buffer_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

/// One SQ/CQ pair. The client pushes SQEs and pops CQEs; the device thread
/// does the reverse. `depth` is rounded up to a power of two; depth()
/// reports the effective (rounded) capacity.
class QueuePair {
 public:
  explicit QueuePair(std::size_t depth = 256) : sq_(depth), cq_(depth) {}

  // Client side.
  bool submit(const Sqe& sqe) noexcept { return sq_.push(sqe); }
  bool poll_completion(Cqe& cqe) noexcept { return cq_.pop(cqe); }

  // Device side.
  bool fetch(Sqe& sqe) noexcept { return sq_.pop(sqe); }
  bool complete(const Cqe& cqe) noexcept { return cq_.push(cqe); }

  std::size_t depth() const noexcept { return sq_.capacity(); }
  std::size_t sq_backlog() const noexcept { return sq_.size(); }

 private:
  SpscRing<Sqe> sq_;
  SpscRing<Cqe> cq_;
};

}  // namespace moment::iostack
