#pragma once
// Tiered feature store: vertex embeddings distributed across GPU cache, CPU
// cache and the SSD array according to a data placement (DDAK or hash), with
// gathers served through the GPU-initiated IO stack. This is the functional
// realisation of the paper's storage hierarchy — the piece that actually
// moves bytes, as opposed to the flow-level simulator that models time.
//
// Fault tolerance: the store keeps a host-side authoritative copy of every
// SSD-resident row. Reads that permanently fail (retries exhausted, device
// dead) are served from that copy — byte-identical to the device bytes, so
// training trajectories do not depend on fault timing. When a device hard-
// fails, its bins are re-placed onto surviving SSDs via the ddak failover
// planner; fresh slots are written and the vertex locations republished
// atomically, after which gathers hit the survivors at full speed again.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "comm/plan.hpp"
#include "gnn/features.hpp"
#include "iostack/row_cache.hpp"
#include "iostack/ssd.hpp"

namespace moment::iostack {

/// Where a data-placement bin physically lives.
struct BinBacking {
  enum class Kind { kGpuCache, kCpuCache, kSsd };
  Kind kind = Kind::kSsd;
  int ssd = -1;  // valid when kind == kSsd
  /// Owning GPU ordinal for kGpuCache bins. -1 (default) means the bin is
  /// replicated into every GPU's HBM (the historical behaviour); >= 0 means
  /// exactly that GPU holds the rows, and other GPUs' clients reach them via
  /// the peer-HBM path (comm plan route) or the host authoritative copy.
  int gpu = -1;
};

struct GatherStats {
  std::uint64_t gpu_hits = 0;
  std::uint64_t cpu_hits = 0;
  /// Feature rows fetched from the SSDs (post dedup and cache; with both
  /// disabled this equals the naive one-read-per-occurrence count).
  std::uint64_t ssd_reads = 0;
  std::uint64_t ssd_bytes = 0;
  /// Commands actually issued after run coalescing (<= ssd_reads).
  std::uint64_t ssd_commands = 0;
  /// Commands that carried two or more adjacent rows.
  std::uint64_t coalesced_commands = 0;
  /// SSD reads the naive path would have issued for duplicate vertices in a
  /// batch that in-batch dedup collapsed onto one read.
  std::uint64_t dedup_saved_reads = 0;
  /// Shared hot-row cache traffic, from this client's perspective.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Rows served from the host authoritative copy after permanent failures.
  std::uint64_t failovers = 0;
  /// Rows owned by another GPU's HBM served by a modeled P2P copy over the
  /// comm plan's route.
  std::uint64_t peer_hits = 0;
  /// Feature bytes those peer rows moved across the fabric (dim * 4 each).
  std::uint64_t peer_bytes = 0;
  /// Remote-owned HBM rows served from the host authoritative copy instead
  /// (peer path disabled or the GPU pair unroutable).
  std::uint64_t remote_hbm_host_reads = 0;
  /// Failed-device remaps this client triggered (store-wide remaps may be
  /// triggered by any client; each is counted once per store).
  std::uint64_t device_remaps = 0;

  /// Average rows per issued command (1.0 with coalescing off).
  double coalesce_rows_per_cmd() const noexcept {
    return ssd_commands > 0
               ? static_cast<double>(ssd_reads) /
                     static_cast<double>(ssd_commands)
               : 0.0;
  }
};

/// Per-client IO-reduction knobs for the gather path. Each stage composes on
/// the previous one and every combination returns byte-identical results —
/// the bench toggles them independently to attribute the command savings.
struct GatherOptions {
  /// Collapse duplicate vertices in a batch onto one SSD read (hub vertices
  /// appear many times in sampled blocks) and one cache-tier copy.
  bool dedup = true;
  /// Merge runs of adjacent SSD row indices into single multi-row commands.
  bool coalesce = true;
  /// Upper bound on one coalesced command (clamped to [row_bytes,
  /// kMaxTransferBytes]).
  std::size_t max_transfer_bytes = kMaxTransferBytes;
  /// Consult/fill the store's shared hot-row cache (no-op until the store
  /// enables one).
  bool use_cache = true;
};

/// Shared layout: writes SSD-resident rows to the devices (the one-off
/// "dataset reorganisation" the paper's SSD-wear discussion covers) and
/// keeps cache tiers in host tensors. Clients (one per simulated GPU) gather
/// through their own IoEngine.
class TieredFeatureStore {
 public:
  /// `bin_of_vertex[v]` indexes `bins`. All SSD rows are written before
  /// return; the array must not be started yet.
  TieredFeatureStore(const gnn::Tensor& features,
                     std::span<const std::int32_t> bin_of_vertex,
                     std::span<const BinBacking> bins, SsdArray& array);

  std::size_t dim() const noexcept { return dim_; }
  SsdArray& array() noexcept { return *array_; }
  const SsdArray& array() const noexcept { return *array_; }

  /// Bytes a single vertex row occupies on an SSD (padded to page size so
  /// reads are page-aligned like real NVMe access).
  std::size_t row_bytes() const noexcept { return row_bytes_; }

  struct Location {
    BinBacking::Kind kind;
    std::uint32_t index;  // cache row or SSD slot
    /// SSD ordinal for kSsd rows; for kGpuCache rows this is the owning GPU
    /// ordinal (-1 = replicated on every GPU).
    std::int32_t ssd;
  };
  /// Lock-free location lookup; safe against concurrent remaps (locations
  /// are packed into a single atomic word and republished with release).
  Location location(graph::VertexId v) const noexcept;

  const gnn::Tensor& gpu_cache() const noexcept { return gpu_cache_; }
  const gnn::Tensor& cpu_cache() const noexcept { return cpu_cache_; }

  /// The host authoritative row (raw floats, dim() wide). Valid for any
  /// vertex whose original placement was SSD (regardless of later remaps) or
  /// an owned GPU-HBM bin (the storage-path fallback for remote-owned rows).
  std::span<const float> authoritative_row(graph::VertexId v) const;

  /// Re-places every bin of `ssd` onto surviving devices: plans with
  /// ddak::plan_bin_failover, writes the rows to fresh slots, then publishes
  /// the new locations. Idempotent per device; thread-safe. Returns true if
  /// this call performed the remap (false = already done or nothing to do).
  /// Vertices that fit on no survivor keep pointing at the failed device and
  /// are served from the authoritative copy by clients.
  bool remap_failed_device(std::size_t ssd);

  /// Total failed-device remaps performed (telemetry).
  std::uint64_t device_remaps() const noexcept {
    return device_remaps_.load(std::memory_order_relaxed);
  }

  /// Enables the shared hot-row DRAM cache consulted by every client before
  /// it builds SSD requests. Call before gathering starts (clients hold a
  /// plain pointer). capacity_rows == 0 disables it again.
  void enable_row_cache(const RowCacheOptions& options);
  RowCache* row_cache() noexcept { return row_cache_.get(); }
  const RowCache* row_cache() const noexcept { return row_cache_.get(); }

  /// Seeds the cache from a hotness order (sampling::HotnessProfile::
  /// by_hotness_desc): walks `by_hotness_desc` and inserts the authoritative
  /// rows of SSD-resident vertices until the cache is full or the order is
  /// exhausted. Returns the number of rows seeded.
  std::size_t warm_row_cache(std::span<const graph::VertexId> by_hotness_desc);

 private:
  friend class TieredFeatureClient;

  static std::uint64_t pack(const Location& loc) noexcept;
  static Location unpack(std::uint64_t bits) noexcept;

  std::size_t dim_ = 0;
  std::size_t row_bytes_ = 0;
  /// Packed Location per vertex: bits 0..31 index, 32..47 ssd+1, 48..49 kind.
  std::vector<std::atomic<std::uint64_t>> loc_;
  gnn::Tensor gpu_cache_;  // replicated per GPU in the real system
  gnn::Tensor cpu_cache_;
  SsdArray* array_ = nullptr;

  /// Host authoritative copy of SSD-resident and owned-GPU-HBM rows, and the
  /// (stable) row index of each such vertex in it; -1 for vertices that need
  /// no host copy (CPU-cache rows, replicated HBM rows).
  gnn::Tensor host_copy_;
  std::vector<std::int64_t> host_index_;

  /// Placement snapshot for the failover planner.
  std::vector<BinBacking> bins_;
  std::vector<std::int32_t> bin_of_vertex_;

  /// Failover state: next free slot per SSD and per-device remap flags.
  std::mutex remap_mu_;
  std::vector<std::uint32_t> ssd_next_slot_;
  std::vector<bool> device_remapped_;
  std::atomic<std::uint64_t> device_remaps_{0};

  /// Shared hot-row cache (nullptr until enabled). Invalidated wholesale by
  /// remap_failed_device so post-failover gathers never mix cache decisions
  /// made against the old placement.
  std::unique_ptr<RowCache> row_cache_;
};

/// Wires a gather client into the comm layer's peer-HBM path: rows whose bin
/// is owned by another GPU (BinBacking::gpu >= 0) are served by a modeled
/// P2P copy over the plan's route — per-link bytes charged to `counters` —
/// instead of the host/SSD round-trip. With no plan (the default), remote-
/// owned rows fall back to the host authoritative copy (the storage path).
struct PeerConfig {
  /// This client's GPU ordinal (compared against BinBacking::gpu).
  int gpu = 0;
  /// Compiled comm plan providing peer routes; null disables the peer path.
  /// Not owned; must outlive the client.
  const comm::CommPlan* plan = nullptr;
  /// Optional per-link byte counters, shared with the engine's all-reduce
  /// accounting. Not owned.
  comm::LinkCounters* counters = nullptr;
};

/// Per-GPU gather client. Implements gnn::FeatureProvider so the trainer can
/// run end-to-end through the IO stack. The async gather_begin/gather_wait
/// protocol serves cache tiers immediately, then runs the IO-reduction
/// pipeline on the SSD-resident remainder — in-batch dedup (one read per
/// unique row), shared hot-row cache lookup, and run coalescing (adjacent
/// rows merged into multi-row commands) — submits the surviving commands as
/// one completion group, and scatters/replicates the bounce-buffered rows at
/// wait time. Two staging slots allow two batches in flight (pipelined
/// prefetch). Every GatherOptions combination is byte-identical; only the
/// command count changes.
///
/// Failures are recovered, not thrown: a read that permanently fails is
/// served from the store's authoritative copy (same bytes), and a hard
/// device failure triggers the store's remap. gather_wait only throws on
/// protocol misuse, never on IO faults.
class TieredFeatureClient final : public gnn::FeatureProvider {
 public:
  explicit TieredFeatureClient(TieredFeatureStore& store,
                               std::size_t queue_depth = 256,
                               IoEngineOptions io_options = {},
                               GatherOptions gather_options = {},
                               PeerConfig peer = {});

  std::size_t dim() const override { return store_.dim(); }
  void gather(std::span<const graph::VertexId> vertices,
              gnn::Tensor& out) override;
  GatherTicket gather_begin(std::span<const graph::VertexId> vertices,
                            gnn::Tensor& out) override;
  void gather_wait(GatherTicket ticket) override;

  IoResilience io_resilience() const override;

  const GatherStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }
  const IoEngine& engine() const noexcept { return engine_; }
  const GatherOptions& gather_options() const noexcept {
    return gather_options_;
  }
  const PeerConfig& peer_config() const noexcept { return peer_; }

 private:
  /// One unique SSD row in flight: where its bytes land in the bounce
  /// buffer, which output row receives the first copy, and which coalesced
  /// command carries it.
  struct PendingRow {
    std::size_t out_row;
    std::size_t bounce_off;
    graph::VertexId vertex;
    std::uint32_t run;
  };
  /// One coalesced command (a run of adjacent rows on one SSD). Failure is
  /// per command: if it permanently fails, every row it carried is served
  /// from the host copy.
  struct Run {
    std::size_t bounce_off;
    std::uint32_t rows;
    bool failed;
  };
  /// A duplicate occurrence whose source row is still in flight at
  /// gather_begin time; replicated out-of-buffer at wait time.
  struct DupRow {
    std::uint32_t out_row;
    std::uint32_t src_row;
  };
  /// A unique SSD target before coalescing.
  struct SsdTarget {
    std::uint32_t ssd;
    std::uint32_t index;
    graph::VertexId vertex;
    std::uint32_t out_row;
  };
  /// One in-flight gather: its SSD completion group, the rows to scatter,
  /// and a dedicated bounce buffer (per-slot, so prefetch never overwrites
  /// the batch still being awaited).
  struct Slot {
    std::uint64_t ticket = 0;  // 0 = free
    std::uint64_t group = 0;
    gnn::Tensor* out = nullptr;
    std::vector<PendingRow> pending;
    std::vector<Run> runs;
    std::vector<DupRow> dups;
    std::vector<std::byte> bounce;  // page-aligned staging for SSD reads
  };

  void serve_from_host(graph::VertexId v, gnn::Tensor& out,
                       std::size_t out_row);
  void reset_slot(Slot& slot) noexcept;

  TieredFeatureStore& store_;
  IoEngine engine_;
  GatherOptions gather_options_;
  PeerConfig peer_;
  GatherStats stats_;
  Slot slots_[2];
  std::uint64_t next_ticket_ = 1;
  std::vector<ReadRequest> scratch_reqs_;
  std::vector<FailedRead> scratch_failed_;
  std::vector<SsdTarget> scratch_targets_;
  /// Per-batch device-health snapshot: one atomic load per device per
  /// gather instead of one per vertex.
  std::vector<DeviceHealth> scratch_health_;
  /// First occurrence of each vertex in the current batch; value is the
  /// output row, with bit 31 set while the row is still in flight.
  std::unordered_map<graph::VertexId, std::uint32_t> scratch_first_;
};

}  // namespace moment::iostack
