#pragma once
// Tiered feature store: vertex embeddings distributed across GPU cache, CPU
// cache and the SSD array according to a data placement (DDAK or hash), with
// gathers served through the GPU-initiated IO stack. This is the functional
// realisation of the paper's storage hierarchy — the piece that actually
// moves bytes, as opposed to the flow-level simulator that models time.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "gnn/features.hpp"
#include "iostack/ssd.hpp"

namespace moment::iostack {

/// Where a data-placement bin physically lives.
struct BinBacking {
  enum class Kind { kGpuCache, kCpuCache, kSsd };
  Kind kind = Kind::kSsd;
  int ssd = -1;  // valid when kind == kSsd
};

struct GatherStats {
  std::uint64_t gpu_hits = 0;
  std::uint64_t cpu_hits = 0;
  std::uint64_t ssd_reads = 0;
  std::uint64_t ssd_bytes = 0;
};

/// Shared layout: writes SSD-resident rows to the devices (the one-off
/// "dataset reorganisation" the paper's SSD-wear discussion covers) and
/// keeps cache tiers in host tensors. Clients (one per simulated GPU) gather
/// through their own IoEngine.
class TieredFeatureStore {
 public:
  /// `bin_of_vertex[v]` indexes `bins`. All SSD rows are written before
  /// return; the array must not be started yet.
  TieredFeatureStore(const gnn::Tensor& features,
                     std::span<const std::int32_t> bin_of_vertex,
                     std::span<const BinBacking> bins, SsdArray& array);

  std::size_t dim() const noexcept { return dim_; }
  SsdArray& array() noexcept { return *array_; }

  /// Bytes a single vertex row occupies on an SSD (padded to page size so
  /// reads are page-aligned like real NVMe access).
  std::size_t row_bytes() const noexcept { return row_bytes_; }

  struct Location {
    BinBacking::Kind kind;
    std::uint32_t index;  // cache row or SSD slot
    std::int32_t ssd;
  };
  const Location& location(graph::VertexId v) const { return locations_[v]; }

  const gnn::Tensor& gpu_cache() const noexcept { return gpu_cache_; }
  const gnn::Tensor& cpu_cache() const noexcept { return cpu_cache_; }

 private:
  friend class TieredFeatureClient;
  std::size_t dim_ = 0;
  std::size_t row_bytes_ = 0;
  std::vector<Location> locations_;
  gnn::Tensor gpu_cache_;  // replicated per GPU in the real system
  gnn::Tensor cpu_cache_;
  SsdArray* array_ = nullptr;
};

/// Per-GPU gather client. Implements gnn::FeatureProvider so the trainer can
/// run end-to-end through the IO stack. The async gather_begin/gather_wait
/// protocol serves cache tiers immediately, submits SSD reads as one
/// completion group, and scatters the bounce-buffered rows at wait time.
/// Two staging slots allow two batches in flight (pipelined prefetch).
class TieredFeatureClient final : public gnn::FeatureProvider {
 public:
  explicit TieredFeatureClient(TieredFeatureStore& store,
                               std::size_t queue_depth = 256);

  std::size_t dim() const override { return store_.dim(); }
  void gather(std::span<const graph::VertexId> vertices,
              gnn::Tensor& out) override;
  GatherTicket gather_begin(std::span<const graph::VertexId> vertices,
                            gnn::Tensor& out) override;
  void gather_wait(GatherTicket ticket) override;

  const GatherStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

 private:
  struct PendingRow {
    std::size_t out_row;
    std::size_t bounce_off;
  };
  /// One in-flight gather: its SSD completion group, the rows to scatter,
  /// and a dedicated bounce buffer (per-slot, so prefetch never overwrites
  /// the batch still being awaited).
  struct Slot {
    std::uint64_t ticket = 0;  // 0 = free
    std::uint64_t group = 0;
    gnn::Tensor* out = nullptr;
    std::vector<PendingRow> pending;
    std::vector<std::byte> bounce;  // page-aligned staging for SSD reads
  };

  TieredFeatureStore& store_;
  IoEngine engine_;
  GatherStats stats_;
  Slot slots_[2];
  std::uint64_t next_ticket_ = 1;
  std::vector<ReadRequest> scratch_reqs_;
};

}  // namespace moment::iostack
