#pragma once
// Deterministic, seeded fault injection for the emulated NVMe devices.
// A FaultInjector is consulted by SsdDevice::serve once per request, in serve
// order, and decides whether the read suffers a transient error, a latency
// spike, or hits a hard device failure (scheduled after a fixed number of
// reads, or triggered externally via fail_now()). Seeding makes chaos
// scenarios reproducible: the same profile and serve sequence produce the
// same fault sequence.
//
// Fault outcomes never corrupt data — a faulted read either returns a
// non-zero CQE status (no bytes copied) or is merely delayed — so the
// client-side retry/failover machinery can always recover the exact bytes.

#include <atomic>
#include <cstdint>
#include <mutex>

#include "util/rng.hpp"

namespace moment::iostack {

/// CQE status codes used by the emulated devices.
inline constexpr std::uint32_t kStatusOk = 0;
/// Transient media error (or an invalid request): the read failed but the
/// device is still serving; a retry may succeed.
inline constexpr std::uint32_t kStatusReadError = 1;
/// The device has hard-failed; every request fails until the end of time.
inline constexpr std::uint32_t kStatusDeviceFailed = 2;

struct FaultProfile {
  /// Probability a served read returns kStatusReadError (transient).
  double read_error_prob = 0.0;
  /// Deterministic error burst: the first N served reads fail regardless of
  /// read_error_prob (for reproducible retry-then-succeed tests).
  std::uint64_t error_burst_reads = 0;
  /// Probability a served read stalls for stall_us before completing.
  double stall_prob = 0.0;
  std::uint32_t stall_us = 0;
  /// Hard device failure after this many served reads (UINT64_MAX = never).
  std::uint64_t fail_after_reads = UINT64_MAX;
  std::uint64_t seed = 0x5eedf001;
};

struct FaultStats {
  std::uint64_t injected_errors = 0;
  std::uint64_t injected_stalls = 0;
  std::uint64_t reads_seen = 0;
  bool device_failed = false;
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultProfile& profile);

  struct Decision {
    std::uint32_t status = kStatusOk;
    std::uint32_t stall_us = 0;
  };

  /// One decision per served request; called by the device service thread.
  Decision on_read();

  /// Hard-fails the device immediately (callable from any thread).
  void fail_now() noexcept { failed_.store(true, std::memory_order_relaxed); }
  bool failed() const noexcept {
    return failed_.load(std::memory_order_relaxed);
  }

  FaultStats stats() const;
  const FaultProfile& profile() const noexcept { return profile_; }

 private:
  FaultProfile profile_;
  std::atomic<bool> failed_{false};
  mutable std::mutex mu_;  // guards rng_ and stats_ (stats read cross-thread)
  util::Pcg32 rng_;
  FaultStats stats_;
};

}  // namespace moment::iostack
