#include "iostack/fault_injector.hpp"

namespace moment::iostack {

FaultInjector::FaultInjector(const FaultProfile& profile)
    : profile_(profile), rng_(profile.seed, 0xfa017) {}

FaultInjector::Decision FaultInjector::on_read() {
  Decision d;
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t ordinal = stats_.reads_seen++;
  if (!failed_.load(std::memory_order_relaxed) &&
      ordinal >= profile_.fail_after_reads) {
    failed_.store(true, std::memory_order_relaxed);
  }
  if (failed_.load(std::memory_order_relaxed)) {
    stats_.device_failed = true;
    d.status = kStatusDeviceFailed;
    return d;
  }
  if (profile_.stall_prob > 0.0 && profile_.stall_us > 0 &&
      rng_.next_double() < profile_.stall_prob) {
    ++stats_.injected_stalls;
    d.stall_us = profile_.stall_us;
  }
  if (ordinal < profile_.error_burst_reads ||
      (profile_.read_error_prob > 0.0 &&
       rng_.next_double() < profile_.read_error_prob)) {
    ++stats_.injected_errors;
    d.status = kStatusReadError;
  }
  return d;
}

FaultStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  FaultStats s = stats_;
  s.device_failed = failed_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace moment::iostack
