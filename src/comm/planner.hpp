#pragma once
// Compiles CommPlans from a concrete machine topology.
//
// The planner is the bridge from placement-time modelling to runtime
// execution: it reuses the Fig. 9 flow graph + Dinic to bound every ordered
// GPU pair's bandwidth (src HBM -> dst compute), finds concrete
// widest-shortest routes over the physical link graph (direct NVLink wins
// by hop count), and emits bandwidth-aware all-reduce schedules:
//   - ring: cycle order chosen by brute-force bottleneck maximisation over
//     the pairwise max-flow matrix (GPU0 anchored; (N-1)! <= 5040 for N<=8),
//     chunk shares sized from hop bandwidths (see DESIGN.md §5f),
//   - tree: recursive halving/doubling over the ring order (power-of-two N),
//   - flat: the historical hub-and-spoke baseline, expressed as a plan so
//     its link traffic is accountable through the same machinery,
//   - auto: lowest predicted contention-costed time among the candidates.
//
// Compilation is deterministic: identical topologies yield identical plans.

#include <vector>

#include "comm/plan.hpp"
#include "topology/device.hpp"

namespace moment::comm {

class CommPlanner {
 public:
  /// Payload used to rank candidate algorithms under kAuto; comm-phase
  /// ratios are payload-invariant for fixed N, so any realistic gradient
  /// size ranks identically.
  static constexpr double kDefaultReferencePayload = 64.0 * 1024.0 * 1024.0;

  /// Compiles the pairwise bandwidth matrix from `topo`. The topology must
  /// outlive the planner.
  explicit CommPlanner(const topology::Topology& topo);

  int num_gpus() const noexcept { return static_cast<int>(gpu_devices_.size()); }

  /// Max-flow bandwidth bound (bytes/s) from `src`'s HBM to `dst`'s compute
  /// node; 0 on the diagonal.
  double pair_bandwidth(int src, int dst) const {
    return pair_bw_[static_cast<std::size_t>(src) * gpu_devices_.size() +
                    static_cast<std::size_t>(dst)];
  }

  CommPlan plan(AllReduceAlgo algo = AllReduceAlgo::kAuto,
                double reference_payload_bytes = kDefaultReferencePayload) const;

 private:
  PeerRoute find_route(int src, int dst) const;
  void fill_routes(CommPlan& plan) const;
  std::vector<int> best_ring_order() const;
  CommPlan flat_plan() const;
  CommPlan ring_plan() const;
  CommPlan tree_plan() const;

  const topology::Topology* topo_;
  std::vector<topology::DeviceId> gpu_devices_;
  std::vector<double> pair_bw_;  // row-major num_gpus x num_gpus
};

}  // namespace moment::comm
