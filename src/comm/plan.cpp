#include "comm/plan.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace moment::comm {

const char* to_string(AllReduceAlgo algo) noexcept {
  switch (algo) {
    case AllReduceAlgo::kFlat: return "flat";
    case AllReduceAlgo::kRing: return "ring";
    case AllReduceAlgo::kTree: return "tree";
    case AllReduceAlgo::kAuto: return "auto";
  }
  return "?";
}

AllReduceAlgo parse_algo(const std::string& text) {
  if (text == "flat") return AllReduceAlgo::kFlat;
  if (text == "ring") return AllReduceAlgo::kRing;
  if (text == "tree") return AllReduceAlgo::kTree;
  if (text == "auto") return AllReduceAlgo::kAuto;
  throw std::invalid_argument("comm: unknown all-reduce algorithm '" + text +
                              "' (expected flat|ring|tree|auto)");
}

double PeerRoute::bottleneck_bw() const noexcept {
  double bw = links.empty() ? 0.0 : links.front().capacity;
  for (const RouteLink& rl : links) bw = std::min(bw, rl.capacity);
  return bw;
}

std::vector<std::uint64_t> LinkCounters::snapshot() const {
  std::vector<std::uint64_t> out(counters_.size() * 2);
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    out[2 * i] = counters_[i].ab.load(std::memory_order_relaxed);
    out[2 * i + 1] = counters_[i].ba.load(std::memory_order_relaxed);
  }
  return out;
}

void LinkCounters::reset() noexcept {
  for (auto& slot : counters_) {
    slot.ab.store(0, std::memory_order_relaxed);
    slot.ba.store(0, std::memory_order_relaxed);
  }
}

const PeerRoute* CommPlan::peer_route(int src_gpu, int dst_gpu) const noexcept {
  if (src_gpu < 0 || dst_gpu < 0 || src_gpu >= num_gpus ||
      dst_gpu >= num_gpus || src_gpu == dst_gpu) {
    return nullptr;
  }
  const int r = route_of[static_cast<std::size_t>(src_gpu) *
                             static_cast<std::size_t>(num_gpus) +
                         static_cast<std::size_t>(dst_gpu)];
  return r < 0 ? nullptr : &routes[static_cast<std::size_t>(r)];
}

namespace {

/// Maps each plan link to a dense slot so per-step loads can be accumulated
/// in a flat array: slot 2*i is the a->b direction of links[i].
std::vector<int> link_slot_index(const CommPlan& plan) {
  std::vector<int> slot(plan.num_links, -1);
  for (std::size_t i = 0; i < plan.links.size(); ++i) {
    slot[static_cast<std::size_t>(plan.links[i].link)] = static_cast<int>(i);
  }
  return slot;
}

}  // namespace

double CommPlan::predicted_seconds(double payload_bytes) const {
  if (payload_bytes <= 0.0 || steps.empty()) return 0.0;
  const std::vector<int> slot = link_slot_index(*this);
  std::vector<double> load(links.size() * 2);
  double total = 0.0;
  for (const Step& step : steps) {
    std::fill(load.begin(), load.end(), 0.0);
    for (const Transfer& t : step.transfers) {
      const double bytes = t.fraction * payload_bytes;
      for (const RouteLink& rl : routes[static_cast<std::size_t>(t.route)].links) {
        const int i = slot[static_cast<std::size_t>(rl.link)];
        load[static_cast<std::size_t>(2 * i + (rl.forward ? 0 : 1))] += bytes;
      }
    }
    double step_s = 0.0;
    for (std::size_t i = 0; i < links.size(); ++i) {
      const double cap_ab = links[i].cap_ab;
      const double cap_ba = links[i].cap_ba;
      if (load[2 * i] > 0.0 && cap_ab > 0.0) {
        step_s = std::max(step_s, load[2 * i] / cap_ab);
      }
      if (load[2 * i + 1] > 0.0 && cap_ba > 0.0) {
        step_s = std::max(step_s, load[2 * i + 1] / cap_ba);
      }
    }
    total += step_s;
  }
  return total;
}

std::vector<LinkVolume> CommPlan::link_volume(double payload_bytes) const {
  const std::vector<int> slot = link_slot_index(*this);
  std::vector<LinkVolume> out(links.size());
  for (std::size_t i = 0; i < links.size(); ++i) out[i].link = links[i].link;
  for (const Step& step : steps) {
    for (const Transfer& t : step.transfers) {
      const auto bytes = static_cast<std::uint64_t>(
          std::llround(t.fraction * payload_bytes));
      for (const RouteLink& rl : routes[static_cast<std::size_t>(t.route)].links) {
        auto& lv = out[static_cast<std::size_t>(
            slot[static_cast<std::size_t>(rl.link)])];
        (rl.forward ? lv.ab : lv.ba) += bytes;
      }
    }
  }
  return out;
}

void CommPlan::account(double payload_bytes, LinkCounters& counters) const {
  for (const Step& step : steps) {
    for (const Transfer& t : step.transfers) {
      const auto bytes = static_cast<std::uint64_t>(
          std::llround(t.fraction * payload_bytes));
      if (bytes == 0) continue;
      for (const RouteLink& rl : routes[static_cast<std::size_t>(t.route)].links) {
        counters.add(rl.link, rl.forward, bytes);
      }
    }
  }
}

double CommPlan::schedule_payload_bytes(double payload_bytes) const {
  double total = 0.0;
  for (const Step& step : steps) {
    for (const Transfer& t : step.transfers) {
      total += static_cast<double>(static_cast<std::uint64_t>(
          std::llround(t.fraction * payload_bytes)));
    }
  }
  return total;
}

std::string CommPlan::to_string() const {
  std::ostringstream os;
  os << "CommPlan{" << comm::to_string(algo) << ", gpus=" << num_gpus
     << ", order=[";
  for (std::size_t i = 0; i < ring_order.size(); ++i) {
    os << (i ? " " : "") << ring_order[i];
  }
  os << "], share=[";
  for (std::size_t i = 0; i < chunk_share.size(); ++i) {
    os << (i ? " " : "");
    os.precision(3);
    os << chunk_share[i];
  }
  os << "], steps=" << steps.size() << "}\n";
  for (std::size_t s = 0; s < steps.size(); ++s) {
    os << "  step " << s << ":";
    for (const Transfer& t : steps[s].transfers) {
      os << " " << t.src_gpu << "->" << t.dst_gpu << " x" << t.fraction;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace moment::comm
