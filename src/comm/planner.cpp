#include "comm/planner.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "maxflow/dinic.hpp"
#include "topology/flow_graph.hpp"

namespace moment::comm {

namespace {

constexpr double kEps = 1e-9;

bool routable_through(topology::DeviceKind kind) noexcept {
  return kind == topology::DeviceKind::kPcieSwitch ||
         kind == topology::DeviceKind::kRootComplex;
}

}  // namespace

CommPlanner::CommPlanner(const topology::Topology& topo) : topo_(&topo) {
  gpu_devices_ = topo.devices_of_kind(topology::DeviceKind::kGpu);
  const std::size_t n = gpu_devices_.size();
  pair_bw_.assign(n * n, 0.0);
  if (n < 2) return;
  // One flow graph, re-solved per ordered pair with flows reset in between.
  // The virtual source has no in-edges and every compute node only feeds the
  // sink, so solving HBM_i -> comp_j isolates exactly the inter-GPU fabric
  // (slot links, switches, QPI, NVLink bridges).
  topology::FlowGraph fg = topology::compile_flow_graph(topo);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      fg.net.reset_flows();
      const auto result = maxflow::Dinic::solve(fg.net, fg.gpus[i].mem_node,
                                                fg.gpus[j].comp_node);
      pair_bw_[i * n + j] = result.total_flow;
    }
  }
}

PeerRoute CommPlanner::find_route(int src, int dst) const {
  PeerRoute route;
  route.src_gpu = src;
  route.dst_gpu = dst;
  route.max_flow_bw = pair_bandwidth(src, dst);
  if (src == dst) return route;

  const topology::Topology& topo = *topo_;
  const auto start = gpu_devices_[static_cast<std::size_t>(src)];
  const auto goal = gpu_devices_[static_cast<std::size_t>(dst)];

  // Widest-shortest BFS: minimise hop count first, then maximise the
  // bottleneck capacity among equal-hop paths. Widths are final when a node
  // is popped because all predecessors at the previous level were processed
  // first; ties break on smaller link id for determinism.
  const std::size_t nd = topo.num_devices();
  std::vector<int> dist(nd, -1);
  std::vector<double> width(nd, 0.0);
  std::vector<topology::LinkId> via_link(nd, -1);
  std::vector<topology::DeviceId> via_dev(nd, -1);
  std::vector<topology::DeviceId> queue;
  queue.reserve(nd);
  dist[static_cast<std::size_t>(start)] = 0;
  width[static_cast<std::size_t>(start)] =
      std::numeric_limits<double>::infinity();
  queue.push_back(start);
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const topology::DeviceId u = queue[qi];
    if (u == goal) continue;  // expand only through routable devices
    if (u != start && !routable_through(topo.device(u).kind)) continue;
    for (topology::LinkId lid : topo.incident(u)) {
      const topology::Link& l = topo.link(lid);
      const bool fwd = l.a == u;
      const topology::DeviceId v = fwd ? l.b : l.a;
      const double cap = fwd ? l.bw_ab : l.bw_ba;
      if (cap <= 0.0) continue;
      const auto& vk = topo.device(v).kind;
      if (v != goal && !routable_through(vk)) continue;
      const double w =
          std::min(width[static_cast<std::size_t>(u)], cap);
      auto& dv = dist[static_cast<std::size_t>(v)];
      if (dv < 0) {
        dv = dist[static_cast<std::size_t>(u)] + 1;
        width[static_cast<std::size_t>(v)] = w;
        via_link[static_cast<std::size_t>(v)] = lid;
        via_dev[static_cast<std::size_t>(v)] = u;
        queue.push_back(v);
      } else if (dv == dist[static_cast<std::size_t>(u)] + 1 &&
                 w > width[static_cast<std::size_t>(v)] + kEps) {
        width[static_cast<std::size_t>(v)] = w;
        via_link[static_cast<std::size_t>(v)] = lid;
        via_dev[static_cast<std::size_t>(v)] = u;
      }
    }
  }
  if (dist[static_cast<std::size_t>(goal)] < 0) return route;  // unroutable
  std::vector<RouteLink> rev;
  for (topology::DeviceId v = goal; v != start;
       v = via_dev[static_cast<std::size_t>(v)]) {
    const topology::LinkId lid = via_link[static_cast<std::size_t>(v)];
    const topology::Link& l = topo.link(lid);
    const bool fwd = l.b == v;  // entered v over the a->b direction
    rev.push_back({lid, fwd, fwd ? l.bw_ab : l.bw_ba});
  }
  route.links.assign(rev.rbegin(), rev.rend());
  return route;
}

void CommPlanner::fill_routes(CommPlan& plan) const {
  const int n = num_gpus();
  plan.num_gpus = n;
  plan.num_links = topo_->num_links();
  plan.route_of.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                       -1);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      PeerRoute r = find_route(i, j);
      if (!r.valid()) continue;
      plan.route_of[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
                    static_cast<std::size_t>(j)] =
          static_cast<int>(plan.routes.size());
      plan.routes.push_back(std::move(r));
    }
  }
  // Link metadata for every link any route touches, ordered by link id.
  std::vector<char> used(plan.num_links, 0);
  for (const PeerRoute& r : plan.routes) {
    for (const RouteLink& rl : r.links) {
      used[static_cast<std::size_t>(rl.link)] = 1;
    }
  }
  for (std::size_t lid = 0; lid < plan.num_links; ++lid) {
    if (!used[lid]) continue;
    const topology::Link& l = topo_->link(static_cast<topology::LinkId>(lid));
    plan.links.push_back({static_cast<topology::LinkId>(lid), l.label, l.kind,
                          l.bw_ab, l.bw_ba});
  }
}

std::vector<int> CommPlanner::best_ring_order() const {
  const int n = num_gpus();
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  if (n <= 2) return order;

  const auto score = [&](const std::vector<int>& o, double* sum_out) {
    double bottleneck = std::numeric_limits<double>::infinity();
    double sum = 0.0;
    for (int p = 0; p < n; ++p) {
      const double bw =
          pair_bandwidth(o[static_cast<std::size_t>(p)],
                         o[static_cast<std::size_t>((p + 1) % n)]);
      bottleneck = std::min(bottleneck, bw);
      sum += bw;
    }
    *sum_out = sum;
    return bottleneck;
  };

  // GPU0 anchored; permutations enumerated in lexicographic order so the
  // first permutation achieving the best (bottleneck, sum) wins — plans are
  // a deterministic function of the bandwidth matrix.
  std::vector<int> tail(static_cast<std::size_t>(n - 1));
  std::iota(tail.begin(), tail.end(), 1);
  std::vector<int> best = order;
  double best_sum = 0.0;
  double best_bottleneck = score(best, &best_sum);
  std::vector<int> cand(static_cast<std::size_t>(n));
  cand[0] = 0;
  while (std::next_permutation(tail.begin(), tail.end())) {
    std::copy(tail.begin(), tail.end(), cand.begin() + 1);
    double sum = 0.0;
    const double bottleneck = score(cand, &sum);
    if (bottleneck > best_bottleneck + kEps ||
        (bottleneck > best_bottleneck - kEps && sum > best_sum + kEps)) {
      best = cand;
      best_bottleneck = bottleneck;
      best_sum = sum;
    }
  }
  return best;
}

CommPlan CommPlanner::flat_plan() const {
  CommPlan plan;
  plan.algo = AllReduceAlgo::kFlat;
  fill_routes(plan);
  const int n = plan.num_gpus;
  plan.ring_order.resize(static_cast<std::size_t>(std::max(n, 0)));
  std::iota(plan.ring_order.begin(), plan.ring_order.end(), 0);
  plan.chunk_share.assign(static_cast<std::size_t>(std::max(n, 0)),
                          n > 0 ? 1.0 / n : 0.0);
  if (n < 2) return plan;
  Step gather, scatter;
  for (int w = 1; w < n; ++w) {
    const int r_in = plan.route_of[static_cast<std::size_t>(w) *
                                   static_cast<std::size_t>(n)];
    const int r_out = plan.route_of[static_cast<std::size_t>(w)];
    if (r_in < 0 || r_out < 0) {
      throw std::runtime_error("comm: GPU pair unroutable in flat plan");
    }
    gather.transfers.push_back({w, 0, 1.0, r_in});
    scatter.transfers.push_back({0, w, 1.0, r_out});
  }
  plan.steps.push_back(std::move(gather));
  plan.steps.push_back(std::move(scatter));
  return plan;
}

CommPlan CommPlanner::ring_plan() const {
  CommPlan plan;
  plan.algo = AllReduceAlgo::kRing;
  fill_routes(plan);
  const int n = plan.num_gpus;
  plan.ring_order = best_ring_order();
  plan.chunk_share.assign(static_cast<std::size_t>(std::max(n, 1)), 1.0);
  if (n < 2) {
    return plan;
  }

  // Chunk shares: chunk q (owned at ring position q) traverses every hop
  // except hop (q-1+n)%n, so its cost weight is the aggregate inverse
  // bandwidth of the hops it crosses. Sizing shares inversely to that weight
  // equalises per-chunk transit cost: chunks that dodge slow hops grow,
  // chunks that must cross them shrink. Uniform bandwidths reduce to 1/n.
  std::vector<double> hop_bw(static_cast<std::size_t>(n));
  double inv_sum = 0.0;
  for (int p = 0; p < n; ++p) {
    const int src = plan.ring_order[static_cast<std::size_t>(p)];
    const int dst = plan.ring_order[static_cast<std::size_t>((p + 1) % n)];
    hop_bw[static_cast<std::size_t>(p)] = pair_bandwidth(src, dst);
    if (hop_bw[static_cast<std::size_t>(p)] <= 0.0) {
      throw std::runtime_error("comm: GPU pair unroutable in ring plan");
    }
    inv_sum += 1.0 / hop_bw[static_cast<std::size_t>(p)];
  }
  double share_sum = 0.0;
  for (int q = 0; q < n; ++q) {
    const double skipped = 1.0 / hop_bw[static_cast<std::size_t>((q - 1 + n) % n)];
    const double weight = inv_sum - skipped;
    plan.chunk_share[static_cast<std::size_t>(q)] =
        weight > 0.0 ? 1.0 / weight : 1.0;
    share_sum += plan.chunk_share[static_cast<std::size_t>(q)];
  }
  for (double& s : plan.chunk_share) s /= share_sum;

  // Reduce-scatter then all-gather: 2*(n-1) steps of n concurrent hop
  // transfers. In step s, hop p (ring position p -> p+1) carries chunk
  // (p - s) mod n; over n-1 steps each hop carries every chunk except the
  // one owned at its destination.
  for (int phase = 0; phase < 2; ++phase) {
    for (int s = 0; s < n - 1; ++s) {
      Step step;
      for (int p = 0; p < n; ++p) {
        const int src = plan.ring_order[static_cast<std::size_t>(p)];
        const int dst = plan.ring_order[static_cast<std::size_t>((p + 1) % n)];
        const int r = plan.route_of[static_cast<std::size_t>(src) *
                                        static_cast<std::size_t>(n) +
                                    static_cast<std::size_t>(dst)];
        if (r < 0) throw std::runtime_error("comm: ring hop unroutable");
        const int chunk = ((p - s) % n + n) % n;
        step.transfers.push_back(
            {src, dst, plan.chunk_share[static_cast<std::size_t>(chunk)], r});
      }
      plan.steps.push_back(std::move(step));
    }
  }
  return plan;
}

CommPlan CommPlanner::tree_plan() const {
  const int n = num_gpus();
  if (n < 2 || (n & (n - 1)) != 0) {
    // Recursive halving/doubling needs a power-of-two group; fall back.
    return ring_plan();
  }
  CommPlan plan;
  plan.algo = AllReduceAlgo::kTree;
  fill_routes(plan);
  plan.ring_order = best_ring_order();
  plan.chunk_share.assign(static_cast<std::size_t>(n), 1.0 / n);

  int rounds = 0;
  for (int m = n; m > 1; m >>= 1) ++rounds;
  // Reduce-scatter: round k pairs positions (i, i^2^k) exchanging half of
  // the data still unreduced between them; all-gather mirrors the rounds in
  // reverse with the same volumes (Rabenseifner).
  const auto make_round = [&](int k) {
    Step step;
    for (int i = 0; i < n; ++i) {
      const int j = i ^ (1 << k);
      const int src = plan.ring_order[static_cast<std::size_t>(i)];
      const int dst = plan.ring_order[static_cast<std::size_t>(j)];
      const int r = plan.route_of[static_cast<std::size_t>(src) *
                                      static_cast<std::size_t>(n) +
                                  static_cast<std::size_t>(dst)];
      if (r < 0) throw std::runtime_error("comm: tree pair unroutable");
      step.transfers.push_back(
          {src, dst, 1.0 / static_cast<double>(1 << (k + 1)), r});
    }
    return step;
  };
  for (int k = 0; k < rounds; ++k) plan.steps.push_back(make_round(k));
  for (int k = rounds - 1; k >= 0; --k) plan.steps.push_back(make_round(k));
  return plan;
}

CommPlan CommPlanner::plan(AllReduceAlgo algo,
                           double reference_payload_bytes) const {
  const int n = num_gpus();
  if (n < 2) {
    CommPlan degenerate;
    degenerate.algo = AllReduceAlgo::kFlat;
    fill_routes(degenerate);
    degenerate.ring_order.assign(n > 0 ? 1 : 0, 0);
    degenerate.chunk_share.assign(n > 0 ? 1 : 0, 1.0);
    return degenerate;
  }
  switch (algo) {
    case AllReduceAlgo::kFlat: return flat_plan();
    case AllReduceAlgo::kRing: return ring_plan();
    case AllReduceAlgo::kTree: return tree_plan();
    case AllReduceAlgo::kAuto: break;
  }
  // Auto: lowest predicted contention-costed time wins; ties keep the
  // earlier candidate (ring, then tree, then flat) for determinism.
  CommPlan best = ring_plan();
  double best_s = best.predicted_seconds(reference_payload_bytes);
  if ((n & (n - 1)) == 0) {
    CommPlan tree = tree_plan();
    const double tree_s = tree.predicted_seconds(reference_payload_bytes);
    if (tree_s < best_s - 1e-12) {
      best = std::move(tree);
      best_s = tree_s;
    }
  }
  CommPlan flat = flat_plan();
  if (flat.predicted_seconds(reference_payload_bytes) < best_s - 1e-12) {
    best = std::move(flat);
  }
  return best;
}

}  // namespace moment::comm
