#pragma once
// Compiled communication plans: the runtime-facing half of the comm layer.
//
// A CommPlan is a schedule of modeled transfers over the *physical* link
// graph — which GPUs exchange which fraction of the payload, in which order,
// over which concrete links. Plans are compiled once per machine by
// comm::CommPlanner (planner.hpp) from the topology plus the max-flow
// bandwidth predictor, then consumed by
//   - runtime::PipelineEngine::all_reduce_grads (gradient all-reduce),
//   - iostack::TieredFeatureClient (peer-HBM gather routing),
//   - sim::machine_sim (per-link contention costing of the comm phase).
//
// The functional substrate of this repo reduces gradients in shared host
// memory, so a plan never changes *values* — it changes the modeled
// transport: per-link byte counters, predicted comm seconds, and the
// chunk->owner map used to size per-hop transfers. Bit-identity between
// flat and planned all-reduce follows from the shared fixed-order
// elementwise reduction kernel (see DESIGN.md §5f).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "topology/device.hpp"

namespace moment::comm {

/// Gradient-reduction chunk boundaries fall on multiples of this many bytes
/// so two workers reducing adjacent chunks never touch the same cache line
/// (the flat path's historical false-sharing hazard).
inline constexpr std::size_t kGradChunkAlignBytes = 64;
inline constexpr std::size_t kGradChunkAlignFloats =
    kGradChunkAlignBytes / sizeof(float);

/// Grain (in floats) for fanning the elementwise reduction over the compute
/// pool; a multiple of kGradChunkAlignFloats. Shared by the flat path and
/// every CommPlan-scheduled path so chunk geometry — and therefore summation
/// order — is identical across algorithms.
inline constexpr std::size_t kAllReduceGrainFloats = 4096;
static_assert(kAllReduceGrainFloats % kGradChunkAlignFloats == 0);

enum class AllReduceAlgo : std::uint8_t {
  kFlat,  // hub-and-spoke: every worker -> GPU0, then broadcast back
  kRing,  // bandwidth-ordered ring reduce-scatter + all-gather
  kTree,  // recursive halving/doubling (Rabenseifner), power-of-two N
  kAuto,  // planner picks the algorithm with the lowest predicted time
};

const char* to_string(AllReduceAlgo algo) noexcept;

/// Parses the `--comm-plan=flat|ring|tree|auto` knob value.
/// Throws std::invalid_argument on anything else.
AllReduceAlgo parse_algo(const std::string& text);

/// One directed traversal of a physical link along a route.
struct RouteLink {
  topology::LinkId link = -1;
  bool forward = true;    // true: traversed in the link's a->b direction
  double capacity = 0.0;  // bytes/s in the traversed direction
};

/// A concrete path between two GPUs through switches/root complexes (or a
/// direct NVLink bridge), plus the predictor's bandwidth bound for the pair.
struct PeerRoute {
  int src_gpu = -1;
  int dst_gpu = -1;
  std::vector<RouteLink> links;  // in traversal order, src -> dst
  /// Max-flow bandwidth src HBM -> dst compute (bytes/s). May exceed the
  /// route's bottleneck when the fabric offers parallel paths.
  double max_flow_bw = 0.0;

  bool valid() const noexcept { return !links.empty(); }
  /// Narrowest traversed-direction capacity along the route (bytes/s).
  double bottleneck_bw() const noexcept;
};

/// One transfer within a schedule step: `fraction` of the all-reduce payload
/// moved src -> dst over `CommPlan::routes[route]`.
struct Transfer {
  int src_gpu = -1;
  int dst_gpu = -1;
  double fraction = 0.0;
  int route = -1;  // index into CommPlan::routes
};

/// Transfers inside one step run concurrently; steps run back-to-back.
struct Step {
  std::vector<Transfer> transfers;
};

/// Metadata for every physical link any plan route touches.
struct PlanLinkInfo {
  topology::LinkId link = -1;
  std::string label;
  topology::LinkKind kind = topology::LinkKind::kPcie;
  double cap_ab = 0.0;  // bytes/s
  double cap_ba = 0.0;
};

/// Modeled bytes crossing one link in each direction.
struct LinkVolume {
  topology::LinkId link = -1;
  std::uint64_t ab = 0;
  std::uint64_t ba = 0;
};

/// Thread-safe per-link byte counters (one slot per topology link, both
/// directions). Shared by the engine's all-reduce accounting and every
/// TieredFeatureClient's peer-gather path; relaxed atomics — counters are
/// telemetry, not synchronisation.
class LinkCounters {
 public:
  explicit LinkCounters(std::size_t num_links) : counters_(num_links) {}

  std::size_t size() const noexcept { return counters_.size(); }

  void add(topology::LinkId link, bool forward, std::uint64_t bytes) noexcept {
    auto& slot = counters_[static_cast<std::size_t>(link)];
    (forward ? slot.ab : slot.ba).fetch_add(bytes, std::memory_order_relaxed);
  }

  std::uint64_t ab(topology::LinkId link) const noexcept {
    return counters_[static_cast<std::size_t>(link)].ab.load(
        std::memory_order_relaxed);
  }
  std::uint64_t ba(topology::LinkId link) const noexcept {
    return counters_[static_cast<std::size_t>(link)].ba.load(
        std::memory_order_relaxed);
  }

  /// Flat snapshot [ab0, ba0, ab1, ba1, ...] for delta accounting.
  std::vector<std::uint64_t> snapshot() const;

  void reset() noexcept;

 private:
  struct Pair {
    std::atomic<std::uint64_t> ab{0};
    std::atomic<std::uint64_t> ba{0};
  };
  std::vector<Pair> counters_;
};

/// A compiled per-machine communication plan. Immutable after compilation;
/// safe to share across engine workers and feature clients.
struct CommPlan {
  AllReduceAlgo algo = AllReduceAlgo::kFlat;
  int num_gpus = 0;
  /// Total links in the source topology (sizes LinkCounters).
  std::size_t num_links = 0;

  /// GPU ordinals in schedule order; position p's successor is position
  /// (p+1) % N. ring_order[0] == 0 always (deterministic anchor).
  std::vector<int> ring_order;
  /// Fraction of the payload owned by each ring *position* (sums to 1).
  /// Proportional to the predicted bandwidth of the hop each chunk is
  /// injected on; uniform for flat/tree.
  std::vector<double> chunk_share;

  /// Unique routes referenced by steps and peer lookups.
  std::vector<PeerRoute> routes;
  /// route_of[src * num_gpus + dst] -> index into routes, -1 if none.
  std::vector<int> route_of;
  /// The all-reduce schedule: reduce-scatter steps then all-gather steps
  /// (flat: gather step then broadcast step).
  std::vector<Step> steps;
  /// Metadata for every link used by at least one route.
  std::vector<PlanLinkInfo> links;

  /// Route between two GPU ordinals; nullptr when none exists (or src==dst).
  const PeerRoute* peer_route(int src_gpu, int dst_gpu) const noexcept;

  /// Contention-costed model of one all-reduce of `payload_bytes`: each
  /// step costs its most-loaded (link, direction)'s load/capacity; steps
  /// are sequential. This is the quantity the planner minimises and the
  /// simulator charges per training round.
  double predicted_seconds(double payload_bytes) const;

  /// Modeled per-link bytes of one all-reduce of `payload_bytes`.
  /// Per-transfer bytes are llround(fraction * payload) — the exact figure
  /// `account` adds to counters, so test-side conservation checks can
  /// demand equality, not approximation.
  std::vector<LinkVolume> link_volume(double payload_bytes) const;

  /// Adds one all-reduce's modeled per-link bytes to `counters`.
  void account(double payload_bytes, LinkCounters& counters) const;

  /// Total bytes entering hops across the whole schedule (the analytic
  /// 2*B*(N-1)/N * N figure for ring; 2*B*(N-1) for flat through the hub).
  double schedule_payload_bytes(double payload_bytes) const;

  /// Human-readable multi-line dump (ring order, shares, per-step hops).
  std::string to_string() const;
};

}  // namespace moment::comm
