#include "gnn/synthetic.hpp"

#include <cmath>
#include <stdexcept>

namespace moment::gnn {

namespace {

/// Box-Muller gaussian from the deterministic generator.
float gaussian(util::Pcg32& rng) {
  const double u1 = std::max(rng.next_double(), 1e-12);
  const double u2 = rng.next_double();
  return static_cast<float>(std::sqrt(-2.0 * std::log(u1)) *
                            std::cos(2.0 * 3.14159265358979323846 * u2));
}

}  // namespace

SyntheticTask make_synthetic_task(const graph::CsrGraph& graph,
                                  std::size_t num_classes, std::size_t dim,
                                  double noise_stddev, std::uint64_t seed) {
  if (num_classes == 0 || dim == 0) {
    throw std::invalid_argument("make_synthetic_task: zero classes/dim");
  }
  const std::size_t n = graph.num_vertices();
  SyntheticTask task;
  task.num_classes = num_classes;
  task.labels.resize(n);
  task.features = Tensor(n, dim);

  util::Pcg32 rng(seed, 0x53594e54);  // "SYNT"
  Tensor centroids(num_classes, dim);
  for (std::size_t i = 0; i < centroids.size(); ++i) {
    centroids.data()[i] = gaussian(rng);
  }

  for (std::size_t v = 0; v < n; ++v) {
    const auto label =
        static_cast<std::int32_t>(v * num_classes / std::max<std::size_t>(n, 1));
    task.labels[v] = label;
    const auto c = centroids.row(static_cast<std::size_t>(label));
    auto f = task.features.row(v);
    for (std::size_t d = 0; d < dim; ++d) {
      f[d] = c[d] + static_cast<float>(noise_stddev) * gaussian(rng);
    }
  }
  return task;
}

}  // namespace moment::gnn
