#include "gnn/features.hpp"

#include <algorithm>
#include <stdexcept>

namespace moment::gnn {

void InMemoryFeatures::gather(std::span<const graph::VertexId> vertices,
                              Tensor& out) {
  if (out.rows() != vertices.size() || out.cols() != features_.cols()) {
    throw std::invalid_argument("InMemoryFeatures::gather: shape mismatch");
  }
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const graph::VertexId v = vertices[i];
    if (v >= features_.rows()) {
      throw std::out_of_range("InMemoryFeatures::gather: vertex id");
    }
    const auto src = features_.row(v);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
}

}  // namespace moment::gnn
