#include "gnn/trainer.hpp"

#include <stdexcept>
#include <vector>

#include "gnn/block.hpp"

namespace moment::gnn {

TrainStepResult Trainer::step(const sampling::SampledSubgraph& sg,
                              std::span<const std::int32_t> labels) {
  return run(sg, labels, /*train=*/true);
}

TrainStepResult Trainer::evaluate(const sampling::SampledSubgraph& sg,
                                  std::span<const std::int32_t> labels) {
  return run(sg, labels, /*train=*/false);
}

TrainStepResult Trainer::run(const sampling::SampledSubgraph& sg,
                             std::span<const std::int32_t> labels,
                             bool train) {
  const std::vector<Block> blocks = build_blocks(sg);
  if (blocks.empty()) throw std::invalid_argument("Trainer: no blocks");

  // Feature extraction for the widest frontier.
  Tensor x0(blocks[0].num_src(), features_.dim());
  features_.gather(blocks[0].src_ids, x0);

  Tensor logits = model_.forward(blocks, x0);

  // Seed labels: blocks.back().dst_ids are the seeds (sorted).
  std::vector<std::int32_t> seed_labels;
  seed_labels.reserve(blocks.back().dst_ids.size());
  for (graph::VertexId v : blocks.back().dst_ids) {
    if (v >= labels.size()) {
      throw std::out_of_range("Trainer: label table too small");
    }
    seed_labels.push_back(labels[v]);
  }

  LossResult loss = softmax_cross_entropy(logits, seed_labels);
  if (train) {
    optimizer_.zero_grad();
    model_.backward(blocks, loss.grad_logits);
    optimizer_.step();
  }

  TrainStepResult result;
  result.loss = loss.loss;
  result.accuracy = loss.accuracy;
  result.fetched_vertices = blocks[0].num_src();
  result.sampled_edges = sg.num_sampled_edges();
  return result;
}

}  // namespace moment::gnn
