#include "gnn/model.hpp"

#include <stdexcept>

namespace moment::gnn {

GnnModel::GnnModel(const ModelConfig& config) : config_(config) {
  util::Pcg32 rng(config.seed, 0x4d4f444c);  // "MODL"
  if (config.num_hops == 0) {
    throw std::invalid_argument("GnnModel: num_hops must be >= 1");
  }
  if (config.kind == ModelKind::kGraphSage ||
      config.kind == ModelKind::kGcn) {
    std::size_t in = config.in_dim;
    for (std::size_t l = 0; l < config.num_hops; ++l) {
      const bool last = l + 1 == config.num_hops;
      const std::size_t out = last ? config.num_classes : config.hidden_dim;
      if (config.kind == ModelKind::kGraphSage) {
        layers_.push_back(
            std::make_unique<SageGnnLayer>(in, out, /*relu=*/!last, rng));
      } else {
        layers_.push_back(
            std::make_unique<GcnGnnLayer>(in, out, /*relu=*/!last, rng));
      }
      in = out;
    }
  } else {
    // GAT: hidden layers use `gat_heads` heads of dim hidden_dim (concat);
    // the output layer is single-head onto the class logits.
    std::size_t in = config.in_dim;
    for (std::size_t l = 0; l < config.num_hops; ++l) {
      const bool last = l + 1 == config.num_hops;
      if (last) {
        layers_.push_back(std::make_unique<GatGnnLayer>(
            in, 1, config.num_classes, /*elu=*/false, rng));
        in = config.num_classes;
      } else {
        layers_.push_back(std::make_unique<GatGnnLayer>(
            in, config.gat_heads, config.hidden_dim, /*elu=*/true, rng));
        in = config.gat_heads * config.hidden_dim;
      }
    }
  }
}

Tensor GnnModel::forward(std::span<const Block> blocks, const Tensor& x0) {
  if (blocks.size() != layers_.size()) {
    throw std::invalid_argument("GnnModel::forward: block/layer mismatch");
  }
  Tensor h = x0;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    Tensor out = layers_[l]->forward(blocks[l], h);
    if (l + 1 < layers_.size()) {
      // The next block's src set is a subset of this block's dst set; gather.
      const Block& cur = blocks[l];
      const Block& next = blocks[l + 1];
      Tensor gathered(next.num_src(), out.cols());
      std::size_t cursor = 0;
      for (std::size_t i = 0; i < next.src_ids.size(); ++i) {
        while (cursor < cur.dst_ids.size() &&
               cur.dst_ids[cursor] < next.src_ids[i]) {
          ++cursor;
        }
        if (cursor >= cur.dst_ids.size() ||
            cur.dst_ids[cursor] != next.src_ids[i]) {
          throw std::logic_error("GnnModel: block chaining broken");
        }
        std::copy(out.row(cursor).begin(), out.row(cursor).end(),
                  gathered.row(i).begin());
      }
      h = std::move(gathered);
    } else {
      h = std::move(out);
    }
  }
  return h;
}

void GnnModel::backward(std::span<const Block> blocks, const Tensor& grad_out) {
  Tensor g = grad_out;
  for (std::size_t l = layers_.size(); l-- > 0;) {
    Tensor gin = layers_[l]->backward(blocks[l], g);
    if (l > 0) {
      // Scatter gin (defined on blocks[l].src_ids) back onto the previous
      // block's dst rows.
      const Block& prev = blocks[l - 1];
      const Block& cur = blocks[l];
      Tensor scattered(prev.num_dst(), gin.cols());
      std::size_t cursor = 0;
      for (std::size_t i = 0; i < cur.src_ids.size(); ++i) {
        while (cursor < prev.dst_ids.size() &&
               prev.dst_ids[cursor] < cur.src_ids[i]) {
          ++cursor;
        }
        std::copy(gin.row(i).begin(), gin.row(i).end(),
                  scattered.row(cursor).begin());
      }
      g = std::move(scattered);
    }
  }
}

std::vector<Param*> GnnModel::parameters() {
  std::vector<Param*> out;
  for (auto& layer : layers_) {
    for (Param* p : layer->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<const Param*> GnnModel::parameters() const {
  std::vector<const Param*> out;
  for (const auto& layer : layers_) {
    for (const Param* p : layer->parameters()) out.push_back(p);
  }
  return out;
}

std::size_t GnnModel::num_parameters() const {
  std::size_t n = 0;
  for (const Param* p : parameters()) n += p->value.size();
  return n;
}

}  // namespace moment::gnn
