#include "gnn/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "util/thread_pool.hpp"

// This translation unit is compiled -O3 -funroll-loops (see CMakeLists.txt):
// the inner j-loops below are written against __restrict panel pointers so
// the auto-vectorizer can prove independence and emit packed FMAs.

namespace moment::gnn::kernels {

namespace {

// c rows [r0, r1) of a (m x k) @ b (k x n). KC-blocked over k with a 4-row
// register panel; per output row the k accumulation order is plain ascending
// p, so the result is bitwise identical to the naive triple loop and
// independent of how rows are grouped into panels or chunks.
void gemm_rows(std::size_t r0, std::size_t r1, std::size_t k, std::size_t n,
               const float* __restrict a, const float* __restrict b,
               float* __restrict c, bool accumulate) {
  if (!accumulate) {
    std::memset(c + r0 * n, 0, (r1 - r0) * n * sizeof(float));
  }
  for (std::size_t p0 = 0; p0 < k; p0 += kKcBlock) {
    const std::size_t p1 = std::min(k, p0 + kKcBlock);
    std::size_t i = r0;
    for (; i + kRowPanel <= r1; i += kRowPanel) {
      const float* a0 = a + (i + 0) * k;
      const float* a1 = a + (i + 1) * k;
      const float* a2 = a + (i + 2) * k;
      const float* a3 = a + (i + 3) * k;
      float* __restrict c0 = c + (i + 0) * n;
      float* __restrict c1 = c + (i + 1) * n;
      float* __restrict c2 = c + (i + 2) * n;
      float* __restrict c3 = c + (i + 3) * n;
      for (std::size_t p = p0; p < p1; ++p) {
        const float v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
        const float* __restrict br = b + p * n;
        for (std::size_t j = 0; j < n; ++j) {
          c0[j] += v0 * br[j];
          c1[j] += v1 * br[j];
          c2[j] += v2 * br[j];
          c3[j] += v3 * br[j];
        }
      }
    }
    for (; i < r1; ++i) {
      const float* ai = a + i * k;
      float* __restrict ci = c + i * n;
      for (std::size_t p = p0; p < p1; ++p) {
        const float v = ai[p];
        const float* __restrict br = b + p * n;
        for (std::size_t j = 0; j < n; ++j) ci[j] += v * br[j];
      }
    }
  }
}

// c rows [r0, r1) of a (m x k) @ b^T with b (n x k). Dot products do not
// auto-vectorize without reassociation, so throughput comes from 8
// independent accumulator chains per j-block (ILP instead of SIMD).
void gemm_bt_rows(std::size_t r0, std::size_t r1, std::size_t k, std::size_t n,
                  const float* __restrict a, const float* __restrict b,
                  float* __restrict c, bool accumulate) {
  for (std::size_t i = r0; i < r1; ++i) {
    const float* ai = a + i * k;
    float* __restrict ci = c + i * n;
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const float* b0 = b + (j + 0) * k;
      const float* b1 = b + (j + 1) * k;
      const float* b2 = b + (j + 2) * k;
      const float* b3 = b + (j + 3) * k;
      const float* b4 = b + (j + 4) * k;
      const float* b5 = b + (j + 5) * k;
      const float* b6 = b + (j + 6) * k;
      const float* b7 = b + (j + 7) * k;
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      float s4 = 0.0f, s5 = 0.0f, s6 = 0.0f, s7 = 0.0f;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = ai[p];
        s0 += av * b0[p];
        s1 += av * b1[p];
        s2 += av * b2[p];
        s3 += av * b3[p];
        s4 += av * b4[p];
        s5 += av * b5[p];
        s6 += av * b6[p];
        s7 += av * b7[p];
      }
      if (accumulate) {
        ci[j + 0] += s0; ci[j + 1] += s1; ci[j + 2] += s2; ci[j + 3] += s3;
        ci[j + 4] += s4; ci[j + 5] += s5; ci[j + 6] += s6; ci[j + 7] += s7;
      } else {
        ci[j + 0] = s0; ci[j + 1] = s1; ci[j + 2] = s2; ci[j + 3] = s3;
        ci[j + 4] = s4; ci[j + 5] = s5; ci[j + 6] = s6; ci[j + 7] = s7;
      }
    }
    for (; j < n; ++j) {
      const float* bj = b + j * k;
      float s = 0.0f;
      for (std::size_t p = 0; p < k; ++p) s += ai[p] * bj[p];
      if (accumulate) {
        ci[j] += s;
      } else {
        ci[j] = s;
      }
    }
  }
}

// c rows [p0r, p1r) of a^T (k x m) @ b (m x n) with a stored (m x k). Rank-1
// updates streamed over i; a 4-row output panel reads a[i][p..p+3] as one
// contiguous chunk per step.
void gemm_at_rows(std::size_t p0r, std::size_t p1r, std::size_t m,
                  std::size_t k, std::size_t n, const float* __restrict a,
                  const float* __restrict b, float* __restrict c,
                  bool accumulate) {
  if (!accumulate) {
    std::memset(c + p0r * n, 0, (p1r - p0r) * n * sizeof(float));
  }
  std::size_t p = p0r;
  for (; p + kRowPanel <= p1r; p += kRowPanel) {
    float* __restrict c0 = c + (p + 0) * n;
    float* __restrict c1 = c + (p + 1) * n;
    float* __restrict c2 = c + (p + 2) * n;
    float* __restrict c3 = c + (p + 3) * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float* ar = a + i * k + p;
      const float v0 = ar[0], v1 = ar[1], v2 = ar[2], v3 = ar[3];
      const float* __restrict br = b + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        c0[j] += v0 * br[j];
        c1[j] += v1 * br[j];
        c2[j] += v2 * br[j];
        c3[j] += v3 * br[j];
      }
    }
  }
  for (; p < p1r; ++p) {
    float* __restrict cp = c + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float v = a[i * k + p];
      const float* __restrict br = b + i * n;
      for (std::size_t j = 0; j < n; ++j) cp[j] += v * br[j];
    }
  }
}

inline const float* row(const float* x, std::size_t i, std::size_t dim) {
  return x + i * dim;
}

}  // namespace

void gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
          const float* b, float* c, bool accumulate) {
  util::parallel_for(util::compute_pool(), 0, m, kRowGrain,
                     [&](std::size_t r0, std::size_t r1) {
                       gemm_rows(r0, r1, k, n, a, b, c, accumulate);
                     });
}

void gemm_bt(std::size_t m, std::size_t k, std::size_t n, const float* a,
             const float* b, float* c, bool accumulate) {
  util::parallel_for(util::compute_pool(), 0, m, kRowGrain,
                     [&](std::size_t r0, std::size_t r1) {
                       gemm_bt_rows(r0, r1, k, n, a, b, c, accumulate);
                     });
}

void gemm_at(std::size_t m, std::size_t k, std::size_t n, const float* a,
             const float* b, float* c, bool accumulate) {
  // Output is k x n: parallelise over the k rows of c (columns of a).
  util::parallel_for(util::compute_pool(), 0, k, kRowGrain,
                     [&](std::size_t r0, std::size_t r1) {
                       gemm_at_rows(r0, r1, m, k, n, a, b, c, accumulate);
                     });
}

void aggregate_mean(const CompiledBlock& cb, const float* x, std::size_t dim,
                    float* out) {
  const int* __restrict src_of = cb.src_of.data();
  util::parallel_for(
      util::compute_pool(), 0, cb.num_dst(), kRowGrain,
      [&](std::size_t d0, std::size_t d1) {
        for (std::size_t i = d0; i < d1; ++i) {
          float* __restrict o = out + i * dim;
          std::memset(o, 0, dim * sizeof(float));
          const int b = cb.dst_off[i], e = cb.dst_off[i + 1];
          int t = b;
          // 4 neighbor rows per step plus prefetch of the next 4: the random
          // feature-row reads are latency-bound, so overlapping misses is
          // worth more than the extra adds.
          for (; t + 4 <= e; t += 4) {
            const float* __restrict s0 =
                row(x, static_cast<std::size_t>(src_of[t + 0]), dim);
            const float* __restrict s1 =
                row(x, static_cast<std::size_t>(src_of[t + 1]), dim);
            const float* __restrict s2 =
                row(x, static_cast<std::size_t>(src_of[t + 2]), dim);
            const float* __restrict s3 =
                row(x, static_cast<std::size_t>(src_of[t + 3]), dim);
            if (t + 8 <= e) {
              __builtin_prefetch(row(x, static_cast<std::size_t>(src_of[t + 4]), dim));
              __builtin_prefetch(row(x, static_cast<std::size_t>(src_of[t + 5]), dim));
              __builtin_prefetch(row(x, static_cast<std::size_t>(src_of[t + 6]), dim));
              __builtin_prefetch(row(x, static_cast<std::size_t>(src_of[t + 7]), dim));
            }
            for (std::size_t j = 0; j < dim; ++j) {
              o[j] += (s0[j] + s1[j]) + (s2[j] + s3[j]);
            }
          }
          for (; t < e; ++t) {
            const float* __restrict s =
                row(x, static_cast<std::size_t>(src_of[t]), dim);
            for (std::size_t j = 0; j < dim; ++j) o[j] += s[j];
          }
          const float inv = cb.inv_deg[i];
          for (std::size_t j = 0; j < dim; ++j) o[j] *= inv;
        }
      });
}

void aggregate_coeff(const CompiledBlock& cb, const float* edge_coeff,
                     const float* self_coeff, const float* x, std::size_t dim,
                     float* out) {
  const int* __restrict src_of = cb.src_of.data();
  util::parallel_for(
      util::compute_pool(), 0, cb.num_dst(), kRowGrain,
      [&](std::size_t d0, std::size_t d1) {
        for (std::size_t i = d0; i < d1; ++i) {
          float* __restrict o = out + i * dim;
          std::memset(o, 0, dim * sizeof(float));
          const int b = cb.dst_off[i], e = cb.dst_off[i + 1];
          int t = b;
          for (; t + 4 <= e; t += 4) {
            const float w0 = edge_coeff[t + 0], w1 = edge_coeff[t + 1];
            const float w2 = edge_coeff[t + 2], w3 = edge_coeff[t + 3];
            const float* __restrict s0 =
                row(x, static_cast<std::size_t>(src_of[t + 0]), dim);
            const float* __restrict s1 =
                row(x, static_cast<std::size_t>(src_of[t + 1]), dim);
            const float* __restrict s2 =
                row(x, static_cast<std::size_t>(src_of[t + 2]), dim);
            const float* __restrict s3 =
                row(x, static_cast<std::size_t>(src_of[t + 3]), dim);
            if (t + 8 <= e) {
              __builtin_prefetch(row(x, static_cast<std::size_t>(src_of[t + 4]), dim));
              __builtin_prefetch(row(x, static_cast<std::size_t>(src_of[t + 5]), dim));
              __builtin_prefetch(row(x, static_cast<std::size_t>(src_of[t + 6]), dim));
              __builtin_prefetch(row(x, static_cast<std::size_t>(src_of[t + 7]), dim));
            }
            for (std::size_t j = 0; j < dim; ++j) {
              o[j] += (w0 * s0[j] + w1 * s1[j]) + (w2 * s2[j] + w3 * s3[j]);
            }
          }
          for (; t < e; ++t) {
            const float w = edge_coeff[t];
            const float* __restrict s =
                row(x, static_cast<std::size_t>(src_of[t]), dim);
            for (std::size_t j = 0; j < dim; ++j) o[j] += w * s[j];
          }
          if (self_coeff != nullptr) {
            const float w = self_coeff[i];
            const float* __restrict s =
                row(x, static_cast<std::size_t>(cb.self_src[i]), dim);
            for (std::size_t j = 0; j < dim; ++j) o[j] += w * s[j];
          }
        }
      });
}

void aggregate_coeff_grad(const CompiledBlock& cb, const float* edge_coeff,
                          const float* self_coeff, const float* g,
                          std::size_t dim, float* grad_src) {
  const int* __restrict rev_edge = cb.rev_edge.data();
  const int* __restrict dst_of = cb.dst_of.data();
  util::parallel_for(
      util::compute_pool(), 0, cb.num_src(), kRowGrain,
      [&](std::size_t v0, std::size_t v1) {
        for (std::size_t v = v0; v < v1; ++v) {
          float* __restrict o = grad_src + v * dim;
          std::memset(o, 0, dim * sizeof(float));
          const int b = cb.src_off[v], e = cb.src_off[v + 1];
          for (int t = b; t < e; ++t) {
            const int ed = rev_edge[t];
            const std::size_t d = static_cast<std::size_t>(dst_of[ed]);
            if (t + 1 < e) {
              __builtin_prefetch(
                  row(g, static_cast<std::size_t>(dst_of[rev_edge[t + 1]]), dim));
            }
            const float w = edge_coeff[ed];
            const float* __restrict gr = row(g, d, dim);
            for (std::size_t j = 0; j < dim; ++j) o[j] += w * gr[j];
          }
          const int sd = cb.src_to_dst[v];
          if (self_coeff != nullptr && sd >= 0) {
            const float w = self_coeff[sd];
            const float* __restrict gr =
                row(g, static_cast<std::size_t>(sd), dim);
            for (std::size_t j = 0; j < dim; ++j) o[j] += w * gr[j];
          }
        }
      });
}

void sage_input_grad(const CompiledBlock& cb, const float* grad_self,
                     const float* grad_mean, std::size_t dim,
                     float* grad_src) {
  const int* __restrict rev_edge = cb.rev_edge.data();
  const int* __restrict dst_of = cb.dst_of.data();
  util::parallel_for(
      util::compute_pool(), 0, cb.num_src(), kRowGrain,
      [&](std::size_t v0, std::size_t v1) {
        for (std::size_t v = v0; v < v1; ++v) {
          float* __restrict o = grad_src + v * dim;
          const int sd = cb.src_to_dst[v];
          if (sd >= 0) {
            std::memcpy(o, row(grad_self, static_cast<std::size_t>(sd), dim),
                        dim * sizeof(float));
          } else {
            std::memset(o, 0, dim * sizeof(float));
          }
          const int b = cb.src_off[v], e = cb.src_off[v + 1];
          for (int t = b; t < e; ++t) {
            const std::size_t d = static_cast<std::size_t>(dst_of[rev_edge[t]]);
            if (t + 1 < e) {
              __builtin_prefetch(
                  row(grad_mean, static_cast<std::size_t>(dst_of[rev_edge[t + 1]]),
                      dim));
            }
            const float w = cb.inv_deg[d];
            const float* __restrict gm = row(grad_mean, d, dim);
            for (std::size_t j = 0; j < dim; ++j) o[j] += w * gm[j];
          }
        }
      });
}

void gat_attention_forward(const CompiledBlock& cb, const float* el,
                           const float* er, const float* z, std::size_t stride,
                           std::size_t head_dim, float leaky_slope,
                           std::size_t alpha_stride, float* score, float* alpha,
                           float* out) {
  const int* __restrict src_of = cb.src_of.data();
  util::parallel_for(
      util::compute_pool(), 0, cb.num_dst(), kRowGrain,
      [&](std::size_t d0, std::size_t d1) {
        for (std::size_t i = d0; i < d1; ++i) {
          float* __restrict o = out + i * stride;
          std::memset(o, 0, head_dim * sizeof(float));
          const int b = cb.dst_off[i], e = cb.dst_off[i + 1];
          if (e == b) continue;
          float mx = -std::numeric_limits<float>::infinity();
          for (int t = b; t < e; ++t) {
            const float s = el[i] + er[src_of[t]];
            score[static_cast<std::size_t>(t) * alpha_stride] = s;
            const float act = s > 0.0f ? s : leaky_slope * s;
            mx = std::max(mx, act);
          }
          float denom = 0.0f;
          for (int t = b; t < e; ++t) {
            const float s = score[static_cast<std::size_t>(t) * alpha_stride];
            const float act = s > 0.0f ? s : leaky_slope * s;
            const float w = std::exp(act - mx);
            alpha[static_cast<std::size_t>(t) * alpha_stride] = w;
            denom += w;
          }
          const float inv = 1.0f / denom;
          for (int t = b; t < e; ++t) {
            const float a = alpha[static_cast<std::size_t>(t) * alpha_stride] * inv;
            alpha[static_cast<std::size_t>(t) * alpha_stride] = a;
            const float* __restrict zr =
                z + static_cast<std::size_t>(src_of[t]) * stride;
            for (std::size_t j = 0; j < head_dim; ++j) o[j] += a * zr[j];
          }
        }
      });
}

void gat_attention_backward_dst(const CompiledBlock& cb, const float* g,
                                const float* z, std::size_t stride,
                                std::size_t head_dim, float leaky_slope,
                                std::size_t alpha_stride, const float* score,
                                const float* alpha, float* ds, float* del) {
  const int* __restrict src_of = cb.src_of.data();
  util::parallel_for(
      util::compute_pool(), 0, cb.num_dst(), kRowGrain,
      [&](std::size_t d0, std::size_t d1) {
        for (std::size_t i = d0; i < d1; ++i) {
          const int b = cb.dst_off[i], e = cb.dst_off[i + 1];
          del[i] = 0.0f;
          if (e == b) continue;
          const float* __restrict gi = g + i * stride;
          // t_e = g_i . z_src[e]; S = sum_e alpha_e t_e. Stash t_e in ds.
          float sum = 0.0f;
          for (int t = b; t < e; ++t) {
            const float* __restrict zr =
                z + static_cast<std::size_t>(src_of[t]) * stride;
            float dot = 0.0f;
            for (std::size_t j = 0; j < head_dim; ++j) dot += gi[j] * zr[j];
            ds[static_cast<std::size_t>(t) * alpha_stride] = dot;
            sum += alpha[static_cast<std::size_t>(t) * alpha_stride] * dot;
          }
          float acc = 0.0f;
          for (int t = b; t < e; ++t) {
            const std::size_t idx = static_cast<std::size_t>(t) * alpha_stride;
            const float grad_act = alpha[idx] * (ds[idx] - sum);
            const float lg = score[idx] > 0.0f ? 1.0f : leaky_slope;
            ds[idx] = grad_act * lg;
            acc += ds[idx];
          }
          del[i] = acc;
        }
      });
}

void gat_attention_backward_src(const CompiledBlock& cb, const float* g,
                                std::size_t stride, std::size_t head_dim,
                                std::size_t alpha_stride, const float* alpha,
                                const float* ds, float* der, float* gz) {
  const int* __restrict rev_edge = cb.rev_edge.data();
  const int* __restrict dst_of = cb.dst_of.data();
  util::parallel_for(
      util::compute_pool(), 0, cb.num_src(), kRowGrain,
      [&](std::size_t v0, std::size_t v1) {
        for (std::size_t v = v0; v < v1; ++v) {
          float* __restrict o = gz + v * stride;
          float acc = 0.0f;
          const int b = cb.src_off[v], e = cb.src_off[v + 1];
          for (int t = b; t < e; ++t) {
            const std::size_t ed = static_cast<std::size_t>(rev_edge[t]);
            const std::size_t d = static_cast<std::size_t>(dst_of[ed]);
            const float a = alpha[ed * alpha_stride];
            acc += ds[ed * alpha_stride];
            const float* __restrict gr = g + d * stride;
            for (std::size_t j = 0; j < head_dim; ++j) o[j] += a * gr[j];
          }
          der[v] = acc;
        }
      });
}

void gather_rows(const int* index, std::size_t rows, const float* x,
                 std::size_t dim, float* out) {
  util::parallel_for(util::compute_pool(), 0, rows, kRowGrain * 4,
                     [&](std::size_t r0, std::size_t r1) {
                       for (std::size_t i = r0; i < r1; ++i) {
                         std::memcpy(out + i * dim,
                                     x + static_cast<std::size_t>(index[i]) * dim,
                                     dim * sizeof(float));
                       }
                     });
}

}  // namespace moment::gnn::kernels
