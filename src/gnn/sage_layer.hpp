#pragma once
// GraphSAGE layer with mean aggregation (Hamilton et al., the paper's primary
// model): h_dst = act(W_self x_dst + W_neigh mean_{src in N(dst)} x_src + b).
// Full forward/backward over a Block.

#include "gnn/block.hpp"
#include "gnn/param.hpp"

namespace moment::gnn {

class SageLayer final : public Module {
 public:
  SageLayer(std::size_t in_dim, std::size_t out_dim, bool apply_relu,
            util::Pcg32& rng);

  /// x_src: (block.num_src() x in_dim). Returns (block.num_dst() x out_dim).
  Tensor forward(const Block& block, const Tensor& x_src);

  /// grad_out: gradient w.r.t. forward's return. Returns gradient w.r.t.
  /// x_src and accumulates parameter gradients. Must follow a forward() on
  /// the same block.
  Tensor backward(const Block& block, const Tensor& grad_out);

  std::vector<Param*> parameters() override {
    return {&w_self_, &w_neigh_, &bias_};
  }

  std::size_t in_dim() const noexcept { return in_dim_; }
  std::size_t out_dim() const noexcept { return out_dim_; }

 private:
  std::size_t in_dim_, out_dim_;
  bool apply_relu_;
  Param w_self_, w_neigh_, bias_;

  // Saved activations for backward (degrees live in the block's CSR).
  Tensor saved_x_dst_;   // (num_dst x in)
  Tensor saved_mean_;    // (num_dst x in)
  Tensor saved_out_;     // (num_dst x out), post-activation
};

}  // namespace moment::gnn
