#pragma once
// Graph Convolutional Network layer (Kipf & Welling) — the third model the
// paper's Fig. 8 lists as an AutoModule input. Symmetric-normalized
// aggregation over a block with implicit self loops:
//
//   h_i = act( sum_{j in N(i) u {i}}  x_j W / sqrt(d_i * d_j)  + b )
//
// where d are in-block degrees (+1 for the self loop). Full
// forward/backward.

#include "gnn/block.hpp"
#include "gnn/param.hpp"

namespace moment::gnn {

class GcnLayer final : public Module {
 public:
  GcnLayer(std::size_t in_dim, std::size_t out_dim, bool apply_relu,
           util::Pcg32& rng);

  Tensor forward(const Block& block, const Tensor& x_src);
  Tensor backward(const Block& block, const Tensor& grad_out);

  std::vector<Param*> parameters() override { return {&w_, &bias_}; }

  std::size_t in_dim() const noexcept { return in_dim_; }
  std::size_t out_dim() const noexcept { return out_dim_; }

 private:
  std::size_t in_dim_, out_dim_;
  bool apply_relu_;
  Param w_, bias_;

  Tensor saved_agg_;   // normalized aggregation (num_dst x in)
  Tensor saved_out_;   // post-activation
  /// Indexed by CSR edge id (block.compiled()), with the per-dst self-loop
  /// coefficients appended after the num_edges() edge entries.
  std::vector<float> saved_coeff_;
};

}  // namespace moment::gnn
