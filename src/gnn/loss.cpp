#include "gnn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace moment::gnn {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const std::int32_t> labels) {
  if (labels.size() != logits.rows()) {
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
  }
  const std::size_t n = logits.rows();
  const std::size_t k = logits.cols();
  LossResult result;
  result.grad_logits = logits;  // copy, then convert to probabilities
  softmax_rows(result.grad_logits);

  double loss = 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto label = static_cast<std::size_t>(labels[i]);
    if (label >= k) {
      throw std::out_of_range("softmax_cross_entropy: label out of range");
    }
    float* probs = result.grad_logits.data() + i * k;
    loss -= std::log(std::max(probs[label], 1e-12f));
    std::size_t argmax = 0;
    for (std::size_t c = 1; c < k; ++c) {
      if (probs[c] > probs[argmax]) argmax = c;
    }
    if (argmax == label) ++correct;
    // dL/dlogit = (p - onehot) / n
    probs[label] -= 1.0f;
  }
  const float inv_n = 1.0f / static_cast<float>(n);
  result.grad_logits *= inv_n;
  result.loss = static_cast<float>(loss) * inv_n;
  result.accuracy = static_cast<float>(correct) * inv_n;
  return result;
}

}  // namespace moment::gnn
