#include "gnn/gcn_layer.hpp"

#include <cmath>
#include <stdexcept>

#include "gnn/kernels.hpp"

namespace moment::gnn {

GcnLayer::GcnLayer(std::size_t in_dim, std::size_t out_dim, bool apply_relu,
                   util::Pcg32& rng)
    : in_dim_(in_dim), out_dim_(out_dim), apply_relu_(apply_relu),
      w_("w", Tensor::glorot(in_dim, out_dim, rng)),
      bias_("bias", Tensor::zeros(1, out_dim)) {}

Tensor GcnLayer::forward(const Block& block, const Tensor& x_src) {
  if (x_src.rows() != block.num_src() || x_src.cols() != in_dim_) {
    throw std::invalid_argument("GcnLayer::forward: x_src shape mismatch");
  }
  const CompiledBlock& cb = block.compiled();
  const std::size_t nd = block.num_dst();
  const std::size_t ne = cb.num_edges();

  // In-block degree (+1 self loop) per dst. A source that is also a dst uses
  // its dst degree; frontier-only sources count as degree 1 (their in-block
  // fan-in is not sampled).
  std::vector<double> deg(nd);
  for (std::size_t i = 0; i < nd; ++i) {
    deg[i] = 1.0 + static_cast<double>(cb.degree(i));
  }

  // Normalisation coefficients, indexed by CSR edge id (self coefficients
  // appended), so backward can replay them through the reverse CSR.
  saved_coeff_.assign(ne + nd, 0.0f);
  for (std::size_t i = 0; i < nd; ++i) {
    const int b = cb.dst_off[i], e = cb.dst_off[i + 1];
    for (int t = b; t < e; ++t) {
      const int sd = cb.src_to_dst[static_cast<std::size_t>(cb.src_of[t])];
      const double src_deg = sd >= 0 ? deg[static_cast<std::size_t>(sd)] : 1.0;
      saved_coeff_[static_cast<std::size_t>(t)] =
          static_cast<float>(1.0 / std::sqrt(deg[i] * src_deg));
    }
    // 1/sqrt(d_i * d_i) for the self loop.
    saved_coeff_[ne + i] = static_cast<float>(1.0 / deg[i]);
  }

  saved_agg_ = Tensor(nd, in_dim_);
  kernels::aggregate_coeff(cb, saved_coeff_.data(), saved_coeff_.data() + ne,
                           x_src.data(), in_dim_, saved_agg_.data());

  Tensor out(nd, out_dim_);
  matmul(saved_agg_, w_.value, out);
  add_bias(out, bias_.value);
  if (apply_relu_) relu(out);
  saved_out_ = out;
  return out;
}

Tensor GcnLayer::backward(const Block& block, const Tensor& grad_out) {
  if (grad_out.rows() != block.num_dst() || grad_out.cols() != out_dim_) {
    throw std::invalid_argument("GcnLayer::backward: grad shape mismatch");
  }
  const CompiledBlock& cb = block.compiled();
  Tensor grad = grad_out;
  if (apply_relu_) relu_backward(saved_out_, grad);

  matmul_at(saved_agg_, grad, w_.grad, /*accumulate=*/true);
  bias_grad(grad, bias_.grad);

  Tensor grad_agg(block.num_dst(), in_dim_);
  matmul_bt(grad, w_.value, grad_agg);

  Tensor grad_src(block.num_src(), in_dim_);
  kernels::aggregate_coeff_grad(cb, saved_coeff_.data(),
                                saved_coeff_.data() + cb.num_edges(),
                                grad_agg.data(), in_dim_, grad_src.data());
  return grad_src;
}

}  // namespace moment::gnn
