#include "gnn/gcn_layer.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace moment::gnn {

GcnLayer::GcnLayer(std::size_t in_dim, std::size_t out_dim, bool apply_relu,
                   util::Pcg32& rng)
    : in_dim_(in_dim), out_dim_(out_dim), apply_relu_(apply_relu),
      w_("w", Tensor::glorot(in_dim, out_dim, rng)),
      bias_("bias", Tensor::zeros(1, out_dim)) {}

std::vector<double> GcnLayer::dst_degree(const Block& block) const {
  std::vector<double> deg(block.num_dst(), 1.0);  // self loop
  for (const auto& [dst, src] : block.edges) {
    (void)src;
    deg[static_cast<std::size_t>(dst)] += 1.0;
  }
  return deg;
}

Tensor GcnLayer::forward(const Block& block, const Tensor& x_src) {
  if (x_src.rows() != block.num_src() || x_src.cols() != in_dim_) {
    throw std::invalid_argument("GcnLayer::forward: x_src shape mismatch");
  }
  const std::size_t nd = block.num_dst();
  const std::vector<double> deg = dst_degree(block);

  // Source-side degree: a source that is also a dst uses its dst degree;
  // frontier-only sources count as degree 1 (their in-block fan-in is not
  // sampled). Build the lookup once.
  std::unordered_map<int, std::size_t> src_to_dst;
  for (std::size_t i = 0; i < nd; ++i) {
    src_to_dst.emplace(block.dst_in_src[i], i);
  }
  auto src_deg = [&](int src_local) {
    const auto it = src_to_dst.find(src_local);
    return it == src_to_dst.end() ? 1.0 : deg[it->second];
  };

  saved_agg_ = Tensor(nd, in_dim_);
  saved_coeff_.assign(block.edges.size() + nd, 0.0f);
  for (std::size_t e = 0; e < block.edges.size(); ++e) {
    const auto [dst, src] = block.edges[e];
    const auto d = static_cast<std::size_t>(dst);
    const float c = static_cast<float>(
        1.0 / std::sqrt(deg[d] * src_deg(src)));
    saved_coeff_[e] = c;
    const auto row = x_src.row(static_cast<std::size_t>(src));
    auto agg = saved_agg_.row(d);
    for (std::size_t k = 0; k < in_dim_; ++k) agg[k] += c * row[k];
  }
  for (std::size_t i = 0; i < nd; ++i) {
    const float c = static_cast<float>(1.0 / deg[i]);  // 1/sqrt(d_i*d_i)
    saved_coeff_[block.edges.size() + i] = c;
    const auto row = x_src.row(static_cast<std::size_t>(block.dst_in_src[i]));
    auto agg = saved_agg_.row(i);
    for (std::size_t k = 0; k < in_dim_; ++k) agg[k] += c * row[k];
  }

  Tensor out(nd, out_dim_);
  matmul(saved_agg_, w_.value, out);
  add_bias(out, bias_.value);
  if (apply_relu_) relu(out);
  saved_out_ = out;
  return out;
}

Tensor GcnLayer::backward(const Block& block, const Tensor& grad_out) {
  if (grad_out.rows() != block.num_dst() || grad_out.cols() != out_dim_) {
    throw std::invalid_argument("GcnLayer::backward: grad shape mismatch");
  }
  Tensor grad = grad_out;
  if (apply_relu_) relu_backward(saved_out_, grad);

  matmul_at(saved_agg_, grad, w_.grad, /*accumulate=*/true);
  bias_grad(grad, bias_.grad);

  Tensor grad_agg(block.num_dst(), in_dim_);
  matmul_bt(grad, w_.value, grad_agg);

  Tensor grad_src(block.num_src(), in_dim_);
  for (std::size_t e = 0; e < block.edges.size(); ++e) {
    const auto [dst, src] = block.edges[e];
    const float c = saved_coeff_[e];
    const auto g = grad_agg.row(static_cast<std::size_t>(dst));
    auto out = grad_src.row(static_cast<std::size_t>(src));
    for (std::size_t k = 0; k < in_dim_; ++k) out[k] += c * g[k];
  }
  for (std::size_t i = 0; i < block.num_dst(); ++i) {
    const float c = saved_coeff_[block.edges.size() + i];
    const auto g = grad_agg.row(i);
    auto out = grad_src.row(static_cast<std::size_t>(block.dst_in_src[i]));
    for (std::size_t k = 0; k < in_dim_; ++k) out[k] += c * g[k];
  }
  return grad_src;
}

}  // namespace moment::gnn
