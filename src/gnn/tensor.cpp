#include "gnn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "gnn/kernels.hpp"

namespace moment::gnn {

Tensor Tensor::glorot(std::size_t rows, std::size_t cols, util::Pcg32& rng) {
  Tensor t(rows, cols);
  const float limit =
      std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t.data()[i] =
        static_cast<float>(rng.next_double(-limit, limit));
  }
  return t;
}

float Tensor::norm() const noexcept {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

Tensor& Tensor::operator+=(const Tensor& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Tensor::operator+=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) noexcept {
  for (float& v : data_) v *= s;
  return *this;
}

namespace {

void check_out(const Tensor& out, std::size_t m, std::size_t n) {
  if (out.rows() != m || out.cols() != n) {
    throw std::invalid_argument("matmul: output shape mismatch");
  }
}

}  // namespace

void matmul(const Tensor& a, const Tensor& b, Tensor& out, bool accumulate) {
  if (a.cols() != b.rows()) throw std::invalid_argument("matmul: inner dims");
  check_out(out, a.rows(), b.cols());
  kernels::gemm(a.rows(), a.cols(), b.cols(), a.data(), b.data(), out.data(),
                accumulate);
}

void matmul_bt(const Tensor& a, const Tensor& b, Tensor& out,
               bool accumulate) {
  if (a.cols() != b.cols()) throw std::invalid_argument("matmul_bt: dims");
  check_out(out, a.rows(), b.rows());
  kernels::gemm_bt(a.rows(), a.cols(), b.rows(), a.data(), b.data(),
                   out.data(), accumulate);
}

void matmul_at(const Tensor& a, const Tensor& b, Tensor& out,
               bool accumulate) {
  if (a.rows() != b.rows()) throw std::invalid_argument("matmul_at: dims");
  check_out(out, a.cols(), b.cols());
  kernels::gemm_at(a.rows(), a.cols(), b.cols(), a.data(), b.data(),
                   out.data(), accumulate);
}

void add_bias(Tensor& x, const Tensor& bias) {
  if (bias.rows() != 1 || bias.cols() != x.cols()) {
    throw std::invalid_argument("add_bias: shape mismatch");
  }
  for (std::size_t r = 0; r < x.rows(); ++r) {
    float* row = x.data() + r * x.cols();
    for (std::size_t c = 0; c < x.cols(); ++c) row[c] += bias.at(0, c);
  }
}

void bias_grad(const Tensor& grad, Tensor& grad_bias) {
  if (grad_bias.rows() != 1 || grad_bias.cols() != grad.cols()) {
    throw std::invalid_argument("bias_grad: shape mismatch");
  }
  for (std::size_t r = 0; r < grad.rows(); ++r) {
    const float* row = grad.data() + r * grad.cols();
    for (std::size_t c = 0; c < grad.cols(); ++c) {
      grad_bias.at(0, c) += row[c];
    }
  }
}

void relu(Tensor& x) noexcept {
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = std::max(0.0f, x.data()[i]);
  }
}

void relu_backward(const Tensor& activated, Tensor& grad) noexcept {
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (activated.data()[i] <= 0.0f) grad.data()[i] = 0.0f;
  }
}

float leaky_relu_scalar(float x, float slope) noexcept {
  return x > 0.0f ? x : slope * x;
}

void softmax_rows(Tensor& x) noexcept {
  for (std::size_t r = 0; r < x.rows(); ++r) {
    float* row = x.data() + r * x.cols();
    float mx = row[0];
    for (std::size_t c = 1; c < x.cols(); ++c) mx = std::max(mx, row[c]);
    float sum = 0.0f;
    for (std::size_t c = 0; c < x.cols(); ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    const float inv = 1.0f / sum;
    for (std::size_t c = 0; c < x.cols(); ++c) row[c] *= inv;
  }
}

}  // namespace moment::gnn
