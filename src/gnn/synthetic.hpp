#pragma once
// Synthetic node-classification task for the UK/CL-style datasets whose
// features the paper generates manually: class-centroid features plus noise,
// with labels assigned in contiguous vertex ranges (RMAT locality makes
// neighborhoods label-correlated, so GNN training measurably learns).

#include <cstdint>
#include <vector>

#include "gnn/tensor.hpp"
#include "graph/csr.hpp"

namespace moment::gnn {

struct SyntheticTask {
  std::vector<std::int32_t> labels;  // per vertex
  Tensor features;                   // (num_vertices x dim)
  std::size_t num_classes = 0;
};

SyntheticTask make_synthetic_task(const graph::CsrGraph& graph,
                                  std::size_t num_classes, std::size_t dim,
                                  double noise_stddev, std::uint64_t seed);

}  // namespace moment::gnn
