#include "gnn/gat_layer.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace moment::gnn {

float elu_scalar(float x) noexcept {
  return x > 0.0f ? x : std::expm1(x);
}

float elu_grad_from_out(float out) noexcept {
  // For ELU(alpha=1): d/dx = 1 if x > 0 else exp(x) = out + 1.
  return out > 0.0f ? 1.0f : out + 1.0f;
}

GatLayer::GatLayer(std::size_t in_dim, std::size_t num_heads,
                   std::size_t head_dim, bool apply_elu, util::Pcg32& rng)
    : in_dim_(in_dim), num_heads_(num_heads), head_dim_(head_dim),
      apply_elu_(apply_elu),
      w_("w", Tensor::glorot(in_dim, num_heads * head_dim, rng)),
      attn_l_("attn_l", Tensor::glorot(num_heads, head_dim, rng)),
      attn_r_("attn_r", Tensor::glorot(num_heads, head_dim, rng)),
      bias_("bias", Tensor::zeros(1, num_heads * head_dim)) {}

Tensor GatLayer::forward(const Block& block, const Tensor& x_src) {
  if (x_src.rows() != block.num_src() || x_src.cols() != in_dim_) {
    throw std::invalid_argument("GatLayer::forward: x_src shape mismatch");
  }
  const std::size_t nd = block.num_dst();
  const std::size_t ne = block.edges.size();
  const std::size_t od = out_dim();

  saved_x_src_ = x_src;
  saved_z_ = Tensor(block.num_src(), od);
  matmul(x_src, w_.value, saved_z_);

  edges_by_dst_.assign(nd, {});
  for (std::size_t e = 0; e < ne; ++e) {
    edges_by_dst_[static_cast<std::size_t>(block.edges[e].first)].push_back(
        static_cast<int>(e));
  }

  saved_score_.assign(ne * num_heads_, 0.0f);
  saved_alpha_.assign(ne * num_heads_, 0.0f);
  saved_pre_ = Tensor(nd, od);

  for (std::size_t h = 0; h < num_heads_; ++h) {
    const std::size_t off = h * head_dim_;
    // Per-vertex attention projections a_l . z and a_r . z.
    std::vector<float> proj_l(block.num_src()), proj_r(block.num_src());
    for (std::size_t v = 0; v < block.num_src(); ++v) {
      const float* z = saved_z_.data() + v * od + off;
      float pl = 0.0f, pr = 0.0f;
      for (std::size_t c = 0; c < head_dim_; ++c) {
        pl += attn_l_.value.at(h, c) * z[c];
        pr += attn_r_.value.at(h, c) * z[c];
      }
      proj_l[v] = pl;
      proj_r[v] = pr;
    }

    for (std::size_t i = 0; i < nd; ++i) {
      const auto self = static_cast<std::size_t>(block.dst_in_src[i]);
      const auto& edge_list = edges_by_dst_[i];
      if (edge_list.empty()) continue;
      // Scores, with numeric-stability max subtraction inside the softmax.
      float mx = -std::numeric_limits<float>::infinity();
      for (int e : edge_list) {
        const auto src =
            static_cast<std::size_t>(block.edges[static_cast<std::size_t>(e)].second);
        const float s = proj_l[self] + proj_r[src];
        saved_score_[static_cast<std::size_t>(e) * num_heads_ + h] = s;
        mx = std::max(mx, leaky_relu_scalar(s, kLeakySlope));
      }
      float denom = 0.0f;
      for (int e : edge_list) {
        const float s =
            saved_score_[static_cast<std::size_t>(e) * num_heads_ + h];
        const float a = std::exp(leaky_relu_scalar(s, kLeakySlope) - mx);
        saved_alpha_[static_cast<std::size_t>(e) * num_heads_ + h] = a;
        denom += a;
      }
      const float inv = 1.0f / denom;
      float* out = saved_pre_.data() + i * od + off;
      for (int e : edge_list) {
        const auto ei = static_cast<std::size_t>(e);
        saved_alpha_[ei * num_heads_ + h] *= inv;
        const float a = saved_alpha_[ei * num_heads_ + h];
        const auto src = static_cast<std::size_t>(block.edges[ei].second);
        const float* z = saved_z_.data() + src * od + off;
        for (std::size_t c = 0; c < head_dim_; ++c) out[c] += a * z[c];
      }
    }
  }

  add_bias(saved_pre_, bias_.value);
  Tensor out = saved_pre_;
  if (apply_elu_) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out.data()[i] = elu_scalar(out.data()[i]);
    }
  }
  saved_pre_ = out;  // keep post-activation for the ELU derivative
  return out;
}

Tensor GatLayer::backward(const Block& block, const Tensor& grad_out) {
  const std::size_t nd = block.num_dst();
  const std::size_t od = out_dim();
  if (grad_out.rows() != nd || grad_out.cols() != od) {
    throw std::invalid_argument("GatLayer::backward: grad shape mismatch");
  }
  Tensor grad = grad_out;
  if (apply_elu_) {
    for (std::size_t i = 0; i < grad.size(); ++i) {
      grad.data()[i] *= elu_grad_from_out(saved_pre_.data()[i]);
    }
  }
  bias_grad(grad, bias_.grad);

  Tensor grad_z(block.num_src(), od);

  for (std::size_t h = 0; h < num_heads_; ++h) {
    const std::size_t off = h * head_dim_;

    // Recompute per-vertex projections (cheap, avoids storing them).
    std::vector<float> proj_grad_l(block.num_src(), 0.0f);
    std::vector<float> proj_grad_r(block.num_src(), 0.0f);

    for (std::size_t i = 0; i < nd; ++i) {
      const auto& edge_list = edges_by_dst_[i];
      if (edge_list.empty()) continue;
      const float* g = grad.data() + i * od + off;

      // d alpha_e = g . z_src ; softmax backward needs sum_k alpha_k dalpha_k.
      float weighted = 0.0f;
      std::vector<float> dalpha(edge_list.size());
      for (std::size_t k = 0; k < edge_list.size(); ++k) {
        const auto ei = static_cast<std::size_t>(edge_list[k]);
        const auto src = static_cast<std::size_t>(block.edges[ei].second);
        const float* z = saved_z_.data() + src * od + off;
        float da = 0.0f;
        for (std::size_t c = 0; c < head_dim_; ++c) da += g[c] * z[c];
        dalpha[k] = da;
        weighted += saved_alpha_[ei * num_heads_ + h] * da;
        // dZ_src += alpha * g (the aggregation term).
        float* gz = grad_z.data() + src * od + off;
        const float a = saved_alpha_[ei * num_heads_ + h];
        for (std::size_t c = 0; c < head_dim_; ++c) gz[c] += a * g[c];
      }

      const auto self = static_cast<std::size_t>(block.dst_in_src[i]);
      for (std::size_t k = 0; k < edge_list.size(); ++k) {
        const auto ei = static_cast<std::size_t>(edge_list[k]);
        const float a = saved_alpha_[ei * num_heads_ + h];
        const float de = a * (dalpha[k] - weighted);  // softmax backward
        const float s = saved_score_[ei * num_heads_ + h];
        const float ds = de * (s > 0.0f ? 1.0f : kLeakySlope);
        proj_grad_l[self] += ds;
        const auto src = static_cast<std::size_t>(block.edges[ei].second);
        proj_grad_r[src] += ds;
      }
    }

    // proj_l = attn_l . z  =>  d attn_l += sum_v proj_grad_l[v] * z_v,
    //                          dZ_v     += proj_grad_l[v] * attn_l.
    for (std::size_t v = 0; v < block.num_src(); ++v) {
      const float gl = proj_grad_l[v];
      const float gr = proj_grad_r[v];
      if (gl == 0.0f && gr == 0.0f) continue;
      const float* z = saved_z_.data() + v * od + off;
      float* gz = grad_z.data() + v * od + off;
      for (std::size_t c = 0; c < head_dim_; ++c) {
        attn_l_.grad.at(h, c) += gl * z[c];
        attn_r_.grad.at(h, c) += gr * z[c];
        gz[c] += gl * attn_l_.value.at(h, c) + gr * attn_r_.value.at(h, c);
      }
    }
  }

  // Z = X W: accumulate dW and dX.
  matmul_at(saved_x_src_, grad_z, w_.grad, /*accumulate=*/true);
  Tensor grad_x(block.num_src(), in_dim_);
  matmul_bt(grad_z, w_.value, grad_x);
  return grad_x;
}

}  // namespace moment::gnn
