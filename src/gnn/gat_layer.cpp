#include "gnn/gat_layer.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "gnn/kernels.hpp"
#include "util/thread_pool.hpp"

namespace moment::gnn {

float elu_scalar(float x) noexcept {
  return x > 0.0f ? x : std::expm1(x);
}

float elu_grad_from_out(float out) noexcept {
  // For ELU(alpha=1): d/dx = 1 if x > 0 else exp(x) = out + 1.
  return out > 0.0f ? 1.0f : out + 1.0f;
}

GatLayer::GatLayer(std::size_t in_dim, std::size_t num_heads,
                   std::size_t head_dim, bool apply_elu, util::Pcg32& rng)
    : in_dim_(in_dim), num_heads_(num_heads), head_dim_(head_dim),
      apply_elu_(apply_elu),
      w_("w", Tensor::glorot(in_dim, num_heads * head_dim, rng)),
      attn_l_("attn_l", Tensor::glorot(num_heads, head_dim, rng)),
      attn_r_("attn_r", Tensor::glorot(num_heads, head_dim, rng)),
      bias_("bias", Tensor::zeros(1, num_heads * head_dim)) {}

void GatLayer::project_head(std::size_t h, std::vector<float>& pl,
                            std::vector<float>& pr) const {
  const std::size_t ns = saved_z_.rows();
  const std::size_t od = out_dim();
  const std::size_t off = h * head_dim_;
  const float* al = attn_l_.value.data() + h * head_dim_;
  const float* ar = attn_r_.value.data() + h * head_dim_;
  pl.resize(ns);
  pr.resize(ns);
  util::parallel_for(
      util::compute_pool(), 0, ns, kernels::kRowGrain * 4,
      [&](std::size_t v0, std::size_t v1) {
        for (std::size_t v = v0; v < v1; ++v) {
          const float* z = saved_z_.data() + v * od + off;
          float l = 0.0f, r = 0.0f;
          for (std::size_t c = 0; c < head_dim_; ++c) {
            l += al[c] * z[c];
            r += ar[c] * z[c];
          }
          pl[v] = l;
          pr[v] = r;
        }
      });
}

Tensor GatLayer::forward(const Block& block, const Tensor& x_src) {
  if (x_src.rows() != block.num_src() || x_src.cols() != in_dim_) {
    throw std::invalid_argument("GatLayer::forward: x_src shape mismatch");
  }
  const CompiledBlock& cb = block.compiled();
  const std::size_t nd = block.num_dst();
  const std::size_t ne = cb.num_edges();
  const std::size_t od = out_dim();

  saved_x_src_ = x_src;
  saved_z_ = Tensor(block.num_src(), od);
  matmul(x_src, w_.value, saved_z_);

  // Per-(CSR edge, head) attention state, interleaved head-minor so each
  // head's kernel call strides by num_heads_.
  saved_score_.assign(ne * num_heads_, 0.0f);
  saved_alpha_.assign(ne * num_heads_, 0.0f);
  saved_pre_ = Tensor(nd, od);

  std::vector<float> pl, pr, el(nd);
  for (std::size_t h = 0; h < num_heads_; ++h) {
    const std::size_t off = h * head_dim_;
    project_head(h, pl, pr);
    for (std::size_t i = 0; i < nd; ++i) {
      el[i] = pl[static_cast<std::size_t>(cb.self_src[i])];
    }
    kernels::gat_attention_forward(
        cb, el.data(), pr.data(), saved_z_.data() + off, od, head_dim_,
        kLeakySlope, num_heads_, saved_score_.data() + h,
        saved_alpha_.data() + h, saved_pre_.data() + off);
  }

  add_bias(saved_pre_, bias_.value);
  Tensor out = saved_pre_;
  if (apply_elu_) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out.data()[i] = elu_scalar(out.data()[i]);
    }
  }
  saved_pre_ = out;  // keep post-activation for the ELU derivative
  return out;
}

Tensor GatLayer::backward(const Block& block, const Tensor& grad_out) {
  const CompiledBlock& cb = block.compiled();
  const std::size_t nd = block.num_dst();
  const std::size_t ne = cb.num_edges();
  const std::size_t ns = block.num_src();
  const std::size_t od = out_dim();
  if (grad_out.rows() != nd || grad_out.cols() != od) {
    throw std::invalid_argument("GatLayer::backward: grad shape mismatch");
  }
  Tensor grad = grad_out;
  if (apply_elu_) {
    for (std::size_t i = 0; i < grad.size(); ++i) {
      grad.data()[i] *= elu_grad_from_out(saved_pre_.data()[i]);
    }
  }
  bias_grad(grad, bias_.grad);

  Tensor grad_z(ns, od);
  std::vector<float> ds(ne * num_heads_, 0.0f);
  std::vector<float> del(nd), der(ns);

  for (std::size_t h = 0; h < num_heads_; ++h) {
    const std::size_t off = h * head_dim_;
    const float* g = grad.data() + off;
    const float* z = saved_z_.data() + off;

    // Pass 1 (parallel over dst): per-edge score gradient + per-dst logit
    // gradient. Pass 2 (parallel over src): aggregation term into grad_z and
    // the per-src logit gradient.
    kernels::gat_attention_backward_dst(cb, g, z, od, head_dim_, kLeakySlope,
                                        num_heads_, saved_score_.data() + h,
                                        saved_alpha_.data() + h, ds.data() + h,
                                        del.data());
    kernels::gat_attention_backward_src(cb, g, od, head_dim_, num_heads_,
                                        saved_alpha_.data() + h, ds.data() + h,
                                        der.data(), grad_z.data() + off);

    // el[i] = attn_l . z[self];  er[v] = attn_r . z[v]. Fold the logit
    // gradients into attn grads and grad_z. Serial: O((nd + ns) * head_dim).
    const float* al = attn_l_.value.data() + h * head_dim_;
    const float* ar = attn_r_.value.data() + h * head_dim_;
    float* gal = attn_l_.grad.data() + h * head_dim_;
    float* gar = attn_r_.grad.data() + h * head_dim_;
    for (std::size_t i = 0; i < nd; ++i) {
      const float gl = del[i];
      if (gl == 0.0f) continue;
      const auto self = static_cast<std::size_t>(cb.self_src[i]);
      const float* zr = z + self * od;
      float* gz = grad_z.data() + self * od + off;
      for (std::size_t c = 0; c < head_dim_; ++c) {
        gal[c] += gl * zr[c];
        gz[c] += gl * al[c];
      }
    }
    for (std::size_t v = 0; v < ns; ++v) {
      const float gr = der[v];
      if (gr == 0.0f) continue;
      const float* zr = z + v * od;
      float* gz = grad_z.data() + v * od + off;
      for (std::size_t c = 0; c < head_dim_; ++c) {
        gar[c] += gr * zr[c];
        gz[c] += gr * ar[c];
      }
    }
  }

  // Z = X W: accumulate dW and dX.
  matmul_at(saved_x_src_, grad_z, w_.grad, /*accumulate=*/true);
  Tensor grad_x(ns, in_dim_);
  matmul_bt(grad_z, w_.value, grad_x);
  return grad_x;
}

}  // namespace moment::gnn
