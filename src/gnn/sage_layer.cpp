#include "gnn/sage_layer.hpp"

#include <stdexcept>

namespace moment::gnn {

SageLayer::SageLayer(std::size_t in_dim, std::size_t out_dim, bool apply_relu,
                     util::Pcg32& rng)
    : in_dim_(in_dim), out_dim_(out_dim), apply_relu_(apply_relu),
      w_self_("w_self", Tensor::glorot(in_dim, out_dim, rng)),
      w_neigh_("w_neigh", Tensor::glorot(in_dim, out_dim, rng)),
      bias_("bias", Tensor::zeros(1, out_dim)) {}

Tensor SageLayer::forward(const Block& block, const Tensor& x_src) {
  if (x_src.rows() != block.num_src() || x_src.cols() != in_dim_) {
    throw std::invalid_argument("SageLayer::forward: x_src shape mismatch");
  }
  const std::size_t nd = block.num_dst();

  // Gather self features and compute neighbor means.
  saved_x_dst_ = Tensor(nd, in_dim_);
  saved_mean_ = Tensor(nd, in_dim_);
  std::vector<std::size_t> degree(nd, 0);
  for (std::size_t i = 0; i < nd; ++i) {
    const auto src_row =
        x_src.row(static_cast<std::size_t>(block.dst_in_src[i]));
    std::copy(src_row.begin(), src_row.end(), saved_x_dst_.row(i).begin());
  }
  for (const auto& [dst, src] : block.edges) {
    const auto d = static_cast<std::size_t>(dst);
    const auto src_row = x_src.row(static_cast<std::size_t>(src));
    auto mean_row = saved_mean_.row(d);
    for (std::size_t c = 0; c < in_dim_; ++c) mean_row[c] += src_row[c];
    ++degree[d];
  }
  saved_inv_degree_.assign(nd, 0.0f);
  for (std::size_t i = 0; i < nd; ++i) {
    if (degree[i] > 0) {
      saved_inv_degree_[i] = 1.0f / static_cast<float>(degree[i]);
      auto mean_row = saved_mean_.row(i);
      for (std::size_t c = 0; c < in_dim_; ++c) {
        mean_row[c] *= saved_inv_degree_[i];
      }
    }
  }

  Tensor out(nd, out_dim_);
  matmul(saved_x_dst_, w_self_.value, out);
  matmul(saved_mean_, w_neigh_.value, out, /*accumulate=*/true);
  add_bias(out, bias_.value);
  if (apply_relu_) relu(out);
  saved_out_ = out;
  return out;
}

Tensor SageLayer::backward(const Block& block, const Tensor& grad_out) {
  if (grad_out.rows() != block.num_dst() || grad_out.cols() != out_dim_) {
    throw std::invalid_argument("SageLayer::backward: grad shape mismatch");
  }
  Tensor grad = grad_out;
  if (apply_relu_) relu_backward(saved_out_, grad);

  // Parameter gradients.
  matmul_at(saved_x_dst_, grad, w_self_.grad, /*accumulate=*/true);
  matmul_at(saved_mean_, grad, w_neigh_.grad, /*accumulate=*/true);
  bias_grad(grad, bias_.grad);

  // Input gradients: self part scatters to dst positions; neighbor part
  // scatters grad @ W_neigh^T / degree along edges.
  Tensor grad_self(block.num_dst(), in_dim_);
  matmul_bt(grad, w_self_.value, grad_self);
  Tensor grad_mean(block.num_dst(), in_dim_);
  matmul_bt(grad, w_neigh_.value, grad_mean);

  Tensor grad_src(block.num_src(), in_dim_);
  for (std::size_t i = 0; i < block.num_dst(); ++i) {
    auto dst_row = grad_src.row(static_cast<std::size_t>(block.dst_in_src[i]));
    const auto g = grad_self.row(i);
    for (std::size_t c = 0; c < in_dim_; ++c) dst_row[c] += g[c];
  }
  for (const auto& [dst, src] : block.edges) {
    const auto d = static_cast<std::size_t>(dst);
    const float inv = saved_inv_degree_[d];
    if (inv == 0.0f) continue;
    auto src_row = grad_src.row(static_cast<std::size_t>(src));
    const auto g = grad_mean.row(d);
    for (std::size_t c = 0; c < in_dim_; ++c) src_row[c] += inv * g[c];
  }
  return grad_src;
}

}  // namespace moment::gnn
