#include "gnn/sage_layer.hpp"

#include <stdexcept>

#include "gnn/kernels.hpp"

namespace moment::gnn {

SageLayer::SageLayer(std::size_t in_dim, std::size_t out_dim, bool apply_relu,
                     util::Pcg32& rng)
    : in_dim_(in_dim), out_dim_(out_dim), apply_relu_(apply_relu),
      w_self_("w_self", Tensor::glorot(in_dim, out_dim, rng)),
      w_neigh_("w_neigh", Tensor::glorot(in_dim, out_dim, rng)),
      bias_("bias", Tensor::zeros(1, out_dim)) {}

Tensor SageLayer::forward(const Block& block, const Tensor& x_src) {
  if (x_src.rows() != block.num_src() || x_src.cols() != in_dim_) {
    throw std::invalid_argument("SageLayer::forward: x_src shape mismatch");
  }
  const CompiledBlock& cb = block.compiled();
  const std::size_t nd = block.num_dst();

  saved_x_dst_ = Tensor(nd, in_dim_);
  kernels::gather_rows(cb.self_src.data(), nd, x_src.data(), in_dim_,
                       saved_x_dst_.data());
  saved_mean_ = Tensor(nd, in_dim_);
  kernels::aggregate_mean(cb, x_src.data(), in_dim_, saved_mean_.data());

  Tensor out(nd, out_dim_);
  matmul(saved_x_dst_, w_self_.value, out);
  matmul(saved_mean_, w_neigh_.value, out, /*accumulate=*/true);
  add_bias(out, bias_.value);
  if (apply_relu_) relu(out);
  saved_out_ = out;
  return out;
}

Tensor SageLayer::backward(const Block& block, const Tensor& grad_out) {
  if (grad_out.rows() != block.num_dst() || grad_out.cols() != out_dim_) {
    throw std::invalid_argument("SageLayer::backward: grad shape mismatch");
  }
  const CompiledBlock& cb = block.compiled();
  Tensor grad = grad_out;
  if (apply_relu_) relu_backward(saved_out_, grad);

  // Parameter gradients.
  matmul_at(saved_x_dst_, grad, w_self_.grad, /*accumulate=*/true);
  matmul_at(saved_mean_, grad, w_neigh_.grad, /*accumulate=*/true);
  bias_grad(grad, bias_.grad);

  // Input gradients: the self part lands on each dst's own src row, the
  // neighbor part fans grad @ W_neigh^T / degree back along the reverse CSR
  // (race-free over src rows).
  Tensor grad_self(block.num_dst(), in_dim_);
  matmul_bt(grad, w_self_.value, grad_self);
  Tensor grad_mean(block.num_dst(), in_dim_);
  matmul_bt(grad, w_neigh_.value, grad_mean);

  Tensor grad_src(block.num_src(), in_dim_);
  kernels::sage_input_grad(cb, grad_self.data(), grad_mean.data(), in_dim_,
                           grad_src.data());
  return grad_src;
}

}  // namespace moment::gnn
