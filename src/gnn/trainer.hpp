#pragma once
// Single-GPU training step: sample -> gather features -> forward -> loss ->
// backward -> optimizer step. The multi-GPU data-parallel loop (runtime
// module) wraps this with gradient averaging.

#include <cstdint>
#include <span>

#include "gnn/features.hpp"
#include "gnn/loss.hpp"
#include "gnn/model.hpp"
#include "gnn/optimizer.hpp"
#include "sampling/neighbor_sampler.hpp"

namespace moment::gnn {

struct TrainStepResult {
  float loss = 0.0f;
  float accuracy = 0.0f;
  std::size_t fetched_vertices = 0;  // feature gathers (traffic proxy)
  std::size_t sampled_edges = 0;
};

class Trainer {
 public:
  Trainer(GnnModel& model, Optimizer& optimizer, FeatureProvider& features)
      : model_(model), optimizer_(optimizer), features_(features) {}

  /// Runs one optimisation step on a sampled subgraph. `labels` indexes by
  /// global vertex id.
  TrainStepResult step(const sampling::SampledSubgraph& sg,
                       std::span<const std::int32_t> labels);

  /// Forward-only evaluation on a sampled subgraph.
  TrainStepResult evaluate(const sampling::SampledSubgraph& sg,
                           std::span<const std::int32_t> labels);

 private:
  TrainStepResult run(const sampling::SampledSubgraph& sg,
                      std::span<const std::int32_t> labels, bool train);

  GnnModel& model_;
  Optimizer& optimizer_;
  FeatureProvider& features_;
};

}  // namespace moment::gnn
