#pragma once
// Optimizers: SGD (+momentum) and Adam, operating on registered Params.

#include <vector>

#include "gnn/param.hpp"

namespace moment::gnn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Param*> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void step() = 0;
  void zero_grad() {
    for (Param* p : params_) p->zero_grad();
  }

 protected:
  std::vector<Param*> params_;
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Param*> params, float lr, float momentum = 0.0f);
  void step() override;

 private:
  float lr_, momentum_;
  std::vector<Tensor> velocity_;
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<Param*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void step() override;

 private:
  float lr_, beta1_, beta2_, eps_;
  std::vector<Tensor> m_, v_;
  std::int64_t t_ = 0;
};

}  // namespace moment::gnn
