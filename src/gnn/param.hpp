#pragma once
// Trainable parameter: value + gradient, registered with an optimizer.

#include <string>
#include <vector>

#include "gnn/tensor.hpp"

namespace moment::gnn {

struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  Param() = default;
  Param(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)),
        grad(value.rows(), value.cols()) {}

  void zero_grad() noexcept { grad.zero(); }
};

/// Anything with trainable parameters.
class Module {
 public:
  virtual ~Module() = default;
  virtual std::vector<Param*> parameters() = 0;

  void zero_grad() {
    for (Param* p : parameters()) p->zero_grad();
  }
};

}  // namespace moment::gnn
