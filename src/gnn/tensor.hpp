#pragma once
// Minimal dense 2-D float tensor for the CPU GNN substrate. Row-major,
// value-semantic, with the handful of BLAS-ish kernels the GraphSAGE/GAT
// layers need. Deliberately small: this is the training substrate the
// paper's system runs on top of, not a general ML framework.

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace moment::gnn {

class Tensor {
 public:
  Tensor() = default;
  Tensor(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  static Tensor zeros(std::size_t rows, std::size_t cols) {
    return Tensor(rows, cols);
  }
  /// Glorot/Xavier-uniform initialisation.
  static Tensor glorot(std::size_t rows, std::size_t cols, util::Pcg32& rng);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }

  float& at(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float at(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::span<float> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const float> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  void fill(float v) noexcept { std::fill(data_.begin(), data_.end(), v); }
  void zero() noexcept { fill(0.0f); }

  /// Frobenius norm; used by gradient-check tests and clipping.
  float norm() const noexcept;

  Tensor& operator+=(const Tensor& other);
  Tensor& operator*=(float s) noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// out = a @ b. Shapes (m,k) x (k,n) -> (m,n). `accumulate` adds into out.
void matmul(const Tensor& a, const Tensor& b, Tensor& out,
            bool accumulate = false);
/// out = a @ b^T. Shapes (m,k) x (n,k) -> (m,n).
void matmul_bt(const Tensor& a, const Tensor& b, Tensor& out,
               bool accumulate = false);
/// out = a^T @ b. Shapes (m,k) x (m,n) -> (k,n).
void matmul_at(const Tensor& a, const Tensor& b, Tensor& out,
               bool accumulate = false);

/// Adds `bias` (1 x n) to every row of `x` (m x n) in place.
void add_bias(Tensor& x, const Tensor& bias);
/// grad_bias (1 x n) += column sums of grad (m x n).
void bias_grad(const Tensor& grad, Tensor& grad_bias);

void relu(Tensor& x) noexcept;
/// grad *= 1[activation > 0], where `activated` is the post-ReLU tensor.
void relu_backward(const Tensor& activated, Tensor& grad) noexcept;

float leaky_relu_scalar(float x, float slope) noexcept;

/// Row-wise softmax in place.
void softmax_rows(Tensor& x) noexcept;

}  // namespace moment::gnn
