#pragma once
// GNN models assembled from layers, with the paper's two configurations:
// GraphSAGE (hidden 256) and GAT (hidden 64, 8 heads), both 2-hop.

#include <memory>
#include <span>
#include <vector>

#include "gnn/block.hpp"
#include "gnn/gat_layer.hpp"
#include "gnn/gcn_layer.hpp"
#include "gnn/param.hpp"
#include "gnn/sage_layer.hpp"

namespace moment::gnn {

/// Polymorphic layer interface so models can mix layer types.
class GnnLayer : public Module {
 public:
  virtual Tensor forward(const Block& block, const Tensor& x_src) = 0;
  virtual Tensor backward(const Block& block, const Tensor& grad_out) = 0;
  virtual std::size_t out_dim() const = 0;
};

class SageGnnLayer final : public GnnLayer {
 public:
  SageGnnLayer(std::size_t in, std::size_t out, bool relu, util::Pcg32& rng)
      : layer_(in, out, relu, rng) {}
  Tensor forward(const Block& b, const Tensor& x) override {
    return layer_.forward(b, x);
  }
  Tensor backward(const Block& b, const Tensor& g) override {
    return layer_.backward(b, g);
  }
  std::vector<Param*> parameters() override { return layer_.parameters(); }
  std::size_t out_dim() const override { return layer_.out_dim(); }

 private:
  SageLayer layer_;
};

class GatGnnLayer final : public GnnLayer {
 public:
  GatGnnLayer(std::size_t in, std::size_t heads, std::size_t head_dim,
              bool elu, util::Pcg32& rng)
      : layer_(in, heads, head_dim, elu, rng) {}
  Tensor forward(const Block& b, const Tensor& x) override {
    return layer_.forward(b, x);
  }
  Tensor backward(const Block& b, const Tensor& g) override {
    return layer_.backward(b, g);
  }
  std::vector<Param*> parameters() override { return layer_.parameters(); }
  std::size_t out_dim() const override { return layer_.out_dim(); }

 private:
  GatLayer layer_;
};

class GcnGnnLayer final : public GnnLayer {
 public:
  GcnGnnLayer(std::size_t in, std::size_t out, bool relu, util::Pcg32& rng)
      : layer_(in, out, relu, rng) {}
  Tensor forward(const Block& b, const Tensor& x) override {
    return layer_.forward(b, x);
  }
  Tensor backward(const Block& b, const Tensor& g) override {
    return layer_.backward(b, g);
  }
  std::vector<Param*> parameters() override { return layer_.parameters(); }
  std::size_t out_dim() const override { return layer_.out_dim(); }

 private:
  GcnLayer layer_;
};

enum class ModelKind { kGraphSage, kGat, kGcn };

struct ModelConfig {
  ModelKind kind = ModelKind::kGraphSage;
  std::size_t in_dim = 64;
  std::size_t hidden_dim = 256;  // paper: 256 for GraphSAGE, 64 for GAT
  std::size_t num_classes = 16;
  std::size_t num_hops = 2;
  std::size_t gat_heads = 8;
  std::uint64_t seed = 1;
};

/// A stack of GNN layers matching a block sequence of length num_hops.
class GnnModel final : public Module {
 public:
  explicit GnnModel(const ModelConfig& config);

  /// blocks.size() must equal num_hops. x0: features of blocks[0].src_ids.
  Tensor forward(std::span<const Block> blocks, const Tensor& x0);
  /// grad w.r.t. forward's output; backpropagates and accumulates grads.
  void backward(std::span<const Block> blocks, const Tensor& grad_out);

  std::vector<Param*> parameters() override;
  /// Read-only view of the parameters (e.g. for DDP sync checks).
  std::vector<const Param*> parameters() const;
  const ModelConfig& config() const noexcept { return config_; }
  std::size_t num_parameters() const;

 private:
  ModelConfig config_;
  std::vector<std::unique_ptr<GnnLayer>> layers_;
};

}  // namespace moment::gnn
