#include "gnn/block.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace moment::gnn {

std::vector<Block> build_blocks(const sampling::SampledSubgraph& sg) {
  const std::size_t hops = sg.layers.size();
  std::vector<Block> blocks(hops);

  for (std::size_t k = 0; k < hops; ++k) {
    const auto& layer = sg.layers[hops - 1 - k];
    Block& block = blocks[k];
    block.dst_ids = layer.dst_vertices;  // already sorted by the sampler

    // src set = dst set plus every edge source.
    std::vector<VertexId> srcs = block.dst_ids;
    for (const auto& [dst, src] : layer.edges) {
      (void)dst;
      srcs.push_back(src);
    }
    std::sort(srcs.begin(), srcs.end());
    srcs.erase(std::unique(srcs.begin(), srcs.end()), srcs.end());
    block.src_ids = std::move(srcs);

    std::unordered_map<VertexId, int> src_index;
    src_index.reserve(block.src_ids.size() * 2);
    for (std::size_t i = 0; i < block.src_ids.size(); ++i) {
      src_index.emplace(block.src_ids[i], static_cast<int>(i));
    }
    std::unordered_map<VertexId, int> dst_index;
    dst_index.reserve(block.dst_ids.size() * 2);
    block.dst_in_src.resize(block.dst_ids.size());
    for (std::size_t i = 0; i < block.dst_ids.size(); ++i) {
      dst_index.emplace(block.dst_ids[i], static_cast<int>(i));
      block.dst_in_src[i] = src_index.at(block.dst_ids[i]);
    }

    block.edges.reserve(layer.edges.size());
    for (const auto& [dst, src] : layer.edges) {
      block.edges.emplace_back(dst_index.at(dst), src_index.at(src));
    }
  }

  // Sanity: consecutive blocks must chain (next block's srcs are produced by
  // this block's dsts).
  for (std::size_t k = 0; k + 1 < blocks.size(); ++k) {
    if (!std::includes(blocks[k].dst_ids.begin(), blocks[k].dst_ids.end(),
                       blocks[k + 1].src_ids.begin(),
                       blocks[k + 1].src_ids.end())) {
      throw std::logic_error("build_blocks: block chaining violated");
    }
  }
  return blocks;
}

}  // namespace moment::gnn
