#include "gnn/block.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace moment::gnn {

CompiledBlock compile_block(const Block& block) {
  const std::size_t nd = block.num_dst();
  const std::size_t ns = block.num_src();
  const std::size_t ne = block.edges.size();

  CompiledBlock cb;
  cb.dst_off.assign(nd + 1, 0);
  cb.src_of.resize(ne);
  cb.inv_deg.assign(nd, 0.0f);
  cb.src_off.assign(ns + 1, 0);
  cb.rev_edge.resize(ne);
  cb.dst_of.resize(ne);
  cb.src_to_dst.assign(ns, -1);
  cb.self_src.assign(nd, 0);

  for (const auto& [dst, src] : block.edges) {
    if (dst < 0 || static_cast<std::size_t>(dst) >= nd || src < 0 ||
        static_cast<std::size_t>(src) >= ns) {
      throw std::out_of_range("compile_block: edge endpoint out of range");
    }
    ++cb.dst_off[static_cast<std::size_t>(dst) + 1];
  }
  for (std::size_t i = 0; i < nd; ++i) cb.dst_off[i + 1] += cb.dst_off[i];
  {
    std::vector<int> cursor(cb.dst_off.begin(), cb.dst_off.end() - 1);
    for (const auto& [dst, src] : block.edges) {
      cb.src_of[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(dst)]++)] = src;
    }
  }
  for (std::size_t i = 0; i < nd; ++i) {
    const int b = cb.dst_off[i], e = cb.dst_off[i + 1];
    // Ascending neighbor order: deterministic regardless of the original
    // edge-list order, and prefetch-friendly during aggregation.
    std::sort(cb.src_of.begin() + b, cb.src_of.begin() + e);
    if (e > b) cb.inv_deg[i] = 1.0f / static_cast<float>(e - b);
    for (int j = b; j < e; ++j) cb.dst_of[static_cast<std::size_t>(j)] = static_cast<int>(i);
  }

  // Reverse CSR over the forward CSR edge ids (grouped by src, edge ids
  // ascending within each src, so per-src accumulation order is fixed).
  for (int src : cb.src_of) ++cb.src_off[static_cast<std::size_t>(src) + 1];
  for (std::size_t v = 0; v < ns; ++v) cb.src_off[v + 1] += cb.src_off[v];
  {
    std::vector<int> cursor(cb.src_off.begin(), cb.src_off.end() - 1);
    for (std::size_t e = 0; e < ne; ++e) {
      cb.rev_edge[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(cb.src_of[e])]++)] =
          static_cast<int>(e);
    }
  }

  for (std::size_t i = 0; i < block.dst_in_src.size(); ++i) {
    const int v = block.dst_in_src[i];
    if (v < 0 || static_cast<std::size_t>(v) >= ns) {
      throw std::out_of_range("compile_block: dst_in_src out of range");
    }
    cb.src_to_dst[static_cast<std::size_t>(v)] = static_cast<int>(i);
    cb.self_src[i] = v;
  }
  return cb;
}

const CompiledBlock& Block::compiled() const {
  if (!compiled_) {
    compiled_ = std::make_shared<const CompiledBlock>(compile_block(*this));
  }
  return *compiled_;
}

std::vector<Block> build_blocks(const sampling::SampledSubgraph& sg) {
  const std::size_t hops = sg.layers.size();
  std::vector<Block> blocks(hops);

  for (std::size_t k = 0; k < hops; ++k) {
    const auto& layer = sg.layers[hops - 1 - k];
    Block& block = blocks[k];
    block.dst_ids = layer.dst_vertices;  // already sorted by the sampler

    // src set = dst set plus every edge source.
    std::vector<VertexId> srcs = block.dst_ids;
    for (const auto& [dst, src] : layer.edges) {
      (void)dst;
      srcs.push_back(src);
    }
    std::sort(srcs.begin(), srcs.end());
    srcs.erase(std::unique(srcs.begin(), srcs.end()), srcs.end());
    block.src_ids = std::move(srcs);

    std::unordered_map<VertexId, int> src_index;
    src_index.reserve(block.src_ids.size() * 2);
    for (std::size_t i = 0; i < block.src_ids.size(); ++i) {
      src_index.emplace(block.src_ids[i], static_cast<int>(i));
    }
    std::unordered_map<VertexId, int> dst_index;
    dst_index.reserve(block.dst_ids.size() * 2);
    block.dst_in_src.resize(block.dst_ids.size());
    for (std::size_t i = 0; i < block.dst_ids.size(); ++i) {
      dst_index.emplace(block.dst_ids[i], static_cast<int>(i));
      block.dst_in_src[i] = src_index.at(block.dst_ids[i]);
    }

    block.edges.reserve(layer.edges.size());
    for (const auto& [dst, src] : layer.edges) {
      block.edges.emplace_back(dst_index.at(dst), src_index.at(src));
    }
  }

  // Sanity: consecutive blocks must chain (next block's srcs are produced by
  // this block's dsts).
  for (std::size_t k = 0; k + 1 < blocks.size(); ++k) {
    if (!std::includes(blocks[k].dst_ids.begin(), blocks[k].dst_ids.end(),
                       blocks[k + 1].src_ids.begin(),
                       blocks[k + 1].src_ids.end())) {
      throw std::logic_error("build_blocks: block chaining violated");
    }
  }
  return blocks;
}

}  // namespace moment::gnn
