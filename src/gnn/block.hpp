#pragma once
// Message-passing blocks: the bipartite (src -> dst) compute structures built
// from a SampledSubgraph, mirroring DGL's `to_block`. blocks[0] is applied
// first (widest frontier, raw features); blocks.back() produces seed outputs.

#include <memory>
#include <utility>
#include <vector>

#include "sampling/neighbor_sampler.hpp"

namespace moment::gnn {

using graph::VertexId;

/// Per-destination CSR view of a Block's edge list, compiled once per sampled
/// block and shared by every layer invocation on it (SAGE/GCN aggregation,
/// GAT attention, and all their backward passes). Both directions are
/// materialised so forward passes can parallelise race-free over dst rows and
/// backward passes over src rows.
struct CompiledBlock {
  /// Forward CSR: neighbors of dst i are src_of[dst_off[i] .. dst_off[i+1]),
  /// sorted ascending. Positions in src_of define the "CSR edge id" that
  /// layers use to index per-edge saved state (GAT alpha, GCN coeffs).
  std::vector<int> dst_off;   // num_dst + 1
  std::vector<int> src_of;    // num_edges
  std::vector<float> inv_deg; // num_dst; 1/degree, 0 for isolated dsts
  /// Reverse CSR: CSR edge ids entering src v are
  /// rev_edge[src_off[v] .. src_off[v+1]); dst_of maps a CSR edge id back to
  /// its destination row.
  std::vector<int> src_off;   // num_src + 1
  std::vector<int> rev_edge;  // num_edges
  std::vector<int> dst_of;    // num_edges
  /// src_to_dst[v] = dst index of src v when the vertex is also a dst
  /// (self-feature row), else -1. Injective over valid entries.
  std::vector<int> src_to_dst;  // num_src
  /// self_src[i] = src row holding dst i's own features (= dst_in_src).
  std::vector<int> self_src;  // num_dst

  std::size_t num_dst() const noexcept { return inv_deg.size(); }
  std::size_t num_src() const noexcept { return src_to_dst.size(); }
  std::size_t num_edges() const noexcept { return src_of.size(); }
  int degree(std::size_t dst) const noexcept {
    return dst_off[dst + 1] - dst_off[dst];
  }
};

struct Block {
  std::vector<VertexId> src_ids;  // sorted global vertex ids
  std::vector<VertexId> dst_ids;  // sorted; subset of src_ids
  /// dst_in_src[i] = position of dst_ids[i] within src_ids (self features).
  std::vector<int> dst_in_src;
  /// Edges as (dst_local, src_local) index pairs.
  std::vector<std::pair<int, int>> edges;

  std::size_t num_src() const noexcept { return src_ids.size(); }
  std::size_t num_dst() const noexcept { return dst_ids.size(); }

  /// CSR compilation of `edges`, built lazily on first use and cached (copies
  /// of the block share the cache). The block's index fields must not change
  /// after the first call; not thread-safe — each block belongs to exactly
  /// one worker, which is the engine's ownership model.
  const CompiledBlock& compiled() const;

 private:
  mutable std::shared_ptr<const CompiledBlock> compiled_;
};

/// Standalone CSR compilation (also used by tests and the kernel bench).
CompiledBlock compile_block(const Block& block);

/// Builds application-ordered blocks. blocks[k] corresponds to sampled hop
/// (L-1-k): its dst set is that hop's frontier, its src set the next wider
/// frontier. The final block's dst set equals the seeds.
std::vector<Block> build_blocks(const sampling::SampledSubgraph& sg);

}  // namespace moment::gnn
