#pragma once
// Message-passing blocks: the bipartite (src -> dst) compute structures built
// from a SampledSubgraph, mirroring DGL's `to_block`. blocks[0] is applied
// first (widest frontier, raw features); blocks.back() produces seed outputs.

#include <utility>
#include <vector>

#include "sampling/neighbor_sampler.hpp"

namespace moment::gnn {

using graph::VertexId;

struct Block {
  std::vector<VertexId> src_ids;  // sorted global vertex ids
  std::vector<VertexId> dst_ids;  // sorted; subset of src_ids
  /// dst_in_src[i] = position of dst_ids[i] within src_ids (self features).
  std::vector<int> dst_in_src;
  /// Edges as (dst_local, src_local) index pairs.
  std::vector<std::pair<int, int>> edges;

  std::size_t num_src() const noexcept { return src_ids.size(); }
  std::size_t num_dst() const noexcept { return dst_ids.size(); }
};

/// Builds application-ordered blocks. blocks[k] corresponds to sampled hop
/// (L-1-k): its dst set is that hop's frontier, its src set the next wider
/// frontier. The final block's dst set equals the seeds.
std::vector<Block> build_blocks(const sampling::SampledSubgraph& sg);

}  // namespace moment::gnn
