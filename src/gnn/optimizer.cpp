#include "gnn/optimizer.hpp"

#include <cmath>

namespace moment::gnn {

Sgd::Sgd(std::vector<Param*> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (Param* p : params_) {
    velocity_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    Tensor& v = velocity_[i];
    for (std::size_t j = 0; j < p.value.size(); ++j) {
      v.data()[j] = momentum_ * v.data()[j] + p.grad.data()[j];
      p.value.data()[j] -= lr_ * v.data()[j];
    }
  }
}

Adam::Adam(std::vector<Param*> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    for (std::size_t j = 0; j < p.value.size(); ++j) {
      const float g = p.grad.data()[j];
      float& m = m_[i].data()[j];
      float& v = v_[i].data()[j];
      m = beta1_ * m + (1.0f - beta1_) * g;
      v = beta2_ * v + (1.0f - beta2_) * g * g;
      const float mhat = m / bc1;
      const float vhat = v / bc2;
      p.value.data()[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace moment::gnn
