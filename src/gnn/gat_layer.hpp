#pragma once
// Graph Attention Network layer (Velickovic et al.), multi-head with
// concatenation — the paper's compute-heavy model (hidden 64, 8 heads).
//
//   z_j   = W_h x_j                       (per head h)
//   e_ij  = LeakyReLU(a_l . z_i + a_r . z_j)
//   alpha = softmax_j(e_ij)  (per dst i)
//   h_i   = ELU( concat_h( sum_j alpha_ij z_j ) + b )
//
// Full forward/backward over a Block, including attention softmax backward.

#include "gnn/block.hpp"
#include "gnn/param.hpp"

namespace moment::gnn {

class GatLayer final : public Module {
 public:
  GatLayer(std::size_t in_dim, std::size_t num_heads, std::size_t head_dim,
           bool apply_elu, util::Pcg32& rng);

  Tensor forward(const Block& block, const Tensor& x_src);
  Tensor backward(const Block& block, const Tensor& grad_out);

  std::vector<Param*> parameters() override {
    return {&w_, &attn_l_, &attn_r_, &bias_};
  }

  std::size_t in_dim() const noexcept { return in_dim_; }
  std::size_t out_dim() const noexcept { return num_heads_ * head_dim_; }
  std::size_t num_heads() const noexcept { return num_heads_; }

  static constexpr float kLeakySlope = 0.2f;

 private:
  /// Per-src attention logits a_l . z and a_r . z for head h.
  void project_head(std::size_t h, std::vector<float>& pl,
                    std::vector<float>& pr) const;

  std::size_t in_dim_, num_heads_, head_dim_;
  bool apply_elu_;
  Param w_;       // (in_dim x heads*head_dim), heads column-blocked
  Param attn_l_;  // (heads x head_dim)
  Param attn_r_;  // (heads x head_dim)
  Param bias_;    // (1 x heads*head_dim)

  // Saved state for backward. Per-edge state is indexed by the CSR edge id of
  // block.compiled() (head-minor: edge * num_heads + head) — the per-dst
  // adjacency comes from the shared CompiledBlock, not a layer-local copy.
  Tensor saved_x_src_;
  Tensor saved_z_;               // (num_src x heads*head_dim)
  Tensor saved_pre_;             // pre-ELU output (num_dst x heads*head_dim)
  std::vector<float> saved_alpha_;   // per (CSR edge, head)
  std::vector<float> saved_score_;   // pre-LeakyReLU logits per (CSR edge, head)
};

/// ELU and its derivative (alpha = 1).
float elu_scalar(float x) noexcept;
float elu_grad_from_out(float out) noexcept;

}  // namespace moment::gnn
