#pragma once
// Softmax cross-entropy for node classification (the paper's task).

#include <cstdint>
#include <span>

#include "gnn/tensor.hpp"

namespace moment::gnn {

struct LossResult {
  float loss = 0.0f;       // mean over rows
  float accuracy = 0.0f;   // argmax == label
  Tensor grad_logits;      // d loss / d logits (already divided by N)
};

/// logits: (n x classes); labels: n entries in [0, classes).
LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const std::int32_t> labels);

}  // namespace moment::gnn
