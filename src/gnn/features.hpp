#pragma once
// Feature providers: where vertex embeddings come from. The in-memory
// provider backs tests; the IO-stack provider (iostack/feature_store.hpp)
// pulls them through the simulated NVMe path, exercising the same interface.
//
// Providers expose both a synchronous gather and an asynchronous
// begin/wait protocol. The async form lets the pipelined execution engine
// issue the feature fetch for batch N+1 and compute on batch N while the IO
// is in flight; providers without real asynchrony (e.g. InMemoryFeatures)
// fall back to completing the gather inside gather_begin().

#include <cstdint>
#include <span>

#include "gnn/tensor.hpp"
#include "graph/csr.hpp"

namespace moment::gnn {

class FeatureProvider {
 public:
  /// Handle for an in-flight asynchronous gather. kSyncTicket means the
  /// gather already completed inside gather_begin() (nothing was overlapped).
  using GatherTicket = std::uint64_t;
  static constexpr GatherTicket kSyncTicket = 0;

  virtual ~FeatureProvider() = default;
  virtual std::size_t dim() const = 0;
  /// Fills `out` (vertices.size() x dim()) with the features of `vertices`.
  virtual void gather(std::span<const graph::VertexId> vertices,
                      Tensor& out) = 0;

  /// Starts filling `out` with the features of `vertices`. `out` must stay
  /// alive (and must not move) until the matching gather_wait() returns;
  /// `vertices` may be released once gather_begin() returns. The default
  /// implementation is the synchronous fallback.
  virtual GatherTicket gather_begin(std::span<const graph::VertexId> vertices,
                                    Tensor& out) {
    gather(vertices, out);
    return kSyncTicket;
  }

  /// Completes the gather identified by `ticket`. A kSyncTicket is a no-op.
  virtual void gather_wait(GatherTicket ticket) { (void)ticket; }

  /// IO telemetry: fault-recovery work plus the IO-reduction pipeline's
  /// effect (dedup, run coalescing, shared hot-row cache). Counters are
  /// cumulative since construction; the gauges reflect the backing device
  /// array now. Providers without a faultable backend (e.g.
  /// InMemoryFeatures) report all-zero.
  struct IoResilience {
    std::uint64_t retries = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t permanent_failures = 0;
    /// Rows served from the host-side authoritative copy after SSD reads
    /// permanently failed.
    std::uint64_t failovers = 0;
    /// Failed devices whose bins were re-placed onto survivors.
    std::uint64_t device_remaps = 0;
    std::uint32_t devices_degraded = 0;
    std::uint32_t devices_failed = 0;

    // IO-reduction pipeline (all zero when the provider has none).
    /// SSD reads the naive path would have issued that in-batch dedup
    /// collapsed away.
    std::uint64_t dedup_saved_reads = 0;
    /// Feature rows actually fetched from the SSDs.
    std::uint64_t ssd_rows = 0;
    /// Commands issued after run coalescing (<= ssd_rows).
    std::uint64_t ssd_commands = 0;
    /// Commands that carried two or more adjacent rows.
    std::uint64_t coalesced_commands = 0;
    /// Shared hot-row cache traffic; evictions/invalidations are cache-wide
    /// (shared by all clients of a store).
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t cache_evictions = 0;

    // Peer-HBM gather path (zero unless a comm plan routes remote-owned
    // HBM rows over the modeled GPU fabric).
    /// Rows copied from another GPU's HBM tier over a planned P2P route.
    std::uint64_t peer_rows = 0;
    /// Feature bytes those rows moved across the fabric (dim * 4 each).
    std::uint64_t peer_bytes = 0;
    /// Remote-owned HBM rows that fell back to the host authoritative copy
    /// (peer routing disabled or the pair unroutable).
    std::uint64_t remote_hbm_host_rows = 0;

    /// Average rows per issued SSD command (0 when nothing was issued).
    double coalesce_rows_per_cmd() const noexcept {
      return ssd_commands > 0 ? static_cast<double>(ssd_rows) /
                                    static_cast<double>(ssd_commands)
                              : 0.0;
    }
  };
  virtual IoResilience io_resilience() const { return {}; }
};

class InMemoryFeatures final : public FeatureProvider {
 public:
  explicit InMemoryFeatures(Tensor features) : features_(std::move(features)) {}

  std::size_t dim() const override { return features_.cols(); }
  void gather(std::span<const graph::VertexId> vertices,
              Tensor& out) override;

  const Tensor& tensor() const noexcept { return features_; }

 private:
  Tensor features_;
};

}  // namespace moment::gnn
