#pragma once
// Feature providers: where vertex embeddings come from. The in-memory
// provider backs tests; the IO-stack provider (iostack/feature_store.hpp)
// pulls them through the simulated NVMe path, exercising the same interface.

#include <span>

#include "gnn/tensor.hpp"
#include "graph/csr.hpp"

namespace moment::gnn {

class FeatureProvider {
 public:
  virtual ~FeatureProvider() = default;
  virtual std::size_t dim() const = 0;
  /// Fills `out` (vertices.size() x dim()) with the features of `vertices`.
  virtual void gather(std::span<const graph::VertexId> vertices,
                      Tensor& out) = 0;
};

class InMemoryFeatures final : public FeatureProvider {
 public:
  explicit InMemoryFeatures(Tensor features) : features_(std::move(features)) {}

  std::size_t dim() const override { return features_.cols(); }
  void gather(std::span<const graph::VertexId> vertices,
              Tensor& out) override;

  const Tensor& tensor() const noexcept { return features_; }

 private:
  Tensor features_;
};

}  // namespace moment::gnn
