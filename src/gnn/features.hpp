#pragma once
// Feature providers: where vertex embeddings come from. The in-memory
// provider backs tests; the IO-stack provider (iostack/feature_store.hpp)
// pulls them through the simulated NVMe path, exercising the same interface.
//
// Providers expose both a synchronous gather and an asynchronous
// begin/wait protocol. The async form lets the pipelined execution engine
// issue the feature fetch for batch N+1 and compute on batch N while the IO
// is in flight; providers without real asynchrony (e.g. InMemoryFeatures)
// fall back to completing the gather inside gather_begin().

#include <cstdint>
#include <span>

#include "gnn/tensor.hpp"
#include "graph/csr.hpp"

namespace moment::gnn {

class FeatureProvider {
 public:
  /// Handle for an in-flight asynchronous gather. kSyncTicket means the
  /// gather already completed inside gather_begin() (nothing was overlapped).
  using GatherTicket = std::uint64_t;
  static constexpr GatherTicket kSyncTicket = 0;

  virtual ~FeatureProvider() = default;
  virtual std::size_t dim() const = 0;
  /// Fills `out` (vertices.size() x dim()) with the features of `vertices`.
  virtual void gather(std::span<const graph::VertexId> vertices,
                      Tensor& out) = 0;

  /// Starts filling `out` with the features of `vertices`. `out` must stay
  /// alive (and must not move) until the matching gather_wait() returns;
  /// `vertices` may be released once gather_begin() returns. The default
  /// implementation is the synchronous fallback.
  virtual GatherTicket gather_begin(std::span<const graph::VertexId> vertices,
                                    Tensor& out) {
    gather(vertices, out);
    return kSyncTicket;
  }

  /// Completes the gather identified by `ticket`. A kSyncTicket is a no-op.
  virtual void gather_wait(GatherTicket ticket) { (void)ticket; }
};

class InMemoryFeatures final : public FeatureProvider {
 public:
  explicit InMemoryFeatures(Tensor features) : features_(std::move(features)) {}

  std::size_t dim() const override { return features_.cols(); }
  void gather(std::span<const graph::VertexId> vertices,
              Tensor& out) override;

  const Tensor& tensor() const noexcept { return features_; }

 private:
  Tensor features_;
};

}  // namespace moment::gnn
