#pragma once
// SIMD-friendly parallel compute kernels — the hot math under the GNN layers.
//
// All kernels are raw-pointer, row-major, and fan out over the process-wide
// util::compute_pool() with *row-partitioned* parallelism: every output row
// is produced start-to-finish by exactly one task, and the accumulation order
// within a row is fixed by construction. Results are therefore bitwise
// identical for any thread count (1..N), which is what keeps the engine's
// depth-1 vs depth-2 trajectory-equality guarantees intact.
//
// GEMM variants use a 4-row register panel over a KC-blocked k loop with
// __restrict inner loops written to auto-vectorize (this translation unit is
// compiled -O3, see src/gnn/CMakeLists.txt). Aggregation kernels walk the
// CompiledBlock CSR with 4-way neighbor-row accumulation plus software
// prefetch, which buys memory-level parallelism on the random feature-row
// reads that dominate sampled-block aggregation.

#include <cstddef>

#include "gnn/block.hpp"

namespace moment::gnn::kernels {

/// k-dimension block size: B panels of KC x n stay cache-resident while a
/// 4-row output panel accumulates in registers.
inline constexpr std::size_t kKcBlock = 256;
/// Rows per register panel (independent accumulator rows per inner loop).
inline constexpr std::size_t kRowPanel = 4;
/// parallel_for grain for row-partitioned loops.
inline constexpr std::size_t kRowGrain = 16;

// ---- GEMM -----------------------------------------------------------------

/// c (m x n) = a (m x k) @ b (k x n); adds into c when `accumulate`.
void gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
          const float* b, float* c, bool accumulate);

/// c (m x n) = a (m x k) @ b (n x k)^T; adds into c when `accumulate`.
void gemm_bt(std::size_t m, std::size_t k, std::size_t n, const float* a,
             const float* b, float* c, bool accumulate);

/// c (k x n) = a (m x k)^T @ b (m x n); adds into c when `accumulate`.
void gemm_at(std::size_t m, std::size_t k, std::size_t n, const float* a,
             const float* b, float* c, bool accumulate);

// ---- Block aggregation (x: num_src x dim, out: num_dst x dim) -------------

/// out[i] = mean over CSR neighbors of x[src]; zero row for isolated dsts.
void aggregate_mean(const CompiledBlock& cb, const float* x, std::size_t dim,
                    float* out);

/// out[i] = sum_e edge_coeff[e] * x[src_of[e]]  +  self_coeff[i] * x[self_i]
/// (GCN symmetric-normalized aggregation; edge_coeff indexed by CSR edge id,
/// self_i = the src row holding dst i's own features).
void aggregate_coeff(const CompiledBlock& cb, const float* edge_coeff,
                     const float* self_coeff, const float* x, std::size_t dim,
                     float* out);

/// Transpose of aggregate_coeff, race-free over src rows:
/// grad_src[v] = sum_{e into v} edge_coeff[e] * g[dst_of[e]]
///             + [v is self of dst d] self_coeff[d] * g[d].
/// Pass self_coeff = nullptr to skip the self term.
void aggregate_coeff_grad(const CompiledBlock& cb, const float* edge_coeff,
                          const float* self_coeff, const float* g,
                          std::size_t dim, float* grad_src);

/// SAGE input gradient, race-free over src rows:
/// grad_src[v] = [v is self of d] grad_self[d]
///             + sum_{e into v} inv_deg[dst_of[e]] * grad_mean[dst_of[e]].
void sage_input_grad(const CompiledBlock& cb, const float* grad_self,
                     const float* grad_mean, std::size_t dim, float* grad_src);

// ---- GAT attention (one head per call) ------------------------------------
// Head slices: row v of the projected features lives at z + v*stride (+ the
// head offset, already applied by the caller), head_dim floats wide. el[i] is
// the dst-side attention logit (attn_l . z[self of dst i]), er[v] the
// src-side logit. Per-edge state (score/alpha/ds) is indexed
// [csr_edge * alpha_stride], so multi-head layers can interleave heads.

/// Softmax-normalized attention aggregation for one head, parallel over dst:
/// stores the pre-LeakyReLU logit el[i] + er[src] into score, the
/// max-shifted softmax of LeakyReLU(score) into alpha, and writes
/// out[i] = sum_e alpha[e] * z[src_of[e]] over the head_dim slice.
void gat_attention_forward(const CompiledBlock& cb, const float* el,
                           const float* er, const float* z, std::size_t stride,
                           std::size_t head_dim, float leaky_slope,
                           std::size_t alpha_stride, float* score, float* alpha,
                           float* out);

/// Backward pass 1, parallel over dst rows: from the head's output gradient
/// g (same layout as out) computes the per-edge pre-activation score gradient
/// ds[e] = alpha_e (g.z_e - sum_e' alpha_e' g.z_e') * LeakyReLU'(score[e])
/// and the per-dst logit gradient del[i] = sum_e ds[e].
void gat_attention_backward_dst(const CompiledBlock& cb, const float* g,
                                const float* z, std::size_t stride,
                                std::size_t head_dim, float leaky_slope,
                                std::size_t alpha_stride, const float* score,
                                const float* alpha, float* ds, float* del);

/// Backward pass 2, parallel over src rows: accumulates
/// gz[v] += sum_{e into v} alpha[e] * g[dst_of[e]] (head slice of the
/// projected-feature gradient) and writes der[v] = sum_{e into v} ds[e].
void gat_attention_backward_src(const CompiledBlock& cb, const float* g,
                                std::size_t stride, std::size_t head_dim,
                                std::size_t alpha_stride, const float* alpha,
                                const float* ds, float* der, float* gz);

// ---- Row gather -----------------------------------------------------------

/// out[i] = x[index[i]] for `rows` rows of `dim` floats, parallel over i.
void gather_rows(const int* index, std::size_t rows, const float* x,
                 std::size_t dim, float* out);

}  // namespace moment::gnn::kernels
