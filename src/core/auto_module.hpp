#pragma once
// AutoModule — Moment's offline co-optimizer facade (paper Fig. 8):
//
//   inputs:  communication topology (MachineSpec), GNN model + sampling
//            config, dataset
//   stage 1: pre-sampling hotness profile (Workbench)
//   stage 2: hardware placement search — enumerate, symmetry-reduce,
//            max-flow time-bisection per candidate
//   stage 3: DDAK data placement from the winning plan's storage-node flows
//
// The resulting Plan is everything the runtime needs; it is reusable across
// GNN models and epochs for a fixed hardware set, so its cost amortises
// exactly as the paper's Section 3.3 argues.

#include <string>

#include "ddak/ddak.hpp"
#include "ddak/workload.hpp"
#include "placement/search.hpp"
#include "runtime/systems.hpp"
#include "topology/machine.hpp"
#include "topology/predictor.hpp"

namespace moment::core {

struct AutoModuleConfig {
  const topology::MachineSpec* machine = nullptr;
  graph::DatasetId dataset = graph::DatasetId::kIG;
  int dataset_scale_shift = 2;
  gnn::ModelKind model = gnn::ModelKind::kGraphSage;
  int num_gpus = 4;
  int num_ssds = 8;
  bool nvlink = false;
  ddak::CacheConfig cache;
  /// DDAK pooling granularity; 0 = auto-scale to the dataset (the paper's
  /// n = 100 corresponds to ~1e-6 of a paper-scale graph's vertices).
  std::size_t ddak_pool_size = 0;
  std::uint64_t seed = 42;
};

struct Plan {
  topology::Placement hardware_placement;
  topology::Prediction prediction;      // under the chosen placement
  ddak::EpochWorkload workload;
  std::vector<ddak::Bin> bins;          // replicated-GPU-merged when apt
  ddak::DataPlacementResult data_placement;

  // Search telemetry (paper's search-space reduction claims).
  std::size_t candidates_total = 0;
  std::size_t candidates_evaluated = 0;
  double predicted_epoch_io_time_s = 0.0;
  double predicted_throughput = 0.0;  // bytes/s

  // Offline cost breakdown (paper Section 3.3 "Pre-processing Cost").
  double profile_time_s = 0.0;
  double search_time_s = 0.0;
  double ddak_time_s = 0.0;
  double total_time_s() const noexcept {
    return profile_time_s + search_time_s + ddak_time_s;
  }

  std::string to_string(const topology::MachineSpec& spec) const;
};

class AutoModule {
 public:
  /// Full pipeline: profiles the dataset, searches placements, runs DDAK.
  static Plan plan(const AutoModuleConfig& config);
  /// Same but with a pre-built workbench (shared across sweeps).
  static Plan plan(const AutoModuleConfig& config,
                   const runtime::Workbench& bench);
};

}  // namespace moment::core
