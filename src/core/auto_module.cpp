#include "core/auto_module.hpp"

#include <chrono>
#include <sstream>
#include <stdexcept>

#include "sim/machine_sim.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace moment::core {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Plan AutoModule::plan(const AutoModuleConfig& config) {
  const auto t0 = std::chrono::steady_clock::now();
  const runtime::Workbench bench = runtime::Workbench::make(
      config.dataset, config.dataset_scale_shift, config.seed);
  Plan p = plan(config, bench);
  p.profile_time_s = seconds_since(t0) - p.search_time_s - p.ddak_time_s;
  return p;
}

Plan AutoModule::plan(const AutoModuleConfig& config,
                      const runtime::Workbench& bench) {
  if (config.machine == nullptr) {
    throw std::invalid_argument("AutoModule::plan: machine spec required");
  }
  const topology::MachineSpec& spec = *config.machine;
  Plan plan;

  plan.workload = ddak::make_epoch_workload(bench.dataset, bench.profile,
                                            config.cache, config.num_gpus);

  // Stage 2: hardware placement — max-flow ranking over the symmetry-reduced
  // candidate space, refined by fluid simulation of the leaders.
  auto t_search = std::chrono::steady_clock::now();
  const runtime::ModelPreset preset = runtime::model_preset(config.model);
  ddak::CacheConfig cache = config.cache;
  const runtime::PlacementChoice choice = runtime::choose_moment_placement(
      spec, bench, plan.workload, config.num_gpus, config.num_ssds,
      config.nvlink, cache, preset.compute_time_per_batch);
  plan.hardware_placement = choice.placement;
  plan.prediction = choice.prediction;
  plan.candidates_total = choice.candidates_total;
  plan.candidates_evaluated = choice.candidates_evaluated;
  plan.predicted_epoch_io_time_s = plan.prediction.epoch_io_time_s;
  plan.predicted_throughput = plan.prediction.throughput;
  plan.search_time_s = seconds_since(t_search);

  // Stage 3: DDAK from the winning plan's per-storage flows.
  auto t_ddak = std::chrono::steady_clock::now();
  const topology::Topology topo =
      topology::instantiate(spec, plan.hardware_placement);
  topology::FlowGraphOptions fopts;
  fopts.use_nvlink = config.nvlink;
  const topology::FlowGraph fg = topology::compile_flow_graph(topo, fopts);
  auto bins = ddak::make_bins(topo, fg, plan.prediction.per_storage_bytes,
                              bench.dataset.scaled.vertices,
                              config.cache.gpu_cache_fraction,
                              config.cache.cpu_cache_fraction);
  plan.bins = config.cache.gpu_cache_mode == ddak::GpuCacheMode::kReplicated
                  ? sim::merge_replicated_gpu_bins(bins)
                  : std::move(bins);
  plan.bins = sim::merge_replicated_cpu_bins(plan.bins);
  ddak::DdakOptions dopt;
  dopt.pool_size = config.ddak_pool_size != 0
                       ? config.ddak_pool_size
                       : ddak::default_pool_size(bench.dataset.scaled.vertices);
  plan.data_placement = ddak::ddak_place(plan.bins, bench.profile, dopt);
  plan.ddak_time_s = seconds_since(t_ddak);
  return plan;
}

std::string Plan::to_string(const topology::MachineSpec& spec) const {
  std::ostringstream out;
  out << "Moment plan for " << spec.name << "\n";
  out << "  placement: "
      << placement::describe(spec, hardware_placement) << "\n";
  out << "  search: " << candidates_evaluated << " evaluated of "
      << candidates_total << " feasible combinations\n";
  out << "  predicted epoch IO time: " << predicted_epoch_io_time_s << " s ("
      << util::to_gib_per_s(predicted_throughput) << " GiB/s)\n";
  util::Table table({"bin", "tier", "capacity(vtx)", "traffic share",
                     "vertices", "hotness share"});
  const char* tier_names[] = {"GPU", "CPU", "SSD"};
  double total_target = 0.0;
  for (const auto& b : bins) total_target += b.traffic_target;
  for (std::size_t i = 0; i < bins.size(); ++i) {
    table.add_row({bins[i].name, tier_names[static_cast<int>(bins[i].tier)],
                   util::Table::num(bins[i].capacity_vertices, 0),
                   util::Table::percent(total_target > 0
                                            ? bins[i].traffic_target /
                                                  total_target
                                            : 0.0),
                   std::to_string(data_placement.bin_count[i]),
                   util::Table::percent(data_placement.bin_traffic_share[i])});
  }
  out << table.to_string(2);
  out << "  offline cost: profile " << profile_time_s << " s, search "
      << search_time_s << " s, DDAK " << ddak_time_s << " s\n";
  return out.str();
}

}  // namespace moment::core
