#include "core/plan_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace moment::core {

namespace {

constexpr const char* kMagic = "moment-plan-v1";

const char* tier_token(topology::StorageTier t) {
  switch (t) {
    case topology::StorageTier::kGpuHbm: return "gpu";
    case topology::StorageTier::kCpuDram: return "cpu";
    case topology::StorageTier::kSsd: return "ssd";
  }
  return "ssd";
}

topology::StorageTier parse_tier(const std::string& s) {
  if (s == "gpu") return topology::StorageTier::kGpuHbm;
  if (s == "cpu") return topology::StorageTier::kCpuDram;
  if (s == "ssd") return topology::StorageTier::kSsd;
  throw std::runtime_error("load_plan: bad tier '" + s + "'");
}

}  // namespace

void save_plan(const Plan& plan, std::ostream& out) {
  out << kMagic << "\n";
  out << "# predicted epoch IO time (s): " << plan.predicted_epoch_io_time_s
      << "\n";
  out << "# offline cost (s): " << plan.total_time_s() << "\n";

  out << "placement " << plan.hardware_placement.label << " "
      << (plan.hardware_placement.nvlink ? 1 : 0) << "\n";
  out << "gpus";
  for (int c : plan.hardware_placement.gpus_per_group) out << ' ' << c;
  out << "\nssds";
  for (int c : plan.hardware_placement.ssds_per_group) out << ' ' << c;
  out << "\n";

  out << "bins " << plan.bins.size() << "\n";
  for (const auto& b : plan.bins) {
    out << "bin " << b.name << ' ' << b.storage_index << ' '
        << tier_token(b.tier) << ' ' << b.capacity_vertices << ' '
        << b.traffic_target;
    out << " replicas " << b.replica_storage_indices.size();
    for (int r : b.replica_storage_indices) out << ' ' << r;
    out << "\n";
  }

  out << "vertices " << plan.data_placement.bin_of_vertex.size() << "\n";
  // Run-length encode the per-vertex bin assignment (hot prefixes cluster).
  const auto& bov = plan.data_placement.bin_of_vertex;
  for (std::size_t i = 0; i < bov.size();) {
    std::size_t j = i;
    while (j < bov.size() && bov[j] == bov[i]) ++j;
    out << "run " << bov[i] << ' ' << (j - i) << "\n";
    i = j;
  }
  out << "end\n";
}

void save_plan_file(const Plan& plan, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_plan_file: cannot open " + path);
  save_plan(plan, out);
}

Plan load_plan(std::istream& in) {
  Plan plan;
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    throw std::runtime_error("load_plan: bad magic");
  }
  std::size_t expected_bins = 0;
  std::size_t expected_vertices = 0;
  std::size_t cursor = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string keyword;
    ls >> keyword;
    if (keyword == "placement") {
      int nvlink = 0;
      ls >> plan.hardware_placement.label >> nvlink;
      plan.hardware_placement.nvlink = nvlink != 0;
    } else if (keyword == "gpus") {
      int c;
      while (ls >> c) plan.hardware_placement.gpus_per_group.push_back(c);
    } else if (keyword == "ssds") {
      int c;
      while (ls >> c) plan.hardware_placement.ssds_per_group.push_back(c);
    } else if (keyword == "bins") {
      ls >> expected_bins;
    } else if (keyword == "bin") {
      ddak::Bin b;
      std::string tier, replicas_kw;
      std::size_t nreplicas = 0;
      ls >> b.name >> b.storage_index >> tier >> b.capacity_vertices >>
          b.traffic_target >> replicas_kw >> nreplicas;
      if (replicas_kw != "replicas") {
        throw std::runtime_error("load_plan: malformed bin line");
      }
      b.tier = parse_tier(tier);
      for (std::size_t i = 0; i < nreplicas; ++i) {
        int r;
        if (!(ls >> r)) throw std::runtime_error("load_plan: short replicas");
        b.replica_storage_indices.push_back(r);
      }
      plan.bins.push_back(std::move(b));
    } else if (keyword == "vertices") {
      ls >> expected_vertices;
      plan.data_placement.bin_of_vertex.assign(expected_vertices, -1);
    } else if (keyword == "run") {
      std::int32_t bin;
      std::size_t count;
      if (!(ls >> bin >> count)) {
        throw std::runtime_error("load_plan: malformed run");
      }
      if (cursor + count > expected_vertices) {
        throw std::runtime_error("load_plan: run overflows vertex count");
      }
      for (std::size_t i = 0; i < count; ++i) {
        plan.data_placement.bin_of_vertex[cursor++] = bin;
      }
    } else if (keyword == "end") {
      break;
    } else {
      throw std::runtime_error("load_plan: unknown keyword '" + keyword + "'");
    }
  }
  if (plan.bins.size() != expected_bins) {
    throw std::runtime_error("load_plan: bin count mismatch");
  }
  if (cursor != expected_vertices) {
    throw std::runtime_error("load_plan: vertex count mismatch");
  }
  // Rebuild the derived per-bin statistics.
  plan.data_placement.bin_access.assign(plan.bins.size(), 0.0);
  plan.data_placement.bin_traffic_share.assign(plan.bins.size(), 0.0);
  plan.data_placement.bin_count.assign(plan.bins.size(), 0);
  for (auto b : plan.data_placement.bin_of_vertex) {
    if (b < 0 || static_cast<std::size_t>(b) >= plan.bins.size()) {
      throw std::runtime_error("load_plan: vertex bin out of range");
    }
    ++plan.data_placement.bin_count[static_cast<std::size_t>(b)];
  }
  return plan;
}

Plan load_plan_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_plan_file: cannot open " + path);
  return load_plan(in);
}

}  // namespace moment::core
