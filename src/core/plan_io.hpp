#pragma once
// Plan persistence: the AutoModule output is an offline artifact ("run once
// per model/hardware configuration and reused across runs", paper Section
// 3.3), so it must survive the planning process. A simple line-oriented text
// format holds the hardware placement, the bin set with traffic targets, and
// the per-vertex data placement.

#include <iosfwd>
#include <string>

#include "core/auto_module.hpp"

namespace moment::core {

/// Writes the plan's placement decisions. The prediction and timings are
/// written as comments (informational; not re-loaded).
void save_plan(const Plan& plan, std::ostream& out);
void save_plan_file(const Plan& plan, const std::string& path);

/// Reloads a plan's decisions (hardware placement, bins, data placement).
/// Prediction/telemetry fields are left default — re-predict if needed.
Plan load_plan(std::istream& in);
Plan load_plan_file(const std::string& path);

}  // namespace moment::core
