#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace moment::util {

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = std::accumulate(sorted.begin(), sorted.end(), 0.0) /
           static_cast<double>(sorted.size());
  double acc = 0.0;
  for (double v : sorted) acc += (v - s.mean) * (v - s.mean);
  s.stddev = sorted.size() > 1
                 ? std::sqrt(acc / static_cast<double>(sorted.size() - 1))
                 : 0.0;
  s.p50 = percentile_sorted(sorted, 0.50);
  s.p95 = percentile_sorted(sorted, 0.95);
  s.p99 = percentile_sorted(sorted, 0.99);
  return s;
}

double gini(std::span<const double> weights) {
  if (weights.size() < 2) return 0.0;
  std::vector<double> w(weights.begin(), weights.end());
  std::sort(w.begin(), w.end());
  const double total = std::accumulate(w.begin(), w.end(), 0.0);
  if (total <= 0.0) return 0.0;
  double cum = 0.0;
  double area = 0.0;
  for (double v : w) {
    cum += v;
    area += cum;
  }
  const auto n = static_cast<double>(w.size());
  // Gini = 1 - 2*B where B is the area under the Lorenz curve.
  return 1.0 + 1.0 / n - 2.0 * area / (n * total);
}

double coefficient_of_variation(std::span<const double> values) {
  Summary s = summarize(values);
  if (s.mean == 0.0) return 0.0;
  return s.stddev / s.mean;
}

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) noexcept {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}
double Histogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

}  // namespace moment::util
