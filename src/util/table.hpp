#pragma once
// ASCII table printer used by the benchmark harness to emit the rows/series
// of each paper table/figure in a stable, diffable format.

#include <iosfwd>
#include <string>
#include <vector>

namespace moment::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Render with column auto-sizing. `indent` prefixes every line.
  std::string to_string(int indent = 0) const;
  void print(std::ostream& os, int indent = 0) const;

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Formats a double with `prec` digits after the point.
  static std::string num(double v, int prec = 2);
  /// Formats bytes as human-readable (KiB/MiB/GiB).
  static std::string bytes(double b);
  /// Formats a ratio as "1.23x".
  static std::string speedup(double v);
  /// Formats a fraction as "12.3%".
  static std::string percent(double v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace moment::util
