#pragma once
// Minimal leveled logger. Thread-safe, writes to stderr; level settable at
// runtime (MOMENT_LOG env var or set_level) so benches can silence internals.

#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

namespace moment::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  LogLevel level() const noexcept { return level_; }

  void log(LogLevel level, std::string_view msg);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mu_;
};

void log_debug(std::string_view msg);
void log_info(std::string_view msg);
void log_warn(std::string_view msg);
void log_error(std::string_view msg);

}  // namespace moment::util
