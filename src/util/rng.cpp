#include "util/rng.hpp"

#include <algorithm>
#include <cassert>

namespace moment::util {

ZipfSampler::ZipfSampler(std::size_t n, double exponent) : exponent_(exponent) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = acc;
  }
  const double norm = 1.0 / acc;
  for (double& c : cdf_) c *= norm;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(Pcg32& rng) const noexcept {
  const double u = rng.next_double();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t k) const noexcept {
  if (k >= cdf_.size()) return 0.0;
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace moment::util
