#pragma once
// Small statistics helpers shared by the profiler, simulator and benches.

#include <cstddef>
#include <span>
#include <vector>

namespace moment::util {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Computes mean/stddev/min/max/percentiles. Empty input yields zero summary.
Summary summarize(std::span<const double> values);

/// Linear-interpolated percentile of a *sorted* vector, q in [0,1].
double percentile_sorted(std::span<const double> sorted, double q);

/// Gini coefficient of a non-negative weight vector; 0 = perfectly uniform,
/// -> 1 = maximally skewed. Used to characterise vertex-hotness skew.
double gini(std::span<const double> weights);

/// Coefficient of variation (stddev/mean); the load-imbalance metric used for
/// per-GPU traffic in the evaluation. Returns 0 for mean==0.
double coefficient_of_variation(std::span<const double> values);

/// Online mean/variance accumulator (Welford).
class RunningStat {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range values clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x) noexcept;
  const std::vector<std::size_t>& bins() const noexcept { return counts_; }
  std::size_t total() const noexcept { return total_; }
  double bin_lo(std::size_t i) const noexcept;
  double bin_hi(std::size_t i) const noexcept;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace moment::util
