#include "util/thread_pool.hpp"

#include <cstdlib>

namespace moment::util {

namespace {

/// Set for the lifetime of each worker thread; lets parallel_for detect a
/// nested call from inside the same pool and fall back to inline execution.
thread_local const ThreadPool* tls_current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

bool ThreadPool::on_worker_thread() const noexcept {
  return tls_current_pool == this;
}

void ThreadPool::worker_loop() {
  tls_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

namespace {

std::mutex g_compute_mu;
std::unique_ptr<ThreadPool> g_compute_pool;
std::size_t g_compute_threads = 0;  // 0 = not yet resolved
bool g_compute_ready = false;

std::size_t resolve_auto_threads() {
  if (const char* env = std::getenv("MOMENT_COMPUTE_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(std::min(v, 16l));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw == 0 ? 1 : hw, 1, 16);
}

void rebuild_pool_locked(std::size_t n) {
  g_compute_threads = n == 0 ? resolve_auto_threads() : std::min<std::size_t>(n, 64);
  g_compute_pool.reset();  // joins old workers before spawning new ones
  if (g_compute_threads > 1) {
    g_compute_pool = std::make_unique<ThreadPool>(g_compute_threads);
  }
  g_compute_ready = true;
}

}  // namespace

ThreadPool* compute_pool() {
  std::lock_guard<std::mutex> lock(g_compute_mu);
  if (!g_compute_ready) rebuild_pool_locked(0);
  return g_compute_pool.get();
}

std::size_t compute_pool_threads() {
  std::lock_guard<std::mutex> lock(g_compute_mu);
  if (!g_compute_ready) rebuild_pool_locked(0);
  return g_compute_threads;
}

void set_compute_pool_threads(std::size_t n) {
  std::lock_guard<std::mutex> lock(g_compute_mu);
  rebuild_pool_locked(n);
}

}  // namespace moment::util
