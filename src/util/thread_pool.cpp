#include "util/thread_pool.hpp"

namespace moment::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

}  // namespace moment::util
