#pragma once
// Fixed-size thread pool used by the IO stack (SSD backends), the parallel
// sections of the simulator, and the compute kernels (gnn/kernels, gradient
// all-reduce, placement search). Tasks are type-erased std::function<void()>;
// submit() returns a std::future for result plumbing.
//
// `parallel_for` is the preferred way to fan a loop out over a pool: it
// chunks the index range, runs the first chunk on the calling thread, and is
// deadlock-safe when invoked from inside one of the pool's own workers (the
// whole range then runs inline instead of re-entering the queue).

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace moment::util {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (>=1; 0 is clamped to 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// True when the calling thread is one of this pool's workers. Used by
  /// parallel_for to avoid the submit-and-wait deadlock on nested calls.
  bool on_worker_thread() const noexcept;

  /// Enqueue a task; returns a future for its result. Throws std::runtime_error
  /// if the pool is shutting down.
  template <typename F, typename... Args>
  auto submit(F&& f, Args&&... args)
      -> std::future<std::invoke_result_t<F, Args...>> {
    using R = std::invoke_result_t<F, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [fn = std::forward<F>(f),
         ... as = std::forward<Args>(args)]() mutable -> R {
          return std::invoke(std::move(fn), std::move(as)...);
        });
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Blocks until the queue is empty and all in-flight tasks are done.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

/// Process-wide pool shared by the compute layers: GEMM/aggregation kernels
/// (gnn/kernels), the engine's gradient all-reduce, and parallel placement
/// evaluation. Lazily created on first use; returns nullptr when the
/// configured thread count is 1 (callers then run inline). Nobody but this
/// accessor owns the pool — engine, trainer and kernels all borrow it.
ThreadPool* compute_pool();

/// Effective compute-pool thread count (1 means "run inline, no pool").
std::size_t compute_pool_threads();

/// Reconfigures the compute pool size. 0 = auto (MOMENT_COMPUTE_THREADS env
/// var, else hardware_concurrency, clamped to [1, 16]). Destroys and
/// recreates the pool; must not be called while kernels are in flight.
void set_compute_pool_threads(std::size_t n);

/// Splits [begin, end) into chunks of at least `grain` indices and runs
/// `fn(chunk_begin, chunk_end)` for each, fanned out over `pool`. The first
/// chunk runs on the calling thread; the call returns when every chunk is
/// done (exceptions from chunks are rethrown). Runs the whole range inline
/// when `pool` is null, the range is within one grain, or the caller already
/// is one of `pool`'s workers (nested use would deadlock on a full queue).
///
/// Chunk boundaries depend only on (range, grain, pool size), so callers that
/// need thread-count-invariant results must make `fn` independent per index
/// (each index writes only its own rows), not rely on chunk shapes.
template <typename Fn>
void parallel_for(ThreadPool* pool, std::size_t begin, std::size_t end,
                  std::size_t grain, Fn&& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t range = end - begin;
  if (pool == nullptr || range <= grain || pool->on_worker_thread()) {
    fn(begin, end);
    return;
  }
  // Over-chunk 4x relative to the pool for load balance, bounded by grain.
  const std::size_t max_chunks = (range + grain - 1) / grain;
  const std::size_t chunks = std::min(max_chunks, pool->size() * 4);
  const std::size_t step = (range + chunks - 1) / chunks;
  std::vector<std::future<void>> pending;
  pending.reserve(chunks);
  for (std::size_t b = begin + step; b < end; b += step) {
    const std::size_t e = std::min(end, b + step);
    pending.push_back(pool->submit([&fn, b, e] { fn(b, e); }));
  }
  // Every pending chunk must be drained before returning OR throwing: the
  // submitted lambdas reference `fn`, which dies with this frame. The first
  // exception (caller's chunk first, then submission order) is rethrown.
  std::exception_ptr err;
  try {
    fn(begin, std::min(end, begin + step));
  } catch (...) {
    err = std::current_exception();
  }
  for (auto& f : pending) {
    try {
      f.get();
    } catch (...) {
      if (!err) err = std::current_exception();
    }
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace moment::util
