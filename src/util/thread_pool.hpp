#pragma once
// Fixed-size thread pool used by the IO stack (SSD backends) and the parallel
// sections of the simulator. Tasks are type-erased std::function<void()>;
// submit() returns a std::future for result plumbing.

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace moment::util {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (>=1; 0 is clamped to 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; returns a future for its result. Throws std::runtime_error
  /// if the pool is shutting down.
  template <typename F, typename... Args>
  auto submit(F&& f, Args&&... args)
      -> std::future<std::invoke_result_t<F, Args...>> {
    using R = std::invoke_result_t<F, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [fn = std::forward<F>(f),
         ... as = std::forward<Args>(args)]() mutable -> R {
          return std::invoke(std::move(fn), std::move(as)...);
        });
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Blocks until the queue is empty and all in-flight tasks are done.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace moment::util
