#pragma once
// Deterministic random number generation for reproducible experiments.
//
// All randomness in Moment flows through these generators so that every test
// and benchmark is bit-reproducible given its seed. We provide SplitMix64 for
// seeding/hashing and Pcg32 as the workhorse generator, plus helpers for the
// distributions the system needs (uniform ints/reals, Zipf for skewed vertex
// popularity).

#include <cstdint>
#include <cmath>
#include <limits>
#include <vector>

namespace moment::util {

/// SplitMix64: tiny, statistically solid 64-bit mixer. Used to derive stream
/// seeds and as a hash for canonical signatures.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Mix two 64-bit values into one (for hashing composite keys).
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  SplitMix64 sm(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
  return sm.next();
}

/// PCG32 (O'Neill): small-state generator with good statistical quality.
/// Satisfies UniformRandomBitGenerator so it composes with <random> if needed.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL) noexcept {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    next();
    state_ += seed;
    next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  result_type next() noexcept {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint32_t next_below(std::uint32_t bound) noexcept {
    if (bound <= 1) return 0;
    std::uint64_t m = static_cast<std::uint64_t>(next()) * bound;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < bound) {
      std::uint32_t threshold = (0u - bound) % bound;
      while (lo < threshold) {
        m = static_cast<std::uint64_t>(next()) * bound;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Uniform double in [0, 1) with full 53-bit mantissa resolution.
  double next_double() noexcept {
    const std::uint64_t hi = next() >> 6;  // 26 bits
    const std::uint64_t lo = next() >> 5;  // 27 bits
    return static_cast<double>((hi << 27) | lo) *
           (1.0 / 9007199254740992.0);  // 2^-53
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Zipf(s, n) sampler over {0, .., n-1} using precomputed inverse CDF buckets.
/// Vertex access hotness in large graphs is approximately Zipfian; DDAK's whole
/// premise is this skew, so the sampler must be exact rather than approximate.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  std::size_t sample(Pcg32& rng) const noexcept;

  std::size_t size() const noexcept { return cdf_.size(); }
  double exponent() const noexcept { return exponent_; }

  /// Probability mass of rank k (0-indexed).
  double pmf(std::size_t k) const noexcept;

 private:
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
  double exponent_ = 1.0;
};

}  // namespace moment::util
