#include "util/log.hpp"

#include <cstdlib>
#include <cstring>

namespace moment::util {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  if (const char* env = std::getenv("MOMENT_LOG")) {
    if (std::strcmp(env, "debug") == 0) level_ = LogLevel::kDebug;
    else if (std::strcmp(env, "info") == 0) level_ = LogLevel::kInfo;
    else if (std::strcmp(env, "warn") == 0) level_ = LogLevel::kWarn;
    else if (std::strcmp(env, "error") == 0) level_ = LogLevel::kError;
    else if (std::strcmp(env, "off") == 0) level_ = LogLevel::kOff;
  }
}

void Logger::log(LogLevel level, std::string_view msg) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(stderr, "[moment:%s] %.*s\n", kNames[static_cast<int>(level)],
               static_cast<int>(msg.size()), msg.data());
}

void log_debug(std::string_view msg) { Logger::instance().log(LogLevel::kDebug, msg); }
void log_info(std::string_view msg) { Logger::instance().log(LogLevel::kInfo, msg); }
void log_warn(std::string_view msg) { Logger::instance().log(LogLevel::kWarn, msg); }
void log_error(std::string_view msg) { Logger::instance().log(LogLevel::kError, msg); }

}  // namespace moment::util
