#pragma once
// Bandwidth/size unit constants. Everything in the optimizer and simulator is
// expressed in bytes and seconds; these constants keep literals readable.

#include <cstdint>

namespace moment::util {

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * kKiB;
inline constexpr double kGiB = 1024.0 * kMiB;
inline constexpr double kTiB = 1024.0 * kGiB;

/// GiB/s to bytes-per-second.
constexpr double gib_per_s(double v) noexcept { return v * kGiB; }

/// Bytes-per-second to GiB/s.
constexpr double to_gib_per_s(double bytes_per_s) noexcept {
  return bytes_per_s / kGiB;
}

}  // namespace moment::util
