#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace moment::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::to_string(int indent) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << pad << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : headers_[c];
      out << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };
  auto emit_sep = [&] {
    out << pad << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      out << std::string(widths[c] + 2, '-') << "|";
    }
    out << '\n';
  };
  emit_row(headers_);
  emit_sep();
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print(std::ostream& os, int indent) const {
  os << to_string(indent);
}

std::string Table::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string Table::bytes(double b) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (b >= 1024.0 && unit < 4) {
    b /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", b, kUnits[unit]);
  return buf;
}

std::string Table::speedup(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2fx", v);
  return buf;
}

std::string Table::percent(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%%", v * 100.0);
  return buf;
}

}  // namespace moment::util
