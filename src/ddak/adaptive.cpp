#include "ddak/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace moment::ddak {

AdaptivePlacer::AdaptivePlacer(std::vector<Bin> bins,
                               DataPlacementResult initial,
                               const AdaptiveOptions& options)
    : bins_(std::move(bins)), placement_(std::move(initial)),
      options_(options), ema_(placement_.bin_of_vertex.size(), 0.0),
      batch_counts_(placement_.bin_of_vertex.size(), 0.0) {
  if (placement_.bin_access.size() != bins_.size()) {
    throw std::invalid_argument("AdaptivePlacer: placement/bins mismatch");
  }
  if (options_.ema_alpha <= 0.0 || options_.ema_alpha > 1.0) {
    throw std::invalid_argument("AdaptivePlacer: ema_alpha in (0,1]");
  }
}

void AdaptivePlacer::observe(std::span<const graph::VertexId> accesses) {
  std::fill(batch_counts_.begin(), batch_counts_.end(), 0.0);
  for (graph::VertexId v : accesses) {
    if (v >= batch_counts_.size()) {
      throw std::out_of_range("AdaptivePlacer::observe: vertex id");
    }
    batch_counts_[v] += 1.0;
  }
  const double a = options_.ema_alpha;
  ema_total_ = 0.0;
  for (std::size_t v = 0; v < ema_.size(); ++v) {
    ema_[v] = (1.0 - a) * ema_[v] + a * batch_counts_[v];
    ema_total_ += ema_[v];
  }
  ++batches_;
}

double AdaptivePlacer::target_share(std::size_t bin) const {
  double total = 0.0;
  for (const auto& b : bins_) total += std::max(0.0, b.traffic_target);
  return total > 0.0 ? std::max(0.0, bins_[bin].traffic_target) / total : 0.0;
}

double AdaptivePlacer::ema_share(std::size_t bin) const {
  if (ema_total_ <= 0.0) return 0.0;
  double acc = 0.0;
  for (std::size_t v = 0; v < ema_.size(); ++v) {
    if (placement_.bin_of_vertex[v] == static_cast<std::int32_t>(bin)) {
      acc += ema_[v];
    }
  }
  return acc / ema_total_;
}

double AdaptivePlacer::current_error() const {
  double err = 0.0;
  for (std::size_t b = 0; b < bins_.size(); ++b) {
    if (bins_[b].traffic_target > 0.0) {
      err += std::abs(ema_share(b) - target_share(b));
    }
  }
  return err;
}

void AdaptivePlacer::move_vertex(graph::VertexId v, std::size_t to_bin) {
  const auto from = static_cast<std::size_t>(placement_.bin_of_vertex[v]);
  placement_.bin_of_vertex[v] = static_cast<std::int32_t>(to_bin);
  --placement_.bin_count[from];
  ++placement_.bin_count[to_bin];
  // bin_access / shares are hotness-profile based; refresh them from EMA.
}

MigrationStats AdaptivePlacer::rebalance() {
  MigrationStats stats;
  stats.error_before = current_error();
  if (ema_total_ <= 0.0) {
    stats.error_after = stats.error_before;
    return stats;
  }

  // Tier ordering: lower enum = faster tier. For each fast bin (GPU, CPU),
  // promote the hottest non-resident vertices over its coldest residents.
  std::vector<std::size_t> order(ema_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return ema_[a] > ema_[b]; });

  std::size_t budget = options_.migration_budget;
  for (std::size_t bin = 0; bin < bins_.size() && budget > 0; ++bin) {
    if (bins_[bin].tier == topology::StorageTier::kSsd) continue;
    // Coldest current residents of this bin, hottest outsiders above them.
    std::vector<graph::VertexId> residents;
    for (std::size_t v = 0; v < ema_.size(); ++v) {
      if (placement_.bin_of_vertex[v] == static_cast<std::int32_t>(bin)) {
        residents.push_back(static_cast<graph::VertexId>(v));
      }
    }
    std::sort(residents.begin(), residents.end(),
              [&](graph::VertexId a, graph::VertexId b) {
                return ema_[a] < ema_[b];
              });
    std::size_t cold_idx = 0;
    for (std::size_t o = 0; o < order.size() && budget > 0; ++o) {
      const auto v = static_cast<graph::VertexId>(order[o]);
      const auto cur = static_cast<std::size_t>(placement_.bin_of_vertex[v]);
      if (cur == bin) continue;
      // Only promote from slower tiers into this faster bin.
      if (static_cast<int>(bins_[cur].tier) <=
          static_cast<int>(bins_[bin].tier)) {
        continue;
      }
      const bool has_free_capacity =
          static_cast<double>(placement_.bin_count[bin]) + 1.0 <=
          bins_[bin].capacity_vertices;
      if (has_free_capacity) {
        if (ema_[v] <= 0.0) break;  // nothing observed-hot remains
        move_vertex(v, bin);
        ++stats.promotions;
        ++stats.migrated;
        --budget;
        continue;
      }
      if (cold_idx >= residents.size()) break;
      const graph::VertexId victim = residents[cold_idx];
      if (ema_[v] < options_.hysteresis * (ema_[victim] + 1e-12)) {
        break;  // order[] is sorted desc: nothing hotter follows
      }
      // Swap: victim demotes to the promoted vertex's old bin.
      move_vertex(victim, cur);
      move_vertex(v, bin);
      ++cold_idx;
      ++stats.promotions;
      ++stats.demotions;
      stats.migrated += 2;
      budget = budget >= 2 ? budget - 2 : 0;
    }
  }

  // Refresh hotness bookkeeping from the EMA.
  std::fill(placement_.bin_access.begin(), placement_.bin_access.end(), 0.0);
  for (std::size_t v = 0; v < ema_.size(); ++v) {
    placement_.bin_access[static_cast<std::size_t>(
        placement_.bin_of_vertex[v])] += ema_[v];
  }
  for (std::size_t b = 0; b < bins_.size(); ++b) {
    placement_.bin_traffic_share[b] =
        ema_total_ > 0.0 ? placement_.bin_access[b] / ema_total_ : 0.0;
  }
  placement_.traffic_share_error = current_error();
  stats.error_after = placement_.traffic_share_error;
  return stats;
}

MigrationStats AdaptivePlacer::fail_bin(std::size_t bin) {
  if (bin >= bins_.size()) {
    throw std::out_of_range("AdaptivePlacer::fail_bin: bin index");
  }
  MigrationStats stats;
  stats.error_before = current_error();

  const std::size_t failed[] = {bin};
  const std::vector<FailoverMove> moves =
      plan_bin_failover(bins_, placement_, failed);
  apply_failover(bins_, placement_, moves);
  stats.migrated = moves.size();

  // The device is gone: it can neither hold vertices nor absorb traffic.
  bins_[bin].capacity_vertices = 0.0;
  bins_[bin].traffic_target = 0.0;

  // Refresh hotness bookkeeping from the EMA (matches rebalance()).
  std::fill(placement_.bin_access.begin(), placement_.bin_access.end(), 0.0);
  for (std::size_t v = 0; v < ema_.size(); ++v) {
    placement_.bin_access[static_cast<std::size_t>(
        placement_.bin_of_vertex[v])] += ema_[v];
  }
  for (std::size_t b = 0; b < bins_.size(); ++b) {
    placement_.bin_traffic_share[b] =
        ema_total_ > 0.0 ? placement_.bin_access[b] / ema_total_ : 0.0;
  }
  placement_.traffic_share_error = current_error();
  stats.error_after = placement_.traffic_share_error;
  return stats;
}

}  // namespace moment::ddak
