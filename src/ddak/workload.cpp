#include "ddak/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace moment::ddak {

double hot_traffic_share(const sampling::HotnessProfile& profile,
                         double fraction) {
  return hot_traffic_share_range(profile, 0.0, fraction);
}

double hot_traffic_share_range(const sampling::HotnessProfile& profile,
                               double lo_fraction, double hi_fraction) {
  if (profile.hotness.empty() || hi_fraction <= lo_fraction) return 0.0;
  std::vector<double> sorted = profile.hotness;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const double total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
  if (total <= 0.0) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  const auto lo =
      static_cast<std::size_t>(std::clamp(lo_fraction, 0.0, 1.0) * n);
  const auto hi = static_cast<std::size_t>(
      std::min(std::clamp(hi_fraction, 0.0, 1.0) * n, n));
  double acc = 0.0;
  for (std::size_t i = lo; i < hi; ++i) acc += sorted[i];
  return acc / total;
}

EpochWorkload make_epoch_workload(const graph::Dataset& dataset,
                                  const sampling::HotnessProfile& profile,
                                  const CacheConfig& cache, int num_gpus,
                                  std::size_t batch_size) {
  if (num_gpus <= 0) {
    throw std::invalid_argument("make_epoch_workload: num_gpus must be > 0");
  }
  if (profile.batch_size == 0 || profile.fetches_per_batch <= 0.0) {
    throw std::invalid_argument(
        "make_epoch_workload: hotness profile is empty");
  }
  EpochWorkload w;
  w.num_gpus = num_gpus;
  w.batch_size = batch_size;
  w.cache = cache;
  w.gpu_cache_mode = cache.gpu_cache_mode;
  w.feature_bytes =
      static_cast<double>(dataset.paper.feature_dim) * sizeof(float);

  // Unique fetches per seed vertex, measured on the scaled graph. The
  // profiler's batch size is chosen proportional to the scaled graph so the
  // in-batch dedup ratio transfers to the paper-scale batch of 8000.
  const double unique_per_seed =
      profile.fetches_per_batch / static_cast<double>(profile.batch_size);
  w.fetches_per_batch = unique_per_seed * static_cast<double>(batch_size);

  const double train_vertices_paper =
      dataset.train_fraction * static_cast<double>(dataset.paper.vertices);
  w.batches_per_epoch = static_cast<std::size_t>(
      std::ceil(train_vertices_paper / static_cast<double>(batch_size)));

  w.total_bytes = static_cast<double>(w.batches_per_epoch) *
                  w.fetches_per_batch * w.feature_bytes;
  w.per_gpu_bytes = w.total_bytes / static_cast<double>(num_gpus);

  // Cache hit shares follow the hotness distribution: caches hold the
  // hottest vertices (GPU tier first, then CPU — the paper's GPU > CPU > SSD
  // hierarchy), so their traffic share is the hot-prefix share.
  double gpu_cached_fraction = cache.gpu_cache_fraction;
  if (cache.gpu_cache_mode == GpuCacheMode::kPartitioned) {
    gpu_cached_fraction *= static_cast<double>(num_gpus);  // disjoint slices
  }
  gpu_cached_fraction = std::min(gpu_cached_fraction, 1.0);
  w.gpu_hit_fraction = hot_traffic_share(profile, gpu_cached_fraction);
  w.cpu_hit_fraction = hot_traffic_share_range(
      profile, gpu_cached_fraction,
      std::min(gpu_cached_fraction + cache.cpu_cache_fraction, 1.0));
  w.ssd_fraction =
      std::max(0.0, 1.0 - w.gpu_hit_fraction - w.cpu_hit_fraction);
  return w;
}

topology::WorkloadDemand to_flow_demand(const EpochWorkload& workload,
                                        const topology::FlowGraph& fg,
                                        SupplyModel supply_model) {
  topology::WorkloadDemand demand;
  demand.per_gpu_bytes.assign(fg.gpus.size(), workload.per_gpu_bytes);

  const auto num_gpus = static_cast<double>(
      std::max<std::size_t>(1, fg.gpus.size()));
  std::size_t num_ssd = 0, num_dram = 0;
  for (const auto& s : fg.storage) {
    if (s.tier == topology::StorageTier::kSsd) ++num_ssd;
    if (s.tier == topology::StorageTier::kCpuDram) ++num_dram;
  }

  demand.per_storage_bytes.assign(fg.storage.size(), -1.0);
  for (std::size_t i = 0; i < fg.storage.size(); ++i) {
    switch (fg.storage[i].tier) {
      case topology::StorageTier::kGpuHbm:
        if (workload.gpu_cache_mode == GpuCacheMode::kReplicated) {
          // Each GPU's cache replica serves that GPU's own hits.
          demand.per_storage_bytes[i] =
              workload.per_gpu_bytes * workload.gpu_hit_fraction;
        } else {
          // Disjoint slice: serves 1/G of the fleet-wide GPU-tier hits,
          // routed to peers over NVLink/PCIe P2P by the flow itself.
          demand.per_storage_bytes[i] =
              workload.total_bytes * workload.gpu_hit_fraction / num_gpus;
        }
        break;
      case topology::StorageTier::kCpuDram:
        if (supply_model == SupplyModel::kUniformHash && num_dram > 0) {
          demand.per_storage_bytes[i] = workload.total_bytes *
                                        workload.cpu_hit_fraction /
                                        static_cast<double>(num_dram);
        }
        break;
      case topology::StorageTier::kSsd:
        if (supply_model == SupplyModel::kUniformHash && num_ssd > 0) {
          demand.per_storage_bytes[i] = workload.total_bytes *
                                        workload.ssd_fraction /
                                        static_cast<double>(num_ssd);
        }
        break;
    }
  }

  demand.per_tier_bytes.assign(3, -1.0);
  demand.per_tier_bytes[static_cast<int>(topology::StorageTier::kGpuHbm)] =
      workload.total_bytes * workload.gpu_hit_fraction;
  demand.per_tier_bytes[static_cast<int>(topology::StorageTier::kCpuDram)] =
      workload.total_bytes * workload.cpu_hit_fraction;
  demand.per_tier_bytes[static_cast<int>(topology::StorageTier::kSsd)] =
      workload.total_bytes * workload.ssd_fraction;
  return demand;
}

}  // namespace moment::ddak
