#pragma once
// Epoch workload model: converts a dataset + hotness profile + cache
// configuration into paper-scale traffic arithmetic — how many bytes each
// GPU pulls per epoch and how those bytes split across the storage tiers.
//
// Scale-free quantities (dedup ratio, hotness shares) are measured on the
// scaled graph with a proportionally scaled batch size, then applied to the
// paper-scale volumes (batch 8000, feature dim 1024 floats).

#include <cstddef>

#include "graph/datasets.hpp"
#include "sampling/hotness.hpp"
#include "topology/flow_graph.hpp"
#include "topology/predictor.hpp"

namespace moment::ddak {

enum class GpuCacheMode {
  /// Every GPU caches the same hottest vertices; hits are HBM-local.
  kReplicated,
  /// GPUs cache disjoint hot slices; (G-1)/G of cache hits are peer reads
  /// over NVLink or PCIe P2P (Section 4.7's NVLink study).
  kPartitioned,
};

struct CacheConfig {
  double gpu_cache_fraction = 0.005;  // of all vertices, per GPU
  double cpu_cache_fraction = 0.01;   // of all vertices, total (paper: 1%)
  GpuCacheMode gpu_cache_mode = GpuCacheMode::kReplicated;
};

struct EpochWorkload {
  int num_gpus = 0;
  std::size_t batch_size = 8000;          // paper-scale
  std::size_t batches_per_epoch = 0;      // over all GPUs
  double feature_bytes = 4096.0;          // 1024 floats
  double fetches_per_batch = 0.0;         // paper-scale unique fetches
  double total_bytes = 0.0;               // per epoch, all GPUs
  double per_gpu_bytes = 0.0;
  double gpu_hit_fraction = 0.0;          // per-GPU cache traffic share
  double cpu_hit_fraction = 0.0;
  double ssd_fraction = 0.0;
  GpuCacheMode gpu_cache_mode = GpuCacheMode::kReplicated;
  CacheConfig cache;
};

EpochWorkload make_epoch_workload(const graph::Dataset& dataset,
                                  const sampling::HotnessProfile& profile,
                                  const CacheConfig& cache, int num_gpus,
                                  std::size_t batch_size = 8000);

/// How the epoch's bytes may be drawn from individual storage devices.
enum class SupplyModel {
  /// Per-tier budgets only: the flow freely chooses each device's share and
  /// DDAK realises that split afterwards. This is Moment's model.
  kFlexibleTier,
  /// Per-device byte supplies fixed to the uniform hash split (every SSD
  /// serves 1/S of the SSD bytes, every socket DRAM 1/2 of the CPU bytes).
  /// This models topology-oblivious systems (M-GIDS/M-Hyperion with hash
  /// partitioning), whose data cannot move to where the bandwidth is.
  kUniformHash,
};

/// Builds the demand-mode inputs for the max-flow predictor: equal per-GPU
/// demands, per-GPU-HBM byte supplies from the cache-hit share, and byte
/// budgets per the chosen supply model.
topology::WorkloadDemand to_flow_demand(
    const EpochWorkload& workload, const topology::FlowGraph& fg,
    SupplyModel supply_model = SupplyModel::kFlexibleTier);

/// Traffic share of the hottest `fraction` of vertices (scale-free skew
/// lookup used by the cache-hit estimates).
double hot_traffic_share(const sampling::HotnessProfile& profile,
                         double fraction);
/// Traffic share of vertices ranked in (`lo_fraction`, `hi_fraction`].
double hot_traffic_share_range(const sampling::HotnessProfile& profile,
                               double lo_fraction, double hi_fraction);

}  // namespace moment::ddak
