#pragma once
// Data-distribution-aware knapsack (DDAK) — paper Section 3.3.
//
// Storage devices become bins with (a) a vertex capacity (cache size or SSD
// size) and (b) a traffic target, the bytes the max-flow solution expects the
// bin to serve. Vertices are allocated in descending hotness order, pooled n
// at a time (default n = 100); each pool goes to the bin minimising
//
//   priority = (bin_access / bin_traffic) * (bin_current / bin_capacity)
//
// i.e. the bin furthest below its traffic budget and emptiest, with the
// GPU > CPU > SSD hierarchy as tie-break. A hash-partitioning baseline
// (uniform SSD striping) reproduces the paper's comparison point.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sampling/hotness.hpp"
#include "topology/flow_graph.hpp"

namespace moment::ddak {

struct Bin {
  std::string name;           // "GPU0.HBM", "DRAM1", "SSD3"
  int storage_index = -1;     // index into FlowGraph::storage
  topology::StorageTier tier = topology::StorageTier::kSsd;
  double capacity_vertices = 0.0;
  double traffic_target = 0.0;  // bytes from the max-flow plan (>= 0)
  /// Replicated bin: the same content lives on several storage nodes and a
  /// consumer reads from the nearest replica (e.g. the CPU cache mirrored on
  /// both sockets so hits never cross QPI). Empty = single-copy bin.
  std::vector<int> replica_storage_indices;
};

struct DdakOptions {
  std::size_t pool_size = 100;  // vertices allocated per priority evaluation
};

/// Pool size scaled to the graph: the paper's n = 100 on 10^8..10^9-vertex
/// graphs is ~1e-6 of the vertices; on scaled-down graphs the same absolute
/// pool would be far too coarse at the hot end of the Zipf curve.
std::size_t default_pool_size(std::size_t num_vertices) noexcept;

struct DataPlacementResult {
  /// Per scaled-graph vertex: index into the bin vector.
  std::vector<std::int32_t> bin_of_vertex;
  std::vector<double> bin_access;        // cumulative hotness per bin
  std::vector<std::size_t> bin_count;    // vertices per bin
  /// Realised traffic share per bin (bin_access / total hotness).
  std::vector<double> bin_traffic_share;
  /// L1 distance between realised and targeted traffic shares (0 = perfect
  /// match with the flow plan). Only over bins with positive targets.
  double traffic_share_error = 0.0;
};

/// DDAK allocation. `bins` must cover at least the total vertex count.
DataPlacementResult ddak_place(std::span<const Bin> bins,
                               const sampling::HotnessProfile& profile,
                               const DdakOptions& options = {});

/// Hash baseline: caches still hold the hottest vertices (GIDS-style static
/// degree cache) but the SSD-resident remainder is striped uniformly across
/// SSD bins, ignoring traffic targets.
DataPlacementResult hash_place(std::span<const Bin> bins,
                               const sampling::HotnessProfile& profile,
                               std::uint64_t seed = 17);

/// Builds the bin vector for a compiled flow graph: one bin per storage node,
/// capacities from the cache configuration, traffic targets from a
/// prediction's per-storage bytes.
///
/// Targets are first smoothed within (tier, parent-device) equivalence
/// groups: devices on the same switch/root complex are interchangeable, so
/// any redistribution among them preserves optimality of the flow plan while
/// removing the arbitrary per-device split a particular max-flow solution
/// happens to pick.
std::vector<Bin> make_bins(const topology::Topology& topo,
                           const topology::FlowGraph& fg,
                           std::span<const double> per_storage_traffic,
                           std::size_t num_vertices,
                           double gpu_cache_fraction,
                           double cpu_cache_fraction);

/// The smoothing step, exposed for testing: averages traffic over storage
/// nodes sharing (tier, parent device). GPU HBM entries are left untouched.
std::vector<double> smooth_storage_traffic(
    const topology::Topology& topo, const topology::FlowGraph& fg,
    std::span<const double> per_storage_traffic);

/// One vertex displaced by a bin failure (device loss): it moves from its
/// failed bin to `to_bin` on a surviving device of the same tier.
struct FailoverMove {
  graph::VertexId vertex = 0;
  std::int32_t to_bin = -1;
};

/// Plans the re-placement of every vertex resident in `failed_bins` onto
/// surviving bins of the same tier, greedily filling the bin with the lowest
/// capacity-normalised fill first and never exceeding capacity. Vertices that
/// fit nowhere are omitted from the plan (the caller keeps serving them from
/// the host-side authoritative copy).
std::vector<FailoverMove> plan_bin_failover(
    std::span<const Bin> bins, const DataPlacementResult& placement,
    std::span<const std::size_t> failed_bins);

/// Applies a failover plan to the placement bookkeeping: moves each vertex,
/// transfers its (per-vertex even) share of the source bin's access mass, and
/// recomputes the realised traffic shares.
void apply_failover(std::span<const Bin> bins, DataPlacementResult& placement,
                    std::span<const FailoverMove> moves);

}  // namespace moment::ddak
