#pragma once
// Online adaptive data placement — the extension the paper's Limitations
// section plans ("lightweight online profiling and adaptive placement" for
// dynamic workloads): maintain an exponential moving average of per-vertex
// access frequency from the live request stream, and periodically migrate a
// bounded number of vertices so the realised bin traffic tracks the flow
// targets even as the workload drifts.
//
// Migration is deliberately conservative: a budget caps bytes moved per
// rebalance (SSD writes wear flash; cache copies evict), and hysteresis
// prevents ping-ponging vertices whose hotness sits near a bin boundary.

#include <cstdint>
#include <span>
#include <vector>

#include "ddak/ddak.hpp"

namespace moment::ddak {

struct AdaptiveOptions {
  /// EMA smoothing: ema = (1-alpha)*ema + alpha*observed (per observe()).
  double ema_alpha = 0.2;
  /// Max vertices migrated per rebalance() call.
  std::size_t migration_budget = 256;
  /// A candidate must be at least this factor hotter than the vertex it
  /// would displace (hysteresis against ping-ponging).
  double hysteresis = 1.25;
};

struct MigrationStats {
  std::size_t migrated = 0;
  std::size_t promotions = 0;   // into a faster tier
  std::size_t demotions = 0;    // out of a faster tier
  double error_before = 0.0;    // traffic-share L1 error vs targets
  double error_after = 0.0;
};

class AdaptivePlacer {
 public:
  /// Takes ownership of an initial placement over `bins`.
  AdaptivePlacer(std::vector<Bin> bins, DataPlacementResult initial,
                 const AdaptiveOptions& options = {});

  /// Feeds one observed batch of vertex accesses (e.g. a sampled fetch set).
  void observe(std::span<const graph::VertexId> accesses);

  /// Migrates up to the budget: promotes vertices whose EMA hotness exceeds
  /// the coldest resident of a faster tier (hysteresis-adjusted), then
  /// rebalances SSD bins toward their traffic targets.
  MigrationStats rebalance();

  /// Device-loss failover: re-places every resident of `bin` onto surviving
  /// same-tier bins (capacity-bounded, ignoring the migration budget — a
  /// failed device leaves no choice), zeroes the failed bin's capacity and
  /// traffic target, and refreshes the bookkeeping. Returns the migration
  /// count; vertices that fit nowhere keep their old bin assignment and must
  /// be served from a fallback copy by the caller.
  MigrationStats fail_bin(std::size_t bin);

  const DataPlacementResult& placement() const noexcept { return placement_; }
  const std::vector<Bin>& bins() const noexcept { return bins_; }
  const std::vector<double>& ema_hotness() const noexcept { return ema_; }
  std::uint64_t observed_batches() const noexcept { return batches_; }

  /// Traffic-share L1 error of the current placement under the current EMA.
  double current_error() const;

 private:
  void move_vertex(graph::VertexId v, std::size_t to_bin);
  double target_share(std::size_t bin) const;
  double ema_share(std::size_t bin) const;

  std::vector<Bin> bins_;
  DataPlacementResult placement_;
  AdaptiveOptions options_;
  std::vector<double> ema_;
  std::vector<double> batch_counts_;  // scratch, zeroed per observe
  double ema_total_ = 0.0;
  std::uint64_t batches_ = 0;
};

}  // namespace moment::ddak
