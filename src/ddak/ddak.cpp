#include "ddak/ddak.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace moment::ddak {

namespace {

double total_capacity(std::span<const Bin> bins) {
  double cap = 0.0;
  for (const auto& b : bins) cap += b.capacity_vertices;
  return cap;
}

DataPlacementResult init_result(std::span<const Bin> bins,
                                std::size_t num_vertices) {
  DataPlacementResult r;
  r.bin_of_vertex.assign(num_vertices, -1);
  r.bin_access.assign(bins.size(), 0.0);
  r.bin_count.assign(bins.size(), 0);
  r.bin_traffic_share.assign(bins.size(), 0.0);
  return r;
}

void finalize(std::span<const Bin> bins,
              const sampling::HotnessProfile& profile,
              DataPlacementResult& r) {
  const double total_hotness = std::accumulate(
      profile.hotness.begin(), profile.hotness.end(), 0.0);
  double total_target = 0.0;
  for (const auto& b : bins) total_target += std::max(0.0, b.traffic_target);
  r.traffic_share_error = 0.0;
  for (std::size_t i = 0; i < bins.size(); ++i) {
    r.bin_traffic_share[i] =
        total_hotness > 0.0 ? r.bin_access[i] / total_hotness : 0.0;
    if (bins[i].traffic_target > 0.0 && total_target > 0.0) {
      r.traffic_share_error += std::abs(
          r.bin_traffic_share[i] - bins[i].traffic_target / total_target);
    }
  }
}

}  // namespace

DataPlacementResult ddak_place(std::span<const Bin> bins,
                               const sampling::HotnessProfile& profile,
                               const DdakOptions& options) {
  const std::size_t n = profile.hotness.size();
  if (total_capacity(bins) + 0.5 < static_cast<double>(n)) {
    throw std::invalid_argument("ddak_place: bins cannot hold all vertices");
  }
  if (options.pool_size == 0) {
    throw std::invalid_argument("ddak_place: pool_size must be > 0");
  }
  DataPlacementResult r = init_result(bins, n);

  double total_target = 0.0;
  for (const auto& b : bins) total_target += std::max(0.0, b.traffic_target);

  const std::vector<graph::VertexId> order = profile.by_hotness_desc();

  // Priority per Eq. (2): lower = more room in both traffic budget and
  // capacity. Bins at capacity are excluded; zero-target bins are used only
  // when nothing else fits (priority +inf but still capacity-checked).
  // The small regularisers keep the product well-defined for empty bins
  // (0 * 0 would make every empty bin indistinguishable); ties fall through
  // to the GPU > CPU > SSD hierarchy, then to the larger traffic target.
  constexpr double kReg = 1e-3;
  auto priority = [&](std::size_t i) {
    const Bin& b = bins[i];
    if (static_cast<double>(r.bin_count[i]) >= b.capacity_vertices) {
      return std::numeric_limits<double>::infinity();
    }
    const double target_share =
        total_target > 0.0 ? b.traffic_target / total_target : 0.0;
    if (target_share <= 0.0) {
      return std::numeric_limits<double>::max();  // park-only bin
    }
    const double access_ratio = r.bin_traffic_share[i] / target_share;
    const double fill_ratio =
        static_cast<double>(r.bin_count[i]) / b.capacity_vertices;
    return (access_ratio + kReg) * (fill_ratio + kReg);
  };

  const double total_hotness = std::accumulate(
      profile.hotness.begin(), profile.hotness.end(), 0.0);

  // Selection rule (paper Section 3.3): while a bin sits below its traffic
  // budget, the GPU > CPU > SSD hierarchy decides who receives the next hot
  // pool — this is the "performance hierarchy" enforcement that keeps hot
  // vertices in the fast tiers until their planned share is met. Among
  // unsatisfied bins of the same tier (and once every budget is met), the
  // Eq.-(2) priority picks the bin furthest below target and emptiest.
  auto target_share_of = [&](std::size_t i) {
    return total_target > 0.0 ? bins[i].traffic_target / total_target : 0.0;
  };
  std::size_t cursor = 0;
  while (cursor < order.size()) {
    std::size_t best = bins.size();
    double best_priority = std::numeric_limits<double>::infinity();
    bool best_unsatisfied = false;
    int best_tier = 99;
    for (std::size_t i = 0; i < bins.size(); ++i) {
      const double p = priority(i);
      if (std::isinf(p)) continue;  // at capacity
      // Cache capacity is never wasted: a GPU/CPU bin with free room keeps
      // absorbing hot vertices even past its flow budget (serving them from
      // a cache tier strictly replaces slower SSD traffic).
      const bool unsatisfied =
          r.bin_traffic_share[i] < target_share_of(i) - 1e-12 ||
          bins[i].tier != topology::StorageTier::kSsd;
      const int tier = static_cast<int>(bins[i].tier);
      bool better;
      if (best == bins.size()) {
        better = true;
      } else if (unsatisfied != best_unsatisfied) {
        better = unsatisfied;  // below-budget bins come first
      } else if (unsatisfied && tier != best_tier) {
        better = tier < best_tier;  // hierarchy among below-budget bins
      } else {
        better = p < best_priority - 1e-12 ||
                 (std::abs(p - best_priority) <= 1e-12 &&
                  bins[i].traffic_target >
                      bins[best].traffic_target);
      }
      if (better) {
        best = i;
        best_priority = p;
        best_unsatisfied = unsatisfied;
        best_tier = tier;
      }
    }
    if (best == bins.size()) {
      throw std::logic_error("ddak_place: no bin has free capacity");
    }

    const double free_cap = bins[best].capacity_vertices -
                            static_cast<double>(r.bin_count[best]);
    const std::size_t take = std::min<std::size_t>(
        {options.pool_size, order.size() - cursor,
         static_cast<std::size_t>(std::max(1.0, free_cap))});
    for (std::size_t k = 0; k < take; ++k) {
      const graph::VertexId v = order[cursor + k];
      r.bin_of_vertex[v] = static_cast<std::int32_t>(best);
      r.bin_access[best] += profile.hotness[v];
      ++r.bin_count[best];
    }
    if (total_hotness > 0.0) {
      r.bin_traffic_share[best] = r.bin_access[best] / total_hotness;
    }
    cursor += take;
  }

  finalize(bins, profile, r);
  return r;
}

DataPlacementResult hash_place(std::span<const Bin> bins,
                               const sampling::HotnessProfile& profile,
                               std::uint64_t seed) {
  const std::size_t n = profile.hotness.size();
  if (total_capacity(bins) + 0.5 < static_cast<double>(n)) {
    throw std::invalid_argument("hash_place: bins cannot hold all vertices");
  }
  DataPlacementResult r = init_result(bins, n);

  // Cache tiers (GPU, CPU) take the hottest vertices in hierarchy order —
  // this mirrors GIDS-style static degree caching.
  const std::vector<graph::VertexId> order = profile.by_hotness_desc();
  std::vector<std::size_t> cache_bins;
  std::vector<std::size_t> ssd_bins;
  for (std::size_t i = 0; i < bins.size(); ++i) {
    (bins[i].tier == topology::StorageTier::kSsd ? ssd_bins : cache_bins)
        .push_back(i);
  }
  std::sort(cache_bins.begin(), cache_bins.end(), [&](std::size_t a,
                                                      std::size_t b) {
    return static_cast<int>(bins[a].tier) < static_cast<int>(bins[b].tier);
  });
  if (ssd_bins.empty()) {
    throw std::invalid_argument("hash_place: need at least one SSD bin");
  }

  std::size_t cursor = 0;
  for (std::size_t bi : cache_bins) {
    const auto cap = static_cast<std::size_t>(bins[bi].capacity_vertices);
    for (std::size_t k = 0; k < cap && cursor < order.size(); ++k, ++cursor) {
      const graph::VertexId v = order[cursor];
      r.bin_of_vertex[v] = static_cast<std::int32_t>(bi);
      r.bin_access[bi] += profile.hotness[v];
      ++r.bin_count[bi];
    }
  }

  // Remainder: uniform hash striping across SSDs, hotness-oblivious.
  for (; cursor < order.size(); ++cursor) {
    const graph::VertexId v = order[cursor];
    const std::uint64_t h = util::hash_combine(seed, v);
    const std::size_t bi = ssd_bins[h % ssd_bins.size()];
    r.bin_of_vertex[v] = static_cast<std::int32_t>(bi);
    r.bin_access[bi] += profile.hotness[v];
    ++r.bin_count[bi];
  }

  finalize(bins, profile, r);
  return r;
}

std::size_t default_pool_size(std::size_t num_vertices) noexcept {
  return std::clamp<std::size_t>(num_vertices / 2048, 1, 100);
}

std::vector<double> smooth_storage_traffic(
    const topology::Topology& topo, const topology::FlowGraph& fg,
    std::span<const double> per_storage_traffic) {
  std::vector<double> out(per_storage_traffic.begin(),
                          per_storage_traffic.end());
  if (out.size() != fg.storage.size()) {
    throw std::invalid_argument("smooth_storage_traffic: size mismatch");
  }
  // Group by (tier, parent device). A storage device's parent is the other
  // end of its single fabric link.
  std::vector<std::pair<int, topology::DeviceId>> key(out.size());
  for (std::size_t i = 0; i < fg.storage.size(); ++i) {
    const auto& s = fg.storage[i];
    topology::DeviceId parent = -1;
    if (s.tier != topology::StorageTier::kGpuHbm) {
      for (topology::LinkId lid : topo.incident(s.device)) {
        const auto& l = topo.link(lid);
        parent = l.a == s.device ? l.b : l.a;
        break;
      }
    }
    key[i] = {static_cast<int>(s.tier), parent};
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (fg.storage[i].tier == topology::StorageTier::kGpuHbm) continue;
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t j = 0; j < out.size(); ++j) {
      if (key[j] == key[i]) {
        sum += per_storage_traffic[j];
        ++count;
      }
    }
    out[i] = sum / static_cast<double>(count);
  }
  return out;
}

std::vector<Bin> make_bins(const topology::Topology& topo,
                           const topology::FlowGraph& fg,
                           std::span<const double> per_storage_traffic,
                           std::size_t num_vertices,
                           double gpu_cache_fraction,
                           double cpu_cache_fraction) {
  if (!per_storage_traffic.empty() &&
      per_storage_traffic.size() != fg.storage.size()) {
    throw std::invalid_argument("make_bins: traffic size mismatch");
  }
  std::size_t num_cpu = 0;
  for (const auto& s : fg.storage) {
    if (s.tier == topology::StorageTier::kCpuDram) ++num_cpu;
  }
  const std::vector<double> traffic =
      per_storage_traffic.empty()
          ? std::vector<double>(fg.storage.size(), 0.0)
          : smooth_storage_traffic(topo, fg, per_storage_traffic);
  std::vector<Bin> bins;
  bins.reserve(fg.storage.size());
  const auto nv = static_cast<double>(num_vertices);
  for (std::size_t i = 0; i < fg.storage.size(); ++i) {
    const auto& s = fg.storage[i];
    Bin b;
    b.name = topo.device(s.device).name;
    if (s.tier == topology::StorageTier::kGpuHbm) b.name += ".HBM";
    b.storage_index = static_cast<int>(i);
    b.tier = s.tier;
    switch (s.tier) {
      case topology::StorageTier::kGpuHbm:
        b.capacity_vertices = gpu_cache_fraction * nv;
        break;
      case topology::StorageTier::kCpuDram:
        // The paper's "CPU memory caches 1% of the vertices" is a total
        // budget; split it evenly across sockets.
        b.capacity_vertices = cpu_cache_fraction * nv /
                              static_cast<double>(std::max<std::size_t>(
                                  1, num_cpu));
        break;
      case topology::StorageTier::kSsd:
        b.capacity_vertices = nv;  // SSDs can hold the full dataset
        break;
    }
    b.traffic_target = traffic[i];
    bins.push_back(std::move(b));
  }
  return bins;
}

std::vector<FailoverMove> plan_bin_failover(
    std::span<const Bin> bins, const DataPlacementResult& placement,
    std::span<const std::size_t> failed_bins) {
  std::vector<bool> failed(bins.size(), false);
  for (std::size_t b : failed_bins) {
    if (b >= bins.size()) {
      throw std::out_of_range("plan_bin_failover: bin index");
    }
    failed[b] = true;
  }

  // Mutable fill state for the surviving bins.
  std::vector<double> fill(bins.size(), 0.0);
  for (std::size_t b = 0; b < bins.size(); ++b) {
    fill[b] = static_cast<double>(placement.bin_count[b]);
  }

  std::vector<FailoverMove> moves;
  for (std::size_t v = 0; v < placement.bin_of_vertex.size(); ++v) {
    const auto from = static_cast<std::size_t>(placement.bin_of_vertex[v]);
    if (from >= bins.size() || !failed[from]) continue;
    // Surviving same-tier bin with the lowest capacity-normalised fill.
    std::int32_t best = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t b = 0; b < bins.size(); ++b) {
      if (failed[b] || b == from) continue;
      if (bins[b].tier != bins[from].tier) continue;
      if (bins[b].capacity_vertices <= 0.0) continue;
      if (fill[b] + 1.0 > bins[b].capacity_vertices) continue;
      const double ratio = fill[b] / bins[b].capacity_vertices;
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best = static_cast<std::int32_t>(b);
      }
    }
    if (best < 0) continue;  // nowhere to go: host copy keeps serving it
    fill[static_cast<std::size_t>(best)] += 1.0;
    moves.push_back({static_cast<graph::VertexId>(v), best});
  }
  return moves;
}

void apply_failover(std::span<const Bin> bins, DataPlacementResult& placement,
                    std::span<const FailoverMove> moves) {
  for (const FailoverMove& m : moves) {
    const auto from =
        static_cast<std::size_t>(placement.bin_of_vertex[m.vertex]);
    const auto to = static_cast<std::size_t>(m.to_bin);
    // Per-vertex even share of the source bin's access mass moves with it.
    const double share =
        placement.bin_count[from] > 0
            ? placement.bin_access[from] /
                  static_cast<double>(placement.bin_count[from])
            : 0.0;
    placement.bin_access[from] -= share;
    placement.bin_access[to] += share;
    --placement.bin_count[from];
    ++placement.bin_count[to];
    placement.bin_of_vertex[m.vertex] = m.to_bin;
  }

  double total = 0.0;
  for (double a : placement.bin_access) total += a;
  double total_target = 0.0;
  for (const auto& b : bins) total_target += std::max(0.0, b.traffic_target);
  placement.traffic_share_error = 0.0;
  for (std::size_t b = 0; b < bins.size(); ++b) {
    placement.bin_traffic_share[b] =
        total > 0.0 ? placement.bin_access[b] / total : 0.0;
    if (bins[b].traffic_target > 0.0 && total_target > 0.0) {
      placement.traffic_share_error +=
          std::abs(placement.bin_traffic_share[b] -
                   bins[b].traffic_target / total_target);
    }
  }
}

}  // namespace moment::ddak
