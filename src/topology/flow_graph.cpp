#include "topology/flow_graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "util/units.hpp"

namespace moment::topology {

using maxflow::EdgeId;
using maxflow::NodeId;

int FlowGraph::storage_index_of(DeviceId dev) const {
  for (std::size_t i = 0; i < storage.size(); ++i) {
    if (storage[i].device == dev) return static_cast<int>(i);
  }
  return -1;
}

FlowGraph compile_flow_graph(const Topology& topo,
                             const FlowGraphOptions& options) {
  FlowGraph fg;
  const double hbm_bw = util::gib_per_s(1200.0);

  // Node allocation. comp_of / mem_of / inter_of map device -> flow node.
  const auto nd = static_cast<std::size_t>(topo.num_devices());
  std::vector<NodeId> inter_of(nd, -1), comp_of(nd, -1), mem_of(nd, -1),
      storage_of(nd, -1);

  fg.source = fg.net.add_node();
  fg.sink = fg.net.add_node();

  for (std::size_t d = 0; d < nd; ++d) {
    const Device& dev = topo.device(static_cast<DeviceId>(d));
    switch (dev.kind) {
      case DeviceKind::kRootComplex:
      case DeviceKind::kPcieSwitch:
      case DeviceKind::kNic:  // interchange hub in multi-node graphs (§5)
        inter_of[d] = fg.net.add_node();
        break;
      case DeviceKind::kCpuMemory:
      case DeviceKind::kSsd:
        storage_of[d] = fg.net.add_node();
        break;
      case DeviceKind::kGpu: {
        comp_of[d] = fg.net.add_node();
        GpuNodeInfo info;
        info.device = static_cast<DeviceId>(d);
        info.comp_node = comp_of[d];
        if (options.gpu_cache) {
          mem_of[d] = fg.net.add_node();
          info.mem_node = mem_of[d];
          // Local HBM path: cache hits never touch PCIe.
          fg.net.add_edge(mem_of[d], comp_of[d], hbm_bw);
        }
        fg.gpus.push_back(info);
        break;
      }
    }
  }

  // Sort GPU infos by GPU index so fg.gpus[i] is GPUi.
  std::sort(fg.gpus.begin(), fg.gpus.end(),
            [&](const GpuNodeInfo& x, const GpuNodeInfo& y) {
              return topo.device(x.device).index < topo.device(y.device).index;
            });

  // Per-storage-device accumulated outgoing rate (mirrored onto supply edge).
  std::vector<double> out_rate(nd, 0.0);

  fg.link_edges.resize(topo.num_links());
  for (std::size_t li = 0; li < topo.num_links(); ++li) {
    const Link& l = topo.link(static_cast<LinkId>(li));
    LinkFlowEdges& le = fg.link_edges[li];
    le.link = static_cast<LinkId>(li);
    const Device& da = topo.device(l.a);
    const Device& db = topo.device(l.b);

    auto is_inter = [](const Device& dev) {
      return dev.kind == DeviceKind::kRootComplex ||
             dev.kind == DeviceKind::kPcieSwitch ||
             dev.kind == DeviceKind::kNic;
    };

    if (l.kind == LinkKind::kDram) {
      // Orientation: CpuMemory side -> root complex (feature reads).
      const auto [mem, rc, bw] =
          da.kind == DeviceKind::kCpuMemory
              ? std::tuple{l.a, l.b, l.bw_ab}
              : std::tuple{l.b, l.a, l.bw_ba};
      le.ab = fg.net.add_edge(storage_of[static_cast<std::size_t>(mem)],
                              inter_of[static_cast<std::size_t>(rc)], bw);
      out_rate[static_cast<std::size_t>(mem)] += bw;
    } else if (l.kind == LinkKind::kNvlink) {
      if (options.gpu_cache && options.use_nvlink) {
        // Peer HBM -> peer compute, both directions.
        le.ab = fg.net.add_edge(mem_of[static_cast<std::size_t>(l.a)],
                                comp_of[static_cast<std::size_t>(l.b)], l.bw_ab);
        le.ba = fg.net.add_edge(mem_of[static_cast<std::size_t>(l.b)],
                                comp_of[static_cast<std::size_t>(l.a)], l.bw_ba);
        out_rate[static_cast<std::size_t>(l.a)] += l.bw_ab;
        out_rate[static_cast<std::size_t>(l.b)] += l.bw_ba;
      }
    } else if (da.kind == DeviceKind::kSsd || db.kind == DeviceKind::kSsd) {
      const auto [ssd, parent, bw] =
          da.kind == DeviceKind::kSsd ? std::tuple{l.a, l.b, l.bw_ab}
                                      : std::tuple{l.b, l.a, l.bw_ba};
      le.ab = fg.net.add_edge(storage_of[static_cast<std::size_t>(ssd)],
                              inter_of[static_cast<std::size_t>(parent)], bw);
      out_rate[static_cast<std::size_t>(ssd)] += bw;
    } else if (da.kind == DeviceKind::kGpu || db.kind == DeviceKind::kGpu) {
      const auto [parent, gpu, down_bw, up_bw] =
          db.kind == DeviceKind::kGpu
              ? std::tuple{l.a, l.b, l.bw_ab, l.bw_ba}
              : std::tuple{l.b, l.a, l.bw_ba, l.bw_ab};
      le.ab = fg.net.add_edge(inter_of[static_cast<std::size_t>(parent)],
                              comp_of[static_cast<std::size_t>(gpu)], down_bw);
      if (options.gpu_cache) {
        le.ba = fg.net.add_edge(mem_of[static_cast<std::size_t>(gpu)],
                                inter_of[static_cast<std::size_t>(parent)],
                                up_bw);
        out_rate[static_cast<std::size_t>(gpu)] += up_bw;
      }
    } else if (is_inter(da) && is_inter(db)) {
      le.ab = fg.net.add_edge(inter_of[static_cast<std::size_t>(l.a)],
                              inter_of[static_cast<std::size_t>(l.b)], l.bw_ab);
      le.ba = fg.net.add_edge(inter_of[static_cast<std::size_t>(l.b)],
                              inter_of[static_cast<std::size_t>(l.a)], l.bw_ba);
    } else {
      throw std::logic_error("compile_flow_graph: unsupported link endpoints");
    }
  }

  // Supply side: s -> tier aggregator -> storage node. The per-storage edge
  // mirrors the node's total outgoing rate (paper's c(s, v_s) = c(v_s, v_i));
  // the tier edge mirrors the member sum and exists so byte budgets can be
  // expressed per tier. SSDs first, then DRAM, then GPU HBM caches, each
  // ordered by device index within its tier.
  auto add_storage = [&](DeviceKind kind, StorageTier tier) {
    std::vector<std::pair<StorageNodeInfo, double>> members;
    double tier_rate = 0.0;
    for (DeviceId dev : topo.devices_of_kind(kind)) {
      const auto d = static_cast<std::size_t>(dev);
      const NodeId node =
          kind == DeviceKind::kGpu ? mem_of[d] : storage_of[d];
      if (node < 0) continue;
      StorageNodeInfo info;
      info.device = dev;
      info.tier = tier;
      info.node = node;
      const double rate =
          kind == DeviceKind::kGpu ? std::min(out_rate[d] + hbm_bw, hbm_bw * 2)
                                   : out_rate[d];
      members.emplace_back(info, rate);
      tier_rate += rate;
    }
    if (members.empty()) return;
    const NodeId tier_node = fg.net.add_node();
    fg.tier_edge[static_cast<int>(tier)] =
        fg.net.add_edge(fg.source, tier_node, tier_rate);
    for (auto& [info, rate] : members) {
      info.supply_edge = fg.net.add_edge(tier_node, info.node, rate);
      fg.storage.push_back(info);
    }
  };
  add_storage(DeviceKind::kSsd, StorageTier::kSsd);
  add_storage(DeviceKind::kCpuMemory, StorageTier::kCpuDram);
  if (options.gpu_cache) add_storage(DeviceKind::kGpu, StorageTier::kGpuHbm);

  // Demand edges comp -> t, infinite in rate mode.
  for (auto& g : fg.gpus) {
    g.demand_edge = fg.net.add_edge(g.comp_node, fg.sink,
                                    maxflow::kInfiniteCapacity);
  }
  return fg;
}

}  // namespace moment::topology
