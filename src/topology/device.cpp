#include "topology/device.hpp"

#include <sstream>

#include "util/units.hpp"

namespace moment::topology {

const char* to_string(DeviceKind kind) noexcept {
  switch (kind) {
    case DeviceKind::kRootComplex: return "RootComplex";
    case DeviceKind::kPcieSwitch: return "PcieSwitch";
    case DeviceKind::kCpuMemory: return "CpuMemory";
    case DeviceKind::kGpu: return "Gpu";
    case DeviceKind::kSsd: return "Ssd";
    case DeviceKind::kNic: return "Nic";
  }
  return "Unknown";
}

const char* to_string(LinkKind kind) noexcept {
  switch (kind) {
    case LinkKind::kPcie: return "PCIe";
    case LinkKind::kQpi: return "QPI";
    case LinkKind::kNvlink: return "NVLink";
    case LinkKind::kDram: return "DRAM";
    case LinkKind::kNetwork: return "Network";
  }
  return "Unknown";
}

DeviceId Topology::add_device(DeviceKind kind, std::string name, int index) {
  devices_.push_back({kind, std::move(name), index});
  incident_.emplace_back();
  return static_cast<DeviceId>(devices_.size()) - 1;
}

LinkId Topology::add_link(DeviceId a, DeviceId b, LinkKind kind, double bw_ab,
                          double bw_ba, std::string label) {
  links_.push_back({a, b, kind, bw_ab, bw_ba, std::move(label)});
  const auto id = static_cast<LinkId>(links_.size()) - 1;
  incident_[static_cast<std::size_t>(a)].push_back(id);
  incident_[static_cast<std::size_t>(b)].push_back(id);
  return id;
}

std::vector<DeviceId> Topology::devices_of_kind(DeviceKind kind) const {
  std::vector<DeviceId> out;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i].kind == kind) out.push_back(static_cast<DeviceId>(i));
  }
  return out;
}

std::optional<DeviceId> Topology::find(const std::string& name) const {
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i].name == name) return static_cast<DeviceId>(i);
  }
  return std::nullopt;
}

std::optional<LinkId> Topology::find_link(DeviceId a, DeviceId b) const {
  for (LinkId id : incident(a)) {
    const Link& l = links_[static_cast<std::size_t>(id)];
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) return id;
  }
  return std::nullopt;
}

std::string Topology::to_string() const {
  std::ostringstream out;
  out << "Topology: " << devices_.size() << " devices, " << links_.size()
      << " links\n";
  for (const auto& l : links_) {
    out << "  " << devices_[static_cast<std::size_t>(l.a)].name << " <-> "
        << devices_[static_cast<std::size_t>(l.b)].name << "  ["
        << topology::to_string(l.kind) << " " << (l.label.empty() ? "-" : l.label)
        << "]  " << util::to_gib_per_s(l.bw_ab) << "/"
        << util::to_gib_per_s(l.bw_ba) << " GiB/s\n";
  }
  return out.str();
}

double pcie_bandwidth(int gen, int lanes) noexcept {
  // Profiled *usable* bandwidth, not the theoretical line rate. The paper's
  // automatic module measures link throughput rather than trusting specs;
  // these values reproduce its quoted figures: PCIe 4.0 x16 ~ 20 GiB/s, an
  // x4 NVMe slot comfortably carrying a 6 GiB/s P5510. Narrow links keep
  // proportionally more of their raw rate (payload efficiency rises as DLLP
  // overhead amortises over fewer lanes' worth of in-flight credits).
  double x16_gib = 20.0;  // gen4 default
  if (gen <= 3) x16_gib = 11.0;
  if (gen >= 5) x16_gib = 40.0;
  double gib;
  if (lanes >= 16) gib = x16_gib;
  else if (lanes >= 8) gib = x16_gib * 0.55;
  else if (lanes >= 4) gib = x16_gib * 0.325;  // gen4 x4 -> 6.5 GiB/s
  else if (lanes >= 2) gib = x16_gib * 0.16;
  else gib = x16_gib * 0.08;
  return util::gib_per_s(gib);
}

}  // namespace moment::topology
