#pragma once
// Physical communication topology model: devices (CPU root complexes, PCIe
// switches, CPU memory, GPUs, SSDs, NICs) connected by directed-capacity
// links (PCIe, QPI/UPI, NVLink, DRAM channels). This is the structure the
// paper extracts from a live server via lspci/dmidecode; here it is built
// from machine presets plus a hardware placement.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace moment::topology {

using DeviceId = std::int32_t;
using LinkId = std::int32_t;

enum class DeviceKind : std::uint8_t {
  kRootComplex,  // CPU-integrated PCIe root complex (one per socket)
  kPcieSwitch,   // PLX-style switch
  kCpuMemory,    // socket-local DRAM (storage tier)
  kGpu,          // compute + HBM storage tier
  kSsd,          // NVMe SSD (storage tier)
  kNic,          // network interface (occupies slots; no GNN traffic)
};

enum class LinkKind : std::uint8_t {
  kPcie,     // PCIe bus/slot link
  kQpi,      // inter-socket QPI/UPI
  kNvlink,   // GPU-GPU NVLink bridge
  kDram,     // CPU memory channels to the root complex
  kNetwork,  // inter-machine network (cluster modelling)
};

const char* to_string(DeviceKind kind) noexcept;
const char* to_string(LinkKind kind) noexcept;

struct Device {
  DeviceKind kind;
  std::string name;  // e.g. "RC0", "PLX1", "GPU2", "SSD5"
  int index = 0;     // index within its kind
};

/// Full-duplex link: independent capacities per direction, in bytes/s.
struct Link {
  DeviceId a = -1;
  DeviceId b = -1;
  LinkKind kind = LinkKind::kPcie;
  double bw_ab = 0.0;  // capacity a -> b
  double bw_ba = 0.0;  // capacity b -> a
  std::string label;   // e.g. "Bus9", "QPI"
};

class Topology {
 public:
  DeviceId add_device(DeviceKind kind, std::string name, int index);
  LinkId add_link(DeviceId a, DeviceId b, LinkKind kind, double bw_ab,
                  double bw_ba, std::string label);

  std::size_t num_devices() const noexcept { return devices_.size(); }
  std::size_t num_links() const noexcept { return links_.size(); }

  const Device& device(DeviceId id) const { return devices_[static_cast<std::size_t>(id)]; }
  const Link& link(LinkId id) const { return links_[static_cast<std::size_t>(id)]; }
  Link& link(LinkId id) { return links_[static_cast<std::size_t>(id)]; }

  std::span<const Device> devices() const noexcept { return devices_; }
  std::span<const Link> links() const noexcept { return links_; }

  /// Link ids incident to device `d`.
  const std::vector<LinkId>& incident(DeviceId d) const {
    return incident_[static_cast<std::size_t>(d)];
  }

  /// All device ids of a given kind, ordered by index.
  std::vector<DeviceId> devices_of_kind(DeviceKind kind) const;

  /// Finds a device by name; nullopt if absent.
  std::optional<DeviceId> find(const std::string& name) const;

  /// Finds the link between two devices (either orientation).
  std::optional<LinkId> find_link(DeviceId a, DeviceId b) const;

  /// Human-readable multi-line dump (lspci-style tree).
  std::string to_string() const;

 private:
  std::vector<Device> devices_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> incident_;
};

/// PCIe generation/lane-width to usable bandwidth (bytes/s). Usable rates are
/// ~80% of raw (encoding + protocol overhead), matching measured PCIe 4.0 x16
/// at ~20 GiB/s as the paper quotes.
double pcie_bandwidth(int gen, int lanes) noexcept;

}  // namespace moment::topology
