#include "topology/cluster.hpp"

#include <stdexcept>

#include "util/units.hpp"

namespace moment::topology {

using util::gib_per_s;

MachineSpec make_cluster(const ClusterOptions& options) {
  if (options.num_machines < 1) {
    throw std::invalid_argument("make_cluster: need at least one machine");
  }
  MachineSpec spec;
  spec.name = "Cluster" + std::to_string(options.num_machines) + "x";
  spec.description =
      std::to_string(options.num_machines) +
      " machines joined by a network switch; per machine one root complex, "
      "socket DRAM, a NIC and one GPU/SSD slot group (paper Section 5).";
  spec.ssd_read_bw = gib_per_s(options.ssd_read_bw_gib);
  spec.nvlink_bw = gib_per_s(50.0);
  spec.hbm_bw = gib_per_s(1200.0);

  Topology& t = spec.skeleton;
  const DeviceId net_switch =
      t.add_device(DeviceKind::kPcieSwitch, "NET", 0);

  for (int m = 0; m < options.num_machines; ++m) {
    const std::string suffix = std::to_string(m);
    const DeviceId rc =
        t.add_device(DeviceKind::kRootComplex, "RC" + suffix, m);
    const DeviceId mem =
        t.add_device(DeviceKind::kCpuMemory, "DRAM" + suffix, m);
    const DeviceId nic = t.add_device(DeviceKind::kNic, "NIC" + suffix, m);
    t.add_link(mem, rc, LinkKind::kDram, gib_per_s(options.dram_bw_gib),
               gib_per_s(options.dram_bw_gib), "MC" + suffix);
    const double nic_pcie = pcie_bandwidth(options.pcie_gen, 16);
    t.add_link(rc, nic, LinkKind::kPcie, nic_pcie, nic_pcie,
               "NicBus" + suffix);
    t.add_link(nic, net_switch, LinkKind::kNetwork,
               gib_per_s(options.network_gib_per_s),
               gib_per_s(options.network_gib_per_s), "Net" + suffix);

    SlotGroup g;
    g.name = "M" + suffix + ".slots";
    g.parent = "RC" + suffix;
    g.units = options.slot_units_per_machine;
    g.allows_gpu = true;
    g.allows_ssd = true;
    g.pcie_gen = options.pcie_gen;
    spec.slot_groups.push_back(std::move(g));
  }

  // Machines are interchangeable: rotating the machine indices is an
  // automorphism. One rotation generates the cyclic group; together with the
  // swap of the first two machines it generates the full symmetric group,
  // which the canonicalizer closes over.
  const auto n = spec.slot_groups.size();
  if (n >= 2) {
    std::vector<int> rotate(n), swap01(n);
    for (std::size_t i = 0; i < n; ++i) {
      rotate[i] = static_cast<int>((i + 1) % n);
      swap01[i] = static_cast<int>(i);
    }
    std::swap(swap01[0], swap01[1]);
    spec.automorphisms.push_back(std::move(rotate));
    spec.automorphisms.push_back(std::move(swap01));
  }
  return spec;
}

MachineSpec make_cluster_c() {
  ClusterOptions options;
  options.num_machines = 4;
  options.pcie_gen = 3;
  options.network_gib_per_s = 10.0;  // ~100 Gb/s line rate, ~85% effective
  return make_cluster(options);
}

}  // namespace moment::topology
