#pragma once
// Throughput prediction over a compiled flow graph. Two modes:
//
//  * rate mode — plain max flow with infinite demands: the aggregate
//    bandwidth upper bound of a placement (used to rank candidates cheaply);
//  * demand mode — the paper's time-bisection procedure: per-GPU byte demands
//    (and optionally per-storage byte supplies from the data placement) give
//    the minimum epoch IO time, capturing load imbalance that the aggregate
//    bound hides.

#include <utility>
#include <vector>

#include "topology/flow_graph.hpp"

namespace moment::topology {

struct WorkloadDemand {
  /// Bytes each GPU must receive per epoch (same order as FlowGraph::gpus).
  std::vector<double> per_gpu_bytes;
  /// Bytes resident-and-demanded per storage node (same order as
  /// FlowGraph::storage). Empty means rate-limited only (hardware search
  /// mode, before data placement is known).
  std::vector<double> per_storage_bytes;
  /// Byte budget per storage tier (indexed by StorageTier); NaN/negative
  /// entries (or an empty vector) leave that tier rate-limited. Lets the
  /// search cap "all SSDs together serve at most the non-cached bytes"
  /// without pinning the split across devices.
  std::vector<double> per_tier_bytes;
};

struct LinkTraffic {
  LinkId link = -1;
  double bytes_ab = 0.0;
  double bytes_ba = 0.0;
};

struct Prediction {
  bool feasible = false;
  double rate_max_flow = 0.0;   // bytes/s aggregate bound
  double epoch_io_time_s = 0.0; // min time to satisfy all demands
  double throughput = 0.0;      // total demand / epoch_io_time_s
  std::vector<double> per_gpu_bytes;      // bytes delivered per GPU at T*
  std::vector<double> per_storage_bytes;  // bytes served per storage node
  std::vector<LinkTraffic> link_traffic;  // bytes per physical link at T*
};

/// Runs both modes. `fg` is not mutated (copies are solved).
Prediction predict(const FlowGraph& fg, const WorkloadDemand& demand);

/// Rate mode only: aggregate max-flow bound in bytes/s.
double predict_rate_bound(const FlowGraph& fg);

}  // namespace moment::topology
