#include "topology/discovery.hpp"

#include <istream>
#include <sstream>

#include "util/units.hpp"

namespace moment::topology {

namespace {

DeviceKind parse_device_kind(std::size_t line, const std::string& s) {
  if (s == "root_complex") return DeviceKind::kRootComplex;
  if (s == "pcie_switch") return DeviceKind::kPcieSwitch;
  if (s == "cpu_memory") return DeviceKind::kCpuMemory;
  if (s == "nic") return DeviceKind::kNic;
  throw ParseError(line, "unknown device kind '" + s + "'");
}

const char* device_kind_token(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kRootComplex: return "root_complex";
    case DeviceKind::kPcieSwitch: return "pcie_switch";
    case DeviceKind::kCpuMemory: return "cpu_memory";
    case DeviceKind::kNic: return "nic";
    default: return nullptr;  // GPU/SSD never appear in a description
  }
}

LinkKind parse_link_kind(std::size_t line, const std::string& s) {
  if (s == "pcie") return LinkKind::kPcie;
  if (s == "qpi") return LinkKind::kQpi;
  if (s == "nvlink") return LinkKind::kNvlink;
  if (s == "dram") return LinkKind::kDram;
  if (s == "network") return LinkKind::kNetwork;
  throw ParseError(line, "unknown link kind '" + s + "'");
}

const char* link_kind_token(LinkKind kind) {
  switch (kind) {
    case LinkKind::kPcie: return "pcie";
    case LinkKind::kQpi: return "qpi";
    case LinkKind::kNvlink: return "nvlink";
    case LinkKind::kDram: return "dram";
    case LinkKind::kNetwork: return "network";
  }
  return "pcie";
}

double parse_double(std::size_t line, const std::string& s,
                    const char* what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw ParseError(line, std::string("bad ") + what + " '" + s + "'");
  }
}

int parse_int(std::size_t line, const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw ParseError(line, std::string("bad ") + what + " '" + s + "'");
  }
}

}  // namespace

MachineSpec parse_machine_spec(std::istream& in) {
  MachineSpec spec;
  spec.ssd_read_bw = util::gib_per_s(6.0);
  spec.nvlink_bw = util::gib_per_s(50.0);
  spec.hbm_bw = util::gib_per_s(1200.0);

  std::string raw;
  std::size_t lineno = 0;
  int device_counts[6] = {};
  bool saw_machine = false;

  while (std::getline(in, raw)) {
    ++lineno;
    if (const auto hash = raw.find('#'); hash != std::string::npos) {
      raw.erase(hash);
    }
    std::istringstream line(raw);
    std::string keyword;
    if (!(line >> keyword)) continue;  // blank/comment

    if (keyword == "machine") {
      line >> spec.name;
      if (spec.name.empty()) throw ParseError(lineno, "machine needs a name");
      saw_machine = true;
    } else if (keyword == "description") {
      std::getline(line, spec.description);
      if (!spec.description.empty() && spec.description.front() == ' ') {
        spec.description.erase(0, 1);
      }
    } else if (keyword == "ssd_read_bw_gib" || keyword == "nvlink_bw_gib" ||
               keyword == "hbm_bw_gib") {
      std::string v;
      line >> v;
      const double gib = parse_double(lineno, v, keyword.c_str());
      if (gib <= 0) throw ParseError(lineno, keyword + " must be > 0");
      if (keyword == "ssd_read_bw_gib") spec.ssd_read_bw = util::gib_per_s(gib);
      else if (keyword == "nvlink_bw_gib") spec.nvlink_bw = util::gib_per_s(gib);
      else spec.hbm_bw = util::gib_per_s(gib);
    } else if (keyword == "device") {
      std::string name, kind;
      line >> name >> kind;
      if (name.empty() || kind.empty()) {
        throw ParseError(lineno, "device needs <name> <kind>");
      }
      if (spec.skeleton.find(name)) {
        throw ParseError(lineno, "duplicate device '" + name + "'");
      }
      const DeviceKind k = parse_device_kind(lineno, kind);
      spec.skeleton.add_device(k, name,
                               device_counts[static_cast<int>(k)]++);
    } else if (keyword == "link") {
      std::string a, b, kind, ab, ba, label;
      line >> a >> b >> kind >> ab >> ba;
      line >> label;  // optional
      const auto da = spec.skeleton.find(a);
      const auto db = spec.skeleton.find(b);
      if (!da) throw ParseError(lineno, "unknown device '" + a + "'");
      if (!db) throw ParseError(lineno, "unknown device '" + b + "'");
      spec.skeleton.add_link(*da, *db, parse_link_kind(lineno, kind),
                             util::gib_per_s(parse_double(lineno, ab, "bw")),
                             util::gib_per_s(parse_double(lineno, ba, "bw")),
                             label);
    } else if (keyword == "slots") {
      SlotGroup g;
      std::string kinds, gen;
      line >> g.name >> g.parent;
      std::string units;
      line >> units >> kinds;
      line >> gen;  // optional "genN"
      if (g.name.empty() || g.parent.empty() || kinds.empty()) {
        throw ParseError(lineno, "slots needs <group> <parent> <units> <kinds>");
      }
      if (!spec.skeleton.find(g.parent)) {
        throw ParseError(lineno, "unknown parent '" + g.parent + "'");
      }
      g.units = parse_int(lineno, units, "units");
      if (g.units <= 0) throw ParseError(lineno, "units must be > 0");
      g.allows_gpu = kinds.find("gpu") != std::string::npos;
      g.allows_ssd = kinds.find("ssd") != std::string::npos;
      if (!g.allows_gpu && !g.allows_ssd) {
        throw ParseError(lineno, "slot kinds must mention gpu and/or ssd");
      }
      if (!gen.empty()) {
        if (gen.rfind("gen", 0) != 0) {
          throw ParseError(lineno, "expected genN, got '" + gen + "'");
        }
        g.pcie_gen = parse_int(lineno, gen.substr(3), "pcie gen");
      }
      spec.slot_groups.push_back(std::move(g));
    } else if (keyword == "automorphism") {
      std::vector<int> perm;
      std::string tok;
      while (line >> tok) perm.push_back(parse_int(lineno, tok, "index"));
      if (perm.size() != spec.slot_groups.size()) {
        throw ParseError(lineno,
                         "automorphism length must equal slot group count (" +
                             std::to_string(spec.slot_groups.size()) + ")");
      }
      std::vector<bool> seen(perm.size(), false);
      for (int i : perm) {
        if (i < 0 || static_cast<std::size_t>(i) >= perm.size() ||
            seen[static_cast<std::size_t>(i)]) {
          throw ParseError(lineno, "automorphism is not a permutation");
        }
        seen[static_cast<std::size_t>(i)] = true;
      }
      spec.automorphisms.push_back(std::move(perm));
    } else {
      throw ParseError(lineno, "unknown keyword '" + keyword + "'");
    }
  }

  if (!saw_machine) throw ParseError(lineno, "missing 'machine' statement");
  if (spec.slot_groups.empty()) {
    throw ParseError(lineno, "machine has no slot groups");
  }
  return spec;
}

MachineSpec parse_machine_spec_string(const std::string& text) {
  std::istringstream in(text);
  return parse_machine_spec(in);
}

std::string write_machine_spec(const MachineSpec& spec) {
  std::ostringstream out;
  out << "machine " << spec.name << "\n";
  if (!spec.description.empty()) {
    out << "description " << spec.description << "\n";
  }
  out << "ssd_read_bw_gib " << util::to_gib_per_s(spec.ssd_read_bw) << "\n";
  out << "nvlink_bw_gib " << util::to_gib_per_s(spec.nvlink_bw) << "\n";
  out << "hbm_bw_gib " << util::to_gib_per_s(spec.hbm_bw) << "\n";
  for (const auto& d : spec.skeleton.devices()) {
    const char* token = device_kind_token(d.kind);
    if (token) out << "device " << d.name << ' ' << token << "\n";
  }
  for (const auto& l : spec.skeleton.links()) {
    out << "link " << spec.skeleton.device(l.a).name << ' '
        << spec.skeleton.device(l.b).name << ' ' << link_kind_token(l.kind)
        << ' ' << util::to_gib_per_s(l.bw_ab) << ' '
        << util::to_gib_per_s(l.bw_ba);
    if (!l.label.empty()) out << ' ' << l.label;
    out << "\n";
  }
  for (const auto& g : spec.slot_groups) {
    out << "slots " << g.name << ' ' << g.parent << ' ' << g.units << ' ';
    if (g.allows_gpu && g.allows_ssd) out << "gpu,ssd";
    else if (g.allows_gpu) out << "gpu";
    else out << "ssd";
    out << " gen" << g.pcie_gen << "\n";
  }
  for (const auto& perm : spec.automorphisms) {
    out << "automorphism";
    for (int i : perm) out << ' ' << i;
    out << "\n";
  }
  return out.str();
}

}  // namespace moment::topology
