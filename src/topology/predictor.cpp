#include "topology/predictor.hpp"

#include <numeric>
#include <stdexcept>

#include "maxflow/dinic.hpp"
#include "maxflow/time_bisection.hpp"

namespace moment::topology {

double predict_rate_bound(const FlowGraph& fg) {
  maxflow::FlowNetwork net = fg.net;  // copy; solve mutates residuals
  const auto result = maxflow::Dinic::solve(net, fg.source, fg.sink);
  return result.total_flow;
}

Prediction predict(const FlowGraph& fg, const WorkloadDemand& demand) {
  Prediction out;
  out.rate_max_flow = predict_rate_bound(fg);

  if (demand.per_gpu_bytes.size() != fg.gpus.size()) {
    throw std::invalid_argument("predict: per_gpu_bytes size mismatch");
  }
  if (!demand.per_storage_bytes.empty() &&
      demand.per_storage_bytes.size() != fg.storage.size()) {
    throw std::invalid_argument("predict: per_storage_bytes size mismatch");
  }

  std::vector<maxflow::ByteConstraint> demands;
  demands.reserve(fg.gpus.size());
  for (std::size_t i = 0; i < fg.gpus.size(); ++i) {
    demands.push_back({fg.gpus[i].demand_edge, demand.per_gpu_bytes[i]});
  }
  std::vector<maxflow::ByteConstraint> supplies;
  if (!demand.per_storage_bytes.empty()) {
    supplies.reserve(fg.storage.size());
    for (std::size_t i = 0; i < fg.storage.size(); ++i) {
      // Negative entries mean "rate-limited only" for that storage node.
      if (demand.per_storage_bytes[i] < 0.0) continue;
      supplies.push_back({fg.storage[i].supply_edge,
                          demand.per_storage_bytes[i]});
    }
  }
  for (std::size_t t = 0; t < demand.per_tier_bytes.size() && t < 3; ++t) {
    const double bytes = demand.per_tier_bytes[t];
    if (bytes >= 0.0 && fg.tier_edge[t] >= 0) {
      supplies.push_back({fg.tier_edge[t], bytes});
    }
  }

  const auto tb = maxflow::solve_time_bisection(fg.net, fg.source, fg.sink,
                                                demands, supplies);
  out.feasible = tb.feasible;
  if (!tb.feasible) return out;

  out.epoch_io_time_s = tb.min_time_s;
  out.throughput = tb.throughput;

  auto flow_of = [&](maxflow::EdgeId e) -> double {
    if (e < 0) return 0.0;
    const auto idx = static_cast<std::size_t>(e);
    return idx < tb.edge_flow.size() ? tb.edge_flow[idx] : 0.0;
  };

  out.per_gpu_bytes.reserve(fg.gpus.size());
  for (const auto& g : fg.gpus) {
    out.per_gpu_bytes.push_back(flow_of(g.demand_edge));
  }
  out.per_storage_bytes.reserve(fg.storage.size());
  for (const auto& s : fg.storage) {
    out.per_storage_bytes.push_back(flow_of(s.supply_edge));
  }
  out.link_traffic.reserve(fg.link_edges.size());
  for (const auto& le : fg.link_edges) {
    out.link_traffic.push_back({le.link, flow_of(le.ab), flow_of(le.ba)});
  }
  return out;
}

}  // namespace moment::topology
