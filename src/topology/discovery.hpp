#pragma once
// Machine description language: a textual form of MachineSpec so users can
// feed Moment the topology of their own server. The paper's automatic module
// extracts this information from a live system with lspci/dmidecode; this
// module is the offline equivalent — dump what discovery found, edit it, or
// write one by hand for a machine being *designed* (the paper's customized-
// server use case).
//
// Grammar (one statement per line; '#' starts a comment):
//
//   machine <name>
//   description <free text>
//   ssd_read_bw_gib <v>
//   nvlink_bw_gib <v>
//   hbm_bw_gib <v>
//   device <name> root_complex|pcie_switch|cpu_memory|nic
//   link <devA> <devB> pcie|qpi|nvlink|dram|network <gib_ab> <gib_ba> [label]
//   slots <group> <parent> <units> gpu|ssd|gpu,ssd [gen<G>]
//   automorphism <perm...>        # one slot-group index per group
//
// GPUs and SSDs are NOT part of the description — they are placed into slot
// groups by a Placement, exactly as in the presets.

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "topology/machine.hpp"

namespace moment::topology {

class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Parses a machine description. Throws ParseError on malformed input.
MachineSpec parse_machine_spec(std::istream& in);
MachineSpec parse_machine_spec_string(const std::string& text);

/// Serialises a spec back to the description language (round-trips through
/// parse_machine_spec up to formatting).
std::string write_machine_spec(const MachineSpec& spec);

}  // namespace moment::topology
