#pragma once
// Machine specifications: the fixed interconnect skeleton (root complexes,
// PCIe switches, CPU memory, QPI) plus the PCIe slot groups that GPUs and
// SSDs can be placed into. A `Placement` assigns device counts to slot
// groups; `instantiate()` yields the concrete Topology the flow compiler and
// the simulator consume.
//
// Presets reproduce the paper's two testbeds:
//   Machine A — balanced: each socket's root complex hosts 4 direct NVMe
//     slots and one PLX switch (Bus 9 / Bus 10) with GPU-capable slots.
//   Machine B — cascaded: PLX1 hangs off PLX0 (Bus 16), PLX0 off RC0
//     (Bus 11); both root complexes also expose direct slots.

#include <string>
#include <vector>

#include "topology/device.hpp"

namespace moment::topology {

/// A group of interchangeable single-width slot units under one parent.
/// A GPU occupies `kGpuUnits` units (dual-slot cards, paper Section 3.2), an
/// SSD occupies one.
struct SlotGroup {
  std::string name;       // "RC0.nvme", "PLX0.slots", ...
  std::string parent;     // skeleton device name
  int units = 0;          // total single-width units
  bool allows_gpu = false;
  bool allows_ssd = false;
  int pcie_gen = 4;
  int gpu_lanes = 16;
  int ssd_lanes = 4;
};

inline constexpr int kGpuUnits = 2;
inline constexpr int kSsdUnits = 1;

struct MachineSpec {
  std::string name;
  std::string description;
  Topology skeleton;  // RCs, PLXs, CpuMemory devices and their links
  std::vector<SlotGroup> slot_groups;
  /// Automorphisms of the slot groups (each entry is a permutation of group
  /// indices under which the machine is physically identical). Identity is
  /// implicit. Used for the paper's isomorphic placement reduction.
  std::vector<std::vector<int>> automorphisms;
  double ssd_read_bw = 0.0;   // device-limited SSD read rate (bytes/s)
  double nvlink_bw = 0.0;     // per-direction NVLink bridge rate (bytes/s)
  double hbm_bw = 0.0;        // GPU local HBM rate (bytes/s)

  int group_index(const std::string& group_name) const;
};

/// Device counts per slot group. GPUs and SSDs of the same kind are
/// interchangeable, so a placement is fully described by counts.
struct Placement {
  std::vector<int> gpus_per_group;
  std::vector<int> ssds_per_group;
  bool nvlink = false;  // bridge consecutive GPU pairs (0,1), (2,3)
  std::string label;

  int total_gpus() const noexcept;
  int total_ssds() const noexcept;
  bool operator==(const Placement& other) const noexcept {
    return gpus_per_group == other.gpus_per_group &&
           ssds_per_group == other.ssds_per_group && nvlink == other.nvlink;
  }
};

/// Validates slot-unit budgets and device-kind constraints.
/// Returns empty string if valid, else a human-readable reason.
std::string validate_placement(const MachineSpec& spec, const Placement& p);

/// Builds the concrete topology: skeleton + GPU/SSD devices attached to their
/// groups' parents. Throws std::invalid_argument on invalid placements.
Topology instantiate(const MachineSpec& spec, const Placement& p);

/// Paper Table 1/3 presets.
MachineSpec make_machine_a();
MachineSpec make_machine_b();

/// The four "classic" layouts of Figs. 1-2 for a machine, given GPU/SSD
/// counts. `which` is 'a'..'d'.
Placement classic_placement(const MachineSpec& spec, char which, int num_gpus,
                            int num_ssds);

/// The hand-written Moment placement of Fig. 7 (Machine B, 4 GPUs, 8 SSDs),
/// used as a regression anchor for the placement search.
Placement moment_placement_machine_b();

}  // namespace moment::topology
