#include "topology/machine.hpp"

#include <numeric>
#include <stdexcept>

#include "util/units.hpp"

namespace moment::topology {

using util::gib_per_s;

int MachineSpec::group_index(const std::string& group_name) const {
  for (std::size_t i = 0; i < slot_groups.size(); ++i) {
    if (slot_groups[i].name == group_name) return static_cast<int>(i);
  }
  throw std::invalid_argument("MachineSpec: unknown slot group " + group_name);
}

int Placement::total_gpus() const noexcept {
  return std::accumulate(gpus_per_group.begin(), gpus_per_group.end(), 0);
}
int Placement::total_ssds() const noexcept {
  return std::accumulate(ssds_per_group.begin(), ssds_per_group.end(), 0);
}

std::string validate_placement(const MachineSpec& spec, const Placement& p) {
  if (p.gpus_per_group.size() != spec.slot_groups.size() ||
      p.ssds_per_group.size() != spec.slot_groups.size()) {
    return "placement group-count mismatch";
  }
  for (std::size_t i = 0; i < spec.slot_groups.size(); ++i) {
    const SlotGroup& g = spec.slot_groups[i];
    const int gpus = p.gpus_per_group[i];
    const int ssds = p.ssds_per_group[i];
    if (gpus < 0 || ssds < 0) return "negative device count";
    if (gpus > 0 && !g.allows_gpu) return g.name + " does not accept GPUs";
    if (ssds > 0 && !g.allows_ssd) return g.name + " does not accept SSDs";
    const int used = gpus * kGpuUnits + ssds * kSsdUnits;
    if (used > g.units) {
      return g.name + " over capacity (" + std::to_string(used) + "/" +
             std::to_string(g.units) + " units)";
    }
  }
  return {};
}

Topology instantiate(const MachineSpec& spec, const Placement& p) {
  if (const std::string err = validate_placement(spec, p); !err.empty()) {
    throw std::invalid_argument("instantiate: " + err);
  }
  Topology topo = spec.skeleton;

  int gpu_index = 0;
  int ssd_index = 0;
  std::vector<DeviceId> gpu_ids;
  for (std::size_t gi = 0; gi < spec.slot_groups.size(); ++gi) {
    const SlotGroup& g = spec.slot_groups[gi];
    const auto parent = topo.find(g.parent);
    if (!parent) {
      throw std::logic_error("instantiate: skeleton lacks device " + g.parent);
    }
    for (int k = 0; k < p.gpus_per_group[gi]; ++k, ++gpu_index) {
      const DeviceId dev = topo.add_device(
          DeviceKind::kGpu, "GPU" + std::to_string(gpu_index), gpu_index);
      const double bw = pcie_bandwidth(g.pcie_gen, g.gpu_lanes);
      topo.add_link(*parent, dev, LinkKind::kPcie, bw, bw,
                    g.name + ".gpu" + std::to_string(k));
      gpu_ids.push_back(dev);
    }
    for (int k = 0; k < p.ssds_per_group[gi]; ++k, ++ssd_index) {
      const DeviceId dev = topo.add_device(
          DeviceKind::kSsd, "SSD" + std::to_string(ssd_index), ssd_index);
      const double slot_bw = pcie_bandwidth(g.pcie_gen, g.ssd_lanes);
      const double read_bw = std::min(slot_bw, spec.ssd_read_bw);
      // Reads flow SSD -> parent; writes (parent -> SSD) only matter for the
      // one-off dataset reorganisation, modelled at the same rate.
      topo.add_link(dev, *parent, LinkKind::kPcie, read_bw, read_bw,
                    g.name + ".ssd" + std::to_string(k));
    }
  }

  if (p.nvlink) {
    // Bridge GPU i with GPU i + G/2: on the evaluated servers the physical
    // GPU numbering interleaves the switch groups, so the paper's
    // (GPU1,GPU2)/(GPU3,GPU4) bridges span switches — exactly the
    // configuration where NVLink bypasses the contended PCIe buses.
    const std::size_t half = gpu_ids.size() / 2;
    for (std::size_t i = 0; i + half < gpu_ids.size() && half > 0; ++i) {
      topo.add_link(gpu_ids[i], gpu_ids[i + half], LinkKind::kNvlink,
                    spec.nvlink_bw, spec.nvlink_bw,
                    "NVLink" + std::to_string(i));
    }
  }
  return topo;
}

namespace {

/// Common skeleton pieces: two sockets with DRAM and a QPI/UPI link.
struct Sockets {
  DeviceId rc0, rc1;
};

Sockets add_dual_socket(Topology& t, double dram_bw, double qpi_bw) {
  const DeviceId rc0 = t.add_device(DeviceKind::kRootComplex, "RC0", 0);
  const DeviceId rc1 = t.add_device(DeviceKind::kRootComplex, "RC1", 1);
  const DeviceId mem0 = t.add_device(DeviceKind::kCpuMemory, "DRAM0", 0);
  const DeviceId mem1 = t.add_device(DeviceKind::kCpuMemory, "DRAM1", 1);
  t.add_link(mem0, rc0, LinkKind::kDram, dram_bw, dram_bw, "MC0");
  t.add_link(mem1, rc1, LinkKind::kDram, dram_bw, dram_bw, "MC1");
  t.add_link(rc0, rc1, LinkKind::kQpi, qpi_bw, qpi_bw, "QPI");
  return {rc0, rc1};
}

}  // namespace

MachineSpec make_machine_a() {
  MachineSpec spec;
  spec.name = "MachineA";
  spec.description =
      "Balanced PCIe topology: per socket, 4 direct NVMe slots plus one PLX "
      "switch (Bus 9 / Bus 10) with GPU-capable x16 slots. 2x Xeon Gold 5320, "
      "768 GB DRAM, PCIe 4.0.";
  spec.ssd_read_bw = gib_per_s(6.0);     // Intel P5510
  spec.nvlink_bw = gib_per_s(50.0);      // A100 NVLink bridge pair
  spec.hbm_bw = gib_per_s(1200.0);

  Topology& t = spec.skeleton;
  const Sockets s = add_dual_socket(t, gib_per_s(40.0), gib_per_s(36.0));
  const DeviceId plx0 = t.add_device(DeviceKind::kPcieSwitch, "PLX0", 0);
  const DeviceId plx1 = t.add_device(DeviceKind::kPcieSwitch, "PLX1", 1);
  const double x16 = pcie_bandwidth(4, 16);
  t.add_link(s.rc0, plx0, LinkKind::kPcie, x16, x16, "Bus9");
  t.add_link(s.rc1, plx1, LinkKind::kPcie, x16, x16, "Bus10");

  spec.slot_groups = {
      {"RC0.nvme", "RC0", 4, false, true, 4, 16, 4},
      {"RC1.nvme", "RC1", 4, false, true, 4, 16, 4},
      {"PLX0.slots", "PLX0", 12, true, true, 4, 16, 4},
      {"PLX1.slots", "PLX1", 12, true, true, 4, 16, 4},
  };
  // Swapping the two sockets (and their PLX switches) is an automorphism.
  spec.automorphisms = {{1, 0, 3, 2}};
  return spec;
}

MachineSpec make_machine_b() {
  MachineSpec spec;
  spec.name = "MachineB";
  spec.description =
      "Cascaded PCIe topology: PLX0 on RC0 via Bus 11, PLX1 cascaded off "
      "PLX0 via Bus 16; both root complexes expose direct slots. 2x Xeon "
      "Gold 6426Y, 512 GB DRAM, PCIe 4.0.";
  spec.ssd_read_bw = gib_per_s(6.0);
  spec.nvlink_bw = gib_per_s(50.0);
  spec.hbm_bw = gib_per_s(1200.0);

  Topology& t = spec.skeleton;
  const Sockets s = add_dual_socket(t, gib_per_s(40.0), gib_per_s(36.0));
  const DeviceId plx0 = t.add_device(DeviceKind::kPcieSwitch, "PLX0", 0);
  const DeviceId plx1 = t.add_device(DeviceKind::kPcieSwitch, "PLX1", 1);
  const double x16 = pcie_bandwidth(4, 16);
  t.add_link(s.rc0, plx0, LinkKind::kPcie, x16, x16, "Bus11");
  t.add_link(plx0, plx1, LinkKind::kPcie, x16, x16, "Bus16");

  spec.slot_groups = {
      {"RC0.slots", "RC0", 4, true, true, 4, 16, 4},
      {"RC1.slots", "RC1", 8, true, true, 4, 16, 4},
      {"PLX0.slots", "PLX0", 12, true, true, 4, 16, 4},
      {"PLX1.slots", "PLX1", 12, true, true, 4, 16, 4},
  };
  spec.automorphisms = {};  // the cascade breaks socket symmetry
  return spec;
}

Placement classic_placement(const MachineSpec& spec, char which, int num_gpus,
                            int num_ssds) {
  Placement p;
  p.gpus_per_group.assign(spec.slot_groups.size(), 0);
  p.ssds_per_group.assign(spec.slot_groups.size(), 0);
  p.label = std::string(1, which);

  const bool machine_a = spec.name == "MachineA";
  const int front_direct =
      spec.group_index(machine_a ? "RC0.nvme" : "RC0.slots");
  const int back_direct =
      spec.group_index(machine_a ? "RC1.nvme" : "RC1.slots");
  const int plx0 = spec.group_index("PLX0.slots");
  const int plx1 = spec.group_index("PLX1.slots");

  auto spread = [&](std::vector<int>& counts, std::vector<int> groups, int n) {
    for (int i = 0; i < n; ++i) counts[static_cast<std::size_t>(groups[static_cast<std::size_t>(i) % groups.size()])]++;
  };

  switch (which) {
    case 'a':  // SSDs front-prioritised; GPUs spread across PLX switches.
      spread(p.ssds_per_group, {front_direct, plx0}, num_ssds);
      spread(p.gpus_per_group, {plx0, plx1}, num_gpus);
      break;
    case 'b':  // SSDs front-prioritised; GPUs concentrated on PLX0.
      spread(p.ssds_per_group, {front_direct, plx0}, num_ssds);
      spread(p.gpus_per_group, {plx0}, num_gpus);
      break;
    case 'c':  // SSDs balanced across the PLX switches; GPUs likewise.
      spread(p.ssds_per_group, {plx0, plx1}, num_ssds);
      spread(p.gpus_per_group, {plx0, plx1}, num_gpus);
      break;
    case 'd':  // SSDs balanced across PLX; GPUs concentrated on PLX0.
      spread(p.ssds_per_group, {plx0, plx1}, num_ssds);
      spread(p.gpus_per_group, {plx0}, num_gpus);
      break;
    default:
      throw std::invalid_argument("classic_placement: expected 'a'..'d'");
  }
  if (const std::string err = validate_placement(spec, p); !err.empty()) {
    throw std::invalid_argument("classic_placement: " + err);
  }
  return p;
}

Placement moment_placement_machine_b() {
  // Fig. 7: GPU0 on RC0; GPU3 + 4 SSDs on RC1; 2 SSDs on PLX0; 2 SSDs and
  // GPUs 1-2 on PLX1.
  Placement p;
  p.label = "moment-fig7";
  p.gpus_per_group = {1, 1, 0, 2};
  p.ssds_per_group = {0, 4, 2, 2};
  return p;
}

}  // namespace moment::topology
