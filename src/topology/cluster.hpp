#pragma once
// Multi-node cluster modelling — the paper's Section 5 ("Generalization to
// Multi-node"): NICs join the device graph, inter-machine network links
// become capacity-constrained edges, and the same max-flow machinery plans
// traffic across the whole cluster.
//
// The preset mirrors Cluster C from Table 1/3 (4 machines, 1 GPU each,
// 100 Gb/s network) but the builder is general: any machine count, per-node
// GPU/SSD slots, and network rate.

#include "topology/machine.hpp"

namespace moment::topology {

struct ClusterOptions {
  int num_machines = 4;
  /// Slot units per machine (a GPU takes 2 units, an SSD 1).
  int slot_units_per_machine = 10;
  int pcie_gen = 3;              // Cluster C runs PCIe 3.0
  double network_gib_per_s = 10.0;   // ~100 Gb/s effective per NIC
  double dram_bw_gib = 30.0;
  double ssd_read_bw_gib = 6.0;
};

/// Builds a cluster-wide MachineSpec: per machine a root complex, socket
/// DRAM, a NIC, and one GPU/SSD slot group; NICs meet at a central network
/// switch. Machines are interchangeable, so the spec carries the rotation
/// automorphisms that collapse symmetric placements (the paper's
/// rotation-invariant reduction at cluster scale).
MachineSpec make_cluster(const ClusterOptions& options = {});

/// Table-1/3 Cluster C: 4 machines, PCIe 3.0, 100 Gb/s network.
MachineSpec make_cluster_c();

}  // namespace moment::topology
