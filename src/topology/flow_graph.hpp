#pragma once
// Compiles a concrete Topology into the single-source single-sink
// capacity-constrained directed graph of paper Fig. 9.
//
// Node mapping:
//   s  -> virtual source feeding every storage node
//   storage nodes: each SSD, each socket DRAM, and each GPU's HBM cache
//   interconnect nodes: root complexes and PCIe switches
//   computation nodes: one per GPU (each GPU yields TWO flow nodes: its HBM
//     storage node and its computation node)
//   t  -> virtual sink draining every computation node
//
// Edge mapping (all capacities in bytes/s):
//   s -> storage            supply edge (rate-mirrored per the paper:
//                           c(s,vs) = c(vs,vi); byte-capped in
//                           time-bisection mode)
//   SSD -> parent           SSD read rate (slot- and device-limited)
//   DRAM -> root complex    memory-controller serve rate
//   HBM_i -> comp_i         local HBM rate
//   HBM_i -> parent switch  upstream P2P export over the GPU's slot link
//   parent -> comp_i        downstream slot link
//   HBM_i -> comp_j         NVLink bridge (when present), per direction
//   interconnect links      one directed edge per direction (PCIe/QPI full
//                           duplex)
//   comp -> t               demand edge (infinite in rate mode)

#include <vector>

#include "maxflow/flow_network.hpp"
#include "topology/device.hpp"

namespace moment::topology {

/// Storage tier of a storage node, ordered by the paper's hierarchy
/// GPU > CPU > SSD (Section 3.3).
enum class StorageTier : std::uint8_t { kGpuHbm = 0, kCpuDram = 1, kSsd = 2 };

struct StorageNodeInfo {
  DeviceId device = -1;      // GPU, CpuMemory or SSD device
  StorageTier tier = StorageTier::kSsd;
  maxflow::NodeId node = -1;
  maxflow::EdgeId supply_edge = -1;  // s -> storage
};

struct GpuNodeInfo {
  DeviceId device = -1;
  maxflow::NodeId comp_node = -1;
  maxflow::NodeId mem_node = -1;
  maxflow::EdgeId demand_edge = -1;  // comp -> t
};

/// Directed flow edges realising each physical link, for utilisation reports.
struct LinkFlowEdges {
  LinkId link = -1;
  maxflow::EdgeId ab = -1;  // flow edge in the link's a->b direction (-1 if none)
  maxflow::EdgeId ba = -1;
};

struct FlowGraph {
  maxflow::FlowNetwork net;
  maxflow::NodeId source = -1;
  maxflow::NodeId sink = -1;
  std::vector<StorageNodeInfo> storage;  // SSDs, DRAMs, then GPU HBMs
  std::vector<GpuNodeInfo> gpus;         // ordered by GPU index
  std::vector<LinkFlowEdges> link_edges; // parallel to topology links
  /// Source->tier aggregator edges, indexed by StorageTier. The aggregator
  /// lets byte budgets be expressed per tier ("the CPU cache holds X bytes of
  /// demanded data in total") while the flow chooses how member devices share
  /// it — which is exactly the freedom DDAK later realises. -1 if the tier
  /// has no members.
  maxflow::EdgeId tier_edge[3] = {-1, -1, -1};

  /// Index into `storage` for a device id; -1 if not a storage device.
  int storage_index_of(DeviceId dev) const;
};

struct FlowGraphOptions {
  /// Model GPU HBM as a storage tier (cached hot embeddings). Disabling it
  /// reproduces systems without a GPU cache.
  bool gpu_cache = true;
  /// Model NVLink links if present in the topology.
  bool use_nvlink = true;
};

FlowGraph compile_flow_graph(const Topology& topo,
                             const FlowGraphOptions& options = {});

}  // namespace moment::topology
