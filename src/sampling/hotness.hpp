#pragma once
// Pre-sampling hotness profiler (paper Section 3.3: "We first collect vertex
// hotness information through pre-sampling"). Runs the real sampler over a
// number of warm-up batches and counts how often each vertex appears in the
// feature-fetch set. The normalised counts are the hotness distribution DDAK
// sorts by, and the per-epoch access volume estimate the simulator scales to
// paper-size traffic.

#include <cstdint>
#include <vector>

#include "sampling/neighbor_sampler.hpp"

namespace moment::sampling {

struct HotnessProfile {
  /// Per-vertex expected fetches per batch (access frequency).
  std::vector<double> hotness;
  /// Expected unique-vertex fetches per batch (after in-batch dedup).
  double fetches_per_batch = 0.0;
  /// Fraction of all fetches that hit the hottest `k`% of vertices, for
  /// k = 1, 5, 10 — the skew fingerprint used in tests and docs.
  double top1pct_traffic = 0.0;
  double top5pct_traffic = 0.0;
  double top10pct_traffic = 0.0;
  std::size_t profiled_batches = 0;
  std::size_t batch_size = 0;  // seeds per profiled batch

  /// Vertices sorted by descending hotness (DDAK's allocation order).
  std::vector<VertexId> by_hotness_desc() const;

  /// The `k` hottest vertices only (descending, stable on ties): the cheap
  /// partial form used to seed the IO stack's hot-row cache at startup.
  std::vector<VertexId> hottest(std::size_t k) const;
};

struct HotnessOptions {
  std::size_t num_batches = 32;
  std::size_t batch_size = 1024;
  std::uint64_t seed = 7;
};

HotnessProfile profile_hotness(const CsrGraph& graph,
                               const NeighborSampler& sampler,
                               const std::vector<VertexId>& train_vertices,
                               const HotnessOptions& options = {});

}  // namespace moment::sampling
