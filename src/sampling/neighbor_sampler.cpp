#include "sampling/neighbor_sampler.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace moment::sampling {

std::size_t SampledSubgraph::num_sampled_edges() const noexcept {
  std::size_t n = 0;
  for (const auto& l : layers) n += l.edges.size();
  return n;
}

NeighborSampler::NeighborSampler(const CsrGraph& graph,
                                 std::vector<int> fanouts)
    : graph_(graph), fanouts_(std::move(fanouts)) {
  if (fanouts_.empty()) {
    throw std::invalid_argument("NeighborSampler: fanouts must be non-empty");
  }
  for (int f : fanouts_) {
    if (f <= 0) throw std::invalid_argument("NeighborSampler: fanout <= 0");
  }
}

double NeighborSampler::expansion_factor() const noexcept {
  // DGL block semantics: each hop's frontier is (previous frontier U sampled
  // neighbors), so the vertex count multiplies by (1 + fanout) per hop.
  double factor = 1.0;
  for (int f : fanouts_) factor *= 1.0 + static_cast<double>(f);
  return factor;
}

SampledSubgraph NeighborSampler::sample(std::span<const VertexId> seeds,
                                        util::Pcg32& rng) const {
  SampledSubgraph sg;
  sg.seeds.assign(seeds.begin(), seeds.end());
  sg.layers.resize(fanouts_.size());

  std::unordered_set<VertexId> fetch(seeds.begin(), seeds.end());
  std::vector<VertexId> frontier(seeds.begin(), seeds.end());

  for (std::size_t hop = 0; hop < fanouts_.size(); ++hop) {
    SampledLayer& layer = sg.layers[hop];
    const int fanout = fanouts_[hop];
    // DGL block semantics: the next hop samples neighbors for the previous
    // frontier PLUS its sampled sources (every block's dst set is a subset
    // of its src set, so self features are available to UPDATE).
    std::unordered_set<VertexId> next_frontier(frontier.begin(),
                                               frontier.end());
    layer.dst_vertices = frontier;
    layer.edges.reserve(frontier.size() * static_cast<std::size_t>(fanout));
    for (VertexId dst : frontier) {
      const auto nbrs = graph_.neighbors(dst);
      if (nbrs.empty()) continue;
      // Sampling WITH replacement (DGL's default for uniform neighbor
      // sampling when fanout can exceed degree).
      for (int k = 0; k < fanout; ++k) {
        const VertexId src =
            nbrs[rng.next_below(static_cast<std::uint32_t>(nbrs.size()))];
        layer.edges.emplace_back(dst, src);
        fetch.insert(src);
        next_frontier.insert(src);
      }
    }
    frontier.assign(next_frontier.begin(), next_frontier.end());
    // Keep frontier deterministic regardless of hash-set iteration order.
    std::sort(frontier.begin(), frontier.end());
  }

  sg.fetch_set.assign(fetch.begin(), fetch.end());
  std::sort(sg.fetch_set.begin(), sg.fetch_set.end());
  return sg;
}

BatchIterator::BatchIterator(std::vector<VertexId> train_vertices,
                             std::size_t batch_size, std::uint64_t seed)
    : vertices_(std::move(train_vertices)), batch_size_(batch_size),
      rng_(seed, 0x42415443) {  // "BATC"
  if (batch_size_ == 0) {
    throw std::invalid_argument("BatchIterator: batch_size must be > 0");
  }
  reset_epoch();
}

std::span<const VertexId> BatchIterator::next() {
  if (cursor_ >= vertices_.size()) return {};
  const std::size_t take = std::min(batch_size_, vertices_.size() - cursor_);
  std::span<const VertexId> batch{vertices_.data() + cursor_, take};
  cursor_ += take;
  return batch;
}

void BatchIterator::reset_epoch() {
  cursor_ = 0;
  // Fisher-Yates with our deterministic generator.
  for (std::size_t i = vertices_.size(); i > 1; --i) {
    const std::size_t j = rng_.next_below(static_cast<std::uint32_t>(i));
    std::swap(vertices_[i - 1], vertices_[j]);
  }
}

std::size_t BatchIterator::num_batches() const noexcept {
  return (vertices_.size() + batch_size_ - 1) / batch_size_;
}

std::vector<VertexId> select_train_vertices(const CsrGraph& graph,
                                            double fraction,
                                            std::uint64_t seed) {
  const auto n = graph.num_vertices();
  auto want = static_cast<std::size_t>(fraction * static_cast<double>(n));
  want = std::max<std::size_t>(1, std::min<std::size_t>(want, n));
  // Partial Fisher-Yates over implicit [0, n): pick `want` distinct vertices.
  std::vector<VertexId> ids(n);
  for (VertexId v = 0; v < n; ++v) ids[v] = v;
  util::Pcg32 rng(seed, 0x5452414e);  // "TRAN"
  for (std::size_t i = 0; i < want; ++i) {
    const std::size_t j =
        i + rng.next_below(static_cast<std::uint32_t>(n - i));
    std::swap(ids[i], ids[j]);
  }
  ids.resize(want);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace moment::sampling
