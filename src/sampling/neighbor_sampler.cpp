#include "sampling/neighbor_sampler.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace moment::sampling {

std::size_t SampledSubgraph::num_sampled_edges() const noexcept {
  std::size_t n = 0;
  for (const auto& l : layers) n += l.edges.size();
  return n;
}

NeighborSampler::NeighborSampler(const CsrGraph& graph,
                                 std::vector<int> fanouts)
    : graph_(graph), fanouts_(std::move(fanouts)) {
  if (fanouts_.empty()) {
    throw std::invalid_argument("NeighborSampler: fanouts must be non-empty");
  }
  for (int f : fanouts_) {
    if (f <= 0) throw std::invalid_argument("NeighborSampler: fanout <= 0");
  }
}

double NeighborSampler::expansion_factor() const noexcept {
  // DGL block semantics: each hop's frontier is (previous frontier U sampled
  // neighbors), so the vertex count multiplies by (1 + fanout) per hop.
  double factor = 1.0;
  for (int f : fanouts_) factor *= 1.0 + static_cast<double>(f);
  return factor;
}

SampledSubgraph NeighborSampler::sample(std::span<const VertexId> seeds,
                                        util::Pcg32& rng) const {
  SampledSubgraph sg;
  sg.seeds.assign(seeds.begin(), seeds.end());
  sg.layers.resize(fanouts_.size());

  // Exactly two draws from the caller's generator — independent of the batch
  // content — derive the batch base. Every (hop, dst) then samples from its
  // own counter-based stream, so the subgraph is a pure function of
  // (base, hop, dst): identical for any thread count, and sibling batches
  // never perturb each other through a shared generator.
  const auto hi = static_cast<std::uint64_t>(rng.next());
  const auto lo = static_cast<std::uint64_t>(rng.next());
  const std::uint64_t base = (hi << 32) ^ lo;

  std::vector<VertexId>& frontier = scratch_frontier_;
  frontier.assign(seeds.begin(), seeds.end());
  util::ThreadPool* pool = util::compute_pool();

  for (std::size_t hop = 0; hop < fanouts_.size(); ++hop) {
    SampledLayer& layer = sg.layers[hop];
    const auto fanout = static_cast<std::size_t>(fanouts_[hop]);
    layer.dst_vertices = frontier;

    // Fan the per-dst sampling out over the compute pool: each dst writes
    // only its own slice of the scratch arrays, so chunk shapes are
    // irrelevant to the result.
    scratch_srcs_.resize(frontier.size() * fanout);
    scratch_counts_.assign(frontier.size(), 0);
    util::parallel_for(
        pool, 0, frontier.size(), 64, [&](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) {
            const VertexId dst = frontier[i];
            const auto nbrs = graph_.neighbors(dst);
            if (nbrs.empty()) continue;
            util::Pcg32 r(
                util::hash_combine(base + hop,
                                   static_cast<std::uint64_t>(dst)),
                0x4e534d50);  // "NSMP"
            VertexId* out = scratch_srcs_.data() + i * fanout;
            // Sampling WITH replacement (DGL's default for uniform neighbor
            // sampling when fanout can exceed degree).
            for (std::size_t k = 0; k < fanout; ++k) {
              out[k] = nbrs[r.next_below(
                  static_cast<std::uint32_t>(nbrs.size()))];
            }
            scratch_counts_[i] = static_cast<std::uint32_t>(fanout);
          }
        });

    // Sequential compaction in frontier order: the same edge order the
    // historical sequential loop produced.
    layer.edges.clear();
    layer.edges.reserve(frontier.size() * fanout);
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const VertexId* src = scratch_srcs_.data() + i * fanout;
      for (std::uint32_t k = 0; k < scratch_counts_[i]; ++k) {
        layer.edges.emplace_back(frontier[i], src[k]);
      }
    }

    // DGL block semantics: the next hop's frontier is the previous frontier
    // PLUS its sampled sources (every block's dst set is a subset of its src
    // set, so self features are available to UPDATE).
    scratch_next_.assign(frontier.begin(), frontier.end());
    for (const auto& [dst, src] : layer.edges) scratch_next_.push_back(src);
    std::sort(scratch_next_.begin(), scratch_next_.end());
    scratch_next_.erase(
        std::unique(scratch_next_.begin(), scratch_next_.end()),
        scratch_next_.end());
    std::swap(frontier, scratch_next_);
  }

  // The frontier grows monotonically (seeds U all sampled sources), so after
  // the last hop it IS the unique feature-fetch set.
  sg.fetch_set = frontier;
  return sg;
}

BatchIterator::BatchIterator(std::vector<VertexId> train_vertices,
                             std::size_t batch_size, std::uint64_t seed)
    : vertices_(std::move(train_vertices)), batch_size_(batch_size),
      rng_(seed, 0x42415443) {  // "BATC"
  if (batch_size_ == 0) {
    throw std::invalid_argument("BatchIterator: batch_size must be > 0");
  }
  reset_epoch();
}

std::span<const VertexId> BatchIterator::next() {
  if (cursor_ >= vertices_.size()) return {};
  const std::size_t take = std::min(batch_size_, vertices_.size() - cursor_);
  std::span<const VertexId> batch{vertices_.data() + cursor_, take};
  cursor_ += take;
  return batch;
}

void BatchIterator::reset_epoch() {
  cursor_ = 0;
  // Fisher-Yates with our deterministic generator.
  for (std::size_t i = vertices_.size(); i > 1; --i) {
    const std::size_t j = rng_.next_below(static_cast<std::uint32_t>(i));
    std::swap(vertices_[i - 1], vertices_[j]);
  }
}

std::size_t BatchIterator::num_batches() const noexcept {
  return (vertices_.size() + batch_size_ - 1) / batch_size_;
}

std::vector<VertexId> select_train_vertices(const CsrGraph& graph,
                                            double fraction,
                                            std::uint64_t seed) {
  const auto n = graph.num_vertices();
  auto want = static_cast<std::size_t>(fraction * static_cast<double>(n));
  want = std::max<std::size_t>(1, std::min<std::size_t>(want, n));
  // Partial Fisher-Yates over implicit [0, n): pick `want` distinct vertices.
  std::vector<VertexId> ids(n);
  for (VertexId v = 0; v < n; ++v) ids[v] = v;
  util::Pcg32 rng(seed, 0x5452414e);  // "TRAN"
  for (std::size_t i = 0; i < want; ++i) {
    const std::size_t j =
        i + rng.next_below(static_cast<std::uint32_t>(n - i));
    std::swap(ids[i], ids[j]);
  }
  ids.resize(want);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace moment::sampling
