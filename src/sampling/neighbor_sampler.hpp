#pragma once
// Mini-batch k-hop uniform neighbor sampling (GraphSAGE-style), matching the
// paper's workload: 2-hop random sampling with fan-outs [25, 10], batch 8000.
//
// sample() returns the layered subgraph (per-hop edges) plus the unique
// feature-fetch set — the vertices whose embeddings must be gathered from the
// storage hierarchy. The fetch set drives both the hotness profiler and the
// simulator's traffic model.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "util/rng.hpp"

namespace moment::sampling {

using graph::CsrGraph;
using graph::VertexId;

/// One message-passing layer of a sampled subgraph. Edges are (dst, src):
/// dst aggregates from src. Vertex ids are global graph ids.
struct SampledLayer {
  std::vector<VertexId> dst_vertices;           // unique targets of this hop
  std::vector<std::pair<VertexId, VertexId>> edges;
};

struct SampledSubgraph {
  std::vector<VertexId> seeds;
  /// layers[0] is the outermost hop (seeds aggregate in layers.back()).
  std::vector<SampledLayer> layers;
  /// Unique vertices whose features must be fetched (all sampled vertices).
  std::vector<VertexId> fetch_set;

  std::size_t num_sampled_edges() const noexcept;
};

class NeighborSampler {
 public:
  /// `fanouts` ordered from the seed layer outward, e.g. {25, 10} samples 25
  /// first-hop then 10 second-hop neighbors per vertex (paper Section 4.1).
  NeighborSampler(const CsrGraph& graph, std::vector<int> fanouts);

  /// Samples the layered subgraph for `seeds`. Draws exactly two words from
  /// `rng` to derive a batch base, then every (hop, dst) pair samples from
  /// its own counter-based stream — fanned over util::compute_pool(), with
  /// results independent of the thread count (samples are a pure function of
  /// (base, hop, dst)). Reuses per-sampler scratch buffers, so concurrent
  /// sample() calls on the SAME instance race; give each worker thread its
  /// own sampler (the engine already does).
  SampledSubgraph sample(std::span<const VertexId> seeds,
                         util::Pcg32& rng) const;

  const std::vector<int>& fanouts() const noexcept { return fanouts_; }

  /// Expected number of vertex-feature fetches per seed, ignoring dedup:
  /// 1 + f0 + f0*f1 + ... Used for paper-scale traffic arithmetic.
  double expansion_factor() const noexcept;

 private:
  const CsrGraph& graph_;
  std::vector<int> fanouts_;
  /// Per-call scratch, hoisted so steady-state sampling allocates only the
  /// returned subgraph (see sample() for the reuse/thread-safety contract).
  mutable std::vector<VertexId> scratch_frontier_;
  mutable std::vector<VertexId> scratch_next_;
  mutable std::vector<VertexId> scratch_srcs_;
  mutable std::vector<std::uint32_t> scratch_counts_;
};

/// Shuffled mini-batch iterator over training vertices.
class BatchIterator {
 public:
  BatchIterator(std::vector<VertexId> train_vertices, std::size_t batch_size,
                std::uint64_t seed);

  /// Next batch, or empty when the epoch is exhausted.
  std::span<const VertexId> next();
  void reset_epoch();  // reshuffles

  std::size_t num_batches() const noexcept;
  std::size_t batch_size() const noexcept { return batch_size_; }

 private:
  std::vector<VertexId> vertices_;
  std::size_t batch_size_;
  std::size_t cursor_ = 0;
  util::Pcg32 rng_;
};

/// Selects `fraction` of all vertices as training vertices (uniformly,
/// matching the paper's "randomly select 1% of the vertices").
std::vector<VertexId> select_train_vertices(const CsrGraph& graph,
                                            double fraction,
                                            std::uint64_t seed);

}  // namespace moment::sampling
