#include "sampling/hotness.hpp"

#include <algorithm>
#include <numeric>

namespace moment::sampling {

std::vector<VertexId> HotnessProfile::by_hotness_desc() const {
  std::vector<VertexId> order(hotness.size());
  std::iota(order.begin(), order.end(), VertexId{0});
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return hotness[a] > hotness[b];
  });
  return order;
}

std::vector<VertexId> HotnessProfile::hottest(std::size_t k) const {
  std::vector<VertexId> order(hotness.size());
  std::iota(order.begin(), order.end(), VertexId{0});
  k = std::min(k, order.size());
  // partial_sort is not stable; break hotness ties by vertex id so the
  // warm-up set is deterministic and matches by_hotness_desc's prefix.
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(k),
                    order.end(), [&](VertexId a, VertexId b) {
                      if (hotness[a] != hotness[b]) {
                        return hotness[a] > hotness[b];
                      }
                      return a < b;
                    });
  order.resize(k);
  return order;
}

HotnessProfile profile_hotness(const CsrGraph& graph,
                               const NeighborSampler& sampler,
                               const std::vector<VertexId>& train_vertices,
                               const HotnessOptions& options) {
  HotnessProfile profile;
  profile.hotness.assign(graph.num_vertices(), 0.0);
  profile.profiled_batches = options.num_batches;
  profile.batch_size = options.batch_size;

  BatchIterator batches(train_vertices, options.batch_size, options.seed);
  util::Pcg32 rng(options.seed, 0x484f544e);  // "HOTN"

  std::size_t total_fetches = 0;
  for (std::size_t b = 0; b < options.num_batches; ++b) {
    auto batch = batches.next();
    if (batch.empty()) {
      batches.reset_epoch();
      batch = batches.next();
    }
    const SampledSubgraph sg = sampler.sample(batch, rng);
    for (VertexId v : sg.fetch_set) {
      profile.hotness[v] += 1.0;
    }
    total_fetches += sg.fetch_set.size();
  }

  const auto nb = static_cast<double>(options.num_batches);
  for (double& h : profile.hotness) h /= nb;
  profile.fetches_per_batch = static_cast<double>(total_fetches) / nb;

  // Skew fingerprint.
  std::vector<double> sorted = profile.hotness;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const double total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
  if (total > 0.0) {
    auto share = [&](double pct) {
      const auto k = std::max<std::size_t>(
          1, static_cast<std::size_t>(pct * static_cast<double>(sorted.size())));
      return std::accumulate(sorted.begin(),
                             sorted.begin() + static_cast<long>(k), 0.0) /
             total;
    };
    profile.top1pct_traffic = share(0.01);
    profile.top5pct_traffic = share(0.05);
    profile.top10pct_traffic = share(0.10);
  }
  return profile;
}

}  // namespace moment::sampling
