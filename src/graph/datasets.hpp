#pragma once
// Dataset presets mirroring the paper's Table 2 (PA/IG/UK/CL), scaled down so
// they fit in memory while preserving the degree skew that drives DDAK.
//
// Each preset carries both the *scaled* in-memory graph (used functionally by
// the sampler/trainer) and the *paper-scale* statistics (used by the simulator
// so epoch times and traffic volumes land in the regime the paper reports).
// Scale-free quantities — cache hit rates, hotness distribution shape, tier
// traffic fractions — are measured on the scaled graph and applied to the
// paper-scale volume arithmetic.

#include <cstdint>
#include <string>

#include "graph/csr.hpp"

namespace moment::graph {

struct DatasetStats {
  std::uint64_t vertices = 0;
  std::uint64_t edges = 0;
  std::uint64_t topology_bytes = 0;
  std::uint32_t feature_dim = 0;
  std::uint64_t feature_bytes = 0;  // vertices * feature_dim * sizeof(float)
};

struct Dataset {
  std::string name;          // "PA", "IG", "UK", "CL"
  std::string full_name;     // "Paper100M", ...
  CsrGraph csr;              // scaled graph
  DatasetStats paper;        // Table-2 scale
  DatasetStats scaled;       // actual in-memory scale
  std::uint32_t feature_dim = 64;   // scaled feature dim for functional runs
  double train_fraction = 0.01;     // 1% of vertices are training vertices
  std::uint64_t seed = 42;

  /// Ratio paper.vertices / scaled.vertices: converts scaled access counts to
  /// paper-scale traffic.
  double upscale() const noexcept {
    return scaled.vertices ? static_cast<double>(paper.vertices) /
                                 static_cast<double>(scaled.vertices)
                           : 1.0;
  }
  std::uint64_t num_train_vertices_scaled() const noexcept {
    return static_cast<std::uint64_t>(
        train_fraction * static_cast<double>(scaled.vertices));
  }
};

enum class DatasetId { kPA, kIG, kUK, kCL };

/// Builds a scaled preset. `scale_shift` halves vertex count per increment
/// (0 = the default ~2^4..2^18-vertex presets used by tests and benches).
Dataset make_dataset(DatasetId id, int scale_shift = 0, std::uint64_t seed = 42);

const char* dataset_name(DatasetId id) noexcept;

/// All four presets in paper order.
inline constexpr DatasetId kAllDatasets[] = {DatasetId::kPA, DatasetId::kIG,
                                             DatasetId::kUK, DatasetId::kCL};

}  // namespace moment::graph
