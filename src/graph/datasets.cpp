#include "graph/datasets.hpp"

#include <stdexcept>

#include "graph/generators.hpp"

namespace moment::graph {

namespace {

struct PaperShape {
  const char* abbrev;
  const char* full;
  std::uint64_t vertices;
  std::uint64_t edges;
  std::uint64_t topo_bytes;
  std::uint64_t feat_bytes;
  // Scaled generation parameters (vertices as power of two for RMAT).
  VertexId scaled_vertices;
  EdgeIndex scaled_edges;
};

// Paper Table 2. Feature dim 1024 floats at paper scale.
constexpr PaperShape kShapes[] = {
    {"PA", "Paper100M", 111'000'000ULL, 1'600'000'000ULL,
     14ULL << 30, 56ULL << 30, 1u << 15, 200'000ULL},
    {"IG", "IGB-HOM", 269'000'000ULL, 4'000'000'000ULL,
     34ULL << 30, 1'100ULL << 30, 1u << 16, 500'000ULL},
    {"UK", "UK-2014", 790'000'000ULL, 47'200'000'000ULL,
     384ULL << 30, 3'200ULL << 30, 1u << 17, 2'900'000ULL},
    {"CL", "ClueWeb", 1'000'000'000ULL, 42'500'000'000ULL,
     348ULL << 30, 4'100ULL << 30, 1u << 18, 5'200'000ULL},
};

}  // namespace

const char* dataset_name(DatasetId id) noexcept {
  return kShapes[static_cast<int>(id)].abbrev;
}

Dataset make_dataset(DatasetId id, int scale_shift, std::uint64_t seed) {
  const PaperShape& shape = kShapes[static_cast<int>(id)];
  if (scale_shift < 0 || scale_shift > 10) {
    throw std::invalid_argument("make_dataset: scale_shift out of range");
  }

  Dataset ds;
  ds.name = shape.abbrev;
  ds.full_name = shape.full;
  ds.seed = seed;
  ds.paper.vertices = shape.vertices;
  ds.paper.edges = shape.edges;
  ds.paper.topology_bytes = shape.topo_bytes;
  ds.paper.feature_dim = 1024;
  ds.paper.feature_bytes = shape.feat_bytes;

  RmatParams rp;
  rp.num_vertices = shape.scaled_vertices >> scale_shift;
  rp.num_edges = shape.scaled_edges >> scale_shift;
  rp.seed = seed + static_cast<std::uint64_t>(id) * 1000003ULL;
  rp.undirected = true;
  ds.csr = generate_rmat(rp);

  ds.scaled.vertices = ds.csr.num_vertices();
  ds.scaled.edges = ds.csr.num_edges();
  ds.scaled.topology_bytes = ds.csr.topology_bytes();
  ds.scaled.feature_dim = ds.feature_dim;
  ds.scaled.feature_bytes = static_cast<std::uint64_t>(ds.scaled.vertices) *
                            ds.feature_dim * sizeof(float);
  return ds;
}

}  // namespace moment::graph
