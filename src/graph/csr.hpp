#pragma once
// Compressed-sparse-row graph: the storage format used by the sampler, the
// hotness profiler and the training runtime. Immutable after construction.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace moment::graph {

using VertexId = std::uint32_t;
using EdgeIndex = std::uint64_t;

/// An edge list (source, destination) used as the construction input.
struct EdgeList {
  VertexId num_vertices = 0;
  std::vector<std::pair<VertexId, VertexId>> edges;
};

/// Immutable CSR adjacency. Out-neighbors of v are
/// `adj[offsets[v] .. offsets[v+1])`.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds from an edge list; duplicate edges are kept (multigraph semantics
  /// match sampling-with-replacement workloads). If `add_reverse`, every edge
  /// is also inserted in the opposite direction (undirected view).
  static CsrGraph from_edges(const EdgeList& edges, bool add_reverse = false);

  VertexId num_vertices() const noexcept { return num_vertices_; }
  EdgeIndex num_edges() const noexcept {
    return static_cast<EdgeIndex>(adj_.size());
  }

  std::span<const VertexId> neighbors(VertexId v) const noexcept {
    return {adj_.data() + offsets_[v],
            static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
  }

  EdgeIndex degree(VertexId v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

  std::span<const EdgeIndex> offsets() const noexcept { return offsets_; }
  std::span<const VertexId> adjacency() const noexcept { return adj_; }

  /// Bytes needed to store topology (offsets + adjacency), mirroring the
  /// paper's Table 2 "Topology Storage" column for the scaled datasets.
  std::size_t topology_bytes() const noexcept;

  /// Serialise/deserialise to a simple binary format (magic + sizes + arrays).
  void save(const std::string& path) const;
  static CsrGraph load(const std::string& path);

 private:
  VertexId num_vertices_ = 0;
  std::vector<EdgeIndex> offsets_;  // size num_vertices_+1
  std::vector<VertexId> adj_;
};

/// Degree statistics used to verify skew-preservation of generators.
struct DegreeStats {
  double mean = 0.0;
  double max = 0.0;
  double gini = 0.0;          // skew of the degree distribution
  double top1pct_share = 0.0; // fraction of edges touching the top-1% vertices
};

DegreeStats degree_stats(const CsrGraph& g);

}  // namespace moment::graph
