#include "graph/generators.hpp"

#include <bit>
#include <stdexcept>

#include "util/rng.hpp"

namespace moment::graph {

namespace {

VertexId round_up_pow2(VertexId n) {
  if (n <= 1) return 1;
  return static_cast<VertexId>(std::bit_ceil(static_cast<std::uint32_t>(n)));
}

}  // namespace

CsrGraph generate_rmat(const RmatParams& params) {
  const double d = 1.0 - params.a - params.b - params.c;
  if (d < 0.0) {
    throw std::invalid_argument("generate_rmat: a+b+c must be <= 1");
  }
  const VertexId n = round_up_pow2(params.num_vertices);
  const int levels = std::bit_width(static_cast<std::uint32_t>(n)) - 1;

  util::Pcg32 rng(params.seed, 0x524d4154);  // "RMAT"
  EdgeList el;
  el.num_vertices = n;
  el.edges.reserve(params.num_edges);
  for (EdgeIndex e = 0; e < params.num_edges; ++e) {
    VertexId u = 0, v = 0;
    for (int l = 0; l < levels; ++l) {
      const double r = rng.next_double();
      u <<= 1;
      v <<= 1;
      if (r < params.a) {
        // top-left quadrant: no bits set
      } else if (r < params.a + params.b) {
        v |= 1;
      } else if (r < params.a + params.b + params.c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    el.edges.emplace_back(u, v);
  }
  return CsrGraph::from_edges(el, params.undirected);
}

CsrGraph generate_erdos_renyi(const ErdosRenyiParams& params) {
  util::Pcg32 rng(params.seed, 0x4552);  // "ER"
  EdgeList el;
  el.num_vertices = params.num_vertices;
  el.edges.reserve(params.num_edges);
  for (EdgeIndex e = 0; e < params.num_edges; ++e) {
    const VertexId u = rng.next_below(params.num_vertices);
    const VertexId v = rng.next_below(params.num_vertices);
    el.edges.emplace_back(u, v);
  }
  return CsrGraph::from_edges(el, params.undirected);
}

CsrGraph generate_power_law(const PowerLawParams& params) {
  util::Pcg32 rng(params.seed, 0x504c);  // "PL"
  util::ZipfSampler zipf(params.num_vertices, params.exponent);
  const auto num_edges = static_cast<EdgeIndex>(
      params.avg_degree * static_cast<double>(params.num_vertices) /
      (params.undirected ? 2.0 : 1.0));
  EdgeList el;
  el.num_vertices = params.num_vertices;
  el.edges.reserve(num_edges);
  for (EdgeIndex e = 0; e < num_edges; ++e) {
    const auto u = static_cast<VertexId>(zipf.sample(rng));
    const VertexId v = rng.next_below(params.num_vertices);
    el.edges.emplace_back(u, v);
  }
  return CsrGraph::from_edges(el, params.undirected);
}

}  // namespace moment::graph
