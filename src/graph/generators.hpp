#pragma once
// Synthetic graph generators. The paper evaluates on PA/IGB/UK/CL, whose key
// property for Moment is *degree skew* (a small hot set dominates feature
// traffic). RMAT reproduces that skew; Erdos-Renyi provides an unskewed
// control for DDAK ablations.

#include <cstdint>

#include "graph/csr.hpp"

namespace moment::graph {

struct RmatParams {
  VertexId num_vertices = 1 << 14;  // rounded up to a power of two
  EdgeIndex num_edges = 1 << 18;
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1-a-b-c; Graph500 defaults
  std::uint64_t seed = 42;
  bool undirected = true;
};

/// Recursive-matrix (Graph500-style) generator: power-law degree distribution.
CsrGraph generate_rmat(const RmatParams& params);

struct ErdosRenyiParams {
  VertexId num_vertices = 1 << 14;
  EdgeIndex num_edges = 1 << 18;
  std::uint64_t seed = 42;
  bool undirected = true;
};

/// Uniform random graph: flat degree distribution (skew control).
CsrGraph generate_erdos_renyi(const ErdosRenyiParams& params);

struct PowerLawParams {
  VertexId num_vertices = 1 << 14;
  double avg_degree = 16.0;
  double exponent = 1.2;  // Zipf exponent over vertex attachment probability
  std::uint64_t seed = 42;
  bool undirected = true;
};

/// Direct preferential-attachment-style generator: each edge endpoint is drawn
/// from a Zipf distribution over vertices, giving controllable skew.
CsrGraph generate_power_law(const PowerLawParams& params);

}  // namespace moment::graph
