#include "graph/partition.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "util/rng.hpp"

namespace moment::graph {

std::vector<std::int32_t> partition_bfs(const CsrGraph& graph, int parts,
                                        std::uint64_t seed) {
  if (parts <= 0) throw std::invalid_argument("partition_bfs: parts <= 0");
  const VertexId n = graph.num_vertices();
  std::vector<std::int32_t> part_of(n, -1);
  if (n == 0) return part_of;

  const std::size_t cap =
      (static_cast<std::size_t>(n) + static_cast<std::size_t>(parts) - 1) /
      static_cast<std::size_t>(parts);
  std::vector<std::size_t> sizes(static_cast<std::size_t>(parts), 0);
  std::vector<std::deque<VertexId>> frontiers(
      static_cast<std::size_t>(parts));

  util::Pcg32 rng(seed, 0x50415254);  // "PART"
  for (int p = 0; p < parts; ++p) {
    // Seed each part at a random unassigned vertex.
    for (int tries = 0; tries < 64; ++tries) {
      const VertexId v = rng.next_below(n);
      if (part_of[v] < 0) {
        part_of[v] = p;
        ++sizes[static_cast<std::size_t>(p)];
        frontiers[static_cast<std::size_t>(p)].push_back(v);
        break;
      }
    }
  }

  // Round-robin BFS growth under the balance cap.
  bool progress = true;
  while (progress) {
    progress = false;
    for (int p = 0; p < parts; ++p) {
      auto& frontier = frontiers[static_cast<std::size_t>(p)];
      std::size_t steps = 64;  // interleave parts for even growth
      while (!frontier.empty() && steps-- > 0 &&
             sizes[static_cast<std::size_t>(p)] < cap) {
        const VertexId u = frontier.front();
        frontier.pop_front();
        for (VertexId v : graph.neighbors(u)) {
          if (part_of[v] < 0) {
            part_of[v] = p;
            ++sizes[static_cast<std::size_t>(p)];
            frontier.push_back(v);
            progress = true;
            if (sizes[static_cast<std::size_t>(p)] >= cap) break;
          }
        }
      }
      if (!frontier.empty()) progress = true;
      if (sizes[static_cast<std::size_t>(p)] >= cap) frontier.clear();
    }
  }

  // Isolated / unreached vertices: fill the emptiest parts.
  for (VertexId v = 0; v < n; ++v) {
    if (part_of[v] >= 0) continue;
    const auto smallest = static_cast<std::int32_t>(
        std::min_element(sizes.begin(), sizes.end()) - sizes.begin());
    part_of[v] = smallest;
    ++sizes[static_cast<std::size_t>(smallest)];
  }
  return part_of;
}

std::vector<std::int32_t> partition_hash(const CsrGraph& graph, int parts,
                                         std::uint64_t seed) {
  if (parts <= 0) throw std::invalid_argument("partition_hash: parts <= 0");
  std::vector<std::int32_t> part_of(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    part_of[v] = static_cast<std::int32_t>(
        util::hash_combine(seed, v) % static_cast<std::uint64_t>(parts));
  }
  return part_of;
}

PartitionStats partition_stats(const CsrGraph& graph,
                               const std::vector<std::int32_t>& part_of) {
  PartitionStats stats;
  if (part_of.size() != graph.num_vertices()) {
    throw std::invalid_argument("partition_stats: size mismatch");
  }
  std::int32_t parts = 0;
  for (auto p : part_of) parts = std::max(parts, p + 1);
  stats.parts = parts;
  stats.part_sizes.assign(static_cast<std::size_t>(parts), 0);
  for (auto p : part_of) {
    if (p < 0) throw std::invalid_argument("partition_stats: unassigned");
    ++stats.part_sizes[static_cast<std::size_t>(p)];
  }

  EdgeIndex cut = 0;
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    for (VertexId v : graph.neighbors(u)) {
      if (part_of[u] != part_of[v]) ++cut;
    }
  }
  stats.edge_cut_fraction =
      graph.num_edges() > 0
          ? static_cast<double>(cut) / static_cast<double>(graph.num_edges())
          : 0.0;
  const double ideal = static_cast<double>(graph.num_vertices()) /
                       std::max(1, parts);
  std::size_t largest = 0;
  for (std::size_t s : stats.part_sizes) largest = std::max(largest, s);
  stats.balance = ideal > 0 ? static_cast<double>(largest) / ideal : 1.0;
  return stats;
}

}  // namespace moment::graph
