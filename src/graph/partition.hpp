#pragma once
// Graph partitioning for the distributed baseline: DistDGL hash- or
// METIS-partitions the graph across machines, and its network traffic is the
// remote-neighbor fraction of sampled edges. We implement a BFS-grow
// partitioner (a light-weight METIS stand-in that preserves locality) and a
// hash partitioner (the no-locality control), plus the cut statistics the
// DistDGL model consumes.

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace moment::graph {

struct PartitionStats {
  int parts = 0;
  /// Fraction of edges whose endpoints live in different parts.
  double edge_cut_fraction = 0.0;
  /// Largest part size / ideal part size (1.0 = perfectly balanced).
  double balance = 1.0;
  std::vector<std::size_t> part_sizes;
};

/// BFS-grow partitioning: seeds one BFS frontier per part and grows them
/// breadth-first under a balance cap, assigning each vertex to the first
/// frontier that reaches it. Locality-preserving like METIS, linear time.
std::vector<std::int32_t> partition_bfs(const CsrGraph& graph, int parts,
                                        std::uint64_t seed = 1);

/// Hash partitioning: vertex -> hash(v) % parts. The no-locality control.
std::vector<std::int32_t> partition_hash(const CsrGraph& graph, int parts,
                                         std::uint64_t seed = 1);

PartitionStats partition_stats(const CsrGraph& graph,
                               const std::vector<std::int32_t>& part_of);

}  // namespace moment::graph
