#include "graph/csr.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <stdexcept>

#include "util/stats.hpp"

namespace moment::graph {

CsrGraph CsrGraph::from_edges(const EdgeList& edges, bool add_reverse) {
  CsrGraph g;
  g.num_vertices_ = edges.num_vertices;
  const std::size_t m =
      edges.edges.size() * (add_reverse ? 2 : 1);
  g.offsets_.assign(static_cast<std::size_t>(g.num_vertices_) + 1, 0);

  for (const auto& [u, v] : edges.edges) {
    if (u >= g.num_vertices_ || v >= g.num_vertices_) {
      throw std::out_of_range("CsrGraph::from_edges: vertex id out of range");
    }
    ++g.offsets_[u + 1];
    if (add_reverse) ++g.offsets_[v + 1];
  }
  std::partial_sum(g.offsets_.begin(), g.offsets_.end(), g.offsets_.begin());

  g.adj_.resize(m);
  std::vector<EdgeIndex> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges.edges) {
    g.adj_[cursor[u]++] = v;
    if (add_reverse) g.adj_[cursor[v]++] = u;
  }
  return g;
}

std::size_t CsrGraph::topology_bytes() const noexcept {
  return offsets_.size() * sizeof(EdgeIndex) + adj_.size() * sizeof(VertexId);
}

void CsrGraph::save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw std::runtime_error("CsrGraph::save: cannot open " + path);
  const std::uint64_t magic = 0x4d4f4d47525048ULL;  // "MOMGRPH"
  const std::uint64_t n = num_vertices_;
  const std::uint64_t m = adj_.size();
  bool ok = std::fwrite(&magic, sizeof(magic), 1, f) == 1 &&
            std::fwrite(&n, sizeof(n), 1, f) == 1 &&
            std::fwrite(&m, sizeof(m), 1, f) == 1 &&
            (offsets_.empty() ||
             std::fwrite(offsets_.data(), sizeof(EdgeIndex), offsets_.size(),
                         f) == offsets_.size()) &&
            (adj_.empty() || std::fwrite(adj_.data(), sizeof(VertexId),
                                         adj_.size(), f) == adj_.size());
  std::fclose(f);
  if (!ok) throw std::runtime_error("CsrGraph::save: short write to " + path);
}

CsrGraph CsrGraph::load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::runtime_error("CsrGraph::load: cannot open " + path);
  std::uint64_t magic = 0, n = 0, m = 0;
  CsrGraph g;
  bool ok = std::fread(&magic, sizeof(magic), 1, f) == 1 &&
            std::fread(&n, sizeof(n), 1, f) == 1 &&
            std::fread(&m, sizeof(m), 1, f) == 1;
  if (ok && magic == 0x4d4f4d47525048ULL) {
    g.num_vertices_ = static_cast<VertexId>(n);
    g.offsets_.resize(n + 1);
    g.adj_.resize(m);
    ok = std::fread(g.offsets_.data(), sizeof(EdgeIndex), g.offsets_.size(),
                    f) == g.offsets_.size() &&
         (m == 0 || std::fread(g.adj_.data(), sizeof(VertexId), g.adj_.size(),
                               f) == g.adj_.size());
  } else {
    ok = false;
  }
  std::fclose(f);
  if (!ok) throw std::runtime_error("CsrGraph::load: bad file " + path);
  return g;
}

DegreeStats degree_stats(const CsrGraph& g) {
  DegreeStats s;
  const VertexId n = g.num_vertices();
  if (n == 0) return s;
  std::vector<double> degrees(n);
  for (VertexId v = 0; v < n; ++v) {
    degrees[v] = static_cast<double>(g.degree(v));
  }
  auto summary = util::summarize(degrees);
  s.mean = summary.mean;
  s.max = summary.max;
  s.gini = util::gini(degrees);

  std::vector<double> sorted = degrees;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const std::size_t top = std::max<std::size_t>(1, n / 100);
  const double top_sum =
      std::accumulate(sorted.begin(), sorted.begin() + static_cast<long>(top), 0.0);
  const double total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
  s.top1pct_share = total > 0 ? top_sum / total : 0.0;
  return s;
}

}  // namespace moment::graph
