#pragma once
// The paper's "time-bisection Ford-Fulkerson" (Section 3.2, Problem Solving):
// given per-GPU byte demands and per-storage byte supplies over a network
// whose physical edges carry *rates* (bytes/s), find the minimum time T such
// that all demands are satisfiable. At time T, a physical edge can move
// rate*T bytes; demand edges are fixed at their byte totals; supply edges at
// min(rate*T, resident bytes). Feasible(T) is monotone in T, so bisection
// applies.
//
// The reciprocal total_demand/T* is the predicted aggregate throughput; the
// per-edge flows at T* are the traffic plan DDAK turns into data placement.

#include <functional>
#include <span>
#include <vector>

#include "maxflow/flow_network.hpp"

namespace moment::maxflow {

/// Fixes the capacity of `edge` to `bytes` (demand) or to
/// min(rate*T, bytes) (supply), where rate is the edge's base capacity.
struct ByteConstraint {
  EdgeId edge = -1;
  double bytes = 0.0;
};

struct TimeBisectionResult {
  bool feasible = false;
  double min_time_s = 0.0;         // smallest feasible T
  double throughput = 0.0;         // total demand / min_time_s (bytes/s)
  double total_demand = 0.0;       // bytes
  std::vector<double> edge_flow;   // bytes moved per forward EdgeId at T*
  int iterations = 0;
};

struct TimeBisectionOptions {
  double t_lo = 1e-6;
  double t_hi_initial = 1.0;  // doubled until feasible (up to max_doublings)
  int max_doublings = 60;
  double rel_tol = 1e-4;
  int max_iterations = 80;
};

/// `base` must carry rates on all physical edges. `demands` are the GPU->sink
/// edges (capacity ignored in base); `supplies` are the source->storage edges
/// whose byte availability caps them in addition to their rate.
TimeBisectionResult solve_time_bisection(
    const FlowNetwork& base, NodeId s, NodeId t,
    std::span<const ByteConstraint> demands,
    std::span<const ByteConstraint> supplies,
    const TimeBisectionOptions& options = {});

}  // namespace moment::maxflow
