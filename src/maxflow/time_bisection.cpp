#include "maxflow/time_bisection.hpp"

#include <algorithm>
#include <cmath>

#include "maxflow/dinic.hpp"

namespace moment::maxflow {

namespace {

/// Builds the byte-capacity network for trial time T and solves it.
double solve_at_time(const FlowNetwork& base, NodeId s, NodeId t, double time_s,
                     std::span<const ByteConstraint> demands,
                     std::span<const ByteConstraint> supplies,
                     FlowNetwork* out_net) {
  FlowNetwork net = base;
  net.scale_capacities(time_s);
  for (const auto& d : demands) {
    net.set_capacity(d.edge, d.bytes);
  }
  for (const auto& sup : supplies) {
    const double rate = base.original_capacity(sup.edge);
    const double cap = std::isinf(rate) ? sup.bytes
                                        : std::min(rate * time_s, sup.bytes);
    net.set_capacity(sup.edge, cap);
  }
  const MaxFlowResult r = Dinic::solve(net, s, t);
  if (out_net) *out_net = std::move(net);
  return r.total_flow;
}

}  // namespace

TimeBisectionResult solve_time_bisection(
    const FlowNetwork& base, NodeId s, NodeId t,
    std::span<const ByteConstraint> demands,
    std::span<const ByteConstraint> supplies,
    const TimeBisectionOptions& options) {
  TimeBisectionResult result;
  for (const auto& d : demands) result.total_demand += d.bytes;
  if (result.total_demand <= 0.0) {
    result.feasible = true;
    result.min_time_s = 0.0;
    return result;
  }
  const double target = result.total_demand * (1.0 - 1e-9);

  // Phase 1: exponential search for a feasible upper bound.
  double hi = options.t_hi_initial;
  bool hi_feasible = false;
  for (int i = 0; i <= options.max_doublings; ++i) {
    ++result.iterations;
    if (solve_at_time(base, s, t, hi, demands, supplies, nullptr) >= target) {
      hi_feasible = true;
      break;
    }
    hi *= 2.0;
  }
  if (!hi_feasible) {
    result.feasible = false;  // demand cannot be met (e.g. supply < demand)
    return result;
  }

  // Phase 2: bisection between lo (infeasible) and hi (feasible).
  double lo = options.t_lo;
  if (solve_at_time(base, s, t, lo, demands, supplies, nullptr) >= target) {
    hi = lo;  // already feasible at the lower bound
  } else {
    for (int i = 0; i < options.max_iterations && (hi - lo) > options.rel_tol * hi;
         ++i) {
      ++result.iterations;
      const double mid = 0.5 * (lo + hi);
      if (solve_at_time(base, s, t, mid, demands, supplies, nullptr) >= target) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
  }

  FlowNetwork final_net;
  solve_at_time(base, s, t, hi, demands, supplies, &final_net);
  result.feasible = true;
  result.min_time_s = hi;
  result.throughput = result.total_demand / hi;
  result.edge_flow.resize(final_net.num_edges() * 2, 0.0);
  for (EdgeId e = 0; e < static_cast<EdgeId>(final_net.num_edges() * 2); e += 2) {
    result.edge_flow[static_cast<std::size_t>(e)] = final_net.flow(e);
  }
  return result;
}

}  // namespace moment::maxflow
