#include "maxflow/edmonds_karp.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <vector>

namespace moment::maxflow {

MaxFlowResult EdmondsKarp::solve(FlowNetwork& net, NodeId s, NodeId t) {
  assert(s != t);
  MaxFlowResult result;
  const auto n = static_cast<std::size_t>(net.num_nodes());
  std::vector<EdgeId> parent_edge(n);

  for (;;) {
    std::fill(parent_edge.begin(), parent_edge.end(), -1);
    std::queue<NodeId> q;
    q.push(s);
    std::vector<bool> visited(n, false);
    visited[static_cast<std::size_t>(s)] = true;
    bool found = false;
    while (!q.empty() && !found) {
      const NodeId u = q.front();
      q.pop();
      for (EdgeId eid : net.incident(u)) {
        const auto& e = net.edge(eid);
        if (e.capacity > kFlowEps && !visited[static_cast<std::size_t>(e.to)]) {
          visited[static_cast<std::size_t>(e.to)] = true;
          parent_edge[static_cast<std::size_t>(e.to)] = eid;
          if (e.to == t) {
            found = true;
            break;
          }
          q.push(e.to);
        }
      }
    }
    if (!found) break;

    double bottleneck = kInfiniteCapacity;
    for (NodeId v = t; v != s;) {
      const EdgeId eid = parent_edge[static_cast<std::size_t>(v)];
      bottleneck = std::min(bottleneck, net.edge(eid).capacity);
      v = net.edge_source(eid);
    }
    for (NodeId v = t; v != s;) {
      const EdgeId eid = parent_edge[static_cast<std::size_t>(v)];
      auto& e = net.edge(eid);
      e.capacity -= bottleneck;
      net.edge(e.reverse).capacity += bottleneck;
      v = net.edge_source(eid);
    }
    result.total_flow += bottleneck;
    ++result.augmenting_paths;
  }
  return result;
}

}  // namespace moment::maxflow
