#pragma once
// Capacity-constrained directed flow network with real-valued capacities.
// This is the representation the topology compiler produces (paper Fig. 9)
// and both max-flow solvers consume. Residual edges are stored explicitly;
// flows can be reset so one network can be re-solved under scaled capacities.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace moment::maxflow {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;

inline constexpr double kInfiniteCapacity =
    std::numeric_limits<double>::infinity();

/// Flow comparisons use this tolerance; capacities are bytes/s (1e9-scale),
/// so 1e-6 relative precision is far below hardware measurement noise.
inline constexpr double kFlowEps = 1e-7;

class FlowNetwork {
 public:
  struct Edge {
    NodeId to = -1;
    double capacity = 0.0;  // remaining residual capacity
    EdgeId reverse = -1;    // index of the paired residual edge
    bool is_residual = false;
  };

  FlowNetwork() = default;
  explicit FlowNetwork(NodeId num_nodes) { resize(num_nodes); }

  void resize(NodeId num_nodes);
  NodeId add_node();
  NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(head_.size());
  }

  /// Adds a forward edge u->v with capacity `cap` plus its residual pair.
  /// Returns the forward edge id. Capacity may be kInfiniteCapacity.
  EdgeId add_edge(NodeId u, NodeId v, double cap);

  std::size_t num_edges() const noexcept { return edges_.size() / 2; }

  const Edge& edge(EdgeId e) const noexcept { return edges_[e]; }
  Edge& edge(EdgeId e) noexcept { return edges_[e]; }

  /// Original (pre-solve) capacity of forward edge `e`.
  double original_capacity(EdgeId e) const noexcept { return original_[e]; }

  /// Flow currently routed through forward edge `e`.
  double flow(EdgeId e) const noexcept;

  /// Scales every finite forward capacity by `factor` and resets flows.
  void scale_capacities(double factor);

  /// Overwrites the capacity of forward edge `e` (and resets flows).
  void set_capacity(EdgeId e, double cap);

  /// Restores all residual capacities to the original values (zero flow).
  void reset_flows();

  /// Edge ids (both directions) incident to node u.
  const std::vector<EdgeId>& incident(NodeId u) const noexcept {
    return head_[u];
  }

  NodeId edge_source(EdgeId e) const noexcept { return source_[e]; }

 private:
  std::vector<std::vector<EdgeId>> head_;
  std::vector<Edge> edges_;
  std::vector<double> original_;  // per edge-slot (fwd and residual)
  std::vector<NodeId> source_;    // source node of each edge slot
};

/// Solvers mutate the network's residual capacities in place; per-edge flows
/// are then read back via FlowNetwork::flow(EdgeId).
struct MaxFlowResult {
  double total_flow = 0.0;
  std::size_t augmenting_paths = 0;
};

}  // namespace moment::maxflow
