#include "maxflow/flow_network.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace moment::maxflow {

void FlowNetwork::resize(NodeId num_nodes) {
  head_.resize(static_cast<std::size_t>(num_nodes));
}

NodeId FlowNetwork::add_node() {
  head_.emplace_back();
  return static_cast<NodeId>(head_.size()) - 1;
}

EdgeId FlowNetwork::add_edge(NodeId u, NodeId v, double cap) {
  assert(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes());
  if (cap < 0.0) throw std::invalid_argument("add_edge: negative capacity");
  const auto fwd = static_cast<EdgeId>(edges_.size());
  const EdgeId rev = fwd + 1;
  edges_.push_back({v, cap, rev, false});
  edges_.push_back({u, 0.0, fwd, true});
  original_.push_back(cap);
  original_.push_back(0.0);
  source_.push_back(u);
  source_.push_back(v);
  head_[u].push_back(fwd);
  head_[v].push_back(rev);
  return fwd;
}

double FlowNetwork::flow(EdgeId e) const noexcept {
  // Flow pushed on forward edge e equals the residual capacity accumulated on
  // its reverse slot.
  const Edge& fwd = edges_[e];
  return edges_[fwd.reverse].capacity;
}

void FlowNetwork::scale_capacities(double factor) {
  if (factor < 0.0) throw std::invalid_argument("scale_capacities: negative");
  for (std::size_t i = 0; i < edges_.size(); i += 2) {
    if (std::isinf(original_[i])) continue;
    original_[i] *= factor;
  }
  reset_flows();
}

void FlowNetwork::set_capacity(EdgeId e, double cap) {
  if (cap < 0.0) throw std::invalid_argument("set_capacity: negative");
  assert(!edges_[e].is_residual);
  original_[e] = cap;
  reset_flows();
}

void FlowNetwork::reset_flows() {
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    edges_[i].capacity = original_[i];
  }
}

}  // namespace moment::maxflow
