#pragma once
// Push-relabel (Goldberg-Tarjan) with FIFO active-node selection and the
// gap heuristic. O(V^3): asymptotically stronger than Dinic on dense
// networks; on the shallow machine graphs both are microseconds, so this
// solver exists as (a) a third independent oracle for property tests and
// (b) the subject of the max-flow ablation bench.

#include "maxflow/flow_network.hpp"

namespace moment::maxflow {

class PushRelabel {
 public:
  /// Computes max flow from s to t, mutating `net` residual capacities.
  /// Note: unlike augmenting-path solvers, intermediate states can hold
  /// excess at interior nodes; on return the network residuals describe a
  /// valid max flow (excess fully drained or returned to s).
  static MaxFlowResult solve(FlowNetwork& net, NodeId s, NodeId t);
};

}  // namespace moment::maxflow
