#pragma once
// Min-cut extraction after a max-flow solve. Moment uses the cut to name the
// bottleneck links of a placement (e.g. "Bus 16 saturates"), which the paper
// does informally in Section 2.3.

#include <vector>

#include "maxflow/flow_network.hpp"

namespace moment::maxflow {

struct MinCut {
  std::vector<bool> source_side;   // per node: reachable from s in residual
  std::vector<EdgeId> cut_edges;   // saturated forward edges crossing the cut
  double capacity = 0.0;           // sum of original capacities of cut edges
};

/// Must be called on a network *after* a max-flow solve (residuals mutated).
MinCut extract_min_cut(const FlowNetwork& net, NodeId s);

}  // namespace moment::maxflow
