#pragma once
// Dinic's max-flow algorithm (BFS level graph + blocking-flow DFS).
// O(V^2 E) worst case, effectively linear on the shallow layered networks the
// topology compiler produces (source -> storage -> interconnect* -> GPU ->
// sink, depth <= ~6). This is the production solver; Edmonds-Karp exists as a
// cross-check oracle.

#include "maxflow/flow_network.hpp"

namespace moment::maxflow {

class Dinic {
 public:
  /// Computes max flow from s to t, mutating `net` residual capacities.
  static MaxFlowResult solve(FlowNetwork& net, NodeId s, NodeId t);
};

}  // namespace moment::maxflow
