#include "maxflow/min_cut.hpp"

#include <queue>

namespace moment::maxflow {

MinCut extract_min_cut(const FlowNetwork& net, NodeId s) {
  MinCut cut;
  const auto n = static_cast<std::size_t>(net.num_nodes());
  cut.source_side.assign(n, false);
  std::queue<NodeId> q;
  q.push(s);
  cut.source_side[static_cast<std::size_t>(s)] = true;
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (EdgeId eid : net.incident(u)) {
      const auto& e = net.edge(eid);
      if (e.capacity > kFlowEps && !cut.source_side[static_cast<std::size_t>(e.to)]) {
        cut.source_side[static_cast<std::size_t>(e.to)] = true;
        q.push(e.to);
      }
    }
  }
  // Forward edges from source side to sink side are the cut.
  for (NodeId u = 0; u < net.num_nodes(); ++u) {
    if (!cut.source_side[static_cast<std::size_t>(u)]) continue;
    for (EdgeId eid : net.incident(u)) {
      const auto& e = net.edge(eid);
      if (e.is_residual) continue;
      if (!cut.source_side[static_cast<std::size_t>(e.to)]) {
        cut.cut_edges.push_back(eid);
        cut.capacity += net.original_capacity(eid);
      }
    }
  }
  return cut;
}

}  // namespace moment::maxflow
