#pragma once
// Edmonds-Karp (BFS Ford-Fulkerson). Kept as a second, independent solver:
// the paper's "time-bisection Ford-Fulkerson" is implemented against either
// backend, and property tests cross-check Dinic against this oracle.

#include "maxflow/flow_network.hpp"

namespace moment::maxflow {

class EdmondsKarp {
 public:
  static MaxFlowResult solve(FlowNetwork& net, NodeId s, NodeId t);
};

}  // namespace moment::maxflow
