#include "maxflow/push_relabel.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>
#include <vector>

namespace moment::maxflow {

namespace {

class PushRelabelState {
 public:
  PushRelabelState(FlowNetwork& net, NodeId s, NodeId t)
      : net_(net), s_(s), t_(t),
        n_(static_cast<std::size_t>(net.num_nodes())),
        height_(n_, 0), excess_(n_, 0.0), iter_(n_, 0),
        height_count_(2 * n_ + 1, 0) {}

  MaxFlowResult run() {
    // Infinite capacities break the height arithmetic; replace them with a
    // finite bound larger than any possible flow.
    double finite_sum = 0.0;
    for (NodeId u = 0; u < net_.num_nodes(); ++u) {
      for (EdgeId eid : net_.incident(u)) {
        const auto& e = net_.edge(eid);
        if (!e.is_residual && std::isfinite(e.capacity)) {
          finite_sum += e.capacity;
        }
      }
    }
    const double big = finite_sum + 1.0;
    for (NodeId u = 0; u < net_.num_nodes(); ++u) {
      for (EdgeId eid : net_.incident(u)) {
        auto& e = net_.edge(eid);
        if (!e.is_residual && std::isinf(e.capacity)) e.capacity = big;
      }
    }

    height_[static_cast<std::size_t>(s_)] = static_cast<int>(n_);
    height_count_[0] = static_cast<int>(n_) - 1;
    height_count_[n_] = 1;

    // Saturate source edges.
    for (EdgeId eid : net_.incident(s_)) {
      auto& e = net_.edge(eid);
      if (e.is_residual || net_.edge_source(eid) != s_) continue;
      push(eid, e.capacity);
    }

    while (!active_.empty()) {
      const NodeId u = active_.front();
      active_.pop();
      if (u == s_ || u == t_) continue;
      discharge(u);
    }

    MaxFlowResult result;
    result.total_flow = excess_[static_cast<std::size_t>(t_)];
    return result;
  }

 private:
  void push(EdgeId eid, double amount) {
    auto& e = net_.edge(eid);
    const NodeId u = net_.edge_source(eid);
    const NodeId v = e.to;
    e.capacity -= amount;
    net_.edge(e.reverse).capacity += amount;
    excess_[static_cast<std::size_t>(u)] -= amount;
    const bool was_inactive = excess_[static_cast<std::size_t>(v)] <= kFlowEps;
    excess_[static_cast<std::size_t>(v)] += amount;
    if (was_inactive && v != s_ && v != t_ &&
        excess_[static_cast<std::size_t>(v)] > kFlowEps) {
      active_.push(v);
    }
  }

  void relabel(NodeId u) {
    const int old_height = height_[static_cast<std::size_t>(u)];
    int min_height = 2 * static_cast<int>(n_);
    for (EdgeId eid : net_.incident(u)) {
      const auto& e = net_.edge(eid);
      if (net_.edge_source(eid) != u || e.capacity <= kFlowEps) continue;
      min_height =
          std::min(min_height, height_[static_cast<std::size_t>(e.to)] + 1);
    }
    --height_count_[static_cast<std::size_t>(old_height)];
    height_[static_cast<std::size_t>(u)] = min_height;
    ++height_count_[static_cast<std::size_t>(
        std::min<std::size_t>(static_cast<std::size_t>(min_height),
                              2 * n_))];
    // Gap heuristic: if no node remains at old_height, everything above it
    // (below n) can jump straight over the gap.
    if (old_height < static_cast<int>(n_) &&
        height_count_[static_cast<std::size_t>(old_height)] == 0) {
      for (NodeId v = 0; v < net_.num_nodes(); ++v) {
        int& h = height_[static_cast<std::size_t>(v)];
        if (h > old_height && h < static_cast<int>(n_) && v != s_) {
          --height_count_[static_cast<std::size_t>(h)];
          h = static_cast<int>(n_) + 1;
          ++height_count_[static_cast<std::size_t>(h)];
        }
      }
    }
  }

  void discharge(NodeId u) {
    while (excess_[static_cast<std::size_t>(u)] > kFlowEps) {
      const auto& incident = net_.incident(u);
      if (iter_[static_cast<std::size_t>(u)] >= incident.size()) {
        iter_[static_cast<std::size_t>(u)] = 0;
        relabel(u);
        if (height_[static_cast<std::size_t>(u)] >= 2 * static_cast<int>(n_)) {
          return;  // unreachable from t; leftover excess flows back later
        }
        continue;
      }
      const EdgeId eid = incident[iter_[static_cast<std::size_t>(u)]];
      const auto& e = net_.edge(eid);
      if (net_.edge_source(eid) == u && e.capacity > kFlowEps &&
          height_[static_cast<std::size_t>(u)] ==
              height_[static_cast<std::size_t>(e.to)] + 1) {
        push(eid, std::min(excess_[static_cast<std::size_t>(u)], e.capacity));
      } else {
        ++iter_[static_cast<std::size_t>(u)];
      }
    }
  }

  FlowNetwork& net_;
  NodeId s_, t_;
  std::size_t n_;
  std::vector<int> height_;
  std::vector<double> excess_;
  std::vector<std::size_t> iter_;
  std::vector<int> height_count_;
  std::queue<NodeId> active_;
};

}  // namespace

MaxFlowResult PushRelabel::solve(FlowNetwork& net, NodeId s, NodeId t) {
  assert(s != t);
  PushRelabelState state(net, s, t);
  return state.run();
}

}  // namespace moment::maxflow
