#include "maxflow/dinic.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <vector>

namespace moment::maxflow {

namespace {

class DinicState {
 public:
  DinicState(FlowNetwork& net, NodeId s, NodeId t)
      : net_(net), s_(s), t_(t),
        level_(static_cast<std::size_t>(net.num_nodes())),
        iter_(static_cast<std::size_t>(net.num_nodes())) {}

  MaxFlowResult run() {
    MaxFlowResult result;
    while (bfs()) {
      std::fill(iter_.begin(), iter_.end(), 0);
      for (;;) {
        const double pushed = dfs(s_, kInfiniteCapacity);
        if (pushed <= kFlowEps) break;
        result.total_flow += pushed;
        ++result.augmenting_paths;
      }
    }
    return result;
  }

 private:
  bool bfs() {
    std::fill(level_.begin(), level_.end(), -1);
    std::queue<NodeId> q;
    level_[static_cast<std::size_t>(s_)] = 0;
    q.push(s_);
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop();
      for (EdgeId eid : net_.incident(u)) {
        const auto& e = net_.edge(eid);
        if (e.capacity > kFlowEps &&
            level_[static_cast<std::size_t>(e.to)] < 0) {
          level_[static_cast<std::size_t>(e.to)] =
              level_[static_cast<std::size_t>(u)] + 1;
          q.push(e.to);
        }
      }
    }
    return level_[static_cast<std::size_t>(t_)] >= 0;
  }

  double dfs(NodeId u, double limit) {
    if (u == t_) return limit;
    auto& it = iter_[static_cast<std::size_t>(u)];
    const auto& incident = net_.incident(u);
    for (; it < incident.size(); ++it) {
      const EdgeId eid = incident[it];
      auto& e = net_.edge(eid);
      if (e.capacity <= kFlowEps ||
          level_[static_cast<std::size_t>(e.to)] !=
              level_[static_cast<std::size_t>(u)] + 1) {
        continue;
      }
      const double pushed = dfs(e.to, std::min(limit, e.capacity));
      if (pushed > kFlowEps) {
        e.capacity -= pushed;
        net_.edge(e.reverse).capacity += pushed;
        return pushed;
      }
    }
    return 0.0;
  }

  FlowNetwork& net_;
  NodeId s_, t_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

}  // namespace

MaxFlowResult Dinic::solve(FlowNetwork& net, NodeId s, NodeId t) {
  assert(s != t);
  DinicState state(net, s, t);
  return state.run();
}

}  // namespace moment::maxflow
