// Edge-case and failure-injection tests: boundary inputs, degenerate
// topologies, empty workloads, and misuse paths across the library.

#include <gtest/gtest.h>

#include "ddak/ddak.hpp"
#include "ddak/workload.hpp"
#include "gnn/model.hpp"
#include "gnn/synthetic.hpp"
#include "graph/generators.hpp"
#include "iostack/feature_store.hpp"
#include "maxflow/dinic.hpp"
#include "placement/search.hpp"
#include "runtime/systems.hpp"
#include "sim/machine_sim.hpp"
#include "topology/discovery.hpp"
#include "topology/machine.hpp"
#include "util/units.hpp"

namespace moment {
namespace {

// ------------------------------------------------------------------ graph

TEST(EdgeGraph, EmptyEdgeList) {
  graph::EdgeList el;
  el.num_vertices = 4;
  const auto g = graph::CsrGraph::from_edges(el, true);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (graph::VertexId v = 0; v < 4; ++v) {
    EXPECT_TRUE(g.neighbors(v).empty());
  }
  const auto stats = graph::degree_stats(g);
  EXPECT_EQ(stats.mean, 0.0);
}

TEST(EdgeGraph, SingleVertexSelfLoop) {
  graph::EdgeList el;
  el.num_vertices = 1;
  el.edges = {{0, 0}};
  const auto g = graph::CsrGraph::from_edges(el, false);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.neighbors(0)[0], 0u);
}

TEST(EdgeGraph, TinyRmat) {
  graph::RmatParams p;
  p.num_vertices = 1;
  p.num_edges = 4;
  const auto g = graph::generate_rmat(p);
  EXPECT_EQ(g.num_vertices(), 1u);  // rounds to the pow2 floor of 1
  EXPECT_EQ(g.num_edges(), 8u);     // all self loops, doubled
}

// ---------------------------------------------------------------- maxflow

TEST(EdgeMaxflow, SourceEqualsSinkNeighborhood) {
  // Direct s->t edge only.
  maxflow::FlowNetwork net(2);
  net.add_edge(0, 1, 3.5);
  EXPECT_NEAR(maxflow::Dinic::solve(net, 0, 1).total_flow, 3.5, 1e-12);
}

TEST(EdgeMaxflow, ZeroCapacityEdgeCarriesNothing) {
  maxflow::FlowNetwork net(3);
  net.add_edge(0, 1, 0.0);
  net.add_edge(1, 2, 5.0);
  EXPECT_EQ(maxflow::Dinic::solve(net, 0, 2).total_flow, 0.0);
}

TEST(EdgeMaxflow, AntiparallelEdges) {
  maxflow::FlowNetwork net(3);
  net.add_edge(0, 1, 4.0);
  net.add_edge(1, 0, 9.0);  // must not leak capacity back
  net.add_edge(1, 2, 3.0);
  EXPECT_NEAR(maxflow::Dinic::solve(net, 0, 2).total_flow, 3.0, 1e-12);
}

// --------------------------------------------------------------- topology

TEST(EdgeTopology, OneGpuZeroSsdPlacement) {
  const auto spec = topology::make_machine_a();
  topology::Placement p;
  p.gpus_per_group = {0, 0, 1, 0};
  p.ssds_per_group = {0, 0, 0, 0};
  ASSERT_EQ(topology::validate_placement(spec, p), "");
  const auto topo = topology::instantiate(spec, p);
  const auto fg = topology::compile_flow_graph(topo);
  EXPECT_EQ(fg.gpus.size(), 1u);
  // No SSD tier edge; DRAM + HBM still present.
  EXPECT_LT(fg.tier_edge[static_cast<int>(topology::StorageTier::kSsd)], 0);
  EXPECT_GE(fg.tier_edge[static_cast<int>(topology::StorageTier::kCpuDram)],
            0);
  // Prediction still works: everything comes from DRAM/HBM.
  topology::WorkloadDemand d;
  d.per_gpu_bytes = {1.0 * util::kGiB};
  const auto pred = topology::predict(fg, d);
  EXPECT_TRUE(pred.feasible);
}

TEST(EdgeTopology, MaxedOutSlots) {
  const auto spec = topology::make_machine_b();
  // Fill every unit: RC0 2 GPUs (4u), RC1 4 GPUs (8u), PLX0 6 GPUs (12u)...
  topology::Placement p;
  p.gpus_per_group = {2, 4, 6, 6};
  p.ssds_per_group = {0, 0, 0, 0};
  EXPECT_EQ(topology::validate_placement(spec, p), "");
  p.gpus_per_group = {2, 4, 6, 7};  // one over
  EXPECT_NE(topology::validate_placement(spec, p), "");
}

TEST(EdgeTopology, DiscoveryHandlesCommentsAndBlankLines) {
  const auto spec = topology::parse_machine_spec_string(
      "# header comment\n\nmachine M # trailing\n\n"
      "device RC0 root_complex\n"
      "slots g RC0 2 ssd\n# done\n");
  EXPECT_EQ(spec.name, "M");
  EXPECT_EQ(spec.slot_groups.size(), 1u);
}

// ------------------------------------------------------------------- ddak

TEST(EdgeDdak, SingleBinTakesEverything) {
  sampling::HotnessProfile p;
  p.hotness = {3.0, 1.0, 2.0};
  p.batch_size = 1;
  p.fetches_per_batch = 6;
  std::vector<ddak::Bin> bins(1);
  bins[0] = {"SSD0", 0, topology::StorageTier::kSsd, 3.0, 1.0, {}};
  const auto r = ddak::ddak_place(bins, p);
  EXPECT_EQ(r.bin_count[0], 3u);
  EXPECT_NEAR(r.bin_traffic_share[0], 1.0, 1e-12);
}

TEST(EdgeDdak, AllZeroHotness) {
  sampling::HotnessProfile p;
  p.hotness.assign(100, 0.0);
  p.batch_size = 1;
  p.fetches_per_batch = 1;
  std::vector<ddak::Bin> bins(2);
  bins[0] = {"GPU", 0, topology::StorageTier::kGpuHbm, 10.0, 1.0, {}};
  bins[1] = {"SSD", 1, topology::StorageTier::kSsd, 100.0, 1.0, {}};
  const auto r = ddak::ddak_place(bins, p);
  std::size_t placed = 0;
  for (auto b : r.bin_of_vertex) placed += b >= 0;
  EXPECT_EQ(placed, 100u);
}

TEST(EdgeDdak, SmoothingPreservesTierTotals) {
  const auto spec = topology::make_machine_a();
  const auto topo = topology::instantiate(
      spec, topology::classic_placement(spec, 'b', 4, 8));
  const auto fg = topology::compile_flow_graph(topo);
  std::vector<double> traffic(fg.storage.size());
  for (std::size_t i = 0; i < traffic.size(); ++i) {
    traffic[i] = static_cast<double>(i * 7 % 13);
  }
  const auto smooth = ddak::smooth_storage_traffic(topo, fg, traffic);
  double before = 0.0, after = 0.0;
  for (std::size_t i = 0; i < traffic.size(); ++i) {
    if (fg.storage[i].tier == topology::StorageTier::kGpuHbm) {
      EXPECT_EQ(smooth[i], traffic[i]);  // HBM untouched
    } else {
      before += traffic[i];
      after += smooth[i];
    }
  }
  EXPECT_NEAR(before, after, 1e-9);
}

TEST(EdgeDdak, WorkloadWithFullCoverageCaches) {
  // Caches big enough for the whole graph: SSD fraction goes to ~zero.
  const auto ds = graph::make_dataset(graph::DatasetId::kPA, 4);
  sampling::HotnessProfile p;
  p.hotness.assign(ds.scaled.vertices, 1.0);
  p.batch_size = 8;
  p.fetches_per_batch = 64;
  ddak::CacheConfig cache;
  cache.gpu_cache_fraction = 0.6;
  cache.cpu_cache_fraction = 0.5;
  const auto w = ddak::make_epoch_workload(ds, p, cache, 2);
  EXPECT_NEAR(w.ssd_fraction, 0.0, 1e-9);
  EXPECT_NEAR(w.gpu_hit_fraction + w.cpu_hit_fraction, 1.0, 1e-9);
}

// -------------------------------------------------------------------- gnn

TEST(EdgeGnn, BatchOfOneSeed) {
  graph::RmatParams gp;
  gp.num_vertices = 256;
  gp.num_edges = 2000;
  const auto g = graph::generate_rmat(gp);
  sampling::NeighborSampler sampler(g, {3, 3});
  util::Pcg32 rng(1);
  const std::vector<graph::VertexId> seeds = {0};
  const auto blocks = gnn::build_blocks(sampler.sample(seeds, rng));
  gnn::ModelConfig cfg;
  cfg.in_dim = 4;
  cfg.hidden_dim = 4;
  cfg.num_classes = 2;
  gnn::GnnModel model(cfg);
  gnn::Tensor x0 = gnn::Tensor::glorot(blocks[0].num_src(), 4, rng);
  const auto logits = model.forward(blocks, x0);
  EXPECT_EQ(logits.rows(), 1u);
}

TEST(EdgeGnn, IsolatedSeedStillClassified) {
  // A graph where the seed has no neighbors: aggregation must degrade
  // gracefully (zero neighbor mean), not crash.
  graph::EdgeList el;
  el.num_vertices = 4;
  el.edges = {{1, 2}};  // vertex 0 isolated
  const auto g = graph::CsrGraph::from_edges(el, true);
  sampling::NeighborSampler sampler(g, {2, 2});
  util::Pcg32 rng(2);
  const std::vector<graph::VertexId> seeds = {0};
  const auto sg = sampler.sample(seeds, rng);
  const auto blocks = gnn::build_blocks(sg);
  gnn::ModelConfig cfg;
  cfg.in_dim = 3;
  cfg.hidden_dim = 3;
  cfg.num_classes = 2;
  gnn::GnnModel model(cfg);
  gnn::Tensor x0 = gnn::Tensor::glorot(blocks[0].num_src(), 3, rng);
  const auto logits = model.forward(blocks, x0);
  EXPECT_EQ(logits.rows(), 1u);
  EXPECT_TRUE(std::isfinite(logits.at(0, 0)));
}

TEST(EdgeGnn, ModelRejectsWrongBlockCount) {
  gnn::ModelConfig cfg;
  cfg.num_hops = 2;
  cfg.in_dim = 4;
  gnn::GnnModel model(cfg);
  std::vector<gnn::Block> one_block(1);
  gnn::Tensor x(0, 4);
  EXPECT_THROW(model.forward(one_block, x), std::invalid_argument);
  gnn::ModelConfig zero;
  zero.num_hops = 0;
  EXPECT_THROW(gnn::GnnModel{zero}, std::invalid_argument);
}

// ---------------------------------------------------------------- iostack

TEST(EdgeIostack, ZeroLengthReadCompletes) {
  iostack::SsdOptions opts;
  opts.capacity_bytes = iostack::kPageBytes;
  iostack::SsdArray array(1, opts);
  iostack::IoEngine engine(array);
  array.start_all();
  std::byte dummy;
  engine.submit_read(0, 0, 0, &dummy);
  EXPECT_EQ(engine.wait_all(), 0u);
  array.stop_all();
}

TEST(EdgeIostack, StopWithOutstandingRequestsDrains) {
  iostack::SsdOptions opts;
  opts.capacity_bytes = 8 * iostack::kPageBytes;
  opts.max_bytes_per_s = 64.0 * 1024;  // slow device
  iostack::SsdArray array(1, opts);
  iostack::IoEngine engine(array);
  array.start_all();
  std::vector<std::byte> buf(8 * iostack::kPageBytes);
  for (int i = 0; i < 8; ++i) {
    engine.submit_read(0, static_cast<std::uint64_t>(i) * iostack::kPageBytes,
                       static_cast<std::uint32_t>(iostack::kPageBytes),
                       buf.data() + static_cast<std::size_t>(i) *
                                        iostack::kPageBytes);
  }
  array.stop_all();  // shutdown drain must complete all requests
  EXPECT_EQ(engine.wait_all(), 0u);
}

TEST(EdgeIostack, EngineRejectsBadSsdIndex) {
  iostack::SsdOptions opts;
  iostack::SsdArray array(1, opts);
  iostack::IoEngine engine(array);
  std::byte dummy;
  EXPECT_THROW(engine.submit_read(3, 0, 1, &dummy), std::out_of_range);
}

// -------------------------------------------------------------------- sim

TEST(EdgeSim, SingleGpuNoImbalance) {
  const auto bench = runtime::Workbench::make(graph::DatasetId::kPA, 4, 1);
  const auto workload = ddak::make_epoch_workload(
      bench.dataset, bench.profile, ddak::CacheConfig{}, 1);
  const auto spec = topology::make_machine_a();
  const auto topo = topology::instantiate(
      spec, topology::classic_placement(spec, 'c', 1, 2));
  const auto fg = topology::compile_flow_graph(topo);
  auto bins = ddak::make_bins(topo, fg, {}, bench.dataset.scaled.vertices,
                              0.005, 0.01);
  const auto merged = sim::merge_replicated_gpu_bins(bins);
  const auto place = ddak::hash_place(merged, bench.profile);
  const auto rep = sim::simulate_epoch(topo, fg, workload, merged, place);
  EXPECT_EQ(rep.per_gpu_io_bandwidth.size(), 1u);
  EXPECT_EQ(rep.imbalance_cv, 0.0);
  EXPECT_GT(rep.epoch_time_s, 0.0);
}

TEST(EdgeSim, MismatchedPlacementRejected) {
  const auto bench = runtime::Workbench::make(graph::DatasetId::kPA, 4, 1);
  const auto workload = ddak::make_epoch_workload(
      bench.dataset, bench.profile, ddak::CacheConfig{}, 2);
  const auto spec = topology::make_machine_a();
  const auto topo = topology::instantiate(
      spec, topology::classic_placement(spec, 'c', 2, 4));
  const auto fg = topology::compile_flow_graph(topo);
  auto bins = ddak::make_bins(topo, fg, {}, bench.dataset.scaled.vertices,
                              0.005, 0.01);
  ddak::DataPlacementResult bogus;  // empty shares
  EXPECT_THROW(sim::simulate_epoch(topo, fg, workload, bins, bogus),
               std::invalid_argument);
}

// ---------------------------------------------------------------- runtime

TEST(EdgeRuntime, MachineRequiredForLocalSystems) {
  runtime::ExperimentConfig c;
  c.machine = nullptr;
  EXPECT_THROW(runtime::run_system(runtime::SystemKind::kMoment, c),
               std::invalid_argument);
}

TEST(EdgeRuntime, SixSsdConfigWorks) {
  // The artifact description's example config uses num_ssd = 6.
  const auto spec = topology::make_machine_a();
  const runtime::Workbench bench =
      runtime::Workbench::make(graph::DatasetId::kPA, 4, 3);
  runtime::ExperimentConfig c;
  c.machine = &spec;
  c.dataset = graph::DatasetId::kPA;
  c.num_gpus = 2;
  c.num_ssds = 6;
  const auto r = runtime::run_system(runtime::SystemKind::kMoment, c, bench);
  EXPECT_FALSE(r.oom);
  EXPECT_EQ(r.placement.total_ssds(), 6);
  EXPECT_GT(r.throughput_seeds_per_s, 0.0);
}

}  // namespace
}  // namespace moment
