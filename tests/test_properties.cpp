// Cross-cutting property tests: parameterized sweeps asserting the
// invariants the system's correctness rests on, across machines, placements,
// datasets and solver inputs. Complements the per-module unit tests.

#include <gtest/gtest.h>

#include <numeric>

#include "ddak/ddak.hpp"
#include "ddak/workload.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "maxflow/dinic.hpp"
#include "maxflow/time_bisection.hpp"
#include "placement/search.hpp"
#include "runtime/systems.hpp"
#include "sim/machine_sim.hpp"
#include "topology/machine.hpp"
#include "util/units.hpp"

namespace moment {
namespace {

using util::kGiB;

// ------------------------------------------------------------ partitioner

class PartitionProperty : public ::testing::TestWithParam<int> {};

TEST_P(PartitionProperty, BfsCoversBalancesAndBeatsHash) {
  graph::RmatParams gp;
  gp.num_vertices = 1 << 12;
  gp.num_edges = 30000;
  gp.seed = static_cast<std::uint64_t>(GetParam());
  const auto g = graph::generate_rmat(gp);
  const int parts = 2 + GetParam() % 3;  // 2..4

  const auto bfs = graph::partition_bfs(g, parts, 3);
  const auto hash = graph::partition_hash(g, parts, 3);

  // Coverage.
  for (auto p : bfs) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, parts);
  }
  const auto bfs_stats = graph::partition_stats(g, bfs);
  const auto hash_stats = graph::partition_stats(g, hash);
  EXPECT_EQ(bfs_stats.parts, parts);
  EXPECT_EQ(std::accumulate(bfs_stats.part_sizes.begin(),
                            bfs_stats.part_sizes.end(), std::size_t{0}),
            static_cast<std::size_t>(g.num_vertices()));
  // Balance within 2x of ideal (the cap allows slack for isolated fills).
  EXPECT_LE(bfs_stats.balance, 2.0);
  // Locality: BFS-grow must cut strictly fewer edges than hashing.
  EXPECT_LT(bfs_stats.edge_cut_fraction, hash_stats.edge_cut_fraction);
  // Hash cut converges to (parts-1)/parts.
  EXPECT_NEAR(hash_stats.edge_cut_fraction,
              static_cast<double>(parts - 1) / parts, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionProperty, ::testing::Range(1, 7));

TEST(Partition, RejectsBadInput) {
  graph::RmatParams gp;
  gp.num_vertices = 128;
  gp.num_edges = 512;
  const auto g = graph::generate_rmat(gp);
  EXPECT_THROW(graph::partition_bfs(g, 0), std::invalid_argument);
  EXPECT_THROW(graph::partition_hash(g, -1), std::invalid_argument);
  std::vector<std::int32_t> wrong(3, 0);
  EXPECT_THROW(graph::partition_stats(g, wrong), std::invalid_argument);
}

// --------------------------------------------------- predictor invariants

struct PredCase {
  const char* machine;
  char placement;
  int gpus;
};

class PredictorProperty : public ::testing::TestWithParam<PredCase> {};

topology::MachineSpec spec_of(const char* name) {
  return name[0] == 'a' ? topology::make_machine_a()
                        : topology::make_machine_b();
}

TEST_P(PredictorProperty, ScalingCapacitiesScalesTime) {
  // Time-bisection is homogeneous: doubling all rates halves the epoch time.
  const auto& param = GetParam();
  const auto spec = spec_of(param.machine);
  const auto topo = topology::instantiate(
      spec, topology::classic_placement(spec, param.placement, param.gpus, 8));
  const auto fg = topology::compile_flow_graph(topo);
  topology::WorkloadDemand d;
  d.per_gpu_bytes.assign(fg.gpus.size(), 80.0 * kGiB);
  d.per_tier_bytes = {30.0 * kGiB, 50.0 * kGiB, -1.0};
  const auto base = topology::predict(fg, d);
  ASSERT_TRUE(base.feasible);

  topology::FlowGraph scaled = fg;
  scaled.net.scale_capacities(2.0);
  const auto fast = topology::predict(scaled, d);
  ASSERT_TRUE(fast.feasible);
  EXPECT_NEAR(base.epoch_io_time_s / fast.epoch_io_time_s, 2.0, 0.05);
}

TEST_P(PredictorProperty, DemandMonotonicity) {
  // More bytes can never take less time.
  const auto& param = GetParam();
  const auto spec = spec_of(param.machine);
  const auto topo = topology::instantiate(
      spec, topology::classic_placement(spec, param.placement, param.gpus, 8));
  const auto fg = topology::compile_flow_graph(topo);
  double prev = 0.0;
  for (double gib : {20.0, 40.0, 80.0, 160.0}) {
    topology::WorkloadDemand d;
    d.per_gpu_bytes.assign(fg.gpus.size(), gib * kGiB);
    d.per_tier_bytes = {0.15 * gib * kGiB * fg.gpus.size(),
                        0.15 * gib * kGiB * fg.gpus.size(), -1.0};
    const auto p = topology::predict(fg, d);
    ASSERT_TRUE(p.feasible) << gib;
    EXPECT_GE(p.epoch_io_time_s, prev - 1e-9);
    prev = p.epoch_io_time_s;
  }
}

TEST_P(PredictorProperty, DeliveredBytesNeverExceedDemand) {
  const auto& param = GetParam();
  const auto spec = spec_of(param.machine);
  const auto topo = topology::instantiate(
      spec, topology::classic_placement(spec, param.placement, param.gpus, 8));
  const auto fg = topology::compile_flow_graph(topo);
  topology::WorkloadDemand d;
  d.per_gpu_bytes.assign(fg.gpus.size(), 50.0 * kGiB);
  const auto p = topology::predict(fg, d);
  ASSERT_TRUE(p.feasible);
  for (double b : p.per_gpu_bytes) {
    EXPECT_LE(b, 50.0 * kGiB * 1.001);
    EXPECT_GE(b, 50.0 * kGiB * 0.98);  // demands met at T*
  }
  // Storage serves exactly what the GPUs received.
  const double served = std::accumulate(p.per_storage_bytes.begin(),
                                        p.per_storage_bytes.end(), 0.0);
  const double delivered = std::accumulate(p.per_gpu_bytes.begin(),
                                           p.per_gpu_bytes.end(), 0.0);
  EXPECT_NEAR(served, delivered, delivered * 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Placements, PredictorProperty,
    ::testing::Values(PredCase{"a", 'a', 2}, PredCase{"a", 'b', 4},
                      PredCase{"a", 'c', 4}, PredCase{"a", 'd', 4},
                      PredCase{"b", 'a', 2}, PredCase{"b", 'c', 4},
                      PredCase{"b", 'd', 4}));

// -------------------------------------------------------- DDAK invariants

class DdakZipfProperty : public ::testing::TestWithParam<double> {};

TEST_P(DdakZipfProperty, InvariantsAcrossSkew) {
  const double exponent = GetParam();
  constexpr std::size_t kN = 3000;
  sampling::HotnessProfile p;
  p.hotness.resize(kN);
  util::Pcg32 rng(11);
  for (std::size_t i = 0; i < kN; ++i) {
    p.hotness[i] = 1.0 / std::pow(static_cast<double>(i + 1), exponent);
  }
  for (std::size_t i = kN; i > 1; --i) {
    std::swap(p.hotness[i - 1],
              p.hotness[rng.next_below(static_cast<std::uint32_t>(i))]);
  }
  p.batch_size = 10;
  p.fetches_per_batch = 100;

  std::vector<ddak::Bin> bins(4);
  bins[0] = {"GPU", 0, topology::StorageTier::kGpuHbm, 0.01 * kN, 30.0, {}};
  bins[1] = {"CPU", 1, topology::StorageTier::kCpuDram, 0.02 * kN, 20.0, {}};
  bins[2] = {"SSD0", 2, topology::StorageTier::kSsd,
             static_cast<double>(kN), 30.0, {}};
  bins[3] = {"SSD1", 3, topology::StorageTier::kSsd,
             static_cast<double>(kN), 20.0, {}};
  const auto r = ddak::ddak_place(bins, p);

  // Every vertex placed exactly once; caches at/below capacity.
  EXPECT_EQ(std::accumulate(r.bin_count.begin(), r.bin_count.end(),
                            std::size_t{0}),
            kN);
  EXPECT_LE(static_cast<double>(r.bin_count[0]),
            bins[0].capacity_vertices + 1);
  EXPECT_LE(static_cast<double>(r.bin_count[1]),
            bins[1].capacity_vertices + 1);
  // Shares sum to 1.
  EXPECT_NEAR(std::accumulate(r.bin_traffic_share.begin(),
                              r.bin_traffic_share.end(), 0.0),
              1.0, 1e-9);
  // Stronger skew => cache tiers capture more traffic per unit capacity.
  // (Sanity floor: caches must beat their capacity share for any skew > 0.)
  const double cache_share = r.bin_traffic_share[0] + r.bin_traffic_share[1];
  EXPECT_GT(cache_share, 0.03 * (exponent > 0.5 ? 2.0 : 1.0));
  // Caches hold the globally hottest vertices.
  const auto order = p.by_hotness_desc();
  EXPECT_NE(r.bin_of_vertex[order[0]], 2);
  EXPECT_NE(r.bin_of_vertex[order[0]], 3);
}

INSTANTIATE_TEST_SUITE_P(Skews, DdakZipfProperty,
                         ::testing::Values(0.4, 0.8, 1.0, 1.2, 1.5));

// --------------------------------------------------------- sim invariants

class SimConservation : public ::testing::TestWithParam<char> {};

TEST_P(SimConservation, RoundMovesExactlyTheWorkload) {
  const auto bench = runtime::Workbench::make(graph::DatasetId::kPA, 4, 42);
  const auto workload = ddak::make_epoch_workload(
      bench.dataset, bench.profile, ddak::CacheConfig{}, 4);
  const auto spec = topology::make_machine_a();
  const auto topo = topology::instantiate(
      spec, topology::classic_placement(spec, GetParam(), 4, 8));
  const auto fg = topology::compile_flow_graph(topo);
  const auto pred = topology::predict(
      fg, ddak::to_flow_demand(workload, fg, ddak::SupplyModel::kUniformHash));
  auto bins = ddak::make_bins(topo, fg, pred.per_storage_bytes,
                              bench.dataset.scaled.vertices, 0.005, 0.01);
  const auto merged = sim::merge_replicated_gpu_bins(bins);
  const auto place = ddak::hash_place(merged, bench.profile);
  const auto rep = sim::simulate_epoch(topo, fg, workload, merged, place);

  // GPU slot links must carry each GPU's fabric bytes per epoch: sum of
  // slot-link downstream traffic == fabric bytes * rounds * num_gpus.
  double slot_down = 0.0;
  for (const auto& lt : rep.link_traffic) {
    const auto& l = topo.link(lt.link);
    const bool gpu_link =
        topo.device(l.a).kind == topology::DeviceKind::kGpu ||
        topo.device(l.b).kind == topology::DeviceKind::kGpu;
    if (gpu_link && l.kind == topology::LinkKind::kPcie) {
      slot_down += lt.bytes_ab + lt.bytes_ba;
    }
  }
  double local_share = 0.0;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    if (merged[i].storage_index < 0) {
      local_share += place.bin_traffic_share[i];
    }
  }
  const double expected = workload.fetches_per_batch * workload.feature_bytes *
                          (1.0 - local_share) * 4.0 *
                          static_cast<double>(rep.rounds);
  EXPECT_NEAR(slot_down, expected, expected * 0.02);
}

INSTANTIATE_TEST_SUITE_P(Placements, SimConservation,
                         ::testing::Values('a', 'b', 'c', 'd'));

// --------------------------------------------------- search result sweeps

struct SearchCase {
  int gpus;
  int ssds;
};

class SearchSweep : public ::testing::TestWithParam<SearchCase> {};

TEST_P(SearchSweep, BestIsFeasibleValidAndAtLeastClassicC) {
  const auto [gpus, ssds] = GetParam();
  for (const auto& spec :
       {topology::make_machine_a(), topology::make_machine_b()}) {
    placement::SearchOptions o;
    o.num_gpus = gpus;
    o.num_ssds = ssds;
    const double total = 300.0 * kGiB;
    o.per_gpu_demand_bytes = total / gpus;
    o.per_tier_bytes = {0.12 * total, 0.16 * total, 0.72 * total};
    o.gpu_hbm_bytes = 0.12 * total / gpus;
    const auto r = placement::search_placements(spec, o);
    ASSERT_FALSE(r.top.empty()) << spec.name;
    const auto& best = r.best();
    EXPECT_TRUE(best.prediction.feasible);
    EXPECT_EQ(topology::validate_placement(spec, best.placement), "");
    EXPECT_EQ(best.placement.total_gpus(), gpus);
    EXPECT_EQ(best.placement.total_ssds(), ssds);
    const auto classic = placement::evaluate_placement(
        spec, topology::classic_placement(spec, 'c', gpus, ssds), o);
    EXPECT_GE(best.score, classic.score * 0.999) << spec.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SearchSweep,
                         ::testing::Values(SearchCase{1, 2}, SearchCase{2, 4},
                                           SearchCase{2, 8}, SearchCase{3, 6},
                                           SearchCase{4, 8}));

// ------------------------------------------------------ dataset x systems

class DatasetSweep
    : public ::testing::TestWithParam<graph::DatasetId> {};

TEST_P(DatasetSweep, MomentRunsAndBeatsHyperionEverywhere) {
  const auto id = GetParam();
  const runtime::Workbench bench = runtime::Workbench::make(id, 4, 42);
  const auto spec = topology::make_machine_b();
  runtime::ExperimentConfig c;
  c.machine = &spec;
  c.dataset = id;
  c.num_gpus = 4;
  c.num_ssds = 8;
  const auto moment = runtime::run_system(runtime::SystemKind::kMoment, c,
                                          bench);
  c.default_classic = 'b';  // a contended layout
  const auto hyperion =
      runtime::run_system(runtime::SystemKind::kMHyperion, c, bench);
  ASSERT_FALSE(moment.oom);
  ASSERT_FALSE(hyperion.oom);
  EXPECT_LT(moment.epoch_time_s, hyperion.epoch_time_s)
      << graph::dataset_name(id);
  EXPECT_TRUE(moment.prediction.feasible);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetSweep,
                         ::testing::ValuesIn(graph::kAllDatasets));

// ------------------------------------------------- time-bisection fuzzing

class BisectionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BisectionFuzz, FeasibleSolutionsSatisfyDemandAtReportedTime) {
  util::Pcg32 rng(static_cast<std::uint64_t>(GetParam()), 0xB15);
  // Random 2-layer supply/demand network.
  const int storages = 2 + static_cast<int>(rng.next_below(4));
  const int gpus = 1 + static_cast<int>(rng.next_below(4));
  maxflow::FlowNetwork net(2 + storages + gpus);
  std::vector<maxflow::ByteConstraint> supplies, demands;
  for (int s = 0; s < storages; ++s) {
    const auto e = net.add_edge(0, 2 + s, rng.next_double(1.0, 10.0));
    supplies.push_back({e, rng.next_double(50.0, 500.0)});
  }
  for (int g = 0; g < gpus; ++g) {
    for (int s = 0; s < storages; ++s) {
      if (rng.next_double() < 0.7) {
        net.add_edge(2 + s, 2 + storages + g, rng.next_double(0.5, 8.0));
      }
    }
    const auto e = net.add_edge(2 + storages + g, 1,
                                maxflow::kInfiniteCapacity);
    demands.push_back({e, rng.next_double(5.0, 60.0)});
  }
  const auto r = maxflow::solve_time_bisection(net, 0, 1, demands, supplies);
  if (!r.feasible) return;  // disconnected/undersupplied draws are fine
  double total_demand = 0.0;
  for (const auto& d : demands) total_demand += d.bytes;
  EXPECT_NEAR(r.throughput * r.min_time_s, total_demand,
              total_demand * 1e-6);
  // Each demand edge's flow matches its requested bytes.
  for (const auto& d : demands) {
    EXPECT_NEAR(r.edge_flow[static_cast<std::size_t>(d.edge)], d.bytes,
                d.bytes * 0.01 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BisectionFuzz, ::testing::Range(0, 20));

}  // namespace
}  // namespace moment
