// Tests for the sampling module: k-hop neighbor sampling (DGL block
// semantics), batch iteration, training-set selection, and the hotness
// profiler whose skew fingerprint drives DDAK.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.hpp"
#include "sampling/hotness.hpp"
#include "sampling/neighbor_sampler.hpp"
#include "util/thread_pool.hpp"

namespace moment::sampling {
namespace {

CsrGraph test_graph() {
  graph::RmatParams p;
  p.num_vertices = 1 << 11;
  p.num_edges = 16000;
  return graph::generate_rmat(p);
}

TEST(NeighborSampler, RejectsBadFanouts) {
  const CsrGraph g = test_graph();
  EXPECT_THROW(NeighborSampler(g, {}), std::invalid_argument);
  EXPECT_THROW(NeighborSampler(g, {5, 0}), std::invalid_argument);
}

TEST(NeighborSampler, ExpansionFactorDglSemantics) {
  const CsrGraph g = test_graph();
  EXPECT_DOUBLE_EQ(NeighborSampler(g, {25, 10}).expansion_factor(),
                   26.0 * 11.0);
  EXPECT_DOUBLE_EQ(NeighborSampler(g, {5}).expansion_factor(), 6.0);
}

TEST(NeighborSampler, FetchSetContainsSeeds) {
  const CsrGraph g = test_graph();
  NeighborSampler sampler(g, {5, 3});
  util::Pcg32 rng(1);
  const std::vector<graph::VertexId> seeds = {1, 5, 9, 200};
  const auto sg = sampler.sample(seeds, rng);
  for (graph::VertexId s : seeds) {
    EXPECT_TRUE(std::binary_search(sg.fetch_set.begin(), sg.fetch_set.end(), s));
  }
  EXPECT_EQ(sg.seeds, seeds);
  EXPECT_EQ(sg.layers.size(), 2u);
}

TEST(NeighborSampler, EdgeCountsRespectFanout) {
  const CsrGraph g = test_graph();
  NeighborSampler sampler(g, {7});
  util::Pcg32 rng(2);
  const std::vector<graph::VertexId> seeds = {0, 1, 2, 3};
  const auto sg = sampler.sample(seeds, rng);
  // Each seed with degree > 0 contributes exactly 7 edges (with replacement).
  std::size_t expected = 0;
  for (graph::VertexId s : seeds) {
    if (g.degree(s) > 0) expected += 7;
  }
  EXPECT_EQ(sg.layers[0].edges.size(), expected);
}

TEST(NeighborSampler, EdgesPointIntoGraph) {
  const CsrGraph g = test_graph();
  NeighborSampler sampler(g, {4, 4});
  util::Pcg32 rng(3);
  const std::vector<graph::VertexId> seeds = {10, 20, 30};
  const auto sg = sampler.sample(seeds, rng);
  for (const auto& layer : sg.layers) {
    for (const auto& [dst, src] : layer.edges) {
      EXPECT_LT(dst, g.num_vertices());
      EXPECT_LT(src, g.num_vertices());
      // src must actually be a neighbor of dst.
      const auto nbrs = g.neighbors(dst);
      EXPECT_TRUE(std::find(nbrs.begin(), nbrs.end(), src) != nbrs.end());
    }
  }
}

TEST(NeighborSampler, FrontierGrowsMonotonically) {
  // DGL block semantics: each hop's frontier includes the previous one.
  const CsrGraph g = test_graph();
  NeighborSampler sampler(g, {3, 3, 3});
  util::Pcg32 rng(4);
  const std::vector<graph::VertexId> seeds = {42, 43};
  const auto sg = sampler.sample(seeds, rng);
  for (std::size_t l = 1; l < sg.layers.size(); ++l) {
    EXPECT_TRUE(std::includes(sg.layers[l].dst_vertices.begin(),
                              sg.layers[l].dst_vertices.end(),
                              sg.layers[l - 1].dst_vertices.begin(),
                              sg.layers[l - 1].dst_vertices.end()));
  }
}

TEST(NeighborSampler, DeterministicGivenRngState) {
  const CsrGraph g = test_graph();
  NeighborSampler sampler(g, {5, 5});
  util::Pcg32 a(7), b(7);
  const std::vector<graph::VertexId> seeds = {3, 14, 159};
  const auto sa = sampler.sample(seeds, a);
  const auto sb = sampler.sample(seeds, b);
  EXPECT_EQ(sa.fetch_set, sb.fetch_set);
  EXPECT_EQ(sa.layers[1].edges, sb.layers[1].edges);
}

TEST(NeighborSampler, ThreadCountInvariantSubgraphs) {
  // The parallel sampler's per-(hop, dst) counter-based streams make the
  // subgraph a pure function of the two words drawn from the caller's rng —
  // identical for any compute-pool size.
  const CsrGraph g = test_graph();
  NeighborSampler sampler(g, {6, 4});
  std::vector<graph::VertexId> seeds(200);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    seeds[i] = static_cast<graph::VertexId>((i * 7) % g.num_vertices());
  }
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());

  util::set_compute_pool_threads(1);
  util::Pcg32 r1(77);
  const auto inline_run = sampler.sample(seeds, r1);
  util::set_compute_pool_threads(4);
  util::Pcg32 r4(77);
  const auto pooled_run = sampler.sample(seeds, r4);
  util::set_compute_pool_threads(0);  // restore auto sizing

  EXPECT_EQ(inline_run.fetch_set, pooled_run.fetch_set);
  ASSERT_EQ(inline_run.layers.size(), pooled_run.layers.size());
  for (std::size_t l = 0; l < inline_run.layers.size(); ++l) {
    EXPECT_EQ(inline_run.layers[l].dst_vertices,
              pooled_run.layers[l].dst_vertices);
    EXPECT_EQ(inline_run.layers[l].edges, pooled_run.layers[l].edges);
  }
  // Both runs must have advanced the caller's generator identically.
  EXPECT_EQ(r1.next(), r4.next());
}

TEST(NeighborSampler, DrawsExactlyTwoWordsPerBatch) {
  // The batch-content-independent rng contract: sample() consumes exactly
  // two words, so sibling samplers sharing a seed derivation stay aligned
  // no matter what they sample.
  const CsrGraph g = test_graph();
  NeighborSampler small(g, {2});
  NeighborSampler big(g, {9, 9});
  util::Pcg32 a(5), b(5), reference(5);
  reference.next();
  reference.next();
  const std::vector<graph::VertexId> few = {1};
  std::vector<graph::VertexId> many(64);
  for (std::size_t i = 0; i < many.size(); ++i) {
    many[i] = static_cast<graph::VertexId>(i * 3);
  }
  small.sample(few, a);
  big.sample(many, b);
  const auto expected = reference.next();
  EXPECT_EQ(a.next(), expected);
  EXPECT_EQ(b.next(), expected);
}

TEST(BatchIterator, CoversAllVerticesOncePerEpoch) {
  std::vector<graph::VertexId> train = {1, 2, 3, 4, 5, 6, 7};
  BatchIterator it(train, 3, 5);
  std::multiset<graph::VertexId> seen;
  for (;;) {
    const auto b = it.next();
    if (b.empty()) break;
    seen.insert(b.begin(), b.end());
  }
  EXPECT_EQ(seen.size(), 7u);
  for (graph::VertexId v : train) EXPECT_EQ(seen.count(v), 1u);
  EXPECT_EQ(it.num_batches(), 3u);
}

TEST(BatchIterator, ReshufflesBetweenEpochs) {
  std::vector<graph::VertexId> train(64);
  for (graph::VertexId v = 0; v < 64; ++v) train[v] = v;
  BatchIterator it(train, 64, 9);
  const auto b1 = it.next();
  const std::vector<graph::VertexId> first(b1.begin(), b1.end());
  it.reset_epoch();
  const auto b2 = it.next();
  const std::vector<graph::VertexId> second(b2.begin(), b2.end());
  EXPECT_NE(first, second);  // astronomically unlikely to repeat
}

TEST(BatchIterator, RejectsZeroBatch) {
  EXPECT_THROW(BatchIterator({1, 2}, 0, 1), std::invalid_argument);
}

TEST(SelectTrainVertices, FractionAndUniqueness) {
  const CsrGraph g = test_graph();
  const auto train = select_train_vertices(g, 0.01, 3);
  EXPECT_EQ(train.size(),
            static_cast<std::size_t>(0.01 * g.num_vertices()));
  std::set<graph::VertexId> uniq(train.begin(), train.end());
  EXPECT_EQ(uniq.size(), train.size());
  EXPECT_TRUE(std::is_sorted(train.begin(), train.end()));
}

TEST(SelectTrainVertices, AtLeastOne) {
  const CsrGraph g = test_graph();
  EXPECT_EQ(select_train_vertices(g, 0.0, 1).size(), 1u);
}

TEST(Hotness, ProfilesSkewedTraffic) {
  const CsrGraph g = test_graph();
  NeighborSampler sampler(g, {25, 10});
  const auto train = select_train_vertices(g, 0.05, 11);
  HotnessOptions opts;
  opts.num_batches = 16;
  opts.batch_size = 16;
  const auto profile = profile_hotness(g, sampler, train, opts);
  EXPECT_EQ(profile.hotness.size(), g.num_vertices());
  EXPECT_GT(profile.fetches_per_batch, 100.0);
  EXPECT_EQ(profile.batch_size, 16u);
  // RMAT skew: the top 1% of vertices must carry a disproportionate share.
  EXPECT_GT(profile.top1pct_traffic, 0.05);
  EXPECT_GT(profile.top5pct_traffic, profile.top1pct_traffic);
  EXPECT_GT(profile.top10pct_traffic, profile.top5pct_traffic);
  EXPECT_LE(profile.top10pct_traffic, 1.0);
}

TEST(Hotness, ByHotnessDescSorted) {
  const CsrGraph g = test_graph();
  NeighborSampler sampler(g, {10, 5});
  const auto train = select_train_vertices(g, 0.05, 13);
  HotnessOptions opts;
  opts.num_batches = 8;
  opts.batch_size = 8;
  const auto profile = profile_hotness(g, sampler, train, opts);
  const auto order = profile.by_hotness_desc();
  ASSERT_EQ(order.size(), profile.hotness.size());
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(profile.hotness[order[i - 1]], profile.hotness[order[i]]);
  }
}

TEST(Hotness, DeterministicGivenSeed) {
  const CsrGraph g = test_graph();
  NeighborSampler sampler(g, {5, 5});
  const auto train = select_train_vertices(g, 0.05, 17);
  HotnessOptions opts;
  opts.num_batches = 4;
  opts.batch_size = 8;
  const auto p1 = profile_hotness(g, sampler, train, opts);
  const auto p2 = profile_hotness(g, sampler, train, opts);
  EXPECT_EQ(p1.hotness, p2.hotness);
}

}  // namespace
}  // namespace moment::sampling
