// Tests for the extension features: push-relabel max flow, the GCN layer,
// the machine-description parser, multi-node cluster modelling (paper §5),
// the adaptive online placer (paper Limitations), SSD IOPS modelling, and
// IO-engine latency/batch APIs.

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "core/auto_module.hpp"
#include "core/plan_io.hpp"
#include "ddak/adaptive.hpp"
#include "ddak/workload.hpp"
#include "gnn/gcn_layer.hpp"
#include "gnn/model.hpp"
#include "graph/generators.hpp"
#include "iostack/ssd.hpp"
#include "maxflow/dinic.hpp"
#include "maxflow/push_relabel.hpp"
#include "placement/search.hpp"
#include "runtime/systems.hpp"
#include "sim/machine_sim.hpp"
#include "sim/trace_sim.hpp"
#include "topology/cluster.hpp"
#include "topology/discovery.hpp"
#include "util/units.hpp"

namespace moment {
namespace {

// ---------------------------------------------------------------- maxflow

TEST(PushRelabel, ClrsExample) {
  maxflow::FlowNetwork net(6);
  net.add_edge(0, 1, 16);
  net.add_edge(0, 2, 13);
  net.add_edge(1, 2, 10);
  net.add_edge(2, 1, 4);
  net.add_edge(1, 3, 12);
  net.add_edge(3, 2, 9);
  net.add_edge(2, 4, 14);
  net.add_edge(4, 3, 7);
  net.add_edge(3, 5, 20);
  net.add_edge(4, 5, 4);
  EXPECT_NEAR(maxflow::PushRelabel::solve(net, 0, 5).total_flow, 23.0, 1e-9);
}

class PushRelabelProperty : public ::testing::TestWithParam<int> {};

TEST_P(PushRelabelProperty, MatchesDinicOnRandomNetworks) {
  util::Pcg32 rng(static_cast<std::uint64_t>(GetParam()), 0xF21);
  const int layers = 3 + static_cast<int>(rng.next_below(3));
  const int width = 2 + static_cast<int>(rng.next_below(4));
  maxflow::FlowNetwork net(2 + layers * width);
  auto node = [&](int l, int i) { return 2 + l * width + i; };
  for (int i = 0; i < width; ++i) {
    net.add_edge(0, node(0, i), rng.next_double(1.0, 20.0));
    net.add_edge(node(layers - 1, i), 1, rng.next_double(1.0, 20.0));
  }
  for (int l = 0; l + 1 < layers; ++l) {
    for (int i = 0; i < width; ++i) {
      for (int j = 0; j < width; ++j) {
        if (rng.next_double() < 0.6) {
          net.add_edge(node(l, i), node(l + 1, j),
                       rng.next_double(0.5, 15.0));
        }
      }
    }
  }
  maxflow::FlowNetwork copy = net;
  const double dinic = maxflow::Dinic::solve(copy, 0, 1).total_flow;
  const double pr = maxflow::PushRelabel::solve(net, 0, 1).total_flow;
  EXPECT_NEAR(pr, dinic, 1e-6 * std::max(1.0, dinic));
}

INSTANTIATE_TEST_SUITE_P(RandomNetworks, PushRelabelProperty,
                         ::testing::Range(0, 20));

TEST(PushRelabel, HandlesInfiniteEdges) {
  maxflow::FlowNetwork net(3);
  net.add_edge(0, 1, maxflow::kInfiniteCapacity);
  net.add_edge(1, 2, 7.5);
  EXPECT_NEAR(maxflow::PushRelabel::solve(net, 0, 2).total_flow, 7.5, 1e-9);
}

// -------------------------------------------------------------------- gnn

gnn::Block tiny_block() {
  gnn::Block b;
  b.src_ids = {0, 1, 2, 3, 4};
  b.dst_ids = {0, 1, 2};
  b.dst_in_src = {0, 1, 2};
  b.edges = {{0, 3}, {0, 4}, {1, 0}, {2, 2}, {2, 4}};
  return b;
}

TEST(GcnLayer, ForwardShape) {
  util::Pcg32 rng(1);
  gnn::GcnLayer layer(6, 4, true, rng);
  const auto b = tiny_block();
  gnn::Tensor x = gnn::Tensor::glorot(b.num_src(), 6, rng);
  const auto out = layer.forward(b, x);
  EXPECT_EQ(out.rows(), 3u);
  EXPECT_EQ(out.cols(), 4u);
}

TEST(GcnLayer, GradientCheck) {
  util::Pcg32 rng(2);
  gnn::GcnLayer layer(4, 3, /*apply_relu=*/false, rng);
  const auto block = tiny_block();
  gnn::Tensor x = gnn::Tensor::glorot(block.num_src(), 4, rng);
  const auto out0 = layer.forward(block, x);
  gnn::Tensor w = gnn::Tensor::glorot(out0.rows(), out0.cols(), rng);
  auto loss_of = [&](const gnn::Tensor& in) {
    const auto o = layer.forward(block, in);
    double acc = 0.0;
    for (std::size_t i = 0; i < o.size(); ++i) {
      acc += static_cast<double>(o.data()[i]) * w.data()[i];
    }
    return acc;
  };
  layer.forward(block, x);
  for (auto* p : layer.parameters()) p->zero_grad();
  const auto gx = layer.backward(block, w);
  const float eps = 1e-3f;
  for (std::size_t idx : {std::size_t{0}, x.size() / 2, x.size() - 1}) {
    gnn::Tensor xp = x, xm = x;
    xp.data()[idx] += eps;
    xm.data()[idx] -= eps;
    EXPECT_NEAR(gx.data()[idx], (loss_of(xp) - loss_of(xm)) / (2 * eps),
                2e-2);
  }
}

TEST(GcnLayer, SelfLoopOnly) {
  // A dst with no sampled edges still gets its own (1/deg) contribution.
  util::Pcg32 rng(3);
  gnn::GcnLayer layer(2, 2, false, rng);
  gnn::Block b;
  b.src_ids = {0};
  b.dst_ids = {0};
  b.dst_in_src = {0};
  gnn::Tensor x(1, 2);
  x.at(0, 0) = 1.0f;
  x.at(0, 1) = -1.0f;
  const auto out = layer.forward(b, x);
  // out = x * W + bias with coefficient 1/deg = 1.
  gnn::Tensor expect(1, 2);
  gnn::matmul(x, layer.parameters()[0]->value, expect);
  EXPECT_NEAR(out.at(0, 0), expect.at(0, 0), 1e-5);
}

TEST(GcnModel, BuildsAndClassifies) {
  graph::RmatParams gp;
  gp.num_vertices = 512;
  gp.num_edges = 4000;
  const auto g = graph::generate_rmat(gp);
  sampling::NeighborSampler sampler(g, {4, 4});
  util::Pcg32 rng(4);
  const std::vector<graph::VertexId> seeds = {5, 6, 7};
  const auto blocks = gnn::build_blocks(sampler.sample(seeds, rng));
  gnn::ModelConfig cfg;
  cfg.kind = gnn::ModelKind::kGcn;
  cfg.in_dim = 8;
  cfg.hidden_dim = 6;
  cfg.num_classes = 3;
  gnn::GnnModel model(cfg);
  gnn::Tensor x0 = gnn::Tensor::glorot(blocks[0].num_src(), 8, rng);
  const auto logits = model.forward(blocks, x0);
  EXPECT_EQ(logits.rows(), 3u);
  EXPECT_EQ(logits.cols(), 3u);
}

// -------------------------------------------------------------- discovery

const char* kToyMachine = R"(
# A one-socket toy server.
machine Toy
description one socket, one switch
ssd_read_bw_gib 5
device RC0 root_complex
device DRAM0 cpu_memory
device PLX0 pcie_switch
link DRAM0 RC0 dram 30 30 MC0
link RC0 PLX0 pcie 16 16 Bus1
slots RC0.nvme RC0 4 ssd gen4
slots PLX0.slots PLX0 8 gpu,ssd gen4
)";

TEST(Discovery, ParsesToyMachine) {
  const auto spec = topology::parse_machine_spec_string(kToyMachine);
  EXPECT_EQ(spec.name, "Toy");
  EXPECT_EQ(spec.description, "one socket, one switch");
  EXPECT_NEAR(util::to_gib_per_s(spec.ssd_read_bw), 5.0, 1e-9);
  EXPECT_EQ(spec.skeleton.num_devices(), 3u);
  EXPECT_EQ(spec.skeleton.num_links(), 2u);
  ASSERT_EQ(spec.slot_groups.size(), 2u);
  EXPECT_FALSE(spec.slot_groups[0].allows_gpu);
  EXPECT_TRUE(spec.slot_groups[1].allows_gpu);
}

TEST(Discovery, ParsedMachineIsUsable) {
  const auto spec = topology::parse_machine_spec_string(kToyMachine);
  topology::Placement p;
  p.gpus_per_group = {0, 2};
  p.ssds_per_group = {3, 1};
  EXPECT_EQ(topology::validate_placement(spec, p), "");
  const auto topo = topology::instantiate(spec, p);
  const auto fg = topology::compile_flow_graph(topo);
  EXPECT_EQ(fg.gpus.size(), 2u);
  EXPECT_GT(topology::predict_rate_bound(fg), 0.0);
}

TEST(Discovery, RoundTripsPresets) {
  for (const auto& spec :
       {topology::make_machine_a(), topology::make_machine_b()}) {
    const std::string text = topology::write_machine_spec(spec);
    const auto parsed = topology::parse_machine_spec_string(text);
    EXPECT_EQ(parsed.name, spec.name);
    EXPECT_EQ(parsed.skeleton.num_devices(), spec.skeleton.num_devices());
    EXPECT_EQ(parsed.skeleton.num_links(), spec.skeleton.num_links());
    ASSERT_EQ(parsed.slot_groups.size(), spec.slot_groups.size());
    for (std::size_t i = 0; i < spec.slot_groups.size(); ++i) {
      EXPECT_EQ(parsed.slot_groups[i].name, spec.slot_groups[i].name);
      EXPECT_EQ(parsed.slot_groups[i].units, spec.slot_groups[i].units);
    }
    EXPECT_EQ(parsed.automorphisms, spec.automorphisms);
    // Same placement, same prediction.
    const auto placement = topology::classic_placement(spec, 'c', 2, 4);
    const auto fg1 = topology::compile_flow_graph(
        topology::instantiate(spec, placement));
    const auto fg2 = topology::compile_flow_graph(
        topology::instantiate(parsed, placement));
    EXPECT_NEAR(topology::predict_rate_bound(fg1),
                topology::predict_rate_bound(fg2), 1.0);
  }
}

TEST(Discovery, RejectsMalformedInput) {
  using topology::ParseError;
  using topology::parse_machine_spec_string;
  EXPECT_THROW(parse_machine_spec_string("device X root_complex\n"),
               ParseError);  // no machine / no slots
  EXPECT_THROW(parse_machine_spec_string(
                   "machine M\nfrobnicate yes\nslots g RC0 2 ssd\n"),
               ParseError);  // unknown keyword
  EXPECT_THROW(parse_machine_spec_string(
                   "machine M\ndevice RC0 root_complex\n"
                   "link RC0 NOPE pcie 1 1\nslots g RC0 2 ssd\n"),
               ParseError);  // unknown device in link
  EXPECT_THROW(parse_machine_spec_string(
                   "machine M\ndevice RC0 root_complex\n"
                   "slots g RC0 2 ssd\nautomorphism 0 0\n"),
               ParseError);  // not a permutation
  EXPECT_THROW(parse_machine_spec_string(
                   "machine M\ndevice RC0 root_complex\n"
                   "slots g RC0 -3 ssd\n"),
               ParseError);  // bad units
}

// ---------------------------------------------------------------- cluster

TEST(Cluster, PresetShape) {
  const auto spec = topology::make_cluster_c();
  EXPECT_EQ(spec.slot_groups.size(), 4u);
  EXPECT_EQ(spec.skeleton.devices_of_kind(topology::DeviceKind::kNic).size(),
            4u);
  EXPECT_FALSE(spec.automorphisms.empty());
}

TEST(Cluster, FlowCrossesNetwork) {
  // One GPU on machine 0, SSDs on machine 1: all SSD traffic must cross the
  // network, capping throughput at the NIC rate.
  const auto spec = topology::make_cluster(
      {.num_machines = 2, .slot_units_per_machine = 8});
  topology::Placement p;
  p.gpus_per_group = {1, 0};
  p.ssds_per_group = {0, 4};
  const auto topo = topology::instantiate(spec, p);
  topology::FlowGraphOptions opts;
  opts.gpu_cache = false;
  const auto fg = topology::compile_flow_graph(topo, opts);
  const double bound = topology::predict_rate_bound(fg);
  // Remote SSDs (4 x 6 = 24 GiB/s) squeezed through one 10 GiB/s NIC link,
  // plus machine-0-local DRAM at its own rate.
  EXPECT_LT(bound, util::gib_per_s(45.0));
  EXPECT_GT(bound, util::gib_per_s(5.0));
}

TEST(Cluster, SearchPrefersLocality) {
  // The searched placement must co-locate the GPU with (most of) the SSDs
  // rather than spreading everything across the network.
  const auto spec = topology::make_cluster(
      {.num_machines = 2, .slot_units_per_machine = 12});
  placement::SearchOptions o;
  o.num_gpus = 1;
  o.num_ssds = 4;
  const double total = 100.0 * util::kGiB;
  o.per_gpu_demand_bytes = total;
  o.per_tier_bytes = {0.1 * total, 0.15 * total, 0.75 * total};
  o.gpu_hbm_bytes = 0.1 * total;
  const auto r = placement::search_placements(spec, o);
  ASSERT_FALSE(r.top.empty());
  const auto& best = r.best().placement;
  // GPU and the majority of SSDs on the same machine.
  int gpu_machine = -1;
  for (std::size_t g = 0; g < best.gpus_per_group.size(); ++g) {
    if (best.gpus_per_group[g] > 0) gpu_machine = static_cast<int>(g);
  }
  ASSERT_GE(gpu_machine, 0);
  EXPECT_GE(best.ssds_per_group[static_cast<std::size_t>(gpu_machine)], 3);
}

TEST(Cluster, RotationSymmetryCollapsesSearch) {
  const auto spec = topology::make_cluster({.num_machines = 3});
  placement::SearchOptions o;
  o.num_gpus = 1;
  o.num_ssds = 2;
  o.use_symmetry_reduction = true;
  const auto reduced = placement::search_placements(spec, o);
  o.use_symmetry_reduction = false;
  const auto full = placement::search_placements(spec, o);
  EXPECT_LT(reduced.evaluated, full.evaluated);
  EXPECT_NEAR(reduced.best().score, full.best().score,
              1e-6 * full.best().score);
}

// --------------------------------------------------------------- adaptive

ddak::DataPlacementResult initial_placement(const std::vector<ddak::Bin>& bins,
                                            std::size_t n) {
  ddak::DataPlacementResult r;
  r.bin_of_vertex.assign(n, 2);  // everything on the SSD bin
  r.bin_access.assign(bins.size(), 0.0);
  r.bin_count.assign(bins.size(), 0);
  r.bin_traffic_share.assign(bins.size(), 0.0);
  r.bin_count[2] = n;
  return r;
}

std::vector<ddak::Bin> adaptive_bins(std::size_t n) {
  std::vector<ddak::Bin> bins(3);
  bins[0] = {"GPU", 0, topology::StorageTier::kGpuHbm, 0.02 * n, 30.0, {}};
  bins[1] = {"CPU", 1, topology::StorageTier::kCpuDram, 0.05 * n, 20.0, {}};
  bins[2] = {"SSD", 2, topology::StorageTier::kSsd,
             static_cast<double>(n), 50.0, {}};
  return bins;
}

TEST(AdaptivePlacer, PromotesHotVerticesUnderDrift) {
  constexpr std::size_t kN = 1000;
  const auto bins = adaptive_bins(kN);
  ddak::AdaptiveOptions opts;
  opts.migration_budget = 2000;
  ddak::AdaptivePlacer placer(bins, initial_placement(bins, kN), opts);

  // Workload: vertices 100..119 are hot.
  util::Pcg32 rng(5);
  std::vector<graph::VertexId> batch;
  for (int round = 0; round < 10; ++round) {
    batch.clear();
    for (int i = 0; i < 400; ++i) {
      batch.push_back(rng.next_double() < 0.7
                          ? 100 + rng.next_below(20)
                          : rng.next_below(kN));
    }
    placer.observe(batch);
  }
  const auto stats = placer.rebalance();
  EXPECT_GT(stats.promotions, 0u);
  EXPECT_LE(stats.error_after, stats.error_before + 1e-9);
  // The hot set must now live in cache tiers.
  int cached = 0;
  for (graph::VertexId v = 100; v < 120; ++v) {
    if (placer.placement().bin_of_vertex[v] != 2) ++cached;
  }
  EXPECT_GE(cached, 15);
}

TEST(AdaptivePlacer, AdaptsWhenHotSetMoves) {
  constexpr std::size_t kN = 1000;
  const auto bins = adaptive_bins(kN);
  ddak::AdaptiveOptions opts;
  opts.migration_budget = 2000;
  opts.ema_alpha = 0.5;  // fast adaptation for the test
  ddak::AdaptivePlacer placer(bins, initial_placement(bins, kN), opts);

  util::Pcg32 rng(6);
  auto run_phase = [&](graph::VertexId hot_base) {
    std::vector<graph::VertexId> batch;
    for (int round = 0; round < 8; ++round) {
      batch.clear();
      for (int i = 0; i < 400; ++i) {
        batch.push_back(rng.next_double() < 0.7
                            ? hot_base + rng.next_below(20)
                            : rng.next_below(kN));
      }
      placer.observe(batch);
      placer.rebalance();
    }
  };
  run_phase(100);
  run_phase(700);  // the workload drifts

  int new_hot_cached = 0;
  for (graph::VertexId v = 700; v < 720; ++v) {
    if (placer.placement().bin_of_vertex[v] != 2) ++new_hot_cached;
  }
  EXPECT_GE(new_hot_cached, 15) << "placer failed to follow the drift";
}

TEST(AdaptivePlacer, RespectsMigrationBudget) {
  constexpr std::size_t kN = 500;
  const auto bins = adaptive_bins(kN);
  ddak::AdaptiveOptions opts;
  opts.migration_budget = 4;
  ddak::AdaptivePlacer placer(bins, initial_placement(bins, kN), opts);
  std::vector<graph::VertexId> batch;
  for (graph::VertexId v = 0; v < 50; ++v) batch.push_back(v);
  placer.observe(batch);
  const auto stats = placer.rebalance();
  EXPECT_LE(stats.migrated, 4u);
}

TEST(AdaptivePlacer, ValidatesInputs) {
  const auto bins = adaptive_bins(100);
  ddak::AdaptiveOptions bad;
  bad.ema_alpha = 0.0;
  EXPECT_THROW(ddak::AdaptivePlacer(bins, initial_placement(bins, 100), bad),
               std::invalid_argument);
  ddak::AdaptivePlacer placer(bins, initial_placement(bins, 100), {});
  const graph::VertexId out_of_range[] = {5000};
  EXPECT_THROW(placer.observe(out_of_range), std::out_of_range);
}

// ------------------------------------------------------------------- sim

TEST(SimIops, IopsCapSlowsSsdBoundEpoch) {
  const auto bench = runtime::Workbench::make(graph::DatasetId::kIG, 3, 42);
  const auto workload = ddak::make_epoch_workload(bench.dataset,
                                                  bench.profile,
                                                  ddak::CacheConfig{}, 4);
  const auto spec = topology::make_machine_a();
  const auto topo = topology::instantiate(
      spec, topology::classic_placement(spec, 'c', 4, 8));
  const auto fg = topology::compile_flow_graph(topo);
  const auto pred = topology::predict(
      fg, ddak::to_flow_demand(workload, fg, ddak::SupplyModel::kUniformHash));
  auto bins = ddak::make_bins(topo, fg, pred.per_storage_bytes,
                              bench.dataset.scaled.vertices, 0.005, 0.01);
  const auto merged = sim::merge_replicated_gpu_bins(bins);
  const auto place = ddak::hash_place(merged, bench.profile);

  sim::SimOptions plain;
  const auto fast = sim::simulate_epoch(topo, fg, workload, merged, place,
                                        plain);
  sim::SimOptions iops;
  iops.ssd_iops = 500'000;  // 500k * 4 KiB ~ 1.9 GiB/s per SSD
  const auto slow = sim::simulate_epoch(topo, fg, workload, merged, place,
                                        iops);
  EXPECT_GT(slow.epoch_time_s, fast.epoch_time_s * 1.5);
}

TEST(SimCpuMirror, ReducesQpiWithoutChangingCoverage) {
  const auto bench = runtime::Workbench::make(graph::DatasetId::kIG, 3, 42);
  const auto workload = ddak::make_epoch_workload(bench.dataset,
                                                  bench.profile,
                                                  ddak::CacheConfig{}, 4);
  const auto spec = topology::make_machine_a();
  const auto topo = topology::instantiate(
      spec, topology::classic_placement(spec, 'c', 4, 8));
  const auto fg = topology::compile_flow_graph(topo);
  const auto pred = topology::predict(
      fg, ddak::to_flow_demand(workload, fg, ddak::SupplyModel::kFlexibleTier));
  auto bins = ddak::make_bins(topo, fg, pred.per_storage_bytes,
                              bench.dataset.scaled.vertices, 0.005, 0.01);
  const auto merged = sim::merge_replicated_gpu_bins(bins);
  const auto mirrored = sim::merge_replicated_cpu_bins(merged);

  ddak::DdakOptions dopt;
  dopt.pool_size = ddak::default_pool_size(bench.dataset.scaled.vertices);
  const auto plain_place = ddak::ddak_place(merged, bench.profile, dopt);
  const auto mirror_place = ddak::ddak_place(mirrored, bench.profile, dopt);
  const auto plain = sim::simulate_epoch(topo, fg, workload, merged,
                                         plain_place);
  const auto mirror = sim::simulate_epoch(topo, fg, workload, mirrored,
                                          mirror_place);
  EXPECT_LT(mirror.qpi_bytes, plain.qpi_bytes);
  EXPECT_LE(mirror.epoch_time_s, plain.epoch_time_s * 1.05);
}

// ---------------------------------------------------------------- iostack

TEST(IoEngineExt, BatchSubmissionAndLatency) {
  iostack::SsdOptions opts;
  opts.capacity_bytes = 64 * iostack::kPageBytes;
  iostack::SsdArray array(2, opts);
  iostack::IoEngine engine(array);
  array.start_all();

  std::vector<std::byte> buf(32 * iostack::kPageBytes);
  std::vector<iostack::ReadRequest> reqs;
  for (int i = 0; i < 32; ++i) {
    reqs.push_back({static_cast<std::size_t>(i % 2),
                    static_cast<std::uint64_t>(i % 64) * iostack::kPageBytes,
                    static_cast<std::uint32_t>(iostack::kPageBytes),
                    buf.data() + static_cast<std::size_t>(i) *
                                     iostack::kPageBytes});
  }
  engine.submit_batch(reqs);
  EXPECT_EQ(engine.wait_all(), 0u);
  array.stop_all();

  const auto lat = engine.latency();
  EXPECT_EQ(lat.count, 32u);
  EXPECT_GT(lat.mean_ns, 0.0);
  EXPECT_GE(lat.max_ns, lat.mean_ns);
  engine.reset_latency();
  EXPECT_EQ(engine.latency().count, 0u);
}

// -------------------------------------------------------------- trace sim

TEST(TraceSim, AgreesWithExpectationMode) {
  const auto bench = runtime::Workbench::make(graph::DatasetId::kIG, 3, 42);
  const auto workload = ddak::make_epoch_workload(
      bench.dataset, bench.profile, ddak::CacheConfig{}, 4);
  const auto spec = topology::make_machine_a();
  const auto topo = topology::instantiate(
      spec, topology::classic_placement(spec, 'c', 4, 8));
  const auto fg = topology::compile_flow_graph(topo);
  const auto pred = topology::predict(
      fg, ddak::to_flow_demand(workload, fg, ddak::SupplyModel::kFlexibleTier));
  auto bins = ddak::make_bins(topo, fg, pred.per_storage_bytes,
                              bench.dataset.scaled.vertices, 0.005, 0.01);
  const auto merged = sim::merge_replicated_gpu_bins(bins);
  ddak::DdakOptions dopt;
  dopt.pool_size = ddak::default_pool_size(bench.dataset.scaled.vertices);
  const auto place = ddak::ddak_place(merged, bench.profile, dopt);

  sampling::NeighborSampler sampler(bench.dataset.csr, {25, 10});
  const auto train = sampling::select_train_vertices(
      bench.dataset.csr, bench.dataset.train_fraction, 42);

  sim::TraceSimOptions topts;
  topts.trace_rounds = 8;
  const auto traced = sim::simulate_epoch_traced(
      topo, fg, workload, merged, place, sampler, train, topts);
  ASSERT_EQ(traced.traced_rounds, 8u);
  EXPECT_GT(traced.epoch_time_s, 0.0);
  EXPECT_GT(traced.round_io_time_s.stddev, 0.0) << "no sampling variance?";
  // Traced mean within 30% of expectation mode (same placement, same plan).
  EXPECT_LT(traced.deviation_from_expectation, 0.30);
}

TEST(TraceSim, DeterministicGivenSeed) {
  const auto bench = runtime::Workbench::make(graph::DatasetId::kPA, 4, 7);
  const auto workload = ddak::make_epoch_workload(
      bench.dataset, bench.profile, ddak::CacheConfig{}, 2);
  const auto spec = topology::make_machine_b();
  const auto topo = topology::instantiate(
      spec, topology::classic_placement(spec, 'c', 2, 4));
  const auto fg = topology::compile_flow_graph(topo);
  const auto pred = topology::predict(
      fg, ddak::to_flow_demand(workload, fg, ddak::SupplyModel::kUniformHash));
  auto bins = ddak::make_bins(topo, fg, pred.per_storage_bytes,
                              bench.dataset.scaled.vertices, 0.005, 0.01);
  const auto merged = sim::merge_replicated_gpu_bins(bins);
  const auto place = ddak::hash_place(merged, bench.profile);
  sampling::NeighborSampler sampler(bench.dataset.csr, {10, 5});
  const auto train = sampling::select_train_vertices(
      bench.dataset.csr, bench.dataset.train_fraction, 7);
  sim::TraceSimOptions topts;
  topts.trace_rounds = 4;
  const auto a = sim::simulate_epoch_traced(topo, fg, workload, merged,
                                            place, sampler, train, topts);
  const auto b = sim::simulate_epoch_traced(topo, fg, workload, merged,
                                            place, sampler, train, topts);
  EXPECT_DOUBLE_EQ(a.epoch_time_s, b.epoch_time_s);
  EXPECT_DOUBLE_EQ(a.qpi_bytes, b.qpi_bytes);
}

TEST(TraceSim, ValidatesInputs) {
  const auto bench = runtime::Workbench::make(graph::DatasetId::kPA, 4, 7);
  const auto workload = ddak::make_epoch_workload(
      bench.dataset, bench.profile, ddak::CacheConfig{}, 2);
  const auto spec = topology::make_machine_b();
  const auto topo = topology::instantiate(
      spec, topology::classic_placement(spec, 'c', 2, 4));
  const auto fg = topology::compile_flow_graph(topo);
  auto bins = ddak::make_bins(topo, fg, {}, bench.dataset.scaled.vertices,
                              0.005, 0.01);
  const auto merged = sim::merge_replicated_gpu_bins(bins);
  const auto place = ddak::hash_place(merged, bench.profile);
  sampling::NeighborSampler sampler(bench.dataset.csr, {4, 4});
  EXPECT_THROW(sim::simulate_epoch_traced(topo, fg, workload, merged, place,
                                          sampler, {}, {}),
               std::invalid_argument);
}

// ---------------------------------------------------------------- plan io

TEST(PlanIo, RoundTripsAutoModulePlan) {
  const auto spec = topology::make_machine_b();
  core::AutoModuleConfig cfg;
  cfg.machine = &spec;
  cfg.dataset = graph::DatasetId::kPA;
  cfg.dataset_scale_shift = 4;
  cfg.num_gpus = 2;
  cfg.num_ssds = 4;
  const core::Plan plan = core::AutoModule::plan(cfg);

  std::stringstream buffer;
  core::save_plan(plan, buffer);
  const core::Plan loaded = core::load_plan(buffer);

  EXPECT_EQ(loaded.hardware_placement.gpus_per_group,
            plan.hardware_placement.gpus_per_group);
  EXPECT_EQ(loaded.hardware_placement.ssds_per_group,
            plan.hardware_placement.ssds_per_group);
  ASSERT_EQ(loaded.bins.size(), plan.bins.size());
  for (std::size_t i = 0; i < plan.bins.size(); ++i) {
    EXPECT_EQ(loaded.bins[i].name, plan.bins[i].name);
    EXPECT_EQ(loaded.bins[i].tier, plan.bins[i].tier);
    EXPECT_NEAR(loaded.bins[i].traffic_target, plan.bins[i].traffic_target,
                std::abs(plan.bins[i].traffic_target) * 1e-4 + 1e-9);
    EXPECT_EQ(loaded.bins[i].replica_storage_indices,
              plan.bins[i].replica_storage_indices);
  }
  EXPECT_EQ(loaded.data_placement.bin_of_vertex,
            plan.data_placement.bin_of_vertex);
  EXPECT_EQ(loaded.data_placement.bin_count, plan.data_placement.bin_count);
}

TEST(PlanIo, RejectsCorruptInput) {
  std::stringstream bad1("not-a-plan\n");
  EXPECT_THROW(core::load_plan(bad1), std::runtime_error);
  std::stringstream bad2("moment-plan-v1\nvertices 10\nrun 0 99\nend\n");
  EXPECT_THROW(core::load_plan(bad2), std::runtime_error);
  std::stringstream bad3("moment-plan-v1\nbins 2\nend\n");
  EXPECT_THROW(core::load_plan(bad3), std::runtime_error);
  EXPECT_THROW(core::load_plan_file("/nonexistent/plan.txt"),
               std::runtime_error);
}

TEST(PlanIo, FileRoundTrip) {
  const auto spec = topology::make_machine_a();
  core::AutoModuleConfig cfg;
  cfg.machine = &spec;
  cfg.dataset = graph::DatasetId::kPA;
  cfg.dataset_scale_shift = 4;
  cfg.num_gpus = 2;
  cfg.num_ssds = 4;
  const core::Plan plan = core::AutoModule::plan(cfg);
  const std::string path = "/tmp/moment_plan_test.txt";
  core::save_plan_file(plan, path);
  const core::Plan loaded = core::load_plan_file(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.data_placement.bin_of_vertex,
            plan.data_placement.bin_of_vertex);
}

// ----------------------------------------------------------------- models

TEST(ModelPresets, GcnRegistered) {
  const auto preset = runtime::model_preset(gnn::ModelKind::kGcn);
  EXPECT_EQ(preset.name, "GCN");
  EXPECT_LT(preset.compute_time_per_batch,
            runtime::model_preset(gnn::ModelKind::kGat)
                .compute_time_per_batch);
}

}  // namespace
}  // namespace moment
