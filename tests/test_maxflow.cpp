// Unit + property tests for the max-flow module: Dinic vs the Edmonds-Karp
// oracle on random networks, flow conservation, min-cut duality, and the
// paper's time-bisection procedure.

#include <gtest/gtest.h>

#include <cmath>

#include "maxflow/dinic.hpp"
#include "maxflow/edmonds_karp.hpp"
#include "maxflow/flow_network.hpp"
#include "maxflow/min_cut.hpp"
#include "maxflow/time_bisection.hpp"
#include "util/rng.hpp"

namespace moment::maxflow {
namespace {

/// Classic CLRS-style example with known max flow 23.
FlowNetwork clrs_network(NodeId& s, NodeId& t) {
  FlowNetwork net(6);
  s = 0;
  t = 5;
  net.add_edge(0, 1, 16);
  net.add_edge(0, 2, 13);
  net.add_edge(1, 2, 10);
  net.add_edge(2, 1, 4);
  net.add_edge(1, 3, 12);
  net.add_edge(3, 2, 9);
  net.add_edge(2, 4, 14);
  net.add_edge(4, 3, 7);
  net.add_edge(3, 5, 20);
  net.add_edge(4, 5, 4);
  return net;
}

TEST(Dinic, ClrsExample) {
  NodeId s, t;
  FlowNetwork net = clrs_network(s, t);
  EXPECT_NEAR(Dinic::solve(net, s, t).total_flow, 23.0, 1e-9);
}

TEST(EdmondsKarp, ClrsExample) {
  NodeId s, t;
  FlowNetwork net = clrs_network(s, t);
  EXPECT_NEAR(EdmondsKarp::solve(net, s, t).total_flow, 23.0, 1e-9);
}

TEST(Dinic, DisconnectedIsZero) {
  FlowNetwork net(4);
  net.add_edge(0, 1, 5);
  net.add_edge(2, 3, 5);
  EXPECT_EQ(Dinic::solve(net, 0, 3).total_flow, 0.0);
}

TEST(Dinic, ParallelEdgesAccumulate) {
  FlowNetwork net(2);
  net.add_edge(0, 1, 3);
  net.add_edge(0, 1, 4);
  EXPECT_NEAR(Dinic::solve(net, 0, 1).total_flow, 7.0, 1e-9);
}

TEST(Dinic, InfiniteEdgeBoundedElsewhere) {
  FlowNetwork net(3);
  net.add_edge(0, 1, kInfiniteCapacity);
  net.add_edge(1, 2, 9.5);
  EXPECT_NEAR(Dinic::solve(net, 0, 2).total_flow, 9.5, 1e-9);
}

TEST(FlowNetwork, FlowReadback) {
  FlowNetwork net(3);
  const EdgeId e01 = net.add_edge(0, 1, 4);
  const EdgeId e12 = net.add_edge(1, 2, 10);
  Dinic::solve(net, 0, 2);
  EXPECT_NEAR(net.flow(e01), 4.0, 1e-9);
  EXPECT_NEAR(net.flow(e12), 4.0, 1e-9);
}

TEST(FlowNetwork, ResetFlowsRestoresCapacity) {
  FlowNetwork net(2);
  const EdgeId e = net.add_edge(0, 1, 5);
  Dinic::solve(net, 0, 1);
  EXPECT_NEAR(net.flow(e), 5.0, 1e-9);
  net.reset_flows();
  EXPECT_NEAR(net.flow(e), 0.0, 1e-9);
  EXPECT_NEAR(Dinic::solve(net, 0, 1).total_flow, 5.0, 1e-9);
}

TEST(FlowNetwork, ScaleCapacities) {
  FlowNetwork net(2);
  net.add_edge(0, 1, 5);
  net.scale_capacities(3.0);
  EXPECT_NEAR(Dinic::solve(net, 0, 1).total_flow, 15.0, 1e-9);
  EXPECT_THROW(net.scale_capacities(-1.0), std::invalid_argument);
}

TEST(FlowNetwork, SetCapacity) {
  FlowNetwork net(2);
  const EdgeId e = net.add_edge(0, 1, 5);
  net.set_capacity(e, 2.5);
  EXPECT_NEAR(Dinic::solve(net, 0, 1).total_flow, 2.5, 1e-9);
  EXPECT_THROW(net.set_capacity(e, -1.0), std::invalid_argument);
}

TEST(FlowNetwork, RejectsNegativeCapacity) {
  FlowNetwork net(2);
  EXPECT_THROW(net.add_edge(0, 1, -1.0), std::invalid_argument);
}

/// Random layered networks shaped like compiled topologies.
FlowNetwork random_network(util::Pcg32& rng, NodeId& s, NodeId& t) {
  const int layers = 3 + static_cast<int>(rng.next_below(3));
  const int width = 2 + static_cast<int>(rng.next_below(4));
  FlowNetwork net(2 + layers * width);
  s = 0;
  t = 1;
  auto node = [&](int layer, int i) { return 2 + layer * width + i; };
  for (int i = 0; i < width; ++i) {
    net.add_edge(s, node(0, i), rng.next_double(1.0, 20.0));
    net.add_edge(node(layers - 1, i), t, rng.next_double(1.0, 20.0));
  }
  for (int l = 0; l + 1 < layers; ++l) {
    for (int i = 0; i < width; ++i) {
      for (int j = 0; j < width; ++j) {
        if (rng.next_double() < 0.6) {
          net.add_edge(node(l, i), node(l + 1, j), rng.next_double(0.5, 15.0));
        }
      }
    }
  }
  return net;
}

class MaxFlowProperty : public ::testing::TestWithParam<int> {};

TEST_P(MaxFlowProperty, DinicMatchesEdmondsKarp) {
  util::Pcg32 rng(static_cast<std::uint64_t>(GetParam()), 0xF10);
  NodeId s, t;
  FlowNetwork net = random_network(rng, s, t);
  FlowNetwork net2 = net;
  const double dinic = Dinic::solve(net, s, t).total_flow;
  const double ek = EdmondsKarp::solve(net2, s, t).total_flow;
  EXPECT_NEAR(dinic, ek, 1e-6 * std::max(1.0, dinic));
}

TEST_P(MaxFlowProperty, FlowConservation) {
  util::Pcg32 rng(static_cast<std::uint64_t>(GetParam()), 0xF11);
  NodeId s, t;
  FlowNetwork net = random_network(rng, s, t);
  Dinic::solve(net, s, t);
  // Net flow at each interior node must be zero.
  std::vector<double> balance(static_cast<std::size_t>(net.num_nodes()), 0.0);
  for (NodeId u = 0; u < net.num_nodes(); ++u) {
    for (EdgeId eid : net.incident(u)) {
      const auto& e = net.edge(eid);
      if (e.is_residual || net.edge_source(eid) != u) continue;
      const double f = net.flow(eid);
      balance[static_cast<std::size_t>(u)] -= f;
      balance[static_cast<std::size_t>(e.to)] += f;
    }
  }
  for (NodeId u = 0; u < net.num_nodes(); ++u) {
    if (u == s || u == t) continue;
    EXPECT_NEAR(balance[static_cast<std::size_t>(u)], 0.0, 1e-6);
  }
}

TEST_P(MaxFlowProperty, MinCutEqualsMaxFlow) {
  util::Pcg32 rng(static_cast<std::uint64_t>(GetParam()), 0xF12);
  NodeId s, t;
  FlowNetwork net = random_network(rng, s, t);
  const double flow = Dinic::solve(net, s, t).total_flow;
  const MinCut cut = extract_min_cut(net, s);
  EXPECT_TRUE(cut.source_side[static_cast<std::size_t>(s)]);
  EXPECT_FALSE(cut.source_side[static_cast<std::size_t>(t)]);
  EXPECT_NEAR(cut.capacity, flow, 1e-6 * std::max(1.0, flow));
}

INSTANTIATE_TEST_SUITE_P(RandomNetworks, MaxFlowProperty,
                         ::testing::Range(0, 25));

TEST(TimeBisection, SimplePipe) {
  // One storage at 10 B/s, one GPU demanding 100 bytes -> T* = 10 s.
  FlowNetwork net(4);
  const EdgeId supply = net.add_edge(0, 1, 10.0);
  net.add_edge(1, 2, 10.0);
  const EdgeId demand = net.add_edge(2, 3, kInfiniteCapacity);
  const ByteConstraint demands[] = {{demand, 100.0}};
  const ByteConstraint supplies[] = {{supply, 1e9}};
  const auto r = solve_time_bisection(net, 0, 3, demands, supplies);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.min_time_s, 10.0, 0.01);
  EXPECT_NEAR(r.throughput, 10.0, 0.1);
}

TEST(TimeBisection, ImbalanceDominates) {
  // Two GPUs: one fed at 10 B/s, the other at 1 B/s; both demand 50 bytes.
  // Aggregate bound says 100/11 ~ 9.1 s, but the starved GPU forces 50 s.
  FlowNetwork net(6);
  net.add_edge(0, 1, 10.0);
  net.add_edge(0, 2, 1.0);
  net.add_edge(1, 3, 10.0);
  net.add_edge(2, 4, 1.0);
  const EdgeId d0 = net.add_edge(3, 5, kInfiniteCapacity);
  const EdgeId d1 = net.add_edge(4, 5, kInfiniteCapacity);
  const ByteConstraint demands[] = {{d0, 50.0}, {d1, 50.0}};
  const auto r = solve_time_bisection(net, 0, 5, demands, {});
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.min_time_s, 50.0, 0.1);
}

TEST(TimeBisection, SupplyBytesLimitFeasibility) {
  // Demand 100 bytes but only 40 bytes of data exist at the storage node.
  FlowNetwork net(3);
  const EdgeId supply = net.add_edge(0, 1, 100.0);
  const EdgeId demand = net.add_edge(1, 2, kInfiniteCapacity);
  const ByteConstraint demands[] = {{demand, 100.0}};
  const ByteConstraint supplies[] = {{supply, 40.0}};
  const auto r = solve_time_bisection(net, 0, 2, demands, supplies);
  EXPECT_FALSE(r.feasible);
}

TEST(TimeBisection, ZeroDemandIsInstant) {
  FlowNetwork net(2);
  net.add_edge(0, 1, 5.0);
  const auto r = solve_time_bisection(net, 0, 1, {}, {});
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.min_time_s, 0.0);
}

TEST(TimeBisection, ThroughputScalesWithCapacity) {
  // Doubling every link should halve the epoch time.
  FlowNetwork net(4);
  net.add_edge(0, 1, 8.0);
  net.add_edge(1, 2, 8.0);
  const EdgeId demand = net.add_edge(2, 3, kInfiniteCapacity);
  const ByteConstraint demands[] = {{demand, 64.0}};
  const auto slow = solve_time_bisection(net, 0, 3, demands, {});
  FlowNetwork fast = net;
  fast.scale_capacities(2.0);
  const auto quick = solve_time_bisection(fast, 0, 3, demands, {});
  ASSERT_TRUE(slow.feasible && quick.feasible);
  EXPECT_NEAR(slow.min_time_s / quick.min_time_s, 2.0, 0.02);
}

TEST(TimeBisection, EdgeFlowsSatisfyDemand) {
  FlowNetwork net(4);
  net.add_edge(0, 1, 10.0);
  net.add_edge(1, 2, 10.0);
  const EdgeId demand = net.add_edge(2, 3, kInfiniteCapacity);
  const ByteConstraint demands[] = {{demand, 30.0}};
  const auto r = solve_time_bisection(net, 0, 3, demands, {});
  ASSERT_TRUE(r.feasible);
  ASSERT_GT(r.edge_flow.size(), static_cast<std::size_t>(demand));
  EXPECT_NEAR(r.edge_flow[static_cast<std::size_t>(demand)], 30.0, 0.1);
}

}  // namespace
}  // namespace moment::maxflow
