// Kernel-vs-naive equivalence for the gnn/kernels layer: the blocked GEMM
// variants against reference triple loops on ragged shapes, CompiledBlock
// structure, CSR aggregation against edge-list oracles, and bitwise
// thread-count invariance of the row-partitioned parallel paths.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "gnn/block.hpp"
#include "gnn/kernels.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using moment::gnn::Block;
using moment::gnn::CompiledBlock;
using moment::gnn::compile_block;
namespace kernels = moment::gnn::kernels;

constexpr double kTol = 1e-4;

std::vector<float> random_matrix(std::size_t rows, std::size_t cols,
                                 moment::util::Pcg32& rng) {
  std::vector<float> m(rows * cols);
  for (float& v : m) v = static_cast<float>(rng.next_double(-1.0, 1.0));
  return m;
}

void ref_gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
              const float* b, float* c, bool accumulate) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = accumulate ? c[i * n + j] : 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[i * k + p]) * b[p * n + j];
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

void ref_gemm_bt(std::size_t m, std::size_t k, std::size_t n, const float* a,
                 const float* b, float* c, bool accumulate) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = accumulate ? c[i * n + j] : 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[i * k + p]) * b[j * k + p];
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

void ref_gemm_at(std::size_t m, std::size_t k, std::size_t n, const float* a,
                 const float* b, float* c, bool accumulate) {
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = accumulate ? c[p * n + j] : 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        acc += static_cast<double>(a[i * k + p]) * b[i * n + j];
      }
      c[p * n + j] = static_cast<float>(acc);
    }
  }
}

void expect_close(const std::vector<float>& ref, const std::vector<float>& got,
                  const char* what) {
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const double denom = std::max(1.0, std::abs(static_cast<double>(ref[i])));
    ASSERT_NEAR(ref[i], got[i], kTol * denom) << what << " at index " << i;
  }
}

/// A hand-built bipartite block: 4 dsts (dst 3 isolated), 7 srcs.
Block tiny_block() {
  Block block;
  block.dst_ids = {0, 1, 2, 3};
  block.src_ids = {0, 1, 2, 3, 4, 5, 6};
  block.dst_in_src = {0, 1, 2, 3};
  block.edges = {{0, 4}, {0, 1}, {1, 5}, {1, 4}, {1, 6}, {2, 0}, {0, 4}};
  return block;
}

Block random_block(std::size_t nd, std::size_t ns, std::size_t ne,
                   moment::util::Pcg32& rng) {
  Block block;
  block.dst_ids.resize(nd);
  block.src_ids.resize(ns);
  block.dst_in_src.resize(nd);
  for (std::size_t i = 0; i < nd; ++i) {
    block.dst_ids[i] = static_cast<int>(i);
    block.dst_in_src[i] = static_cast<int>(i);
  }
  for (std::size_t i = 0; i < ns; ++i) block.src_ids[i] = static_cast<int>(i);
  for (std::size_t e = 0; e < ne; ++e) {
    block.edges.emplace_back(
        static_cast<int>(rng.next_below(static_cast<std::uint32_t>(nd))),
        static_cast<int>(rng.next_below(static_cast<std::uint32_t>(ns))));
  }
  return block;
}

TEST(Kernels, GemmVariantsMatchReferenceOnRaggedShapes) {
  moment::util::Pcg32 rng(7);
  const std::size_t shapes[][3] = {
      {1, 1, 1}, {3, 5, 2}, {17, 33, 29}, {65, 1, 129}, {33, 257, 7},
      {4, 256, 8}, {5, 300, 9}};
  for (const auto& s : shapes) {
    const std::size_t m = s[0], k = s[1], n = s[2];
    const auto a = random_matrix(m, k, rng);
    const auto b = random_matrix(k, n, rng);
    const auto bt = random_matrix(n, k, rng);
    const auto bm = random_matrix(m, n, rng);
    for (const bool acc : {false, true}) {
      auto ref = random_matrix(m, n, rng);
      auto got = ref;  // same starting contents so accumulate is comparable
      ref_gemm(m, k, n, a.data(), b.data(), ref.data(), acc);
      kernels::gemm(m, k, n, a.data(), b.data(), got.data(), acc);
      expect_close(ref, got, "gemm");

      auto ref2 = random_matrix(m, n, rng);
      auto got2 = ref2;
      ref_gemm_bt(m, k, n, a.data(), bt.data(), ref2.data(), acc);
      kernels::gemm_bt(m, k, n, a.data(), bt.data(), got2.data(), acc);
      expect_close(ref2, got2, "gemm_bt");

      auto ref3 = random_matrix(k, n, rng);
      auto got3 = ref3;
      ref_gemm_at(m, k, n, a.data(), bm.data(), ref3.data(), acc);
      kernels::gemm_at(m, k, n, a.data(), bm.data(), got3.data(), acc);
      expect_close(ref3, got3, "gemm_at");
    }
  }
}

TEST(CompiledBlockTest, StructureMatchesEdgeList) {
  const Block block = tiny_block();
  const CompiledBlock& cb = block.compiled();
  ASSERT_EQ(cb.num_dst(), 4u);
  ASSERT_EQ(cb.num_src(), 7u);
  ASSERT_EQ(cb.num_edges(), block.edges.size());

  // Forward CSR: neighbors sorted ascending, degrees match the edge list.
  EXPECT_EQ(cb.degree(0), 3);  // {4, 1, 4}
  EXPECT_EQ(cb.degree(1), 3);  // {5, 4, 6}
  EXPECT_EQ(cb.degree(2), 1);
  EXPECT_EQ(cb.degree(3), 0);  // isolated
  EXPECT_EQ(std::vector<int>(cb.src_of.begin() + cb.dst_off[0],
                             cb.src_of.begin() + cb.dst_off[1]),
            (std::vector<int>{1, 4, 4}));
  EXPECT_EQ(std::vector<int>(cb.src_of.begin() + cb.dst_off[1],
                             cb.src_of.begin() + cb.dst_off[2]),
            (std::vector<int>{4, 5, 6}));
  EXPECT_FLOAT_EQ(cb.inv_deg[0], 1.0f / 3.0f);
  EXPECT_FLOAT_EQ(cb.inv_deg[3], 0.0f);

  // Reverse CSR: every CSR edge id appears exactly once, attached to its src.
  std::vector<int> seen(cb.num_edges(), 0);
  for (std::size_t v = 0; v < cb.num_src(); ++v) {
    for (int t = cb.src_off[v]; t < cb.src_off[v + 1]; ++t) {
      const int e = cb.rev_edge[static_cast<std::size_t>(t)];
      EXPECT_EQ(cb.src_of[static_cast<std::size_t>(e)], static_cast<int>(v));
      ++seen[static_cast<std::size_t>(e)];
    }
  }
  for (int count : seen) EXPECT_EQ(count, 1);

  // dst_of inverts the forward CSR; self maps are mutual inverses.
  for (std::size_t i = 0; i < cb.num_dst(); ++i) {
    for (int t = cb.dst_off[i]; t < cb.dst_off[i + 1]; ++t) {
      EXPECT_EQ(cb.dst_of[static_cast<std::size_t>(t)], static_cast<int>(i));
    }
    EXPECT_EQ(cb.src_to_dst[static_cast<std::size_t>(cb.self_src[i])],
              static_cast<int>(i));
  }
}

TEST(CompiledBlockTest, RejectsOutOfRangeEdges) {
  Block block = tiny_block();
  block.edges.emplace_back(0, 99);
  EXPECT_THROW(compile_block(block), std::out_of_range);
}

TEST(Kernels, AggregateMeanMatchesEdgeListOracle) {
  moment::util::Pcg32 rng(11);
  const std::size_t nd = 60, ns = 150, ne = 700, dim = 37;
  Block block = random_block(nd, ns, ne, rng);
  // Force a zero-degree dst: rewire every edge pointing at dst 0 to dst 1.
  for (auto& [dst, src] : block.edges) {
    if (dst == 0) dst = 1;
  }
  const CompiledBlock cb = compile_block(block);
  ASSERT_EQ(cb.degree(0), 0);
  const auto x = random_matrix(ns, dim, rng);

  std::vector<float> ref(nd * dim, 0.0f);
  std::vector<std::size_t> degree(nd, 0);
  for (const auto& [dst, src] : block.edges) {
    for (std::size_t c = 0; c < dim; ++c) {
      ref[static_cast<std::size_t>(dst) * dim + c] +=
          x[static_cast<std::size_t>(src) * dim + c];
    }
    ++degree[static_cast<std::size_t>(dst)];
  }
  for (std::size_t i = 0; i < nd; ++i) {
    if (degree[i] == 0) continue;
    for (std::size_t c = 0; c < dim; ++c) {
      ref[i * dim + c] /= static_cast<float>(degree[i]);
    }
  }

  std::vector<float> got(nd * dim, 1.0f);  // nonzero: rows must be overwritten
  kernels::aggregate_mean(cb, x.data(), dim, got.data());
  expect_close(ref, got, "aggregate_mean");
  for (std::size_t c = 0; c < dim; ++c) EXPECT_EQ(got[c], 0.0f);
}

TEST(Kernels, AggregateCoeffAndGradMatchOracle) {
  moment::util::Pcg32 rng(13);
  const std::size_t nd = 40, ns = 90, ne = 350, dim = 19;
  const Block block = random_block(nd, ns, ne, rng);
  const CompiledBlock cb = compile_block(block);
  const auto x = random_matrix(ns, dim, rng);
  std::vector<float> edge_coeff(ne), self_coeff(nd);
  for (float& v : edge_coeff) v = static_cast<float>(rng.next_double(0.1, 1.0));
  for (float& v : self_coeff) v = static_cast<float>(rng.next_double(0.1, 1.0));

  // Forward oracle over the CSR edge list (coefficients are CSR-indexed).
  std::vector<float> ref(nd * dim, 0.0f);
  for (std::size_t i = 0; i < nd; ++i) {
    for (int t = cb.dst_off[i]; t < cb.dst_off[i + 1]; ++t) {
      const auto src = static_cast<std::size_t>(cb.src_of[t]);
      for (std::size_t c = 0; c < dim; ++c) {
        ref[i * dim + c] += edge_coeff[static_cast<std::size_t>(t)] * x[src * dim + c];
      }
    }
    const auto self = static_cast<std::size_t>(cb.self_src[i]);
    for (std::size_t c = 0; c < dim; ++c) {
      ref[i * dim + c] += self_coeff[i] * x[self * dim + c];
    }
  }
  std::vector<float> got(nd * dim);
  kernels::aggregate_coeff(cb, edge_coeff.data(), self_coeff.data(), x.data(),
                           dim, got.data());
  expect_close(ref, got, "aggregate_coeff");

  // Backward oracle: scatter g through the same weights, transposed.
  const auto g = random_matrix(nd, dim, rng);
  std::vector<float> gref(ns * dim, 0.0f);
  for (std::size_t i = 0; i < nd; ++i) {
    for (int t = cb.dst_off[i]; t < cb.dst_off[i + 1]; ++t) {
      const auto src = static_cast<std::size_t>(cb.src_of[t]);
      for (std::size_t c = 0; c < dim; ++c) {
        gref[src * dim + c] +=
            edge_coeff[static_cast<std::size_t>(t)] * g[i * dim + c];
      }
    }
    const auto self = static_cast<std::size_t>(cb.self_src[i]);
    for (std::size_t c = 0; c < dim; ++c) {
      gref[self * dim + c] += self_coeff[i] * g[i * dim + c];
    }
  }
  std::vector<float> ggot(ns * dim);
  kernels::aggregate_coeff_grad(cb, edge_coeff.data(), self_coeff.data(),
                                g.data(), dim, ggot.data());
  expect_close(gref, ggot, "aggregate_coeff_grad");
}

TEST(Kernels, SageInputGradMatchesOracle) {
  moment::util::Pcg32 rng(17);
  const std::size_t nd = 45, ns = 110, ne = 400, dim = 23;
  const Block block = random_block(nd, ns, ne, rng);
  const CompiledBlock cb = compile_block(block);
  const auto grad_self = random_matrix(nd, dim, rng);
  const auto grad_mean = random_matrix(nd, dim, rng);

  std::vector<float> ref(ns * dim, 0.0f);
  for (std::size_t i = 0; i < nd; ++i) {
    const auto self = static_cast<std::size_t>(cb.self_src[i]);
    for (std::size_t c = 0; c < dim; ++c) {
      ref[self * dim + c] += grad_self[i * dim + c];
    }
    for (int t = cb.dst_off[i]; t < cb.dst_off[i + 1]; ++t) {
      const auto src = static_cast<std::size_t>(cb.src_of[t]);
      for (std::size_t c = 0; c < dim; ++c) {
        ref[src * dim + c] += cb.inv_deg[i] * grad_mean[i * dim + c];
      }
    }
  }
  std::vector<float> got(ns * dim);
  kernels::sage_input_grad(cb, grad_self.data(), grad_mean.data(), dim,
                           got.data());
  expect_close(ref, got, "sage_input_grad");
}

TEST(Kernels, ResultsAreBitwiseThreadCountInvariant) {
  moment::util::Pcg32 rng(23);
  const std::size_t m = 130, k = 77, n = 53;
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  const std::size_t nd = 70, ns = 160, ne = 900, dim = 31;
  const Block block = random_block(nd, ns, ne, rng);
  const CompiledBlock cb = compile_block(block);
  const auto x = random_matrix(ns, dim, rng);

  moment::util::set_compute_pool_threads(1);
  std::vector<float> c1(m * n), agg1(nd * dim);
  kernels::gemm(m, k, n, a.data(), b.data(), c1.data(), false);
  kernels::aggregate_mean(cb, x.data(), dim, agg1.data());

  moment::util::set_compute_pool_threads(4);
  std::vector<float> c4(m * n), agg4(nd * dim);
  kernels::gemm(m, k, n, a.data(), b.data(), c4.data(), false);
  kernels::aggregate_mean(cb, x.data(), dim, agg4.data());
  moment::util::set_compute_pool_threads(0);  // back to auto

  // Row-partitioned work with fixed per-row accumulation order: bitwise
  // equality, not just tolerance.
  EXPECT_EQ(0, std::memcmp(c1.data(), c4.data(), c1.size() * sizeof(float)));
  EXPECT_EQ(0,
            std::memcmp(agg1.data(), agg4.data(), agg1.size() * sizeof(float)));
}

}  // namespace
