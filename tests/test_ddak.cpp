// Tests for the DDAK module: the epoch workload model (paper-scale traffic
// arithmetic) and the data-distribution-aware knapsack allocator vs the hash
// baseline.

#include <gtest/gtest.h>

#include <numeric>

#include "ddak/ddak.hpp"
#include "ddak/workload.hpp"
#include "graph/datasets.hpp"
#include "runtime/systems.hpp"
#include "topology/machine.hpp"

namespace moment::ddak {
namespace {

/// A synthetic Zipf-flavoured hotness profile over n vertices.
sampling::HotnessProfile synthetic_profile(std::size_t n, double exponent) {
  sampling::HotnessProfile p;
  p.hotness.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.hotness[i] = 1.0 / std::pow(static_cast<double>(i + 1), exponent);
  }
  // Shuffle so vertex id != rank (DDAK must sort, not assume).
  util::Pcg32 rng(5);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(p.hotness[i - 1], p.hotness[rng.next_below(
        static_cast<std::uint32_t>(i))]);
  }
  p.fetches_per_batch = 100.0;
  p.batch_size = 10;
  p.profiled_batches = 1;
  return p;
}

std::vector<Bin> simple_bins(std::size_t n) {
  // One GPU cache (2% capacity), one CPU cache (5%), two SSDs.
  std::vector<Bin> bins(4);
  bins[0] = {"GPU0.HBM", 0, topology::StorageTier::kGpuHbm, 0.02 * n, 40.0, {}};
  bins[1] = {"DRAM0", 1, topology::StorageTier::kCpuDram, 0.05 * n, 25.0, {}};
  bins[2] = {"SSD0", 2, topology::StorageTier::kSsd, static_cast<double>(n),
             25.0, {}};
  bins[3] = {"SSD1", 3, topology::StorageTier::kSsd, static_cast<double>(n),
             10.0, {}};
  return bins;
}

TEST(HotShare, MonotoneAndBounded) {
  const auto p = synthetic_profile(1000, 1.0);
  const double s1 = hot_traffic_share(p, 0.01);
  const double s10 = hot_traffic_share(p, 0.10);
  const double s100 = hot_traffic_share(p, 1.0);
  EXPECT_GT(s1, 0.0);
  EXPECT_LT(s1, s10);
  EXPECT_LT(s10, s100);
  EXPECT_NEAR(s100, 1.0, 1e-9);
}

TEST(HotShare, RangeAdditive) {
  const auto p = synthetic_profile(500, 0.8);
  const double a = hot_traffic_share_range(p, 0.0, 0.05);
  const double b = hot_traffic_share_range(p, 0.05, 0.20);
  const double both = hot_traffic_share_range(p, 0.0, 0.20);
  EXPECT_NEAR(a + b, both, 1e-9);
  EXPECT_EQ(hot_traffic_share_range(p, 0.3, 0.2), 0.0);
}

TEST(Workload, PaperScaleArithmetic) {
  const auto ds = graph::make_dataset(graph::DatasetId::kPA, 3);
  auto p = synthetic_profile(ds.scaled.vertices, 1.0);
  p.batch_size = 16;
  p.fetches_per_batch = 16 * 50.0;  // 50 unique fetches per seed
  CacheConfig cache;
  const auto w = make_epoch_workload(ds, p, cache, 4);
  EXPECT_EQ(w.num_gpus, 4);
  EXPECT_EQ(w.batch_size, 8000u);
  EXPECT_NEAR(w.fetches_per_batch, 8000.0 * 50.0, 1.0);
  // 1% of 111M train vertices over batches of 8000.
  EXPECT_EQ(w.batches_per_epoch,
            static_cast<std::size_t>(std::ceil(1'110'000.0 / 8000.0)));
  EXPECT_NEAR(w.total_bytes,
              w.fetches_per_batch * 4096.0 * w.batches_per_epoch, 1.0);
  EXPECT_NEAR(w.per_gpu_bytes * 4, w.total_bytes, 1.0);
  EXPECT_NEAR(w.gpu_hit_fraction + w.cpu_hit_fraction + w.ssd_fraction, 1.0,
              1e-9);
  EXPECT_GT(w.gpu_hit_fraction, 0.0);
}

TEST(Workload, PartitionedCacheCoversMore) {
  const auto ds = graph::make_dataset(graph::DatasetId::kPA, 4);
  auto p = synthetic_profile(ds.scaled.vertices, 1.0);
  CacheConfig repl;
  CacheConfig part;
  part.gpu_cache_mode = GpuCacheMode::kPartitioned;
  const auto wr = make_epoch_workload(ds, p, repl, 4);
  const auto wp = make_epoch_workload(ds, p, part, 4);
  // Disjoint slices cache 4x the vertices, so the hit share must be higher.
  EXPECT_GT(wp.gpu_hit_fraction, wr.gpu_hit_fraction);
}

TEST(Workload, RejectsEmptyProfile) {
  const auto ds = graph::make_dataset(graph::DatasetId::kPA, 4);
  sampling::HotnessProfile empty;
  EXPECT_THROW(make_epoch_workload(ds, empty, CacheConfig{}, 2),
               std::invalid_argument);
  const auto p = synthetic_profile(ds.scaled.vertices, 1.0);
  EXPECT_THROW(make_epoch_workload(ds, p, CacheConfig{}, 0),
               std::invalid_argument);
}

TEST(Ddak, PlacesEveryVertexOnce) {
  const auto p = synthetic_profile(2000, 1.0);
  const auto bins = simple_bins(2000);
  const auto r = ddak_place(bins, p);
  std::size_t placed = 0;
  for (auto b : r.bin_of_vertex) {
    ASSERT_GE(b, 0);
    ASSERT_LT(b, 4);
    ++placed;
  }
  EXPECT_EQ(placed, 2000u);
  EXPECT_EQ(std::accumulate(r.bin_count.begin(), r.bin_count.end(), 0ull),
            2000ull);
}

TEST(Ddak, RespectsCapacities) {
  const auto p = synthetic_profile(2000, 1.0);
  const auto bins = simple_bins(2000);
  const auto r = ddak_place(bins, p);
  for (std::size_t i = 0; i < bins.size(); ++i) {
    EXPECT_LE(static_cast<double>(r.bin_count[i]),
              bins[i].capacity_vertices + 1.0)
        << bins[i].name;
  }
}

TEST(Ddak, HotVerticesLandInFastTiers) {
  const auto p = synthetic_profile(2000, 1.2);
  const auto bins = simple_bins(2000);
  const auto r = ddak_place(bins, p);
  // The single hottest vertex must be in the GPU cache.
  const auto order = p.by_hotness_desc();
  EXPECT_EQ(r.bin_of_vertex[order[0]], 0);
  // GPU bin achieves far more traffic share than its 2% capacity share.
  EXPECT_GT(r.bin_traffic_share[0], 0.10);
}

TEST(Ddak, TracksTrafficTargetsBetterThanHash) {
  const auto p = synthetic_profile(4000, 1.0);
  // Asymmetric SSD targets (e.g. one SSD sits behind a contended bus).
  auto bins = simple_bins(4000);
  const auto ddak = ddak_place(bins, p);
  const auto hash = hash_place(bins, p);
  EXPECT_LT(ddak.traffic_share_error, hash.traffic_share_error);
  // DDAK's SSD split should reflect the 25:10 target ratio.
  EXPECT_GT(ddak.bin_traffic_share[2], ddak.bin_traffic_share[3]);
  // Hash stripes SSD *traffic* evenly (uniform vertex assignment).
  EXPECT_NEAR(hash.bin_traffic_share[2], hash.bin_traffic_share[3], 0.05);
}

TEST(Ddak, PoolSizeChangesGranularityNotCoverage) {
  const auto p = synthetic_profile(3000, 1.0);
  const auto bins = simple_bins(3000);
  DdakOptions small;
  small.pool_size = 10;
  DdakOptions large;
  large.pool_size = 500;
  const auto rs = ddak_place(bins, p, small);
  const auto rl = ddak_place(bins, p, large);
  EXPECT_EQ(std::accumulate(rs.bin_count.begin(), rs.bin_count.end(), 0ull),
            3000ull);
  EXPECT_EQ(std::accumulate(rl.bin_count.begin(), rl.bin_count.end(), 0ull),
            3000ull);
  // Pooling is a planning-cost/precision trade-off (paper fixes n = 100);
  // both granularities must stay in a sane tracking range. (With partially
  // infeasible targets the greedy isn't monotone in pool size, so we do not
  // assert an ordering.)
  EXPECT_LT(rs.traffic_share_error, 0.8);
  EXPECT_LT(rl.traffic_share_error, 0.8);
  EXPECT_THROW(ddak_place(bins, p, DdakOptions{0}), std::invalid_argument);
}

TEST(Ddak, ThrowsWhenBinsTooSmall) {
  const auto p = synthetic_profile(100, 1.0);
  std::vector<Bin> bins(1);
  bins[0] = {"SSD0", 0, topology::StorageTier::kSsd, 50.0, 1.0, {}};
  EXPECT_THROW(ddak_place(bins, p), std::invalid_argument);
  EXPECT_THROW(hash_place(bins, p), std::invalid_argument);
}

TEST(HashPlace, CachesStillHoldHotSet) {
  // GIDS-style static cache: hash only stripes the SSD remainder.
  const auto p = synthetic_profile(2000, 1.2);
  const auto bins = simple_bins(2000);
  const auto r = hash_place(bins, p);
  const auto order = p.by_hotness_desc();
  EXPECT_EQ(r.bin_of_vertex[order[0]], 0);   // hottest in GPU
  // GPU fills to capacity.
  EXPECT_EQ(r.bin_count[0], static_cast<std::size_t>(0.02 * 2000));
}

TEST(HashPlace, RequiresSsdBin) {
  const auto p = synthetic_profile(100, 1.0);
  std::vector<Bin> bins(1);
  bins[0] = {"GPU0.HBM", 0, topology::StorageTier::kGpuHbm, 200.0, 1.0, {}};
  EXPECT_THROW(hash_place(bins, p), std::invalid_argument);
}

TEST(MakeBins, FromFlowGraph) {
  const auto spec = topology::make_machine_a();
  const auto topo = topology::instantiate(
      spec, topology::classic_placement(spec, 'c', 4, 8));
  const auto fg = topology::compile_flow_graph(topo);
  std::vector<double> traffic(fg.storage.size(), 1.0);
  const auto bins = make_bins(topo, fg, traffic, 10000, 0.005, 0.01);
  ASSERT_EQ(bins.size(), fg.storage.size());
  double gpu_cap = 0.0;
  for (const auto& b : bins) {
    if (b.tier == topology::StorageTier::kGpuHbm) gpu_cap += b.capacity_vertices;
    if (b.tier == topology::StorageTier::kCpuDram) {
      // "CPU caches 1% of the vertices" is a total budget split per socket.
      EXPECT_NEAR(b.capacity_vertices, 0.01 * 10000 / 2, 1.0);
    }
    if (b.tier == topology::StorageTier::kSsd) {
      EXPECT_GE(b.capacity_vertices, 10000.0);
    }
  }
  EXPECT_NEAR(gpu_cap, 4 * 0.005 * 10000, 1.0);
}

TEST(ToFlowDemand, TierBudgetsMatchWorkload) {
  const auto ds = graph::make_dataset(graph::DatasetId::kIG, 4);
  auto p = synthetic_profile(ds.scaled.vertices, 1.0);
  const auto w = make_epoch_workload(ds, p, CacheConfig{}, 2);
  const auto spec = topology::make_machine_a();
  const auto topo = topology::instantiate(
      spec, topology::classic_placement(spec, 'c', 2, 8));
  const auto fg = topology::compile_flow_graph(topo);
  const auto demand = to_flow_demand(w, fg);
  ASSERT_EQ(demand.per_gpu_bytes.size(), 2u);
  ASSERT_EQ(demand.per_tier_bytes.size(), 3u);
  EXPECT_NEAR(demand.per_tier_bytes[0] + demand.per_tier_bytes[1] +
                  demand.per_tier_bytes[2],
              w.total_bytes, w.total_bytes * 1e-9);
  // Uniform hash mode pins every SSD to an equal share.
  const auto hash_demand = to_flow_demand(w, fg, SupplyModel::kUniformHash);
  double ssd_bytes = 0.0;
  int ssd_count = 0;
  for (std::size_t i = 0; i < fg.storage.size(); ++i) {
    if (fg.storage[i].tier == topology::StorageTier::kSsd) {
      EXPECT_GE(hash_demand.per_storage_bytes[i], 0.0);
      ssd_bytes += hash_demand.per_storage_bytes[i];
      ++ssd_count;
    }
  }
  EXPECT_EQ(ssd_count, 8);
  EXPECT_NEAR(ssd_bytes, w.total_bytes * w.ssd_fraction,
              w.total_bytes * 1e-9);
}

}  // namespace
}  // namespace moment::ddak
