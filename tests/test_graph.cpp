// Unit tests for the graph substrate: CSR construction, persistence,
// generators (skew properties), and the Table-2 dataset presets.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "graph/csr.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"

namespace moment::graph {
namespace {

EdgeList small_edges() {
  EdgeList el;
  el.num_vertices = 5;
  el.edges = {{0, 1}, {0, 2}, {1, 2}, {3, 0}, {3, 4}};
  return el;
}

TEST(CsrGraph, BuildsDirected) {
  const CsrGraph g = CsrGraph::from_edges(small_edges(), false);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_EQ(g.degree(3), 2u);
  const auto n0 = g.neighbors(0);
  EXPECT_EQ(std::vector<VertexId>(n0.begin(), n0.end()),
            (std::vector<VertexId>{1, 2}));
}

TEST(CsrGraph, BuildsUndirected) {
  const CsrGraph g = CsrGraph::from_edges(small_edges(), true);
  EXPECT_EQ(g.num_edges(), 10u);
  EXPECT_EQ(g.degree(2), 2u);  // reverse edges from 0 and 1
  EXPECT_EQ(g.degree(0), 3u);  // 1, 2 out plus reverse of (3,0)
}

TEST(CsrGraph, RejectsOutOfRangeVertex) {
  EdgeList el;
  el.num_vertices = 2;
  el.edges = {{0, 5}};
  EXPECT_THROW(CsrGraph::from_edges(el, false), std::out_of_range);
}

TEST(CsrGraph, DegreeSumEqualsEdges) {
  const CsrGraph g = CsrGraph::from_edges(small_edges(), true);
  EdgeIndex total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) total += g.degree(v);
  EXPECT_EQ(total, g.num_edges());
}

TEST(CsrGraph, SaveLoadRoundtrip) {
  const CsrGraph g = CsrGraph::from_edges(small_edges(), true);
  const std::string path =
      (std::filesystem::temp_directory_path() / "moment_csr_test.bin").string();
  g.save(path);
  const CsrGraph loaded = CsrGraph::load(path);
  std::remove(path.c_str());
  ASSERT_EQ(loaded.num_vertices(), g.num_vertices());
  ASSERT_EQ(loaded.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = loaded.neighbors(v);
    ASSERT_EQ(std::vector<VertexId>(a.begin(), a.end()),
              std::vector<VertexId>(b.begin(), b.end()));
  }
}

TEST(CsrGraph, LoadRejectsGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "moment_bad.bin").string();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a graph", f);
  std::fclose(f);
  EXPECT_THROW(CsrGraph::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(CsrGraph, TopologyBytesCountsArrays) {
  const CsrGraph g = CsrGraph::from_edges(small_edges(), false);
  EXPECT_EQ(g.topology_bytes(),
            6 * sizeof(EdgeIndex) + 5 * sizeof(VertexId));
}

TEST(Generators, RmatDeterministic) {
  RmatParams p;
  p.num_vertices = 1 << 10;
  p.num_edges = 5000;
  const CsrGraph a = generate_rmat(p);
  const CsrGraph b = generate_rmat(p);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (VertexId v = 0; v < a.num_vertices(); v += 17) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_EQ(std::vector<VertexId>(na.begin(), na.end()),
              std::vector<VertexId>(nb.begin(), nb.end()));
  }
}

TEST(Generators, RmatSeedChangesGraph) {
  RmatParams p;
  p.num_vertices = 1 << 10;
  p.num_edges = 5000;
  const CsrGraph a = generate_rmat(p);
  p.seed = 777;
  const CsrGraph b = generate_rmat(p);
  bool differs = false;
  for (VertexId v = 0; v < a.num_vertices() && !differs; ++v) {
    differs = a.degree(v) != b.degree(v);
  }
  EXPECT_TRUE(differs);
}

TEST(Generators, RmatIsSkewedErIsNot) {
  RmatParams rp;
  rp.num_vertices = 1 << 12;
  rp.num_edges = 40000;
  const DegreeStats rmat = degree_stats(generate_rmat(rp));

  ErdosRenyiParams ep;
  ep.num_vertices = 1 << 12;
  ep.num_edges = 40000;
  const DegreeStats er = degree_stats(generate_erdos_renyi(ep));

  EXPECT_GT(rmat.gini, er.gini + 0.2);
  EXPECT_GT(rmat.top1pct_share, er.top1pct_share * 2.0);
}

TEST(Generators, RmatEdgeCountExact) {
  RmatParams p;
  p.num_vertices = 512;
  p.num_edges = 1000;
  p.undirected = false;
  EXPECT_EQ(generate_rmat(p).num_edges(), 1000u);
  p.undirected = true;
  EXPECT_EQ(generate_rmat(p).num_edges(), 2000u);
}

TEST(Generators, RmatRejectsBadProbabilities) {
  RmatParams p;
  p.a = 0.6;
  p.b = 0.3;
  p.c = 0.3;  // a+b+c > 1
  EXPECT_THROW(generate_rmat(p), std::invalid_argument);
}

TEST(Generators, PowerLawSkewTracksExponent) {
  PowerLawParams p;
  p.num_vertices = 1 << 12;
  p.avg_degree = 20.0;
  p.exponent = 0.6;
  const DegreeStats mild = degree_stats(generate_power_law(p));
  p.exponent = 1.4;
  const DegreeStats strong = degree_stats(generate_power_law(p));
  EXPECT_GT(strong.gini, mild.gini);
}

TEST(Datasets, PresetsMatchPaperShape) {
  for (DatasetId id : kAllDatasets) {
    const Dataset ds = make_dataset(id, /*scale_shift=*/4);
    EXPECT_GT(ds.paper.vertices, 100'000'000ull) << ds.name;
    EXPECT_EQ(ds.paper.feature_dim, 1024u);
    EXPECT_EQ(ds.scaled.vertices, ds.csr.num_vertices());
    EXPECT_GT(ds.upscale(), 1000.0) << ds.name;
    EXPECT_GT(ds.num_train_vertices_scaled(), 0u);
  }
}

TEST(Datasets, OrderingMatchesTable2) {
  // CL has the most vertices; PA the fewest. UK has the most edges.
  const auto pa = make_dataset(DatasetId::kPA, 4);
  const auto cl = make_dataset(DatasetId::kCL, 4);
  const auto uk = make_dataset(DatasetId::kUK, 4);
  EXPECT_LT(pa.paper.vertices, cl.paper.vertices);
  EXPECT_GT(uk.paper.edges, pa.paper.edges);
  EXPECT_GT(cl.paper.feature_bytes, uk.paper.feature_bytes);
}

TEST(Datasets, ScaleShiftShrinks) {
  const auto big = make_dataset(DatasetId::kPA, 2);
  const auto small = make_dataset(DatasetId::kPA, 4);
  EXPECT_GT(big.scaled.vertices, small.scaled.vertices);
  EXPECT_THROW(make_dataset(DatasetId::kPA, -1), std::invalid_argument);
}

TEST(Datasets, ScaledGraphKeepsSkew) {
  const auto ds = make_dataset(DatasetId::kIG, 3);
  const DegreeStats s = degree_stats(ds.csr);
  EXPECT_GT(s.gini, 0.4) << "RMAT preset lost its skew";
  EXPECT_GT(s.top1pct_share, 0.10);
}

}  // namespace
}  // namespace moment::graph
