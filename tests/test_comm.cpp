// Tests for the topology-aware communication layer: CommPlan compilation
// (determinism, schedule shape, chunk sizing), contention-costed prediction,
// link-byte conservation, the engine's planned all-reduce (bit-identical to
// the flat path by construction), and the peer-HBM gather path through
// TieredFeatureClient. Registered under the `comm` CTest label (also run
// under TSan — see DESIGN.md).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "comm/plan.hpp"
#include "comm/planner.hpp"
#include "gnn/synthetic.hpp"
#include "graph/generators.hpp"
#include "iostack/feature_store.hpp"
#include "runtime/parallel_trainer.hpp"
#include "topology/machine.hpp"
#include "util/rng.hpp"

namespace moment::comm {
namespace {

topology::Topology make_topo(char which, int gpus) {
  const auto spec = topology::make_machine_a();
  return topology::instantiate(
      spec, topology::classic_placement(spec, which, gpus, 8));
}

/// Field-by-field structural equality (CommPlan has no operator==).
void expect_plans_equal(const CommPlan& a, const CommPlan& b) {
  EXPECT_EQ(a.algo, b.algo);
  EXPECT_EQ(a.num_gpus, b.num_gpus);
  EXPECT_EQ(a.num_links, b.num_links);
  EXPECT_EQ(a.ring_order, b.ring_order);
  ASSERT_EQ(a.chunk_share.size(), b.chunk_share.size());
  for (std::size_t i = 0; i < a.chunk_share.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.chunk_share[i], b.chunk_share[i]);
  }
  EXPECT_EQ(a.route_of, b.route_of);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t s = 0; s < a.steps.size(); ++s) {
    ASSERT_EQ(a.steps[s].transfers.size(), b.steps[s].transfers.size());
    for (std::size_t t = 0; t < a.steps[s].transfers.size(); ++t) {
      const Transfer& x = a.steps[s].transfers[t];
      const Transfer& y = b.steps[s].transfers[t];
      EXPECT_EQ(x.src_gpu, y.src_gpu);
      EXPECT_EQ(x.dst_gpu, y.dst_gpu);
      EXPECT_DOUBLE_EQ(x.fraction, y.fraction);
      EXPECT_EQ(x.route, y.route);
    }
  }
}

TEST(Planner, DeterministicCompilation) {
  // Identical topologies must yield identical plans — the engine, the
  // clients and the simulator all assume one canonical plan per machine.
  const auto topo1 = make_topo('c', 4);
  const auto topo2 = make_topo('c', 4);
  const CommPlanner p1(topo1);
  const CommPlanner p2(topo2);
  for (auto algo : {AllReduceAlgo::kFlat, AllReduceAlgo::kRing,
                    AllReduceAlgo::kTree, AllReduceAlgo::kAuto}) {
    const CommPlan a = p1.plan(algo);
    const CommPlan b = p2.plan(algo);
    expect_plans_equal(a, b);
    const double payload = 8.0 * 1024 * 1024;
    EXPECT_DOUBLE_EQ(a.predicted_seconds(payload),
                     b.predicted_seconds(payload));
  }
}

TEST(Planner, PairBandwidthMatrix) {
  const auto topo = make_topo('c', 4);
  const CommPlanner planner(topo);
  ASSERT_EQ(planner.num_gpus(), 4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i == j) {
        EXPECT_EQ(planner.pair_bandwidth(i, j), 0.0);
      } else {
        EXPECT_GT(planner.pair_bandwidth(i, j), 0.0) << i << "->" << j;
      }
    }
  }
}

TEST(Planner, RingScheduleShape) {
  const auto topo = make_topo('c', 4);
  const CommPlan plan = CommPlanner(topo).plan(AllReduceAlgo::kRing);
  const int n = plan.num_gpus;
  ASSERT_EQ(n, 4);
  // Reduce-scatter + all-gather: 2(N-1) steps, N concurrent hops each.
  ASSERT_EQ(plan.steps.size(), static_cast<std::size_t>(2 * (n - 1)));
  for (const Step& s : plan.steps) {
    EXPECT_EQ(s.transfers.size(), static_cast<std::size_t>(n));
  }
  // ring_order is a GPU permutation anchored at 0.
  ASSERT_EQ(plan.ring_order.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(plan.ring_order[0], 0);
  auto sorted = plan.ring_order;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < n; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  // Chunk shares: one per position, each positive, summing to 1.
  ASSERT_EQ(plan.chunk_share.size(), static_cast<std::size_t>(n));
  double sum = 0.0;
  for (double s : plan.chunk_share) {
    EXPECT_GT(s, 0.0);
    sum += s;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_EQ(plan.num_links, topo.num_links());
}

TEST(Planner, PeerRoutesCoverAllPairs) {
  const auto topo = make_topo('c', 4);
  const CommPlan plan = CommPlanner(topo).plan(AllReduceAlgo::kRing);
  for (int i = 0; i < plan.num_gpus; ++i) {
    for (int j = 0; j < plan.num_gpus; ++j) {
      const PeerRoute* r = plan.peer_route(i, j);
      if (i == j) {
        EXPECT_EQ(r, nullptr);
        continue;
      }
      ASSERT_NE(r, nullptr) << i << "->" << j;
      EXPECT_TRUE(r->valid());
      EXPECT_EQ(r->src_gpu, i);
      EXPECT_EQ(r->dst_gpu, j);
      EXPECT_GT(r->bottleneck_bw(), 0.0);
      EXPECT_GT(r->max_flow_bw, 0.0);
      for (const RouteLink& rl : r->links) {
        EXPECT_GE(rl.link, 0);
        EXPECT_GT(rl.capacity, 0.0);
      }
    }
  }
  EXPECT_EQ(plan.peer_route(-1, 0), nullptr);
  EXPECT_EQ(plan.peer_route(0, plan.num_gpus), nullptr);
}

TEST(Plan, SchedulePayloadMatchesAnalyticVolume) {
  const auto topo = make_topo('c', 4);
  const CommPlanner planner(topo);
  const double payload = 1.0 * 1024 * 1024;
  // Flat hub-and-spoke: (N-1) spokes in, (N-1) spokes out.
  const CommPlan flat = planner.plan(AllReduceAlgo::kFlat);
  EXPECT_NEAR(flat.schedule_payload_bytes(payload), 2.0 * payload * 3.0,
              1e-6);
  // Ring reduce-scatter + all-gather: 2(N-1) steps each injecting the whole
  // payload once across the N hops (shares sum to 1).
  const CommPlan ring = planner.plan(AllReduceAlgo::kRing);
  EXPECT_NEAR(ring.schedule_payload_bytes(payload), 2.0 * payload * 3.0,
              1e-6);
}

TEST(Plan, LinkByteCountersConserved) {
  // account() must add exactly what link_volume() reports, and both must
  // equal the schedule walked by hand: every transfer charges
  // llround(fraction * payload) to each link on its route.
  const auto topo = make_topo('c', 4);
  const double payload = 48.0 * 1024 * 1024;
  for (auto algo : {AllReduceAlgo::kFlat, AllReduceAlgo::kRing,
                    AllReduceAlgo::kTree}) {
    const CommPlan plan = CommPlanner(topo).plan(algo);
    LinkCounters counters(plan.num_links);
    plan.account(payload, counters);
    const auto vols = plan.link_volume(payload);
    std::uint64_t vol_total = 0;
    for (const LinkVolume& v : vols) {
      EXPECT_EQ(counters.ab(v.link), v.ab) << to_string(algo);
      EXPECT_EQ(counters.ba(v.link), v.ba) << to_string(algo);
      vol_total += v.ab + v.ba;
    }
    std::uint64_t schedule_total = 0;
    for (const Step& s : plan.steps) {
      for (const Transfer& t : s.transfers) {
        const auto bytes = static_cast<std::uint64_t>(
            std::llround(t.fraction * payload));
        ASSERT_GE(t.route, 0);
        schedule_total +=
            bytes * plan.routes[static_cast<std::size_t>(t.route)].links.size();
      }
    }
    EXPECT_EQ(vol_total, schedule_total) << to_string(algo);
    // reset() really zeroes.
    counters.reset();
    for (const auto v : counters.snapshot()) EXPECT_EQ(v, 0u);
  }
}

TEST(Plan, RingBeatsFlatOnMultiGpuPresets) {
  // The point of the planner: spreading the payload over all ring hops beats
  // funnelling 2(N-1) payloads through the hub's single link.
  const double payload = 64.0 * 1024 * 1024;
  for (int gpus : {4, 8}) {
    const auto topo = make_topo('c', gpus);
    const CommPlanner planner(topo);
    const double flat =
        planner.plan(AllReduceAlgo::kFlat).predicted_seconds(payload);
    const double ring =
        planner.plan(AllReduceAlgo::kRing).predicted_seconds(payload);
    EXPECT_LT(ring, flat) << gpus << " GPUs";
  }
}

TEST(Plan, AutoPicksLowestPredictedTime) {
  const auto topo = make_topo('c', 4);
  const CommPlanner planner(topo);
  const double payload = CommPlanner::kDefaultReferencePayload;
  const double best =
      planner.plan(AllReduceAlgo::kAuto).predicted_seconds(payload);
  for (auto algo : {AllReduceAlgo::kFlat, AllReduceAlgo::kRing,
                    AllReduceAlgo::kTree}) {
    EXPECT_LE(best, planner.plan(algo).predicted_seconds(payload) + 1e-15);
  }
}

TEST(Plan, ParseAlgoRoundTrip) {
  EXPECT_EQ(parse_algo("flat"), AllReduceAlgo::kFlat);
  EXPECT_EQ(parse_algo("ring"), AllReduceAlgo::kRing);
  EXPECT_EQ(parse_algo("tree"), AllReduceAlgo::kTree);
  EXPECT_EQ(parse_algo("auto"), AllReduceAlgo::kAuto);
  EXPECT_THROW(parse_algo("bogus"), std::invalid_argument);
  for (auto algo : {AllReduceAlgo::kFlat, AllReduceAlgo::kRing,
                    AllReduceAlgo::kTree, AllReduceAlgo::kAuto}) {
    EXPECT_EQ(parse_algo(to_string(algo)), algo);
  }
}

TEST(Plan, DegeneratePlansForTinyMachines) {
  // A 1-GPU machine needs no communication: empty schedule, zero cost.
  const auto topo = make_topo('c', 1);
  const CommPlan plan = CommPlanner(topo).plan(AllReduceAlgo::kAuto);
  EXPECT_EQ(plan.num_gpus, 1);
  EXPECT_TRUE(plan.steps.empty());
  EXPECT_EQ(plan.predicted_seconds(1 << 20), 0.0);
  EXPECT_TRUE(plan.link_volume(1 << 20).empty());
}

// ---------------------------------------------------------------------------
// Engine integration: the planned all-reduce must be a pure transport model.

struct TrainerRig {
  graph::CsrGraph g;
  gnn::SyntheticTask task;
  std::vector<std::unique_ptr<gnn::InMemoryFeatures>> features;
  std::vector<gnn::FeatureProvider*> providers;

  static TrainerRig make(int workers) {
    TrainerRig r;
    graph::RmatParams gp;
    gp.num_vertices = 1024;
    gp.num_edges = 8000;
    r.g = graph::generate_rmat(gp);
    r.task = gnn::make_synthetic_task(r.g, 4, 12, 0.3, 9);
    for (int w = 0; w < workers; ++w) {
      r.features.push_back(
          std::make_unique<gnn::InMemoryFeatures>(r.task.features));
      r.providers.push_back(r.features.back().get());
    }
    return r;
  }

  gnn::ModelConfig model_config() const {
    gnn::ModelConfig cfg;
    cfg.kind = gnn::ModelKind::kGraphSage;
    cfg.in_dim = 12;
    cfg.hidden_dim = 16;
    cfg.num_classes = 4;
    return cfg;
  }
};

TEST(EngineComm, PlannedAllReduceBitIdenticalToFlat) {
  // Acceptance criterion: the plan changes the modeled transport only. The
  // loss trajectory must be BIT-identical across no-plan, flat-plan and
  // ring-plan runs on the 4-GPU preset (same fixed-order reduction kernel).
  const auto topo = make_topo('c', 4);
  const CommPlanner planner(topo);
  const CommPlan flat = planner.plan(AllReduceAlgo::kFlat);
  const CommPlan ring = planner.plan(AllReduceAlgo::kRing);
  LinkCounters flat_counters(flat.num_links);
  LinkCounters ring_counters(ring.num_links);

  TrainerRig rig_none = TrainerRig::make(4);
  TrainerRig rig_flat = TrainerRig::make(4);
  TrainerRig rig_ring = TrainerRig::make(4);
  auto train = sampling::select_train_vertices(rig_none.g, 0.25, 2);

  runtime::EngineOptions none_opts;
  runtime::EngineOptions flat_opts;
  flat_opts.comm_plan = &flat;
  flat_opts.link_counters = &flat_counters;
  runtime::EngineOptions ring_opts;
  ring_opts.comm_plan = &ring;
  ring_opts.link_counters = &ring_counters;

  runtime::DataParallelTrainer none(rig_none.g, rig_none.providers,
                                    rig_none.model_config(), {5, 5}, train,
                                    0.01f, 11, none_opts);
  runtime::DataParallelTrainer with_flat(rig_flat.g, rig_flat.providers,
                                         rig_flat.model_config(), {5, 5},
                                         train, 0.01f, 11, flat_opts);
  runtime::DataParallelTrainer with_ring(rig_ring.g, rig_ring.providers,
                                         rig_ring.model_config(), {5, 5},
                                         train, 0.01f, 11, ring_opts);
  for (int epoch = 0; epoch < 3; ++epoch) {
    const auto a = none.train_epoch(rig_none.task.labels, 32);
    const auto b = with_flat.train_epoch(rig_flat.task.labels, 32);
    const auto c = with_ring.train_epoch(rig_ring.task.labels, 32);
    ASSERT_EQ(a.batches, b.batches);
    ASSERT_EQ(a.batches, c.batches);
    // Bitwise float equality, not near: same kernel, same order.
    EXPECT_EQ(a.mean_loss, b.mean_loss) << "epoch " << epoch;
    EXPECT_EQ(a.mean_loss, c.mean_loss) << "epoch " << epoch;
    EXPECT_EQ(a.mean_accuracy, c.mean_accuracy);
    EXPECT_TRUE(with_ring.replicas_in_sync());
    // Telemetry populated only when a plan is wired.
    EXPECT_TRUE(a.comm.algorithm.empty());
    EXPECT_EQ(b.comm.algorithm, "flat");
    EXPECT_EQ(c.comm.algorithm, "ring");
    EXPECT_GT(c.comm.payload_bytes, 0u);
    EXPECT_GT(c.comm.predicted_comm_s, 0.0);
    EXPECT_FALSE(c.comm.links.empty());
    EXPECT_FALSE(runtime::comm_report(c).empty());
    EXPECT_TRUE(runtime::comm_report(a).empty());
  }
}

TEST(EngineComm, EpochLinkBytesMatchPlanVolume) {
  // Per-epoch modeled bytes == rounds x one all-reduce's link volume,
  // exactly (llround-based accounting on both sides).
  const auto topo = make_topo('c', 4);
  const CommPlan ring = CommPlanner(topo).plan(AllReduceAlgo::kRing);
  LinkCounters counters(ring.num_links);
  TrainerRig rig = TrainerRig::make(4);
  auto train = sampling::select_train_vertices(rig.g, 0.25, 3);
  runtime::EngineOptions opts;
  opts.comm_plan = &ring;
  opts.link_counters = &counters;
  runtime::DataParallelTrainer trainer(rig.g, rig.providers,
                                       rig.model_config(), {5, 5}, train,
                                       0.01f, 17, opts);
  const auto stats = trainer.train_epoch(rig.task.labels, 32);
  ASSERT_GT(stats.rounds, 0u);
  const auto vols =
      ring.link_volume(static_cast<double>(stats.comm.payload_bytes));
  std::uint64_t per_round = 0;
  for (const LinkVolume& v : vols) per_round += v.ab + v.ba;
  EXPECT_EQ(stats.comm.modeled_bytes, per_round * stats.rounds);
  // The engine's per-link deltas must agree with the raw counters.
  std::uint64_t from_links = 0;
  for (const auto& l : stats.comm.links) from_links += l.ab + l.ba;
  EXPECT_EQ(from_links, stats.comm.modeled_bytes);
}

// ---------------------------------------------------------------------------
// Peer-HBM gather path.

constexpr std::size_t kVertices = 512;
constexpr std::size_t kDim = 12;

/// Store whose GPU tier is split into two owned HBM bins (GPU0 / GPU1) plus
/// a CPU bin and two SSD bins — so every client sees local HBM rows, remote
/// HBM rows, cache rows and SSD rows in one batch.
struct PeerRig {
  graph::CsrGraph g;
  gnn::SyntheticTask task;
  std::vector<iostack::BinBacking> bins;
  std::vector<std::int32_t> bov;
  iostack::SsdArray array;
  iostack::TieredFeatureStore store;

  PeerRig()
      : g(make_graph()),
        task(gnn::make_synthetic_task(g, 4, kDim, 0.3, 9)),
        bins({{iostack::BinBacking::Kind::kGpuCache, -1, 0},
              {iostack::BinBacking::Kind::kGpuCache, -1, 1},
              {iostack::BinBacking::Kind::kCpuCache, -1, -1},
              {iostack::BinBacking::Kind::kSsd, 0, -1},
              {iostack::BinBacking::Kind::kSsd, 1, -1}}),
        bov(make_bov()),
        array(2, make_ssd_options()),
        store(task.features, bov, bins, array) {}

  static graph::CsrGraph make_graph() {
    graph::RmatParams gp;
    gp.num_vertices = kVertices;
    gp.num_edges = 4000;
    return graph::generate_rmat(gp);
  }
  static std::vector<std::int32_t> make_bov() {
    std::vector<std::int32_t> bov(kVertices);
    for (std::size_t v = 0; v < kVertices; ++v) {
      if (v < 24) bov[v] = 0;        // GPU0-owned HBM
      else if (v < 48) bov[v] = 1;   // GPU1-owned HBM
      else if (v < 64) bov[v] = 2;   // CPU cache
      else bov[v] = 3 + static_cast<std::int32_t>(v % 2);
    }
    return bov;
  }
  static iostack::SsdOptions make_ssd_options() {
    iostack::SsdOptions opts;
    opts.capacity_bytes = 2ull << 20;
    return opts;
  }
};

std::vector<graph::VertexId> mixed_batch(std::size_t n, util::Pcg32& rng) {
  std::vector<graph::VertexId> vs(n);
  for (auto& v : vs) {
    v = static_cast<graph::VertexId>(rng.next_below(kVertices));
  }
  return vs;
}

void expect_rows_match(const gnn::Tensor& out,
                       std::span<const graph::VertexId> vs,
                       const gnn::Tensor& truth, const char* what) {
  ASSERT_EQ(out.rows(), vs.size());
  for (std::size_t i = 0; i < vs.size(); ++i) {
    EXPECT_EQ(std::memcmp(out.row(i).data(), truth.row(vs[i]).data(),
                          kDim * sizeof(float)),
              0)
        << what << ": row " << i << " (vertex " << vs[i] << ")";
  }
}

TEST(PeerGather, ByteIdenticalAcrossOptionCombos) {
  // Peer-HBM routing is a transport optimisation: with the IO-reduction
  // pipeline fully on, fully off, or anywhere between — and with or without
  // a comm plan at all — gathered bytes are identical to the source tensor.
  const auto topo = make_topo('c', 2);
  const CommPlan plan = CommPlanner(topo).plan(AllReduceAlgo::kRing);
  PeerRig rig;
  iostack::RowCacheOptions cache;
  cache.capacity_rows = 64;
  rig.store.enable_row_cache(cache);

  iostack::GatherOptions naive;
  naive.dedup = false;
  naive.coalesce = false;
  naive.use_cache = false;
  iostack::GatherOptions dedup_only = naive;
  dedup_only.dedup = true;
  iostack::GatherOptions full;  // dedup + coalesce + cache

  LinkCounters counters(plan.num_links);
  iostack::PeerConfig peer0{0, &plan, &counters};
  iostack::TieredFeatureClient peer_naive(rig.store, 256, {}, naive, peer0);
  iostack::TieredFeatureClient peer_dedup(rig.store, 256, {}, dedup_only,
                                          peer0);
  iostack::TieredFeatureClient peer_full(rig.store, 256, {}, full, peer0);
  iostack::TieredFeatureClient storage_path(rig.store, 256, {}, full);
  rig.array.start_all();

  util::Pcg32 rng(123);
  for (int round = 0; round < 6; ++round) {
    const auto vs = mixed_batch(192, rng);
    for (auto* c : {&peer_naive, &peer_dedup, &peer_full, &storage_path}) {
      gnn::Tensor out(vs.size(), kDim);
      c->gather(vs, out);
      expect_rows_match(out, vs, rig.task.features, "peer gather");
    }
  }
  // The peer clients served GPU1-owned rows over the route; the plan-less
  // client fell back to the host authoritative copy.
  for (auto* c : {&peer_naive, &peer_dedup, &peer_full}) {
    EXPECT_GT(c->stats().peer_hits, 0u);
    EXPECT_EQ(c->stats().peer_bytes,
              c->stats().peer_hits * kDim * sizeof(float));
    EXPECT_EQ(c->stats().remote_hbm_host_reads, 0u);
    EXPECT_GT(c->stats().gpu_hits, 0u);  // GPU0-owned rows stay local
  }
  EXPECT_EQ(storage_path.stats().peer_hits, 0u);
  EXPECT_GT(storage_path.stats().remote_hbm_host_reads, 0u);

  // Link counters carry exactly the peer traffic: every peer row charges
  // row bytes to each link of the owner->client route.
  const PeerRoute* route = plan.peer_route(1, 0);
  ASSERT_NE(route, nullptr);
  std::uint64_t expected = 0;
  for (auto* c : {&peer_naive, &peer_dedup, &peer_full}) {
    expected += c->stats().peer_bytes * route->links.size();
  }
  std::uint64_t counted = 0;
  for (const auto v : counters.snapshot()) counted += v;
  EXPECT_EQ(counted, expected);
  rig.array.stop_all();
}

TEST(PeerGather, TwoClientsConcurrentSharedCounters) {
  // TSan target: two clients (one per GPU) gather concurrently against the
  // same store, plan and LinkCounters. Bytes must stay identical and the
  // shared counters must account every peer row from both sides.
  const auto topo = make_topo('c', 2);
  const CommPlan plan = CommPlanner(topo).plan(AllReduceAlgo::kRing);
  PeerRig rig;
  LinkCounters counters(plan.num_links);
  iostack::TieredFeatureClient client0(rig.store, 256, {}, {},
                                       {0, &plan, &counters});
  iostack::TieredFeatureClient client1(rig.store, 256, {}, {},
                                       {1, &plan, &counters});
  rig.array.start_all();

  auto worker = [&](iostack::TieredFeatureClient& client, std::uint64_t seed) {
    util::Pcg32 rng(seed);
    for (int round = 0; round < 8; ++round) {
      const auto vs = mixed_batch(160, rng);
      gnn::Tensor out(vs.size(), kDim);
      client.gather(vs, out);
      expect_rows_match(out, vs, rig.task.features, "concurrent gather");
    }
  };
  std::thread t0(worker, std::ref(client0), 7);
  std::thread t1(worker, std::ref(client1), 8);
  t0.join();
  t1.join();

  EXPECT_GT(client0.stats().peer_hits, 0u);
  EXPECT_GT(client1.stats().peer_hits, 0u);
  const PeerRoute* r10 = plan.peer_route(1, 0);
  const PeerRoute* r01 = plan.peer_route(0, 1);
  ASSERT_NE(r10, nullptr);
  ASSERT_NE(r01, nullptr);
  const std::uint64_t expected =
      client0.stats().peer_bytes * r10->links.size() +
      client1.stats().peer_bytes * r01->links.size();
  std::uint64_t counted = 0;
  for (const auto v : counters.snapshot()) counted += v;
  EXPECT_EQ(counted, expected);
  rig.array.stop_all();
}

}  // namespace
}  // namespace moment::comm
