// Tests for the topology module: device/link model, machine presets, slot
// validation, the Fig.-9 flow-graph compiler, and the predictor.

#include <gtest/gtest.h>

#include "topology/device.hpp"
#include "topology/flow_graph.hpp"
#include "topology/machine.hpp"
#include "topology/predictor.hpp"
#include "util/units.hpp"

namespace moment::topology {
namespace {

using util::gib_per_s;
using util::to_gib_per_s;

TEST(PcieBandwidth, MatchesProfiledRates) {
  EXPECT_NEAR(to_gib_per_s(pcie_bandwidth(4, 16)), 20.0, 0.01);
  EXPECT_NEAR(to_gib_per_s(pcie_bandwidth(4, 4)), 6.5, 0.01);
  EXPECT_GT(pcie_bandwidth(5, 16), pcie_bandwidth(4, 16));
  EXPECT_LT(pcie_bandwidth(3, 16), pcie_bandwidth(4, 16));
  EXPECT_LT(pcie_bandwidth(4, 1), pcie_bandwidth(4, 4));
}

TEST(Topology, DeviceAndLinkBookkeeping) {
  Topology t;
  const DeviceId rc = t.add_device(DeviceKind::kRootComplex, "RC0", 0);
  const DeviceId gpu = t.add_device(DeviceKind::kGpu, "GPU0", 0);
  const LinkId l = t.add_link(rc, gpu, LinkKind::kPcie, 100, 50, "slot");
  EXPECT_EQ(t.num_devices(), 2u);
  EXPECT_EQ(t.num_links(), 1u);
  EXPECT_EQ(t.link(l).bw_ab, 100);
  EXPECT_EQ(t.incident(rc).size(), 1u);
  EXPECT_EQ(t.find("GPU0"), gpu);
  EXPECT_FALSE(t.find("nope").has_value());
  EXPECT_EQ(t.find_link(gpu, rc), l);  // either orientation
  EXPECT_EQ(t.devices_of_kind(DeviceKind::kGpu),
            std::vector<DeviceId>{gpu});
  EXPECT_NE(t.to_string().find("GPU0"), std::string::npos);
}

TEST(MachineSpecs, PresetsAreWellFormed) {
  for (const MachineSpec& spec : {make_machine_a(), make_machine_b()}) {
    EXPECT_GE(spec.slot_groups.size(), 4u) << spec.name;
    EXPECT_GT(spec.ssd_read_bw, 0.0);
    EXPECT_EQ(spec.skeleton.devices_of_kind(DeviceKind::kRootComplex).size(),
              2u);
    EXPECT_EQ(spec.skeleton.devices_of_kind(DeviceKind::kCpuMemory).size(),
              2u);
    EXPECT_EQ(spec.skeleton.devices_of_kind(DeviceKind::kPcieSwitch).size(),
              2u);
    for (const auto& g : spec.slot_groups) {
      EXPECT_TRUE(spec.skeleton.find(g.parent).has_value())
          << spec.name << " group " << g.name;
    }
  }
}

TEST(MachineSpecs, MachineAHasSocketSymmetry) {
  EXPECT_FALSE(make_machine_a().automorphisms.empty());
  EXPECT_TRUE(make_machine_b().automorphisms.empty());
}

TEST(PlacementValidation, CatchesOverflow) {
  const MachineSpec spec = make_machine_a();
  Placement p;
  p.gpus_per_group = {0, 0, 7, 0};  // 7 GPUs = 14 units > 12
  p.ssds_per_group = {0, 0, 0, 0};
  EXPECT_NE(validate_placement(spec, p), "");
  EXPECT_THROW(instantiate(spec, p), std::invalid_argument);
}

TEST(PlacementValidation, CatchesKindMismatch) {
  const MachineSpec spec = make_machine_a();
  Placement p;
  p.gpus_per_group = {1, 0, 0, 0};  // RC0.nvme does not take GPUs
  p.ssds_per_group = {0, 0, 0, 0};
  EXPECT_NE(validate_placement(spec, p), "");
}

TEST(PlacementValidation, ClassicPlacementsValid) {
  for (const MachineSpec& spec : {make_machine_a(), make_machine_b()}) {
    for (char which : {'a', 'b', 'c', 'd'}) {
      for (int gpus : {1, 2, 4}) {
        const Placement p = classic_placement(spec, which, gpus, 8);
        EXPECT_EQ(validate_placement(spec, p), "")
            << spec.name << " " << which << " g=" << gpus;
        EXPECT_EQ(p.total_gpus(), gpus);
        EXPECT_EQ(p.total_ssds(), 8);
      }
    }
  }
  EXPECT_THROW(classic_placement(make_machine_a(), 'z', 4, 8),
               std::invalid_argument);
}

TEST(PlacementValidation, MomentFig7PlacementValid) {
  const MachineSpec spec = make_machine_b();
  const Placement p = moment_placement_machine_b();
  EXPECT_EQ(validate_placement(spec, p), "");
  EXPECT_EQ(p.total_gpus(), 4);
  EXPECT_EQ(p.total_ssds(), 8);
}

TEST(Instantiate, AddsDevicesAndLinks) {
  const MachineSpec spec = make_machine_a();
  const Placement p = classic_placement(spec, 'c', 4, 8);
  const Topology topo = instantiate(spec, p);
  EXPECT_EQ(topo.devices_of_kind(DeviceKind::kGpu).size(), 4u);
  EXPECT_EQ(topo.devices_of_kind(DeviceKind::kSsd).size(), 8u);
  for (DeviceId d : topo.devices_of_kind(DeviceKind::kGpu)) {
    EXPECT_EQ(topo.incident(d).size(), 1u);
  }
}

TEST(Instantiate, SsdRateCappedByDevice) {
  const MachineSpec spec = make_machine_a();
  const Placement p = classic_placement(spec, 'c', 2, 8);
  const Topology topo = instantiate(spec, p);
  for (DeviceId d : topo.devices_of_kind(DeviceKind::kSsd)) {
    const auto& l = topo.link(topo.incident(d).front());
    EXPECT_NEAR(to_gib_per_s(l.bw_ab), 6.0, 0.01);  // P5510 < x4 slot rate
  }
}

TEST(Instantiate, NvlinkPairsConsecutiveGpus) {
  const MachineSpec spec = make_machine_a();
  Placement p = classic_placement(spec, 'c', 4, 8);
  p.nvlink = true;
  const Topology topo = instantiate(spec, p);
  int nvlinks = 0;
  for (const auto& l : topo.links()) {
    if (l.kind == LinkKind::kNvlink) ++nvlinks;
  }
  EXPECT_EQ(nvlinks, 2);  // (0,1) and (2,3)
}

TEST(FlowGraph, StructureMatchesFig9) {
  const MachineSpec spec = make_machine_a();
  const Placement p = classic_placement(spec, 'c', 4, 8);
  const Topology topo = instantiate(spec, p);
  const FlowGraph fg = compile_flow_graph(topo);
  // Storage nodes: 8 SSDs + 2 DRAMs + 4 GPU HBMs, in tier order.
  ASSERT_EQ(fg.storage.size(), 14u);
  EXPECT_EQ(fg.gpus.size(), 4u);
  EXPECT_EQ(fg.storage[0].tier, StorageTier::kSsd);
  EXPECT_EQ(fg.storage[8].tier, StorageTier::kCpuDram);
  EXPECT_EQ(fg.storage[10].tier, StorageTier::kGpuHbm);
  for (const auto& s : fg.storage) EXPECT_GE(s.supply_edge, 0);
  for (const auto& g : fg.gpus) EXPECT_GE(g.demand_edge, 0);
  for (int tier = 0; tier < 3; ++tier) EXPECT_GE(fg.tier_edge[tier], 0);
  EXPECT_EQ(fg.link_edges.size(), topo.num_links());
}

TEST(FlowGraph, GpuCacheToggle) {
  const MachineSpec spec = make_machine_a();
  const Placement p = classic_placement(spec, 'c', 2, 4);
  const Topology topo = instantiate(spec, p);
  FlowGraphOptions opts;
  opts.gpu_cache = false;
  const FlowGraph fg = compile_flow_graph(topo, opts);
  for (const auto& s : fg.storage) {
    EXPECT_NE(s.tier, StorageTier::kGpuHbm);
  }
  EXPECT_LT(fg.tier_edge[static_cast<int>(StorageTier::kGpuHbm)], 0);
}

TEST(FlowGraph, SupplyMirrorsOutRate) {
  // Paper: c(s, v_s) = c(v_s, v_i). An SSD's supply edge equals its read bw.
  const MachineSpec spec = make_machine_a();
  const Placement p = classic_placement(spec, 'c', 2, 8);
  const Topology topo = instantiate(spec, p);
  const FlowGraph fg = compile_flow_graph(topo);
  for (const auto& s : fg.storage) {
    if (s.tier != StorageTier::kSsd) continue;
    EXPECT_NEAR(fg.net.original_capacity(s.supply_edge), gib_per_s(6.0), 1.0);
  }
}

TEST(Predictor, RateBoundCappedWithoutCache) {
  const MachineSpec spec = make_machine_a();
  const Placement p = classic_placement(spec, 'c', 4, 8);
  const Topology topo = instantiate(spec, p);
  FlowGraphOptions opts;
  opts.gpu_cache = false;
  const FlowGraph fg = compile_flow_graph(topo, opts);
  const double bound = predict_rate_bound(fg);
  EXPECT_LE(bound, 4.0 * pcie_bandwidth(4, 16) + 1.0);
  EXPECT_GT(to_gib_per_s(bound), 40.0);  // SSD 48 GiB/s + DRAM headroom
}

TEST(Predictor, DemandModeDetectsContention) {
  // Machine A placement (b): all 4 GPUs behind Bus 9; equal demands make the
  // epoch IO time much worse than placement (c).
  const MachineSpec spec = make_machine_a();
  const Topology tb = instantiate(spec, classic_placement(spec, 'b', 4, 8));
  const Topology tc = instantiate(spec, classic_placement(spec, 'c', 4, 8));
  const FlowGraph fb = compile_flow_graph(tb);
  const FlowGraph fc = compile_flow_graph(tc);
  WorkloadDemand d;
  d.per_gpu_bytes.assign(4, 100.0 * util::kGiB);
  // Cap cache tiers so the HBM cannot absorb the whole demand.
  d.per_tier_bytes = {40.0 * util::kGiB, 60.0 * util::kGiB, -1.0};
  const Prediction pb = predict(fb, d);
  const Prediction pc = predict(fc, d);
  ASSERT_TRUE(pb.feasible && pc.feasible);
  EXPECT_GT(pb.epoch_io_time_s, pc.epoch_io_time_s * 1.3);
}

TEST(Predictor, PerGpuBytesMatchDemand) {
  const MachineSpec spec = make_machine_b();
  const Topology topo = instantiate(spec, classic_placement(spec, 'c', 2, 4));
  const FlowGraph fg = compile_flow_graph(topo);
  WorkloadDemand d;
  d.per_gpu_bytes = {10.0 * util::kGiB, 10.0 * util::kGiB};
  const Prediction p = predict(fg, d);
  ASSERT_TRUE(p.feasible);
  ASSERT_EQ(p.per_gpu_bytes.size(), 2u);
  for (double b : p.per_gpu_bytes) {
    EXPECT_NEAR(b, 10.0 * util::kGiB, 0.02 * util::kGiB);
  }
}

TEST(Predictor, InfeasibleWhenSupplyShort) {
  const MachineSpec spec = make_machine_a();
  const Topology topo = instantiate(spec, classic_placement(spec, 'c', 2, 4));
  const FlowGraph fg = compile_flow_graph(topo);
  WorkloadDemand d;
  d.per_gpu_bytes.assign(2, 100.0);
  d.per_tier_bytes = {10.0, 10.0, 10.0};  // 30 bytes total < 200 demanded
  EXPECT_FALSE(predict(fg, d).feasible);
}

TEST(Predictor, LinkTrafficAccounted) {
  const MachineSpec spec = make_machine_a();
  const Placement p = classic_placement(spec, 'b', 4, 8);
  const Topology topo = instantiate(spec, p);
  const FlowGraph fg = compile_flow_graph(topo);
  WorkloadDemand d;
  d.per_gpu_bytes.assign(4, 50.0 * util::kGiB);
  d.per_tier_bytes = {0.0, 0.0, -1.0};  // SSD-only traffic
  const Prediction pred = predict(fg, d);
  ASSERT_TRUE(pred.feasible);
  // Bus 9 must carry the RC0-direct SSD bytes (placement b pins 4 SSDs
  // there with every GPU behind PLX0).
  double bus9 = 0.0;
  for (const auto& lt : pred.link_traffic) {
    if (topo.link(lt.link).label == "Bus9") bus9 += lt.bytes_ab + lt.bytes_ba;
  }
  EXPECT_GT(bus9, 50.0 * util::kGiB);
}

}  // namespace
}  // namespace moment::topology
