// Tests for the AutoModule co-optimizer facade.

#include <gtest/gtest.h>

#include <numeric>

#include "core/auto_module.hpp"

namespace moment::core {
namespace {

AutoModuleConfig config_for(const topology::MachineSpec* spec) {
  AutoModuleConfig c;
  c.machine = spec;
  c.dataset = graph::DatasetId::kIG;
  c.dataset_scale_shift = 3;
  c.num_gpus = 4;
  c.num_ssds = 8;
  return c;
}

TEST(AutoModule, ProducesFeasiblePlan) {
  const auto spec = topology::make_machine_b();
  const Plan plan = AutoModule::plan(config_for(&spec));
  EXPECT_TRUE(plan.prediction.feasible);
  EXPECT_GT(plan.predicted_throughput, 0.0);
  EXPECT_GT(plan.candidates_total, plan.candidates_evaluated - 1);
  EXPECT_EQ(plan.hardware_placement.total_gpus(), 4);
  EXPECT_EQ(plan.hardware_placement.total_ssds(), 8);
  EXPECT_EQ(topology::validate_placement(spec, plan.hardware_placement), "");
}

TEST(AutoModule, DataPlacementCoversAllVertices) {
  const auto spec = topology::make_machine_a();
  const Plan plan = AutoModule::plan(config_for(&spec));
  std::size_t placed = 0;
  for (auto b : plan.data_placement.bin_of_vertex) {
    ASSERT_GE(b, 0);
    ++placed;
  }
  EXPECT_EQ(placed, plan.data_placement.bin_of_vertex.size());
  const auto total = std::accumulate(plan.data_placement.bin_count.begin(),
                                     plan.data_placement.bin_count.end(),
                                     std::size_t{0});
  EXPECT_EQ(total, plan.data_placement.bin_of_vertex.size());
}

TEST(AutoModule, PlanBeatsClassicPlacements) {
  // The searched placement's predicted throughput must be at least as good
  // as every classic layout evaluated under the same workload.
  const auto spec = topology::make_machine_b();
  const auto cfg = config_for(&spec);
  const runtime::Workbench bench =
      runtime::Workbench::make(cfg.dataset, cfg.dataset_scale_shift, cfg.seed);
  const Plan plan = AutoModule::plan(cfg, bench);

  placement::SearchOptions sopt;
  sopt.num_gpus = cfg.num_gpus;
  sopt.num_ssds = cfg.num_ssds;
  sopt.per_gpu_demand_bytes = plan.workload.per_gpu_bytes;
  sopt.per_tier_bytes = {
      plan.workload.total_bytes * plan.workload.gpu_hit_fraction,
      plan.workload.total_bytes * plan.workload.cpu_hit_fraction,
      plan.workload.total_bytes * plan.workload.ssd_fraction};
  sopt.gpu_hbm_bytes =
      plan.workload.per_gpu_bytes * plan.workload.gpu_hit_fraction;
  for (char which : {'a', 'b', 'c', 'd'}) {
    const auto classic = placement::evaluate_placement(
        spec, topology::classic_placement(spec, which, 4, 8), sopt);
    EXPECT_GE(plan.predicted_throughput, classic.score * 0.999)
        << "classic " << which;
  }
}

TEST(AutoModule, TimingBreakdownPopulated) {
  const auto spec = topology::make_machine_a();
  const Plan plan = AutoModule::plan(config_for(&spec));
  EXPECT_GT(plan.search_time_s, 0.0);
  EXPECT_GT(plan.ddak_time_s, 0.0);
  EXPECT_GE(plan.total_time_s(), plan.search_time_s + plan.ddak_time_s);
}

TEST(AutoModule, ReportMentionsKeyFacts) {
  const auto spec = topology::make_machine_b();
  const Plan plan = AutoModule::plan(config_for(&spec));
  const std::string report = plan.to_string(spec);
  EXPECT_NE(report.find("MachineB"), std::string::npos);
  EXPECT_NE(report.find("predicted epoch IO time"), std::string::npos);
  EXPECT_NE(report.find("SSD"), std::string::npos);
}

TEST(AutoModule, DeterministicPlans) {
  const auto spec = topology::make_machine_b();
  const auto cfg = config_for(&spec);
  const runtime::Workbench bench =
      runtime::Workbench::make(cfg.dataset, cfg.dataset_scale_shift, cfg.seed);
  const Plan a = AutoModule::plan(cfg, bench);
  const Plan b = AutoModule::plan(cfg, bench);
  EXPECT_EQ(a.hardware_placement, b.hardware_placement);
  EXPECT_EQ(a.data_placement.bin_of_vertex, b.data_placement.bin_of_vertex);
}

TEST(AutoModule, NvlinkPlanUsesPartitionedCaches) {
  auto spec = topology::make_machine_a();
  AutoModuleConfig c = config_for(&spec);
  c.nvlink = true;
  c.cache.gpu_cache_mode = ddak::GpuCacheMode::kPartitioned;
  const Plan plan = AutoModule::plan(c);
  EXPECT_TRUE(plan.prediction.feasible);
  EXPECT_TRUE(plan.hardware_placement.nvlink);
  // Partitioned mode keeps per-GPU HBM bins (no merged replicated bin).
  int hbm_bins = 0;
  for (const auto& b : plan.bins) {
    if (b.tier == topology::StorageTier::kGpuHbm) ++hbm_bins;
  }
  EXPECT_EQ(hbm_bins, 4);
}

TEST(AutoModule, RequiresMachine) {
  AutoModuleConfig c;
  c.machine = nullptr;
  EXPECT_THROW(AutoModule::plan(c), std::invalid_argument);
}

TEST(AutoModule, PoolSizeOverrideHonoured) {
  const auto spec = topology::make_machine_a();
  AutoModuleConfig c = config_for(&spec);
  c.ddak_pool_size = 7;  // just exercise the explicit path
  const Plan plan = AutoModule::plan(c);
  EXPECT_TRUE(plan.prediction.feasible);
}

}  // namespace
}  // namespace moment::core
