// Tests for the flow-level simulator: routing, max-min fair sharing, round
// simulation, and epoch-level behaviour (contention ordering, QPI traffic,
// M-GIDS partitioning).

#include <gtest/gtest.h>

#include <numeric>

#include "ddak/ddak.hpp"
#include "ddak/workload.hpp"
#include "graph/datasets.hpp"
#include "runtime/systems.hpp"
#include "sim/fluid.hpp"
#include "sim/machine_sim.hpp"
#include "sim/routes.hpp"
#include "util/units.hpp"

namespace moment::sim {
namespace {

using topology::FlowGraph;
using topology::MachineSpec;
using topology::Topology;
using util::gib_per_s;

struct Rig {
  MachineSpec spec;
  Topology topo;
  FlowGraph fg;

  static Rig make(const MachineSpec& s, char placement, int gpus, int ssds) {
    Rig r{s, {}, {}};
    r.topo = topology::instantiate(
        r.spec, topology::classic_placement(r.spec, placement, gpus, ssds));
    r.fg = topology::compile_flow_graph(r.topo);
    return r;
  }
};

TEST(Routes, SsdToLocalGpuIsTwoHops) {
  // Machine A placement c: a PLX0-attached SSD reaches a PLX0 GPU in 2 edges
  // (SSD->PLX0, PLX0->GPU).
  const Rig r = Rig::make(topology::make_machine_a(), 'c', 2, 8);
  // Find an SSD whose parent is PLX0 and the GPU on PLX0.
  int ssd_storage = -1;
  for (std::size_t i = 0; i < r.fg.storage.size(); ++i) {
    if (r.fg.storage[i].tier != topology::StorageTier::kSsd) continue;
    const auto dev = r.fg.storage[i].device;
    const auto link = r.topo.incident(dev).front();
    const auto other = r.topo.link(link).a == dev ? r.topo.link(link).b
                                                  : r.topo.link(link).a;
    if (r.topo.device(other).name == "PLX0") {
      ssd_storage = static_cast<int>(i);
      break;
    }
  }
  ASSERT_GE(ssd_storage, 0);
  const auto ps = find_paths(r.fg, r.fg.storage[static_cast<std::size_t>(ssd_storage)].node,
                             r.fg.gpus[0].comp_node,
                             RoutingPolicy::kSinglePath);
  ASSERT_EQ(ps.paths.size(), 1u);
  EXPECT_EQ(ps.paths[0].size(), 2u);
  EXPECT_DOUBLE_EQ(ps.weights[0], 1.0);
}

TEST(Routes, MultiPathFindsAlternatives) {
  // DRAM1 -> GPU on PLX0 (machine A) has a QPI route; with NVLink or P2P
  // alternatives the multipath set may contain several routes.
  const Rig r = Rig::make(topology::make_machine_a(), 'c', 4, 8);
  const auto dram1 = r.fg.storage[9];  // DRAM1 (after 8 SSDs)
  ASSERT_EQ(dram1.tier, topology::StorageTier::kCpuDram);
  const auto single = find_paths(r.fg, dram1.node, r.fg.gpus[0].comp_node,
                                 RoutingPolicy::kSinglePath);
  const auto multi = find_paths(r.fg, dram1.node, r.fg.gpus[0].comp_node,
                                RoutingPolicy::kMultiPath);
  ASSERT_FALSE(single.paths.empty());
  EXPECT_GE(multi.paths.size(), single.paths.size());
  const double wsum =
      std::accumulate(multi.weights.begin(), multi.weights.end(), 0.0);
  EXPECT_NEAR(wsum, 1.0, 1e-9);
}

TEST(Routes, NoRouteReturnsEmpty) {
  const Rig r = Rig::make(topology::make_machine_a(), 'c', 2, 4);
  // Source node is unreachable through physical edges only.
  const auto ps = find_paths(r.fg, r.fg.gpus[0].comp_node,
                             r.fg.gpus[1].comp_node,
                             RoutingPolicy::kSinglePath);
  EXPECT_TRUE(ps.paths.empty());
}

TEST(MaxMinRates, EqualSharingOnSharedLink) {
  const Rig r = Rig::make(topology::make_machine_a(), 'b', 4, 8);
  // Two streams over the same SSD->PLX0 edge must split 50/50.
  int ssd_idx = -1;
  for (std::size_t i = 0; i < r.fg.storage.size(); ++i) {
    if (r.fg.storage[i].tier == topology::StorageTier::kSsd) {
      ssd_idx = static_cast<int>(i);
      break;
    }
  }
  ASSERT_GE(ssd_idx, 0);
  const auto& storage = r.fg.storage[static_cast<std::size_t>(ssd_idx)];
  std::vector<SubStream> streams;
  for (int g = 0; g < 2; ++g) {
    const auto ps = find_paths(r.fg, storage.node,
                               r.fg.gpus[static_cast<std::size_t>(g)].comp_node,
                               RoutingPolicy::kSinglePath);
    ASSERT_FALSE(ps.paths.empty());
    streams.push_back({g, ssd_idx, ps.paths[0], 100.0});
  }
  const std::vector<bool> active(streams.size(), true);
  const auto rates = max_min_rates(r.fg, streams, active);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_NEAR(rates[0], rates[1], 1e-6 * rates[0]);
  // Together they saturate the 6 GiB/s SSD edge.
  EXPECT_NEAR(rates[0] + rates[1], gib_per_s(6.0), gib_per_s(0.01));
}

TEST(FluidRound, ConservesBytes) {
  const Rig r = Rig::make(topology::make_machine_a(), 'c', 2, 8);
  std::vector<SubStream> streams;
  const double bytes = 3.0 * util::kGiB;
  for (int g = 0; g < 2; ++g) {
    const auto& ssd = r.fg.storage[static_cast<std::size_t>(g)];
    const auto ps = find_paths(r.fg, ssd.node,
                               r.fg.gpus[static_cast<std::size_t>(g)].comp_node,
                               RoutingPolicy::kSinglePath);
    streams.push_back({g, g, ps.paths[0], bytes});
  }
  const FluidResult res = simulate_round(r.fg, streams, 2);
  EXPECT_GT(res.finish_time, 0.0);
  // First edge of each stream moved exactly `bytes`.
  for (const auto& s : streams) {
    EXPECT_NEAR(res.edge_bytes[static_cast<std::size_t>(s.edges.front())],
                bytes, 1.0);
  }
  for (double t : res.gpu_finish) EXPECT_GT(t, 0.0);
}

TEST(FluidRound, EmptyStreamsFinishInstantly) {
  const Rig r = Rig::make(topology::make_machine_a(), 'c', 2, 4);
  const FluidResult res = simulate_round(r.fg, {}, 2);
  EXPECT_EQ(res.finish_time, 0.0);
}

struct EpochRig {
  runtime::Workbench bench;
  ddak::EpochWorkload workload;

  static EpochRig make(int gpus) {
    EpochRig e{runtime::Workbench::make(graph::DatasetId::kIG, 3, 42), {}};
    e.workload = ddak::make_epoch_workload(e.bench.dataset, e.bench.profile,
                                           ddak::CacheConfig{}, gpus);
    return e;
  }
};

SimReport simulate_placement(const EpochRig& e, const MachineSpec& spec,
                             char which, int gpus,
                             ddak::SupplyModel supply, bool use_ddak,
                             const SimOptions& opts = {}) {
  const auto topo = topology::instantiate(
      spec, topology::classic_placement(spec, which, gpus, 8));
  const auto fg = topology::compile_flow_graph(topo);
  const auto pred =
      topology::predict(fg, ddak::to_flow_demand(e.workload, fg, supply));
  auto bins = ddak::make_bins(topo, fg, pred.per_storage_bytes,
                              e.bench.dataset.scaled.vertices, 0.005, 0.01);
  const auto merged = merge_replicated_gpu_bins(bins);
  ddak::DdakOptions dopt;
  dopt.pool_size =
      ddak::default_pool_size(e.bench.dataset.scaled.vertices);
  const auto place = use_ddak ? ddak::ddak_place(merged, e.bench.profile, dopt)
                              : ddak::hash_place(merged, e.bench.profile);
  return simulate_epoch(topo, fg, e.workload, merged, place, opts);
}

TEST(EpochSim, ContentionOrderingMachineA) {
  // Paper Fig. 1: placement (c) clearly beats (b) and (d) on Machine A.
  const EpochRig e = EpochRig::make(4);
  const auto spec = topology::make_machine_a();
  const auto hash = ddak::SupplyModel::kUniformHash;
  const auto tb = simulate_placement(e, spec, 'b', 4, hash, false);
  const auto tc = simulate_placement(e, spec, 'c', 4, hash, false);
  const auto td = simulate_placement(e, spec, 'd', 4, hash, false);
  EXPECT_GT(tb.epoch_time_s, tc.epoch_time_s * 1.3);
  EXPECT_GT(td.epoch_time_s, tc.epoch_time_s * 1.3);
}

TEST(EpochSim, ContentionOrderingMachineB) {
  // Paper Fig. 2 ordering: c < d < a <= b.
  const EpochRig e = EpochRig::make(4);
  const auto spec = topology::make_machine_b();
  const auto hash = ddak::SupplyModel::kUniformHash;
  const auto ta = simulate_placement(e, spec, 'a', 4, hash, false);
  const auto tb = simulate_placement(e, spec, 'b', 4, hash, false);
  const auto tc = simulate_placement(e, spec, 'c', 4, hash, false);
  const auto td = simulate_placement(e, spec, 'd', 4, hash, false);
  EXPECT_LT(tc.epoch_time_s, td.epoch_time_s);
  EXPECT_LT(td.epoch_time_s, ta.epoch_time_s * 1.01);
  EXPECT_LE(ta.epoch_time_s, tb.epoch_time_s * 1.05);
}

TEST(EpochSim, QpiTrafficAccounted) {
  const EpochRig e = EpochRig::make(4);
  const auto spec = topology::make_machine_a();
  // Placement (a): front-heavy SSDs force cross-socket traffic for the PLX1
  // GPUs.
  const auto rep =
      simulate_placement(e, spec, 'a', 4, ddak::SupplyModel::kUniformHash,
                         false);
  EXPECT_GT(rep.qpi_bytes, 0.0);
  bool found_qpi_link = false;
  for (const auto& lt : rep.link_traffic) {
    if (lt.kind == topology::LinkKind::kQpi) {
      found_qpi_link = true;
      EXPECT_NEAR(lt.bytes_ab + lt.bytes_ba, rep.qpi_bytes, 1.0);
    }
  }
  EXPECT_TRUE(found_qpi_link);
}

TEST(EpochSim, DdakReducesEpochTimeOnContendedPlacement) {
  // Fig. 14/15: DDAK vs hash under a fixed (contended) placement.
  const EpochRig e = EpochRig::make(4);
  const auto spec = topology::make_machine_a();
  const auto hash =
      simulate_placement(e, spec, 'b', 4, ddak::SupplyModel::kUniformHash,
                         false);
  const auto ddak_rep =
      simulate_placement(e, spec, 'b', 4, ddak::SupplyModel::kFlexibleTier,
                         true);
  EXPECT_LT(ddak_rep.epoch_time_s, hash.epoch_time_s);
}

TEST(EpochSim, GidsPartitioningHurtsOnAsymmetricPlacement) {
  // Placement (d): GPUs concentrated on PLX0 while SSDs straddle both
  // switches. Static per-GPU SSD assignment forces two GPUs to read only
  // remote SSDs — per-GPU imbalance that shared access avoids (paper Fig. 6
  // is this effect at scale).
  const EpochRig e = EpochRig::make(4);
  const auto spec = topology::make_machine_a();
  SimOptions gids;
  gids.routing = RoutingPolicy::kSinglePath;
  gids.partition_ssds_per_gpu = true;
  const auto part =
      simulate_placement(e, spec, 'd', 4, ddak::SupplyModel::kUniformHash,
                         false, gids);
  SimOptions shared;
  shared.routing = RoutingPolicy::kSinglePath;
  const auto full =
      simulate_placement(e, spec, 'd', 4, ddak::SupplyModel::kUniformHash,
                         false, shared);
  // Epoch time alone is a weak discriminator here: the inter-switch link is
  // the bottleneck either way, and it carries the same bytes whether the two
  // remote GPUs pull their full share at half the link (partitioned) or all
  // four GPUs pull half their share at a quarter of it (shared) — so the
  // times land within a few percent of each other, with the winner decided
  // by second-order stream dynamics that shift with the sampled workload.
  // Guard only against partitioning producing a meaningful win; the robust
  // partitioning penalty is the per-GPU imbalance.
  EXPECT_GE(part.epoch_time_s, full.epoch_time_s * 0.9);
  EXPECT_GT(part.imbalance_cv, full.imbalance_cv);
}

TEST(EpochSim, ComputeBoundWhenIoTiny) {
  const EpochRig e = EpochRig::make(4);
  const auto spec = topology::make_machine_a();
  SimOptions opts;
  opts.compute_time_per_batch = 100.0;  // absurd compute cost
  const auto rep =
      simulate_placement(e, spec, 'c', 4, ddak::SupplyModel::kUniformHash,
                         false, opts);
  EXPECT_FALSE(rep.io_bound);
  EXPECT_NEAR(rep.round_time_s, 100.0 + opts.round_overhead_s, 1e-6);
}

TEST(EpochSim, ThroughputMetricConsistent) {
  const EpochRig e = EpochRig::make(2);
  const auto spec = topology::make_machine_b();
  const auto rep = simulate_placement(e, spec, 'c', 2,
                                      ddak::SupplyModel::kUniformHash, false);
  EXPECT_NEAR(rep.throughput_seeds_per_s,
              8000.0 * 2.0 / rep.round_time_s, 1.0);
  EXPECT_EQ(rep.rounds,
            (e.workload.batches_per_epoch + 1) / 2);
}

TEST(MergeReplicated, CombinesGpuBins) {
  std::vector<ddak::Bin> bins(3);
  bins[0] = {"GPU0.HBM", 0, topology::StorageTier::kGpuHbm, 100.0, 5.0, {}};
  bins[1] = {"GPU1.HBM", 1, topology::StorageTier::kGpuHbm, 100.0, 7.0, {}};
  bins[2] = {"SSD0", 2, topology::StorageTier::kSsd, 1000.0, 20.0, {}};
  const auto merged = merge_replicated_gpu_bins(bins);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].tier, topology::StorageTier::kGpuHbm);
  EXPECT_EQ(merged[0].storage_index, -1);
  EXPECT_DOUBLE_EQ(merged[0].capacity_vertices, 100.0);  // one replica
  EXPECT_DOUBLE_EQ(merged[0].traffic_target, 12.0);
  EXPECT_EQ(merged[1].name, "SSD0");
}

}  // namespace
}  // namespace moment::sim
