// Tests for the placement search: enumeration, symmetry reduction (the
// paper's isomorphic-variant elimination), ranking, and regression anchors.

#include <gtest/gtest.h>

#include "placement/search.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace moment::placement {
namespace {

using topology::MachineSpec;
using topology::Placement;
using util::kGiB;

SearchOptions workload_options(int gpus, int ssds) {
  SearchOptions o;
  o.num_gpus = gpus;
  o.num_ssds = ssds;
  // ~450 GiB epoch split 16/17/67 across tiers — the IGB-like regime.
  const double total = 450.0 * kGiB;
  o.per_gpu_demand_bytes = total / gpus;
  o.per_tier_bytes = {0.16 * total, 0.17 * total, 0.67 * total};
  o.gpu_hbm_bytes = 0.16 * total / gpus;
  return o;
}

TEST(Canonicalize, Idempotent) {
  const MachineSpec spec = topology::make_machine_a();
  Placement p;
  p.gpus_per_group = {0, 0, 1, 3};
  p.ssds_per_group = {1, 3, 2, 2};
  const Placement c1 = canonicalize(spec, p);
  const Placement c2 = canonicalize(spec, c1);
  EXPECT_EQ(c1, c2);
}

TEST(Canonicalize, MapsMirrorPlacementsTogether) {
  const MachineSpec spec = topology::make_machine_a();
  Placement p, mirror;
  p.gpus_per_group = {0, 0, 3, 1};
  p.ssds_per_group = {4, 0, 2, 2};
  // Socket swap: groups (0,1) and (2,3) exchange.
  mirror.gpus_per_group = {0, 0, 1, 3};
  mirror.ssds_per_group = {0, 4, 2, 2};
  EXPECT_EQ(canonicalize(spec, p), canonicalize(spec, mirror));
}

TEST(Canonicalize, NoOpWithoutAutomorphisms) {
  const MachineSpec spec = topology::make_machine_b();
  Placement p;
  p.gpus_per_group = {1, 1, 0, 2};
  p.ssds_per_group = {0, 4, 2, 2};
  EXPECT_EQ(canonicalize(spec, p), p);
}

TEST(Search, SymmetryReductionShrinksMachineA) {
  const MachineSpec spec = topology::make_machine_a();
  SearchOptions o = workload_options(4, 8);
  const SearchResult r = search_placements(spec, o);
  EXPECT_GT(r.total_combinations, r.evaluated);
  EXPECT_LT(r.evaluated, r.total_combinations * 6 / 10);
}

TEST(Search, ReductionPreservesOptimum) {
  // The reduced search must find the same best score as the full search —
  // the correctness claim behind the paper's isomorphic reduction.
  const MachineSpec spec = topology::make_machine_a();
  SearchOptions o = workload_options(2, 6);
  o.use_symmetry_reduction = true;
  const SearchResult reduced = search_placements(spec, o);
  o.use_symmetry_reduction = false;
  const SearchResult full = search_placements(spec, o);
  ASSERT_FALSE(reduced.top.empty());
  ASSERT_FALSE(full.top.empty());
  EXPECT_NEAR(reduced.best().score, full.best().score,
              1e-6 * full.best().score);
}

TEST(Search, BestBeatsOrMatchesAllClassics) {
  for (const MachineSpec& spec :
       {topology::make_machine_a(), topology::make_machine_b()}) {
    SearchOptions o = workload_options(4, 8);
    const SearchResult r = search_placements(spec, o);
    ASSERT_FALSE(r.top.empty()) << spec.name;
    for (char which : {'a', 'b', 'c', 'd'}) {
      const auto classic = evaluate_placement(
          spec, topology::classic_placement(spec, which, 4, 8), o);
      EXPECT_GE(r.best().score, classic.score * 0.999)
          << spec.name << " classic " << which;
    }
  }
}

TEST(Search, RespectsDeviceCounts) {
  const MachineSpec spec = topology::make_machine_b();
  SearchOptions o = workload_options(3, 5);
  const SearchResult r = search_placements(spec, o);
  for (const auto& c : r.top) {
    EXPECT_EQ(c.placement.total_gpus(), 3);
    EXPECT_EQ(c.placement.total_ssds(), 5);
    EXPECT_EQ(topology::validate_placement(spec, c.placement), "");
  }
}

TEST(Search, KeepTopLimitsAndSorted) {
  const MachineSpec spec = topology::make_machine_a();
  SearchOptions o = workload_options(2, 4);
  o.keep_top = 3;
  const SearchResult r = search_placements(spec, o);
  EXPECT_LE(r.top.size(), 3u);
  for (std::size_t i = 1; i < r.top.size(); ++i) {
    EXPECT_GE(r.top[i - 1].score, r.top[i].score * 0.999);
  }
}

TEST(Search, DeterministicAcrossRuns) {
  const MachineSpec spec = topology::make_machine_b();
  SearchOptions o = workload_options(4, 8);
  const SearchResult a = search_placements(spec, o);
  const SearchResult b = search_placements(spec, o);
  ASSERT_FALSE(a.top.empty());
  EXPECT_EQ(a.best().placement, b.best().placement);
  EXPECT_DOUBLE_EQ(a.best().score, b.best().score);
}

TEST(Search, IdenticalTopListWithOneVsManyEvalThreads) {
  // Candidate evaluation fans out over the shared compute pool; the ranked
  // result must not depend on the thread count (candidates are collected
  // first, evaluated into per-index slots, then sorted deterministically).
  const MachineSpec spec = topology::make_machine_a();
  SearchOptions o = workload_options(4, 8);

  o.eval_threads = 1;  // serial reference
  const SearchResult serial = search_placements(spec, o);

  util::set_compute_pool_threads(4);
  o.eval_threads = 0;  // shared pool
  const SearchResult parallel = search_placements(spec, o);
  util::set_compute_pool_threads(0);

  EXPECT_EQ(serial.total_combinations, parallel.total_combinations);
  EXPECT_EQ(serial.evaluated, parallel.evaluated);
  ASSERT_EQ(serial.top.size(), parallel.top.size());
  for (std::size_t i = 0; i < serial.top.size(); ++i) {
    EXPECT_EQ(serial.top[i].placement, parallel.top[i].placement) << i;
    EXPECT_DOUBLE_EQ(serial.top[i].score, parallel.top[i].score) << i;
    EXPECT_DOUBLE_EQ(serial.top[i].fabric_rate_bound,
                     parallel.top[i].fabric_rate_bound)
        << i;
  }
}

TEST(Search, MachineBBestUsesRootComplexSlots) {
  // Structural property behind the paper's Fig. 7: concentrating every GPU
  // behind the PLX cascade chokes on Bus 11/16, so the optimum places at
  // least one GPU on a root-complex direct slot.
  const MachineSpec spec = topology::make_machine_b();
  SearchOptions o = workload_options(4, 8);
  const SearchResult r = search_placements(spec, o);
  const auto& best = r.best().placement;
  const int rc_gpus = best.gpus_per_group[0] + best.gpus_per_group[1];
  EXPECT_GT(rc_gpus, 0) << describe(spec, best);
}

TEST(Describe, MentionsOccupiedGroups) {
  const MachineSpec spec = topology::make_machine_b();
  const std::string s = describe(spec, topology::moment_placement_machine_b());
  EXPECT_NE(s.find("RC1.slots=4"), std::string::npos);
  EXPECT_NE(s.find("PLX1.slots=2"), std::string::npos);
}

TEST(EvaluatePlacement, ProducesFeasiblePrediction) {
  const MachineSpec spec = topology::make_machine_b();
  SearchOptions o = workload_options(4, 8);
  const auto c =
      evaluate_placement(spec, topology::moment_placement_machine_b(), o);
  EXPECT_TRUE(c.prediction.feasible);
  EXPECT_GT(c.score, 0.0);
  EXPECT_GT(c.fabric_rate_bound, 0.0);
}

}  // namespace
}  // namespace moment::placement
