// Tests for the IO stack: SPSC rings, queue pairs, the SSD service loop,
// multi-client concurrency, pacing, and the tiered feature store.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "gnn/synthetic.hpp"
#include "graph/generators.hpp"
#include "iostack/feature_store.hpp"
#include "iostack/queue_pair.hpp"
#include "iostack/ssd.hpp"

namespace moment::iostack {
namespace {

TEST(SpscRing, FifoOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.push(i));
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ring.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.pop(out));
}

TEST(SpscRing, FullAndEmpty) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_FALSE(ring.push(99));  // full
  int out;
  EXPECT_TRUE(ring.pop(out));
  EXPECT_TRUE(ring.push(99));  // space again
  EXPECT_EQ(ring.size(), 4u);
}

TEST(SpscRing, RoundsCapacityUpToPowerOfTwo) {
  // Depth 100 must not silently shrink to 64 — it rounds up to 128.
  SpscRing<int> ring(100);
  EXPECT_EQ(ring.capacity(), 128u);
  for (int i = 0; i < 128; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_FALSE(ring.push(999));  // full at the rounded capacity
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscRing<int>(65).capacity(), 128u);
  EXPECT_EQ(SpscRing<int>(0).capacity(), 64u);  // historical default
  // QueuePair::depth() reports the effective (rounded) capacity.
  EXPECT_EQ(QueuePair(100).depth(), 128u);
  EXPECT_EQ(QueuePair(256).depth(), 256u);
}

TEST(SpscRing, WraparoundAfterCapacityRounding) {
  // Capacity 6 -> 8; cycle far past the index wrap point with a ring that
  // is kept nearly full, exercising masked head/tail arithmetic.
  SpscRing<int> ring(6);
  ASSERT_EQ(ring.capacity(), 8u);
  int next_in = 0, next_out = 0;
  for (int round = 0; round < 1000; ++round) {
    while (ring.push(next_in)) ++next_in;
    EXPECT_EQ(ring.size(), 8u);
    int v;
    for (int k = 0; k < 5; ++k) {
      ASSERT_TRUE(ring.pop(v));
      EXPECT_EQ(v, next_out++);
    }
  }
}

TEST(SpscRing, ConcurrentNonPowerOfTwoCapacity) {
  // Producer/consumer stress through a rounded (100 -> 128) ring.
  SpscRing<std::uint64_t> ring(100);
  constexpr std::uint64_t kN = 100000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kN;) {
      if (ring.push(i)) ++i;
    }
  });
  std::uint64_t expected = 0;
  while (expected < kN) {
    std::uint64_t v;
    if (ring.pop(v)) {
      ASSERT_EQ(v, expected);
      ++expected;
    }
  }
  producer.join();
}

TEST(SpscRing, ConcurrentProducerConsumer) {
  SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t kN = 100000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kN;) {
      if (ring.push(i)) ++i;
    }
  });
  std::uint64_t expected = 0;
  std::uint64_t sum = 0;
  while (expected < kN) {
    std::uint64_t v;
    if (ring.pop(v)) {
      ASSERT_EQ(v, expected);  // order preserved
      sum += v;
      ++expected;
    }
  }
  producer.join();
  EXPECT_EQ(sum, kN * (kN - 1) / 2);
}

TEST(SsdDevice, WriteThenReadThroughQueue) {
  SsdOptions opts;
  opts.capacity_bytes = 1 << 20;
  SsdDevice ssd(opts);
  QueuePair* qp = ssd.create_queue_pair();
  std::vector<std::byte> payload(kPageBytes);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>(i & 0xff);
  }
  ssd.write(3 * kPageBytes, payload.data(), payload.size());
  ssd.start();

  std::vector<std::byte> dest(kPageBytes);
  ASSERT_TRUE(qp->submit({3 * kPageBytes,
                          static_cast<std::uint32_t>(kPageBytes),
                          dest.data(), 42}));
  Cqe cqe;
  while (!qp->poll_completion(cqe)) std::this_thread::yield();
  EXPECT_EQ(cqe.tag, 42u);
  EXPECT_EQ(cqe.status, 0u);
  EXPECT_EQ(std::memcmp(dest.data(), payload.data(), kPageBytes), 0);
  ssd.stop();
  EXPECT_EQ(ssd.stats().reads, 1u);
  EXPECT_EQ(ssd.stats().bytes_read, kPageBytes);
}

TEST(SsdDevice, OutOfRangeReadFails) {
  SsdOptions opts;
  opts.capacity_bytes = 4 * kPageBytes;
  SsdDevice ssd(opts);
  QueuePair* qp = ssd.create_queue_pair();
  ssd.start();
  std::vector<std::byte> dest(kPageBytes);
  qp->submit({100 * kPageBytes, static_cast<std::uint32_t>(kPageBytes),
              dest.data(), 1});
  Cqe cqe;
  while (!qp->poll_completion(cqe)) std::this_thread::yield();
  EXPECT_NE(cqe.status, 0u);
  ssd.stop();
  EXPECT_EQ(ssd.stats().errors, 1u);
}

TEST(SsdDevice, WriteBeyondCapacityThrows) {
  SsdOptions opts;
  opts.capacity_bytes = kPageBytes;
  SsdDevice ssd(opts);
  std::vector<std::byte> page(kPageBytes);
  EXPECT_THROW(ssd.write(kPageBytes, page.data(), page.size()),
               std::out_of_range);
}

TEST(IoEngine, MultiGpuConcurrentReads) {
  // 2 "GPUs" hammer 4 SSDs concurrently; every byte must come back right.
  constexpr std::size_t kSsds = 4;
  constexpr std::size_t kPagesPerSsd = 64;
  SsdOptions opts;
  opts.capacity_bytes = kPagesPerSsd * kPageBytes;
  SsdArray array(kSsds, opts);
  for (std::size_t s = 0; s < kSsds; ++s) {
    for (std::size_t p = 0; p < kPagesPerSsd; ++p) {
      std::vector<std::byte> page(kPageBytes,
                                  static_cast<std::byte>(s * 100 + p));
      array.ssd(s).write(p * kPageBytes, page.data(), page.size());
    }
  }
  IoEngine e0(array), e1(array);
  array.start_all();

  auto worker = [&](IoEngine& engine, std::uint64_t seed) {
    util::Pcg32 rng(seed);
    std::vector<std::byte> buf(256 * kPageBytes);
    std::vector<std::pair<std::size_t, std::size_t>> reqs;
    for (int i = 0; i < 256; ++i) {
      const std::size_t s = rng.next_below(kSsds);
      const std::size_t p = rng.next_below(kPagesPerSsd);
      engine.submit_read(s, p * kPageBytes,
                         static_cast<std::uint32_t>(kPageBytes),
                         buf.data() + static_cast<std::size_t>(i) * kPageBytes);
      reqs.emplace_back(s, p);
    }
    EXPECT_EQ(engine.wait_all(), 0u);
    for (int i = 0; i < 256; ++i) {
      const auto [s, p] = reqs[static_cast<std::size_t>(i)];
      EXPECT_EQ(buf[static_cast<std::size_t>(i) * kPageBytes],
                static_cast<std::byte>(s * 100 + p))
          << "req " << i;
    }
  };
  std::thread t0(worker, std::ref(e0), 1);
  std::thread t1(worker, std::ref(e1), 2);
  t0.join();
  t1.join();
  array.stop_all();

  std::uint64_t total_reads = 0;
  for (std::size_t s = 0; s < kSsds; ++s) {
    total_reads += array.ssd(s).stats().reads;
  }
  EXPECT_EQ(total_reads, 512u);
}

TEST(IoEngine, BackpressureWhenQueueFull) {
  // Tiny queue depth forces the submit path to drain completions inline.
  SsdOptions opts;
  opts.capacity_bytes = 16 * kPageBytes;
  SsdArray array(1, opts);
  IoEngine engine(array, /*queue_depth=*/4);
  array.start_all();
  std::vector<std::byte> buf(64 * kPageBytes);
  for (int i = 0; i < 64; ++i) {
    engine.submit_read(0, (static_cast<std::uint64_t>(i) % 16) * kPageBytes,
                       static_cast<std::uint32_t>(kPageBytes),
                       buf.data() + static_cast<std::size_t>(i) * kPageBytes);
  }
  EXPECT_EQ(engine.wait_all(), 0u);
  EXPECT_EQ(engine.completed(), 64u);
  array.stop_all();
}

TEST(IoEngine, CompletionGroupsAwaitIndependently) {
  // Two read batches in flight at once; each group completes on its own.
  constexpr std::size_t kPages = 32;
  SsdOptions opts;
  opts.capacity_bytes = kPages * kPageBytes;
  SsdArray array(1, opts);
  for (std::size_t p = 0; p < kPages; ++p) {
    std::vector<std::byte> page(kPageBytes, static_cast<std::byte>(p));
    array.ssd(0).write(p * kPageBytes, page.data(), page.size());
  }
  IoEngine engine(array);
  array.start_all();

  std::vector<std::byte> buf_a(8 * kPageBytes), buf_b(8 * kPageBytes);
  const std::uint64_t ga = engine.group_begin();
  for (int i = 0; i < 8; ++i) {
    engine.submit_read(0, static_cast<std::uint64_t>(i) * kPageBytes,
                       static_cast<std::uint32_t>(kPageBytes),
                       buf_a.data() + static_cast<std::size_t>(i) * kPageBytes);
  }
  engine.group_end(ga);
  const std::uint64_t gb = engine.group_begin();
  for (int i = 0; i < 8; ++i) {
    engine.submit_read(0, static_cast<std::uint64_t>(8 + i) * kPageBytes,
                       static_cast<std::uint32_t>(kPageBytes),
                       buf_b.data() + static_cast<std::size_t>(i) * kPageBytes);
  }
  engine.group_end(gb);

  // Waiting out of submission order must work too.
  EXPECT_EQ(engine.wait_group(gb), 0u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(buf_b[static_cast<std::size_t>(i) * kPageBytes],
              static_cast<std::byte>(8 + i));
  }
  EXPECT_EQ(engine.wait_group(ga), 0u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(buf_a[static_cast<std::size_t>(i) * kPageBytes],
              static_cast<std::byte>(i));
  }
  array.stop_all();
}

TEST(IoEngine, GroupFailuresAreAttributed) {
  SsdOptions opts;
  opts.capacity_bytes = 4 * kPageBytes;
  SsdArray array(1, opts);
  IoEngine engine(array);
  array.start_all();
  std::vector<std::byte> buf(2 * kPageBytes);
  const std::uint64_t ok = engine.group_begin();
  engine.submit_read(0, 0, static_cast<std::uint32_t>(kPageBytes), buf.data());
  engine.group_end(ok);
  const std::uint64_t bad = engine.group_begin();
  engine.submit_read(0, 100 * kPageBytes, static_cast<std::uint32_t>(kPageBytes),
                     buf.data() + kPageBytes);
  engine.group_end(bad);
  EXPECT_EQ(engine.wait_group(ok), 0u);
  EXPECT_EQ(engine.wait_group(bad), 1u);
  array.stop_all();
}

TEST(SsdDevice, PacingLimitsThroughput) {
  SsdOptions opts;
  opts.capacity_bytes = 64 * kPageBytes;
  opts.max_bytes_per_s = 4.0 * 1024 * 1024;  // 4 MiB/s
  SsdArray array(1, opts);
  IoEngine engine(array);
  array.start_all();
  std::vector<std::byte> buf(256 * kPageBytes);  // 1 MiB total
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 256; ++i) {
    engine.submit_read(0, (static_cast<std::uint64_t>(i) % 64) * kPageBytes,
                       static_cast<std::uint32_t>(kPageBytes),
                       buf.data() + static_cast<std::size_t>(i) * kPageBytes);
  }
  engine.wait_all();
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  array.stop_all();
  // 1 MiB at 4 MiB/s should take ~0.25 s; allow generous slack either way.
  EXPECT_GT(dt, 0.1);
}

TEST(FeatureStore, RoundTripsThroughAllTiers) {
  graph::RmatParams gp;
  gp.num_vertices = 512;
  gp.num_edges = 3000;
  const auto g = graph::generate_rmat(gp);
  const auto task = gnn::make_synthetic_task(g, 4, 12, 0.2, 3);

  // Place vertices: 32 in GPU cache, 32 in CPU cache, rest striped on SSDs.
  std::vector<BinBacking> bins = {
      {BinBacking::Kind::kGpuCache, -1},
      {BinBacking::Kind::kCpuCache, -1},
      {BinBacking::Kind::kSsd, 0},
      {BinBacking::Kind::kSsd, 1},
  };
  std::vector<std::int32_t> bin_of_vertex(512);
  for (std::size_t v = 0; v < 512; ++v) {
    if (v < 32) bin_of_vertex[v] = 0;
    else if (v < 64) bin_of_vertex[v] = 1;
    else bin_of_vertex[v] = 2 + static_cast<std::int32_t>(v % 2);
  }

  SsdOptions opts;
  opts.capacity_bytes = 2ull << 20;
  SsdArray array(2, opts);
  TieredFeatureStore store(task.features, bin_of_vertex, bins, array);
  TieredFeatureClient client(store);
  array.start_all();

  // Gather a mix of vertices from all tiers and compare with ground truth.
  std::vector<graph::VertexId> vertices;
  for (graph::VertexId v = 0; v < 512; v += 7) vertices.push_back(v);
  gnn::Tensor out(vertices.size(), 12);
  client.gather(vertices, out);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (std::size_t c = 0; c < 12; ++c) {
      ASSERT_FLOAT_EQ(out.at(i, c), task.features.at(vertices[i], c))
          << "vertex " << vertices[i];
    }
  }
  array.stop_all();

  const auto& stats = client.stats();
  EXPECT_GT(stats.gpu_hits, 0u);
  EXPECT_GT(stats.cpu_hits, 0u);
  EXPECT_GT(stats.ssd_reads, 0u);
  EXPECT_EQ(stats.gpu_hits + stats.cpu_hits + stats.ssd_reads,
            vertices.size());
}

TEST(FeatureStore, AsyncGatherMatchesSyncAcrossTiers) {
  graph::RmatParams gp;
  gp.num_vertices = 256;
  gp.num_edges = 1500;
  const auto g = graph::generate_rmat(gp);
  const auto task = gnn::make_synthetic_task(g, 4, 12, 0.2, 17);
  std::vector<BinBacking> bins = {
      {BinBacking::Kind::kGpuCache, -1},
      {BinBacking::Kind::kCpuCache, -1},
      {BinBacking::Kind::kSsd, 0},
      {BinBacking::Kind::kSsd, 1},
  };
  std::vector<std::int32_t> bin_of_vertex(256);
  for (std::size_t v = 0; v < 256; ++v) {
    if (v < 16) bin_of_vertex[v] = 0;
    else if (v < 32) bin_of_vertex[v] = 1;
    else bin_of_vertex[v] = 2 + static_cast<std::int32_t>(v % 2);
  }
  SsdOptions opts;
  opts.capacity_bytes = 1ull << 20;
  SsdArray array(2, opts);
  TieredFeatureStore store(task.features, bin_of_vertex, bins, array);
  TieredFeatureClient client(store);
  array.start_all();

  std::vector<graph::VertexId> a, b;
  for (graph::VertexId v = 0; v < 256; v += 3) a.push_back(v);
  for (graph::VertexId v = 1; v < 256; v += 5) b.push_back(v);

  gnn::Tensor sync_a(a.size(), 12), sync_b(b.size(), 12);
  client.gather(a, sync_a);
  client.gather(b, sync_b);

  // Two async gathers in flight at once, completed out of order.
  gnn::Tensor async_a(a.size(), 12), async_b(b.size(), 12);
  const auto ta = client.gather_begin(a, async_a);
  const auto tb = client.gather_begin(b, async_b);
  EXPECT_NE(ta, gnn::FeatureProvider::kSyncTicket);
  EXPECT_NE(tb, gnn::FeatureProvider::kSyncTicket);
  client.gather_wait(tb);
  client.gather_wait(ta);
  array.stop_all();

  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t c = 0; c < 12; ++c) {
      ASSERT_FLOAT_EQ(async_a.at(i, c), sync_a.at(i, c)) << "vertex " << a[i];
      ASSERT_FLOAT_EQ(async_a.at(i, c), task.features.at(a[i], c));
    }
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    for (std::size_t c = 0; c < 12; ++c) {
      ASSERT_FLOAT_EQ(async_b.at(i, c), sync_b.at(i, c)) << "vertex " << b[i];
    }
  }
}

TEST(FeatureStore, CacheOnlyGatherCompletesInsideBegin) {
  graph::RmatParams gp;
  gp.num_vertices = 32;
  gp.num_edges = 64;
  const auto g = graph::generate_rmat(gp);
  const auto task = gnn::make_synthetic_task(g, 2, 8, 0.1, 1);
  std::vector<BinBacking> bins = {{BinBacking::Kind::kCpuCache, -1}};
  std::vector<std::int32_t> bov(32, 0);
  SsdOptions opts;
  SsdArray array(1, opts);
  TieredFeatureStore store(task.features, bov, bins, array);
  TieredFeatureClient client(store);
  // No SSD rows: the gather is served entirely from the cache tier and the
  // ticket reports synchronous completion (no SSD reads, array not started).
  std::vector<graph::VertexId> vs = {0, 5, 9, 31};
  gnn::Tensor out(vs.size(), 8);
  const auto ticket = client.gather_begin(vs, out);
  EXPECT_EQ(ticket, gnn::FeatureProvider::kSyncTicket);
  client.gather_wait(ticket);  // must be a no-op
  for (std::size_t i = 0; i < vs.size(); ++i) {
    for (std::size_t c = 0; c < 8; ++c) {
      ASSERT_FLOAT_EQ(out.at(i, c), task.features.at(vs[i], c));
    }
  }
}

TEST(FeatureStore, ThirdInFlightGatherRejected) {
  graph::RmatParams gp;
  gp.num_vertices = 64;
  gp.num_edges = 128;
  const auto g = graph::generate_rmat(gp);
  const auto task = gnn::make_synthetic_task(g, 2, 8, 0.1, 2);
  std::vector<BinBacking> bins = {{BinBacking::Kind::kSsd, 0}};
  std::vector<std::int32_t> bov(64, 0);
  SsdOptions opts;
  opts.capacity_bytes = 1ull << 20;
  SsdArray array(1, opts);
  TieredFeatureStore store(task.features, bov, bins, array);
  TieredFeatureClient client(store);
  array.start_all();
  std::vector<graph::VertexId> vs = {1, 2, 3};
  gnn::Tensor o1(3, 8), o2(3, 8), o3(3, 8);
  const auto t1 = client.gather_begin(vs, o1);
  const auto t2 = client.gather_begin(vs, o2);
  EXPECT_THROW(client.gather_begin(vs, o3), std::logic_error);
  client.gather_wait(t1);
  client.gather_wait(t2);
  array.stop_all();
}

TEST(FeatureStore, RowsArePageAligned) {
  graph::RmatParams gp;
  gp.num_vertices = 8;
  gp.num_edges = 16;
  const auto g = graph::generate_rmat(gp);
  const auto task = gnn::make_synthetic_task(g, 2, 100, 0.1, 1);  // 400 B rows
  std::vector<BinBacking> bins = {{BinBacking::Kind::kSsd, 0}};
  std::vector<std::int32_t> bov(8, 0);
  SsdOptions opts;
  SsdArray array(1, opts);
  TieredFeatureStore store(task.features, bov, bins, array);
  EXPECT_EQ(store.row_bytes() % kPageBytes, 0u);
  EXPECT_GE(store.row_bytes(), 100 * sizeof(float));
}

TEST(FeatureStore, RejectsOverflowingPlacement) {
  graph::RmatParams gp;
  gp.num_vertices = 64;
  gp.num_edges = 100;
  const auto g = graph::generate_rmat(gp);
  const auto task = gnn::make_synthetic_task(g, 2, 16, 0.1, 1);
  std::vector<BinBacking> bins = {{BinBacking::Kind::kSsd, 0}};
  std::vector<std::int32_t> bov(64, 0);
  SsdOptions opts;
  opts.capacity_bytes = 4 * kPageBytes;  // room for only 4 rows
  SsdArray array(1, opts);
  EXPECT_THROW(TieredFeatureStore(task.features, bov, bins, array),
               std::invalid_argument);
}

}  // namespace
}  // namespace moment::iostack
