// Unit tests for the util module: deterministic RNG, distributions,
// statistics helpers, the thread pool and the table printer.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace moment::util {
namespace {

TEST(SplitMix64, DeterministicAndDistinct) {
  SplitMix64 a(42), b(42), c(43);
  const auto x = a.next();
  EXPECT_EQ(x, b.next());
  EXPECT_NE(x, c.next());
}

TEST(SplitMix64, HashCombineOrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_EQ(hash_combine(7, 9), hash_combine(7, 9));
}

TEST(Pcg32, Deterministic) {
  Pcg32 a(123, 5), b(123, 5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, StreamsDiffer) {
  Pcg32 a(123, 1), b(123, 2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Pcg32, NextBelowRespectsBound) {
  Pcg32 rng(7);
  for (std::uint32_t bound : {1u, 2u, 3u, 10u, 1000u}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
  EXPECT_EQ(rng.next_below(1), 0u);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Pcg32, NextBelowCoversRange) {
  Pcg32 rng(11);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Pcg32, NextDoubleUniform) {
  Pcg32 rng(99);
  double sum = 0.0;
  double mn = 1.0, mx = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
    mn = std::min(mn, d);
    mx = std::max(mx, d);
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
  EXPECT_LT(mn, 0.01);  // the old broken generator never exceeded 0.016
  EXPECT_GT(mx, 0.99);
}

TEST(Pcg32, NextDoubleRange) {
  Pcg32 rng(5);
  for (int i = 0; i < 100; ++i) {
    const double d = rng.next_double(3.0, 7.0);
    EXPECT_GE(d, 3.0);
    EXPECT_LT(d, 7.0);
  }
}

TEST(ZipfSampler, PmfSumsToOne) {
  ZipfSampler zipf(100, 1.0);
  double total = 0.0;
  for (std::size_t k = 0; k < 100; ++k) total += zipf.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(zipf.pmf(100), 0.0);
}

TEST(ZipfSampler, RankZeroMostLikely) {
  ZipfSampler zipf(1000, 1.2);
  EXPECT_GT(zipf.pmf(0), zipf.pmf(1));
  EXPECT_GT(zipf.pmf(1), zipf.pmf(10));
}

TEST(ZipfSampler, EmpiricalMatchesPmf) {
  ZipfSampler zipf(50, 1.0);
  Pcg32 rng(3);
  std::vector<int> counts(50, 0);
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t k : {0u, 1u, 5u}) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / kN, zipf.pmf(k), 0.01)
        << "rank " << k;
  }
}

TEST(Stats, SummaryBasics) {
  const double vals[] = {1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(vals);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, EmptySummaryIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const double vals[] = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(vals, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(vals, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(vals, 1.0), 10.0);
}

TEST(Stats, GiniUniformIsZero) {
  const double vals[] = {2.0, 2.0, 2.0, 2.0};
  EXPECT_NEAR(gini(vals), 0.0, 1e-9);
}

TEST(Stats, GiniSkewedIsLarge) {
  std::vector<double> vals(100, 0.0);
  vals[0] = 100.0;
  EXPECT_GT(gini(vals), 0.95);
}

TEST(Stats, CoefficientOfVariation) {
  const double uniform[] = {5.0, 5.0, 5.0};
  EXPECT_NEAR(coefficient_of_variation(uniform), 0.0, 1e-12);
  const double spread[] = {1.0, 9.0};
  EXPECT_GT(coefficient_of_variation(spread), 0.5);
}

TEST(Stats, RunningStatMatchesBatch) {
  RunningStat rs;
  const double vals[] = {1.5, -2.0, 7.25, 0.0, 3.5};
  for (double v : vals) rs.add(v);
  const Summary s = summarize(vals);
  EXPECT_NEAR(rs.mean(), s.mean, 1e-12);
  EXPECT_NEAR(rs.stddev(), s.stddev, 1e-12);
  EXPECT_EQ(rs.min(), -2.0);
  EXPECT_EQ(rs.max(), 7.25);
}

TEST(Stats, HistogramBinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps low
  h.add(0.5);
  h.add(9.9);
  h.add(25.0);   // clamps high
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bins()[0], 2u);
  EXPECT_EQ(h.bins()[4], 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 64; ++i) {
    futs.push_back(pool.submit([&counter, i] {
      ++counter;
      return i * 2;
    }));
  }
  for (int i = 0; i < 64; ++i) EXPECT_EQ(futs[i].get(), i * 2);
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      ++done;
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(&pool, 3, 997, 16, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), i >= 3 && i < 997 ? 1 : 0) << i;
  }
}

TEST(ParallelFor, NullPoolRunsInlineAsOneChunk) {
  int calls = 0;
  parallel_for(nullptr, 0, 100, 8, [&](std::size_t b, std::size_t e) {
    ++calls;
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 100u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, EmptyAndSmallRanges) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(&pool, 5, 5, 1, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // Range within one grain: single inline chunk.
  parallel_for(&pool, 0, 4, 8, [&](std::size_t b, std::size_t e) {
    ++calls;
    EXPECT_EQ(e - b, 4u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, NestedCallFromWorkerRunsInline) {
  // A parallel_for issued from inside one of the same pool's workers must not
  // re-enter the queue (submit-and-wait from a worker can deadlock once the
  // pool is saturated); it runs the whole range inline on that worker.
  ThreadPool pool(2);
  std::atomic<int> inner_chunks{0};
  auto fut = pool.submit([&] {
    EXPECT_TRUE(pool.on_worker_thread());
    parallel_for(&pool, 0, 64, 1, [&](std::size_t b, std::size_t e) {
      ++inner_chunks;
      EXPECT_EQ(b, 0u);
      EXPECT_EQ(e, 64u);
    });
  });
  fut.get();
  EXPECT_EQ(inner_chunks.load(), 1);
  EXPECT_FALSE(pool.on_worker_thread());
}

TEST(ParallelFor, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(&pool, 0, 100, 1,
                   [&](std::size_t b, std::size_t) {
                     if (b == 0) throw std::runtime_error("chunk failed");
                   }),
      std::runtime_error);
}

TEST(ComputePool, ConfigurableAndInlineAtOneThread) {
  set_compute_pool_threads(1);
  EXPECT_EQ(compute_pool_threads(), 1u);
  EXPECT_EQ(compute_pool(), nullptr);  // 1 thread = run inline
  set_compute_pool_threads(3);
  ASSERT_NE(compute_pool(), nullptr);
  EXPECT_EQ(compute_pool()->size(), 3u);
  EXPECT_EQ(compute_pool_threads(), 3u);
  set_compute_pool_threads(0);  // back to auto for the rest of the suite
  EXPECT_GE(compute_pool_threads(), 1u);
}

TEST(Table, FormatsAligned) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 22222 |"), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::speedup(1.5), "1.50x");
  EXPECT_EQ(Table::percent(0.306), "30.6%");
  EXPECT_EQ(Table::bytes(2048), "2.00 KiB");
  EXPECT_EQ(Table::bytes(3.5 * 1024 * 1024 * 1024), "3.50 GiB");
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(gib_per_s(1.0), 1024.0 * 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(to_gib_per_s(gib_per_s(17.5)), 17.5);
}

}  // namespace
}  // namespace moment::util
