// Tests for the GNN substrate: tensor kernels, blocks, numeric gradient
// checks for both layer types, losses, optimizers, and end-to-end learning
// on the synthetic task.

#include <gtest/gtest.h>

#include <cmath>

#include "gnn/block.hpp"
#include "gnn/features.hpp"
#include "gnn/gat_layer.hpp"
#include "gnn/loss.hpp"
#include "gnn/model.hpp"
#include "gnn/optimizer.hpp"
#include "gnn/sage_layer.hpp"
#include "gnn/synthetic.hpp"
#include "gnn/trainer.hpp"
#include "graph/generators.hpp"

namespace moment::gnn {
namespace {

TEST(Tensor, MatmulAgainstHand) {
  Tensor a(2, 3), b(3, 2), out(2, 2);
  const float av[] = {1, 2, 3, 4, 5, 6};
  const float bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  matmul(a, b, out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 58);
  EXPECT_FLOAT_EQ(out.at(0, 1), 64);
  EXPECT_FLOAT_EQ(out.at(1, 0), 139);
  EXPECT_FLOAT_EQ(out.at(1, 1), 154);
}

TEST(Tensor, MatmulTransposedVariantsConsistent) {
  util::Pcg32 rng(1);
  Tensor a = Tensor::glorot(4, 3, rng);
  Tensor b = Tensor::glorot(3, 5, rng);
  Tensor ab(4, 5);
  matmul(a, b, ab);
  Tensor bt(5, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 5; ++j) bt.at(j, i) = b.at(i, j);
  }
  Tensor ab2(4, 5);
  matmul_bt(a, bt, ab2);
  for (std::size_t i = 0; i < ab.size(); ++i) {
    EXPECT_NEAR(ab.data()[i], ab2.data()[i], 1e-5);
  }
  Tensor at(3, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 3; ++j) at.at(j, i) = a.at(i, j);
  }
  Tensor ab3(4, 5);
  matmul_at(at, b, ab3);
  for (std::size_t i = 0; i < ab.size(); ++i) {
    EXPECT_NEAR(ab.data()[i], ab3.data()[i], 1e-5);
  }
}

TEST(Tensor, MatmulShapeChecks) {
  Tensor a(2, 3), b(4, 2), out(2, 2);
  EXPECT_THROW(matmul(a, b, out), std::invalid_argument);
}

TEST(Tensor, SoftmaxRowsSumToOne) {
  util::Pcg32 rng(2);
  Tensor x = Tensor::glorot(5, 7, rng);
  x *= 10.0f;
  softmax_rows(x);
  for (std::size_t r = 0; r < 5; ++r) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < 7; ++c) {
      EXPECT_GE(x.at(r, c), 0.0f);
      sum += x.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Tensor, ReluAndBackward) {
  Tensor x(1, 4);
  const float v[] = {-1.0f, 0.0f, 2.0f, -3.0f};
  std::copy(v, v + 4, x.data());
  relu(x);
  EXPECT_FLOAT_EQ(x.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(x.at(0, 2), 2.0f);
  Tensor g(1, 4);
  g.fill(1.0f);
  relu_backward(x, g);
  EXPECT_FLOAT_EQ(g.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(g.at(0, 2), 1.0f);
}

/// A tiny fixed block: 3 dst vertices, 5 src vertices.
Block tiny_block() {
  Block b;
  b.src_ids = {0, 1, 2, 3, 4};
  b.dst_ids = {0, 1, 2};
  b.dst_in_src = {0, 1, 2};
  b.edges = {{0, 3}, {0, 4}, {1, 0}, {1, 3}, {2, 2}, {2, 4}, {2, 1}};
  return b;
}

/// Central-difference gradient check through an arbitrary layer.
template <typename Layer>
void check_gradients(Layer& layer, const Block& block, std::size_t in_dim,
                     float tol) {
  util::Pcg32 rng(7);
  Tensor x = Tensor::glorot(block.num_src(), in_dim, rng);
  const Tensor out0 = layer.forward(block, x);
  Tensor w = Tensor::glorot(out0.rows(), out0.cols(), rng);
  auto loss_of = [&](const Tensor& input) {
    const Tensor o = layer.forward(block, input);
    double acc = 0.0;
    for (std::size_t i = 0; i < o.size(); ++i) {
      acc += static_cast<double>(o.data()[i]) * w.data()[i];
    }
    return acc;
  };

  layer.forward(block, x);  // refresh saved state
  for (Param* p : layer.parameters()) p->zero_grad();
  const Tensor grad_x = layer.backward(block, w);

  const float eps = 1e-3f;
  for (std::size_t idx : {std::size_t{0}, x.size() / 2, x.size() - 1}) {
    Tensor xp = x, xm = x;
    xp.data()[idx] += eps;
    xm.data()[idx] -= eps;
    const double num = (loss_of(xp) - loss_of(xm)) / (2.0 * eps);
    EXPECT_NEAR(grad_x.data()[idx], num, tol) << "input grad @" << idx;
  }

  layer.forward(block, x);
  for (Param* p : layer.parameters()) p->zero_grad();
  layer.backward(block, w);
  Param* p0 = layer.parameters()[0];
  for (std::size_t idx : {std::size_t{0}, p0->value.size() / 2}) {
    const float orig = p0->value.data()[idx];
    p0->value.data()[idx] = orig + eps;
    const double lp = loss_of(x);
    p0->value.data()[idx] = orig - eps;
    const double lm = loss_of(x);
    p0->value.data()[idx] = orig;
    const double num = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(p0->grad.data()[idx], num, tol) << "param grad @" << idx;
  }
}

TEST(SageLayer, ForwardShape) {
  util::Pcg32 rng(3);
  SageLayer layer(6, 4, true, rng);
  const Block b = tiny_block();
  Tensor x = Tensor::glorot(b.num_src(), 6, rng);
  const Tensor out = layer.forward(b, x);
  EXPECT_EQ(out.rows(), b.num_dst());
  EXPECT_EQ(out.cols(), 4u);
}

TEST(SageLayer, GradientCheckLinear) {
  util::Pcg32 rng(4);
  SageLayer layer(5, 3, /*apply_relu=*/false, rng);
  const Block b = tiny_block();
  check_gradients(layer, b, 5, 2e-2f);
}

TEST(SageLayer, GradientCheckRelu) {
  util::Pcg32 rng(5);
  SageLayer layer(5, 3, /*apply_relu=*/true, rng);
  const Block b = tiny_block();
  check_gradients(layer, b, 5, 2e-2f);
}

TEST(GatLayer, ForwardShapeMultiHead) {
  util::Pcg32 rng(6);
  GatLayer layer(6, 2, 3, true, rng);
  const Block b = tiny_block();
  Tensor x = Tensor::glorot(b.num_src(), 6, rng);
  const Tensor out = layer.forward(b, x);
  EXPECT_EQ(out.rows(), b.num_dst());
  EXPECT_EQ(out.cols(), 6u);  // 2 heads x 3 dims
}

TEST(GatLayer, OutputsFinite) {
  util::Pcg32 rng(8);
  GatLayer layer(4, 1, 4, false, rng);
  const Block b = tiny_block();
  Tensor x = Tensor::glorot(b.num_src(), 4, rng);
  x *= 20.0f;  // stress the softmax stability path
  const Tensor out = layer.forward(b, x);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(std::isfinite(out.data()[i]));
  }
}

TEST(GatLayer, GradientCheckSingleHead) {
  util::Pcg32 rng(9);
  GatLayer layer(4, 1, 3, /*apply_elu=*/false, rng);
  const Block b = tiny_block();
  check_gradients(layer, b, 4, 3e-2f);
}

TEST(GatLayer, GradientCheckMultiHeadElu) {
  util::Pcg32 rng(10);
  GatLayer layer(4, 2, 3, /*apply_elu=*/true, rng);
  const Block b = tiny_block();
  check_gradients(layer, b, 4, 3e-2f);
}

TEST(Loss, CrossEntropyKnownValue) {
  Tensor logits(1, 2);
  const std::int32_t labels[] = {1};
  const LossResult r = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(r.loss, std::log(2.0f), 1e-5f);
  EXPECT_NEAR(r.grad_logits.at(0, 0), 0.5f, 1e-5f);
  EXPECT_NEAR(r.grad_logits.at(0, 1), -0.5f, 1e-5f);
}

TEST(Loss, GradientSumsToZeroPerRow) {
  util::Pcg32 rng(11);
  Tensor logits = Tensor::glorot(6, 5, rng);
  const std::vector<std::int32_t> labels = {0, 1, 2, 3, 4, 0};
  const LossResult r = softmax_cross_entropy(logits, labels);
  for (std::size_t i = 0; i < 6; ++i) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < 5; ++c) sum += r.grad_logits.at(i, c);
    EXPECT_NEAR(sum, 0.0f, 1e-6f);
  }
}

TEST(Loss, AccuracyComputed) {
  Tensor logits(2, 2);
  logits.at(0, 0) = 5.0f;  // predicts 0
  logits.at(1, 1) = 5.0f;  // predicts 1
  const std::int32_t labels[] = {0, 0};
  EXPECT_NEAR(softmax_cross_entropy(logits, labels).accuracy, 0.5f, 1e-6f);
}

TEST(Loss, RejectsBadLabels) {
  Tensor logits(1, 2);
  const std::int32_t bad[] = {7};
  EXPECT_THROW(softmax_cross_entropy(logits, bad), std::out_of_range);
}

TEST(Optimizer, SgdDescendsQuadratic) {
  Param p("w", Tensor(1, 1));
  p.value.at(0, 0) = 4.0f;
  Sgd opt({&p}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    p.zero_grad();
    p.grad.at(0, 0) = 2.0f * p.value.at(0, 0);  // d/dw of w^2
    opt.step();
  }
  EXPECT_NEAR(p.value.at(0, 0), 0.0f, 1e-4f);
}

TEST(Optimizer, AdamDescendsQuadratic) {
  Param p("w", Tensor(1, 1));
  p.value.at(0, 0) = 4.0f;
  Adam opt({&p}, 0.1f);
  for (int i = 0; i < 300; ++i) {
    p.zero_grad();
    p.grad.at(0, 0) = 2.0f * p.value.at(0, 0);
    opt.step();
  }
  EXPECT_NEAR(p.value.at(0, 0), 0.0f, 1e-2f);
}

TEST(Blocks, BuiltFromSampledSubgraph) {
  graph::RmatParams gp;
  gp.num_vertices = 512;
  gp.num_edges = 4000;
  const auto g = graph::generate_rmat(gp);
  sampling::NeighborSampler sampler(g, {5, 3});
  util::Pcg32 rng(12);
  const std::vector<graph::VertexId> seeds = {1, 2, 3, 4};
  const auto sg = sampler.sample(seeds, rng);
  const auto blocks = build_blocks(sg);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks.back().dst_ids, seeds);
  for (const auto& b : blocks) {
    for (std::size_t i = 0; i < b.dst_ids.size(); ++i) {
      EXPECT_EQ(b.src_ids[static_cast<std::size_t>(b.dst_in_src[i])],
                b.dst_ids[i]);
    }
    for (const auto& [dst, src] : b.edges) {
      EXPECT_LT(static_cast<std::size_t>(dst), b.num_dst());
      EXPECT_LT(static_cast<std::size_t>(src), b.num_src());
    }
  }
}

TEST(Model, ForwardProducesSeedLogits) {
  graph::RmatParams gp;
  gp.num_vertices = 512;
  gp.num_edges = 4000;
  const auto g = graph::generate_rmat(gp);
  sampling::NeighborSampler sampler(g, {4, 4});
  util::Pcg32 rng(13);
  const std::vector<graph::VertexId> seeds = {9, 10, 11};
  const auto blocks = build_blocks(sampler.sample(seeds, rng));

  for (ModelKind kind : {ModelKind::kGraphSage, ModelKind::kGat}) {
    ModelConfig cfg;
    cfg.kind = kind;
    cfg.in_dim = 8;
    cfg.hidden_dim = 6;
    cfg.num_classes = 4;
    cfg.gat_heads = 2;
    GnnModel model(cfg);
    Tensor x0 = Tensor::glorot(blocks[0].num_src(), 8, rng);
    const Tensor logits = model.forward(blocks, x0);
    EXPECT_EQ(logits.rows(), seeds.size());
    EXPECT_EQ(logits.cols(), 4u);
    EXPECT_GT(model.num_parameters(), 0u);
  }
}

TEST(Features, AsyncProtocolFallsBackToSync) {
  // InMemoryFeatures uses the base-class fallback: gather_begin completes
  // the gather immediately and reports a synchronous ticket.
  Tensor feats(16, 4);
  for (std::size_t r = 0; r < 16; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      feats.at(r, c) = static_cast<float>(r * 10 + c);
    }
  }
  InMemoryFeatures provider(feats);
  const std::vector<graph::VertexId> vs = {3, 0, 15, 7};
  Tensor sync_out(vs.size(), 4), async_out(vs.size(), 4);
  provider.gather(vs, sync_out);
  const auto ticket = provider.gather_begin(vs, async_out);
  EXPECT_EQ(ticket, FeatureProvider::kSyncTicket);
  // Already filled before wait — the engine may read it right away.
  for (std::size_t i = 0; i < vs.size(); ++i) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_FLOAT_EQ(async_out.at(i, c), sync_out.at(i, c));
    }
  }
  provider.gather_wait(ticket);  // no-op
  EXPECT_FLOAT_EQ(async_out.at(0, 0), 30.0f);
}

TEST(Model, ConstParametersViewMatchesMutable) {
  ModelConfig cfg;
  cfg.in_dim = 8;
  cfg.hidden_dim = 6;
  cfg.num_classes = 4;
  GnnModel model(cfg);
  const GnnModel& cmodel = model;
  const auto mut = model.parameters();
  const auto view = cmodel.parameters();
  ASSERT_EQ(mut.size(), view.size());
  for (std::size_t i = 0; i < mut.size(); ++i) {
    EXPECT_EQ(mut[i], view[i]);  // same underlying Param objects
  }
  EXPECT_EQ(model.num_parameters(), cmodel.num_parameters());
}

TEST(Synthetic, TaskIsLearnable) {
  // End-to-end: training on the synthetic task must beat chance clearly.
  graph::RmatParams gp;
  gp.num_vertices = 1024;
  gp.num_edges = 8000;
  const auto g = graph::generate_rmat(gp);
  const auto task = make_synthetic_task(g, 4, 16, 0.3, 21);
  InMemoryFeatures features(task.features);

  ModelConfig cfg;
  cfg.kind = ModelKind::kGraphSage;
  cfg.in_dim = 16;
  cfg.hidden_dim = 16;
  cfg.num_classes = 4;
  GnnModel model(cfg);
  Adam opt(model.parameters(), 0.01f);
  Trainer trainer(model, opt, features);

  sampling::NeighborSampler sampler(g, {5, 5});
  auto train = sampling::select_train_vertices(g, 0.2, 3);
  sampling::BatchIterator batches(train, 64, 4);
  util::Pcg32 rng(22);

  float last_acc = 0.0f;
  for (int epoch = 0; epoch < 6; ++epoch) {
    batches.reset_epoch();
    for (;;) {
      const auto batch = batches.next();
      if (batch.empty()) break;
      const auto sg = sampler.sample(batch, rng);
      last_acc = trainer.step(sg, task.labels).accuracy;
    }
  }
  EXPECT_GT(last_acc, 0.6f);
}

TEST(Trainer, EvaluateDoesNotChangeParams) {
  graph::RmatParams gp;
  gp.num_vertices = 256;
  gp.num_edges = 2000;
  const auto g = graph::generate_rmat(gp);
  const auto task = make_synthetic_task(g, 3, 8, 0.2, 5);
  InMemoryFeatures features(task.features);
  ModelConfig cfg;
  cfg.in_dim = 8;
  cfg.hidden_dim = 8;
  cfg.num_classes = 3;
  GnnModel model(cfg);
  Adam opt(model.parameters(), 0.01f);
  Trainer trainer(model, opt, features);
  sampling::NeighborSampler sampler(g, {3, 3});
  util::Pcg32 rng(6);
  const std::vector<graph::VertexId> seeds = {1, 2, 3};
  const auto sg = sampler.sample(seeds, rng);

  const float before = model.parameters()[0]->value.norm();
  trainer.evaluate(sg, task.labels);
  EXPECT_FLOAT_EQ(model.parameters()[0]->value.norm(), before);
  trainer.step(sg, task.labels);
  EXPECT_NE(model.parameters()[0]->value.norm(), before);
}

}  // namespace
}  // namespace moment::gnn
