// Cross-module integration tests: the full Moment pipeline from AutoModule
// plan through the NVMe IO stack into data-parallel GNN training, plus the
// prediction-vs-simulation consistency the paper's Fig. 13 relies on.

#include <gtest/gtest.h>

#include <memory>

#include "core/auto_module.hpp"
#include "gnn/synthetic.hpp"
#include "iostack/feature_store.hpp"
#include "runtime/parallel_trainer.hpp"
#include "runtime/systems.hpp"

namespace moment {
namespace {

TEST(Integration, PlanDrivesIoStackAndTraining) {
  // 1. Build a dataset and an AutoModule plan (placement + DDAK layout).
  const auto spec = topology::make_machine_a();
  core::AutoModuleConfig cfg;
  cfg.machine = &spec;
  cfg.dataset = graph::DatasetId::kPA;
  cfg.dataset_scale_shift = 4;  // small, fast
  cfg.num_gpus = 2;
  cfg.num_ssds = 4;
  const runtime::Workbench bench =
      runtime::Workbench::make(cfg.dataset, cfg.dataset_scale_shift, cfg.seed);
  const core::Plan plan = core::AutoModule::plan(cfg, bench);
  ASSERT_TRUE(plan.prediction.feasible);

  // 2. Materialise the DDAK layout in the functional tiered feature store.
  const auto& g = bench.dataset.csr;
  const auto task = gnn::make_synthetic_task(g, 4, 16, 0.3, 5);

  // Map plan bins to physical backings (SSD ordinals in bin order).
  std::vector<iostack::BinBacking> backings;
  int ssd_ordinal = 0;
  for (const auto& bin : plan.bins) {
    iostack::BinBacking b;
    switch (bin.tier) {
      case topology::StorageTier::kGpuHbm:
        b.kind = iostack::BinBacking::Kind::kGpuCache;
        break;
      case topology::StorageTier::kCpuDram:
        b.kind = iostack::BinBacking::Kind::kCpuCache;
        break;
      case topology::StorageTier::kSsd:
        b.kind = iostack::BinBacking::Kind::kSsd;
        b.ssd = ssd_ordinal++;
        break;
    }
    backings.push_back(b);
  }
  ASSERT_EQ(ssd_ordinal, 4);

  iostack::SsdOptions sopts;
  sopts.capacity_bytes =
      static_cast<std::size_t>(g.num_vertices()) * iostack::kPageBytes;
  iostack::SsdArray array(static_cast<std::size_t>(ssd_ordinal), sopts);
  iostack::TieredFeatureStore store(task.features,
                                    plan.data_placement.bin_of_vertex,
                                    backings, array);
  auto client0 = std::make_unique<iostack::TieredFeatureClient>(store);
  auto client1 = std::make_unique<iostack::TieredFeatureClient>(store);
  array.start_all();

  // 3. Data-parallel training THROUGH the IO stack.
  gnn::ModelConfig mcfg;
  mcfg.kind = gnn::ModelKind::kGraphSage;
  mcfg.in_dim = 16;
  mcfg.hidden_dim = 16;
  mcfg.num_classes = 4;
  auto train = sampling::select_train_vertices(g, 0.05, 3);
  runtime::DataParallelTrainer trainer(
      g, {client0.get(), client1.get()}, mcfg, {5, 5}, train, 0.01f, 7);
  runtime::EpochStats stats;
  for (int epoch = 0; epoch < 4; ++epoch) {
    stats = trainer.train_epoch(task.labels, 32);
  }
  array.stop_all();

  EXPECT_TRUE(trainer.replicas_in_sync());
  EXPECT_GT(stats.mean_accuracy, 0.5f);
  // The hot tiers and the SSD path must all have been exercised.
  EXPECT_GT(client0->stats().gpu_hits, 0u);
  EXPECT_GT(client0->stats().ssd_reads, 0u);
  EXPECT_GT(client1->stats().ssd_reads, 0u);
}

TEST(Integration, HotTierAbsorbsMostTraffic) {
  // DDAK puts the hottest vertices in GPU/CPU caches, so the share of
  // gathers served without SSD reads must exceed the caches' capacity share.
  const auto spec = topology::make_machine_a();
  core::AutoModuleConfig cfg;
  cfg.machine = &spec;
  cfg.dataset = graph::DatasetId::kIG;
  cfg.dataset_scale_shift = 4;
  cfg.num_gpus = 2;
  cfg.num_ssds = 2;
  cfg.cache.gpu_cache_fraction = 0.01;
  cfg.cache.cpu_cache_fraction = 0.02;
  const runtime::Workbench bench =
      runtime::Workbench::make(cfg.dataset, cfg.dataset_scale_shift, cfg.seed);
  const core::Plan plan = core::AutoModule::plan(cfg, bench);

  const auto& g = bench.dataset.csr;
  const auto task = gnn::make_synthetic_task(g, 2, 8, 0.2, 9);
  std::vector<iostack::BinBacking> backings;
  int ssd = 0;
  for (const auto& bin : plan.bins) {
    if (bin.tier == topology::StorageTier::kSsd) {
      backings.push_back({iostack::BinBacking::Kind::kSsd, ssd++});
    } else if (bin.tier == topology::StorageTier::kCpuDram) {
      backings.push_back({iostack::BinBacking::Kind::kCpuCache, -1});
    } else {
      backings.push_back({iostack::BinBacking::Kind::kGpuCache, -1});
    }
  }
  iostack::SsdOptions sopts;
  sopts.capacity_bytes =
      static_cast<std::size_t>(g.num_vertices()) * iostack::kPageBytes;
  iostack::SsdArray array(static_cast<std::size_t>(ssd), sopts);
  iostack::TieredFeatureStore store(task.features,
                                    plan.data_placement.bin_of_vertex,
                                    backings, array);
  iostack::TieredFeatureClient client(store);
  array.start_all();

  sampling::NeighborSampler sampler(g, {10, 5});
  auto train = sampling::select_train_vertices(g, 0.02, 4);
  util::Pcg32 rng(5);
  for (int b = 0; b < 8; ++b) {
    const auto sg = sampler.sample(
        std::span<const graph::VertexId>(train.data() + b * 16, 16), rng);
    gnn::Tensor out(sg.fetch_set.size(), 8);
    client.gather(sg.fetch_set, out);
  }
  array.stop_all();

  const auto& s = client.stats();
  const double total =
      static_cast<double>(s.gpu_hits + s.cpu_hits + s.ssd_reads);
  const double cache_share =
      static_cast<double>(s.gpu_hits + s.cpu_hits) / total;
  // Caches hold 3% of vertices but must serve far more than 3% of gathers.
  EXPECT_GT(cache_share, 0.10);
}

TEST(Integration, PredictionTracksSimulationForMoment) {
  // Fig.-13 consistency: for Moment's own plans, the max-flow predicted
  // epoch time and the fluid-simulated epoch time agree within a modest
  // error across datasets and GPU counts.
  for (auto id : {graph::DatasetId::kPA, graph::DatasetId::kIG}) {
    const runtime::Workbench bench = runtime::Workbench::make(id, 4, 11);
    for (int gpus : {2, 4}) {
      for (const auto& spec :
           {topology::make_machine_a(), topology::make_machine_b()}) {
        runtime::ExperimentConfig c;
        c.machine = &spec;
        c.dataset = id;
        c.num_gpus = gpus;
        c.num_ssds = 8;
        const auto r =
            runtime::run_system(runtime::SystemKind::kMoment, c, bench);
        ASSERT_FALSE(r.oom);
        const double err =
            std::abs(r.predicted_epoch_time_s - r.epoch_time_s) /
            r.epoch_time_s;
        EXPECT_LT(err, 0.30)
            << spec.name << " " << graph::dataset_name(id) << " gpus=" << gpus
            << ": predicted " << r.predicted_epoch_time_s << " measured "
            << r.epoch_time_s;
      }
    }
  }
}

TEST(Integration, EndToEndShapesMatchPaper) {
  // The headline claims, at reduced scale: Moment >= best classic placement,
  // scaling 1->4 GPUs clearly better than placement (d).
  const auto spec = topology::make_machine_b();
  const runtime::Workbench bench =
      runtime::Workbench::make(graph::DatasetId::kIG, 3, 42);

  runtime::ExperimentConfig c;
  c.machine = &spec;
  c.num_ssds = 8;

  // Moment vs classic c at 4 GPUs.
  c.num_gpus = 4;
  const auto moment4 = runtime::run_system(runtime::SystemKind::kMoment, c,
                                           bench);
  c.default_classic = 'c';
  const auto classic4 =
      runtime::run_system(runtime::SystemKind::kMHyperion, c, bench);
  EXPECT_GE(moment4.throughput_seeds_per_s,
            classic4.throughput_seeds_per_s * 0.99);

  // Scaling: Moment 1 -> 4 GPUs.
  c.num_gpus = 1;
  const auto moment1 = runtime::run_system(runtime::SystemKind::kMoment, c,
                                           bench);
  const double scaling = moment4.throughput_seeds_per_s /
                         moment1.throughput_seeds_per_s;
  EXPECT_GT(scaling, 1.5);  // paper: 2.21x on machine B
  EXPECT_LT(scaling, 4.5);
}

}  // namespace
}  // namespace moment
