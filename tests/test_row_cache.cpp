// Tests for the gather IO-reduction pipeline: the sharded CLOCK row cache,
// in-batch dedup, run coalescing, hotness-seeded warmup, failover
// invalidation, and concurrent multi-client gathers. Every GatherOptions
// combination must return byte-identical features — only command counts may
// differ. Registered under the `cache` CTest label (also run under TSan).

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "gnn/synthetic.hpp"
#include "graph/generators.hpp"
#include "iostack/fault_injector.hpp"
#include "iostack/feature_store.hpp"
#include "iostack/row_cache.hpp"
#include "util/rng.hpp"

namespace moment::iostack {
namespace {

constexpr std::size_t kVertices = 512;
constexpr std::size_t kDim = 12;
constexpr std::size_t kFirstSsdVertex = 64;  // v < 32 GPU, v < 64 CPU

/// Three-SSD tiered store over a synthetic RMAT task, mirroring the
/// bench_faults rig: the coldest ~87% of vertices live striped across SSDs.
struct Rig {
  graph::CsrGraph g;
  gnn::SyntheticTask task;
  std::vector<BinBacking> bins;
  std::vector<std::int32_t> bov;
  SsdArray array;
  TieredFeatureStore store;

  Rig()
      : g(make_graph()),
        task(gnn::make_synthetic_task(g, 4, kDim, 0.3, 9)),
        bins({{BinBacking::Kind::kGpuCache, -1},
              {BinBacking::Kind::kCpuCache, -1},
              {BinBacking::Kind::kSsd, 0},
              {BinBacking::Kind::kSsd, 1},
              {BinBacking::Kind::kSsd, 2}}),
        bov(make_bov()),
        array(3, make_ssd_options()),
        store(task.features, bov, bins, array) {}

  static graph::CsrGraph make_graph() {
    graph::RmatParams gp;
    gp.num_vertices = kVertices;
    gp.num_edges = 4000;
    return graph::generate_rmat(gp);
  }
  static std::vector<std::int32_t> make_bov() {
    std::vector<std::int32_t> bov(kVertices);
    for (std::size_t v = 0; v < kVertices; ++v) {
      if (v < 32) {
        bov[v] = 0;
      } else if (v < kFirstSsdVertex) {
        bov[v] = 1;
      } else {
        bov[v] = static_cast<std::int32_t>(2 + v % 3);
      }
    }
    return bov;
  }
  static SsdOptions make_ssd_options() {
    SsdOptions opts;
    opts.capacity_bytes = 2ull << 20;
    return opts;
  }

  /// SSD-resident vertices in descending synthetic "hotness" (low ids
  /// first), the order the power-law batches below favour.
  std::vector<graph::VertexId> hot_order() const {
    std::vector<graph::VertexId> order;
    for (graph::VertexId v = kFirstSsdVertex; v < kVertices; ++v) {
      order.push_back(v);
    }
    return order;
  }
};

/// Zipf(alpha) batch over the SSD-resident vertex range: rank r maps to
/// vertex kFirstSsdVertex + r, so low vertex ids are the hot ones.
std::vector<graph::VertexId> zipf_batch(std::size_t batch,
                                        util::Pcg32& rng) {
  static const util::ZipfSampler sampler(kVertices - kFirstSsdVertex, 1.2);
  std::vector<graph::VertexId> vs(batch);
  for (auto& v : vs) {
    v = static_cast<graph::VertexId>(kFirstSsdVertex + sampler.sample(rng));
  }
  return vs;
}

/// Uniform batch over all tiers, with duplicates (bound < batch size).
std::vector<graph::VertexId> uniform_batch(std::size_t batch,
                                           util::Pcg32& rng) {
  std::vector<graph::VertexId> vs(batch);
  for (auto& v : vs) {
    v = static_cast<graph::VertexId>(rng.next_below(kVertices));
  }
  return vs;
}

void expect_bytes_match(const gnn::Tensor& out,
                        std::span<const graph::VertexId> vs,
                        const gnn::Tensor& truth, const char* what) {
  ASSERT_EQ(out.rows(), vs.size());
  for (std::size_t i = 0; i < vs.size(); ++i) {
    const auto got = out.row(i);
    const auto want = truth.row(vs[i]);
    ASSERT_EQ(0, std::memcmp(got.data(), want.data(),
                             got.size() * sizeof(float)))
        << what << ": vertex " << vs[i] << " at row " << i;
  }
}

GatherOptions naive_options() {
  GatherOptions o;
  o.dedup = false;
  o.coalesce = false;
  o.use_cache = false;
  return o;
}

// ---------------------------------------------------------------------------
// RowCache unit tests
// ---------------------------------------------------------------------------

TEST(RowCache, LookupInsertRoundTrip) {
  RowCacheOptions opts;
  opts.capacity_rows = 4;
  opts.shards = 1;
  RowCache cache(opts, 3);
  std::vector<float> row = {1.0f, 2.0f, 3.0f};
  std::vector<float> out(3, 0.0f);

  EXPECT_FALSE(cache.lookup(7, out));  // cold miss
  cache.insert(7, row);
  ASSERT_TRUE(cache.lookup(7, out));
  EXPECT_EQ(0, std::memcmp(out.data(), row.data(), 3 * sizeof(float)));
  EXPECT_EQ(cache.size(), 1u);

  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.evictions, 0u);
}

TEST(RowCache, ClockEvictionIsDeterministicAtTinyCapacity) {
  // Two caches fed the identical access sequence end up with identical
  // stats and identical residency: CLOCK has no hidden randomness.
  auto run = [](RowCache& cache) {
    std::vector<float> row(2);
    std::vector<float> out(2);
    for (graph::VertexId v = 0; v < 16; ++v) {
      row[0] = static_cast<float>(v);
      row[1] = static_cast<float>(v) * 0.5f;
      cache.insert(v, row);
      if (v % 3 == 0) cache.lookup(v, out);  // touch: second chance
    }
  };
  RowCacheOptions opts;
  opts.capacity_rows = 4;
  opts.shards = 1;
  RowCache a(opts, 2), b(opts, 2);
  run(a);
  run(b);

  const auto sa = a.stats();
  const auto sb = b.stats();
  EXPECT_EQ(sa.insertions, sb.insertions);
  EXPECT_EQ(sa.evictions, sb.evictions);
  EXPECT_EQ(sa.hits, sb.hits);
  EXPECT_GT(sa.evictions, 0u);           // tiny capacity must evict
  EXPECT_EQ(a.size(), 4u);               // full after overflow
  EXPECT_EQ(a.size(), b.size());
  std::vector<float> out(2);
  for (graph::VertexId v = 0; v < 16; ++v) {
    EXPECT_EQ(a.lookup(v, out), b.lookup(v, out)) << "vertex " << v;
  }
}

TEST(RowCache, ReinsertNeverChangesBytes) {
  RowCacheOptions opts;
  opts.capacity_rows = 2;
  opts.shards = 1;
  RowCache cache(opts, 1);
  const float first[] = {42.0f};
  const float imposter[] = {-1.0f};
  cache.insert(5, first);
  cache.insert(5, imposter);  // refresh only: bytes must not change
  std::vector<float> out(1);
  ASSERT_TRUE(cache.lookup(5, out));
  EXPECT_EQ(out[0], 42.0f);
}

TEST(RowCache, InvalidateAllDropsEverythingAndCounts) {
  RowCacheOptions opts;
  opts.capacity_rows = 8;
  opts.shards = 4;
  RowCache cache(opts, 2);
  std::vector<float> row(2, 1.0f);
  for (graph::VertexId v = 0; v < 8; ++v) cache.insert(v, row);
  const std::size_t resident = cache.size();
  ASSERT_GT(resident, 0u);

  cache.invalidate_all();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().invalidations, resident);
  std::vector<float> out(2);
  for (graph::VertexId v = 0; v < 8; ++v) {
    EXPECT_FALSE(cache.lookup(v, out)) << "vertex " << v;
  }
}

TEST(RowCache, ZeroCapacityIsInert) {
  RowCacheOptions opts;
  opts.capacity_rows = 0;
  RowCache cache(opts, 4);
  std::vector<float> row(4, 1.0f);
  std::vector<float> out(4);
  cache.insert(1, row);
  EXPECT_FALSE(cache.lookup(1, out));
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------------
// Gather pipeline: byte-identity across every GatherOptions combination
// ---------------------------------------------------------------------------

TEST(GatherPipeline, AllOptionCombinationsAreByteIdenticalOnRandomBatches) {
  Rig rig;
  RowCacheOptions cache_opts;
  cache_opts.capacity_rows = 128;
  rig.store.enable_row_cache(cache_opts);

  GatherOptions dedup_only = naive_options();
  dedup_only.dedup = true;
  GatherOptions dedup_coalesce = dedup_only;
  dedup_coalesce.coalesce = true;
  const GatherOptions full;  // dedup + coalesce + cache

  TieredFeatureClient naive(rig.store, 256, {}, naive_options());
  TieredFeatureClient dedup(rig.store, 256, {}, dedup_only);
  TieredFeatureClient coalesced(rig.store, 256, {}, dedup_coalesce);
  TieredFeatureClient cached(rig.store, 256, {}, full);
  rig.array.start_all();

  util::Pcg32 rng(11);
  for (int batch = 0; batch < 6; ++batch) {
    const auto vs = uniform_batch(192, rng);
    gnn::Tensor ref(vs.size(), kDim);
    naive.gather(vs, ref);
    expect_bytes_match(ref, vs, rig.task.features, "naive");
    for (TieredFeatureClient* c : {&dedup, &coalesced, &cached}) {
      gnn::Tensor out(vs.size(), kDim);
      c->gather(vs, out);
      ASSERT_EQ(0, std::memcmp(out.row(0).data(), ref.row(0).data(),
                               vs.size() * kDim * sizeof(float)))
          << "batch " << batch;
    }
  }
  rig.array.stop_all();

  // Uniform batches of 192 over 512 vertices repeat vertices; dedup must
  // have collapsed some SSD reads and cache-tier copies.
  EXPECT_GT(dedup.stats().dedup_saved_reads, 0u);
  EXPECT_LT(dedup.stats().ssd_reads, naive.stats().ssd_reads);
  // Dedup accounts for every SSD occurrence the naive path served: one real
  // read per unique row plus one saved read per duplicate.
  EXPECT_EQ(dedup.stats().ssd_reads + dedup.stats().dedup_saved_reads,
            naive.stats().ssd_reads);
  EXPECT_EQ(dedup.stats().gpu_hits, naive.stats().gpu_hits);
  EXPECT_EQ(dedup.stats().cpu_hits, naive.stats().cpu_hits);
  // Coalescing only merges, never drops: rows match dedup, commands shrink.
  EXPECT_EQ(coalesced.stats().ssd_reads, dedup.stats().ssd_reads);
  EXPECT_LE(coalesced.stats().ssd_commands, coalesced.stats().ssd_reads);
  // The cached client stops issuing reads for rows it has already seen.
  EXPECT_GT(cached.stats().cache_hits, 0u);
  EXPECT_LT(cached.stats().ssd_reads, coalesced.stats().ssd_reads);
}

TEST(GatherPipeline, CoalescingMergesAdjacentRunsOnFullRangeBatch) {
  // A batch covering every vertex gives each SSD a fully contiguous slot
  // range (slots are assigned in vertex order within a device), so run
  // coalescing must pack many rows per command.
  Rig rig;
  GatherOptions opts = naive_options();
  opts.dedup = true;
  opts.coalesce = true;
  TieredFeatureClient client(rig.store, 256, {}, opts);
  rig.array.start_all();

  std::vector<graph::VertexId> vs(kVertices);
  for (std::size_t v = 0; v < kVertices; ++v) {
    vs[v] = static_cast<graph::VertexId>(v);
  }
  gnn::Tensor out(vs.size(), kDim);
  client.gather(vs, out);
  rig.array.stop_all();
  expect_bytes_match(out, vs, rig.task.features, "full range");

  const auto& s = client.stats();
  EXPECT_EQ(s.ssd_reads, kVertices - kFirstSsdVertex);
  EXPECT_GT(s.coalesced_commands, 0u);
  EXPECT_LT(s.ssd_commands, s.ssd_reads / 4)
      << "contiguous slots should coalesce aggressively";
  EXPECT_GT(s.coalesce_rows_per_cmd(), 4.0);
  // Each command stays within the transfer bound.
  const std::size_t max_rows =
      kMaxTransferBytes / rig.store.row_bytes();
  EXPECT_LE(s.coalesce_rows_per_cmd(),
            static_cast<double>(std::max<std::size_t>(1, max_rows)));
}

TEST(GatherPipeline, PowerLawBatchesCutCommandsVsNaive) {
  Rig rig;
  RowCacheOptions cache_opts;
  cache_opts.capacity_rows = 128;
  rig.store.enable_row_cache(cache_opts);
  rig.store.warm_row_cache(rig.hot_order());

  TieredFeatureClient naive(rig.store, 256, {}, naive_options());
  TieredFeatureClient full(rig.store, 256, {});
  rig.array.start_all();

  util::Pcg32 rng_a(21), rng_b(21);  // identical batch streams
  for (int batch = 0; batch < 8; ++batch) {
    const auto vs = zipf_batch(256, rng_a);
    const auto vs2 = zipf_batch(256, rng_b);
    ASSERT_EQ(vs, vs2);
    gnn::Tensor a(vs.size(), kDim), b(vs.size(), kDim);
    naive.gather(vs, a);
    full.gather(vs2, b);
    expect_bytes_match(a, vs, rig.task.features, "naive power-law");
    ASSERT_EQ(0, std::memcmp(a.row(0).data(), b.row(0).data(),
                             vs.size() * kDim * sizeof(float)))
        << "batch " << batch;
  }
  rig.array.stop_all();

  // Zipf(1.2) batches are duplicate- and reuse-heavy: the full pipeline must
  // issue far fewer commands than naive one-read-per-occurrence.
  EXPECT_GT(full.stats().dedup_saved_reads, 0u);
  EXPECT_GT(full.stats().cache_hits, 0u);
  EXPECT_LT(full.stats().ssd_commands, naive.stats().ssd_commands / 2);
}

// ---------------------------------------------------------------------------
// Cache behaviour under a skewed trace
// ---------------------------------------------------------------------------

TEST(GatherPipeline, CacheHitsGrowMonotonicallyUnderSkewedTrace) {
  Rig rig;
  RowCacheOptions cache_opts;
  cache_opts.capacity_rows = 512;  // every SSD row fits: steady state = all hits
  rig.store.enable_row_cache(cache_opts);

  TieredFeatureClient client(rig.store, 256, {});
  rig.array.start_all();

  util::Pcg32 rng(33);
  std::vector<std::uint64_t> hit_deltas, miss_deltas;
  std::uint64_t prev_hits = 0, prev_misses = 0;
  for (int round = 0; round < 6; ++round) {
    const auto vs = zipf_batch(256, rng);
    gnn::Tensor out(vs.size(), kDim);
    client.gather(vs, out);
    expect_bytes_match(out, vs, rig.task.features, "skewed trace");

    const auto& s = client.stats();
    hit_deltas.push_back(s.cache_hits - prev_hits);
    miss_deltas.push_back(s.cache_misses - prev_misses);
    prev_hits = s.cache_hits;
    prev_misses = s.cache_misses;
  }
  rig.array.stop_all();

  // The cache only fills (capacity covers the whole SSD-resident set, so
  // nothing is ever evicted): every round after the first hits rows the
  // previous rounds fetched, and the final round is almost all hits.
  for (std::size_t r = 1; r < hit_deltas.size(); ++r) {
    EXPECT_GT(hit_deltas[r], 0u) << "round " << r;
    EXPECT_GE(hit_deltas[r], hit_deltas[0]) << "round " << r;
  }
  EXPECT_GT(hit_deltas.back(), miss_deltas.back());
  EXPECT_LT(miss_deltas.back(), miss_deltas.front())
      << "misses must shrink as the cache warms";
  EXPECT_EQ(rig.store.row_cache()->stats().evictions, 0u);
}

TEST(GatherPipeline, WarmupSeedsHotRowsAndSkipsCacheTierVertices) {
  Rig rig;
  RowCacheOptions cache_opts;
  cache_opts.capacity_rows = 64;
  rig.store.enable_row_cache(cache_opts);

  // Hotness order starts with GPU/CPU-tier vertices: warmup must skip them
  // (they never reach the SSD path) and seed only SSD-resident rows.
  std::vector<graph::VertexId> order;
  for (graph::VertexId v = 0; v < kVertices; ++v) order.push_back(v);
  const std::size_t seeded = rig.store.warm_row_cache(order);
  EXPECT_EQ(seeded, cache_opts.capacity_rows);
  EXPECT_EQ(rig.store.row_cache()->size(), cache_opts.capacity_rows);

  // The first gather of warmed vertices is pure cache hits: no SSD command.
  TieredFeatureClient client(rig.store, 256, {});
  rig.array.start_all();
  std::vector<graph::VertexId> vs;
  for (graph::VertexId v = kFirstSsdVertex; v < kFirstSsdVertex + 32; ++v) {
    vs.push_back(v);
  }
  gnn::Tensor out(vs.size(), kDim);
  client.gather(vs, out);
  rig.array.stop_all();
  expect_bytes_match(out, vs, rig.task.features, "warmed");
  EXPECT_EQ(client.stats().cache_hits, vs.size());
  EXPECT_EQ(client.stats().ssd_commands, 0u);
}

// ---------------------------------------------------------------------------
// Failover: invalidation preserves byte-identity
// ---------------------------------------------------------------------------

TEST(GatherPipeline, FailoverInvalidatesCacheAndStaysByteIdentical) {
  Rig rig;
  RowCacheOptions cache_opts;
  cache_opts.capacity_rows = 256;
  rig.store.enable_row_cache(cache_opts);
  rig.store.warm_row_cache(rig.hot_order());
  const std::size_t warmed = rig.store.row_cache()->size();
  ASSERT_GT(warmed, 0u);

  // Coalescing packs each device's slice of a full-range batch into a few
  // multi-row commands, so the failure threshold is in commands, not rows:
  // SSD 1 survives the first round's commands and dies mid-run after that.
  FaultProfile fp;
  fp.fail_after_reads = 2;
  rig.array.ssd(1).inject_faults(fp);

  IoEngineOptions io;
  io.max_retries = 1;
  TieredFeatureClient client(rig.store, 256, io);
  rig.array.start_all();

  std::vector<graph::VertexId> vs(kVertices);
  for (std::size_t v = 0; v < kVertices; ++v) {
    vs[v] = static_cast<graph::VertexId>(v);
  }
  for (int round = 0; round < 4; ++round) {
    gnn::Tensor out(vs.size(), kDim);
    client.gather(vs, out);
    expect_bytes_match(out, vs, rig.task.features, "failover round");
  }
  rig.array.stop_all();

  EXPECT_EQ(rig.array.health(1), DeviceHealth::kFailed);
  EXPECT_EQ(rig.store.device_remaps(), 1u);
  // The remap dropped the whole warmed cache...
  EXPECT_GE(rig.store.row_cache()->stats().invalidations, 1u);
  // ...and post-failover rounds refilled it from the surviving devices.
  EXPECT_GT(rig.store.row_cache()->stats().insertions, warmed);
  EXPECT_GT(client.stats().failovers, 0u);
}

// ---------------------------------------------------------------------------
// Concurrency: two clients share the store and the cache (TSan target)
// ---------------------------------------------------------------------------

TEST(GatherPipeline, TwoClientsGatherConcurrentlyThroughSharedCache) {
  Rig rig;
  RowCacheOptions cache_opts;
  cache_opts.capacity_rows = 128;
  cache_opts.shards = 8;
  rig.store.enable_row_cache(cache_opts);
  TieredFeatureClient client_a(rig.store, 256, {});
  TieredFeatureClient client_b(rig.store, 256, {});
  rig.array.start_all();

  auto worker = [&](TieredFeatureClient& client, std::uint64_t seed,
                    bool* ok) {
    util::Pcg32 rng(seed);
    *ok = true;
    for (int batch = 0; batch < 8; ++batch) {
      const auto vs = zipf_batch(192, rng);
      gnn::Tensor out(vs.size(), kDim);
      client.gather(vs, out);
      for (std::size_t i = 0; i < vs.size(); ++i) {
        const auto got = out.row(i);
        const auto want = rig.task.features.row(vs[i]);
        if (std::memcmp(got.data(), want.data(),
                        got.size() * sizeof(float)) != 0) {
          *ok = false;
          return;
        }
      }
    }
  };

  bool ok_a = false, ok_b = false;
  std::thread ta(worker, std::ref(client_a), 101, &ok_a);
  std::thread tb(worker, std::ref(client_b), 202, &ok_b);
  ta.join();
  tb.join();
  rig.array.stop_all();

  EXPECT_TRUE(ok_a);
  EXPECT_TRUE(ok_b);
  const auto s = rig.store.row_cache()->stats();
  EXPECT_GT(s.hits + s.misses, 0u);
  EXPECT_GT(s.insertions, 0u);
}

}  // namespace
}  // namespace moment::iostack
