// Tests for the fault-injection + resilience layer: deterministic injectors,
// retry/timeout/backoff in IoEngine, bounded waits, the device health
// registry, feature-store failover with DDAK re-placement, and degraded-mode
// simulation. Registered under the `faults` CTest label.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "ddak/adaptive.hpp"
#include "ddak/ddak.hpp"
#include "ddak/workload.hpp"
#include "gnn/synthetic.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "iostack/fault_injector.hpp"
#include "iostack/feature_store.hpp"
#include "runtime/systems.hpp"
#include "sim/machine_sim.hpp"

namespace moment::iostack {
namespace {

TEST(FaultInjector, DeterministicUnderSameSeed) {
  FaultProfile p;
  p.read_error_prob = 0.3;
  p.stall_prob = 0.2;
  p.stall_us = 5;
  p.seed = 77;
  FaultInjector a(p), b(p);
  for (int i = 0; i < 1000; ++i) {
    const auto da = a.on_read();
    const auto db = b.on_read();
    ASSERT_EQ(da.status, db.status) << "read " << i;
    ASSERT_EQ(da.stall_us, db.stall_us) << "read " << i;
  }
  EXPECT_EQ(a.stats().injected_errors, b.stats().injected_errors);
  EXPECT_GT(a.stats().injected_errors, 0u);
  EXPECT_GT(a.stats().injected_stalls, 0u);
}

TEST(FaultInjector, ScheduledHardFailureIsSticky) {
  FaultProfile p;
  p.fail_after_reads = 5;
  FaultInjector inj(p);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(inj.on_read().status, kStatusOk) << "read " << i;
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(inj.on_read().status, kStatusDeviceFailed);
  }
  EXPECT_TRUE(inj.failed());
  EXPECT_TRUE(inj.stats().device_failed);
}

TEST(FaultInjector, FailNowTakesEffectImmediately) {
  FaultInjector inj(FaultProfile{});
  EXPECT_EQ(inj.on_read().status, kStatusOk);
  inj.fail_now();
  EXPECT_EQ(inj.on_read().status, kStatusDeviceFailed);
}

TEST(IoEngine, RetryThenSucceedRecoversData) {
  // The first served read fails deterministically; the retry succeeds and
  // the caller sees correct bytes with zero reported failures.
  SsdOptions opts;
  opts.capacity_bytes = 16 * kPageBytes;
  SsdArray array(1, opts);
  std::vector<std::byte> page(kPageBytes, std::byte{0xAB});
  array.ssd(0).write(0, page.data(), page.size());
  FaultProfile fp;
  fp.error_burst_reads = 1;
  array.ssd(0).inject_faults(fp);

  IoEngine engine(array);
  array.start_all();
  std::vector<std::byte> dest(kPageBytes);
  engine.submit_read(0, 0, static_cast<std::uint32_t>(kPageBytes),
                     dest.data());
  EXPECT_EQ(engine.wait_all(), 0u);
  array.stop_all();
  EXPECT_EQ(dest[0], std::byte{0xAB});
  EXPECT_EQ(engine.retry_stats().retries, 1u);
  EXPECT_EQ(engine.retry_stats().permanent_failures, 0u);
  EXPECT_EQ(array.health(0), DeviceHealth::kHealthy);  // success reset streak
}

TEST(IoEngine, RetryExhaustedPropagatesThroughGroup) {
  // Every served read fails: the request exhausts its retries and the group
  // reports it with the original request attached.
  SsdOptions opts;
  opts.capacity_bytes = 16 * kPageBytes;
  SsdArray array(1, opts);
  FaultProfile fp;
  fp.read_error_prob = 1.0;
  array.ssd(0).inject_faults(fp);

  IoEngineOptions io;
  io.max_retries = 2;
  IoEngine engine(array, 256, io);
  array.start_all();
  std::vector<std::byte> dest(kPageBytes);
  const std::uint64_t g = engine.group_begin();
  engine.submit_read(0, 0, static_cast<std::uint32_t>(kPageBytes),
                     dest.data());
  engine.group_end(g);
  std::vector<FailedRead> failed;
  EXPECT_EQ(engine.wait_group(g, failed), 1u);
  array.stop_all();
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0].ssd, 0u);
  EXPECT_EQ(failed[0].dest, dest.data());
  EXPECT_EQ(engine.retry_stats().retries, 2u);  // == max_retries
  EXPECT_EQ(engine.retry_stats().permanent_failures, 1u);
}

TEST(IoEngine, DeadDeviceNeverHangsWaits) {
  // The device is never started: no completion will ever arrive. Every wait
  // must still terminate within its deadline and report the failure.
  SsdOptions opts;
  opts.capacity_bytes = 16 * kPageBytes;
  SsdArray array(1, opts);
  IoEngineOptions io;
  io.max_retries = 1;
  io.request_deadline = std::chrono::milliseconds(20);
  io.retry_backoff = std::chrono::microseconds(100);
  io.wait_deadline = std::chrono::milliseconds(500);
  IoEngine engine(array, 256, io);
  std::vector<std::byte> dest(kPageBytes);
  engine.submit_read(0, 0, static_cast<std::uint32_t>(kPageBytes),
                     dest.data());

  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t failures = engine.wait_all();
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(failures, 1u);
  EXPECT_LT(dt, 5.0);  // bounded, nowhere near an unbounded spin
  EXPECT_GT(engine.retry_stats().timeouts, 0u);
  EXPECT_EQ(engine.retry_stats().permanent_failures, 1u);
  EXPECT_EQ(engine.in_flight(), 0u);
}

TEST(IoEngine, StallInjectionDelaysButCompletes) {
  SsdOptions opts;
  opts.capacity_bytes = 16 * kPageBytes;
  SsdArray array(1, opts);
  std::vector<std::byte> page(kPageBytes, std::byte{0x5A});
  array.ssd(0).write(0, page.data(), page.size());
  FaultProfile fp;
  fp.stall_prob = 1.0;
  fp.stall_us = 1000;
  array.ssd(0).inject_faults(fp);
  IoEngine engine(array);
  array.start_all();
  std::vector<std::byte> dest(4 * kPageBytes);
  for (int i = 0; i < 4; ++i) {
    engine.submit_read(0, 0, static_cast<std::uint32_t>(kPageBytes),
                       dest.data() + static_cast<std::size_t>(i) * kPageBytes);
  }
  EXPECT_EQ(engine.wait_all(), 0u);
  array.stop_all();
  EXPECT_EQ(array.ssd(0).fault_injector()->stats().injected_stalls, 4u);
  EXPECT_EQ(dest[0], std::byte{0x5A});
}

TEST(IoEngine, HardDeviceFailureFailsFastAfterDetection) {
  SsdOptions opts;
  opts.capacity_bytes = 16 * kPageBytes;
  SsdArray array(1, opts);
  FaultProfile fp;
  fp.fail_after_reads = 0;  // dead from the first served read
  array.ssd(0).inject_faults(fp);
  IoEngine engine(array);
  array.start_all();
  std::vector<std::byte> dest(kPageBytes);
  engine.submit_read(0, 0, static_cast<std::uint32_t>(kPageBytes),
                     dest.data());
  EXPECT_EQ(engine.wait_all(), 1u);
  EXPECT_EQ(array.health(0), DeviceHealth::kFailed);
  // Subsequent reads fail instantly without touching the device.
  const std::uint64_t served = array.ssd(0).fault_injector()->stats().reads_seen;
  engine.submit_read(0, 0, static_cast<std::uint32_t>(kPageBytes),
                     dest.data());
  EXPECT_EQ(engine.wait_all(), 1u);
  EXPECT_EQ(array.ssd(0).fault_injector()->stats().reads_seen, served);
  array.stop_all();
}

TEST(IoEngine, SqFullBackpressureUnderPacedDevice) {
  // Tiny queue depth against a paced (slow) device: the submit path must
  // apply backpressure without spurious retries, timeouts, or failures.
  SsdOptions opts;
  opts.capacity_bytes = 16 * kPageBytes;
  opts.max_bytes_per_s = 4.0 * 1024 * 1024;
  SsdArray array(1, opts);
  IoEngine engine(array, /*queue_depth=*/4);
  array.start_all();
  std::vector<std::byte> buf(16 * kPageBytes);
  for (int i = 0; i < 16; ++i) {
    engine.submit_read(0, (static_cast<std::uint64_t>(i) % 16) * kPageBytes,
                       static_cast<std::uint32_t>(kPageBytes),
                       buf.data() + static_cast<std::size_t>(i) * kPageBytes);
  }
  EXPECT_EQ(engine.wait_all(), 0u);
  array.stop_all();
  EXPECT_EQ(engine.completed(), 16u);
  EXPECT_EQ(engine.retry_stats().retries, 0u);
  EXPECT_EQ(engine.retry_stats().timeouts, 0u);
  EXPECT_EQ(engine.retry_stats().permanent_failures, 0u);
}

TEST(SsdDevice, StopWithRequestsInFlightDrains) {
  // stop() is requested while requests sit in the SQ of a paced device; the
  // service loop's shutdown drain must complete them all.
  SsdOptions opts;
  opts.capacity_bytes = 16 * kPageBytes;
  opts.max_bytes_per_s = 2.0 * 1024 * 1024;
  SsdArray array(1, opts);
  IoEngine engine(array);
  array.start_all();
  std::vector<std::byte> buf(32 * kPageBytes);
  for (int i = 0; i < 32; ++i) {
    engine.submit_read(0, (static_cast<std::uint64_t>(i) % 16) * kPageBytes,
                       static_cast<std::uint32_t>(kPageBytes),
                       buf.data() + static_cast<std::size_t>(i) * kPageBytes);
  }
  array.stop_all();  // requests still in flight
  EXPECT_EQ(engine.wait_all(), 0u);
  EXPECT_EQ(engine.completed(), 32u);
}

TEST(SsdDevice, StopNeverWedgesOnFullCompletionQueue) {
  // A client that stops polling its CQ must not wedge the service thread
  // (the historical unbounded `while (!qp.complete(...))` spin). Fill the
  // CQ, enqueue more work, and stop: stop() must return promptly.
  SsdOptions opts;
  opts.capacity_bytes = 16 * kPageBytes;
  SsdDevice ssd(opts);
  QueuePair* qp = ssd.create_queue_pair(/*depth=*/4);
  ssd.start();
  std::vector<std::byte> dest(kPageBytes);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(qp->submit({0, static_cast<std::uint32_t>(kPageBytes),
                            dest.data(), i}));
  }
  // Wait until all four completions are posted (CQ now full).
  while (ssd.stats().reads < 4) std::this_thread::yield();
  // More work the device will try to complete against the full CQ.
  for (std::uint64_t i = 4; i < 8; ++i) {
    ASSERT_TRUE(qp->submit({0, static_cast<std::uint32_t>(kPageBytes),
                            dest.data(), i}));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const auto t0 = std::chrono::steady_clock::now();
  ssd.stop();  // must not hang
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(dt, 10.0);
  // Every request is accounted: polled completions + drops == 8.
  Cqe cqe;
  std::size_t polled = 0;
  while (qp->poll_completion(cqe)) ++polled;
  EXPECT_EQ(polled + ssd.stats().dropped_completions, 8u);
}

TEST(SsdArray, HealthStateMachineTransitions) {
  SsdOptions opts;
  HealthOptions h;
  h.degraded_after = 2;
  h.failed_after = 4;
  SsdArray array(2, opts, h);
  EXPECT_EQ(array.health(0), DeviceHealth::kHealthy);

  array.report_io_result(0, false);
  EXPECT_EQ(array.health(0), DeviceHealth::kHealthy);  // streak 1 < 2
  array.report_io_result(0, false);
  EXPECT_EQ(array.health(0), DeviceHealth::kDegraded);  // streak 2
  EXPECT_EQ(array.num_degraded(), 1u);

  array.report_io_result(0, true);  // success resets and restores
  EXPECT_EQ(array.health(0), DeviceHealth::kHealthy);

  for (int i = 0; i < 4; ++i) array.report_io_result(0, false);
  EXPECT_EQ(array.health(0), DeviceHealth::kFailed);
  EXPECT_EQ(array.num_failed(), 1u);
  array.report_io_result(0, true);  // failed is sticky
  EXPECT_EQ(array.health(0), DeviceHealth::kFailed);
  EXPECT_EQ(array.health(1), DeviceHealth::kHealthy);
}

TEST(FeatureStore, FailoverServesIdenticalBytesAndRemaps) {
  // Device 1 hard-fails on its first served read. Gathers must still return
  // exactly the original features (host authoritative copy), the store must
  // remap device 1's bins onto device 0, and later gathers must hit SSDs.
  graph::RmatParams gp;
  gp.num_vertices = 128;
  gp.num_edges = 600;
  const auto g = graph::generate_rmat(gp);
  const auto task = gnn::make_synthetic_task(g, 2, 8, 0.1, 4);
  std::vector<BinBacking> bins = {
      {BinBacking::Kind::kSsd, 0},
      {BinBacking::Kind::kSsd, 1},
  };
  std::vector<std::int32_t> bov(128);
  for (std::size_t v = 0; v < 128; ++v) {
    bov[v] = static_cast<std::int32_t>(v % 2);
  }
  SsdOptions opts;
  opts.capacity_bytes = 1ull << 20;  // 256 pages: room for both halves
  SsdArray array(2, opts);
  TieredFeatureStore store(task.features, bov, bins, array);
  FaultProfile fp;
  fp.fail_after_reads = 0;
  array.ssd(1).inject_faults(fp);

  IoEngineOptions io;
  io.max_retries = 1;
  TieredFeatureClient client(store, 256, io);
  array.start_all();

  std::vector<graph::VertexId> vs;
  for (graph::VertexId v = 0; v < 128; ++v) vs.push_back(v);
  gnn::Tensor out(vs.size(), 8);
  client.gather(vs, out);
  for (std::size_t i = 0; i < vs.size(); ++i) {
    for (std::size_t c = 0; c < 8; ++c) {
      ASSERT_FLOAT_EQ(out.at(i, c), task.features.at(vs[i], c))
          << "vertex " << vs[i] << " after device failure";
    }
  }
  EXPECT_EQ(array.health(1), DeviceHealth::kFailed);
  EXPECT_GT(client.stats().failovers, 0u);
  EXPECT_EQ(store.device_remaps(), 1u);

  // After the remap every vertex resolves to device 0 (or a cache tier);
  // a fresh gather reads SSD 0 only and still returns the right bytes.
  const auto reads_before = array.ssd(0).stats().reads;
  gnn::Tensor out2(vs.size(), 8);
  client.gather(vs, out2);
  for (std::size_t i = 0; i < vs.size(); ++i) {
    const auto loc = store.location(vs[i]);
    EXPECT_EQ(loc.ssd, 0) << "vertex " << vs[i] << " not remapped";
    for (std::size_t c = 0; c < 8; ++c) {
      ASSERT_FLOAT_EQ(out2.at(i, c), task.features.at(vs[i], c));
    }
  }
  EXPECT_GT(array.ssd(0).stats().reads, reads_before);
  array.stop_all();

  const auto r = client.io_resilience();
  EXPECT_GT(r.failovers, 0u);
  EXPECT_EQ(r.device_remaps, 1u);
  EXPECT_EQ(r.devices_failed, 1u);
}

TEST(FeatureStore, GatherWaitFailurePathLeavesSlotReusable) {
  // All devices fail permanently and capacity blocks any remap: gather_wait
  // must still serve every row (host copy) and leave the slot reusable.
  graph::RmatParams gp;
  gp.num_vertices = 64;
  gp.num_edges = 200;
  const auto g = graph::generate_rmat(gp);
  const auto task = gnn::make_synthetic_task(g, 2, 8, 0.1, 6);
  std::vector<BinBacking> bins = {{BinBacking::Kind::kSsd, 0}};
  std::vector<std::int32_t> bov(64, 0);
  SsdOptions opts;
  opts.capacity_bytes = 64 * kPageBytes;  // exactly full: no failover slots
  SsdArray array(1, opts);
  TieredFeatureStore store(task.features, bov, bins, array);
  FaultProfile fp;
  fp.fail_after_reads = 0;
  array.ssd(0).inject_faults(fp);
  IoEngineOptions io;
  io.max_retries = 1;
  TieredFeatureClient client(store, 256, io);
  array.start_all();

  std::vector<graph::VertexId> vs = {1, 5, 9, 33};
  for (int round = 0; round < 3; ++round) {  // slot must be reusable
    gnn::Tensor out(vs.size(), 8);
    client.gather(vs, out);
    for (std::size_t i = 0; i < vs.size(); ++i) {
      for (std::size_t c = 0; c < 8; ++c) {
        ASSERT_FLOAT_EQ(out.at(i, c), task.features.at(vs[i], c))
            << "round " << round;
      }
    }
  }
  array.stop_all();
  EXPECT_GT(client.stats().failovers, 0u);
}

}  // namespace
}  // namespace moment::iostack

namespace moment::ddak {
namespace {

DataPlacementResult make_placement(std::span<const Bin> bins,
                                   std::span<const std::int32_t> bov) {
  DataPlacementResult p;
  p.bin_of_vertex.assign(bov.begin(), bov.end());
  p.bin_access.assign(bins.size(), 0.0);
  p.bin_count.assign(bins.size(), 0);
  p.bin_traffic_share.assign(bins.size(), 0.0);
  for (std::int32_t b : bov) {
    ++p.bin_count[static_cast<std::size_t>(b)];
    p.bin_access[static_cast<std::size_t>(b)] += 1.0;
  }
  const double total = static_cast<double>(bov.size());
  for (std::size_t b = 0; b < bins.size(); ++b) {
    p.bin_traffic_share[b] = p.bin_access[b] / total;
  }
  return p;
}

std::vector<Bin> three_ssd_bins(double capacity) {
  std::vector<Bin> bins(3);
  for (std::size_t b = 0; b < 3; ++b) {
    bins[b].name = "SSD" + std::to_string(b);
    bins[b].tier = topology::StorageTier::kSsd;
    bins[b].capacity_vertices = capacity;
    bins[b].traffic_target = 1.0;
  }
  return bins;
}

TEST(Failover, PlanCoversAllResidentsWhenCapacityAllows) {
  const auto bins = three_ssd_bins(100.0);
  std::vector<std::int32_t> bov(90);
  for (std::size_t v = 0; v < 90; ++v) {
    bov[v] = static_cast<std::int32_t>(v % 3);
  }
  auto placement = make_placement(bins, bov);
  const std::size_t failed[] = {1};
  const auto moves = plan_bin_failover(bins, placement, failed);
  ASSERT_EQ(moves.size(), 30u);  // every resident of bin 1 is re-placed
  for (const auto& m : moves) {
    EXPECT_EQ(placement.bin_of_vertex[m.vertex], 1);
    EXPECT_TRUE(m.to_bin == 0 || m.to_bin == 2);
  }
  apply_failover(bins, placement, moves);
  EXPECT_EQ(placement.bin_count[1], 0u);
  EXPECT_EQ(placement.bin_count[0] + placement.bin_count[2], 90u);
  // Survivors stay balanced (greedy min-fill): 45/45.
  EXPECT_EQ(placement.bin_count[0], 45u);
  EXPECT_EQ(placement.bin_count[2], 45u);
  EXPECT_NEAR(placement.bin_traffic_share[0] + placement.bin_traffic_share[2],
              1.0, 1e-9);
}

TEST(Failover, CapacityBoundLeavesUnplaceableVerticesBehind) {
  const auto bins = three_ssd_bins(32.0);  // 30 resident + 2 spare each
  std::vector<std::int32_t> bov(90);
  for (std::size_t v = 0; v < 90; ++v) {
    bov[v] = static_cast<std::int32_t>(v % 3);
  }
  const auto placement = make_placement(bins, bov);
  const std::size_t failed[] = {1};
  const auto moves = plan_bin_failover(bins, placement, failed);
  EXPECT_EQ(moves.size(), 4u);  // only 2+2 spare slots exist
}

TEST(Failover, AdaptivePlacerFailBinMovesResidentsAndZeroesBin) {
  auto bins = three_ssd_bins(100.0);
  std::vector<std::int32_t> bov(60);
  for (std::size_t v = 0; v < 60; ++v) {
    bov[v] = static_cast<std::int32_t>(v % 3);
  }
  auto placement = make_placement(bins, bov);
  AdaptivePlacer placer(bins, placement);
  std::vector<graph::VertexId> accesses;
  for (graph::VertexId v = 0; v < 60; ++v) accesses.push_back(v);
  placer.observe(accesses);

  const auto stats = placer.fail_bin(2);
  EXPECT_EQ(stats.migrated, 20u);
  EXPECT_EQ(placer.placement().bin_count[2], 0u);
  EXPECT_EQ(placer.bins()[2].capacity_vertices, 0.0);
  EXPECT_EQ(placer.bins()[2].traffic_target, 0.0);
  for (std::int32_t b : placer.placement().bin_of_vertex) {
    EXPECT_NE(b, 2);
  }
}

}  // namespace
}  // namespace moment::ddak

namespace moment::sim {
namespace {

TEST(DegradedSim, FailedSsdRaisesIoTimeAndErrorsAmplifyBytes) {
  const auto bench = runtime::Workbench::make(graph::DatasetId::kIG, 3, 42);
  const auto workload = ddak::make_epoch_workload(
      bench.dataset, bench.profile, ddak::CacheConfig{}, 4);
  const auto spec = topology::make_machine_a();
  const auto topo = topology::instantiate(
      spec, topology::classic_placement(spec, 'c', 4, 8));
  const auto fg = topology::compile_flow_graph(topo);
  const auto pred = topology::predict(
      fg, ddak::to_flow_demand(workload, fg, ddak::SupplyModel::kUniformHash));
  auto bins = ddak::make_bins(topo, fg, pred.per_storage_bytes,
                              bench.dataset.scaled.vertices, 0.005, 0.01);
  const auto merged = merge_replicated_gpu_bins(bins);
  const auto place = ddak::hash_place(merged, bench.profile);

  SimOptions healthy;
  const auto base = simulate_epoch(topo, fg, workload, merged, place, healthy);
  EXPECT_EQ(base.failed_ssds, 0u);
  EXPECT_DOUBLE_EQ(base.retry_read_amplification, 1.0);

  SimOptions degraded = healthy;
  degraded.failed_ssd_ordinals = {0};
  const auto deg =
      simulate_epoch(topo, fg, workload, merged, place, degraded);
  EXPECT_EQ(deg.failed_ssds, 1u);
  // Survivors absorb the failed device's traffic: IO can only get slower.
  EXPECT_GE(deg.io_round_time_s, base.io_round_time_s * 0.999);

  SimOptions faulty = healthy;
  faulty.ssd_transient_error_rate = 0.2;  // retry amp 1.25x
  const auto amp = simulate_epoch(topo, fg, workload, merged, place, faulty);
  EXPECT_NEAR(amp.retry_read_amplification, 1.25, 1e-9);
  EXPECT_GT(amp.io_round_time_s, base.io_round_time_s);
}

}  // namespace
}  // namespace moment::sim
