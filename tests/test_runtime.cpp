// Tests for the runtime systems (Moment vs baselines, OOM rules, cost
// model) and the functional data-parallel trainer (DDP invariants).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "gnn/synthetic.hpp"
#include "graph/generators.hpp"
#include "iostack/feature_store.hpp"
#include "runtime/parallel_trainer.hpp"
#include "runtime/systems.hpp"

namespace moment::runtime {
namespace {

ExperimentConfig base_config(const topology::MachineSpec* spec) {
  ExperimentConfig c;
  c.machine = spec;
  c.dataset = graph::DatasetId::kIG;
  c.dataset_scale_shift = 3;
  c.num_gpus = 4;
  c.num_ssds = 8;
  return c;
}

TEST(Systems, NamesAndCosts) {
  EXPECT_STREQ(system_name(SystemKind::kMoment), "Moment");
  EXPECT_STREQ(system_name(SystemKind::kDistDgl), "DistDGL");
  // Paper Section 4.2: the single machine is about half the cluster's TCO.
  EXPECT_NEAR(machine_tco_usd() / cluster_tco_usd(), 0.5, 0.05);
}

TEST(Systems, MomentBeatsBaselinesOnMachineB) {
  const auto spec = topology::make_machine_b();
  const Workbench bench = Workbench::make(graph::DatasetId::kIG, 3, 42);
  ExperimentConfig c = base_config(&spec);
  const auto moment = run_system(SystemKind::kMoment, c, bench);
  const auto hyperion = run_system(SystemKind::kMHyperion, c, bench);
  const auto gids = run_system(SystemKind::kMGids, c, bench);
  ASSERT_FALSE(moment.oom);
  ASSERT_FALSE(hyperion.oom);
  ASSERT_FALSE(gids.oom);
  EXPECT_LT(moment.epoch_time_s, hyperion.epoch_time_s);
  EXPECT_LT(moment.epoch_time_s, gids.epoch_time_s);
  EXPECT_GT(moment.throughput_seeds_per_s, hyperion.throughput_seeds_per_s);
}

TEST(Systems, MomentOutperformsDistDglOnPA) {
  const auto spec = topology::make_machine_a();
  ExperimentConfig c = base_config(&spec);
  c.dataset = graph::DatasetId::kPA;
  const Workbench bench = Workbench::make(graph::DatasetId::kPA, 3, 42);
  const auto moment = run_system(SystemKind::kMoment, c, bench);
  const auto distdgl = run_system(SystemKind::kDistDgl, c, bench);
  ASSERT_FALSE(moment.oom);
  ASSERT_FALSE(distdgl.oom) << distdgl.oom_reason;
  // Paper: up to 3.02x on the datasets DistDGL can run, at ~half the cost.
  const double speedup =
      moment.throughput_seeds_per_s / distdgl.throughput_seeds_per_s;
  EXPECT_GT(speedup, 1.2);
  EXPECT_LT(speedup, 8.0);
  EXPECT_LT(moment.monetary_cost_usd, distdgl.monetary_cost_usd);
}

TEST(Systems, DistDglOomsOnLargeDatasets) {
  ExperimentConfig c;
  for (auto id : {graph::DatasetId::kIG, graph::DatasetId::kUK,
                  graph::DatasetId::kCL}) {
    c.dataset = id;
    const Workbench bench = Workbench::make(id, 4, 1);
    const auto r = run_system(SystemKind::kDistDgl, c, bench);
    EXPECT_TRUE(r.oom) << graph::dataset_name(id);
    EXPECT_FALSE(r.oom_reason.empty());
  }
}

TEST(Systems, MGidsOomsOnTerabyteFeatures) {
  const auto spec = topology::make_machine_a();
  ExperimentConfig c = base_config(&spec);
  for (auto id : {graph::DatasetId::kUK, graph::DatasetId::kCL}) {
    c.dataset = id;
    const Workbench bench = Workbench::make(id, 4, 1);
    EXPECT_TRUE(run_system(SystemKind::kMGids, c, bench).oom)
        << graph::dataset_name(id);
  }
  c.dataset = graph::DatasetId::kPA;
  const Workbench bench = Workbench::make(graph::DatasetId::kPA, 4, 1);
  EXPECT_FALSE(run_system(SystemKind::kMGids, c, bench).oom);
}

TEST(Systems, MomentRunsTerabyteDatasetsOutOfCore) {
  const auto spec = topology::make_machine_b();
  ExperimentConfig c = base_config(&spec);
  c.dataset = graph::DatasetId::kUK;
  c.dataset_scale_shift = 4;
  const Workbench bench = Workbench::make(graph::DatasetId::kUK, 4, 1);
  const auto r = run_system(SystemKind::kMoment, c, bench);
  EXPECT_FALSE(r.oom);
  EXPECT_GT(r.throughput_seeds_per_s, 0.0);
}

TEST(Systems, PlacementOverrideRespected) {
  const auto spec = topology::make_machine_b();
  ExperimentConfig c = base_config(&spec);
  c.placement = topology::moment_placement_machine_b();
  const Workbench bench = Workbench::make(graph::DatasetId::kIG, 4, 1);
  const auto r = run_system(SystemKind::kMoment, c, bench);
  EXPECT_EQ(r.placement.gpus_per_group,
            topology::moment_placement_machine_b().gpus_per_group);
}

TEST(Systems, GatSlowerThanGraphSage) {
  const auto spec = topology::make_machine_a();
  const Workbench bench = Workbench::make(graph::DatasetId::kPA, 4, 1);
  ExperimentConfig c = base_config(&spec);
  c.dataset = graph::DatasetId::kPA;
  c.model = gnn::ModelKind::kGraphSage;
  const auto sage = run_system(SystemKind::kMoment, c, bench);
  c.model = gnn::ModelKind::kGat;
  const auto gat = run_system(SystemKind::kMoment, c, bench);
  EXPECT_LE(sage.epoch_time_s, gat.epoch_time_s);
}

TEST(Systems, PredictionAccompaniesMeasurement) {
  // Fig. 13's inputs: both a predicted and a simulated epoch time, close for
  // Moment (the prediction is the plan the runtime executes).
  const auto spec = topology::make_machine_a();
  const Workbench bench = Workbench::make(graph::DatasetId::kIG, 3, 42);
  ExperimentConfig c = base_config(&spec);
  const auto r = run_system(SystemKind::kMoment, c, bench);
  ASSERT_TRUE(r.prediction.feasible);
  EXPECT_GT(r.predicted_epoch_time_s, 0.0);
  const double err = std::abs(r.predicted_epoch_time_s - r.epoch_time_s) /
                     r.epoch_time_s;
  EXPECT_LT(err, 0.25) << "predicted " << r.predicted_epoch_time_s
                       << " vs measured " << r.epoch_time_s;
}

TEST(Systems, DeterministicAcrossRuns) {
  const auto spec = topology::make_machine_b();
  const Workbench bench = Workbench::make(graph::DatasetId::kIG, 4, 7);
  ExperimentConfig c = base_config(&spec);
  const auto a = run_system(SystemKind::kMoment, c, bench);
  const auto b = run_system(SystemKind::kMoment, c, bench);
  EXPECT_DOUBLE_EQ(a.epoch_time_s, b.epoch_time_s);
  EXPECT_EQ(a.placement, b.placement);
}

struct TrainerRig {
  graph::CsrGraph g;
  gnn::SyntheticTask task;
  std::vector<std::unique_ptr<gnn::InMemoryFeatures>> features;
  std::vector<gnn::FeatureProvider*> providers;

  static TrainerRig make(int workers) {
    TrainerRig r;
    graph::RmatParams gp;
    gp.num_vertices = 1024;
    gp.num_edges = 8000;
    r.g = graph::generate_rmat(gp);
    r.task = gnn::make_synthetic_task(r.g, 4, 12, 0.3, 9);
    for (int w = 0; w < workers; ++w) {
      r.features.push_back(
          std::make_unique<gnn::InMemoryFeatures>(r.task.features));
      r.providers.push_back(r.features.back().get());
    }
    return r;
  }

  gnn::ModelConfig model_config() const {
    gnn::ModelConfig cfg;
    cfg.kind = gnn::ModelKind::kGraphSage;
    cfg.in_dim = 12;
    cfg.hidden_dim = 16;
    cfg.num_classes = 4;
    return cfg;
  }
};

TEST(ParallelTrainer, ReplicasStayInSync) {
  TrainerRig rig = TrainerRig::make(3);
  auto train = sampling::select_train_vertices(rig.g, 0.2, 2);
  DataParallelTrainer trainer(rig.g, rig.providers, rig.model_config(),
                              {5, 5}, train, 0.01f, 11);
  EXPECT_TRUE(trainer.replicas_in_sync());
  trainer.train_epoch(rig.task.labels, 32, 4);
  EXPECT_TRUE(trainer.replicas_in_sync());
}

TEST(ParallelTrainer, LearnsSyntheticTask) {
  TrainerRig rig = TrainerRig::make(2);
  auto train = sampling::select_train_vertices(rig.g, 0.3, 3);
  DataParallelTrainer trainer(rig.g, rig.providers, rig.model_config(),
                              {5, 5}, train, 0.01f, 13);
  EpochStats last;
  for (int epoch = 0; epoch < 8; ++epoch) {
    last = trainer.train_epoch(rig.task.labels, 48);
  }
  EXPECT_GT(last.mean_accuracy, 0.6f);
  EXPECT_GT(last.batches, 0u);
  EXPECT_GT(last.fetched_vertices, 0u);
}

TEST(ParallelTrainer, BatchCountMatchesPartition) {
  TrainerRig rig = TrainerRig::make(4);
  auto train = sampling::select_train_vertices(rig.g, 0.25, 5);
  DataParallelTrainer trainer(rig.g, rig.providers, rig.model_config(),
                              {4, 4}, train, 0.01f, 17);
  const auto stats = trainer.train_epoch(rig.task.labels, 16);
  // Every training vertex visited once per epoch across workers.
  const std::size_t expected = (train.size() + 15) / 16;
  EXPECT_NEAR(static_cast<double>(stats.batches),
              static_cast<double>(expected), 4.0);
}

TEST(ParallelTrainer, RejectsEmptyWorkerList) {
  TrainerRig rig = TrainerRig::make(1);
  auto train = sampling::select_train_vertices(rig.g, 0.1, 5);
  EXPECT_THROW(DataParallelTrainer(rig.g, {}, rig.model_config(), {4, 4},
                                   train, 0.01f, 1),
               std::invalid_argument);
}

TEST(PipelineEngine, MatchesSequentialLossTrajectory) {
  // The double-buffered pipeline must be a pure latency optimisation: the
  // per-epoch loss/accuracy trajectory matches a sequential (depth-1) run
  // with identical seeds, and replicas stay in sync after every epoch.
  for (int workers : {1, 3}) {
    TrainerRig rig_seq = TrainerRig::make(workers);
    TrainerRig rig_pipe = TrainerRig::make(workers);
    auto train = sampling::select_train_vertices(rig_seq.g, 0.25, 2);
    EngineOptions sequential;
    sequential.pipeline_depth = 1;
    EngineOptions pipelined;
    pipelined.pipeline_depth = 2;
    DataParallelTrainer seq(rig_seq.g, rig_seq.providers,
                            rig_seq.model_config(), {5, 5}, train, 0.01f, 11,
                            sequential);
    DataParallelTrainer pipe(rig_pipe.g, rig_pipe.providers,
                             rig_pipe.model_config(), {5, 5}, train, 0.01f,
                             11, pipelined);
    for (int epoch = 0; epoch < 4; ++epoch) {
      const auto a = seq.train_epoch(rig_seq.task.labels, 32);
      const auto b = pipe.train_epoch(rig_pipe.task.labels, 32);
      ASSERT_EQ(a.batches, b.batches) << "workers " << workers;
      ASSERT_EQ(a.fetched_vertices, b.fetched_vertices);
      ASSERT_EQ(a.rounds, b.rounds);
      EXPECT_NEAR(a.mean_loss, b.mean_loss, 1e-6f) << "epoch " << epoch;
      EXPECT_NEAR(a.mean_accuracy, b.mean_accuracy, 1e-6f);
      EXPECT_TRUE(pipe.replicas_in_sync()) << "epoch " << epoch;
    }
  }
}

TEST(PipelineEngine, TruncatedEpochDrainsPrefetch) {
  // max_rounds truncation leaves a prefetched batch in flight; the engine
  // must drain it so the next epoch (and teardown) proceed cleanly.
  TrainerRig rig = TrainerRig::make(2);
  auto train = sampling::select_train_vertices(rig.g, 0.3, 7);
  DataParallelTrainer trainer(rig.g, rig.providers, rig.model_config(),
                              {5, 5}, train, 0.01f, 23);
  for (int epoch = 0; epoch < 3; ++epoch) {
    const auto stats = trainer.train_epoch(rig.task.labels, 16, 2);
    EXPECT_EQ(stats.rounds, 2u);
    EXPECT_TRUE(trainer.replicas_in_sync());
  }
}

TEST(PipelineEngine, PerStageTelemetryAccountsEpoch) {
  TrainerRig rig = TrainerRig::make(2);
  auto train = sampling::select_train_vertices(rig.g, 0.3, 3);
  DataParallelTrainer trainer(rig.g, rig.providers, rig.model_config(),
                              {5, 5}, train, 0.01f, 13);
  const auto stats = trainer.train_epoch(rig.task.labels, 48);
  ASSERT_EQ(stats.per_worker.size(), 2u);
  EXPECT_GT(stats.rounds, 0u);
  EXPECT_GT(stats.stage_max.sample_s, 0.0);
  EXPECT_GT(stats.stage_max.compute_s, 0.0);
  EXPECT_GT(stats.stage_max.optimizer_s, 0.0);
  for (const auto& t : stats.per_worker) {
    EXPECT_LE(t.sample_s + t.gather_s() + t.compute_s + t.optimizer_s,
              stats.wall_time_s * 1.5);
  }
  // In-memory providers complete inside gather_begin: nothing is async, so
  // the engine must not report fake overlap.
  EXPECT_EQ(stats.overlap_ratio, 0.0);
}

/// Tiered rig: features spread over GPU/CPU caches and two SSDs, one
/// TieredFeatureClient per worker, as in the paper's runtime.
struct TieredRig {
  graph::CsrGraph g;
  gnn::SyntheticTask task;
  std::unique_ptr<iostack::SsdArray> array;
  std::unique_ptr<iostack::TieredFeatureStore> store;
  std::vector<std::unique_ptr<iostack::TieredFeatureClient>> clients;
  std::vector<gnn::FeatureProvider*> providers;

  static TieredRig make(int workers) {
    TieredRig r;
    graph::RmatParams gp;
    gp.num_vertices = 512;
    gp.num_edges = 4000;
    r.g = graph::generate_rmat(gp);
    r.task = gnn::make_synthetic_task(r.g, 4, 12, 0.3, 9);
    std::vector<iostack::BinBacking> bins = {
        {iostack::BinBacking::Kind::kGpuCache, -1},
        {iostack::BinBacking::Kind::kCpuCache, -1},
        {iostack::BinBacking::Kind::kSsd, 0},
        {iostack::BinBacking::Kind::kSsd, 1},
    };
    std::vector<std::int32_t> bov(512);
    for (std::size_t v = 0; v < 512; ++v) {
      if (v < 32) bov[v] = 0;
      else if (v < 64) bov[v] = 1;
      else bov[v] = 2 + static_cast<std::int32_t>(v % 2);
    }
    iostack::SsdOptions opts;
    opts.capacity_bytes = 2ull << 20;
    r.array = std::make_unique<iostack::SsdArray>(2, opts);
    r.store = std::make_unique<iostack::TieredFeatureStore>(
        r.task.features, bov, bins, *r.array);
    for (int w = 0; w < workers; ++w) {
      r.clients.push_back(
          std::make_unique<iostack::TieredFeatureClient>(*r.store));
      r.providers.push_back(r.clients.back().get());
    }
    r.array->start_all();
    return r;
  }

  gnn::ModelConfig model_config() const {
    gnn::ModelConfig cfg;
    cfg.kind = gnn::ModelKind::kGraphSage;
    cfg.in_dim = 12;
    cfg.hidden_dim = 16;
    cfg.num_classes = 4;
    return cfg;
  }
};

TEST(PipelineEngine, OverlapsGatherWithComputeThroughIoStack) {
  // Acceptance: with TieredFeatureClient providers the pipelined engine
  // genuinely overlaps the SSD gather with compute (overlap ratio > 0) and
  // preserves the DDP invariant over a multi-worker, multi-epoch run.
  TieredRig rig = TieredRig::make(2);
  auto train = sampling::select_train_vertices(rig.g, 0.3, 5);
  DataParallelTrainer trainer(rig.g, rig.providers, rig.model_config(),
                              {5, 5}, train, 0.01f, 31);
  EpochStats stats;
  for (int epoch = 0; epoch < 3; ++epoch) {
    stats = trainer.train_epoch(rig.task.labels, 32);
    EXPECT_TRUE(trainer.replicas_in_sync()) << "epoch " << epoch;
  }
  rig.array->stop_all();
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GT(stats.overlap_ratio, 0.0);
  EXPECT_GT(stats.stage_max.hidden_io_s, 0.0);
  for (const auto& c : rig.clients) {
    EXPECT_GT(c->stats().ssd_reads, 0u);
  }
}

TEST(PipelineEngine, PipelinedMatchesSequentialThroughIoStack) {
  // The async begin/wait path through the NVMe stack must be numerically
  // identical to the synchronous reference gather.
  TieredRig rig_seq = TieredRig::make(2);
  TieredRig rig_pipe = TieredRig::make(2);
  auto train = sampling::select_train_vertices(rig_seq.g, 0.25, 13);
  EngineOptions sequential;
  sequential.pipeline_depth = 1;
  DataParallelTrainer seq(rig_seq.g, rig_seq.providers,
                          rig_seq.model_config(), {5, 5}, train, 0.01f, 41,
                          sequential);
  DataParallelTrainer pipe(rig_pipe.g, rig_pipe.providers,
                           rig_pipe.model_config(), {5, 5}, train, 0.01f, 41,
                           EngineOptions{});
  for (int epoch = 0; epoch < 2; ++epoch) {
    const auto a = seq.train_epoch(rig_seq.task.labels, 32);
    const auto b = pipe.train_epoch(rig_pipe.task.labels, 32);
    ASSERT_EQ(a.batches, b.batches);
    EXPECT_NEAR(a.mean_loss, b.mean_loss, 1e-6f) << "epoch " << epoch;
    EXPECT_NEAR(a.mean_accuracy, b.mean_accuracy, 1e-6f);
  }
  EXPECT_TRUE(pipe.replicas_in_sync());
  rig_seq.array->stop_all();
  rig_pipe.array->stop_all();
}

}  // namespace
}  // namespace moment::runtime
