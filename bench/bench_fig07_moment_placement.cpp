// Figure 7 — Moment's optimized placement on Machine B: the searched layout,
// its epoch time vs the best common layout (c), and the per-GPU inlet
// bandwidth comparison (paper: 15.61 GB/s average vs 10.92 GB/s for (c)).

#include "common.hpp"
#include "placement/search.hpp"

using namespace moment;

int main() {
  bench::header("Figure 7: Moment's placement on Machine B",
                "paper Fig. 7 (epoch 13.2 s vs 18.6 s for (c); per-GPU inlet "
                "15.61 vs 10.92 GB/s)");

  const auto spec = topology::make_machine_b();
  const runtime::Workbench wb =
      runtime::Workbench::make(graph::DatasetId::kIG, bench::kScaleShift, 42);

  runtime::ExperimentConfig c = bench::machine_config(
      &spec, graph::DatasetId::kIG, gnn::ModelKind::kGraphSage, 4);
  const auto moment = runtime::run_system(runtime::SystemKind::kMoment, c, wb);
  const auto classic_c = bench::run_classic(spec, wb, graph::DatasetId::kIG,
                                            gnn::ModelKind::kGraphSage, 'c', 4);

  std::printf("searched placement: %s\n",
              placement::describe(spec, moment.placement).c_str());
  std::printf("paper's Fig.-7 layout: %s\n",
              placement::describe(spec,
                                  topology::moment_placement_machine_b())
                  .c_str());

  auto mean_bw = [](const runtime::SystemResult& r) {
    double acc = 0.0;
    for (double b : r.sim.per_gpu_io_bandwidth) acc += b;
    return r.sim.per_gpu_io_bandwidth.empty()
               ? 0.0
               : acc / static_cast<double>(r.sim.per_gpu_io_bandwidth.size());
  };

  util::Table t({"layout", "epoch (s)", "per-GPU inlet (GiB/s)",
                 "imbalance CV"});
  t.add_row({"Moment", util::Table::num(moment.epoch_time_s, 1),
             util::Table::num(util::to_gib_per_s(mean_bw(moment)), 2),
             util::Table::num(moment.sim.imbalance_cv, 3)});
  t.add_row({"best common (c)", util::Table::num(classic_c.epoch_time_s, 1),
             util::Table::num(util::to_gib_per_s(mean_bw(classic_c)), 2),
             util::Table::num(classic_c.sim.imbalance_cv, 3)});
  t.print(std::cout);
  std::printf("speedup over (c): %s  (paper: %.2fx)\n",
              util::Table::speedup(classic_c.epoch_time_s /
                                   moment.epoch_time_s)
                  .c_str(),
              18.6 / 13.2);
  return 0;
}
