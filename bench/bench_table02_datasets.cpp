// Table 2 — dataset statistics: the paper-scale numbers each preset mirrors
// and the scaled in-memory instantiation actually used, with the skew
// fingerprint that makes the scaled graphs valid stand-ins.

#include "common.hpp"
#include "graph/datasets.hpp"

using namespace moment;

int main() {
  bench::header("Table 2: Dataset statistics",
                "paper Table 2 (PA / IG / UK / CL)");

  util::Table t({"Dataset", "Vertices", "Edges", "Topology", "Feature dim",
                 "Features", "scaled V", "scaled E", "deg gini",
                 "top1% share"});
  for (auto id : graph::kAllDatasets) {
    const auto ds = graph::make_dataset(id, bench::kScaleShift);
    const auto stats = graph::degree_stats(ds.csr);
    t.add_row({ds.name + " (" + ds.full_name + ")",
               util::Table::num(static_cast<double>(ds.paper.vertices) / 1e6, 0) + "M",
               util::Table::num(static_cast<double>(ds.paper.edges) / 1e9, 1) + "B",
               util::Table::bytes(static_cast<double>(ds.paper.topology_bytes)),
               std::to_string(ds.paper.feature_dim),
               util::Table::bytes(static_cast<double>(ds.paper.feature_bytes)),
               std::to_string(ds.scaled.vertices),
               std::to_string(ds.scaled.edges),
               util::Table::num(stats.gini, 2),
               util::Table::percent(stats.top1pct_share)});
  }
  t.print(std::cout);
  bench::note("paper-scale columns match Table 2; 'scaled' columns are the "
              "in-memory RMAT instantiations (skew preserved, see gini).");
  return 0;
}
