// Benchmark for the topology-aware communication layer.
//
// Part 1 — all-reduce planning: for each multi-GPU preset (2/4/8 GPUs on
// Machine A, placement c) compile the flat hub-and-spoke baseline and the
// planner's bandwidth-aware schedules, compare their contention-costed
// predicted comm time, and run a small data-parallel training job under both
// plans to confirm the schedules are pure transport models: identical wall
// clock work, bit-identical loss, and per-link byte counters that conserve
// the plan's analytic volume exactly.
//
// Part 2 — peer-HBM gather: a Zipf batch stream whose hot band lives in the
// two GPUs' HBM (half owned by each GPU) gathered once through the peer-HBM
// route and once through the host storage path. Both must be byte-identical
// to the source tensor; the peer leg must serve every remote-owned row over
// the planned route and account its bytes on the traversed links.
//
// Exit status is the verdict: >= 1.3x predicted comm-time reduction on at
// least one preset, bit-identical losses, byte-identical gathers, and exact
// link-byte conservation.
//
// Usage:
//   bench_comm [--out FILE]   full run, writes BENCH_comm.json
//   bench_comm --smoke        2/4-GPU presets, fewer rounds, no JSON

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "comm/plan.hpp"
#include "comm/planner.hpp"
#include "gnn/synthetic.hpp"
#include "graph/generators.hpp"
#include "iostack/feature_store.hpp"
#include "runtime/parallel_trainer.hpp"
#include "topology/machine.hpp"
#include "util/rng.hpp"

namespace {

using namespace moment;
using comm::AllReduceAlgo;
using comm::CommPlan;
using comm::CommPlanner;
using comm::LinkCounters;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

topology::Topology make_topo(int gpus) {
  const auto spec = topology::make_machine_a();
  return topology::instantiate(
      spec, topology::classic_placement(spec, 'c', gpus, 8));
}

// ---------------------------------------------------------------------------
// Part 1: flat vs planned all-reduce.

struct TrainLeg {
  double wall_s = 0.0;
  double allreduce_s = 0.0;
  float final_loss = 0.0f;
  std::uint64_t payload_bytes = 0;
  std::uint64_t modeled_bytes = 0;
  std::size_t rounds = 0;
  double predicted_comm_s = 0.0;
  bool conserved = true;
};

struct PresetResult {
  int gpus = 0;
  std::string planned_algo;   // what kAuto picked
  double flat_predicted_s = 0.0;
  double planned_predicted_s = 0.0;
  double ratio = 0.0;  // flat / planned, the simulated comm-time reduction
  TrainLeg flat;
  TrainLeg planned;
  bool bit_identical = false;
};

struct TrainerRig {
  graph::CsrGraph g;
  gnn::SyntheticTask task;
  std::vector<std::unique_ptr<gnn::InMemoryFeatures>> features;
  std::vector<gnn::FeatureProvider*> providers;

  static TrainerRig make(int workers) {
    TrainerRig r;
    graph::RmatParams gp;
    gp.num_vertices = 2048;
    gp.num_edges = 16000;
    r.g = graph::generate_rmat(gp);
    r.task = gnn::make_synthetic_task(r.g, 4, 16, 0.3, 9);
    for (int w = 0; w < workers; ++w) {
      r.features.push_back(
          std::make_unique<gnn::InMemoryFeatures>(r.task.features));
      r.providers.push_back(r.features.back().get());
    }
    return r;
  }

  gnn::ModelConfig model_config() const {
    gnn::ModelConfig cfg;
    cfg.kind = gnn::ModelKind::kGraphSage;
    cfg.in_dim = 16;
    cfg.hidden_dim = 32;
    cfg.num_classes = 4;
    return cfg;
  }
};

TrainLeg run_training(int gpus, const CommPlan& plan, int epochs) {
  TrainerRig rig = TrainerRig::make(gpus);
  auto train = sampling::select_train_vertices(rig.g, 0.3, 5);
  LinkCounters counters(plan.num_links);
  runtime::EngineOptions opts;
  opts.comm_plan = &plan;
  opts.link_counters = &counters;
  runtime::DataParallelTrainer trainer(rig.g, rig.providers,
                                       rig.model_config(), {5, 5}, train,
                                       0.01f, 11, opts);
  TrainLeg leg;
  const double t0 = now_s();
  runtime::EpochStats stats;
  for (int e = 0; e < epochs; ++e) {
    stats = trainer.train_epoch(rig.task.labels, 64);
    leg.allreduce_s += stats.allreduce_s;
    leg.rounds += stats.rounds;
    leg.modeled_bytes += stats.comm.modeled_bytes;
    leg.predicted_comm_s += stats.comm.predicted_comm_s;
    // Conservation: the epoch's per-link deltas must equal rounds x the
    // plan's per-all-reduce volume, byte for byte.
    const auto vols =
        plan.link_volume(static_cast<double>(stats.comm.payload_bytes));
    std::uint64_t per_round = 0;
    for (const auto& v : vols) per_round += v.ab + v.ba;
    if (stats.comm.modeled_bytes != per_round * stats.rounds) {
      leg.conserved = false;
    }
  }
  leg.wall_s = now_s() - t0;
  leg.final_loss = stats.mean_loss;
  leg.payload_bytes = stats.comm.payload_bytes;
  return leg;
}

PresetResult run_preset(int gpus, int epochs) {
  PresetResult r;
  r.gpus = gpus;
  const auto topo = make_topo(gpus);
  const CommPlanner planner(topo);
  const CommPlan flat = planner.plan(AllReduceAlgo::kFlat);
  const CommPlan planned = planner.plan(AllReduceAlgo::kAuto);
  r.planned_algo = comm::to_string(planned.algo);

  r.flat = run_training(gpus, flat, epochs);
  r.planned = run_training(gpus, planned, epochs);
  r.bit_identical = r.flat.final_loss == r.planned.final_loss;

  // Rank the schedules on the training job's real gradient payload.
  const auto payload = static_cast<double>(r.planned.payload_bytes);
  r.flat_predicted_s = flat.predicted_seconds(payload);
  r.planned_predicted_s = planned.predicted_seconds(payload);
  r.ratio = r.planned_predicted_s > 0.0
                ? r.flat_predicted_s / r.planned_predicted_s
                : 0.0;
  return r;
}

void print_preset(const PresetResult& r) {
  std::printf(
      "  %d GPUs: auto=%-4s  predicted %8.3f us flat vs %8.3f us planned "
      "(%.2fx)  allreduce wall %.1f/%.1f ms  loss %s  bytes %s\n",
      r.gpus, r.planned_algo.c_str(), r.flat_predicted_s * 1e6,
      r.planned_predicted_s * 1e6, r.ratio, r.flat.allreduce_s * 1e3,
      r.planned.allreduce_s * 1e3,
      r.bit_identical ? "bit-identical" : "DIVERGED",
      r.flat.conserved && r.planned.conserved ? "conserved" : "NOT CONSERVED");
}

// ---------------------------------------------------------------------------
// Part 2: peer-HBM vs storage-path gather.

struct GatherLeg {
  std::string name;
  double wall_s = 0.0;
  std::uint64_t peer_rows = 0;
  std::uint64_t peer_bytes = 0;
  std::uint64_t host_fallback_rows = 0;
  std::uint64_t link_bytes = 0;
  bool byte_identical = true;
  bool counters_conserved = true;
};

struct GatherShape {
  std::size_t num_vertices = 8192;
  std::size_t dim = 64;
  std::size_t hbm_rows = 2048;  // hottest band, split across two GPUs
  std::size_t cpu_rows = 512;
  std::size_t batches = 48;
  std::size_t batch_size = 1024;
};

GatherLeg run_gather(const GatherShape& shape, bool use_peer_path) {
  graph::RmatParams gp;
  gp.num_vertices = shape.num_vertices;
  gp.num_edges = shape.num_vertices * 8;
  const auto g = graph::generate_rmat(gp);
  const auto task = gnn::make_synthetic_task(g, 8, shape.dim, 0.3, 17);

  // Hottest band in HBM (half owned by each GPU), next band in CPU DRAM,
  // the tail striped over two SSDs. Vertex id == hotness rank.
  std::vector<iostack::BinBacking> bins = {
      {iostack::BinBacking::Kind::kGpuCache, -1, 0},
      {iostack::BinBacking::Kind::kGpuCache, -1, 1},
      {iostack::BinBacking::Kind::kCpuCache, -1, -1},
      {iostack::BinBacking::Kind::kSsd, 0, -1},
      {iostack::BinBacking::Kind::kSsd, 1, -1}};
  std::vector<std::int32_t> bov(shape.num_vertices);
  for (std::size_t v = 0; v < shape.num_vertices; ++v) {
    if (v < shape.hbm_rows / 2) bov[v] = 0;
    else if (v < shape.hbm_rows) bov[v] = 1;
    else if (v < shape.hbm_rows + shape.cpu_rows) bov[v] = 2;
    else bov[v] = 3 + static_cast<std::int32_t>(v % 2);
  }
  iostack::SsdOptions ssd_opts;
  ssd_opts.capacity_bytes = 64ull << 20;
  iostack::SsdArray array(2, ssd_opts);
  iostack::TieredFeatureStore store(task.features, bov, bins, array);

  const auto topo = make_topo(2);
  const CommPlan plan = CommPlanner(topo).plan(AllReduceAlgo::kAuto);
  LinkCounters counters(plan.num_links);
  iostack::PeerConfig peer;
  peer.gpu = 0;
  if (use_peer_path) {
    peer.plan = &plan;
    peer.counters = &counters;
  }
  iostack::TieredFeatureClient client(store, 256, {}, {}, peer);
  array.start_all();

  // Zipf batches concentrated on the HBM band: the regime where remote-HBM
  // rows dominate and the peer route pays off.
  const util::ZipfSampler zipf(shape.num_vertices, 1.2);
  util::Pcg32 rng(41);
  std::vector<std::vector<graph::VertexId>> batches(shape.batches);
  for (auto& batch : batches) {
    batch.resize(shape.batch_size);
    for (auto& v : batch) v = static_cast<graph::VertexId>(zipf.sample(rng));
  }

  GatherLeg leg;
  leg.name = use_peer_path ? "peer-hbm" : "storage-path";
  gnn::Tensor out(shape.batch_size, shape.dim);
  for (const auto& batch : batches) {
    client.gather(batch, out);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (std::memcmp(out.row(i).data(), task.features.row(batch[i]).data(),
                      shape.dim * sizeof(float)) != 0) {
        leg.byte_identical = false;
      }
    }
  }
  leg.wall_s = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    const double t0 = now_s();
    for (const auto& batch : batches) client.gather(batch, out);
    leg.wall_s = std::min(leg.wall_s, now_s() - t0);
  }
  array.stop_all();

  leg.peer_rows = client.stats().peer_hits;
  leg.peer_bytes = client.stats().peer_bytes;
  leg.host_fallback_rows = client.stats().remote_hbm_host_reads;
  for (const auto v : counters.snapshot()) leg.link_bytes += v;
  if (use_peer_path) {
    const comm::PeerRoute* route = plan.peer_route(1, 0);
    const std::uint64_t expected =
        route != nullptr ? leg.peer_bytes * route->links.size() : 0;
    leg.counters_conserved = leg.link_bytes == expected;
  }
  return leg;
}

void print_gather(const GatherLeg& leg) {
  std::printf(
      "  %-12s %7.1f ms   peer rows %8llu (%.1f MiB)  host-fallback %8llu  "
      "link bytes %.1f MiB  %s%s\n",
      leg.name.c_str(), leg.wall_s * 1e3,
      static_cast<unsigned long long>(leg.peer_rows),
      static_cast<double>(leg.peer_bytes) / (1024.0 * 1024.0),
      static_cast<unsigned long long>(leg.host_fallback_rows),
      static_cast<double>(leg.link_bytes) / (1024.0 * 1024.0),
      leg.byte_identical ? "bytes OK" : "BYTE MISMATCH",
      leg.counters_conserved ? "" : "  COUNTERS NOT CONSERVED");
}

// ---------------------------------------------------------------------------

int run(bool smoke, const std::string& out_path) {
  std::printf("bench_comm: flat vs planned all-reduce, peer-HBM gather%s\n",
              smoke ? " [smoke]" : "");
  std::vector<int> presets = smoke ? std::vector<int>{2, 4}
                                   : std::vector<int>{2, 4, 8};
  const int epochs = smoke ? 1 : 3;

  std::printf("\nall-reduce (Machine A, placement c):\n");
  std::vector<PresetResult> results;
  for (int gpus : presets) {
    results.push_back(run_preset(gpus, epochs));
    print_preset(results.back());
  }

  std::printf("\npeer-HBM gather (2 GPUs, Zipf 1.2 over the HBM band):\n");
  GatherShape gshape;
  if (smoke) {
    gshape.num_vertices = 1024;
    gshape.dim = 16;
    gshape.hbm_rows = 256;
    gshape.cpu_rows = 128;
    gshape.batches = 8;
    gshape.batch_size = 256;
  }
  const GatherLeg storage = run_gather(gshape, false);
  const GatherLeg peer = run_gather(gshape, true);
  print_gather(storage);
  print_gather(peer);

  double best_ratio = 0.0;
  bool pass = true;
  for (const auto& r : results) {
    best_ratio = std::max(best_ratio, r.ratio);
    if (!r.bit_identical) {
      std::printf("FAIL: %d-GPU loss diverged between flat and planned\n",
                  r.gpus);
      pass = false;
    }
    if (!r.flat.conserved || !r.planned.conserved) {
      std::printf("FAIL: %d-GPU link bytes not conserved\n", r.gpus);
      pass = false;
    }
  }
  if (best_ratio < 1.3) {
    std::printf("FAIL: best predicted comm-time reduction %.2fx < 1.3x\n",
                best_ratio);
    pass = false;
  }
  if (!storage.byte_identical || !peer.byte_identical) {
    std::printf("FAIL: gather not byte-identical\n");
    pass = false;
  }
  if (peer.peer_rows == 0 || !peer.counters_conserved) {
    std::printf("FAIL: peer path unused or counters not conserved\n");
    pass = false;
  }
  if (storage.peer_rows != 0 || storage.host_fallback_rows == 0) {
    std::printf("FAIL: storage path unexpectedly used the peer route\n");
    pass = false;
  }
  std::printf("\n  best predicted comm-time reduction: %.2fx (>= 1.3x %s)\n",
              best_ratio, best_ratio >= 1.3 ? "ok" : "MISSED");

  if (!smoke) {
    FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("cannot open %s for writing\n", out_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"presets\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      std::fprintf(
          f,
          "    {\"gpus\": %d, \"planned_algo\": \"%s\", "
          "\"payload_bytes\": %llu, \"flat_predicted_s\": %.9f, "
          "\"planned_predicted_s\": %.9f, \"predicted_reduction\": %.3f, "
          "\"flat_allreduce_wall_s\": %.6f, \"planned_allreduce_wall_s\": "
          "%.6f, \"rounds\": %zu, \"modeled_bytes_flat\": %llu, "
          "\"modeled_bytes_planned\": %llu, \"bit_identical_loss\": %s, "
          "\"link_bytes_conserved\": %s}%s\n",
          r.gpus, r.planned_algo.c_str(),
          static_cast<unsigned long long>(r.planned.payload_bytes),
          r.flat_predicted_s, r.planned_predicted_s, r.ratio,
          r.flat.allreduce_s, r.planned.allreduce_s, r.planned.rounds,
          static_cast<unsigned long long>(r.flat.modeled_bytes),
          static_cast<unsigned long long>(r.planned.modeled_bytes),
          r.bit_identical ? "true" : "false",
          r.flat.conserved && r.planned.conserved ? "true" : "false",
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(
        f,
        "  ],\n  \"peer_gather\": [\n"
        "    {\"name\": \"%s\", \"wall_s\": %.6f, \"peer_rows\": %llu, "
        "\"peer_bytes\": %llu, \"host_fallback_rows\": %llu, "
        "\"link_bytes\": %llu, \"byte_identical\": %s},\n"
        "    {\"name\": \"%s\", \"wall_s\": %.6f, \"peer_rows\": %llu, "
        "\"peer_bytes\": %llu, \"host_fallback_rows\": %llu, "
        "\"link_bytes\": %llu, \"byte_identical\": %s, "
        "\"counters_conserved\": %s}\n  ],\n",
        storage.name.c_str(), storage.wall_s,
        static_cast<unsigned long long>(storage.peer_rows),
        static_cast<unsigned long long>(storage.peer_bytes),
        static_cast<unsigned long long>(storage.host_fallback_rows),
        static_cast<unsigned long long>(storage.link_bytes),
        storage.byte_identical ? "true" : "false", peer.name.c_str(),
        peer.wall_s, static_cast<unsigned long long>(peer.peer_rows),
        static_cast<unsigned long long>(peer.peer_bytes),
        static_cast<unsigned long long>(peer.host_fallback_rows),
        static_cast<unsigned long long>(peer.link_bytes),
        peer.byte_identical ? "true" : "false",
        peer.counters_conserved ? "true" : "false");
    std::fprintf(f,
                 "  \"summary\": {\"best_predicted_reduction\": %.3f, "
                 "\"pass\": %s}\n}\n",
                 best_ratio, pass ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_comm.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::printf("usage: %s [--smoke] [--out FILE]\n", argv[0]);
      return 2;
    }
  }
  return run(smoke, out_path);
}
