// Figure 10 — end-to-end throughput of Moment, M-GIDS and DistDGL across all
// four datasets and both GNN models, plus the Section-4.2 cost comparison.
// Paper: Moment up to 6.51x over M-GIDS and up to 3.02x over DistDGL at
// about half the monetary cost; M-GIDS OOMs on UK/CL, DistDGL OOMs on
// IG/UK/CL.

#include "common.hpp"

using namespace moment;

int main() {
  bench::header("Figure 10: end-to-end throughput",
                "paper Fig. 10 + Section 4.2 cost analysis");

  const auto spec = topology::make_machine_a();
  for (auto model : {gnn::ModelKind::kGraphSage, gnn::ModelKind::kGat}) {
    util::Table t({"dataset", "Moment (kseeds/s)", "M-GIDS", "DistDGL",
                   "vs M-GIDS", "vs DistDGL"});
    for (auto dataset : graph::kAllDatasets) {
      const runtime::Workbench wb =
          runtime::Workbench::make(dataset, bench::kScaleShift, 42);
      runtime::ExperimentConfig c =
          bench::machine_config(&spec, dataset, model, 4);
      const auto moment =
          runtime::run_system(runtime::SystemKind::kMoment, c, wb);
      const auto gids =
          runtime::run_system(runtime::SystemKind::kMGids, c, wb);
      const auto distdgl =
          runtime::run_system(runtime::SystemKind::kDistDgl, c, wb);

      auto cell = [](const runtime::SystemResult& r) {
        return r.oom ? std::string("OOM") : bench::kseeds(
                                                r.throughput_seeds_per_s);
      };
      auto ratio = [&](const runtime::SystemResult& r) {
        return r.oom ? std::string("-")
                     : util::Table::speedup(moment.throughput_seeds_per_s /
                                            r.throughput_seeds_per_s);
      };
      t.add_row({graph::dataset_name(dataset), cell(moment), cell(gids),
                 cell(distdgl), ratio(gids), ratio(distdgl)});
    }
    std::printf("\nmodel: %s (Machine A, 4 GPUs, 8 SSDs)\n",
                model == gnn::ModelKind::kGraphSage ? "GraphSAGE" : "GAT");
    t.print(std::cout);
  }

  std::printf("\nCost (5-year TCO, Section 4.2):\n");
  util::Table cost({"platform", "TCO (USD)", "relative"});
  cost.add_row({"Machine A/B (Moment)",
                util::Table::num(runtime::machine_tco_usd(), 0),
                util::Table::percent(runtime::machine_tco_usd() /
                                     runtime::cluster_tco_usd())});
  cost.add_row({"Cluster C 4x (DistDGL)",
                util::Table::num(runtime::cluster_tco_usd(), 0), "100.0%"});
  cost.print(std::cout);
  bench::note("shape targets: Moment wins everywhere it and a baseline both "
              "run; M-GIDS OOM on UK/CL; DistDGL OOM on IG/UK/CL; cost ~50%.");
  return 0;
}
