// Figure 17 — cross-QPI traffic per epoch under hash vs DDAK data placement
// for the four classic layouts on Machine A. Paper: DDAK reduces QPI traffic
// by 14.2% / 8.7% / 18.1% / 9.5% for placements (a)-(d).

#include "common.hpp"

using namespace moment;

int main() {
  bench::header("Figure 17: QPI traffic, hash vs DDAK (Machine A)",
                "paper Fig. 17 (reductions 14.2/8.7/18.1/9.5%)");

  const auto spec = topology::make_machine_a();
  const runtime::Workbench wb =
      runtime::Workbench::make(graph::DatasetId::kIG, bench::kScaleShift, 42);

  constexpr double kPaperReduction[] = {0.142, 0.087, 0.181, 0.095};
  util::Table t({"placement", "hash QPI (GiB)", "DDAK QPI (GiB)", "reduction",
                 "paper"});
  for (int i = 0; i < 4; ++i) {
    const char which = static_cast<char>('a' + i);
    runtime::ExperimentConfig c = bench::machine_config(
        &spec, graph::DatasetId::kIG, gnn::ModelKind::kGraphSage, 4);
    c.placement = topology::classic_placement(spec, which, 4, 8);
    c.data_policy = runtime::DataPolicy::kHash;
    const auto hash = runtime::run_system(runtime::SystemKind::kMoment, c, wb);
    c.data_policy = runtime::DataPolicy::kDdak;
    const auto ddak = runtime::run_system(runtime::SystemKind::kMoment, c, wb);
    const double reduction =
        hash.sim.qpi_bytes > 0
            ? 1.0 - ddak.sim.qpi_bytes / hash.sim.qpi_bytes
            : 0.0;
    t.add_row({std::string(1, which),
               util::Table::num(hash.sim.qpi_bytes / util::kGiB, 1),
               util::Table::num(ddak.sim.qpi_bytes / util::kGiB, 1),
               util::Table::percent(reduction),
               util::Table::percent(kPaperReduction[i])});
  }
  t.print(std::cout);
  bench::note("shape target: DDAK never increases QPI traffic and cuts it "
              "most where remote access dominates.");
  return 0;
}
