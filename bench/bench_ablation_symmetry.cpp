// Ablation — isomorphic placement reduction (paper Section 3.2, "Problem
// Solving"): search-space size and wall time with and without symmetry
// canonicalisation, verifying the optimum is preserved.

#include <chrono>

#include "common.hpp"
#include "placement/search.hpp"

using namespace moment;

int main() {
  bench::header("Ablation: symmetry / isomorphic reduction",
                "paper Section 3.2 (eliminating equivalent variants)");

  const runtime::Workbench wb =
      runtime::Workbench::make(graph::DatasetId::kIG, bench::kScaleShift, 42);
  const auto workload = ddak::make_epoch_workload(wb.dataset, wb.profile,
                                                  ddak::CacheConfig{}, 4);

  for (const auto& spec :
       {topology::make_machine_a(), topology::make_machine_b()}) {
    util::Table t({"mode", "feasible combos", "evaluated", "wall (ms)",
                   "best score (GiB/s)"});
    for (bool reduce : {false, true}) {
      placement::SearchOptions o;
      o.num_gpus = 4;
      o.num_ssds = 8;
      o.use_symmetry_reduction = reduce;
      o.per_gpu_demand_bytes = workload.per_gpu_bytes;
      o.per_tier_bytes = {workload.total_bytes * workload.gpu_hit_fraction,
                          workload.total_bytes * workload.cpu_hit_fraction,
                          workload.total_bytes * workload.ssd_fraction};
      o.gpu_hbm_bytes = workload.per_gpu_bytes * workload.gpu_hit_fraction;
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = placement::search_placements(spec, o);
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      t.add_row({reduce ? "reduced" : "full",
                 std::to_string(r.total_combinations),
                 std::to_string(r.evaluated), util::Table::num(ms, 1),
                 util::Table::num(util::to_gib_per_s(r.best().score), 2)});
    }
    std::printf("\n%s (4 GPUs, 8 SSDs)\n", spec.name.c_str());
    t.print(std::cout);
  }
  bench::note("reduced and full searches must report identical best scores; "
              "Machine A halves its space via socket symmetry, Machine B's "
              "cascade breaks the symmetry so reduction is a no-op there.");
  return 0;
}
