// Extension — online adaptive placement (paper Limitations: "lightweight
// online profiling and adaptive placement" for dynamic workloads). A
// workload whose hot set drifts mid-run: static DDAK keeps serving the stale
// hot set from its caches, the adaptive placer follows the drift.

#include "common.hpp"
#include "ddak/adaptive.hpp"

using namespace moment;

namespace {

/// Fraction of accesses served from cache tiers under a placement.
double cache_hit_share(const ddak::DataPlacementResult& placement,
                       std::span<const graph::VertexId> accesses) {
  std::size_t hits = 0;
  for (graph::VertexId v : accesses) {
    const auto bin = placement.bin_of_vertex[v];
    if (bin == 0 || bin == 1) ++hits;  // GPU / CPU bins in this setup
  }
  return accesses.empty()
             ? 0.0
             : static_cast<double>(hits) / static_cast<double>(accesses.size());
}

}  // namespace

int main() {
  bench::header("Extension: adaptive placement under workload drift",
                "paper Section 5 'Limitations' (dynamic workloads)");

  constexpr std::size_t kN = 20000;
  std::vector<ddak::Bin> bins(3);
  bins[0] = {"GPU", 0, topology::StorageTier::kGpuHbm, 0.01 * kN, 30.0, {}};
  bins[1] = {"CPU", 1, topology::StorageTier::kCpuDram, 0.02 * kN, 20.0, {}};
  bins[2] = {"SSD", 2, topology::StorageTier::kSsd,
             static_cast<double>(kN), 50.0, {}};

  // Initial (phase-1) hotness: Zipf over identity order.
  sampling::HotnessProfile profile;
  profile.hotness.resize(kN);
  for (std::size_t v = 0; v < kN; ++v) {
    profile.hotness[v] = 1.0 / std::pow(static_cast<double>(v + 1), 0.9);
  }
  profile.batch_size = 64;
  profile.fetches_per_batch = 640;
  const auto static_place = ddak::ddak_place(bins, profile);

  ddak::AdaptiveOptions aopt;
  aopt.migration_budget = 1500;
  aopt.ema_alpha = 0.3;
  ddak::AdaptivePlacer placer(bins, static_place, aopt);

  util::Pcg32 rng(77);
  util::ZipfSampler zipf(kN, 0.9);
  auto draw_batch = [&](graph::VertexId hot_shift) {
    std::vector<graph::VertexId> batch(2000);
    for (auto& v : batch) {
      v = static_cast<graph::VertexId>(
          (zipf.sample(rng) + hot_shift) % kN);
    }
    return batch;
  };

  util::Table t({"round", "phase", "static hit rate", "adaptive hit rate",
                 "migrated"});
  for (int round = 0; round < 12; ++round) {
    // Phase 2 drifts the hot set by half the id space.
    const graph::VertexId shift = round < 4 ? 0 : kN / 2;
    const auto batch = draw_batch(shift);
    placer.observe(batch);
    const auto stats = placer.rebalance();
    t.add_row({std::to_string(round), shift == 0 ? "stable" : "drifted",
               util::Table::percent(cache_hit_share(static_place, batch)),
               util::Table::percent(cache_hit_share(placer.placement(), batch)),
               std::to_string(stats.migrated)});
  }
  t.print(std::cout);
  bench::note("after the drift, the static DDAK layout's cache hit rate "
              "collapses while the adaptive placer recovers it within a few "
              "rebalance rounds at bounded migration cost.");
  return 0;
}
