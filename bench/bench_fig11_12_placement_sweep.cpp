// Figures 11 & 12 — throughput of the four classic placements and Moment on
// Machines A and B, sweeping 2-4 GPUs and both models. Paper: Moment up to
// 1.54x (Machine A) and 1.63x (Machine B) over the classics.

#include "common.hpp"

using namespace moment;

int main() {
  bench::header("Figures 11 & 12: classic placements vs Moment",
                "paper Figs. 11-12 (Moment up to 1.54x / 1.63x)");

  const runtime::Workbench wb =
      runtime::Workbench::make(graph::DatasetId::kIG, bench::kScaleShift, 42);

  for (const auto& spec :
       {topology::make_machine_a(), topology::make_machine_b()}) {
    double best_gain = 0.0;
    for (auto model : {gnn::ModelKind::kGraphSage, gnn::ModelKind::kGat}) {
      util::Table t({"GPUs", "a", "b", "c", "d", "Moment", "Moment vs best",
                     "Moment vs worst"});
      for (int gpus : {2, 4}) {
        std::vector<std::string> row{std::to_string(gpus)};
        double best_classic = 0.0;
        double worst_classic = 1e300;
        for (int i = 0; i < 4; ++i) {
          const auto r = bench::run_classic(spec, wb, graph::DatasetId::kIG,
                                            model,
                                            static_cast<char>('a' + i), gpus);
          best_classic = std::max(best_classic, r.throughput_seeds_per_s);
          worst_classic = std::min(worst_classic, r.throughput_seeds_per_s);
          row.push_back(bench::kseeds(r.throughput_seeds_per_s));
        }
        runtime::ExperimentConfig c = bench::machine_config(
            &spec, graph::DatasetId::kIG, model, gpus);
        const auto moment =
            runtime::run_system(runtime::SystemKind::kMoment, c, wb);
        row.push_back(bench::kseeds(moment.throughput_seeds_per_s));
        row.push_back(util::Table::speedup(moment.throughput_seeds_per_s /
                                           best_classic));
        row.push_back(util::Table::speedup(moment.throughput_seeds_per_s /
                                           worst_classic));
        best_gain = std::max(best_gain, moment.throughput_seeds_per_s /
                                            worst_classic);
        t.add_row(row);
      }
      std::printf("\n%s / %s (kseeds/s)\n", spec.name.c_str(),
                  model == gnn::ModelKind::kGraphSage ? "GraphSAGE" : "GAT");
      t.print(std::cout);
    }
    std::printf("max Moment gain over a classic placement on %s: %s "
                "(paper: %s)\n",
                spec.name.c_str(), util::Table::speedup(best_gain).c_str(),
                spec.name == "MachineA" ? "1.54x" : "1.63x");
  }
  return 0;
}
