// Figure 16 — scalability from 1 to 4 GPUs on Machines A and B: Moment vs
// the best classic placement (c) and the weaker placement (d), on IG.
// Paper speedups 1 -> 4 GPUs: Machine A: d 1.92x, c 1.21x, Moment 2.26x;
// Machine B: d 1.57x, c 1.21x, Moment 2.21x.

#include "common.hpp"

using namespace moment;

int main() {
  bench::header("Figure 16: scalability 1 -> 4 GPUs",
                "paper Fig. 16 (Moment 2.26x / 2.21x; c only 1.21x)");

  const runtime::Workbench wb =
      runtime::Workbench::make(graph::DatasetId::kIG, bench::kScaleShift, 42);

  for (const auto& spec :
       {topology::make_machine_a(), topology::make_machine_b()}) {
    util::Table t({"system", "1 GPU", "2 GPUs", "3 GPUs", "4 GPUs",
                   "scaling 1->4"});
    struct Config {
      std::string name;
      char classic;  // 0 = Moment
    };
    for (const Config& cfg : {Config{"placement (d)", 'd'},
                              Config{"placement (c)", 'c'},
                              Config{"Moment", 0}}) {
      std::vector<std::string> row{cfg.name};
      double first = 0.0, last = 0.0;
      for (int gpus : {1, 2, 3, 4}) {
        double tput;
        if (cfg.classic != 0) {
          const auto r = bench::run_classic(spec, wb, graph::DatasetId::kIG,
                                            gnn::ModelKind::kGraphSage,
                                            cfg.classic, gpus);
          tput = r.throughput_seeds_per_s;
        } else {
          runtime::ExperimentConfig c = bench::machine_config(
              &spec, graph::DatasetId::kIG, gnn::ModelKind::kGraphSage, gpus);
          tput = runtime::run_system(runtime::SystemKind::kMoment, c, wb)
                     .throughput_seeds_per_s;
        }
        if (gpus == 1) first = tput;
        if (gpus == 4) last = tput;
        row.push_back(bench::kseeds(tput));
      }
      row.push_back(util::Table::speedup(last / first));
      t.add_row(row);
    }
    std::printf("\n%s (IG, GraphSAGE, 8 SSDs, kseeds/s)\n", spec.name.c_str());
    t.print(std::cout);
  }
  bench::note("shape target: Moment scales best; with 4 GPUs Moment nearly "
              "saturates the 8-SSD aggregate, so gains flatten beyond that.");
  return 0;
}
