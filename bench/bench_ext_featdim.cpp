// Extension — feature-dimension sensitivity. The artifact description calls
// the feature dimension the "data access granularity (affecting the IO
// throughput)": small embeddings make 4 KiB-page NVMe reads IOPS-bound and
// amplified; large embeddings stream at full bandwidth. Sweeps the dimension
// and reports epoch time with and without the IOPS model.

#include "common.hpp"
#include "sim/machine_sim.hpp"

using namespace moment;

int main() {
  bench::header("Extension: feature-dimension (access granularity) sweep",
                "artifact description B.1.5 ('feature_dim ... affecting the "
                "IO throughput')");

  const auto wb =
      runtime::Workbench::make(graph::DatasetId::kIG, bench::kScaleShift, 42);
  const auto spec = topology::make_machine_a();
  const auto topo = topology::instantiate(
      spec, topology::classic_placement(spec, 'c', 4, 8));
  const auto fg = topology::compile_flow_graph(topo);

  util::Table t({"feature dim", "bytes/vertex", "epoch bw-bound (s)",
                 "epoch IOPS-bound (s)", "IOPS penalty"});
  for (std::size_t dim : {128, 256, 512, 1024, 2048, 4096}) {
    auto workload = ddak::make_epoch_workload(wb.dataset, wb.profile,
                                              ddak::CacheConfig{}, 4);
    // Override the paper-scale feature size (default 1024 floats).
    const double bytes_per_vertex = static_cast<double>(dim) * sizeof(float);
    workload.total_bytes *= bytes_per_vertex / workload.feature_bytes;
    workload.per_gpu_bytes = workload.total_bytes / 4.0;
    workload.feature_bytes = bytes_per_vertex;

    const auto pred = topology::predict(
        fg,
        ddak::to_flow_demand(workload, fg, ddak::SupplyModel::kUniformHash));
    auto bins = ddak::make_bins(topo, fg, pred.per_storage_bytes,
                                wb.dataset.scaled.vertices, 0.005, 0.01);
    const auto merged = sim::merge_replicated_gpu_bins(bins);
    const auto place = ddak::hash_place(merged, wb.profile);

    sim::SimOptions bw;
    const auto fast = sim::simulate_epoch(topo, fg, workload, merged, place,
                                          bw);
    sim::SimOptions iops = bw;
    iops.ssd_iops = 1.0e6;
    // NVMe reads are page-granular: a d-float row still costs a whole
    // ceil(bytes/4K) pages worth of device work.
    iops.ssd_request_bytes =
        std::ceil(bytes_per_vertex / 4096.0) * 4096.0 *
        (4096.0 / std::min(bytes_per_vertex, 4096.0));
    const auto slow = sim::simulate_epoch(topo, fg, workload, merged, place,
                                          iops);
    t.add_row({std::to_string(dim),
               util::Table::bytes(bytes_per_vertex),
               util::Table::num(fast.epoch_time_s, 2),
               util::Table::num(slow.epoch_time_s, 2),
               util::Table::speedup(slow.epoch_time_s /
                                    fast.epoch_time_s)});
  }
  t.print(std::cout);
  bench::note("small embeddings waste page bandwidth (read amplification) "
              "and saturate IOPS; at 1024 floats a row is exactly one 4 KiB "
              "page — the paper's sweet spot.");
  return 0;
}
