// Table 1/3 — evaluated platforms. Prints the machine presets the simulator
// models (specs from the paper) and their profiled interconnect rates.

#include "common.hpp"
#include "topology/machine.hpp"

using namespace moment;

int main() {
  bench::header("Table 1/3: Evaluated platforms",
                "paper Table 1 (Detailed evaluation platforms)");

  util::Table t({"Machine", "GPU", "SSD", "PCIe", "CPU", "CPU Mem"});
  t.add_row({"A", "40GB-PCIe-A100 (x4)", "8x 3.84TB Intel P5510", "4.0x16",
             "2x Xeon Gold 5320", "768 GB"});
  t.add_row({"B", "40GB-PCIe-A100 (x4)", "8x 3.84TB Intel P5510", "4.0x16",
             "2x Xeon Gold 6426Y", "512 GB"});
  t.add_row({"C (cluster, 4x)", "40GB-PCIe-A100 (x1 each)", "-",
             "3.0x16, 100Gbps net", "2x Xeon Silver 4214", "256 GB each"});
  t.print(std::cout);

  for (const auto& spec :
       {topology::make_machine_a(), topology::make_machine_b()}) {
    std::printf("\n%s — %s\n", spec.name.c_str(), spec.description.c_str());
    std::printf("%s", spec.skeleton.to_string().c_str());
    util::Table groups({"slot group", "units", "GPU?", "SSD?", "gen"});
    for (const auto& g : spec.slot_groups) {
      groups.add_row({g.name, std::to_string(g.units),
                      g.allows_gpu ? "yes" : "no", g.allows_ssd ? "yes" : "no",
                      std::to_string(g.pcie_gen)});
    }
    groups.print(std::cout);
  }
  return 0;
}
