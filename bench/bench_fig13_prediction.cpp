// Figure 13 — prediction accuracy of the automatic module: predicted
// (max-flow) vs measured (fluid-simulated) throughput for Moment's plans
// across the four datasets, 2- and 4-GPU settings, on both machines.
// Paper: max error 8.61%.

#include "common.hpp"
#include "sim/trace_sim.hpp"

using namespace moment;

namespace {

/// Trace-driven measurement of a Moment plan: real sampled batches against
/// the realised placement, per-round fluid simulation.
double traced_epoch_time(const topology::MachineSpec& spec,
                         const runtime::Workbench& wb,
                         const runtime::SystemResult& r) {
  const auto topo = topology::instantiate(spec, r.placement);
  topology::FlowGraphOptions fopts;
  fopts.use_nvlink = r.placement.nvlink;
  const auto fg = topology::compile_flow_graph(topo, fopts);
  const auto pred = topology::predict(
      fg, ddak::to_flow_demand(r.workload, fg,
                               ddak::SupplyModel::kFlexibleTier));
  auto bins = ddak::make_bins(topo, fg, pred.per_storage_bytes,
                              wb.dataset.scaled.vertices, 0.005, 0.01);
  auto working = sim::merge_replicated_gpu_bins(bins);
  working = sim::merge_replicated_cpu_bins(working);
  ddak::DdakOptions dopt;
  dopt.pool_size = ddak::default_pool_size(wb.dataset.scaled.vertices);
  const auto place = ddak::ddak_place(working, wb.profile, dopt);
  sampling::NeighborSampler sampler(wb.dataset.csr, {25, 10});
  const auto train = sampling::select_train_vertices(
      wb.dataset.csr, wb.dataset.train_fraction, 42);
  sim::TraceSimOptions topts;
  topts.trace_rounds = 8;
  topts.scaled_batch_size = wb.profile.batch_size;
  return sim::simulate_epoch_traced(topo, fg, r.workload, working, place,
                                    sampler, train, topts)
      .epoch_time_s;
}

}  // namespace

int main() {
  bench::header("Figure 13: automatic-module prediction accuracy",
                "paper Fig. 13 (max error 8.61% across datasets/machines)");

  double max_err = 0.0;
  double max_trace_err = 0.0;
  for (const auto& spec :
       {topology::make_machine_a(), topology::make_machine_b()}) {
    util::Table t({"dataset", "GPUs", "predicted epoch (s)",
                   "measured epoch (s)", "error", "traced epoch (s)",
                   "error vs traced"});
    for (auto dataset : graph::kAllDatasets) {
      const runtime::Workbench wb =
          runtime::Workbench::make(dataset, bench::kScaleShift, 42);
      for (int gpus : {2, 4}) {
        runtime::ExperimentConfig c = bench::machine_config(
            &spec, dataset, gnn::ModelKind::kGraphSage, gpus);
        const auto r =
            runtime::run_system(runtime::SystemKind::kMoment, c, wb);
        const double err =
            std::abs(r.predicted_epoch_time_s - r.epoch_time_s) /
            r.epoch_time_s;
        max_err = std::max(max_err, err);
        const double traced = traced_epoch_time(spec, wb, r);
        const double terr =
            std::abs(r.predicted_epoch_time_s - traced) / traced;
        max_trace_err = std::max(max_trace_err, terr);
        t.add_row({graph::dataset_name(dataset), std::to_string(gpus),
                   util::Table::num(r.predicted_epoch_time_s, 2),
                   util::Table::num(r.epoch_time_s, 2),
                   util::Table::percent(err),
                   util::Table::num(traced, 2),
                   util::Table::percent(terr)});
      }
    }
    std::printf("\n%s\n", spec.name.c_str());
    t.print(std::cout);
  }
  std::printf("\nmax prediction error vs expectation sim: %s; vs traced "
              "rounds: %s (paper: 8.61%%)\n",
              util::Table::percent(max_err).c_str(),
              util::Table::percent(max_trace_err).c_str());
  return 0;
}
