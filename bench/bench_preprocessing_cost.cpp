// Section 3.3 "Pooling and Pre-processing Cost" — offline planning cost
// (profiling + max-flow search + DDAK) vs epoch time, and the DDAK pooling-n
// sweep. Paper: ~14 s offline on UK vs ~90 s/epoch on a 2-GPU server,
// amortised to <1% of training; n = 100 is the balanced default.

#include <chrono>

#include "common.hpp"
#include "ddak/ddak.hpp"

using namespace moment;

int main() {
  bench::header("Section 3.3: pre-processing cost and pooling sweep",
                "paper Section 3.3 (offline ~14 s vs ~90 s/epoch; n = 100)");

  const auto spec = topology::make_machine_b();
  core::AutoModuleConfig cfg;
  cfg.machine = &spec;
  cfg.dataset = graph::DatasetId::kUK;
  cfg.dataset_scale_shift = bench::kScaleShift;
  cfg.num_gpus = 2;
  cfg.num_ssds = 8;
  const core::Plan plan = core::AutoModule::plan(cfg);

  // Epoch time on the same config for the amortisation ratio.
  const runtime::Workbench wb = runtime::Workbench::make(
      graph::DatasetId::kUK, bench::kScaleShift, cfg.seed);
  runtime::ExperimentConfig ec = bench::machine_config(
      &spec, graph::DatasetId::kUK, gnn::ModelKind::kGraphSage, 2);
  const auto run = runtime::run_system(runtime::SystemKind::kMoment, ec, wb);

  util::Table t({"stage", "wall time (s)"});
  t.add_row({"hotness profiling", util::Table::num(plan.profile_time_s, 3)});
  t.add_row({"placement search (max-flow + refinement)",
             util::Table::num(plan.search_time_s, 3)});
  t.add_row({"DDAK allocation", util::Table::num(plan.ddak_time_s, 3)});
  t.add_row({"total offline", util::Table::num(plan.total_time_s(), 3)});
  t.add_row({"simulated epoch (UK, 2 GPUs)",
             util::Table::num(run.epoch_time_s, 1)});
  t.print(std::cout);
  std::printf("offline cost per 48-epoch training run: %s of total\n",
              util::Table::percent(plan.total_time_s() /
                                   (plan.total_time_s() +
                                    48.0 * run.epoch_time_s))
                  .c_str());

  // Pooling sweep: planning wall time vs traffic-target tracking error.
  std::printf("\nDDAK pooling sweep (UK-scaled, %zu vertices):\n",
              static_cast<std::size_t>(plan.data_placement.bin_of_vertex.size()));
  util::Table sweep({"pool n", "plan time (ms)", "traffic share error"});
  for (std::size_t n : {1ul, 4ul, 16ul, 64ul, 100ul, 256ul, 1024ul}) {
    ddak::DdakOptions opt;
    opt.pool_size = n;
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = ddak::ddak_place(plan.bins, wb.profile, opt);
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    sweep.add_row({std::to_string(n), util::Table::num(ms, 2),
                   util::Table::num(r.traffic_share_error, 4)});
  }
  sweep.print(std::cout);
  bench::note("larger n plans faster but tracks the flow targets more "
              "coarsely — the paper's n = 100 trade-off.");
  return 0;
}
