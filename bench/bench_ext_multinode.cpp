// Extension — multi-node generalization (paper Section 5): treat NICs as
// interconnect nodes, network links as capacity edges, and let the same
// max-flow machinery plan cluster-wide placement. Shows (a) the locality
// the search discovers, (b) throughput vs network bandwidth, (c) scaling
// with machine count.

#include "common.hpp"
#include "placement/search.hpp"
#include "topology/cluster.hpp"

using namespace moment;

namespace {

placement::SearchOptions cluster_workload(int gpus, int ssds) {
  placement::SearchOptions o;
  o.num_gpus = gpus;
  o.num_ssds = ssds;
  const double total = 400.0 * util::kGiB;
  o.per_gpu_demand_bytes = total / gpus;
  o.per_tier_bytes = {0.11 * total, 0.15 * total, 0.74 * total};
  o.gpu_hbm_bytes = 0.11 * total / gpus;
  return o;
}

}  // namespace

int main() {
  bench::header("Extension: multi-node co-optimization",
                "paper Section 5 (Generalization to Multi-node)");

  // (a) locality: best placement for 2 GPUs + 8 SSDs on a 4-machine cluster.
  {
    const auto spec = topology::make_cluster_c();
    const auto r = placement::search_placements(spec, cluster_workload(2, 8));
    std::printf("4-machine cluster, 2 GPUs + 8 SSDs\n");
    std::printf("searched placement: %s\n",
                placement::describe(spec, r.best().placement).c_str());
    std::printf("candidates: %zu -> %zu after rotation reduction\n\n",
                r.total_combinations, r.evaluated);
  }

  // (b) predicted throughput vs network bandwidth for a remote-heavy layout.
  {
    util::Table t({"network (GiB/s per NIC)", "co-located (GiB/s)",
                   "remote-heavy (GiB/s)", "remote penalty"});
    for (double net_bw : {2.5, 10.0, 40.0}) {
      topology::ClusterOptions co;
      co.num_machines = 2;
      co.network_gib_per_s = net_bw;
      co.slot_units_per_machine = 12;
      const auto spec = topology::make_cluster(co);
      topology::Placement local, remote;
      local.gpus_per_group = {2, 0};
      local.ssds_per_group = {6, 2};
      remote.gpus_per_group = {2, 0};
      remote.ssds_per_group = {0, 8};
      auto score = [&](const topology::Placement& p) {
        const auto o = cluster_workload(2, 8);
        return placement::evaluate_placement(spec, p, o).score;
      };
      const double sl = score(local);
      const double sr = score(remote);
      t.add_row({util::Table::num(net_bw, 1),
                 util::Table::num(util::to_gib_per_s(sl), 1),
                 util::Table::num(util::to_gib_per_s(sr), 1),
                 util::Table::speedup(sl / sr)});
    }
    t.print(std::cout);
    bench::note("with a slow network, co-locating data with compute is "
                "worth multiples; fast networks shrink the gap — the "
                "trade-off Moment's cluster-level max flow captures.");
  }

  // (c) scaling with machine count (1 GPU + 2 SSDs per machine).
  {
    util::Table t({"machines", "predicted agg throughput (GiB/s)",
                   "per-machine (GiB/s)"});
    for (int machines : {1, 2, 4, 8}) {
      topology::ClusterOptions co;
      co.num_machines = machines;
      const auto spec = topology::make_cluster(co);
      topology::Placement p;
      p.gpus_per_group.assign(spec.slot_groups.size(), 1);
      p.ssds_per_group.assign(spec.slot_groups.size(), 2);
      const auto o = cluster_workload(machines, 2 * machines);
      const auto c = placement::evaluate_placement(spec, p, o);
      t.add_row({std::to_string(machines),
                 util::Table::num(util::to_gib_per_s(c.score), 1),
                 util::Table::num(util::to_gib_per_s(c.score) / machines, 1)});
    }
    t.print(std::cout);
    bench::note("per-machine throughput stays flat when placements keep "
                "traffic node-local: near-linear scale-out.");
  }
  return 0;
}
