// Figures 3 & 4 — M-Hyperion training throughput under the four classic
// placements on Machines A and B, for the IG and UK datasets.
// Paper: placement (c) achieves 1.86x over (b) on Machine A and 1.96x on
// Machine B.

#include "common.hpp"

using namespace moment;

int main() {
  bench::header("Figures 3 & 4: M-Hyperion throughput across placements",
                "paper Figs. 3-4 (placement (c) ~1.86x/1.96x over (b))");

  for (const auto& spec :
       {topology::make_machine_a(), topology::make_machine_b()}) {
    for (auto dataset : {graph::DatasetId::kIG, graph::DatasetId::kUK}) {
      const runtime::Workbench wb =
          runtime::Workbench::make(dataset, bench::kScaleShift, 42);
      util::Table t({"placement", "throughput (kseeds/s)", "epoch (s)",
                     "vs (b)"});
      double results[4] = {};
      for (int i = 0; i < 4; ++i) {
        const auto r = bench::run_classic(spec, wb, dataset,
                                          gnn::ModelKind::kGraphSage,
                                          static_cast<char>('a' + i), 4);
        results[i] = r.throughput_seeds_per_s;
        t.add_row({std::string(1, static_cast<char>('a' + i)),
                   bench::kseeds(r.throughput_seeds_per_s),
                   util::Table::num(r.epoch_time_s, 1), ""});
      }
      // Fill the ratio column.
      util::Table t2({"placement", "throughput (kseeds/s)", "vs (b)"});
      for (int i = 0; i < 4; ++i) {
        t2.add_row({std::string(1, static_cast<char>('a' + i)),
                    bench::kseeds(results[i]),
                    util::Table::speedup(results[i] / results[1])});
      }
      std::printf("\n%s / %s (M-Hyperion, 4 GPUs, 8 SSDs)\n",
                  spec.name.c_str(), graph::dataset_name(dataset));
      t2.print(std::cout);
    }
  }
  bench::note("paper reference: c/b = 1.86x (Machine A), 1.96x (Machine B).");
  return 0;
}
