// Figure 18 — NVLink support: placement (c) with and without NVLink bridges
// between GPU pairs, using partitioned GPU caches so peer reads exercise the
// extra links. Paper: +11.7% on Machine A, +6.8% on Machine B.

#include "common.hpp"

using namespace moment;

int main() {
  bench::header("Figure 18: NVLink vs no-NVLink (placement c, IG)",
                "paper Fig. 18 (+11.7% Machine A, +6.8% Machine B)");

  const runtime::Workbench wb =
      runtime::Workbench::make(graph::DatasetId::kIG, bench::kScaleShift, 42);

  for (const auto& spec :
       {topology::make_machine_a(), topology::make_machine_b()}) {
    util::Table t({"config", "throughput (kseeds/s)", "epoch (s)"});
    double base = 0.0, nv = 0.0;
    for (bool nvlink : {false, true}) {
      runtime::ExperimentConfig c = bench::machine_config(
          &spec, graph::DatasetId::kIG, gnn::ModelKind::kGraphSage, 4);
      c.placement = topology::classic_placement(spec, 'c', 4, 8);
      c.placement->nvlink = nvlink;
      c.nvlink = nvlink;
      c.gpu_cache_mode = ddak::GpuCacheMode::kPartitioned;
      // Partitioned caches hold G distinct hot slices; peers fetch over
      // NVLink when present, else over PCIe P2P.
      c.cache.gpu_cache_fraction = 0.01;
      const auto r = runtime::run_system(runtime::SystemKind::kMoment, c, wb);
      (nvlink ? nv : base) = r.throughput_seeds_per_s;
      t.add_row({nvlink ? "NVLink" : "no NVLink",
                 bench::kseeds(r.throughput_seeds_per_s),
                 util::Table::num(r.epoch_time_s, 2)});
    }
    std::printf("\n%s\n", spec.name.c_str());
    t.print(std::cout);
    std::printf("NVLink gain: %s (paper: %s)\n",
                util::Table::percent(nv / base - 1.0).c_str(),
                spec.name == "MachineA" ? "11.7%" : "6.8%");
  }
  return 0;
}
