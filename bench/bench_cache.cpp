// Benchmark for the gather IO-reduction pipeline: in-batch dedup, run
// coalescing and the shared hot-row cache, measured against the naive
// one-command-per-occurrence gather on a power-law (Zipf alpha = 1.2)
// workload — the skew regime the Moment paper's IOPS argument assumes.
//
// Four configurations run the identical batch stream against fresh stores:
//   naive            no dedup, no coalescing, no cache
//   dedup            in-batch dedup only
//   dedup+coalesce   dedup plus adjacent-run coalescing
//   full             dedup + coalescing + hotness-warmed shared cache
// plus one chaos leg: the full configuration with a mid-run hard device
// failure, asserting the failover path keeps results byte-identical.
//
// Every configuration must return byte-identical features; the exit status
// is the verdict (byte-identity everywhere, >= 30% fewer SSD commands for
// the full pipeline, and a wall-clock gather speedup).
//
// Usage:
//   bench_cache [--out FILE]   full run, writes BENCH_cache.json
//   bench_cache --smoke        small shapes, same checks, no JSON

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "gnn/synthetic.hpp"
#include "graph/generators.hpp"
#include "iostack/fault_injector.hpp"
#include "iostack/feature_store.hpp"
#include "iostack/row_cache.hpp"
#include "util/rng.hpp"

namespace {

using namespace moment;
using iostack::BinBacking;
using iostack::GatherOptions;
using iostack::TieredFeatureClient;
using iostack::TieredFeatureStore;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Shape {
  std::size_t num_vertices = 8192;
  std::size_t num_edges = 60000;
  std::size_t dim = 64;
  std::size_t gpu_rows = 256;  // hottest ranks, statically placed (DDAK)
  std::size_t cpu_rows = 256;  // next-hottest band
  /// Covers the hottest quarter of the SSD-resident tail: under Zipf 1.2
  /// that band absorbs roughly two thirds of the SSD-tier draws.
  std::size_t cache_rows = 2048;
  std::size_t batches = 64;
  std::size_t batch_size = 1024;
  std::uint64_t fail_after_commands = 40;  // chaos leg, SSD 1
};

Shape smoke_shape() {
  Shape s;
  s.num_vertices = 1024;
  s.num_edges = 6000;
  s.dim = 16;
  s.gpu_rows = 64;
  s.cpu_rows = 64;
  s.cache_rows = 384;
  s.batches = 8;
  s.batch_size = 256;
  s.fail_after_commands = 5;
  return s;
}

/// The shared workload: features plus a power-law batch stream. Vertex id
/// equals hotness rank (DDAK places by descending hotness), so the GPU/CPU
/// tiers hold the hottest bands and the cache competes for the SSD tail.
struct Workload {
  gnn::SyntheticTask task;
  std::vector<std::int32_t> bov;
  std::vector<BinBacking> bins;
  std::vector<graph::VertexId> hot_order;  // ascending id = descending rank
  std::vector<std::vector<graph::VertexId>> batches;
};

Workload make_workload(const Shape& shape) {
  graph::RmatParams gp;
  gp.num_vertices = shape.num_vertices;
  gp.num_edges = shape.num_edges;
  const auto g = graph::generate_rmat(gp);

  Workload w{gnn::make_synthetic_task(g, 8, shape.dim, 0.3, 17), {}, {}, {}, {}};
  w.bins = {{BinBacking::Kind::kGpuCache, -1},
            {BinBacking::Kind::kCpuCache, -1},
            {BinBacking::Kind::kSsd, 0},
            {BinBacking::Kind::kSsd, 1},
            {BinBacking::Kind::kSsd, 2}};
  w.bov.resize(shape.num_vertices);
  for (std::size_t v = 0; v < shape.num_vertices; ++v) {
    if (v < shape.gpu_rows) {
      w.bov[v] = 0;
    } else if (v < shape.gpu_rows + shape.cpu_rows) {
      w.bov[v] = 1;
    } else {
      w.bov[v] = static_cast<std::int32_t>(2 + v % 3);
    }
  }
  w.hot_order.resize(shape.num_vertices);
  for (std::size_t v = 0; v < shape.num_vertices; ++v) {
    w.hot_order[v] = static_cast<graph::VertexId>(v);
  }

  const util::ZipfSampler zipf(shape.num_vertices, 1.2);
  util::Pcg32 rng(41);
  w.batches.resize(shape.batches);
  for (auto& batch : w.batches) {
    batch.resize(shape.batch_size);
    for (auto& v : batch) {
      v = static_cast<graph::VertexId>(zipf.sample(rng));
    }
  }
  return w;
}

struct ConfigResult {
  std::string name;
  double wall_s = 0.0;
  iostack::GatherStats stats;
  std::uint64_t device_reads = 0;
  std::uint64_t device_bytes = 0;
  std::uint64_t device_remaps = 0;
  std::uint64_t cache_invalidations = 0;
  bool byte_identical = true;
};

ConfigResult run_config(const Shape& shape, const Workload& w,
                        const std::string& name, const GatherOptions& gopts,
                        bool with_cache, bool inject_fault) {
  iostack::SsdOptions ssd_opts;
  ssd_opts.capacity_bytes = 64ull << 20;
  // Pace the simulated devices so the gather time reflects bytes moved, the
  // way an IOPS/bandwidth-bound NVMe array would.
  ssd_opts.max_bytes_per_s = 1.0e9;
  iostack::SsdArray array(3, ssd_opts);
  TieredFeatureStore store(w.task.features, w.bov, w.bins, array);
  if (with_cache) {
    iostack::RowCacheOptions cache_opts;
    cache_opts.capacity_rows = shape.cache_rows;
    store.enable_row_cache(cache_opts);
    store.warm_row_cache(w.hot_order);
  }
  if (inject_fault) {
    iostack::FaultProfile fp;
    fp.fail_after_reads = shape.fail_after_commands;
    array.ssd(1).inject_faults(fp);
  }

  iostack::IoEngineOptions io;
  io.max_retries = 2;
  TieredFeatureClient client(store, 256, io, gopts);
  array.start_all();

  ConfigResult result;
  result.name = name;
  gnn::Tensor out(shape.batch_size, shape.dim);

  // Verification pass (untimed): byte-identity on every row. Its stats are
  // the reported command counts — a cold cache, so compulsory misses are
  // included and the reduction numbers are not flattered by re-runs.
  for (const auto& batch : w.batches) {
    client.gather(batch, out);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto got = out.row(i);
      const auto want = w.task.features.row(batch[i]);
      if (std::memcmp(got.data(), want.data(),
                      got.size() * sizeof(float)) != 0) {
        result.byte_identical = false;
      }
    }
  }
  result.stats = client.stats();
  for (std::size_t s = 0; s < array.size(); ++s) {
    result.device_reads += array.ssd(s).stats().reads;
    result.device_bytes += array.ssd(s).stats().bytes_read;
  }

  // Steady-state timing: best of three full passes over the batch stream
  // (epoch N behaviour — the cache holds whatever the skew keeps hot).
  result.wall_s = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    const double t0 = now_s();
    for (const auto& batch : w.batches) {
      client.gather(batch, out);
    }
    result.wall_s = std::min(result.wall_s, now_s() - t0);
  }
  array.stop_all();
  result.device_remaps = store.device_remaps();
  if (store.row_cache() != nullptr) {
    result.cache_invalidations = store.row_cache()->stats().invalidations;
  }
  return result;
}

void print_result(const ConfigResult& r) {
  const auto& s = r.stats;
  std::printf(
      "  %-16s %7.1f ms   cmds %8llu  rows %8llu (%.2f rows/cmd)  "
      "dedup -%llu  cache %llu/%llu  bytes %.1f MiB  %s\n",
      r.name.c_str(), r.wall_s * 1e3,
      static_cast<unsigned long long>(s.ssd_commands),
      static_cast<unsigned long long>(s.ssd_reads), s.coalesce_rows_per_cmd(),
      static_cast<unsigned long long>(s.dedup_saved_reads),
      static_cast<unsigned long long>(s.cache_hits),
      static_cast<unsigned long long>(s.cache_hits + s.cache_misses),
      static_cast<double>(r.device_bytes) / (1024.0 * 1024.0),
      r.byte_identical ? "bytes OK" : "BYTE MISMATCH");
}

void emit_json_config(FILE* f, const ConfigResult& r, bool last) {
  const auto& s = r.stats;
  const double denom = static_cast<double>(s.cache_hits + s.cache_misses);
  std::fprintf(
      f,
      "    {\"name\": \"%s\", \"wall_s\": %.6f, \"ssd_commands\": %llu, "
      "\"ssd_rows\": %llu, \"rows_per_cmd\": %.3f, "
      "\"coalesced_commands\": %llu, \"dedup_saved_reads\": %llu, "
      "\"cache_hits\": %llu, \"cache_misses\": %llu, \"cache_hit_rate\": "
      "%.4f, \"device_reads\": %llu, \"device_bytes\": %llu, "
      "\"byte_identical\": %s}%s\n",
      r.name.c_str(), r.wall_s,
      static_cast<unsigned long long>(s.ssd_commands),
      static_cast<unsigned long long>(s.ssd_reads), s.coalesce_rows_per_cmd(),
      static_cast<unsigned long long>(s.coalesced_commands),
      static_cast<unsigned long long>(s.dedup_saved_reads),
      static_cast<unsigned long long>(s.cache_hits),
      static_cast<unsigned long long>(s.cache_misses),
      denom > 0.0 ? static_cast<double>(s.cache_hits) / denom : 0.0,
      static_cast<unsigned long long>(r.device_reads),
      static_cast<unsigned long long>(r.device_bytes),
      r.byte_identical ? "true" : "false", last ? "" : ",");
}

int run(const Shape& shape, bool smoke, const std::string& out_path) {
  std::printf("bench_cache: %zu vertices, dim %zu, %zu batches x %zu "
              "(Zipf 1.2)%s\n",
              shape.num_vertices, shape.dim, shape.batches, shape.batch_size,
              smoke ? " [smoke]" : "");
  const Workload w = make_workload(shape);

  GatherOptions naive;
  naive.dedup = false;
  naive.coalesce = false;
  naive.use_cache = false;
  GatherOptions dedup = naive;
  dedup.dedup = true;
  GatherOptions coalesce = dedup;
  coalesce.coalesce = true;
  const GatherOptions full;  // everything on

  std::vector<ConfigResult> results;
  results.push_back(run_config(shape, w, "naive", naive, false, false));
  results.push_back(run_config(shape, w, "dedup", dedup, false, false));
  results.push_back(
      run_config(shape, w, "dedup+coalesce", coalesce, false, false));
  results.push_back(run_config(shape, w, "full", full, true, false));
  const ConfigResult fault =
      run_config(shape, w, "full+device-failure", full, true, true);

  for (const auto& r : results) print_result(r);
  print_result(fault);

  const ConfigResult& base = results.front();
  const ConfigResult& best = results.back();
  const double cmd_reduction =
      base.stats.ssd_commands > 0
          ? 1.0 - static_cast<double>(best.stats.ssd_commands) /
                      static_cast<double>(base.stats.ssd_commands)
          : 0.0;
  const double speedup = best.wall_s > 0.0 ? base.wall_s / best.wall_s : 0.0;
  std::printf("\n  full pipeline: %.1f%% fewer SSD commands, %.2fx gather "
              "speedup vs naive\n",
              cmd_reduction * 100.0, speedup);
  std::printf("  chaos leg: %s, %llu remap(s), %llu cache invalidation(s)\n",
              fault.byte_identical ? "byte-identical" : "BYTE MISMATCH",
              static_cast<unsigned long long>(fault.device_remaps),
              static_cast<unsigned long long>(fault.cache_invalidations));

  bool pass = cmd_reduction >= 0.30;
  if (!pass) std::printf("FAIL: command reduction below 30%%\n");
  if (speedup <= 1.0) {
    std::printf("FAIL: no gather speedup over naive\n");
    pass = false;
  }
  for (const auto& r : results) pass = pass && r.byte_identical;
  pass = pass && fault.byte_identical && fault.device_remaps == 1 &&
         fault.cache_invalidations > 0;
  if (fault.device_remaps != 1 || fault.cache_invalidations == 0) {
    std::printf("FAIL: chaos leg did not exercise failover invalidation\n");
  }

  if (!smoke) {
    FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("cannot open %s for writing\n", out_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"workload\": {\"num_vertices\": %zu, \"dim\": %zu, "
                 "\"batches\": %zu, \"batch_size\": %zu, \"zipf_alpha\": 1.2, "
                 "\"cache_rows\": %zu},\n  \"configs\": [\n",
                 shape.num_vertices, shape.dim, shape.batches,
                 shape.batch_size, shape.cache_rows);
    for (std::size_t i = 0; i < results.size(); ++i) {
      emit_json_config(f, results[i], false);
    }
    emit_json_config(f, fault, true);
    std::fprintf(
        f,
        "  ],\n  \"summary\": {\"command_reduction_vs_naive\": %.4f, "
        "\"gather_speedup\": %.3f, \"fault_run_byte_identical\": %s, "
        "\"fault_device_remaps\": %llu, \"fault_cache_invalidations\": "
        "%llu, \"pass\": %s}\n}\n",
        cmd_reduction, speedup, fault.byte_identical ? "true" : "false",
        static_cast<unsigned long long>(fault.device_remaps),
        static_cast<unsigned long long>(fault.cache_invalidations),
        pass ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
  }
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_cache.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::printf("usage: %s [--smoke] [--out FILE]\n", argv[0]);
      return 2;
    }
  }
  return run(smoke ? smoke_shape() : Shape{}, smoke, out_path);
}
