// Micro-benchmarks (google-benchmark): the hot kernels of the automatic
// module and the runtime substrates. These are not paper figures; they are
// the engineering numbers a user of the library cares about (planner cost,
// sampler rate, IO stack throughput, GNN kernel cost).

#include <benchmark/benchmark.h>

#include "ddak/ddak.hpp"
#include "ddak/workload.hpp"
#include "gnn/block.hpp"
#include "gnn/loss.hpp"
#include "gnn/model.hpp"
#include "gnn/optimizer.hpp"
#include "maxflow/time_bisection.hpp"
#include "graph/generators.hpp"
#include "iostack/ssd.hpp"
#include "maxflow/dinic.hpp"
#include "maxflow/edmonds_karp.hpp"
#include "placement/search.hpp"
#include "runtime/systems.hpp"
#include "sim/machine_sim.hpp"

namespace {

using namespace moment;

topology::FlowGraph machine_flow_graph(char placement) {
  static const auto spec = topology::make_machine_b();
  const auto topo = topology::instantiate(
      spec, topology::classic_placement(spec, placement, 4, 8));
  return topology::compile_flow_graph(topo);
}

void BM_DinicMachineB(benchmark::State& state) {
  const auto fg = machine_flow_graph('c');
  for (auto _ : state) {
    maxflow::FlowNetwork net = fg.net;
    benchmark::DoNotOptimize(
        maxflow::Dinic::solve(net, fg.source, fg.sink).total_flow);
  }
}
BENCHMARK(BM_DinicMachineB);

void BM_EdmondsKarpMachineB(benchmark::State& state) {
  const auto fg = machine_flow_graph('c');
  for (auto _ : state) {
    maxflow::FlowNetwork net = fg.net;
    benchmark::DoNotOptimize(
        maxflow::EdmondsKarp::solve(net, fg.source, fg.sink).total_flow);
  }
}
BENCHMARK(BM_EdmondsKarpMachineB);

void BM_TimeBisection(benchmark::State& state) {
  const auto fg = machine_flow_graph('c');
  std::vector<maxflow::ByteConstraint> demands;
  for (const auto& g : fg.gpus) {
    demands.push_back({g.demand_edge, 100.0 * 1024 * 1024 * 1024});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        maxflow::solve_time_bisection(fg.net, fg.source, fg.sink, demands, {})
            .min_time_s);
  }
}
BENCHMARK(BM_TimeBisection);

void BM_CompileFlowGraph(benchmark::State& state) {
  const auto spec = topology::make_machine_a();
  const auto topo = topology::instantiate(
      spec, topology::classic_placement(spec, 'c', 4, 8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology::compile_flow_graph(topo).storage.size());
  }
}
BENCHMARK(BM_CompileFlowGraph);

void BM_PlacementSearch(benchmark::State& state) {
  const auto spec = state.range(0) == 0 ? topology::make_machine_a()
                                        : topology::make_machine_b();
  placement::SearchOptions o;
  o.num_gpus = 4;
  o.num_ssds = 8;
  o.per_tier_bytes = {50e9, 60e9, 250e9};
  o.gpu_hbm_bytes = 15e9;
  o.per_gpu_demand_bytes = 90e9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::search_placements(spec, o).evaluated);
  }
}
BENCHMARK(BM_PlacementSearch)->Arg(0)->Arg(1);

graph::CsrGraph bench_graph() {
  graph::RmatParams p;
  p.num_vertices = 1 << 14;
  p.num_edges = 200000;
  return graph::generate_rmat(p);
}

void BM_NeighborSample(benchmark::State& state) {
  const auto g = bench_graph();
  sampling::NeighborSampler sampler(g, {25, 10});
  auto train = sampling::select_train_vertices(g, 0.05, 3);
  util::Pcg32 rng(1);
  const std::span<const graph::VertexId> seeds{train.data(), 64};
  std::size_t fetched = 0;
  for (auto _ : state) {
    const auto sg = sampler.sample(seeds, rng);
    fetched += sg.fetch_set.size();
    benchmark::DoNotOptimize(sg.fetch_set.data());
  }
  state.counters["fetched/s"] = benchmark::Counter(
      static_cast<double>(fetched), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NeighborSample);

void BM_DdakPlace(benchmark::State& state) {
  const auto bench = runtime::Workbench::make(graph::DatasetId::kIG, 3, 42);
  const auto spec = topology::make_machine_a();
  const auto topo = topology::instantiate(
      spec, topology::classic_placement(spec, 'c', 4, 8));
  const auto fg = topology::compile_flow_graph(topo);
  const auto w = ddak::make_epoch_workload(bench.dataset, bench.profile,
                                           ddak::CacheConfig{}, 4);
  const auto pred = topology::predict(fg, ddak::to_flow_demand(w, fg));
  const auto bins = ddak::make_bins(topo, fg, pred.per_storage_bytes,
                                    bench.dataset.scaled.vertices, 0.005,
                                    0.01);
  const auto merged = sim::merge_replicated_gpu_bins(bins);
  ddak::DdakOptions opt;
  opt.pool_size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ddak::ddak_place(merged, bench.profile, opt).traffic_share_error);
  }
}
BENCHMARK(BM_DdakPlace)->Arg(4)->Arg(100)->Arg(1024);

void BM_FluidRoundSim(benchmark::State& state) {
  const auto bench = runtime::Workbench::make(graph::DatasetId::kIG, 3, 42);
  const auto spec = topology::make_machine_b();
  const auto topo = topology::instantiate(
      spec, topology::classic_placement(spec, 'c', 4, 8));
  const auto fg = topology::compile_flow_graph(topo);
  const auto w = ddak::make_epoch_workload(bench.dataset, bench.profile,
                                           ddak::CacheConfig{}, 4);
  const auto pred = topology::predict(fg, ddak::to_flow_demand(w, fg));
  const auto bins = ddak::make_bins(topo, fg, pred.per_storage_bytes,
                                    bench.dataset.scaled.vertices, 0.005,
                                    0.01);
  const auto merged = sim::merge_replicated_gpu_bins(bins);
  const auto place = ddak::ddak_place(merged, bench.profile);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::simulate_epoch(topo, fg, w, merged, place).epoch_time_s);
  }
}
BENCHMARK(BM_FluidRoundSim);

void BM_IoStackRead4K(benchmark::State& state) {
  iostack::SsdOptions opts;
  opts.capacity_bytes = 16ull << 20;
  iostack::SsdArray array(4, opts);
  iostack::IoEngine engine(array);
  array.start_all();
  std::vector<std::byte> buf(64 * iostack::kPageBytes);
  util::Pcg32 rng(7);
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      engine.submit_read(
          rng.next_below(4),
          rng.next_below(4000) * iostack::kPageBytes,
          static_cast<std::uint32_t>(iostack::kPageBytes),
          buf.data() + static_cast<std::size_t>(i) * iostack::kPageBytes);
    }
    engine.wait_all();
    bytes += 64 * iostack::kPageBytes;
  }
  array.stop_all();
  state.counters["bytes/s"] = benchmark::Counter(
      static_cast<double>(bytes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IoStackRead4K);

void BM_GnnTrainStep(benchmark::State& state) {
  const auto g = bench_graph();
  sampling::NeighborSampler sampler(g, {10, 5});
  auto train = sampling::select_train_vertices(g, 0.05, 3);
  util::Pcg32 rng(2);
  gnn::ModelConfig cfg;
  cfg.kind = state.range(0) == 0 ? gnn::ModelKind::kGraphSage
                                 : gnn::ModelKind::kGat;
  cfg.in_dim = 32;
  cfg.hidden_dim = 32;
  cfg.num_classes = 8;
  cfg.gat_heads = 4;
  gnn::GnnModel model(cfg);
  gnn::Adam opt(model.parameters(), 0.01f);
  std::vector<std::int32_t> labels(g.num_vertices());
  for (std::size_t v = 0; v < labels.size(); ++v) {
    labels[v] = static_cast<std::int32_t>(v % 8);
  }
  const std::span<const graph::VertexId> seeds{train.data(), 32};
  for (auto _ : state) {
    const auto sg = sampler.sample(seeds, rng);
    const auto blocks = gnn::build_blocks(sg);
    gnn::Tensor x0 = gnn::Tensor::glorot(blocks[0].num_src(), 32, rng);
    gnn::Tensor logits = model.forward(blocks, x0);
    std::vector<std::int32_t> seed_labels;
    for (auto v : blocks.back().dst_ids) seed_labels.push_back(labels[v]);
    const auto loss = gnn::softmax_cross_entropy(logits, seed_labels);
    opt.zero_grad();
    model.backward(blocks, loss.grad_logits);
    opt.step();
    benchmark::DoNotOptimize(loss.loss);
  }
}
BENCHMARK(BM_GnnTrainStep)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
