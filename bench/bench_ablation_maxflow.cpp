// Ablation — max-flow solver choice: Dinic vs Edmonds-Karp vs push-relabel
// on compiled machine/cluster flow graphs of increasing size, plus agreement
// checks. Justifies using Dinic inside the time-bisection inner loop.

#include <chrono>

#include "common.hpp"
#include "maxflow/dinic.hpp"
#include "maxflow/edmonds_karp.hpp"
#include "maxflow/push_relabel.hpp"
#include "topology/cluster.hpp"
#include "topology/flow_graph.hpp"

using namespace moment;

namespace {

double time_solver(const topology::FlowGraph& fg, int reps,
                   double (*solve)(maxflow::FlowNetwork&, maxflow::NodeId,
                                   maxflow::NodeId),
                   double* flow_out) {
  const auto t0 = std::chrono::steady_clock::now();
  double flow = 0.0;
  for (int i = 0; i < reps; ++i) {
    maxflow::FlowNetwork net = fg.net;
    flow = solve(net, fg.source, fg.sink);
  }
  *flow_out = flow;
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
             .count() /
         reps;
}

double run_dinic(maxflow::FlowNetwork& n, maxflow::NodeId s,
                 maxflow::NodeId t) {
  return maxflow::Dinic::solve(n, s, t).total_flow;
}
double run_ek(maxflow::FlowNetwork& n, maxflow::NodeId s, maxflow::NodeId t) {
  return maxflow::EdmondsKarp::solve(n, s, t).total_flow;
}
double run_pr(maxflow::FlowNetwork& n, maxflow::NodeId s, maxflow::NodeId t) {
  return maxflow::PushRelabel::solve(n, s, t).total_flow;
}

}  // namespace

int main() {
  bench::header("Ablation: max-flow solver choice",
                "engineering ablation for the Section-3.2 solver");

  struct Case {
    std::string name;
    topology::FlowGraph fg;
  };
  std::vector<Case> cases;
  {
    const auto a = topology::make_machine_a();
    cases.push_back({"MachineA placement c",
                     topology::compile_flow_graph(topology::instantiate(
                         a, topology::classic_placement(a, 'c', 4, 8)))});
    const auto b = topology::make_machine_b();
    cases.push_back({"MachineB placement d",
                     topology::compile_flow_graph(topology::instantiate(
                         b, topology::classic_placement(b, 'd', 4, 8)))});
    for (int machines : {4, 16, 64}) {
      topology::ClusterOptions co;
      co.num_machines = machines;
      const auto spec = topology::make_cluster(co);
      topology::Placement p;
      p.gpus_per_group.assign(spec.slot_groups.size(), 1);
      p.ssds_per_group.assign(spec.slot_groups.size(), 2);
      cases.push_back({"Cluster " + std::to_string(machines) + "x",
                       topology::compile_flow_graph(
                           topology::instantiate(spec, p))});
    }
  }

  util::Table t({"network", "nodes", "edges", "Dinic (us)", "EK (us)",
                 "PushRelabel (us)", "agree"});
  for (const auto& c : cases) {
    double fd, fe, fp;
    const int reps = 50;
    const double td = time_solver(c.fg, reps, run_dinic, &fd);
    const double te = time_solver(c.fg, reps, run_ek, &fe);
    const double tp = time_solver(c.fg, reps, run_pr, &fp);
    const bool agree = std::abs(fd - fe) < 1e-6 * std::max(1.0, fd) &&
                       std::abs(fd - fp) < 1e-6 * std::max(1.0, fd);
    t.add_row({c.name, std::to_string(c.fg.net.num_nodes()),
               std::to_string(c.fg.net.num_edges()),
               util::Table::num(td, 1), util::Table::num(te, 1),
               util::Table::num(tp, 1), agree ? "yes" : "NO"});
  }
  t.print(std::cout);
  bench::note("all three solvers must agree; Dinic wins on these shallow "
              "layered graphs, which is why the time-bisection loop uses it.");
  return 0;
}
