// Microbenchmark for the gnn/kernels layer: blocked/vectorized GEMM and CSR
// block aggregation against the naive loops they replaced. The naive
// references below are verbatim copies of the pre-kernel implementations and
// compile at the project-default optimisation level, so the reported speedups
// are honest before/after numbers, not strawmen.
//
// Usage:
//   bench_kernels [--threads N] [--out FILE]   full run, writes BENCH_kernels.json
//   bench_kernels --smoke                      tiny-shape correctness only
//
// GEMM shapes are (1024 x d) @ (d x 256) for the paper's feature dims
// d in {100, 128, 256, 602, 1024} (Table 2: Products 100, Papers100M 128,
// MAG240M 768-class hidden 256, UK-Union 602, Clueweb 1024-ish). The
// aggregation shape (10k dst / 200k edge / 30k src, dim 256) matches a
// fanout-20 sampled block.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "gnn/block.hpp"
#include "gnn/kernels.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using moment::gnn::Block;
using moment::gnn::CompiledBlock;
namespace kernels = moment::gnn::kernels;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<float> random_matrix(std::size_t rows, std::size_t cols,
                                 moment::util::Pcg32& rng) {
  std::vector<float> m(rows * cols);
  for (float& v : m) v = static_cast<float>(rng.next_double(-1.0, 1.0));
  return m;
}

// ---- naive references (the pre-kernel implementations, verbatim) ----------

void naive_gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
                const float* b, float* c) {
  std::memset(c, 0, m * n * sizeof(float));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      float* orow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void naive_gemm_bt(std::size_t m, std::size_t k, std::size_t n, const float* a,
                   const float* b, float* c) {
  std::memset(c, 0, m * n * sizeof(float));
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* orow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      orow[j] += acc;
    }
  }
}

void naive_gemm_at(std::size_t m, std::size_t k, std::size_t n, const float* a,
                   const float* b, float* c) {
  std::memset(c, 0, k * n * sizeof(float));
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    const float* brow = b + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      float* orow = c + p * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

// Edge-list mean aggregation, as SageLayer::forward did it pre-kernels.
void naive_aggregate_mean(const Block& block, const float* x, std::size_t dim,
                          float* out) {
  const std::size_t nd = block.num_dst();
  std::memset(out, 0, nd * dim * sizeof(float));
  std::vector<std::size_t> degree(nd, 0);
  for (const auto& [dst, src] : block.edges) {
    const auto d = static_cast<std::size_t>(dst);
    const float* srow = x + static_cast<std::size_t>(src) * dim;
    float* orow = out + d * dim;
    for (std::size_t c = 0; c < dim; ++c) orow[c] += srow[c];
    ++degree[d];
  }
  for (std::size_t i = 0; i < nd; ++i) {
    if (degree[i] == 0) continue;
    const float inv = 1.0f / static_cast<float>(degree[i]);
    float* orow = out + i * dim;
    for (std::size_t c = 0; c < dim; ++c) orow[c] *= inv;
  }
}

// ---- harness ---------------------------------------------------------------

/// Max relative mismatch, with an absolute floor so near-zero entries don't
/// blow the ratio up.
double max_rel_diff(const std::vector<float>& ref,
                    const std::vector<float>& got) {
  double worst = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const double denom = std::max(1.0, std::abs(static_cast<double>(ref[i])));
    worst = std::max(
        worst, std::abs(static_cast<double>(ref[i]) - got[i]) / denom);
  }
  return worst;
}

template <typename Fn>
double time_best(int reps, Fn&& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_s();
    fn();
    best = std::min(best, now_s() - t0);
  }
  return best;
}

Block make_block(std::size_t nd, std::size_t ns, std::size_t ne,
                 moment::util::Pcg32& rng) {
  Block block;
  block.dst_ids.resize(nd);
  block.src_ids.resize(ns);
  for (std::size_t i = 0; i < nd; ++i) block.dst_ids[i] = static_cast<int>(i);
  for (std::size_t i = 0; i < ns; ++i) block.src_ids[i] = static_cast<int>(i);
  block.dst_in_src.resize(nd);
  for (std::size_t i = 0; i < nd; ++i) block.dst_in_src[i] = static_cast<int>(i);
  block.edges.reserve(ne);
  for (std::size_t e = 0; e < ne; ++e) {
    block.edges.emplace_back(
        static_cast<int>(rng.next_below(static_cast<std::uint32_t>(nd))),
        static_cast<int>(rng.next_below(static_cast<std::uint32_t>(ns))));
  }
  return block;
}

constexpr double kTol = 1e-4;

bool check(const char* what, const std::vector<float>& ref,
           const std::vector<float>& got) {
  const double diff = max_rel_diff(ref, got);
  if (diff > kTol) {
    std::printf("FAIL %-28s max_rel_diff=%.3g (tol %.1g)\n", what, diff, kTol);
    return false;
  }
  std::printf("ok   %-28s max_rel_diff=%.3g\n", what, diff);
  return true;
}

int run_smoke() {
  moment::util::Pcg32 rng(42);
  bool pass = true;
  const std::size_t shapes[][3] = {
      {1, 1, 1}, {3, 5, 2}, {17, 33, 29}, {65, 1, 129}, {33, 257, 7}};
  for (const auto& s : shapes) {
    const std::size_t m = s[0], k = s[1], n = s[2];
    const auto a = random_matrix(m, k, rng);
    const auto b = random_matrix(k, n, rng);
    const auto bt = random_matrix(n, k, rng);
    const auto bm = random_matrix(m, n, rng);
    std::vector<float> ref(m * n), got(m * n);
    naive_gemm(m, k, n, a.data(), b.data(), ref.data());
    kernels::gemm(m, k, n, a.data(), b.data(), got.data(), false);
    pass &= check("gemm", ref, got);
    std::vector<float> ref2(m * n), got2(m * n);
    naive_gemm_bt(m, k, n, a.data(), bt.data(), ref2.data());
    kernels::gemm_bt(m, k, n, a.data(), bt.data(), got2.data(), false);
    pass &= check("gemm_bt", ref2, got2);
    std::vector<float> ref3(k * n), got3(k * n);
    naive_gemm_at(m, k, n, a.data(), bm.data(), ref3.data());
    kernels::gemm_at(m, k, n, a.data(), bm.data(), got3.data(), false);
    pass &= check("gemm_at", ref3, got3);
  }
  {
    const std::size_t nd = 50, ns = 120, ne = 400, dim = 33;
    const Block block = make_block(nd, ns, ne, rng);
    const CompiledBlock cb = moment::gnn::compile_block(block);
    const auto x = random_matrix(ns, dim, rng);
    std::vector<float> ref(nd * dim), got(nd * dim);
    naive_aggregate_mean(block, x.data(), dim, ref.data());
    kernels::aggregate_mean(cb, x.data(), dim, got.data());
    pass &= check("aggregate_mean", ref, got);
  }
  std::printf("smoke: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

struct GemmRow {
  std::size_t m, k, n;
  double naive_s, kernel_s, speedup, naive_gflops, kernel_gflops;
};

int run_full(std::size_t threads, const std::string& out_path) {
  moment::util::set_compute_pool_threads(threads);
  std::printf("compute pool: %zu thread(s)\n",
              moment::util::compute_pool_threads());
  moment::util::Pcg32 rng(42);
  bool pass = true;

  const std::size_t m = 1024, n = 256;
  const std::size_t feat_dims[] = {100, 128, 256, 602, 1024};
  std::vector<GemmRow> rows;
  std::printf("\nGEMM (%zu x d) @ (d x %zu):\n", m, n);
  for (const std::size_t k : feat_dims) {
    const auto a = random_matrix(m, k, rng);
    const auto b = random_matrix(k, n, rng);
    std::vector<float> ref(m * n), got(m * n);
    naive_gemm(m, k, n, a.data(), b.data(), ref.data());
    kernels::gemm(m, k, n, a.data(), b.data(), got.data(), false);
    if (max_rel_diff(ref, got) > kTol) {
      std::printf("FAIL gemm d=%zu exceeds tolerance\n", k);
      pass = false;
    }
    GemmRow r;
    r.m = m; r.k = k; r.n = n;
    r.naive_s = time_best(3, [&] {
      naive_gemm(m, k, n, a.data(), b.data(), ref.data());
    });
    r.kernel_s = time_best(5, [&] {
      kernels::gemm(m, k, n, a.data(), b.data(), got.data(), false);
    });
    const double flops = 2.0 * static_cast<double>(m * k * n);
    r.naive_gflops = flops / r.naive_s / 1e9;
    r.kernel_gflops = flops / r.kernel_s / 1e9;
    r.speedup = r.naive_s / r.kernel_s;
    rows.push_back(r);
    std::printf("  d=%-5zu naive %7.2f ms (%5.2f GF/s)  kernel %7.2f ms "
                "(%5.2f GF/s)  speedup %.2fx\n",
                k, r.naive_s * 1e3, r.naive_gflops, r.kernel_s * 1e3,
                r.kernel_gflops, r.speedup);
  }

  const std::size_t nd = 10000, ns = 30000, ne = 200000, dim = 256;
  const Block block = make_block(nd, ns, ne, rng);
  const CompiledBlock cb = moment::gnn::compile_block(block);
  const auto x = random_matrix(ns, dim, rng);
  std::vector<float> ref(nd * dim), got(nd * dim);
  naive_aggregate_mean(block, x.data(), dim, ref.data());
  kernels::aggregate_mean(cb, x.data(), dim, got.data());
  if (max_rel_diff(ref, got) > kTol) {
    std::printf("FAIL aggregate_mean exceeds tolerance\n");
    pass = false;
  }
  const double agg_naive_s = time_best(5, [&] {
    naive_aggregate_mean(block, x.data(), dim, ref.data());
  });
  const double agg_kernel_s = time_best(7, [&] {
    kernels::aggregate_mean(cb, x.data(), dim, got.data());
  });
  const double agg_speedup = agg_naive_s / agg_kernel_s;
  std::printf("\naggregate_mean %zu dst / %zu edges / %zu src, dim %zu:\n"
              "  naive %7.2f ms  kernel %7.2f ms  speedup %.2fx\n",
              nd, ne, ns, dim, agg_naive_s * 1e3, agg_kernel_s * 1e3,
              agg_speedup);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::printf("cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"threads\": %zu,\n  \"gemm\": [\n",
               moment::util::compute_pool_threads());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const GemmRow& r = rows[i];
    std::fprintf(f,
                 "    {\"m\": %zu, \"k\": %zu, \"n\": %zu, "
                 "\"naive_s\": %.6f, \"kernel_s\": %.6f, "
                 "\"naive_gflops\": %.3f, \"kernel_gflops\": %.3f, "
                 "\"speedup\": %.3f}%s\n",
                 r.m, r.k, r.n, r.naive_s, r.kernel_s, r.naive_gflops,
                 r.kernel_gflops, r.speedup,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"aggregate_mean\": {\"num_dst\": %zu, "
               "\"num_edges\": %zu, \"num_src\": %zu, \"dim\": %zu, "
               "\"naive_s\": %.6f, \"kernel_s\": %.6f, \"speedup\": %.3f}\n}\n",
               nd, ne, ns, dim, agg_naive_s, agg_kernel_s, agg_speedup);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t threads = 4;
  std::string out_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::printf("usage: %s [--smoke] [--threads N] [--out FILE]\n", argv[0]);
      return 2;
    }
  }
  return smoke ? run_smoke() : run_full(threads, out_path);
}
