#pragma once
// Shared helpers for the figure-reproduction harness. Each bench binary
// regenerates one paper table/figure: it runs the relevant systems on the
// scaled datasets and prints the same rows/series the paper reports, next to
// the paper's reference values where the paper states them.
//
// Absolute numbers come from the flow-level simulator, not the authors'
// testbed; the quantities to compare are the *shapes* — orderings, ratios,
// crossovers. EXPERIMENTS.md records paper-vs-measured for every figure.

#include <cstdio>
#include <iostream>
#include <string>

#include "core/auto_module.hpp"
#include "runtime/systems.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace moment::bench {

/// Default dataset scale for benches: fast enough for a laptop-class box,
/// big enough to keep the skew statistics stable.
inline constexpr int kScaleShift = 3;

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) {
  std::printf("NOTE: %s\n", text.c_str());
}

/// Seeds-per-second throughput in the unit the paper plots (10^3 seeds/s).
inline std::string kseeds(double seeds_per_s) {
  return util::Table::num(seeds_per_s / 1000.0, 1);
}

inline runtime::ExperimentConfig machine_config(
    const topology::MachineSpec* spec, graph::DatasetId dataset,
    gnn::ModelKind model, int gpus, int ssds = 8) {
  runtime::ExperimentConfig c;
  c.machine = spec;
  c.dataset = dataset;
  c.dataset_scale_shift = kScaleShift;
  c.model = model;
  c.num_gpus = gpus;
  c.num_ssds = ssds;
  return c;
}

/// Classic-placement baseline run (M-Hyperion runtime under layout `which`).
inline runtime::SystemResult run_classic(const topology::MachineSpec& spec,
                                         const runtime::Workbench& bench,
                                         graph::DatasetId dataset,
                                         gnn::ModelKind model, char which,
                                         int gpus, int ssds = 8) {
  runtime::ExperimentConfig c =
      machine_config(&spec, dataset, model, gpus, ssds);
  c.default_classic = which;
  return runtime::run_system(runtime::SystemKind::kMHyperion, c, bench);
}

}  // namespace moment::bench
