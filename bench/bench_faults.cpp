// Chaos harness for the fault-tolerant IO stack. Trains the same model twice
// through the tiered NVMe feature path — once fault-free, once under 1%
// injected transient read errors on every SSD plus one hard device failure
// mid-training — and asserts:
//
//   1. every epoch completes (all waits are deadline-bounded);
//   2. the loss trajectory is BIT-IDENTICAL to the fault-free run: retries
//      and host-copy failover return exactly the bytes the device would
//      have, so fault timing never perturbs training;
//   3. the faulted run reports nonzero retries/failovers and one failed
//      device with its bins remapped; the fault-free run reports all zeros.
//
// Exit status is the verdict (0 = pass), so this runs as a CTest entry
// (label: faults).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "gnn/synthetic.hpp"
#include "graph/generators.hpp"
#include "iostack/feature_store.hpp"
#include "runtime/parallel_trainer.hpp"
#include "sampling/neighbor_sampler.hpp"

namespace {

using namespace moment;

constexpr int kWorkers = 2;
constexpr int kEpochs = 4;
constexpr std::size_t kBatch = 32;
constexpr std::size_t kVertices = 512;

int failures = 0;

#define CHECK(cond, msg)                                  \
  do {                                                    \
    if (!(cond)) {                                        \
      std::printf("FAIL: %s (%s)\n", msg, #cond);         \
      ++failures;                                         \
    }                                                     \
  } while (0)

struct Rig {
  graph::CsrGraph g;
  gnn::SyntheticTask task;
  std::unique_ptr<iostack::SsdArray> array;
  std::unique_ptr<iostack::TieredFeatureStore> store;
  std::vector<std::unique_ptr<iostack::TieredFeatureClient>> clients;
  std::vector<gnn::FeatureProvider*> providers;

  /// Three SSDs with 2x capacity slack so failover re-placement always fits.
  static Rig make(bool faulted) {
    Rig r;
    graph::RmatParams gp;
    gp.num_vertices = kVertices;
    gp.num_edges = 4000;
    r.g = graph::generate_rmat(gp);
    r.task = gnn::make_synthetic_task(r.g, 4, 12, 0.3, 9);
    std::vector<iostack::BinBacking> bins = {
        {iostack::BinBacking::Kind::kGpuCache, -1},
        {iostack::BinBacking::Kind::kCpuCache, -1},
        {iostack::BinBacking::Kind::kSsd, 0},
        {iostack::BinBacking::Kind::kSsd, 1},
        {iostack::BinBacking::Kind::kSsd, 2},
    };
    std::vector<std::int32_t> bov(kVertices);
    for (std::size_t v = 0; v < kVertices; ++v) {
      if (v < 32) bov[v] = 0;
      else if (v < 64) bov[v] = 1;
      else bov[v] = 2 + static_cast<std::int32_t>(v % 3);
    }
    iostack::SsdOptions opts;
    opts.capacity_bytes = 2ull << 20;
    r.array = std::make_unique<iostack::SsdArray>(3, opts);
    r.store = std::make_unique<iostack::TieredFeatureStore>(
        r.task.features, bov, bins, *r.array);
    if (faulted) {
      for (std::size_t s = 0; s < 3; ++s) {
        iostack::FaultProfile fp;
        fp.read_error_prob = 0.01;  // 1% transient errors everywhere
        fp.seed = 0x5eedf001 + s;
        if (s == 2) fp.fail_after_reads = 150;  // hard failure mid-training
        r.array->ssd(s).inject_faults(fp);
      }
    }
    for (int w = 0; w < kWorkers; ++w) {
      iostack::IoEngineOptions io;
      io.max_retries = 8;  // transient 1% errors must never exhaust retries
      r.clients.push_back(std::make_unique<iostack::TieredFeatureClient>(
          *r.store, 256, io));
      r.providers.push_back(r.clients.back().get());
    }
    r.array->start_all();
    return r;
  }

  gnn::ModelConfig model_config() const {
    gnn::ModelConfig cfg;
    cfg.kind = gnn::ModelKind::kGraphSage;
    cfg.in_dim = 12;
    cfg.hidden_dim = 16;
    cfg.num_classes = 4;
    return cfg;
  }
};

struct RunResult {
  std::vector<float> losses;
  std::vector<float> accuracies;
  gnn::FeatureProvider::IoResilience io;  // summed epoch deltas + gauges
};

RunResult run(bool faulted) {
  Rig rig = Rig::make(faulted);
  auto train = sampling::select_train_vertices(rig.g, 0.3, 5);
  runtime::DataParallelTrainer trainer(rig.g, rig.providers,
                                       rig.model_config(), {5, 5}, train,
                                       0.01f, 31);
  RunResult res;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    const auto stats = trainer.train_epoch(rig.task.labels, kBatch);
    res.losses.push_back(stats.mean_loss);
    res.accuracies.push_back(stats.mean_accuracy);
    res.io.retries += stats.io.retries;
    res.io.timeouts += stats.io.timeouts;
    res.io.permanent_failures += stats.io.permanent_failures;
    res.io.failovers += stats.io.failovers;
    res.io.device_remaps =
        std::max(res.io.device_remaps, stats.io.device_remaps);
    res.io.devices_failed =
        std::max(res.io.devices_failed, stats.io.devices_failed);
  }
  rig.array->stop_all();
  return res;
}

}  // namespace

int main() {
  std::printf("chaos harness: %d epochs fault-free vs faulted "
              "(1%% transient errors + device 2 hard-fails)\n",
              kEpochs);
  const RunResult clean = run(/*faulted=*/false);
  const RunResult chaos = run(/*faulted=*/true);

  CHECK(clean.losses.size() == static_cast<std::size_t>(kEpochs),
        "fault-free run completed all epochs");
  CHECK(chaos.losses.size() == static_cast<std::size_t>(kEpochs),
        "faulted run completed all epochs (bounded waits)");

  // Bit-identical loss trajectory: retries/failover return the same bytes.
  for (int e = 0; e < kEpochs; ++e) {
    const bool loss_same =
        std::memcmp(&clean.losses[e], &chaos.losses[e], sizeof(float)) == 0;
    const bool acc_same = std::memcmp(&clean.accuracies[e],
                                      &chaos.accuracies[e],
                                      sizeof(float)) == 0;
    CHECK(loss_same, "per-epoch loss bit-identical under faults");
    CHECK(acc_same, "per-epoch accuracy bit-identical under faults");
    std::printf("  epoch %d: loss %.6f vs %.6f %s\n", e, clean.losses[e],
                chaos.losses[e], loss_same ? "(identical)" : "(DIVERGED)");
  }

  // The faulted run must actually have exercised the resilience machinery.
  CHECK(chaos.io.retries > 0, "faulted run reports retries");
  CHECK(chaos.io.failovers + chaos.io.device_remaps > 0,
        "faulted run reports failover activity");
  CHECK(chaos.io.devices_failed == 1, "exactly one device hard-failed");
  CHECK(chaos.io.device_remaps >= 1, "failed device's bins were remapped");

  // And the fault-free run must be silent.
  CHECK(clean.io.retries == 0, "fault-free run reports zero retries");
  CHECK(clean.io.timeouts == 0, "fault-free run reports zero timeouts");
  CHECK(clean.io.permanent_failures == 0,
        "fault-free run reports zero permanent failures");
  CHECK(clean.io.failovers == 0, "fault-free run reports zero failovers");
  CHECK(clean.io.devices_failed == 0, "fault-free run has no failed devices");

  std::printf("faulted telemetry: retries=%llu timeouts=%llu perm=%llu "
              "failovers=%llu remaps=%llu failed_devices=%u\n",
              static_cast<unsigned long long>(chaos.io.retries),
              static_cast<unsigned long long>(chaos.io.timeouts),
              static_cast<unsigned long long>(chaos.io.permanent_failures),
              static_cast<unsigned long long>(chaos.io.failovers),
              static_cast<unsigned long long>(chaos.io.device_remaps),
              chaos.io.devices_failed);
  std::printf(failures == 0 ? "chaos harness PASSED\n"
                            : "chaos harness FAILED (%d checks)\n",
              failures);
  return failures == 0 ? 0 : 1;
}
