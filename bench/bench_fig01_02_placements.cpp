// Figures 1 & 2 — epoch time of the four classic hardware layouts
// (GraphSAGE on IGB, 4 GPUs + 8 SSDs) on Machines A and B, plus Moment's
// optimized layout (Fig. 7 shows it for Machine B).

#include "common.hpp"

using namespace moment;

namespace {

// Paper epoch times in seconds, placements (a)-(d).
constexpr double kPaperA[] = {15.9, 26.7, 14.9, 24.1};
constexpr double kPaperB[] = {28.4, 29.7, 18.6, 24.0};

void run_machine(const topology::MachineSpec& spec, const double* paper,
                 double paper_moment) {
  const runtime::Workbench wb =
      runtime::Workbench::make(graph::DatasetId::kIG, bench::kScaleShift, 42);

  util::Table t({"placement", "epoch time (sim)", "paper epoch",
                 "norm vs (c) sim", "norm vs (c) paper"});
  double sim_times[4] = {};
  for (int i = 0; i < 4; ++i) {
    const char which = static_cast<char>('a' + i);
    const auto r = bench::run_classic(spec, wb, graph::DatasetId::kIG,
                                      gnn::ModelKind::kGraphSage, which, 4);
    sim_times[i] = r.epoch_time_s;
  }
  for (int i = 0; i < 4; ++i) {
    t.add_row({std::string(1, static_cast<char>('a' + i)),
               util::Table::num(sim_times[i], 1) + " s",
               util::Table::num(paper[i], 1) + " s",
               util::Table::speedup(sim_times[i] / sim_times[2]),
               util::Table::speedup(paper[i] / paper[2])});
  }
  // Moment's own placement.
  runtime::ExperimentConfig c = bench::machine_config(
      &spec, graph::DatasetId::kIG, gnn::ModelKind::kGraphSage, 4);
  const auto moment = runtime::run_system(runtime::SystemKind::kMoment, c, wb);
  t.add_row({"Moment", util::Table::num(moment.epoch_time_s, 1) + " s",
             paper_moment > 0 ? util::Table::num(paper_moment, 1) + " s" : "-",
             util::Table::speedup(moment.epoch_time_s / sim_times[2]),
             paper_moment > 0
                 ? util::Table::speedup(paper_moment / paper[2])
                 : "-"});

  std::printf("\n%s (GraphSAGE on IG, 4 GPUs, 8 SSDs)\n", spec.name.c_str());
  t.print(std::cout);
}

}  // namespace

int main() {
  bench::header("Figures 1 & 2: classic hardware placements",
                "paper Figs. 1-2 (epoch times of layouts a-d) and Fig. 7 "
                "(Moment's Machine-B layout, 13.2 s)");
  run_machine(topology::make_machine_a(), kPaperA, -1.0);
  run_machine(topology::make_machine_b(), kPaperB, 13.2);
  bench::note("shape targets: (c) best among classics on both machines; "
              "(b)/(d) ~1.6-1.8x worse; on Machine B, (a)~(b) and Moment "
              "beats (c).");
  return 0;
}
