// Figures 14 & 15 — DDAK vs hash data placement under each of the four
// classic hardware placements (4 GPUs + 8 SSDs fixed). Paper: DDAK improves
// throughput by up to 30.6% on Machine A and 34.0% on Machine B.

#include "common.hpp"

using namespace moment;

int main() {
  bench::header("Figures 14 & 15: DDAK vs hash data placement",
                "paper Figs. 14-15 (max +30.6% / +34.0%)");

  const runtime::Workbench wb =
      runtime::Workbench::make(graph::DatasetId::kIG, bench::kScaleShift, 42);

  for (const auto& spec :
       {topology::make_machine_a(), topology::make_machine_b()}) {
    util::Table t({"placement", "hash (kseeds/s)", "DDAK (kseeds/s)",
                   "improvement"});
    double max_gain = 0.0;
    for (int i = 0; i < 4; ++i) {
      const char which = static_cast<char>('a' + i);
      runtime::ExperimentConfig c = bench::machine_config(
          &spec, graph::DatasetId::kIG, gnn::ModelKind::kGraphSage, 4);
      c.placement = topology::classic_placement(spec, which, 4, 8);
      c.data_policy = runtime::DataPolicy::kHash;
      const auto hash =
          runtime::run_system(runtime::SystemKind::kMoment, c, wb);
      c.data_policy = runtime::DataPolicy::kDdak;
      const auto ddak =
          runtime::run_system(runtime::SystemKind::kMoment, c, wb);
      const double gain = ddak.throughput_seeds_per_s /
                              hash.throughput_seeds_per_s -
                          1.0;
      max_gain = std::max(max_gain, gain);
      t.add_row({std::string(1, which),
                 bench::kseeds(hash.throughput_seeds_per_s),
                 bench::kseeds(ddak.throughput_seeds_per_s),
                 util::Table::percent(gain)});
    }
    std::printf("\n%s (IG, GraphSAGE, 4 GPUs, 8 SSDs)\n", spec.name.c_str());
    t.print(std::cout);
    std::printf("max DDAK improvement: %s (paper: %s)\n",
                util::Table::percent(max_gain).c_str(),
                spec.name == "MachineA" ? "30.6%" : "34.0%");
  }
  return 0;
}
