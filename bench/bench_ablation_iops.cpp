// Ablation — SSD IOPS sensitivity: the Figs.-1/2 placement ordering under
// per-SSD random-read IOPS caps. 4 KiB feature reads are IOPS-bound before
// they are bandwidth-bound on real NVMe; this shows the orderings Moment
// relies on are stable across that regime.

#include "common.hpp"
#include "sim/machine_sim.hpp"

using namespace moment;

int main() {
  bench::header("Ablation: SSD IOPS sensitivity",
                "robustness of the placement orderings (Figs. 1-2)");

  const auto bench_wb =
      runtime::Workbench::make(graph::DatasetId::kIG, bench::kScaleShift, 42);
  const auto workload = ddak::make_epoch_workload(
      bench_wb.dataset, bench_wb.profile, ddak::CacheConfig{}, 4);

  for (const auto& spec :
       {topology::make_machine_a(), topology::make_machine_b()}) {
    util::Table t({"IOPS cap / SSD", "a (s)", "b (s)", "c (s)", "d (s)",
                   "ordering"});
    for (double iops : {0.0, 1.5e6, 1.0e6, 0.5e6}) {
      std::vector<double> times;
      for (char which : {'a', 'b', 'c', 'd'}) {
        const auto topo = topology::instantiate(
            spec, topology::classic_placement(spec, which, 4, 8));
        const auto fg = topology::compile_flow_graph(topo);
        const auto pred = topology::predict(
            fg, ddak::to_flow_demand(workload, fg,
                                     ddak::SupplyModel::kUniformHash));
        auto bins = ddak::make_bins(topo, fg, pred.per_storage_bytes,
                                    bench_wb.dataset.scaled.vertices, 0.005,
                                    0.01);
        const auto merged = sim::merge_replicated_gpu_bins(bins);
        const auto place = ddak::hash_place(merged, bench_wb.profile);
        sim::SimOptions opts;
        opts.ssd_iops = iops;
        times.push_back(sim::simulate_epoch(topo, fg, workload, merged,
                                            place, opts)
                            .epoch_time_s);
      }
      // Which placement wins?
      int best = 0;
      for (int i = 1; i < 4; ++i) {
        if (times[static_cast<std::size_t>(i)] <
            times[static_cast<std::size_t>(best)]) {
          best = i;
        }
      }
      t.add_row({iops == 0.0 ? "none (bw-bound)"
                             : util::Table::num(iops / 1e6, 1) + "M",
                 util::Table::num(times[0], 1), util::Table::num(times[1], 1),
                 util::Table::num(times[2], 1), util::Table::num(times[3], 1),
                 std::string("(") + static_cast<char>('a' + best) +
                     ") best"});
    }
    std::printf("\n%s\n", spec.name.c_str());
    t.print(std::cout);
  }
  bench::note("(c) stays the best classic layout across the IOPS regimes; "
              "IOPS caps stretch epoch times without reordering placements.");
  return 0;
}
