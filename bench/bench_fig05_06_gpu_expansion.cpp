// Figures 5 & 6 — throughput of M-Hyperion and M-GIDS when expanding from 2
// to 4 GPUs under placement (d). Paper: little or *negative* scaling — the
// IO bottleneck (Bus 9 saturation, per-GPU SSD partitioning) eats the extra
// compute.

#include "common.hpp"

using namespace moment;

int main() {
  bench::header("Figures 5 & 6: GPU expansion 2 -> 4 under placement (d)",
                "paper Figs. 5-6 (M-Hyperion / M-GIDS, flat or negative "
                "scaling)");

  const runtime::Workbench wb =
      runtime::Workbench::make(graph::DatasetId::kIG, bench::kScaleShift, 42);

  for (const auto& spec :
       {topology::make_machine_a(), topology::make_machine_b()}) {
    util::Table t({"system", "2 GPUs (kseeds/s)", "4 GPUs (kseeds/s)",
                   "scaling"});
    for (auto kind :
         {runtime::SystemKind::kMHyperion, runtime::SystemKind::kMGids}) {
      double tput[2] = {};
      int idx = 0;
      for (int gpus : {2, 4}) {
        runtime::ExperimentConfig c = bench::machine_config(
            &spec, graph::DatasetId::kIG, gnn::ModelKind::kGraphSage, gpus);
        c.default_classic = 'd';
        const auto r = runtime::run_system(kind, c, wb);
        tput[idx++] = r.throughput_seeds_per_s;
      }
      t.add_row({runtime::system_name(kind), bench::kseeds(tput[0]),
                 bench::kseeds(tput[1]),
                 util::Table::speedup(tput[1] / tput[0])});
    }
    std::printf("\n%s (placement d, IG, GraphSAGE)\n", spec.name.c_str());
    t.print(std::cout);
  }
  bench::note("shape target: scaling well below 2x (paper shows ~1x or "
              "less); M-GIDS suffers most from static SSD partitioning.");
  return 0;
}
