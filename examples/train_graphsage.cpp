// End-to-end functional training: GraphSAGE node classification on a scaled
// IGB-like graph, with features placed across GPU/CPU caches and the
// simulated NVMe array by DDAK, gathered through the multi-GPU IO stack, and
// trained data-parallel with gradient averaging — the full Moment runtime
// path at laptop scale.
//
// Usage: train_graphsage [epochs] [workers] [--comm-plan=flat|ring|tree|auto]
//
// --comm-plan compiles a topology-aware CommPlan for the chosen placement:
// the gradient all-reduce stays bit-identical, but its modeled transport
// (per-link bytes, predicted comm seconds) follows the plan, and remote
// GPU-HBM rows are served over planned peer routes instead of the host copy.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "comm/planner.hpp"
#include "core/auto_module.hpp"
#include "gnn/synthetic.hpp"
#include "iostack/feature_store.hpp"
#include "runtime/parallel_trainer.hpp"

using namespace moment;

int main(int argc, char** argv) {
  comm::AllReduceAlgo algo = comm::AllReduceAlgo::kAuto;
  bool use_comm_plan = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--comm-plan=", 12) == 0) {
      use_comm_plan = true;
      algo = comm::parse_algo(argv[i] + 12);
    } else {
      positional.push_back(argv[i]);
    }
  }
  const int epochs = positional.size() > 0 ? std::atoi(positional[0]) : 5;
  const int workers = positional.size() > 1 ? std::atoi(positional[1]) : 2;

  // Plan: placement + DDAK layout for a Machine-A-like box.
  const auto machine = topology::make_machine_a();
  core::AutoModuleConfig cfg;
  cfg.machine = &machine;
  cfg.dataset = graph::DatasetId::kIG;
  cfg.dataset_scale_shift = 4;
  cfg.num_gpus = workers;
  cfg.num_ssds = 4;
  const runtime::Workbench bench = runtime::Workbench::make(
      cfg.dataset, cfg.dataset_scale_shift, cfg.seed);
  const core::Plan plan = core::AutoModule::plan(cfg, bench);
  std::printf("%s\n", plan.to_string(machine).c_str());

  // Materialise the layout in the functional tiered store.
  const auto& g = bench.dataset.csr;
  constexpr std::size_t kClasses = 8;
  constexpr std::size_t kDim = 32;
  const auto task = gnn::make_synthetic_task(g, kClasses, kDim, 0.4, 123);

  std::vector<iostack::BinBacking> backings;
  int ssd = 0;
  for (const auto& bin : plan.bins) {
    switch (bin.tier) {
      case topology::StorageTier::kGpuHbm:
        backings.push_back({iostack::BinBacking::Kind::kGpuCache, -1});
        break;
      case topology::StorageTier::kCpuDram:
        backings.push_back({iostack::BinBacking::Kind::kCpuCache, -1});
        break;
      case topology::StorageTier::kSsd:
        backings.push_back({iostack::BinBacking::Kind::kSsd, ssd++});
        break;
    }
  }
  iostack::SsdOptions sopts;
  sopts.capacity_bytes =
      static_cast<std::size_t>(g.num_vertices()) * iostack::kPageBytes;
  iostack::SsdArray array(static_cast<std::size_t>(ssd), sopts);
  iostack::TieredFeatureStore store(task.features,
                                    plan.data_placement.bin_of_vertex,
                                    backings, array);

  // Shared hot-row cache between the static tiers and the SSDs, seeded from
  // the pre-sampling hotness profile (the same one DDAK placed by).
  iostack::RowCacheOptions cache_opts;
  cache_opts.capacity_rows = g.num_vertices() / 16;
  store.enable_row_cache(cache_opts);
  const std::size_t warmed =
      store.warm_row_cache(bench.profile.by_hotness_desc());
  std::printf("hot-row cache: %zu rows capacity, %zu seeded from hotness\n",
              cache_opts.capacity_rows, warmed);

  // Optional topology-aware comm plan, compiled for the placement the
  // auto-module chose (same topology the flow predictor ranked).
  const auto topo = topology::instantiate(machine, plan.hardware_placement);
  std::unique_ptr<comm::CommPlan> comm_plan;
  std::unique_ptr<comm::LinkCounters> link_counters;
  if (use_comm_plan) {
    const comm::CommPlanner planner(topo);
    comm_plan = std::make_unique<comm::CommPlan>(planner.plan(algo));
    link_counters = std::make_unique<comm::LinkCounters>(comm_plan->num_links);
    std::printf("comm plan: requested %s, compiled %s over %d GPUs\n",
                comm::to_string(algo), comm::to_string(comm_plan->algo),
                comm_plan->num_gpus);
  }

  std::vector<std::unique_ptr<iostack::TieredFeatureClient>> clients;
  std::vector<gnn::FeatureProvider*> providers;
  for (int w = 0; w < workers; ++w) {
    iostack::PeerConfig peer;
    peer.gpu = w;
    peer.plan = comm_plan.get();
    peer.counters = link_counters.get();
    clients.push_back(std::make_unique<iostack::TieredFeatureClient>(
        store, 256, iostack::IoEngineOptions{}, iostack::GatherOptions{},
        peer));
    providers.push_back(clients.back().get());
  }
  array.start_all();

  // Data-parallel training through the IO stack.
  gnn::ModelConfig mcfg;
  mcfg.kind = gnn::ModelKind::kGraphSage;
  mcfg.in_dim = kDim;
  mcfg.hidden_dim = 64;
  mcfg.num_classes = kClasses;
  auto train = sampling::select_train_vertices(g, 0.05, 7);
  runtime::EngineOptions engine_opts;
  engine_opts.comm_plan = comm_plan.get();
  engine_opts.link_counters = link_counters.get();
  runtime::DataParallelTrainer trainer(g, providers, mcfg, {10, 5}, train,
                                       0.01f, 99, engine_opts);
  std::printf("training %zu vertices, %d workers, %zu-vertex graph\n",
              train.size(), workers, static_cast<std::size_t>(g.num_vertices()));

  for (int e = 0; e < epochs; ++e) {
    const auto stats = trainer.train_epoch(task.labels, 64);
    std::printf("epoch %d: loss %.3f  acc %.3f  batches %zu  "
                "fetched %zu vertices  (%.2f s, replicas in sync: %s)\n",
                e, stats.mean_loss, stats.mean_accuracy, stats.batches,
                stats.fetched_vertices, stats.wall_time_s,
                trainer.replicas_in_sync() ? "yes" : "NO");
    std::printf("  stages (slowest worker): sample %.3fs  gather %.3fs  "
                "compute %.3fs  step %.3fs  allreduce %.3fs  | "
                "IO hidden by pipeline: %.3fs (overlap %.0f%%)\n",
                stats.stage_max.sample_s, stats.stage_max.gather_s(),
                stats.stage_max.compute_s, stats.stage_max.optimizer_s,
                stats.allreduce_s, stats.stage_max.hidden_io_s,
                100.0 * stats.overlap_ratio);
    std::printf("  %s\n", runtime::io_report(stats).c_str());
    const std::string comm_line = runtime::comm_report(stats);
    if (!comm_line.empty()) std::printf("  %s\n", comm_line.c_str());
  }
  array.stop_all();

  // Tier traffic summary.
  std::printf("\ngather statistics per worker:\n");
  for (int w = 0; w < workers; ++w) {
    const auto& s = clients[static_cast<std::size_t>(w)]->stats();
    const double total =
        static_cast<double>(s.gpu_hits + s.cpu_hits + s.ssd_reads);
    std::printf("  worker %d: GPU hits %.1f%%  CPU hits %.1f%%  SSD reads "
                "%.1f%% (%llu ops, %.1f MiB)\n",
                w, 100.0 * s.gpu_hits / total, 100.0 * s.cpu_hits / total,
                100.0 * s.ssd_reads / total,
                static_cast<unsigned long long>(s.ssd_reads),
                static_cast<double>(s.ssd_bytes) / (1024.0 * 1024.0));
  }
  return 0;
}
