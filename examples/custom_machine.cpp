// Custom machine: describe YOUR server in the machine description language
// (or load a file produced by topology discovery), then let Moment decide
// where the GPUs and SSDs should go — the paper's customized-server use case
// ("server vendors offering customized machines ... an opportunity to
// optimize hardware placement").
//
// Usage: custom_machine [spec-file] [num_gpus] [num_ssds]
//        (with no file, a built-in 3-switch demo machine is used)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "placement/search.hpp"
#include "topology/discovery.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace moment;

namespace {

// A deliberately quirky machine: three switches in a chain with direct
// slots on both sockets — none of the built-in presets.
const char* kDemoMachine = R"(
machine DemoChain
description three cascaded switches, direct slots on both sockets
ssd_read_bw_gib 6
device RC0 root_complex
device RC1 root_complex
device DRAM0 cpu_memory
device DRAM1 cpu_memory
device SW0 pcie_switch
device SW1 pcie_switch
device SW2 pcie_switch
link DRAM0 RC0 dram 40 40 MC0
link DRAM1 RC1 dram 40 40 MC1
link RC0 RC1 qpi 36 36 QPI
link RC0 SW0 pcie 20 20 Bus2
link SW0 SW1 pcie 20 20 Bus7
link SW1 SW2 pcie 20 20 Bus12
slots RC0.slots RC0 4 gpu,ssd gen4
slots RC1.slots RC1 6 gpu,ssd gen4
slots SW0.slots SW0 8 gpu,ssd gen4
slots SW1.slots SW1 8 gpu,ssd gen4
slots SW2.slots SW2 8 gpu,ssd gen4
)";

}  // namespace

int main(int argc, char** argv) {
  topology::MachineSpec spec;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    spec = topology::parse_machine_spec(file);
  } else {
    spec = topology::parse_machine_spec_string(kDemoMachine);
  }
  const int gpus = argc > 2 ? std::atoi(argv[2]) : 4;
  const int ssds = argc > 3 ? std::atoi(argv[3]) : 8;

  std::printf("machine: %s — %s\n", spec.name.c_str(),
              spec.description.c_str());
  std::printf("%s\n", spec.skeleton.to_string().c_str());

  placement::SearchOptions o;
  o.num_gpus = gpus;
  o.num_ssds = ssds;
  const double total = 400.0 * util::kGiB;  // an IGB-like epoch
  o.per_gpu_demand_bytes = total / gpus;
  o.per_tier_bytes = {0.11 * total, 0.15 * total, 0.74 * total};
  o.gpu_hbm_bytes = 0.11 * total / gpus;
  o.keep_top = 5;
  const auto r = placement::search_placements(spec, o);

  std::printf("%zu feasible placements, %zu evaluated\n\n",
              r.total_combinations, r.evaluated);
  util::Table t({"#", "placement", "predicted throughput (GiB/s)"});
  for (std::size_t i = 0; i < r.top.size(); ++i) {
    t.add_row({std::to_string(i + 1),
               placement::describe(spec, r.top[i].placement),
               util::Table::num(util::to_gib_per_s(r.top[i].score), 1)});
  }
  t.print(std::cout);

  std::printf("\nmachine description round-trip (edit and re-run):\n%s",
              topology::write_machine_spec(spec).c_str());
  return 0;
}
