// DDAK planner: run the data-distribution-aware knapsack standalone for a
// fixed hardware placement — the paper's "DDAK module executed independently
// of max-flow to generalize to more datasets and models with specific
// hardware placement" (Artifact Description B.1).
//
// Usage: ddak_planner [machine a|b] [placement a|b|c|d] [dataset PA|IG|UK|CL]

#include <cstdio>
#include <iostream>
#include <cstring>

#include "ddak/ddak.hpp"
#include "ddak/workload.hpp"
#include "runtime/systems.hpp"
#include "sim/machine_sim.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace moment;

int main(int argc, char** argv) {
  const char machine = argc > 1 ? argv[1][0] : 'a';
  const char layout = argc > 2 ? argv[2][0] : 'b';
  graph::DatasetId dataset = graph::DatasetId::kIG;
  if (argc > 3) {
    for (auto id : graph::kAllDatasets) {
      if (std::strcmp(argv[3], graph::dataset_name(id)) == 0) dataset = id;
    }
  }

  const auto spec = machine == 'a' ? topology::make_machine_a()
                                   : topology::make_machine_b();
  const auto placement = topology::classic_placement(spec, layout, 4, 8);
  std::printf("machine %s, placement (%c), dataset %s\n", spec.name.c_str(),
              layout, graph::dataset_name(dataset));

  const runtime::Workbench bench = runtime::Workbench::make(dataset, 3, 42);
  const auto workload = ddak::make_epoch_workload(
      bench.dataset, bench.profile, ddak::CacheConfig{}, 4);
  std::printf("epoch workload: %.1f GiB total, tiers GPU %.1f%% / CPU %.1f%% "
              "/ SSD %.1f%%\n",
              workload.total_bytes / util::kGiB,
              100 * workload.gpu_hit_fraction, 100 * workload.cpu_hit_fraction,
              100 * workload.ssd_fraction);

  const auto topo = topology::instantiate(spec, placement);
  const auto fg = topology::compile_flow_graph(topo);
  const auto pred = topology::predict(
      fg, ddak::to_flow_demand(workload, fg, ddak::SupplyModel::kFlexibleTier));
  std::printf("max-flow plan: epoch IO %.2f s (%.1f GiB/s)\n",
              pred.epoch_io_time_s, util::to_gib_per_s(pred.throughput));

  auto bins = ddak::make_bins(topo, fg, pred.per_storage_bytes,
                              bench.dataset.scaled.vertices, 0.005, 0.01);
  const auto merged = sim::merge_replicated_gpu_bins(bins);
  ddak::DdakOptions opt;
  opt.pool_size = ddak::default_pool_size(bench.dataset.scaled.vertices);
  const auto ddak_placement = ddak::ddak_place(merged, bench.profile, opt);
  const auto hash_placement = ddak::hash_place(merged, bench.profile);

  double total_target = 0.0;
  for (const auto& b : merged) total_target += b.traffic_target;
  util::Table t({"bin", "tier", "flow target", "DDAK share", "hash share",
                 "DDAK vertices"});
  const char* tiers[] = {"GPU", "CPU", "SSD"};
  for (std::size_t i = 0; i < merged.size(); ++i) {
    t.add_row({merged[i].name, tiers[static_cast<int>(merged[i].tier)],
               util::Table::percent(total_target > 0
                                        ? merged[i].traffic_target /
                                              total_target
                                        : 0),
               util::Table::percent(ddak_placement.bin_traffic_share[i]),
               util::Table::percent(hash_placement.bin_traffic_share[i]),
               std::to_string(ddak_placement.bin_count[i])});
  }
  t.print(std::cout);
  std::printf("traffic-target tracking error: DDAK %.4f vs hash %.4f\n",
              ddak_placement.traffic_share_error,
              hash_placement.traffic_share_error);

  for (const auto& [name, place] :
       {std::pair{"DDAK", &ddak_placement}, {"hash", &hash_placement}}) {
    const auto rep = sim::simulate_epoch(topo, fg, workload, merged, *place);
    std::printf("%s: simulated epoch %.2f s, QPI traffic %.1f GiB, "
                "imbalance CV %.3f\n",
                name, rep.epoch_time_s, rep.qpi_bytes / util::kGiB,
                rep.imbalance_cv);
  }
  return 0;
}
