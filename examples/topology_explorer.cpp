// Topology explorer: inspect a machine's communication topology, enumerate
// hardware placements, watch the symmetry reduction work, and name the
// bottleneck links of any layout via the min cut — the diagnosis the paper
// does by hand in Section 2.3 ("Bus 9 saturates", "Bus 16 is contended").
//
// Usage: topology_explorer [a|b] [num_gpus] [num_ssds]

#include <cstdio>
#include <iostream>
#include <cstdlib>

#include "maxflow/dinic.hpp"
#include "maxflow/min_cut.hpp"
#include "placement/search.hpp"
#include "topology/flow_graph.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace moment;

namespace {

void diagnose_bottlenecks(const topology::MachineSpec& spec,
                          const topology::Placement& p) {
  const auto topo = topology::instantiate(spec, p);
  topology::FlowGraphOptions opts;
  opts.gpu_cache = false;  // fabric-only view for bottleneck naming
  auto fg = topology::compile_flow_graph(topo, opts);
  maxflow::FlowNetwork net = fg.net;
  const auto result = maxflow::Dinic::solve(net, fg.source, fg.sink);
  const auto cut = maxflow::extract_min_cut(net, fg.source);

  std::printf("  fabric max flow: %.1f GiB/s; bottleneck links:\n",
              util::to_gib_per_s(result.total_flow));
  for (maxflow::EdgeId e : cut.cut_edges) {
    // Map the cut edge back to a physical link label where possible.
    for (const auto& le : fg.link_edges) {
      if (le.ab == e || le.ba == e) {
        const auto& l = topo.link(le.link);
        std::printf("    %-8s %s <-> %s  (%.1f GiB/s)\n",
                    l.label.empty() ? "-" : l.label.c_str(),
                    topo.device(l.a).name.c_str(),
                    topo.device(l.b).name.c_str(),
                    util::to_gib_per_s(net.original_capacity(e)));
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char which = argc > 1 ? argv[1][0] : 'b';
  const int gpus = argc > 2 ? std::atoi(argv[2]) : 4;
  const int ssds = argc > 3 ? std::atoi(argv[3]) : 8;

  const topology::MachineSpec spec =
      which == 'a' ? topology::make_machine_a() : topology::make_machine_b();
  std::printf("%s\n%s\n\nSkeleton:\n%s\n", spec.name.c_str(),
              spec.description.c_str(), spec.skeleton.to_string().c_str());

  // Enumerate and rank placements.
  placement::SearchOptions opts;
  opts.num_gpus = gpus;
  opts.num_ssds = ssds;
  // An IGB-like byte mix so the ranking is meaningful.
  const double total = 400.0 * util::kGiB;
  opts.per_gpu_demand_bytes = total / gpus;
  opts.per_tier_bytes = {0.11 * total, 0.15 * total, 0.74 * total};
  opts.gpu_hbm_bytes = 0.11 * total / gpus;
  opts.keep_top = 5;
  const auto result = placement::search_placements(spec, opts);
  std::printf("placements: %zu feasible, %zu after isomorphic reduction\n\n",
              result.total_combinations, result.evaluated);

  util::Table t({"#", "placement", "predicted epoch IO (s)",
                 "throughput (GiB/s)"});
  for (std::size_t i = 0; i < result.top.size(); ++i) {
    const auto& c = result.top[i];
    t.add_row({std::to_string(i + 1),
               placement::describe(spec, c.placement),
               util::Table::num(c.prediction.epoch_io_time_s, 2),
               util::Table::num(util::to_gib_per_s(c.score), 1)});
  }
  t.print(std::cout);

  std::printf("\nBottleneck diagnosis (min cut):\n");
  for (char classic : {'b', 'c'}) {
    const auto p = topology::classic_placement(spec, classic, gpus, ssds);
    std::printf("placement (%c): %s\n", classic,
                placement::describe(spec, p).c_str());
    diagnose_bottlenecks(spec, p);
  }
  std::printf("best searched placement:\n");
  diagnose_bottlenecks(spec, result.best().placement);
  return 0;
}
