// Quickstart: the 60-second tour of Moment's public API.
//
//   1. pick a machine preset and a dataset,
//   2. let AutoModule co-optimize hardware placement + data placement,
//   3. compare the plan against a conventional layout.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "core/auto_module.hpp"
#include "placement/search.hpp"
#include "util/units.hpp"

using namespace moment;

int main() {
  // A Machine-B-like server: cascaded PCIe switches, 4 GPUs, 8 NVMe SSDs.
  const topology::MachineSpec machine = topology::make_machine_b();
  std::printf("Machine: %s\n%s\n", machine.name.c_str(),
              machine.description.c_str());

  // Co-optimize for an IGB-like workload (GraphSAGE, 2-hop [25,10]).
  core::AutoModuleConfig config;
  config.machine = &machine;
  config.dataset = graph::DatasetId::kIG;
  config.dataset_scale_shift = 3;  // scaled-down synthetic stand-in
  config.num_gpus = 4;
  config.num_ssds = 8;

  const core::Plan plan = core::AutoModule::plan(config);
  std::printf("\n%s\n", plan.to_string(machine).c_str());

  // How much did the co-optimization buy over the best conventional layout?
  const runtime::Workbench bench = runtime::Workbench::make(
      config.dataset, config.dataset_scale_shift, config.seed);
  runtime::ExperimentConfig exp;
  exp.machine = &machine;
  exp.dataset = config.dataset;
  exp.dataset_scale_shift = config.dataset_scale_shift;
  exp.num_gpus = config.num_gpus;
  exp.num_ssds = config.num_ssds;

  const auto moment =
      runtime::run_system(runtime::SystemKind::kMoment, exp, bench);
  exp.default_classic = 'c';
  const auto classic =
      runtime::run_system(runtime::SystemKind::kMHyperion, exp, bench);

  std::printf("simulated epoch time:  Moment %.2f s   classic-(c) %.2f s   "
              "(%.2fx)\n",
              moment.epoch_time_s, classic.epoch_time_s,
              classic.epoch_time_s / moment.epoch_time_s);
  std::printf("aggregate IO bandwidth: Moment %.1f GiB/s   classic %.1f "
              "GiB/s\n",
              util::to_gib_per_s(moment.sim.agg_io_bandwidth),
              util::to_gib_per_s(classic.sim.agg_io_bandwidth));
  return 0;
}
